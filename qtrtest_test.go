package qtrtest_test

import (
	"fmt"
	"log"
	"strings"
	"testing"

	"qtrtest"
)

func TestQueryAndExplain(t *testing.T) {
	db := qtrtest.OpenTPCH(1.0, 42)
	rows, names, err := db.Query("SELECT n_name FROM nation WHERE n_regionkey = 0 ORDER BY n_name")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "n_name" {
		t.Errorf("names = %v", names)
	}
	if len(rows) != 5 {
		t.Errorf("rows = %d, want 5 (nations per region)", len(rows))
	}
	plan, err := db.Explain("SELECT * FROM nation JOIN region ON n_regionkey = r_regionkey")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "Join") {
		t.Errorf("plan missing join:\n%s", plan)
	}
}

func TestRuleSetAndDisable(t *testing.T) {
	db := qtrtest.OpenTPCH(1.0, 42)
	q := "SELECT * FROM (SELECT * FROM nation JOIN region ON n_regionkey = r_regionkey) AS t WHERE n_nationkey > 5"
	rs, err := db.RuleSetOf(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) == 0 {
		t.Fatal("no rules exercised")
	}
	with, _, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range rs.Sorted() {
		if id > 100 {
			continue
		}
		without, err := db.QueryDisabled(q, id)
		if err != nil {
			t.Fatalf("rule %d: %v", id, err)
		}
		if !qtrtest.EqualResults(with, without) {
			t.Errorf("rule %d changes results", id)
		}
	}
}

func TestFacadeGeneratorAndSuite(t *testing.T) {
	db := qtrtest.OpenTPCH(1.0, 42)
	gen, err := db.NewGenerator(qtrtest.GenConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	q, err := gen.GeneratePattern(9)
	if err != nil {
		t.Fatal(err)
	}
	if !q.RuleSet.Contains(9) {
		t.Error("generated query does not exercise rule 9")
	}

	g, err := db.GenerateSuite(qtrtest.SingletonTargets(db.ExplorationRuleIDs(4)),
		qtrtest.SuiteConfig{K: 2, Seed: 1, ExtraOps: 1})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := g.TopKIndependent()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := g.Run(sol, db.Optimizer, db.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Mismatches) != 0 {
		t.Errorf("unexpected correctness bugs: %d", len(rep.Mismatches))
	}
}

func TestPatternXMLExport(t *testing.T) {
	db := qtrtest.OpenTPCH(1.0, 42)
	r, err := db.Registry.ByID(14)
	if err != nil {
		t.Fatal(err)
	}
	data, err := qtrtest.PatternXML(r.Pattern())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `op="GroupBy"`) {
		t.Errorf("pattern XML wrong: %s", data)
	}
}

func TestExplorationRuleIDs(t *testing.T) {
	db := qtrtest.OpenTPCH(1.0, 42)
	if got := len(db.ExplorationRuleIDs(0)); got != 30 {
		t.Errorf("all exploration rules = %d, want 30", got)
	}
	if got := len(db.ExplorationRuleIDs(7)); got != 7 {
		t.Errorf("first 7 = %d", got)
	}
}

func TestFormatRows(t *testing.T) {
	db := qtrtest.OpenTPCH(1.0, 42)
	rows, names, err := db.Query("SELECT r_name FROM region WHERE r_regionkey = 2")
	if err != nil {
		t.Fatal(err)
	}
	out := qtrtest.FormatRows(rows, names)
	if !strings.Contains(out, "ASIA") {
		t.Errorf("FormatRows output: %s", out)
	}
}

// ExampleDB_Query demonstrates running SQL against the bundled TPC-H data.
func ExampleDB_Query() {
	db := qtrtest.OpenTPCH(1.0, 42)
	rows, _, err := db.Query("SELECT n_name FROM nation WHERE n_regionkey = 3 ORDER BY n_name")
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range rows {
		fmt.Println(r[0].S)
	}
	// Output:
	// CANADA
	// CHINA
	// INDIA
	// JORDAN
	// UNITED KINGDOM
}

// ExampleDB_RuleSetOf shows RuleSet(q): which transformation rules a query
// exercises during optimization.
func ExampleDB_RuleSetOf() {
	db := qtrtest.OpenTPCH(1.0, 42)
	rs, err := db.RuleSetOf("SELECT * FROM nation JOIN region ON n_regionkey = r_regionkey")
	if err != nil {
		log.Fatal(err)
	}
	r, _ := db.Registry.ByID(rs.Sorted()[0])
	fmt.Println(r.Name())
	// Output:
	// JoinCommute
}

// ExampleGenerator_GeneratePattern shows rule-targeted query generation.
func ExampleGenerator_GeneratePattern() {
	db := qtrtest.OpenTPCH(1.0, 42)
	gen, err := db.NewGenerator(qtrtest.GenConfig{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	q, err := gen.GeneratePattern(1) // JoinCommute
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(q.RuleSet.Contains(1), q.Trials == 1)
	// Output:
	// true true
}

func TestAnalyzeFacade(t *testing.T) {
	db := qtrtest.OpenTPCH(1.0, 42)
	rows, stats, err := db.Analyze("SELECT c_nationkey, COUNT(*) AS n FROM customer GROUP BY c_nationkey")
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(rows)) != stats.ActRows {
		t.Errorf("analyze root actual %d != result rows %d", stats.ActRows, len(rows))
	}
	if stats.MaxQError() > 10 {
		t.Errorf("q-error %f unexpectedly large for an FK-style aggregate", stats.MaxQError())
	}
}

func TestOpenStarQueries(t *testing.T) {
	db := qtrtest.OpenStar(1.0, 42)
	rows, _, err := db.Query("SELECT s_channel, COUNT(*) AS n FROM sales JOIN store ON f_storekey = s_storekey GROUP BY s_channel")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 || len(rows) > 4 {
		t.Errorf("star channels = %d, want 1..4", len(rows))
	}
	// The coverage machinery works on this schema too.
	gen, err := db.NewGenerator(qtrtest.GenConfig{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	q, err := gen.GeneratePattern(1)
	if err != nil {
		t.Fatal(err)
	}
	if !q.RuleSet.Contains(1) {
		t.Error("rule 1 not exercised on star schema")
	}
}

func TestInteractionsExposed(t *testing.T) {
	db := qtrtest.OpenTPCH(1.0, 42)
	res, err := db.Optimize("SELECT * FROM (SELECT * FROM nation JOIN region ON n_regionkey = r_regionkey) AS t WHERE n_nationkey > 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Interactions) == 0 {
		t.Error("expected rule interactions on a select-over-join query")
	}
}

func TestDistinctEndToEnd(t *testing.T) {
	db := qtrtest.OpenTPCH(1.0, 42)
	rows, _, err := db.Query("SELECT DISTINCT o_orderstatus FROM orders")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Errorf("distinct statuses = %d, want 3", len(rows))
	}
}
