// Compression: build a correctness test suite for ten rules (k queries
// each), compress it with the paper's algorithms, compare the estimated
// execution costs (§4–5), and actually run the cheapest suite against the
// database to validate rule correctness.
package main

import (
	"fmt"
	"log"

	"qtrtest"
)

func main() {
	db := qtrtest.OpenTPCH(1.0, 42)
	ids := db.ExplorationRuleIDs(10)
	targets := qtrtest.SingletonTargets(ids)

	fmt.Printf("generating test suite: %d rules x k=5 queries...\n", len(targets))
	g, err := db.GenerateSuite(targets, qtrtest.SuiteConfig{K: 5, Seed: 11, ExtraOps: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("suite TS has %d queries\n\n", len(g.Queries))

	base, err := g.Baseline()
	if err != nil {
		log.Fatal(err)
	}
	smc, err := g.SetMultiCover()
	if err != nil {
		log.Fatal(err)
	}
	topk, err := g.TopKIndependent()
	if err != nil {
		log.Fatal(err)
	}
	match, err := g.MatchingNoShare()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("estimated cost of executing the suite (lower is better):")
	for _, sol := range []*qtrtest.Solution{base, smc, topk, match} {
		distinct := map[int]bool{}
		for _, a := range sol.Assignments {
			distinct[a.Query] = true
		}
		fmt.Printf("  %-10s cost %12.0f   (%3d distinct queries, %.1fx vs BASELINE)\n",
			sol.Name, sol.TotalCost, len(distinct), base.TotalCost/sol.TotalCost)
	}

	fmt.Println("\nexecuting the TOPK-compressed suite for real...")
	rep, err := g.Run(topk, db.Optimizer, db.Catalog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plan executions: %d, skipped identical plans: %d, correctness bugs: %d\n",
		rep.PlanExecutions, rep.SkippedIdentical, len(rep.Mismatches))
	for _, m := range rep.Mismatches {
		fmt.Printf("  BUG in target %s: %s\n", m.Target, m.Detail)
	}
}
