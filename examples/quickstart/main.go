// Quickstart: open the TPC-H test database, run a query, inspect the rules
// it exercises, generate a rule-targeted test case, and validate a rule's
// correctness the way the paper does (§2.3): compare Plan(q) with
// Plan(q,¬{r}).
package main

import (
	"fmt"
	"log"

	"qtrtest"
)

func main() {
	db := qtrtest.OpenTPCH(1.0, 42)

	// 1. Run an ordinary SQL query.
	q := "SELECT n_name, r_name FROM nation JOIN region ON n_regionkey = r_regionkey WHERE r_name = 'ASIA'"
	rows, names, err := db.Query(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== query returned %d rows ==\n%s\n", len(rows), qtrtest.FormatRows(rows, names))

	// 2. Which transformation rules did optimizing it exercise?
	rs, err := db.RuleSetOf(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== RuleSet(q) ==")
	for _, id := range rs.Sorted() {
		r, _ := db.Registry.ByID(id)
		fmt.Printf("  %-3d %s\n", id, r.Name())
	}

	// 3. Generate a query that exercises a specific rule — the group-by
	// push-down rule (id 14), the paper's running example of a rule whose
	// pattern alone is not sufficient.
	gen, err := db.NewGenerator(qtrtest.GenConfig{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	tc, err := gen.GeneratePattern(14)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== generated test case for rule 14 (trials: %d) ==\n%s\n", tc.Trials, tc.SQL)

	// 4. Correctness check (§2.3): execute Plan(q) and Plan(q,¬{14}) and
	// compare result multisets — a difference would be a correctness bug.
	with, _, err := db.Query(tc.SQL)
	if err != nil {
		log.Fatal(err)
	}
	without, err := db.QueryDisabled(tc.SQL, 14)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := db.Explain(tc.SQL, 14)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== plan with rule 14 disabled ==\n%s", plan)
	fmt.Printf("\nresults identical with rule on/off: %v (%d rows)\n",
		qtrtest.EqualResults(with, without), len(with))
}
