// Coverage campaign: build rule-coverage test cases for every exploration
// rule and a sample of rule pairs, comparing the paper's PATTERN method
// against the stochastic RANDOM baseline (§3, Figures 8 and 9 in miniature).
//
// This is the "code coverage" scenario of §2.3: the generated queries only
// need to be optimized, not executed, to verify that each rule fires.
package main

import (
	"fmt"
	"log"
	"time"

	"qtrtest"
)

func main() {
	db := qtrtest.OpenTPCH(1.0, 42)
	ids := db.ExplorationRuleIDs(0)

	patGen, err := db.NewGenerator(qtrtest.GenConfig{Seed: 1, MaxTrials: 256})
	if err != nil {
		log.Fatal(err)
	}
	rndGen, err := db.NewGenerator(qtrtest.GenConfig{Seed: 2, MaxTrials: 256})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== singleton rule coverage ==")
	fmt.Printf("%-28s %8s %8s  %s\n", "rule", "PATTERN", "RANDOM", "example query (PATTERN)")
	var patTotal, rndTotal int
	start := time.Now()
	for _, id := range ids {
		r, _ := db.Registry.ByID(id)
		pq, err := patGen.GeneratePattern(id)
		if err != nil {
			log.Fatalf("PATTERN cannot cover rule %d (%s): %v", id, r.Name(), err)
		}
		patTotal += pq.Trials
		rndTrials := "fail"
		if rq, err := rndGen.GenerateRandom([]qtrtest.RuleID{id}); err == nil {
			rndTrials = fmt.Sprintf("%d", rq.Trials)
			rndTotal += rq.Trials
		} else {
			rndTotal += 256
		}
		sqlPreview := pq.SQL
		if len(sqlPreview) > 60 {
			sqlPreview = sqlPreview[:57] + "..."
		}
		fmt.Printf("%-28s %8d %8s  %s\n", r.Name(), pq.Trials, rndTrials, sqlPreview)
	}
	fmt.Printf("total trials: PATTERN %d, RANDOM %d (%.1fx), elapsed %s\n\n",
		patTotal, rndTotal, float64(rndTotal)/float64(patTotal), time.Since(start).Round(time.Millisecond))

	fmt.Println("== rule-pair coverage (pattern composition, first 6 rules) ==")
	covered, total := 0, 0
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			total++
			q, err := patGen.GeneratePatternPair(ids[i], ids[j])
			if err != nil {
				fmt.Printf("  pair {%d,%d}: NOT COVERED (%v)\n", ids[i], ids[j], err)
				continue
			}
			covered++
			fmt.Printf("  pair {%d,%d}: %d trials, %d ops\n", ids[i], ids[j], q.Trials, q.Tree.CountOps())
		}
	}
	fmt.Printf("covered %d/%d pairs\n", covered, total)
}
