// Estimation: inspect the optimizer's cardinality estimation quality with
// the EXPLAIN ANALYZE instrumentation — per-operator estimated versus actual
// rows and Q-errors — and show the effect of the equi-depth histograms by
// re-optimizing with them disabled. Runs against both test databases.
//
// Cardinality estimation is one of the other optimizer-testing dimensions
// the paper names in its introduction (alongside rule testing); this example
// shows the instrumentation this repository ships for it.
package main

import (
	"fmt"
	"log"

	"qtrtest"
	"qtrtest/internal/bind"
	"qtrtest/internal/exec"
	"qtrtest/internal/opt"
)

func analyzeBoth(db *qtrtest.DB, sql string) {
	fmt.Printf("query: %s\n", sql)
	bound, err := bind.BindSQL(sql, db.Catalog)
	if err != nil {
		log.Fatal(err)
	}
	for _, disable := range []bool{false, true} {
		res, err := db.Optimizer.Optimize(bound.Tree, bound.MD, opt.Options{DisableHistograms: disable})
		if err != nil {
			log.Fatal(err)
		}
		_, stats, err := exec.RunAnalyze(res.Plan, db.Catalog)
		if err != nil {
			log.Fatal(err)
		}
		label := "with histograms"
		if disable {
			label = "without histograms"
		}
		fmt.Printf("\n-- %s (worst q-error %.2f):\n%s", label, stats.MaxQError(), stats)
	}
	fmt.Println()
}

func main() {
	fmt.Println("== TPC-H ==")
	tpch := qtrtest.OpenTPCH(1.0, 42)
	analyzeBoth(tpch, "SELECT l_suppkey, COUNT(*) AS n FROM lineitem WHERE l_quantity <= 5 GROUP BY l_suppkey")
	analyzeBoth(tpch, "SELECT c_name FROM customer JOIN orders ON c_custkey = o_custkey WHERE o_totalprice BETWEEN 10000 AND 50000")

	fmt.Println("== star schema ==")
	star := qtrtest.OpenStar(1.0, 42)
	analyzeBoth(star, "SELECT s_channel, SUM(f_amount) AS amt FROM sales JOIN store ON f_storekey = s_storekey WHERE f_quantity <= 4 GROUP BY s_channel")
}
