// Bughunt: fault injection. We register a deliberately WRONG transformation
// rule — it pushes filter conjuncts that reference the null-extended side
// below a LEFT OUTER JOIN, which changes results whenever the filter would
// have removed null-extended rows — and show that the paper's correctness
// methodology (§2.3: compare Plan(q) with Plan(q,¬{r})) catches it.
package main

import (
	"fmt"
	"log"

	"qtrtest"
	"qtrtest/internal/logical"
	"qtrtest/internal/scalar"
)

// buggyRuleID is chosen outside the built-in ID ranges (1-30, 101-117).
const buggyRuleID = 900

func buggyRule() qtrtest.Rule {
	pattern := qtrtest.PatternNode(logical.OpSelect,
		qtrtest.PatternNode(logical.OpLeftJoin, qtrtest.PatternAny(), qtrtest.PatternAny()))
	return qtrtest.NewExplorationRule(buggyRuleID, "BuggyPushSelectBelowLeftJoinRight", pattern,
		func(ctx *qtrtest.RuleContext, b *qtrtest.BoundExpr) []*qtrtest.BoundExpr {
			join := b.Kids[0]
			right := ctx.Memo.Cols(join.Kids[1])
			var within, rest []scalar.Expr
			for _, c := range scalar.Conjuncts(b.Node.Filter) {
				if scalar.ReferencedCols(c).SubsetOf(right) {
					within = append(within, c)
				} else {
					rest = append(rest, c)
				}
			}
			if len(within) == 0 {
				return nil
			}
			// WRONG: filtering the right input of a left outer join is not
			// equivalent to filtering its output — null-extended rows that
			// the filter would drop survive in this rewrite.
			newRight := qtrtest.NewBound(&logical.Expr{
				Op: logical.OpSelect, Filter: scalar.MakeAnd(within),
			}, join.Kids[1])
			newJoin := qtrtest.NewBound(&logical.Expr{
				Op: logical.OpLeftJoin, On: join.Node.On,
			}, join.Kids[0], newRight)
			if len(rest) == 0 {
				return []*qtrtest.BoundExpr{newJoin}
			}
			return []*qtrtest.BoundExpr{qtrtest.NewBound(&logical.Expr{
				Op: logical.OpSelect, Filter: scalar.MakeAnd(rest),
			}, newJoin)}
		})
}

func main() {
	cat := qtrtest.OpenTPCH(1.0, 42).Catalog
	db := qtrtest.Open(cat, qtrtest.RegistryWith(buggyRule()))
	fmt.Println("injected buggy rule 900: BuggyPushSelectBelowLeftJoinRight")

	// Part 1: the paper's correctness methodology on one crafted query. The
	// filter references the null-extended side but is NOT null-rejecting
	// (the IS NULL disjunct), so the sound simplification rules stay out
	// and the buggy pushdown is the cheapest rewrite.
	q := "SELECT n_name, s_name FROM nation LEFT JOIN supplier ON n_nationkey = s_nationkey " +
		"WHERE s_acctbal > 4000 OR s_name IS NULL"
	rs, err := db.RuleSetOf(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nquery: %s\nbuggy rule exercised: %v\n", q, rs.Contains(buggyRuleID))

	withRule, _, err := db.Query(q)
	if err != nil {
		log.Fatal(err)
	}
	withoutRule, err := db.QueryDisabled(q, buggyRuleID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Plan(q) rows: %d   Plan(q,¬{900}) rows: %d   identical: %v\n",
		len(withRule), len(withoutRule), qtrtest.EqualResults(withRule, withoutRule))
	if !qtrtest.EqualResults(withRule, withoutRule) {
		fmt.Println("=> correctness bug detected: disabling the rule changes the results")
	}

	// Part 2: the automated campaign — generate a suite targeting the buggy
	// rule and run it.
	fmt.Println("\nautomated suite targeting rule 900 (k=8)...")
	g, err := db.GenerateSuite(
		[]qtrtest.Target{{Rules: []qtrtest.RuleID{buggyRuleID}}},
		qtrtest.SuiteConfig{K: 8, Seed: 3, ExtraOps: 2},
	)
	if err != nil {
		log.Fatal(err)
	}
	sol, err := g.TopKIndependent()
	if err != nil {
		log.Fatal(err)
	}
	rep, err := g.Run(sol, db.Optimizer, db.Catalog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("executed %d plans (%d skipped as identical), bugs found: %d\n",
		rep.PlanExecutions, rep.SkippedIdentical, len(rep.Mismatches))
	for _, m := range rep.Mismatches {
		fmt.Printf("  BUG %s: %s\n  query: %s\n", m.Target, m.Detail, m.Query.SQL)
	}
}
