module qtrtest

go 1.22
