package qtrtest

import (
	"fmt"
	"testing"

	"qtrtest/internal/bind"
	"qtrtest/internal/exec"
	"qtrtest/internal/opt"
)

// Ablation benchmarks for the design choices DESIGN.md calls out: the
// exploration budget, histogram-based selectivity, and (in bench_test.go)
// the monotonicity pruning.

// BenchmarkAblationExplorationBudget sweeps the memo's expression cap and
// reports the chosen plan's estimated cost: larger budgets buy better plans
// until exploration saturates.
func BenchmarkAblationExplorationBudget(b *testing.B) {
	db := benchDB()
	q := `SELECT * FROM (SELECT * FROM lineitem
		JOIN orders ON l_orderkey = o_orderkey
		JOIN customer ON o_custkey = c_custkey
		JOIN nation ON c_nationkey = n_nationkey) AS t
		WHERE l_quantity = 1 AND n_regionkey = 0`
	bound, err := bind.BindSQL(q, db.Catalog)
	if err != nil {
		b.Fatal(err)
	}
	for _, cap := range []int{100, 300, 600, 1200, 2400} {
		b.Run(fmt.Sprintf("maxExprs=%d", cap), func(b *testing.B) {
			var cost float64
			for i := 0; i < b.N; i++ {
				res, err := db.Optimizer.Optimize(bound.Tree, bound.MD, opt.Options{MaxExprs: cap})
				if err != nil {
					b.Fatal(err)
				}
				cost = res.Cost
			}
			b.ReportMetric(cost, "plan-cost")
		})
	}
}

// BenchmarkAblationHistograms compares cardinality-estimation quality (worst
// Q-error over the plan) with histograms on and off, on a range-heavy query.
func BenchmarkAblationHistograms(b *testing.B) {
	db := benchDB()
	q := "SELECT l_suppkey, COUNT(*) AS n FROM lineitem WHERE l_quantity <= 5 GROUP BY l_suppkey"
	bound, err := bind.BindSQL(q, db.Catalog)
	if err != nil {
		b.Fatal(err)
	}
	for _, disable := range []bool{false, true} {
		name := "with-histograms"
		if disable {
			name = "without-histograms"
		}
		b.Run(name, func(b *testing.B) {
			var worst float64
			for i := 0; i < b.N; i++ {
				res, err := db.Optimizer.Optimize(bound.Tree, bound.MD, opt.Options{DisableHistograms: disable})
				if err != nil {
					b.Fatal(err)
				}
				_, stats, err := exec.RunAnalyze(res.Plan, db.Catalog)
				if err != nil {
					b.Fatal(err)
				}
				worst = stats.MaxQError()
			}
			b.ReportMetric(worst, "max-q-error")
		})
	}
}

// TestHistogramsImproveEstimates is the ablation as a regression test: on a
// selective range predicate, histogram-backed estimation must have a
// strictly smaller worst Q-error than the distinct-count fallback.
func TestHistogramsImproveEstimates(t *testing.T) {
	db := OpenTPCH(1.0, 42)
	q := "SELECT l_suppkey, COUNT(*) AS n FROM lineitem WHERE l_quantity <= 3 GROUP BY l_suppkey"
	bound, err := bind.BindSQL(q, db.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	qerr := func(disable bool) float64 {
		res, err := db.Optimizer.Optimize(bound.Tree, bound.MD, opt.Options{DisableHistograms: disable})
		if err != nil {
			t.Fatal(err)
		}
		_, stats, err := exec.RunAnalyze(res.Plan, db.Catalog)
		if err != nil {
			t.Fatal(err)
		}
		return stats.MaxQError()
	}
	with := qerr(false)
	without := qerr(true)
	if with >= without {
		t.Errorf("histograms did not improve estimation: with %.2f, without %.2f", with, without)
	}
}
