package qtrtest_test

import (
	"testing"

	"qtrtest"
)

// These tests cross-validate the static composability matrix against the
// optimizer's dynamic behavior on the TPC-H workload. The matrix is
// computed from pattern shapes alone; the optimizer probes actual rule
// applicability. Two containment properties must hold, and a disagreement
// is a test failure, not a statistic:
//
//  1. Co-exercise ⇒ composable: if RuleSet(q) exercises exploration rules
//     a and b on the same query, the matrix must say the pair composes
//     some way — otherwise the matrix under-approximates and the query
//     generator would wrongly skip the pair.
//  2. Interaction ⇒ feeds: if the optimizer observed a→b (b fired on an
//     expression a created), some declared output shape of a must overlap
//     b's pattern — otherwise a rule's Produces() declaration is wrong.

// explorationPairs runs the workload and collects, per query, the
// co-exercised exploration-rule pairs and the observed interactions.
func explorationPairs(t *testing.T, db *qtrtest.DB) (co, inter map[[2]qtrtest.RuleID]bool) {
	t.Helper()
	isExpl := make(map[qtrtest.RuleID]bool)
	for _, r := range db.Registry.All() {
		if r.Kind() == qtrtest.KindExploration {
			isExpl[r.ID()] = true
		}
	}
	co = make(map[[2]qtrtest.RuleID]bool)
	inter = make(map[[2]qtrtest.RuleID]bool)
	for _, q := range workload {
		res, err := db.Optimize(q.sql)
		if err != nil {
			t.Fatalf("%s: %v", q.name, err)
		}
		exercised := res.RuleSet.Sorted()
		for _, a := range exercised {
			if !isExpl[a] {
				continue
			}
			for _, b := range exercised {
				if isExpl[b] {
					co[[2]qtrtest.RuleID{a, b}] = true
				}
			}
		}
		for pair := range res.Interactions {
			inter[pair] = true
		}
	}
	return co, inter
}

// TestMatrixAgreesWithRuleSetProbing: property 1, plus a sanity floor on
// how much of the workload's dynamic behavior the test actually saw.
func TestMatrixAgreesWithRuleSetProbing(t *testing.T) {
	db := qtrtest.OpenTPCH(1.0, 42)
	matrix := qtrtest.RuleComposability(db.Registry)
	if matrix == nil {
		t.Fatal("nil composability matrix")
	}
	co, _ := explorationPairs(t, db)
	if len(co) < 10 {
		t.Fatalf("workload co-exercised only %d exploration-rule pairs; probe too weak to validate anything", len(co))
	}
	for pair := range co {
		if !matrix.Composable(pair[0], pair[1]) {
			t.Errorf("rules #%d and #%d co-exercised on TPC-H but matrix says incomposable (mode=%s)",
				pair[0], pair[1], matrix.ModeOf(pair[0], pair[1]))
		}
	}
}

// TestInteractionsAgreeWithFeeds: property 2 — every dynamically observed
// creator→fired interaction must be explained by the static feeds relation
// built from Produces() declarations.
func TestInteractionsAgreeWithFeeds(t *testing.T) {
	db := qtrtest.OpenTPCH(1.0, 42)
	matrix := qtrtest.RuleComposability(db.Registry)
	_, inter := explorationPairs(t, db)
	if len(inter) == 0 {
		t.Fatal("workload observed no rule interactions; probe too weak to validate anything")
	}
	for pair := range inter {
		if !matrix.FeedsInto(pair[0], pair[1]) {
			t.Errorf("optimizer observed interaction #%d→#%d on TPC-H but no declared output shape of #%d overlaps #%d's pattern",
				pair[0], pair[1], pair[0], pair[1])
		}
	}
}
