package qtrtest_test

import (
	"fmt"
	"testing"

	"qtrtest"
)

// These tests cross-validate the static composability matrix against the
// optimizer's dynamic behavior on the TPC-H workload. The matrix is
// computed from pattern shapes alone; the optimizer probes actual rule
// applicability. Two containment properties must hold, and a disagreement
// is a test failure, not a statistic:
//
//  1. Co-exercise ⇒ composable: if RuleSet(q) exercises exploration rules
//     a and b on the same query, the matrix must say the pair composes
//     some way — otherwise the matrix under-approximates and the query
//     generator would wrongly skip the pair.
//  2. Interaction ⇒ feeds: if the optimizer observed a→b (b fired on an
//     expression a created), some declared output shape of a must overlap
//     b's pattern — otherwise a rule's Produces() declaration is wrong.

// explorationPairs runs the workload (plus any extra queries) and collects,
// per query, the co-exercised exploration-rule pairs and the observed
// interactions.
func explorationPairs(t *testing.T, db *qtrtest.DB, extra ...string) (co, inter map[[2]qtrtest.RuleID]bool) {
	t.Helper()
	isExpl := make(map[qtrtest.RuleID]bool)
	for _, r := range db.Registry.All() {
		if r.Kind() == qtrtest.KindExploration {
			isExpl[r.ID()] = true
		}
	}
	queries := make([]struct{ name, sql string }, 0, len(workload)+len(extra))
	for _, q := range workload {
		queries = append(queries, struct{ name, sql string }{q.name, q.sql})
	}
	for i, sql := range extra {
		queries = append(queries, struct{ name, sql string }{fmt.Sprintf("extra_%d", i), sql})
	}
	co = make(map[[2]qtrtest.RuleID]bool)
	inter = make(map[[2]qtrtest.RuleID]bool)
	for _, q := range queries {
		res, err := db.Optimize(q.sql)
		if err != nil {
			t.Fatalf("%s: %v", q.name, err)
		}
		exercised := res.RuleSet.Sorted()
		for _, a := range exercised {
			if !isExpl[a] {
				continue
			}
			for _, b := range exercised {
				if isExpl[b] {
					co[[2]qtrtest.RuleID{a, b}] = true
				}
			}
		}
		for pair := range res.Interactions {
			inter[pair] = true
		}
	}
	return co, inter
}

// TestMatrixAgreesWithRuleSetProbing: property 1, plus a sanity floor on
// how much of the workload's dynamic behavior the test actually saw.
func TestMatrixAgreesWithRuleSetProbing(t *testing.T) {
	db := qtrtest.OpenTPCH(1.0, 42)
	matrix := qtrtest.RuleComposability(db.Registry)
	if matrix == nil {
		t.Fatal("nil composability matrix")
	}
	co, _ := explorationPairs(t, db)
	if len(co) < 10 {
		t.Fatalf("workload co-exercised only %d exploration-rule pairs; probe too weak to validate anything", len(co))
	}
	for pair := range co {
		if !matrix.Composable(pair[0], pair[1]) {
			t.Errorf("rules #%d and #%d co-exercised on TPC-H but matrix says incomposable (mode=%s)",
				pair[0], pair[1], matrix.ModeOf(pair[0], pair[1]))
		}
	}
}

// eetWorkload supplements the TPC-H workload with predicate shapes the base
// queries lack — arithmetic inside filters, nested arithmetic, bare
// comparisons and conjunctions at the filter root — so that every EET
// rewrite (rules 41-47) fires on at least one query.
var eetWorkload = []string{
	"SELECT l_orderkey FROM lineitem WHERE l_quantity + l_linenumber >= 45",
	"SELECT l_orderkey FROM lineitem WHERE (l_quantity + l_linenumber) + l_partkey >= 45",
	"SELECT o_orderkey FROM orders WHERE o_orderdate >= 1000 AND o_orderdate < 2000",
	"SELECT n_name FROM nation WHERE n_regionkey = 1",
}

// TestEETMatrixCrossValidation: the PR-3 containment properties extended to
// the EET-enabled registry. Every EET rule must actually fire on the probe
// workload (a rewrite that stopped matching would silently drop out of the
// matrix's dynamic validation), every co-exercised pair involving an EET
// rule must be composable, and every observed EET interaction must be
// explained by the rules' declared Produces shapes.
func TestEETMatrixCrossValidation(t *testing.T) {
	base := qtrtest.OpenTPCH(1.0, 42)
	db := qtrtest.Open(base.Catalog, qtrtest.RegistryWithEET())
	matrix := qtrtest.RuleComposability(db.Registry)
	if matrix == nil {
		t.Fatal("nil composability matrix")
	}
	co, inter := explorationPairs(t, db, eetWorkload...)

	eetExercised := make(map[qtrtest.RuleID]bool)
	for pair := range co {
		for _, id := range []qtrtest.RuleID{pair[0], pair[1]} {
			if id >= 41 && id <= 47 {
				eetExercised[id] = true
			}
		}
	}
	for id := qtrtest.RuleID(41); id <= 47; id++ {
		if !eetExercised[id] {
			t.Errorf("EET rule #%d never fired on the probe workload; coverage gap", id)
		}
	}

	for pair := range co {
		if !matrix.Composable(pair[0], pair[1]) {
			t.Errorf("rules #%d and #%d co-exercised but matrix says incomposable (mode=%s)",
				pair[0], pair[1], matrix.ModeOf(pair[0], pair[1]))
		}
	}
	eetInteractions := 0
	for pair := range inter {
		if pair[0] >= 41 && pair[0] <= 47 || pair[1] >= 41 && pair[1] <= 47 {
			eetInteractions++
		}
		if !matrix.FeedsInto(pair[0], pair[1]) {
			t.Errorf("observed interaction #%d→#%d but no declared output shape of #%d overlaps #%d's pattern",
				pair[0], pair[1], pair[0], pair[1])
		}
	}
	if eetInteractions == 0 {
		t.Error("no interaction involving an EET rule observed; probe too weak to validate the EET Produces declarations")
	}
}

// TestInteractionsAgreeWithFeeds: property 2 — every dynamically observed
// creator→fired interaction must be explained by the static feeds relation
// built from Produces() declarations.
func TestInteractionsAgreeWithFeeds(t *testing.T) {
	db := qtrtest.OpenTPCH(1.0, 42)
	matrix := qtrtest.RuleComposability(db.Registry)
	_, inter := explorationPairs(t, db)
	if len(inter) == 0 {
		t.Fatal("workload observed no rule interactions; probe too weak to validate anything")
	}
	for pair := range inter {
		if !matrix.FeedsInto(pair[0], pair[1]) {
			t.Errorf("optimizer observed interaction #%d→#%d on TPC-H but no declared output shape of #%d overlaps #%d's pattern",
				pair[0], pair[1], pair[0], pair[1])
		}
	}
}
