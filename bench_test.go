package qtrtest

import (
	"fmt"
	"runtime"
	"testing"

	"qtrtest/internal/bind"
	"qtrtest/internal/core/qgen"
	"qtrtest/internal/core/suite"
	"qtrtest/internal/exec"
	"qtrtest/internal/opt"
	"qtrtest/internal/sql"
	"qtrtest/internal/sqlgen"
)

// Benchmarks, one per figure of the paper's evaluation (§6). They run
// scaled-down parameter points so `go test -bench=.` stays tractable; the
// full-size sweeps are produced by `go run ./cmd/experiments`. Custom
// metrics report the figures' actual units (trials, optimizer calls, cost)
// alongside ns/op.

func benchDB() *DB { return OpenTPCH(1.0, 42) }

// ---- Figure 8: trials per singleton rule, RANDOM vs PATTERN ----------------

func BenchmarkFig08PatternSingleton(b *testing.B) {
	db := benchDB()
	gen, err := db.NewGenerator(GenConfig{Seed: 1, MaxTrials: 256})
	if err != nil {
		b.Fatal(err)
	}
	ids := db.ExplorationRuleIDs(0)
	trials := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q, err := gen.GeneratePattern(ids[i%len(ids)])
		if err != nil {
			b.Fatal(err)
		}
		trials += q.Trials
	}
	b.ReportMetric(float64(trials)/float64(b.N), "trials/query")
}

func BenchmarkFig08RandomSingleton(b *testing.B) {
	db := benchDB()
	gen, err := db.NewGenerator(GenConfig{Seed: 2, MaxTrials: 512})
	if err != nil {
		b.Fatal(err)
	}
	// A rule mix exercising easy and hard targets for RANDOM.
	ids := []RuleID{1, 4, 5, 9, 12, 15}
	trials := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q, err := gen.GenerateRandom([]RuleID{ids[i%len(ids)]})
		if err != nil {
			b.Fatal(err)
		}
		trials += q.Trials
	}
	b.ReportMetric(float64(trials)/float64(b.N), "trials/query")
}

// ---- Figures 9/10: rule pairs, trials and time -------------------------------

func BenchmarkFig09PatternPairs(b *testing.B) {
	db := benchDB()
	gen, err := db.NewGenerator(GenConfig{Seed: 3, MaxTrials: 256})
	if err != nil {
		b.Fatal(err)
	}
	ids := db.ExplorationRuleIDs(8)
	var pairs [][2]RuleID
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			pairs = append(pairs, [2]RuleID{ids[i], ids[j]})
		}
	}
	trials := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		q, err := gen.GeneratePatternPair(p[0], p[1])
		if err != nil {
			b.Fatal(err)
		}
		trials += q.Trials
	}
	b.ReportMetric(float64(trials)/float64(b.N), "trials/pair")
}

func BenchmarkFig10RandomPairs(b *testing.B) {
	db := benchDB()
	gen, err := db.NewGenerator(GenConfig{Seed: 4, MaxTrials: 512})
	if err != nil {
		b.Fatal(err)
	}
	// Pairs that RANDOM can reach in bounded trials.
	pairs := [][2]RuleID{{1, 4}, {1, 5}, {4, 5}, {5, 6}, {1, 30}}
	trials := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		q, err := gen.GenerateRandom([]RuleID{p[0], p[1]})
		if err != nil {
			b.Fatal(err)
		}
		trials += q.Trials
	}
	b.ReportMetric(float64(trials)/float64(b.N), "trials/pair")
}

// ---- Figures 11-13: test-suite compression -----------------------------------

// buildSingletonGraph prepares a suite graph once per benchmark.
func buildSingletonGraph(b *testing.B, db *DB, n, k int) *Graph {
	b.Helper()
	g, err := db.GenerateSuite(SingletonTargets(db.ExplorationRuleIDs(n)),
		SuiteConfig{K: k, Seed: 7, ExtraOps: 3})
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func BenchmarkFig11Compression(b *testing.B) {
	db := benchDB()
	g := buildSingletonGraph(b, db, 10, 5)
	algos := []struct {
		name string
		run  func() (*Solution, error)
	}{
		{"BASELINE", g.Baseline},
		{"SMC", g.SetMultiCover},
		{"TOPK", g.TopKIndependent},
	}
	for _, a := range algos {
		b.Run(a.name, func(b *testing.B) {
			var cost float64
			for i := 0; i < b.N; i++ {
				g.ResetOptimizerCalls()
				sol, err := a.run()
				if err != nil {
					b.Fatal(err)
				}
				cost = sol.TotalCost
			}
			b.ReportMetric(cost, "suite-cost")
		})
	}
}

func buildPairGraph(b *testing.B, db *DB, n, k int) *Graph {
	b.Helper()
	g, err := db.GenerateSuite(PairTargets(db.ExplorationRuleIDs(n)),
		SuiteConfig{K: k, Seed: 9, ExtraOps: 3})
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func BenchmarkFig12PairCompression(b *testing.B) {
	db := benchDB()
	g := buildPairGraph(b, db, 5, 3)
	algos := []struct {
		name string
		run  func() (*Solution, error)
	}{
		{"BASELINE", g.Baseline},
		{"SMC", g.SetMultiCover},
		{"TOPK", g.TopKIndependent},
	}
	for _, a := range algos {
		b.Run(a.name, func(b *testing.B) {
			var cost float64
			for i := 0; i < b.N; i++ {
				g.ResetOptimizerCalls()
				sol, err := a.run()
				if err != nil {
					b.Fatal(err)
				}
				cost = sol.TotalCost
			}
			b.ReportMetric(cost, "suite-cost")
		})
	}
}

func BenchmarkFig13VaryK(b *testing.B) {
	db := benchDB()
	for _, k := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			g := buildPairGraph(b, db, 5, k)
			b.ResetTimer()
			var cost float64
			for i := 0; i < b.N; i++ {
				g.ResetOptimizerCalls()
				sol, err := g.TopKIndependent()
				if err != nil {
					b.Fatal(err)
				}
				cost = sol.TotalCost
			}
			b.ReportMetric(cost, "suite-cost")
		})
	}
}

// ---- Figure 14: monotonicity --------------------------------------------------

func BenchmarkFig14Monotonicity(b *testing.B) {
	db := benchDB()
	g := buildPairGraph(b, db, 5, 3)
	b.Run("full", func(b *testing.B) {
		var calls int
		for i := 0; i < b.N; i++ {
			g.ResetOptimizerCalls()
			sol, err := g.TopKIndependent()
			if err != nil {
				b.Fatal(err)
			}
			calls = sol.OptimizerCalls
		}
		b.ReportMetric(float64(calls), "optimizer-calls")
	})
	b.Run("monotonic", func(b *testing.B) {
		var calls int
		for i := 0; i < b.N; i++ {
			g.ResetOptimizerCalls()
			sol, err := g.TopKMonotonic()
			if err != nil {
				b.Fatal(err)
			}
			calls = sol.OptimizerCalls
		}
		b.ReportMetric(float64(calls), "optimizer-calls")
	})
}

// ---- parallel campaign engine ---------------------------------------------------

// BenchmarkParallelGraphBuild measures the end-to-end campaign (suite
// generation + edge costing via TopKIndependent) at different worker-pool
// sizes. The figure series and solutions are identical across sub-benchmarks;
// only wall-clock changes.
func BenchmarkParallelGraphBuild(b *testing.B) {
	db := benchDB()
	for _, workers := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var cost float64
			for i := 0; i < b.N; i++ {
				g, err := db.GenerateSuite(PairTargets(db.ExplorationRuleIDs(5)),
					SuiteConfig{K: 3, Seed: 9, ExtraOps: 3, Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				sol, err := g.TopKIndependent()
				if err != nil {
					b.Fatal(err)
				}
				cost = sol.TotalCost
			}
			b.ReportMetric(cost, "suite-cost")
		})
	}
}

// BenchmarkSuiteRunEngines measures the execution campaign — running a
// compressed suite's differential tests over the catalog — on the row and
// batch engines. The suite is generated once at a larger scale so plan
// execution (not generation) dominates; reports are identical across
// sub-benchmarks by the engines' differential contract.
func BenchmarkSuiteRunEngines(b *testing.B) {
	db := OpenTPCH(10, 42)
	g, err := db.GenerateSuite(PairTargets(db.ExplorationRuleIDs(5)),
		SuiteConfig{K: 3, Seed: 9, ExtraOps: 3, Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	sol, err := g.TopKIndependent()
	if err != nil {
		b.Fatal(err)
	}
	for _, eng := range []exec.Engine{exec.EngineRow, exec.EngineBatch} {
		b.Run(eng.String(), func(b *testing.B) {
			g.SetEngine(eng)
			for i := 0; i < b.N; i++ {
				if _, err := g.Run(sol, db.Optimizer, db.Catalog); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- substrate micro-benchmarks ------------------------------------------------

const benchQuery = `SELECT c_nationkey, COUNT(*) AS cnt
	FROM customer JOIN orders ON c_custkey = o_custkey
	WHERE o_totalprice > 1000 GROUP BY c_nationkey`

func BenchmarkParseSQL(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := sql.Parse(benchQuery); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBindSQL(b *testing.B) {
	db := benchDB()
	for i := 0; i < b.N; i++ {
		if _, err := bind.BindSQL(benchQuery, db.Catalog); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOptimize(b *testing.B) {
	db := benchDB()
	bound, err := bind.BindSQL(benchQuery, db.Catalog)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Optimizer.Optimize(bound.Tree, bound.MD, opt.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOptimizeWithDisabledRules(b *testing.B) {
	db := benchDB()
	bound, err := bind.BindSQL(benchQuery, db.Catalog)
	if err != nil {
		b.Fatal(err)
	}
	disabled := OptimizeOptions{Disabled: NewRuleSet(5, 6, 7, 104)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Optimizer.Optimize(bound.Tree, bound.MD, disabled); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExecuteJoinAgg(b *testing.B) {
	db := benchDB()
	bound, err := bind.BindSQL(benchQuery, db.Catalog)
	if err != nil {
		b.Fatal(err)
	}
	res, err := db.Optimizer.Optimize(bound.Tree, bound.MD, opt.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exec.Run(res.Plan, db.Catalog); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSQLGeneration(b *testing.B) {
	db := benchDB()
	gen, err := qgen.New(db.Optimizer, qgen.Config{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	q, err := gen.GeneratePattern(14)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sqlgen.Generate(q.Tree, q.MD); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSuiteGeneration(b *testing.B) {
	db := benchDB()
	for i := 0; i < b.N; i++ {
		_, err := suite.Generate(db.Optimizer,
			suite.SingletonTargets([]RuleID{1, 5, 9}),
			suite.GenConfig{K: 2, Seed: int64(i), ExtraOps: 2})
		if err != nil {
			b.Fatal(err)
		}
	}
}
