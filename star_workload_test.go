package qtrtest_test

import (
	"testing"

	"qtrtest"
)

// starWorkload replays the engine-semantics pinning on the second test
// database (§6.1: different schema, similar results).
var starWorkload = []struct {
	name string
	sql  string
}{
	{
		"fact_dim_join",
		"SELECT p_category, SUM(f_amount) AS amt FROM sales JOIN product ON f_productkey = p_productkey GROUP BY p_category",
	},
	{
		"two_dim_join",
		"SELECT s_channel, d_year, COUNT(*) AS n FROM sales JOIN store ON f_storekey = s_storekey JOIN date_dim ON f_datekey = d_datekey GROUP BY s_channel, d_year",
	},
	{
		"left_join_probe",
		"SELECT h_name FROM shopper LEFT JOIN sales ON h_shopperkey = f_shopperkey WHERE f_salekey IS NULL",
	},
	{
		"exists_shoppers",
		"SELECT h_name FROM shopper WHERE EXISTS (SELECT 1 AS one FROM sales WHERE f_shopperkey = h_shopperkey AND f_quantity > 15)",
	},
	{
		"quarter_filter",
		"SELECT d_year, COUNT(*) AS n FROM sales JOIN date_dim ON f_datekey = d_datekey WHERE d_quarter = 2 GROUP BY d_year",
	},
	{
		"union_names",
		"SELECT p_name FROM product UNION ALL SELECT s_name FROM store",
	},
	{
		"having_on_fact",
		"SELECT f_storekey, SUM(f_amount) AS amt FROM sales GROUP BY f_storekey HAVING COUNT(*) > 30",
	},
}

// TestStarWorkloadRuleInvariance: the paper's correctness methodology over
// the star schema.
func TestStarWorkloadRuleInvariance(t *testing.T) {
	db := qtrtest.OpenStar(1.0, 42)
	for _, w := range starWorkload {
		w := w
		t.Run(w.name, func(t *testing.T) {
			base, _, err := db.Query(w.sql)
			if err != nil {
				t.Fatalf("%s: %v", w.sql, err)
			}
			rs, err := db.RuleSetOf(w.sql)
			if err != nil {
				t.Fatal(err)
			}
			for _, id := range rs.Sorted() {
				if id > 100 {
					continue
				}
				rows, err := db.QueryDisabled(w.sql, id)
				if err != nil {
					t.Fatalf("rule %d: %v", id, err)
				}
				if !qtrtest.EqualResults(base, rows) {
					t.Errorf("disabling rule %d changes results of %s", id, w.name)
				}
			}
		})
	}
}

// TestStarWorkloadWithExtensions re-runs the workload with the
// schema-dependent extension rules enabled — the FK joins here are exactly
// what rules 31/32 target.
func TestStarWorkloadWithExtensions(t *testing.T) {
	plain := qtrtest.OpenStar(1.0, 42)
	ext := qtrtest.Open(plain.Catalog, qtrtest.RegistryWithExtensions())
	for _, w := range starWorkload {
		w := w
		t.Run(w.name, func(t *testing.T) {
			a, _, err := plain.Query(w.sql)
			if err != nil {
				t.Fatal(err)
			}
			b, _, err := ext.Query(w.sql)
			if err != nil {
				t.Fatal(err)
			}
			if !qtrtest.EqualResults(a, b) {
				t.Errorf("extension rules change results of %s", w.name)
			}
		})
	}
}
