package qtrtest_test

import (
	"testing"

	"qtrtest"
)

// workload is a set of handwritten TPC-H-flavored queries exercising every
// operator the engine supports, with the row counts the deterministic
// (seed 42, scale 1.0) test database produces. These counts pin down engine
// semantics end to end: any change to the generator, optimizer or executor
// that alters results breaks this test.
var workload = []struct {
	name string
	sql  string
	rows int
}{
	{
		"selective_scan",
		"SELECT n_name FROM nation WHERE n_regionkey = 1",
		5,
	},
	{
		"join_filter",
		"SELECT n_name, r_name FROM nation JOIN region ON n_regionkey = r_regionkey WHERE r_name = 'EUROPE'",
		5,
	},
	{
		"three_way_join",
		"SELECT s_name FROM supplier JOIN nation ON s_nationkey = n_nationkey JOIN region ON n_regionkey = r_regionkey WHERE r_name = 'AFRICA'",
		8,
	},
	{
		"group_by_count",
		"SELECT o_orderstatus, COUNT(*) AS n FROM orders GROUP BY o_orderstatus",
		3,
	},
	{
		"group_by_having_style", // HAVING expressed as a derived-table filter
		"SELECT * FROM (SELECT c_nationkey, COUNT(*) AS n FROM customer GROUP BY c_nationkey) AS t WHERE n > 4",
		13,
	},
	{
		"left_join_null_probe",
		"SELECT c_name FROM customer LEFT JOIN orders ON c_custkey = o_custkey WHERE o_orderkey IS NULL",
		2,
	},
	{
		"semi_join_exists",
		"SELECT p_name FROM part WHERE EXISTS (SELECT 1 AS one FROM lineitem WHERE l_partkey = p_partkey AND l_quantity > 45)",
		72,
	},
	{
		"anti_join_not_exists",
		"SELECT c_name FROM customer WHERE NOT EXISTS (SELECT 1 AS one FROM orders WHERE o_custkey = c_custkey)",
		2,
	},
	{
		"union_all",
		"SELECT n_name FROM nation UNION ALL SELECT r_name FROM region",
		30,
	},
	{
		"order_limit",
		"SELECT c_name, c_acctbal FROM customer ORDER BY c_acctbal DESC LIMIT 10",
		10,
	},
	{
		"agg_sum_avg",
		"SELECT l_returnflag, SUM(l_quantity) AS q, AVG(l_discount) AS d, COUNT(*) AS n FROM lineitem GROUP BY l_returnflag",
		3,
	},
	{
		"self_join",
		"SELECT a.n_name FROM nation AS a JOIN nation AS b ON a.n_regionkey = b.n_nationkey WHERE b.n_name = 'CANADA'",
		5,
	},
	{
		"arith_projection",
		"SELECT l_extendedprice * l_discount AS rebate FROM lineitem WHERE l_shipdate < 100",
		0, // filled below: computed dynamically
	},
	{
		"distinct_via_group",
		"SELECT c_mktsegment FROM customer GROUP BY c_mktsegment",
		5,
	},
	{
		"date_range",
		"SELECT o_orderkey FROM orders WHERE o_orderdate >= 1000 AND o_orderdate < 2000",
		0, // computed dynamically
	},
	{
		"having_reuse",
		"SELECT c_nationkey, COUNT(*) AS n FROM customer GROUP BY c_nationkey HAVING COUNT(*) > 4",
		-1, // filled by TestWorkloadRowCounts bootstrap below
	},
	{
		"having_new_agg",
		"SELECT s_nationkey FROM supplier GROUP BY s_nationkey HAVING MAX(s_acctbal) > 5000",
		-1,
	},
	{
		"in_list",
		"SELECT n_name FROM nation WHERE n_regionkey IN (0, 3)",
		10,
	},
	{
		"not_in",
		"SELECT r_name FROM region WHERE r_regionkey NOT IN (1, 2)",
		3,
	},
	{
		"between",
		"SELECT p_name FROM part WHERE p_size BETWEEN 10 AND 12",
		-1,
	},
}

func TestWorkloadRowCounts(t *testing.T) {
	db := qtrtest.OpenTPCH(1.0, 42)
	for _, w := range workload {
		w := w
		t.Run(w.name, func(t *testing.T) {
			rows, _, err := db.Query(w.sql)
			if err != nil {
				t.Fatalf("%s: %v", w.sql, err)
			}
			if w.rows > 0 && len(rows) != w.rows {
				t.Errorf("%s: %d rows, want %d", w.name, len(rows), w.rows)
			}
			if w.rows == -1 && len(rows) == 0 {
				t.Errorf("%s: expected a non-empty result", w.name)
			}
			if w.rows == 0 && len(rows) == 0 && (w.name == "arith_projection" || w.name == "date_range") {
				// Dynamic cases: just require successful execution; emptiness
				// is data-dependent but the deterministic seed makes them
				// non-empty in practice.
				t.Logf("%s returned %d rows", w.name, len(rows))
			}
		})
	}
}

// TestWorkloadRuleInvariance runs each workload query with every exercised
// exploration rule disabled in turn and requires identical results — the
// paper's correctness methodology over a realistic workload rather than
// generated queries.
func TestWorkloadRuleInvariance(t *testing.T) {
	db := qtrtest.OpenTPCH(1.0, 42)
	for _, w := range workload {
		w := w
		t.Run(w.name, func(t *testing.T) {
			base, _, err := db.Query(w.sql)
			if err != nil {
				t.Fatal(err)
			}
			rs, err := db.RuleSetOf(w.sql)
			if err != nil {
				t.Fatal(err)
			}
			for _, id := range rs.Sorted() {
				if id > 100 {
					continue
				}
				rows, err := db.QueryDisabled(w.sql, id)
				if err != nil {
					t.Fatalf("rule %d: %v", id, err)
				}
				if !qtrtest.EqualResults(base, rows) {
					t.Errorf("disabling rule %d changes results of %s", id, w.name)
				}
			}
		})
	}
}

// TestWorkloadEstimationQuality bounds the cardinality estimator's Q-error
// (max(est/act, act/est), 1 = perfect) per operator over the workload. The
// bounds are loose regression guards: histogram-backed scans and FK joins
// estimate near-exactly; IS NULL probes and post-filter aggregates drift.
func TestWorkloadEstimationQuality(t *testing.T) {
	db := qtrtest.OpenTPCH(1.0, 42)
	for _, w := range workload {
		w := w
		t.Run(w.name, func(t *testing.T) {
			_, stats, err := db.Analyze(w.sql)
			if err != nil {
				t.Fatal(err)
			}
			if q := stats.MaxQError(); q > 25 {
				t.Errorf("%s: worst q-error %.1f exceeds 25\n%s", w.name, q, stats)
			}
		})
	}
}

// TestWorkloadDeterminism: running the workload twice (fresh databases,
// same seed) produces identical results.
func TestWorkloadDeterminism(t *testing.T) {
	a := qtrtest.OpenTPCH(1.0, 42)
	b := qtrtest.OpenTPCH(1.0, 42)
	for _, w := range workload {
		ra, _, err := a.Query(w.sql)
		if err != nil {
			t.Fatal(err)
		}
		rb, _, err := b.Query(w.sql)
		if err != nil {
			t.Fatal(err)
		}
		if !qtrtest.EqualResults(ra, rb) {
			t.Errorf("%s: results differ across identically-seeded databases", w.name)
		}
	}
}
