// Package rescache is a sharded, single-flight execution-result cache.
// Campaigns execute the same physical plan against the same database over
// and over — Plan(q) vs Plan(q,¬R) when rule R never fires, shrinker replays
// that differ by one reduction, metamorphic rewrites sharing subplans, and
// qtrtest verify's bounded pairs over a tiny database pool. The cache keys
// executions by (plan fingerprint, catalog identity/version, row cap, work
// budget, engine) and memoizes the materialized result — including the error
// outcome, since execution is deterministic given the key — so every
// recurrence after the first is a map hit.
//
// The design follows the PR-1 edge-costing cache in internal/core/suite:
// fixed shard array indexed by key hash, per-shard mutex around a map of
// entries, and a sync.Once per entry so concurrent requests for the same key
// execute once and share the result (single-flight). On top of that it adds
// what a long-running service needs (ROADMAP item 1): a per-shard LRU list
// with a byte-size cap, an eviction counter, and hit/miss statistics.
//
// Determinism: cached rows are returned by reference and shared between
// callers, which is safe because every consumer in this repo treats result
// rows as read-only (the same contract batch execution relies on for
// zero-copy scans). Eviction order depends on goroutine scheduling, but an
// evicted entry is simply recomputed — eviction affects performance, never
// results — so reports stay byte-identical with the cache on or off, at any
// worker count.
package rescache

import (
	"sync"
	"sync/atomic"
	"unsafe"

	"qtrtest/internal/catalog"
	"qtrtest/internal/datum"
	"qtrtest/internal/exec"
	"qtrtest/internal/logical"
	"qtrtest/internal/physical"
)

// Key identifies one execution: what ran, against which database state, and
// under which caps. Everything RunEngine's outcome depends on is in the key,
// which is what makes caching errors (row-cap trips included) sound.
type Key struct {
	Plan    string // physical.Expr.Hash fingerprint
	CatID   uint64 // catalog identity; process-unique per Catalog value
	CatVer  uint64 // catalog mutation version
	MaxRows int
	MaxWork int64
	Engine  exec.Engine
}

// KeyFor builds the cache key for one execution. It is exported so oracle
// budgets (the shrinker's miss-only accounting) can reason about execution
// identity without depending on cache internals.
func KeyFor(eng exec.Engine, plan *physical.Expr, cat *catalog.Catalog, maxRows int, maxWork int64) Key {
	id, ver := cat.Identity()
	return Key{
		Plan:    plan.Hash(),
		CatID:   id,
		CatVer:  ver,
		MaxRows: maxRows,
		MaxWork: maxWork,
		Engine:  eng,
	}
}

// KeyForTree builds the cache key for a logical-tree execution on a
// tree-capable backend. The engine dimension alone already separates
// backend results from the built-in engines'; the fingerprint prefix
// additionally separates a tree evaluation from a (hypothetical) plan
// execution on the same backend.
func KeyForTree(eng exec.Engine, tree *logical.Expr, cat *catalog.Catalog, maxRows int, maxWork int64) Key {
	id, ver := cat.Identity()
	return Key{
		Plan:    "tree|" + tree.Hash(),
		CatID:   id,
		CatVer:  ver,
		MaxRows: maxRows,
		MaxWork: maxWork,
		Engine:  eng,
	}
}

// entry is one cached execution. The sync.Once provides single-flight: the
// first goroutine to claim the entry computes, everyone else blocks on Do
// and then reads the shared result.
type entry struct {
	key  Key
	once sync.Once

	rows []datum.Row
	err  error
	size int64

	// LRU list hooks; an entry joins its shard's list only after its
	// result is computed (in-flight entries are not evictable).
	prev, next *entry
	listed     bool
}

// shard is one lock domain: a key-to-entry map plus an LRU list ordered
// most-recently-used first.
type shard struct {
	mu         sync.Mutex
	entries    map[Key]*entry
	head, tail *entry
	bytes      int64
}

const numShards = 16

// Cache is the sharded single-flight result cache. The zero value is not
// usable; call New. A nil *Cache is a valid "caching disabled" instance:
// Run falls through to direct execution.
type Cache struct {
	shards   [numShards]shard
	maxBytes int64

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

// DefaultMaxBytes caps the cache at 256 MiB of (approximated) result bytes
// unless the caller chooses otherwise.
const DefaultMaxBytes = 256 << 20

// New returns an empty cache holding at most maxBytes of result data per
// the approxSize estimate; maxBytes <= 0 selects DefaultMaxBytes.
func New(maxBytes int64) *Cache {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	c := &Cache{maxBytes: maxBytes}
	for i := range c.shards {
		c.shards[i].entries = make(map[Key]*entry)
	}
	return c
}

// Stats is a point-in-time snapshot of cache effectiveness counters.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Entries   int
	Bytes     int64
}

// Stats returns current counters. Hits counts requests served from an
// existing entry (including waiters that arrived while the result was still
// being computed); misses counts entries created; evictions counts entries
// dropped to stay under the byte cap.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	s := Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		s.Entries += len(sh.entries)
		s.Bytes += sh.bytes
		sh.mu.Unlock()
	}
	return s
}

// shardFor assigns keys to shards with FNV-1a over the key fields. The hash
// is deliberately unseeded: shard assignment (and hence eviction behavior)
// is a pure function of the key stream, which keeps cache behavior
// reproducible run-to-run at a fixed worker count.
func (c *Cache) shardFor(k Key) *shard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(k.Plan); i++ {
		h = (h ^ uint64(k.Plan[i])) * prime64
	}
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h = (h ^ (v & 0xff)) * prime64
			v >>= 8
		}
	}
	mix(k.CatID)
	mix(k.CatVer)
	mix(uint64(k.MaxRows))
	mix(uint64(k.MaxWork))
	mix(uint64(k.Engine))
	return &c.shards[h%numShards]
}

// Run executes the plan through the cache: a hit returns the memoized rows
// and error, a miss executes via exec.RunEngine exactly once no matter how
// many goroutines ask concurrently. A nil receiver executes directly.
func (c *Cache) Run(eng exec.Engine, plan *physical.Expr, cat *catalog.Catalog, maxRows int, maxWork int64) ([]datum.Row, error) {
	if c == nil {
		return exec.RunEngine(eng, plan, cat, maxRows, maxWork)
	}
	return c.runKeyed(KeyFor(eng, plan, cat, maxRows, maxWork), func() ([]datum.Row, error) {
		return exec.RunEngine(eng, plan, cat, maxRows, maxWork)
	})
}

// RunTree executes a logical tree on a tree-capable backend through the
// cache, with the same hit/miss/single-flight behavior as Run. Tree and
// plan executions live in one keyspace but cannot collide: tree keys carry
// the "tree|" fingerprint prefix (physical and logical fingerprints both
// start with an operator number) and a backend engine ID.
func (c *Cache) RunTree(eng exec.Engine, tree *logical.Expr, cat *catalog.Catalog, maxRows int, maxWork int64) ([]datum.Row, error) {
	if c == nil {
		return exec.RunTree(eng, tree, cat, maxRows, maxWork)
	}
	return c.runKeyed(KeyForTree(eng, tree, cat, maxRows, maxWork), func() ([]datum.Row, error) {
		return exec.RunTree(eng, tree, cat, maxRows, maxWork)
	})
}

// runKeyed is the shared cache core: look up the key, claim or join the
// entry, compute once under the entry's sync.Once.
func (c *Cache) runKeyed(k Key, compute func() ([]datum.Row, error)) ([]datum.Row, error) {
	sh := c.shardFor(k)

	sh.mu.Lock()
	e, ok := sh.entries[k]
	if ok {
		if e.listed {
			sh.moveToFront(e)
		}
		sh.mu.Unlock()
		c.hits.Add(1)
	} else {
		e = &entry{key: k}
		sh.entries[k] = e
		sh.mu.Unlock()
		c.misses.Add(1)
	}

	e.once.Do(func() {
		e.rows, e.err = compute()
		e.size = approxSize(e.rows)
		c.admit(sh, e)
	})
	return e.rows, e.err
}

// admit links a freshly computed entry into its shard's LRU and evicts from
// the cold end until the shard is back under its share of the byte budget.
// An entry larger than the whole shard budget is dropped immediately — it
// would only evict everything else and then itself on the next admit.
func (c *Cache) admit(sh *shard, e *entry) {
	budget := c.maxBytes / numShards
	sh.mu.Lock()
	defer sh.mu.Unlock()
	// The entry may have been evicted from the map while it was being
	// computed (possible only via an explicit future Purge-style API; today
	// in-flight entries stay mapped, but be defensive).
	if sh.entries[e.key] != e {
		return
	}
	if e.size > budget {
		delete(sh.entries, e.key)
		c.evictions.Add(1)
		return
	}
	sh.pushFront(e)
	sh.bytes += e.size
	for sh.bytes > budget && sh.tail != nil && sh.tail != e {
		c.evictLocked(sh, sh.tail)
	}
}

func (c *Cache) evictLocked(sh *shard, e *entry) {
	sh.unlink(e)
	delete(sh.entries, e.key)
	sh.bytes -= e.size
	c.evictions.Add(1)
}

func (sh *shard) pushFront(e *entry) {
	e.listed = true
	e.prev = nil
	e.next = sh.head
	if sh.head != nil {
		sh.head.prev = e
	}
	sh.head = e
	if sh.tail == nil {
		sh.tail = e
	}
}

func (sh *shard) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		sh.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		sh.tail = e.prev
	}
	e.prev, e.next = nil, nil
	e.listed = false
}

func (sh *shard) moveToFront(e *entry) {
	if sh.head == e {
		return
	}
	sh.unlink(e)
	sh.pushFront(e)
}

// datumSize is the in-memory footprint of one Datum excluding string bytes.
const datumSize = int64(unsafe.Sizeof(datum.Datum{}))

// rowHeaderSize is the slice header of one Row within a result slice.
const rowHeaderSize = int64(unsafe.Sizeof(datum.Row{}))

// approxSize estimates the retained bytes of a materialized result. It
// counts row headers, datum structs and string payloads; map/list overhead
// of the cache itself is ignored, so the byte cap is an approximation — good
// enough to bound the process, which is all eviction is for.
func approxSize(rows []datum.Row) int64 {
	n := int64(64) // entry struct + map slot, roughly
	for _, r := range rows {
		n += rowHeaderSize + datumSize*int64(len(r))
		for i := range r {
			n += int64(len(r[i].S))
		}
	}
	return n
}
