package rescache

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"qtrtest/internal/catalog"
	"qtrtest/internal/datum"
	"qtrtest/internal/exec"
	"qtrtest/internal/physical"
	"qtrtest/internal/scalar"
)

// testCatalog builds a one-table catalog of n (id, val) rows.
func testCatalog(n int) *catalog.Catalog {
	t := &catalog.Table{
		Name: "t",
		Columns: []catalog.Column{
			{Name: "id", Type: datum.TypeInt},
			{Name: "val", Type: datum.TypeInt},
		},
		PrimaryKey: []string{"id"},
	}
	for i := 0; i < n; i++ {
		t.Rows = append(t.Rows, datum.Row{datum.NewInt(int64(i)), datum.NewInt(int64(i % 7))})
	}
	t.ComputeStats()
	cat := catalog.New()
	cat.Add(t)
	return cat
}

func scanPlan() *physical.Expr {
	return &physical.Expr{Op: physical.OpScan, Table: "t", Cols: []scalar.ColumnID{1, 2}}
}

func filterPlan(threshold int64) *physical.Expr {
	return &physical.Expr{
		Op: physical.OpFilter, Children: []*physical.Expr{scanPlan()},
		Filter: &scalar.Cmp{Op: scalar.CmpLT, L: &scalar.ColRef{ID: 2}, R: &scalar.Const{D: datum.NewInt(threshold)}},
	}
}

func requireEqualRows(t *testing.T, want, got []datum.Row) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("row count %d vs %d", len(want), len(got))
	}
	for i := range want {
		for j := range want[i] {
			if want[i][j] != got[i][j] {
				t.Fatalf("row %d col %d: %v vs %v", i, j, want[i][j], got[i][j])
			}
		}
	}
}

func TestRunMatchesDirectExecution(t *testing.T) {
	cat := testCatalog(100)
	c := New(0)
	for _, plan := range []*physical.Expr{scanPlan(), filterPlan(3)} {
		want, werr := exec.RunEngine(exec.EngineBatch, plan, cat, 0, 0)
		got, gerr := c.Run(exec.EngineBatch, plan, cat, 0, 0)
		if werr != nil || gerr != nil {
			t.Fatalf("unexpected errors: %v / %v", werr, gerr)
		}
		requireEqualRows(t, want, got)
		// Second request: a hit must return the same result.
		again, err := c.Run(exec.EngineBatch, plan, cat, 0, 0)
		if err != nil {
			t.Fatalf("hit: %v", err)
		}
		requireEqualRows(t, want, again)
	}
	st := c.Stats()
	if st.Misses != 2 || st.Hits != 2 {
		t.Fatalf("stats = %+v, want 2 misses and 2 hits", st)
	}
}

func TestNilCacheFallsThrough(t *testing.T) {
	cat := testCatalog(10)
	var c *Cache
	rows, err := c.Run(exec.EngineBatch, scanPlan(), cat, 0, 0)
	if err != nil || len(rows) != 10 {
		t.Fatalf("nil cache run: %d rows, err %v", len(rows), err)
	}
	if st := c.Stats(); st != (Stats{}) {
		t.Fatalf("nil cache stats = %+v, want zero", st)
	}
}

func TestErrorOutcomesAreCached(t *testing.T) {
	cat := testCatalog(100)
	c := New(0)
	// maxRows below the result size trips ErrRowLimit (a Capped verdict at
	// the oracle layer); the trip is deterministic, so it caches.
	for i := 0; i < 2; i++ {
		_, err := c.Run(exec.EngineBatch, scanPlan(), cat, 5, 0)
		if !errors.Is(err, exec.ErrRowLimit) {
			t.Fatalf("attempt %d: err = %v, want ErrRowLimit", i, err)
		}
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Fatalf("stats = %+v, want 1 miss then 1 hit", st)
	}
}

func TestKeyDistinguishesCapsEnginesAndCatalogs(t *testing.T) {
	catA := testCatalog(20)
	catB := testCatalog(20)
	c := New(0)
	runs := []struct {
		cat     *catalog.Catalog
		eng     exec.Engine
		maxRows int
		maxWork int64
	}{
		{catA, exec.EngineBatch, 0, 0},
		{catA, exec.EngineRow, 0, 0},    // engine differs
		{catA, exec.EngineBatch, 50, 0}, // row cap differs
		{catA, exec.EngineBatch, 0, 99}, // work budget differs
		{catB, exec.EngineBatch, 0, 0},  // catalog identity differs
	}
	for i, r := range runs {
		if _, err := c.Run(r.eng, scanPlan(), r.cat, r.maxRows, r.maxWork); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
	if st := c.Stats(); st.Misses != int64(len(runs)) || st.Hits != 0 {
		t.Fatalf("stats = %+v, want %d distinct misses", st, len(runs))
	}
}

func TestSingleFlight(t *testing.T) {
	cat := testCatalog(2000)
	c := New(0)
	plan := filterPlan(4)
	const goroutines = 16
	var wg sync.WaitGroup
	results := make([][]datum.Row, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rows, err := c.Run(exec.EngineBatch, plan, cat, 0, 0)
			if err != nil {
				t.Errorf("goroutine %d: %v", g, err)
				return
			}
			results[g] = rows
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Misses != 1 {
		t.Fatalf("misses = %d, want exactly 1 (single-flight)", st.Misses)
	}
	if st.Hits != goroutines-1 {
		t.Fatalf("hits = %d, want %d", st.Hits, goroutines-1)
	}
	for g := 1; g < goroutines; g++ {
		requireEqualRows(t, results[0], results[g])
	}
}

func TestConcurrentMixedKeys(t *testing.T) {
	// Race-detector workout: many goroutines over overlapping keys with a
	// cap small enough to force evictions while other goroutines read.
	cat := testCatalog(500)
	c := New(64 << 10)
	plans := make([]*physical.Expr, 8)
	for i := range plans {
		plans[i] = filterPlan(int64(i))
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				plan := plans[(g+i)%len(plans)]
				if _, err := c.Run(exec.EngineBatch, plan, cat, 0, 0); err != nil {
					t.Errorf("run: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if st := c.Stats(); st.Hits+st.Misses != 8*40 {
		t.Fatalf("hits+misses = %d, want %d", st.Hits+st.Misses, 8*40)
	}
}

func TestEvictionBoundsMemory(t *testing.T) {
	cat := testCatalog(1000)
	// Cap sized so each shard holds a few results but the 64-key stream
	// overflows it, forcing LRU evictions.
	const cap = 2 << 20
	c := New(cap)
	for i := 0; i < 64; i++ {
		plan := filterPlan(int64(i%7) + 1)
		// Vary maxRows to force distinct keys beyond the 7 distinct plans.
		if _, err := c.Run(exec.EngineBatch, plan, cat, 2000+i, 0); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatalf("stats = %+v, want evictions under a %d-byte cap", st, cap)
	}
	if st.Bytes > cap {
		t.Fatalf("retained %d bytes, cap %d", st.Bytes, cap)
	}
	// Entries in the map must match what Stats reports and stay bounded.
	if st.Entries == 0 || st.Entries >= 64 {
		t.Fatalf("entries = %d, want 0 < entries < 64", st.Entries)
	}
}

func TestLRUKeepsHotEntries(t *testing.T) {
	cat := testCatalog(300)
	hot := filterPlan(1)
	// Budget sized so one shard holds a few entries; keep touching `hot`
	// while streaming cold keys through, then verify hot stayed cached.
	c := New(numShards * 64 << 10)
	if _, err := c.Run(exec.EngineBatch, hot, cat, 0, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		cold := filterPlan(2)
		if _, err := c.Run(exec.EngineBatch, cold, cat, 1000+i, 0); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Run(exec.EngineBatch, hot, cat, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	before := c.Stats()
	if _, err := c.Run(exec.EngineBatch, hot, cat, 0, 0); err != nil {
		t.Fatal(err)
	}
	after := c.Stats()
	if after.Hits != before.Hits+1 {
		t.Fatalf("hot plan was evicted: hits %d -> %d (stats %+v)", before.Hits, after.Hits, after)
	}
}

func TestOversizedEntryIsDroppedNotAdmitted(t *testing.T) {
	cat := testCatalog(5000)
	// Cap far below one 5000-row result: the entry must be dropped at
	// admit time (counted as an eviction) and recomputed on re-request.
	c := New(numShards * 1024)
	for i := 0; i < 2; i++ {
		rows, err := c.Run(exec.EngineBatch, scanPlan(), cat, 0, 0)
		if err != nil || len(rows) != 5000 {
			t.Fatalf("run %d: %d rows, err %v", i, len(rows), err)
		}
	}
	st := c.Stats()
	if st.Misses != 2 {
		t.Fatalf("misses = %d, want 2 (oversized entry never admitted)", st.Misses)
	}
	if st.Evictions != 2 || st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("stats = %+v, want both oversized results dropped", st)
	}
}

func TestKeyForIncorporatesCatalogVersion(t *testing.T) {
	cat := testCatalog(10)
	k1 := KeyFor(exec.EngineBatch, scanPlan(), cat, 0, 0)
	extra := &catalog.Table{Name: "u", Columns: []catalog.Column{{Name: "x", Type: datum.TypeInt}}}
	cat.Add(extra)
	k2 := KeyFor(exec.EngineBatch, scanPlan(), cat, 0, 0)
	if k1 == k2 {
		t.Fatalf("key unchanged across catalog mutation: %+v", k1)
	}
	if k1.CatID != k2.CatID {
		t.Fatalf("catalog identity changed without a new catalog: %d vs %d", k1.CatID, k2.CatID)
	}
}

func TestApproxSizeCountsStrings(t *testing.T) {
	small := []datum.Row{{datum.NewInt(1)}}
	big := []datum.Row{{datum.NewString(fmt.Sprintf("%01000d", 7))}}
	if approxSize(big) <= approxSize(small) {
		t.Fatalf("approxSize ignores string payloads: big %d <= small %d",
			approxSize(big), approxSize(small))
	}
}
