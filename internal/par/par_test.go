package par

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestResolve(t *testing.T) {
	if Resolve(0) < 1 {
		t.Fatalf("Resolve(0) = %d, want >= 1", Resolve(0))
	}
	if Resolve(-3) < 1 {
		t.Fatalf("Resolve(-3) = %d, want >= 1", Resolve(-3))
	}
	if Resolve(7) != 7 {
		t.Fatalf("Resolve(7) = %d", Resolve(7))
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 0} {
		const n = 1000
		var hits [n]atomic.Int32
		ForEach(workers, n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	ForEach(4, 0, func(int) { t.Fatal("fn called for n=0") })
	if err := ForEachErr(4, 0, func(int) error { return errors.New("x") }); err != nil {
		t.Fatalf("ForEachErr on empty range: %v", err)
	}
}

func TestForEachIndexAddressedDeterminism(t *testing.T) {
	const n = 500
	run := func(workers int) []int {
		out := make([]int, n)
		ForEach(workers, n, func(i int) { out[i] = i * i })
		return out
	}
	seq, par8 := run(1), run(8)
	for i := range seq {
		if seq[i] != par8[i] {
			t.Fatalf("index %d: sequential %d vs parallel %d", i, seq[i], par8[i])
		}
	}
}

func TestForEachErrReturnsLowestIndexError(t *testing.T) {
	err := ForEachErr(8, 100, func(i int) error {
		if i%10 == 3 {
			return fmt.Errorf("item %d failed", i)
		}
		return nil
	})
	if err == nil || err.Error() != "item 3 failed" {
		t.Fatalf("got %v, want the error of index 3", err)
	}
	if err := ForEachErr(8, 100, func(int) error { return nil }); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestForEachSingleWorkerRunsInIndexOrder(t *testing.T) {
	const n = 200
	var order []int
	ForEach(1, n, func(i int) { order = append(order, i) })
	if len(order) != n {
		t.Fatalf("ran %d items, want %d", len(order), n)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("position %d ran index %d; one worker must run in index order", i, got)
		}
	}
}

func TestForEachPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 0} {
		func() {
			defer func() {
				v := recover()
				if v == nil {
					t.Fatalf("workers=%d: panic did not propagate to the caller", workers)
				}
				if s, ok := v.(string); !ok || s != "boom" {
					t.Fatalf("workers=%d: recovered %v, want the original panic value", workers, v)
				}
			}()
			ForEach(workers, 64, func(i int) {
				if i == 7 {
					panic("boom")
				}
			})
		}()
	}
}

func TestForEachSequentialPanicIsFirstIndex(t *testing.T) {
	// With one worker the re-raised panic must be the first panicking index,
	// exactly as an inline loop would fail.
	defer func() {
		if v := recover(); v != "panic-3" {
			t.Fatalf("recovered %v, want panic-3", v)
		}
	}()
	ForEach(1, 100, func(i int) {
		if i%10 == 3 {
			panic(fmt.Sprintf("panic-%d", i))
		}
	})
}

func TestForEachErrPanicPropagates(t *testing.T) {
	defer func() {
		if v := recover(); v == nil {
			t.Fatal("panic inside ForEachErr fn did not propagate")
		}
	}()
	_ = ForEachErr(4, 32, func(i int) error {
		if i == 5 {
			panic("err-path boom")
		}
		return nil
	})
}

func TestForEachErrRunsAllItemsDespiteFailures(t *testing.T) {
	var ran atomic.Int32
	_ = ForEachErr(4, 64, func(i int) error {
		ran.Add(1)
		if i == 0 {
			return errors.New("early failure")
		}
		return nil
	})
	if ran.Load() != 64 {
		t.Fatalf("ran %d items, want 64", ran.Load())
	}
}
