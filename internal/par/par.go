// Package par provides the bounded worker-pool primitives behind the
// parallel campaign engine: fan a fixed index space [0, n) out over a
// bounded number of goroutines, with results written into index-addressed
// storage so output is byte-identical regardless of the worker count.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DeriveSeed mixes a campaign seed with a work-item index (splitmix64
// finalizer) into an independent, well-separated RNG seed that depends only
// on (seed, idx). Deriving per-item seeds this way — never advancing a
// shared RNG — is the keystone of the engine's determinism guarantee: the
// streams are identical whether items run sequentially or on any number of
// workers.
func DeriveSeed(seed int64, idx int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(idx+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// Resolve maps a workers setting to an actual worker count: any value <= 0
// selects runtime.GOMAXPROCS(0), i.e. one worker per usable core.
func Resolve(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// ForEach invokes fn(i) exactly once for every i in [0, n), using at most
// workers goroutines (workers <= 0 means GOMAXPROCS). Items are claimed from
// a shared counter, so completion order is nondeterministic; fn must write
// its output into slot i of a preallocated slice (never append, never send
// on a channel) for the overall result to be deterministic. With one worker
// the calling goroutine runs every item itself in index order.
//
// A panic inside fn is re-raised on the calling goroutine rather than
// crashing the process from a worker (an unrecovered goroutine panic cannot
// be caught by the caller). Workers stop claiming new items once a panic is
// observed; in-flight items finish, and the panic value of the lowest
// observed panicking index is re-raised — with one worker that is exactly
// the first panic a sequential loop would have hit.
func ForEach(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers = Resolve(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		next    atomic.Int64
		wg      sync.WaitGroup
		stopped atomic.Bool
		mu      sync.Mutex
		panics  bool
		pIdx    int
		pVal    any
	)
	record := func(i int, v any) {
		mu.Lock()
		if !panics || i < pIdx {
			panics, pIdx, pVal = true, i, v
		}
		mu.Unlock()
		stopped.Store(true)
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for !stopped.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				func() {
					defer func() {
						if v := recover(); v != nil {
							record(i, v)
						}
					}()
					fn(i)
				}()
			}
		}()
	}
	wg.Wait()
	if panics {
		panic(pVal)
	}
}

// ForEachErr is ForEach for fallible work. Every item runs to completion
// regardless of other items' failures (so the set of completed items never
// depends on scheduling), and the error of the lowest failing index is
// returned — the same error a sequential loop would have surfaced first.
func ForEachErr(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	errs := make([]error, n)
	ForEach(workers, n, func(i int) {
		errs[i] = fn(i)
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
