package lint

import (
	"encoding/json"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// check parses and typechecks one or more sources (filename → content) and
// runs the analyzers over them.
func check(t *testing.T, sources map[string]string, analyzers ...*Analyzer) []Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	var files []*ast.File
	var names []string
	for name := range sources {
		names = append(names, name)
	}
	// Deterministic file order so diagnostics sort stably.
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, sources[name], parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Defs:  make(map[*ast.Ident]types.Object),
		Uses:  make(map[*ast.Ident]types.Object),
	}
	var tc types.Config
	pkg, err := tc.Check("p", fset, files, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return Run(fset, files, pkg, info, analyzers)
}

// reportCalls flags every function call; simple enough that tests can place
// findings on exact lines.
var reportCalls = &Analyzer{
	Name: "calls",
	Doc:  "flags every call expression",
	Run: func(pass *Pass) {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if c, ok := n.(*ast.CallExpr); ok {
					pass.Reportf(c.Pos(), "call found")
				}
				return true
			})
		}
	},
}

func TestAnalyzerReports(t *testing.T) {
	diags := check(t, map[string]string{
		"a.go": "package p\nfunc f() int { return g() }\nfunc g() int { return 0 }\n",
	}, reportCalls)
	if len(diags) != 1 || diags[0].Analyzer != "calls" {
		t.Fatalf("want one calls diagnostic, got %+v", diags)
	}
}

func TestSuppressionOnSameAndPreviousLine(t *testing.T) {
	diags := check(t, map[string]string{
		"a.go": `package p

func f() int { return g() } //qtrlint:allow calls same-line suppression
func g() int {
	//qtrlint:allow calls previous-line suppression
	return f()
}
`,
	}, reportCalls)
	if len(diags) != 0 {
		t.Fatalf("both calls should be suppressed, got %+v", diags)
	}
}

func TestSuppressionWrongAnalyzerDoesNotApply(t *testing.T) {
	diags := check(t, map[string]string{
		"a.go": `package p

func f() int { return g() } //qtrlint:allow other not-this-analyzer
func g() int { return 0 }
`,
	}, reportCalls)
	// The call is still reported, and the suppression for "other" that
	// suppressed nothing is reported too.
	var kinds []string
	for _, d := range diags {
		kinds = append(kinds, d.Analyzer+": "+d.Message)
	}
	if len(diags) != 2 {
		t.Fatalf("want finding + unused suppression, got %v", kinds)
	}
	if diags[0].Analyzer != "calls" {
		t.Errorf("first diagnostic should be the call, got %v", kinds)
	}
	if diags[1].Analyzer != "allow" || !strings.Contains(diags[1].Message, "suppresses nothing") {
		t.Errorf("second diagnostic should flag the unused suppression, got %v", kinds)
	}
}

func TestSuppressionWithoutReasonIsReportedAndIgnored(t *testing.T) {
	diags := check(t, map[string]string{
		"a.go": `package p

func f() int { return g() } //qtrlint:allow calls
func g() int { return 0 }
`,
	}, reportCalls)
	if len(diags) != 2 {
		t.Fatalf("want reason-missing + unsuppressed finding, got %+v", diags)
	}
	// Both land on the same line; assert by analyzer rather than order.
	byAnalyzer := map[string]string{}
	for _, d := range diags {
		byAnalyzer[d.Analyzer] = d.Message
	}
	if !strings.Contains(byAnalyzer["allow"], "needs a reason") {
		t.Errorf("missing reason not reported: %+v", diags)
	}
	if _, ok := byAnalyzer["calls"]; !ok {
		t.Errorf("reasonless suppression must not suppress: %+v", diags)
	}
}

func TestBareSuppressionNeedsAnalyzerName(t *testing.T) {
	diags := check(t, map[string]string{
		"a.go": "package p\n\n//qtrlint:allow\nfunc f() {}\n",
	}, reportCalls)
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "needs an analyzer name") {
		t.Fatalf("bare qtrlint:allow not flagged: %+v", diags)
	}
}

func TestUnusedSuppressionReported(t *testing.T) {
	diags := check(t, map[string]string{
		"a.go": `package p

//qtrlint:allow calls nothing to suppress here
var x = 1
`,
	}, reportCalls)
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "suppresses nothing") {
		t.Fatalf("unused suppression not reported: %+v", diags)
	}
}

func TestTestFilesExcluded(t *testing.T) {
	diags := check(t, map[string]string{
		"a_test.go": "package p\nfunc f() int { return g() }\nfunc g() int { return 0 }\n",
	}, reportCalls)
	if len(diags) != 0 {
		t.Fatalf("findings reported in _test.go files: %+v", diags)
	}
}

func TestDiagnosticsSortedByPosition(t *testing.T) {
	diags := check(t, map[string]string{
		"a.go": "package p\nfunc a() int { return b() }\nfunc b() int { return a() }\n",
	}, reportCalls)
	if len(diags) != 2 {
		t.Fatalf("want two findings, got %+v", diags)
	}
	fset := token.NewFileSet()
	_ = fset
	if diags[0].Pos >= diags[1].Pos {
		t.Errorf("diagnostics out of source order: %v", diags)
	}
}

func TestPkgNameOf(t *testing.T) {
	// Build the Uses entry by hand: a selector rand.Intn whose base
	// identifier resolves to the imported math/rand package.
	id := ast.NewIdent("rand")
	sel := &ast.SelectorExpr{X: id, Sel: ast.NewIdent("Intn")}
	info := &types.Info{Uses: map[*ast.Ident]types.Object{
		id: types.NewPkgName(token.NoPos, nil, "rand", types.NewPackage("math/rand", "rand")),
	}}
	pkgPath, selName := PkgNameOf(info, sel)
	if pkgPath != "math/rand" || selName != "Intn" {
		t.Errorf("PkgNameOf = %q.%q, want math/rand.Intn", pkgPath, selName)
	}
	// Non-selector and non-package selectors resolve to "".
	if p, _ := PkgNameOf(info, ast.NewIdent("x")); p != "" {
		t.Errorf("PkgNameOf on ident = %q, want empty", p)
	}
	other := &ast.SelectorExpr{X: ast.NewIdent("v"), Sel: ast.NewIdent("Field")}
	if p, _ := PkgNameOf(info, other); p != "" {
		t.Errorf("PkgNameOf on value selector = %q, want empty", p)
	}
}

// TestVetConfigParsing pins the subset of cmd/go's vet.cfg JSON the driver
// consumes: field names must match the (unpublished) protocol exactly.
func TestVetConfigParsing(t *testing.T) {
	raw := `{
		"ID": "qtrtest/internal/fuzz",
		"Compiler": "gc",
		"Dir": "/src/internal/fuzz",
		"ImportPath": "qtrtest/internal/fuzz",
		"GoFiles": ["/src/internal/fuzz/fuzz.go", "/src/internal/fuzz/shrink.go"],
		"GoVersion": "go1.22",
		"ImportMap": {"qtrtest/internal/par": "qtrtest/internal/par"},
		"PackageFile": {"qtrtest/internal/par": "/cache/par.a"},
		"Standard": {"fmt": true},
		"PackageVetx": {},
		"VetxOnly": false,
		"VetxOutput": "/cache/fuzz.vetx",
		"SucceedOnTypecheckFailure": false
	}`
	var cfg config
	if err := json.Unmarshal([]byte(raw), &cfg); err != nil {
		t.Fatal(err)
	}
	if cfg.ImportPath != "qtrtest/internal/fuzz" || cfg.Compiler != "gc" {
		t.Errorf("basic fields not parsed: %+v", cfg)
	}
	if len(cfg.GoFiles) != 2 || cfg.GoFiles[1] != "/src/internal/fuzz/shrink.go" {
		t.Errorf("GoFiles not parsed: %v", cfg.GoFiles)
	}
	if cfg.PackageFile["qtrtest/internal/par"] != "/cache/par.a" {
		t.Errorf("PackageFile not parsed: %v", cfg.PackageFile)
	}
	if cfg.VetxOnly || cfg.VetxOutput != "/cache/fuzz.vetx" {
		t.Errorf("vetx fields not parsed: %+v", cfg)
	}
	if !cfg.Standard["fmt"] {
		t.Errorf("Standard not parsed: %v", cfg.Standard)
	}
}
