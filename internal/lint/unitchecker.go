package lint

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// This file implements the vet driver protocol, so a binary built from
// Main() works as `go vet -vettool=<binary>`. The protocol (read from
// cmd/go/internal/work/exec.go and cmd/go/internal/vet/vetflag.go, the
// authoritative source — it is deliberately unpublished):
//
//   - `tool -flags` prints a JSON array describing the tool's flags to
//     stdout and exits 0; cmd/go uses it to decide which command-line flags
//     to forward. This tool has none, so it prints [].
//   - `tool -V=full` prints "<name> version devel buildID=<hex>" and exits
//     0; cmd/go hashes the line into its action cache key.
//   - `tool <dir>/vet.cfg` analyzes one package described by the JSON
//     config: typecheck GoFiles against the export data in PackageFile,
//     run the analyzers, print findings "file:line:col: message" to stderr
//     and exit 2 if there were any, else write VetxOutput and exit 0.
//   - VetxOnly configs ("facts only" runs for dependency packages) write
//     VetxOutput and exit 0 without analyzing; these analyzers keep no
//     cross-package facts, so the file is an empty placeholder.

// config mirrors cmd/go's vetConfig (the subset this driver consumes).
type config struct {
	ID         string
	Compiler   string
	Dir        string
	ImportPath string
	GoFiles    []string
	GoVersion  string

	ImportMap   map[string]string
	PackageFile map[string]string
	Standard    map[string]bool
	PackageVetx map[string]string
	VetxOnly    bool
	VetxOutput  string

	SucceedOnTypecheckFailure bool
}

// Main is the entry point for a vettool binary. It never returns.
func Main(analyzers ...*Analyzer) {
	progname := filepath.Base(os.Args[0])
	if len(os.Args) != 2 {
		fmt.Fprintf(os.Stderr,
			"%s: a vet driver; run via go vet -vettool=$(command -v %s) ./...\n",
			progname, progname)
		os.Exit(1)
	}
	switch arg := os.Args[1]; {
	case arg == "-V=full":
		// Hash the executable so rebuilding the tool invalidates go vet's
		// result cache.
		sum := selfHash()
		fmt.Printf("%s version devel buildID=%x/%x\n", progname, sum, sum)
		os.Exit(0)
	case arg == "-flags":
		fmt.Println("[]")
		os.Exit(0)
	case strings.HasSuffix(arg, ".cfg"):
		run(arg, analyzers)
	default:
		fmt.Fprintf(os.Stderr, "%s: unexpected argument %q\n", progname, arg)
		os.Exit(1)
	}
}

func selfHash() []byte {
	exe, err := os.Executable()
	if err == nil {
		if f, err := os.Open(exe); err == nil {
			defer func() { _ = f.Close() }()
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				return h.Sum(nil)[:16]
			}
		}
	}
	// Degrade to a fixed ID: caching is best-effort, analysis is not.
	return []byte("qtrlint-unknown!")
}

func run(cfgFile string, analyzers []*Analyzer) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fatal(err)
	}
	var cfg config
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatal(fmt.Errorf("parsing %s: %v", cfgFile, err))
	}
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("qtrlint has no facts\n"), 0o666); err != nil {
			fatal(err)
		}
	}
	if cfg.VetxOnly {
		os.Exit(0)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				os.Exit(0)
			}
			fatal(err)
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		// The lookup argument is the canonical package path; the importer
		// wrapper below already applied ImportMap.
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	tc := &types.Config{
		Importer: mapImporter{cfg.ImportMap, compilerImporter.(types.ImporterFrom)},
		Sizes:    types.SizesFor(cfg.Compiler, build.Default.GOARCH),
	}
	if strings.HasPrefix(cfg.GoVersion, "go") {
		tc.GoVersion = cfg.GoVersion
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			os.Exit(0)
		}
		fatal(fmt.Errorf("typechecking %s: %v", cfg.ImportPath, err))
	}

	diags := Run(fset, files, pkg, info, analyzers)
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		os.Exit(2)
	}
	os.Exit(0)
}

// mapImporter applies the config's source-path → canonical-path map before
// delegating to the compiler export-data importer.
type mapImporter struct {
	importMap map[string]string
	def       types.ImporterFrom
}

func (m mapImporter) Import(path string) (*types.Package, error) {
	return m.ImportFrom(path, "", 0)
}

func (m mapImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if mapped, ok := m.importMap[path]; ok {
		path = mapped
	}
	return m.def.ImportFrom(path, dir, mode)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qtrlint:", err)
	os.Exit(1)
}
