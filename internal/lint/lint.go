// Package lint is a minimal go/analysis-style static-analysis framework:
// analyzers inspect one typechecked package at a time and report position
// diagnostics. It exists because the repository vendors no third-party
// code; the package reimplements, on the standard library alone, the small
// slice of golang.org/x/tools needed to run custom analyzers under
// `go vet -vettool` (see unitchecker.go for the driver protocol).
//
// Analyzers honor suppression comments of the form
//
//	//qtrlint:allow <analyzer> <reason>
//
// placed on, or on the line before, the offending line. The reason is
// mandatory: an unexplained suppression is itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding, positioned in the analyzed package.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Analyzer is one static check over a typechecked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and suppression comments.
	Name string
	// Doc is a one-paragraph description.
	Doc string
	// Run inspects the package and reports findings via pass.Report.
	Run func(pass *Pass)
}

// Pass carries one package's syntax and type information through an
// analyzer run.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files holds the package's syntax trees, test files already excluded.
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	diags *[]Diagnostic
	allow map[string][]suppression
}

// Report records a finding unless a suppression comment covers its line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if p.suppressed(pos) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos: pos, Analyzer: p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// suppression is one parsed //qtrlint:allow comment.
type suppression struct {
	analyzer string
	pos      token.Pos
	line     int
	hasWhy   bool
	used     *bool
}

// Run applies the analyzers to one typechecked package and returns the
// diagnostics sorted by position. Suppression comments without a reason,
// and suppressions that suppressed nothing, are reported as findings of the
// pseudo-analyzer "allow".
func Run(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) []Diagnostic {
	var kept []*ast.File
	for _, f := range files {
		if name := fset.Position(f.Package).Filename; strings.HasSuffix(name, "_test.go") {
			continue
		}
		kept = append(kept, f)
	}
	var diags []Diagnostic
	allow, allowDiags := collectSuppressions(fset, kept)
	diags = append(diags, allowDiags...)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a, Fset: fset, Files: kept, Pkg: pkg, Info: info,
			diags: &diags, allow: allow,
		}
		a.Run(pass)
	}
	// Iterate files in sorted order: map order would shuffle the
	// unused-suppression findings from run to run.
	var allowFiles []string
	for fname := range allow {
		allowFiles = append(allowFiles, fname)
	}
	sort.Strings(allowFiles)
	for _, fname := range allowFiles {
		for _, s := range allow[fname] {
			// Reasonless suppressions were already reported above.
			if !*s.used && s.hasWhy {
				diags = append(diags, Diagnostic{
					Pos: s.pos, Analyzer: "allow",
					Message: fmt.Sprintf("suppression //qtrlint:allow %s suppresses nothing", s.analyzer),
				})
			}
		}
	}
	sortDiagnostics(fset, diags)
	return diags
}

// collectSuppressions parses //qtrlint:allow comments. The key is the file
// name; a suppression covers findings on its own line and the next line (so
// it can ride above the offending statement).
func collectSuppressions(fset *token.FileSet, files []*ast.File) (map[string][]suppression, []Diagnostic) {
	out := make(map[string][]suppression)
	var diags []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//qtrlint:allow")
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				if len(fields) == 0 {
					diags = append(diags, Diagnostic{
						Pos: c.Pos(), Analyzer: "allow",
						Message: "qtrlint:allow needs an analyzer name and a reason",
					})
					continue
				}
				pos := fset.Position(c.Pos())
				s := suppression{
					analyzer: fields[0], pos: c.Pos(), line: pos.Line,
					hasWhy: len(fields) > 1, used: new(bool),
				}
				if !s.hasWhy {
					diags = append(diags, Diagnostic{
						Pos: c.Pos(), Analyzer: "allow",
						Message: fmt.Sprintf("qtrlint:allow %s needs a reason", s.analyzer),
					})
				}
				out[pos.Filename] = append(out[pos.Filename], s)
			}
		}
	}
	return out, diags
}

// suppressed reports whether a finding at pos is covered by a suppression
// for this pass's analyzer, marking the suppression used.
func (p *Pass) suppressed(pos token.Pos) bool {
	position := p.Fset.Position(pos)
	for i := range p.allow[position.Filename] {
		s := &p.allow[position.Filename][i]
		if s.analyzer != p.Analyzer.Name || !s.hasWhy {
			continue
		}
		if s.line == position.Line || s.line == position.Line-1 {
			*s.used = true
			return true
		}
	}
	return false
}

func sortDiagnostics(fset *token.FileSet, diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return diags[i].Message < diags[j].Message
	})
}

// PkgNameOf returns the imported package path when e is a selector on a
// package name (e.g. rand.Intn → "math/rand"), or "".
func PkgNameOf(info *types.Info, e ast.Expr) (pkgPath, sel string) {
	s, ok := e.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	id, ok := s.X.(*ast.Ident)
	if !ok {
		return "", ""
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return "", ""
	}
	return pn.Imported().Path(), s.Sel.Name
}
