package analyzers

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"qtrtest/internal/lint"
)

// analyze typechecks the snippets (filename → source) as a package with the
// given import path and runs all analyzers, returning rendered diagnostics
// "file:line: analyzer: message". The source importer resolves std imports
// from GOROOT, so snippets can use fmt, time, math/rand and sort for real.
func analyze(t *testing.T, pkgPath string, srcs map[string]string) []string {
	t.Helper()
	fset := token.NewFileSet()
	var files []*ast.File
	for name, src := range srcs {
		f, err := parser.ParseFile(fset, name, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Defs:  make(map[*ast.Ident]types.Object),
		Uses:  make(map[*ast.Ident]types.Object),
	}
	conf := &types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	var out []string
	for _, d := range lint.Run(fset, files, pkg, info, All()) {
		pos := fset.Position(d.Pos)
		out = append(out, fmt.Sprintf("%s:%d: %s: %s", pos.Filename, pos.Line, d.Analyzer, d.Message))
	}
	return out
}

func wantFindings(t *testing.T, got []string, want ...string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d findings, want %d:\ngot:  %v\nwant: %v", len(got), len(want), got, want)
	}
	for i := range want {
		if !strings.Contains(got[i], want[i]) {
			t.Errorf("finding %d = %q, want contains %q", i, got[i], want[i])
		}
	}
}

func TestWallclock(t *testing.T) {
	src := map[string]string{"a.go": `package opt
import "time"
func f() time.Time { return time.Now() }
func g() time.Time { return time.Unix(0, 0) }
`}
	wantFindings(t, analyze(t, "qtrtest/internal/opt", src),
		"a.go:3: wallclock: time.Now in result-affecting package")
	// Same code outside the result-affecting set is fine.
	wantFindings(t, analyze(t, "qtrtest/internal/report", src))
}

func TestWallclockSuppression(t *testing.T) {
	got := analyze(t, "qtrtest/internal/exec", map[string]string{"a.go": `package exec
import "time"
//qtrlint:allow wallclock telemetry for the progress log
func f() time.Time { return time.Now() }
`})
	wantFindings(t, got)
}

func TestSuppressionNeedsReason(t *testing.T) {
	got := analyze(t, "qtrtest/internal/exec", map[string]string{"a.go": `package exec
import "time"
//qtrlint:allow wallclock
func f() time.Time { return time.Now() }
`})
	wantFindings(t, got,
		"allow: qtrlint:allow wallclock needs a reason",
		"wallclock: time.Now in result-affecting package")
}

func TestUnusedSuppressionFlagged(t *testing.T) {
	got := analyze(t, "qtrtest/internal/exec", map[string]string{"a.go": `package exec
//qtrlint:allow wallclock no wallclock here at all
func f() int { return 0 }
`})
	wantFindings(t, got, "suppresses nothing")
}

func TestGlobalRand(t *testing.T) {
	got := analyze(t, "qtrtest/internal/rules", map[string]string{"a.go": `package rules
import "math/rand"
func bad() int { return rand.Intn(10) }
func good() int { return rand.New(rand.NewSource(42)).Intn(10) }
`})
	wantFindings(t, got, "globalrand: rand.Intn uses the global unseeded source")
}

func TestMapRangePrint(t *testing.T) {
	got := analyze(t, "qtrtest/cmd/qtrtest", map[string]string{"a.go": `package main
import "fmt"
func dump(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v)
	}
}
`})
	wantFindings(t, got, "maprange: fmt.Printf inside map iteration emits in randomized order")
}

func TestMapRangeBuilderWrite(t *testing.T) {
	got := analyze(t, "qtrtest/cmd/qtrtest", map[string]string{"a.go": `package main
import "strings"
func dump(m map[string]int) string {
	var sb strings.Builder
	for k := range m {
		sb.WriteString(k)
	}
	return sb.String()
}
`})
	wantFindings(t, got, "maprange: WriteString inside map iteration writes in randomized order")
}

func TestMapRangeCollectWithoutSort(t *testing.T) {
	got := analyze(t, "qtrtest/internal/mutate", map[string]string{"a.go": `package mutate
func keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
`})
	wantFindings(t, got, `maprange: map iteration appends to "out" in randomized order`)
}

// TestMapRangeCollectThenSort: the sanctioned collect-then-sort pattern
// (e.g. rules.Set.Sorted) stays clean.
func TestMapRangeCollectThenSort(t *testing.T) {
	got := analyze(t, "qtrtest/internal/mutate", map[string]string{"a.go": `package mutate
import "sort"
func keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
`})
	wantFindings(t, got)
}

// TestMapRangeNestedAppendRegression pins the fix for the bug this very
// analyzer found in lint.Run on its first self-hosted run: iterating a map
// of per-file suppressions and appending diagnostics without sorting.
func TestMapRangeNestedAppendRegression(t *testing.T) {
	got := analyze(t, "qtrtest/internal/mutate", map[string]string{"a.go": `package mutate
type diag struct{ msg string }
func unused(allow map[string][]int) []diag {
	var diags []diag
	for _, sups := range allow {
		for range sups {
			diags = append(diags, diag{"x"})
		}
	}
	return diags
}
`})
	wantFindings(t, got, `maprange: map iteration appends to "diags"`)
}

func TestCloseDefer(t *testing.T) {
	got := analyze(t, "qtrtest/internal/catalog", map[string]string{"a.go": `package catalog
import "os"
func bad(name string) error {
	f, err := os.Open(name)
	if err != nil {
		return err
	}
	defer f.Close()
	return nil
}
func good(name string) (err error) {
	f, err := os.Open(name)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	return nil
}
`})
	wantFindings(t, got, "closedefer: deferred Close() drops its error")
}

// TestCloseDeferNoError: a Close without an error result is fine to defer.
func TestCloseDeferNoError(t *testing.T) {
	got := analyze(t, "qtrtest/internal/catalog", map[string]string{"a.go": `package catalog
type c struct{}
func (c) Close() {}
func f() {
	var x c
	defer x.Close()
}
`})
	wantFindings(t, got)
}

func TestMapFmt(t *testing.T) {
	src := map[string]string{"a.go": `package verify
import "fmt"
func bad(m map[string]int) string { return fmt.Sprintf("m=%v", m) }
func alsoBad(m map[string]int) error { return fmt.Errorf("state: %v", m) }
func good(m map[string]int) string { return fmt.Sprintf("%d entries", len(m)) }
`}
	wantFindings(t, analyze(t, "qtrtest/internal/verify", src),
		"mapfmt: map-typed value formatted by fmt.Sprintf in report path",
		"mapfmt: map-typed value formatted by fmt.Errorf in report path")
	// The same code outside the report-path set is not flagged.
	wantFindings(t, analyze(t, "qtrtest/internal/scratch", src))
}

// TestMapFmtReportPathCoversResultAffecting: the report-path set is a
// superset of the result-affecting one, so fuzz/exec formatting is covered
// too.
func TestMapFmtReportPathCoversResultAffecting(t *testing.T) {
	got := analyze(t, "qtrtest/internal/fuzz", map[string]string{"a.go": `package fuzz
import "fmt"
func dump(counts map[int]int) { fmt.Println(counts) }
`})
	wantFindings(t, got, "mapfmt: map-typed value formatted by fmt.Println")
}

func TestMapFmtSuppression(t *testing.T) {
	got := analyze(t, "qtrtest/cmd/qtrtest", map[string]string{"a.go": `package main
import "fmt"
//qtrlint:allow mapfmt single-key map rendered for a debug trace
func dump(m map[string]int) string { return fmt.Sprint(m) }
`})
	wantFindings(t, got)
}

// TestDeterministicOrderAcrossFiles: diagnostics come out sorted by file
// and line regardless of map-ordered internals — the determinism bar this
// tool holds the rest of the repository to.
func TestDeterministicOrderAcrossFiles(t *testing.T) {
	srcs := map[string]string{
		"b.go": "package exec\n//qtrlint:allow wallclock nothing here\nfunc b() {}\n",
		"a.go": "package exec\n//qtrlint:allow wallclock nothing here either\nfunc a() {}\n",
		"c.go": "package exec\n//qtrlint:allow wallclock nor here\nfunc c() {}\n",
	}
	var prev []string
	for i := 0; i < 5; i++ {
		got := analyze(t, "qtrtest/internal/exec", srcs)
		if len(got) != 3 {
			t.Fatalf("got %d findings, want 3: %v", len(got), got)
		}
		if i > 0 && strings.Join(got, "|") != strings.Join(prev, "|") {
			t.Fatalf("diagnostic order changed between runs:\n%v\n%v", prev, got)
		}
		prev = got
	}
	for i, want := range []string{"a.go", "b.go", "c.go"} {
		if !strings.Contains(prev[i], want) {
			t.Errorf("finding %d = %q, want file %s (unused suppressions sort by file)", i, prev[i], want)
		}
	}
}
