// Package analyzers holds the repository's custom static checks, run under
// `go vet -vettool` via cmd/qtrlint. They enforce the determinism
// invariants the testing framework rests on: identical inputs must produce
// identical plans, reports and registries, or the correctness oracle's
// result comparisons and the experiment baselines stop being reproducible.
package analyzers

import (
	"go/ast"
	"go/types"
	"strings"

	"qtrtest/internal/lint"
)

// resultAffecting lists the package-path prefixes where nondeterminism
// taints results: the optimizer search, rule substitutions, execution, the
// generation/compression core, fault injection, and the fuzzing campaign
// (whose reports promise byte-identical output at any worker count).
// Telemetry-only wall clock reads inside them carry a
// //qtrlint:allow wallclock annotation.
var resultAffecting = []string{
	"qtrtest/internal/core",
	"qtrtest/internal/rules",
	"qtrtest/internal/opt",
	"qtrtest/internal/exec",
	"qtrtest/internal/refengine",
	"qtrtest/internal/mutate",
	"qtrtest/internal/fuzz",
}

func isResultAffecting(pkgPath string) bool {
	return hasPathPrefix(pkgPath, resultAffecting)
}

// reportPath extends the result-affecting set with the packages that render
// reports and witnesses for humans and CI: the static analyses, the
// small-scope verifier, and the CLI itself. Byte-identical report output is
// part of their contract (worker-count invariance, replayable repro lines),
// so formatting hazards are flagged there too.
var reportPath = []string{
	"qtrtest/internal/rulecheck",
	"qtrtest/internal/verify",
	"qtrtest/cmd/qtrtest",
}

func isReportPath(pkgPath string) bool {
	return isResultAffecting(pkgPath) || hasPathPrefix(pkgPath, reportPath)
}

func hasPathPrefix(pkgPath string, prefixes []string) bool {
	for _, p := range prefixes {
		if pkgPath == p || strings.HasPrefix(pkgPath, p+"/") {
			return true
		}
	}
	return false
}

// All returns every analyzer, in reporting order.
func All() []*lint.Analyzer {
	return []*lint.Analyzer{Wallclock, GlobalRand, MapRange, CloseDefer, MapFmt}
}

// Wallclock flags time.Now in result-affecting packages. Plans, costs and
// generated queries must be functions of (catalog, seed, rule set) alone;
// a wall-clock read is either smuggled nondeterminism or telemetry, and
// telemetry must say so with //qtrlint:allow wallclock <reason>.
var Wallclock = &lint.Analyzer{
	Name: "wallclock",
	Doc:  "flag time.Now in result-affecting packages (telemetry needs an allow annotation)",
	Run: func(pass *lint.Pass) {
		if !isResultAffecting(pass.Pkg.Path()) {
			return
		}
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if pkg, sel := lint.PkgNameOf(pass.Info, call.Fun); pkg == "time" && sel == "Now" {
					pass.Reportf(call.Pos(),
						"time.Now in result-affecting package %s; results must be deterministic — seed explicitly, or annotate telemetry with //qtrlint:allow wallclock <reason>",
						pass.Pkg.Path())
				}
				return true
			})
		}
	},
}

// globalRandOK lists math/rand package-level functions that do not touch
// the global, unseeded source.
var globalRandOK = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

// GlobalRand flags calls to math/rand's package-level functions (which draw
// from the shared unseeded source) in result-affecting packages. All
// randomness there must flow through an explicitly seeded *rand.Rand.
var GlobalRand = &lint.Analyzer{
	Name: "globalrand",
	Doc:  "flag unseeded global math/rand use in result-affecting packages",
	Run: func(pass *lint.Pass) {
		if !isResultAffecting(pass.Pkg.Path()) {
			return
		}
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				pkg, sel := lint.PkgNameOf(pass.Info, call.Fun)
				if (pkg == "math/rand" || pkg == "math/rand/v2") && !globalRandOK[sel] {
					pass.Reportf(call.Pos(),
						"rand.%s uses the global unseeded source; draw from an explicitly seeded *rand.Rand instead", sel)
				}
				return true
			})
		}
	},
}

// MapRange flags for-range loops over maps whose bodies feed ordered sinks:
// direct printing, writes to a builder/writer, or appends to an outer slice
// that is never passed to a sort afterwards. Go randomizes map iteration
// order, so such loops make output, reports and registries
// nondeterministic. Collect-then-sort is the sanctioned pattern and is not
// flagged.
var MapRange = &lint.Analyzer{
	Name: "maprange",
	Doc:  "flag map iteration feeding ordered output without an intervening sort",
	Run:  runMapRange,
}

func runMapRange(pass *lint.Pass) {
	for _, f := range pass.Files {
		// Walk function by function so "sorted later" has a scope to search.
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkMapRanges(pass, body)
			}
			return true
		})
	}
}

func checkMapRanges(pass *lint.Pass, fnBody *ast.BlockStmt) {
	ast.Inspect(fnBody, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if _, isMap := pass.Info.TypeOf(rs.X).Underlying().(*types.Map); !isMap {
			return true
		}
		// Ordered sinks written directly inside the loop body.
		ast.Inspect(rs.Body, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			if pkg, sel := lint.PkgNameOf(pass.Info, call.Fun); pkg == "fmt" &&
				(strings.HasPrefix(sel, "Print") || strings.HasPrefix(sel, "Fprint")) {
				pass.Reportf(call.Pos(),
					"fmt.%s inside map iteration emits in randomized order; collect into a slice and sort first", sel)
			}
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && isWriterMethod(pass, sel) {
				pass.Reportf(call.Pos(),
					"%s inside map iteration writes in randomized order; collect into a slice and sort first", sel.Sel.Name)
			}
			return true
		})
		// Appends to outer slices with no sort afterwards.
		for _, obj := range outerAppendTargets(pass, rs) {
			if !sortedLater(pass, fnBody, rs, obj) {
				pass.Reportf(rs.Pos(),
					"map iteration appends to %q in randomized order and nothing sorts it afterwards in this function; sort it or iterate sorted keys", obj.Name())
			}
		}
		return true
	})
}

// isWriterMethod reports whether the selector is a Write/WriteString-style
// method call on some receiver (e.g. strings.Builder, io.Writer).
func isWriterMethod(pass *lint.Pass, sel *ast.SelectorExpr) bool {
	switch sel.Sel.Name {
	case "WriteString", "WriteByte", "WriteRune", "Write":
	default:
		return false
	}
	// Method, not package-qualified function.
	_, isPkg := pass.Info.Uses[identOf(sel.X)].(*types.PkgName)
	return !isPkg
}

func identOf(e ast.Expr) *ast.Ident {
	id, _ := e.(*ast.Ident)
	return id
}

// outerAppendTargets returns the objects of variables declared outside the
// range loop that the loop body appends to.
func outerAppendTargets(pass *lint.Pass, rs *ast.RangeStmt) []types.Object {
	var out []types.Object
	seen := map[types.Object]bool{}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || len(as.Lhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		fn, ok := call.Fun.(*ast.Ident)
		if !ok || fn.Name != "append" {
			return true
		}
		if _, isBuiltin := pass.Info.Uses[fn].(*types.Builtin); !isBuiltin {
			return true
		}
		target := identOf(as.Lhs[0])
		if target == nil {
			return true
		}
		obj := pass.Info.ObjectOf(target)
		if obj == nil || seen[obj] {
			return true
		}
		if obj.Pos() < rs.Pos() || obj.Pos() > rs.End() {
			seen[obj] = true
			out = append(out, obj)
		}
		return true
	})
	return out
}

// sortedLater reports whether, after the range loop, the function passes
// obj to anything in package sort or slices (sort.Slice(out, ...),
// slices.Sort(out), ...).
func sortedLater(pass *lint.Pass, fnBody *ast.BlockStmt, rs *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		pkg, _ := lint.PkgNameOf(pass.Info, call.Fun)
		if pkg != "sort" && pkg != "slices" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(a ast.Node) bool {
				if id, ok := a.(*ast.Ident); ok && pass.Info.ObjectOf(id) == obj {
					found = true
				}
				return true
			})
		}
		return true
	})
	return found
}

// CloseDefer flags `defer x.Close()` when Close returns an error that the
// defer silently drops. Either propagate it from a closure or acknowledge
// the drop explicitly (`defer func() { _ = x.Close() }()`).
var CloseDefer = &lint.Analyzer{
	Name: "closedefer",
	Doc:  "flag deferred Close() calls whose error is silently dropped",
	Run: func(pass *lint.Pass) {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				def, ok := n.(*ast.DeferStmt)
				if !ok {
					return true
				}
				sel, ok := def.Call.Fun.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Close" {
					return true
				}
				if _, isPkg := pass.Info.Uses[identOf(sel.X)].(*types.PkgName); isPkg {
					return true
				}
				if sig, ok := pass.Info.TypeOf(def.Call.Fun).(*types.Signature); ok &&
					returnsError(sig) {
					pass.Reportf(def.Pos(),
						"deferred Close() drops its error; use `defer func() { ... Close() ... }()` to capture or explicitly ignore it")
				}
				return true
			})
		}
	},
}

// fmtFormatting lists the fmt functions that render their arguments into
// report text.
var fmtFormatting = map[string]bool{
	"Sprintf": true, "Printf": true, "Fprintf": true, "Errorf": true,
	"Sprint": true, "Print": true, "Fprint": true,
	"Sprintln": true, "Println": true, "Fprintln": true,
	"Appendf": true, "Append": true, "Appendln": true,
}

// MapFmt flags map-typed values handed to fmt's formatting functions in
// report-path packages. fmt renders a map as "map[k:v ...]" with key order
// that is only partially specified: NaN keys and interface keys of mixed
// concrete types have no defined relative order, so %v of a map can differ
// between runs — breaking the byte-identical report contract that repro
// lines and worker-count invariance depend on. Render entries explicitly in
// sorted order instead, or annotate a genuinely order-free use with
// //qtrlint:allow mapfmt <reason>.
var MapFmt = &lint.Analyzer{
	Name: "mapfmt",
	Doc:  "flag fmt-formatting of map-typed values in report-path packages",
	Run: func(pass *lint.Pass) {
		if !isReportPath(pass.Pkg.Path()) {
			return
		}
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				pkg, sel := lint.PkgNameOf(pass.Info, call.Fun)
				if pkg != "fmt" || !fmtFormatting[sel] {
					return true
				}
				for _, arg := range call.Args {
					if _, isMap := pass.Info.TypeOf(arg).Underlying().(*types.Map); isMap {
						pass.Reportf(arg.Pos(),
							"map-typed value formatted by fmt.%s in report path %s; map key order is not fully specified — render entries explicitly in sorted order, or annotate with //qtrlint:allow mapfmt <reason>",
							sel, pass.Pkg.Path())
					}
				}
				return true
			})
		}
	},
}

func returnsError(sig *types.Signature) bool {
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if named, ok := res.At(i).Type().(*types.Named); ok &&
			named.Obj().Pkg() == nil && named.Obj().Name() == "error" {
			return true
		}
	}
	return false
}
