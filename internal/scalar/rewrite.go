package scalar

// Substitute returns a copy of e with every ColRef whose id appears in subst
// replaced by the mapped expression. Unmapped ColRefs are preserved. The
// input is not modified.
func Substitute(e Expr, subst map[ColumnID]Expr) Expr {
	switch t := e.(type) {
	case *ColRef:
		if repl, ok := subst[t.ID]; ok {
			return repl
		}
		return t
	case *Const:
		return t
	case *Cmp:
		return &Cmp{Op: t.Op, L: Substitute(t.L, subst), R: Substitute(t.R, subst)}
	case *Arith:
		return &Arith{Op: t.Op, L: Substitute(t.L, subst), R: Substitute(t.R, subst)}
	case *And:
		kids := make([]Expr, len(t.Kids))
		for i, k := range t.Kids {
			kids[i] = Substitute(k, subst)
		}
		return &And{Kids: kids}
	case *Or:
		kids := make([]Expr, len(t.Kids))
		for i, k := range t.Kids {
			kids[i] = Substitute(k, subst)
		}
		return &Or{Kids: kids}
	case *Not:
		return &Not{Kid: Substitute(t.Kid, subst)}
	case *IsNull:
		return &IsNull{Kid: Substitute(t.Kid, subst)}
	default:
		return e
	}
}

// Remap returns a copy of e with column ids rewritten through mapping;
// ids absent from the mapping are preserved.
func Remap(e Expr, mapping map[ColumnID]ColumnID) Expr {
	subst := make(map[ColumnID]Expr, len(mapping))
	for from, to := range mapping {
		subst[from] = &ColRef{ID: to}
	}
	return Substitute(e, subst)
}
