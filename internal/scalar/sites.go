package scalar

// Site is one rewriteable position inside a scalar expression tree: the
// subexpression found there plus a Rebuild function that returns a copy of
// the whole tree with a replacement spliced in at that position. Rebuild is
// copy-on-write — only the spine from the site to the root is reallocated,
// and the original tree is never mutated.
type Site struct {
	E       Expr
	Rebuild func(repl Expr) Expr
}

// RewriteSites enumerates every node of root in deterministic pre-order
// (node before kids, kids left to right). Callers pick a site, ask the EET
// catalog for a replacement, and splice it with Rebuild.
func RewriteSites(root Expr) []Site {
	var out []Site
	addSites(root, func(repl Expr) Expr { return repl }, &out)
	return out
}

func addSites(e Expr, rebuild func(Expr) Expr, out *[]Site) {
	*out = append(*out, Site{E: e, Rebuild: rebuild})
	switch t := e.(type) {
	case *Cmp:
		addSites(t.L, func(r Expr) Expr { return rebuild(&Cmp{Op: t.Op, L: r, R: t.R}) }, out)
		addSites(t.R, func(r Expr) Expr { return rebuild(&Cmp{Op: t.Op, L: t.L, R: r}) }, out)
	case *Arith:
		addSites(t.L, func(r Expr) Expr { return rebuild(&Arith{Op: t.Op, L: r, R: t.R}) }, out)
		addSites(t.R, func(r Expr) Expr { return rebuild(&Arith{Op: t.Op, L: t.L, R: r}) }, out)
	case *And:
		for i, k := range t.Kids {
			i, k := i, k
			addSites(k, func(r Expr) Expr { return rebuild(&And{Kids: spliceKid(t.Kids, i, r)}) }, out)
		}
	case *Or:
		for i, k := range t.Kids {
			i, k := i, k
			addSites(k, func(r Expr) Expr { return rebuild(&Or{Kids: spliceKid(t.Kids, i, r)}) }, out)
		}
	case *Not:
		addSites(t.Kid, func(r Expr) Expr { return rebuild(&Not{Kid: r}) }, out)
	case *IsNull:
		addSites(t.Kid, func(r Expr) Expr { return rebuild(&IsNull{Kid: r}) }, out)
	}
}

func spliceKid(kids []Expr, i int, repl Expr) []Expr {
	out := make([]Expr, len(kids))
	copy(out, kids)
	out[i] = repl
	return out
}
