package scalar

import (
	"strings"
	"testing"

	"qtrtest/internal/datum"
)

// vecEvalOne evaluates e over a single-row batch on the vector engine,
// returning the row-0 datum.
func vecEvalOne(t *testing.T, e Expr, row datum.Row, env Env) (datum.Datum, error) {
	t.Helper()
	cols := datum.ColumnVecs([]datum.Row{row}, len(row))
	ve := &VecEval{Env: env}
	var out datum.Vec
	if err := ve.Eval(e, cols, []int{0}, &out); err != nil {
		return datum.Null, err
	}
	return out.D[0], nil
}

// vecPredOne runs EvalPred over a single-row batch, returning whether the
// row survived.
func vecPredOne(t *testing.T, e Expr, row datum.Row, env Env) (bool, error) {
	t.Helper()
	cols := datum.ColumnVecs([]datum.Row{row}, len(row))
	ve := &VecEval{Env: env}
	sel, err := ve.EvalPred(e, cols, []int{0}, nil)
	if err != nil {
		return false, err
	}
	return len(sel) == 1, nil
}

// TestNonBooleanPredicateErrors pins the first scalar-semantics fix: a
// non-NULL, non-boolean datum in predicate position is a typed execution
// error on BOTH engines — previously datumToTri silently treated it as TRUE
// on some paths while EvalBool/EvalPred required KindBool, so NOT (NOT e)
// and e filtered differently for non-boolean e.
func TestNonBooleanPredicateErrors(t *testing.T) {
	row := datum.Row{datum.NewInt(7)}
	en := env(1)
	intRef := Expr(col(1))
	cases := []struct {
		name string
		expr Expr
	}{
		{"double-negation", &Not{Kid: &Not{Kid: intRef}}},
		{"not", &Not{Kid: intRef}},
		{"and", and(intRef, eq(col(1), lit(7)))},
		{"single-kid-and", and(intRef)},
		{"or", &Or{Kids: []Expr{intRef, eq(col(1), lit(7))}}},
	}
	for _, c := range cases {
		if _, err := Eval(c.expr, row, en); err == nil {
			t.Errorf("%s: row Eval accepted a non-boolean predicate", c.name)
		}
		if _, err := vecEvalOne(t, c.expr, row, en); err == nil {
			t.Errorf("%s: vector Eval accepted a non-boolean predicate", c.name)
		}
		if _, err := vecPredOne(t, c.expr, row, en); err == nil {
			t.Errorf("%s: vector EvalPred accepted a non-boolean predicate", c.name)
		}
	}
	// Bare non-boolean at the very top of a filter: EvalBool and EvalPred
	// must both reject it (they share datumToTri now).
	if _, err := EvalBool(intRef, row, en); err == nil {
		t.Error("EvalBool accepted a bare integer predicate")
	}
	if _, err := vecPredOne(t, intRef, row, en); err == nil {
		t.Error("vector EvalPred accepted a bare integer predicate")
	}
	// NULL stays a legal predicate (Unknown), on both engines.
	nullRow := datum.Row{datum.Null}
	if got, err := Eval(&Not{Kid: &Not{Kid: col(1)}}, nullRow, en); err != nil || !got.IsNull() {
		t.Errorf("NOT NOT NULL = (%v, %v), want (NULL, nil)", got, err)
	}
	if got, err := vecEvalOne(t, &Not{Kid: &Not{Kid: col(1)}}, nullRow, en); err != nil || !got.IsNull() {
		t.Errorf("vector NOT NOT NULL = (%v, %v), want (NULL, nil)", got, err)
	}
}

// TestDoubleNegationMatchesBothEngines: for boolean e, NOT (NOT e) must
// filter exactly like e on both engines — the regression the non-boolean
// fix exists for, pinned on the boolean domain where it must keep working.
func TestDoubleNegationMatchesBothEngines(t *testing.T) {
	en := env(1)
	pred := lt(col(1), lit(3))
	double := &Not{Kid: &Not{Kid: pred}}
	for _, d := range []datum.Datum{datum.NewInt(1), datum.NewInt(5), datum.Null} {
		row := datum.Row{d}
		want, err := EvalBool(pred, row, en)
		if err != nil {
			t.Fatal(err)
		}
		got, err := EvalBool(double, row, en)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("row %v: NOT NOT filters %v, plain %v", d, got, want)
		}
		vgot, err := vecPredOne(t, double, row, en)
		if err != nil {
			t.Fatal(err)
		}
		if vgot != want {
			t.Errorf("row %v: vector NOT NOT filters %v, plain %v", d, vgot, want)
		}
	}
}

// TestConnectiveErrorsDominate pins the second fix: AND/OR evaluate every
// kid before folding, so a conjunct that errors surfaces the error no
// matter where it sits — reorder-predicates can no longer flip Error↔OK,
// and both engines agree. The erroring conjunct is string arithmetic inside
// a comparison; the other conjunct is FALSE (previously the row engine's
// short-circuit skipped the error when FALSE came first).
func TestConnectiveErrorsDominate(t *testing.T) {
	row := datum.Row{datum.NewInt(1), datum.NewString("x")}
	en := env(1, 2)
	falsy := Expr(eq(col(1), lit(99)))
	truthy := Expr(eq(col(1), lit(1)))
	erroring := Expr(lt(&Arith{Op: ArithAdd, L: col(2), R: lit(1)}, lit(10)))

	type order struct {
		name string
		expr Expr
	}
	orders := []order{
		{"and-false-first", and(falsy, erroring)},
		{"and-false-last", and(erroring, falsy)},
		{"or-true-first", &Or{Kids: []Expr{truthy, erroring}}},
		{"or-true-last", &Or{Kids: []Expr{erroring, truthy}}},
	}
	for _, o := range orders {
		if _, err := Eval(o.expr, row, en); err == nil {
			t.Errorf("%s: row Eval short-circuited past the erroring operand", o.name)
		}
		if _, err := EvalBool(o.expr, row, en); err == nil {
			t.Errorf("%s: row EvalBool short-circuited past the erroring operand", o.name)
		}
		if _, err := vecEvalOne(t, o.expr, row, en); err == nil {
			t.Errorf("%s: vector Eval short-circuited past the erroring operand", o.name)
		}
		if _, err := vecPredOne(t, o.expr, row, en); err == nil {
			t.Errorf("%s: vector EvalPred short-circuited past the erroring operand", o.name)
		}
	}
}

// TestEvalPredMixedConjunctionSelection: the slow path a can-error conjunct
// forces must still select exactly the rows row-engine WHERE semantics
// keep, when no row actually errors.
func TestEvalPredMixedConjunctionSelection(t *testing.T) {
	rows := []datum.Row{
		{datum.NewInt(1), datum.NewInt(10)},
		{datum.NewInt(2), datum.Null},
		{datum.NewInt(3), datum.NewInt(-4)},
		{datum.Null, datum.NewInt(2)},
		{datum.NewInt(5), datum.NewInt(1)},
	}
	en := env(1, 2)
	// The arithmetic conjunct can error in principle (operand kinds are
	// data-dependent), so EvalPred must take the full-input-intersection
	// path; over these all-int rows it never does error.
	pred := and(
		lt(col(1), lit(5)),
		&Cmp{Op: CmpGT, L: &Arith{Op: ArithAdd, L: col(2), R: lit(0)}, R: lit(0)},
	)
	cols := datum.ColumnVecs(rows, 2)
	ve := &VecEval{Env: en}
	idx := []int{0, 1, 2, 3, 4}
	sel, err := ve.EvalPred(pred, cols, idx, nil)
	if err != nil {
		t.Fatal(err)
	}
	var want []int
	for i, row := range rows {
		ok, err := EvalBool(pred, row, en)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			want = append(want, i)
		}
	}
	if len(sel) != len(want) {
		t.Fatalf("EvalPred kept %v, row engine %v", sel, want)
	}
	for i := range sel {
		if sel[i] != want[i] {
			t.Fatalf("EvalPred kept %v, row engine %v", sel, want)
		}
	}
}

// TestMixedKindComparisonIsUnknown pins the third fix (a decision, now
// documented and tested): comparing incomparable kinds yields Unknown — on
// both engines, in both value and filter position — not an error. EET
// rewrites never emit such comparisons (TypeOf rejects them), but dynamic
// data can still produce them, and the two engines must agree.
func TestMixedKindComparisonIsUnknown(t *testing.T) {
	row := datum.Row{datum.NewInt(1), datum.NewString("x"), datum.NewBool(true)}
	en := env(1, 2, 3)
	cases := []Expr{
		eq(col(1), col(2)),                          // INT = STRING
		lt(col(2), col(1)),                          // STRING < INT
		eq(col(3), lit(1)),                          // BOOL = INT
		eq(col(2), &Const{D: datum.NewBool(false)}), // STRING = BOOL
	}
	for i, e := range cases {
		got, err := Eval(e, row, en)
		if err != nil {
			t.Fatalf("case %d: row Eval: %v", i, err)
		}
		if !got.IsNull() {
			t.Errorf("case %d: row Eval = %v, want NULL (Unknown)", i, got)
		}
		vgot, err := vecEvalOne(t, e, row, en)
		if err != nil {
			t.Fatalf("case %d: vector Eval: %v", i, err)
		}
		if !vgot.IsNull() {
			t.Errorf("case %d: vector Eval = %v, want NULL (Unknown)", i, vgot)
		}
		// Unknown filters the row, without error, on both engines.
		ok, err := EvalBool(e, row, en)
		if err != nil || ok {
			t.Errorf("case %d: EvalBool = (%v, %v), want (false, nil)", i, ok, err)
		}
		kept, err := vecPredOne(t, e, row, en)
		if err != nil || kept {
			t.Errorf("case %d: vector EvalPred = (%v, %v), want (false, nil)", i, kept, err)
		}
		// And the mixed-kind tautology x = y OR x <> y is NOT true — the
		// reason TypeOf must gate EET tautologies on comparability.
		taut := &Or{Kids: []Expr{
			&Cmp{Op: CmpEQ, L: cases[0].(*Cmp).L, R: cases[0].(*Cmp).R},
			&Cmp{Op: CmpNE, L: cases[0].(*Cmp).L, R: cases[0].(*Cmp).R},
		}}
		if ok, err := EvalBool(taut, row, en); err != nil || ok {
			t.Errorf("mixed-kind x = y OR x <> y = (%v, %v); must be Unknown, not TRUE", ok, err)
		}
	}
	// The error message for the non-boolean predicate fix should say what
	// went wrong, for findings triage.
	if _, err := EvalBool(col(1), row, en); err == nil || !strings.Contains(err.Error(), "boolean") {
		t.Errorf("non-boolean predicate error should mention boolean, got %v", err)
	}
}
