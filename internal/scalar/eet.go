package scalar

import (
	"qtrtest/internal/datum"
)

// EETRewrite is one expression-level equivalence rewrite (EET: equivalent
// expression transformation). Apply returns the rewritten expression, or
// nil when the rewrite does not apply to e under env.
//
// Catalog contract — every rewrite is EXACTLY equivalent, not merely
// equivalent under WHERE semantics:
//
//   - same datum in value position (including NULL),
//   - same tri-state in predicate position,
//   - same error behavior on every row (a rewrite never introduces or
//     removes a typed or data-dependent execution error).
//
// TypeOf is the gate that makes this provable: rewrites only fire on
// subexpressions that type-check, so three-valued identities (De Morgan in
// Kleene logic, double negation, comparison negation) hold and no rewrite
// output can hit datumToTri's or evalArith's error paths where the input
// could not.
type EETRewrite struct {
	Name  string
	Apply func(e Expr, env TypeEnv) Expr
}

// EETRewrites returns the catalog in a fixed, deterministic order. Index
// positions are stable: tests and the exploration-rule pack rely on them.
func EETRewrites() []EETRewrite {
	return []EETRewrite{
		{Name: "eet-null-tautology", Apply: eetNullTautology},
		{Name: "eet-double-negation", Apply: eetDoubleNegation},
		{Name: "eet-de-morgan", Apply: eetDeMorgan},
		{Name: "eet-negate-comparison", Apply: eetNegateComparison},
		{Name: "eet-or-false-branch", Apply: eetOrFalseBranch},
		{Name: "eet-commute-arith", Apply: eetCommuteArith},
		{Name: "eet-assoc-arith", Apply: eetAssocArith},
	}
}

// predTyped reports whether e type-checks as exactly BOOL. The NULL
// wildcard is deliberately excluded: wrapping a bare NULL literal in a
// boolean shape would narrow its static type from wildcard to BOOL and
// could un-type an enclosing comparison (NULL = 'x' types; (NOT NOT NULL)
// = 'x' does not), so rewrites must preserve the site's static type.
func predTyped(e Expr, env TypeEnv) bool {
	t, err := TypeOf(e, env)
	return err == nil && t == datum.TypeBool
}

// anchorCol picks the smallest column referenced by e — a deterministic
// well-typed column to build IS NULL tautologies from.
func anchorCol(e Expr) (ColumnID, bool) {
	cols := ReferencedCols(e).Sorted()
	if len(cols) == 0 {
		return 0, false
	}
	return cols[0], true
}

// isNullTautology builds (c IS NULL OR NOT c IS NULL). IS NULL is total and
// never NULL, so the disjunction is exactly TRUE for every row.
func isNullTautology(c ColumnID) Expr {
	return &Or{Kids: []Expr{
		&IsNull{Kid: &ColRef{ID: c}},
		&Not{Kid: &IsNull{Kid: &ColRef{ID: c}}},
	}}
}

// isNullContradiction builds (c IS NULL AND NOT c IS NULL) — exactly FALSE
// for every row, never NULL, never an error.
func isNullContradiction(c ColumnID) Expr {
	return &And{Kids: []Expr{
		&IsNull{Kid: &ColRef{ID: c}},
		&Not{Kid: &IsNull{Kid: &ColRef{ID: c}}},
	}}
}

// eetNullTautology: p ⇒ p AND (c IS NULL OR NOT c IS NULL). AND with exact
// TRUE is the identity in Kleene logic (TRUE∧x = x for x ∈ {T,F,U}).
func eetNullTautology(e Expr, env TypeEnv) Expr {
	if !predTyped(e, env) {
		return nil
	}
	c, ok := anchorCol(e)
	if !ok {
		return nil
	}
	return &And{Kids: []Expr{e, isNullTautology(c)}}
}

// eetDoubleNegation: p ⇒ NOT (NOT p). Exact in Kleene logic (¬¬U = U), and
// now that non-boolean predicates are typed errors on both engines, exact
// in error behavior too.
func eetDoubleNegation(e Expr, env TypeEnv) Expr {
	if !predTyped(e, env) {
		return nil
	}
	return &Not{Kid: &Not{Kid: e}}
}

// eetDeMorgan: AND(p...) ⇒ NOT(OR(NOT p...)), OR(p...) ⇒ NOT(AND(NOT p...)).
// De Morgan holds exactly in three-valued logic. Applies to connectives
// with at least two kids (the degenerate forms are left to other rewrites).
func eetDeMorgan(e Expr, env TypeEnv) Expr {
	if !predTyped(e, env) {
		return nil
	}
	switch t := e.(type) {
	case *And:
		if len(t.Kids) < 2 {
			return nil
		}
		return &Not{Kid: &Or{Kids: negateAll(t.Kids)}}
	case *Or:
		if len(t.Kids) < 2 {
			return nil
		}
		return &Not{Kid: &And{Kids: negateAll(t.Kids)}}
	}
	return nil
}

func negateAll(kids []Expr) []Expr {
	out := make([]Expr, len(kids))
	for i, k := range kids {
		out[i] = &Not{Kid: k}
	}
	return out
}

// eetNegateComparison: l < r ⇒ NOT (l >= r), and so on for every operator.
// With NULL operands both sides are Unknown (¬U = U); with non-NULL
// comparable operands the orders are complementary. TypeOf guarantees the
// operands are comparable, so the incomparable-kinds Unknown case (where
// complementarity would fail) cannot arise.
func eetNegateComparison(e Expr, env TypeEnv) Expr {
	t, ok := e.(*Cmp)
	if !ok || !predTyped(e, env) {
		return nil
	}
	return &Not{Kid: &Cmp{Op: negateCmpOp(t.Op), L: t.L, R: t.R}}
}

func negateCmpOp(op CmpOp) CmpOp {
	switch op {
	case CmpEQ:
		return CmpNE
	case CmpNE:
		return CmpEQ
	case CmpLT:
		return CmpGE
	case CmpLE:
		return CmpGT
	case CmpGT:
		return CmpLE
	case CmpGE:
		return CmpLT
	}
	return op
}

// eetOrFalseBranch: p ⇒ p OR (q AND NOT q) with q = c IS NULL, which is
// always non-NULL boolean, so the branch is exactly FALSE (an arbitrary
// nullable q would make it Unknown and break the identity). OR with exact
// FALSE is the identity in Kleene logic.
func eetOrFalseBranch(e Expr, env TypeEnv) Expr {
	if !predTyped(e, env) {
		return nil
	}
	c, ok := anchorCol(e)
	if !ok {
		return nil
	}
	return &Or{Kids: []Expr{e, isNullContradiction(c)}}
}

// eetCommuteArith: l + r ⇒ r + l, l * r ⇒ r * l. Exact for every kind the
// arithmetic kernel accepts: int64 wraparound and IEEE float addition and
// multiplication both commute, NULL absorbs symmetrically, and an erroring
// operand errors on either side. Declines structurally equal operands (the
// rewrite would be the identity).
func eetCommuteArith(e Expr, env TypeEnv) Expr {
	t, ok := e.(*Arith)
	if !ok || t.Op == ArithSub {
		return nil
	}
	if _, err := TypeOf(e, env); err != nil {
		return nil
	}
	if Equal(t.L, t.R) {
		return nil
	}
	return &Arith{Op: t.Op, L: t.R, R: t.L}
}

// eetAssocArith: (a ∘ b) ∘ c ⇒ a ∘ (b ∘ c) for ∘ ∈ {+, *}. Restricted to
// operands that statically type INT (or the NULL wildcard): int64
// wraparound arithmetic is associative in Z/2^64 and NULL absorbs either
// way, whereas float rounding — and the int→float promotion DATE operands
// take — breaks associativity.
func eetAssocArith(e Expr, env TypeEnv) Expr {
	t, ok := e.(*Arith)
	if !ok || t.Op == ArithSub {
		return nil
	}
	l, ok := t.L.(*Arith)
	if !ok || l.Op != t.Op {
		return nil
	}
	for _, operand := range []Expr{l.L, l.R, t.R} {
		ty, err := TypeOf(operand, env)
		if err != nil || (ty != datum.TypeInt && ty != datum.TypeUnknown) {
			return nil
		}
	}
	return &Arith{Op: t.Op, L: l.L, R: &Arith{Op: t.Op, L: l.R, R: t.R}}
}
