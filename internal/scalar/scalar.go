// Package scalar implements scalar expression trees: column references,
// constants, comparisons, arithmetic, boolean connectives and aggregate
// functions. Columns are referred to by optimizer-wide ColumnIDs, so
// expressions are position-independent and survive tree rewrites (a rule can
// move a predicate without rebinding it).
package scalar

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"qtrtest/internal/datum"
	"qtrtest/internal/fnv64"
)

// ColumnID uniquely identifies a column instance within one query. Two scans
// of the same table produce disjoint ColumnIDs, so self-joins are unambiguous.
type ColumnID int

// ColSet is a set of ColumnIDs.
type ColSet map[ColumnID]bool

// NewColSet builds a set from ids.
func NewColSet(ids ...ColumnID) ColSet {
	s := make(ColSet, len(ids))
	for _, id := range ids {
		s[id] = true
	}
	return s
}

// Add inserts id.
func (s ColSet) Add(id ColumnID) { s[id] = true }

// Contains reports membership.
func (s ColSet) Contains(id ColumnID) bool { return s[id] }

// SubsetOf reports whether every element of s is in o.
func (s ColSet) SubsetOf(o ColSet) bool {
	for id := range s {
		if !o[id] {
			return false
		}
	}
	return true
}

// Union returns a new set with all elements of s and o.
func (s ColSet) Union(o ColSet) ColSet {
	out := make(ColSet, len(s)+len(o))
	for id := range s {
		out[id] = true
	}
	for id := range o {
		out[id] = true
	}
	return out
}

// Intersects reports whether the sets share an element.
func (s ColSet) Intersects(o ColSet) bool {
	for id := range s {
		if o[id] {
			return true
		}
	}
	return false
}

// Sorted returns the ids in ascending order.
func (s ColSet) Sorted() []ColumnID {
	out := make([]ColumnID, 0, len(s))
	for id := range s {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// CmpOp enumerates comparison operators.
type CmpOp int

// Comparison operators.
const (
	CmpEQ CmpOp = iota
	CmpNE
	CmpLT
	CmpLE
	CmpGT
	CmpGE
)

// String returns the SQL spelling of the operator.
func (o CmpOp) String() string {
	return [...]string{"=", "<>", "<", "<=", ">", ">="}[o]
}

// Commute returns the operator with operands swapped (a < b ⇔ b > a).
func (o CmpOp) Commute() CmpOp {
	switch o {
	case CmpLT:
		return CmpGT
	case CmpLE:
		return CmpGE
	case CmpGT:
		return CmpLT
	case CmpGE:
		return CmpLE
	default:
		return o
	}
}

// ArithOp enumerates arithmetic operators.
type ArithOp int

// Arithmetic operators.
const (
	ArithAdd ArithOp = iota
	ArithSub
	ArithMul
)

// String returns the SQL spelling of the operator.
func (o ArithOp) String() string { return [...]string{"+", "-", "*"}[o] }

// Expr is a scalar expression node.
type Expr interface {
	// Cols adds every column referenced by the expression to out.
	Cols(out ColSet)
	// SQL renders the expression, mapping ColumnIDs to SQL column names
	// through the supplied function.
	SQL(name func(ColumnID) string) string
	// Hash returns a structural fingerprint used to deduplicate memo
	// expressions.
	Hash() string
}

// ColRef references a column by id.
type ColRef struct{ ID ColumnID }

// Const is a literal.
type Const struct{ D datum.Datum }

// Cmp is a binary comparison.
type Cmp struct {
	Op   CmpOp
	L, R Expr
}

// Arith is binary arithmetic.
type Arith struct {
	Op   ArithOp
	L, R Expr
}

// And is the conjunction of its children (n-ary; empty means TRUE).
type And struct{ Kids []Expr }

// Or is the disjunction of its children (n-ary; must be non-empty).
type Or struct{ Kids []Expr }

// Not negates its child.
type Not struct{ Kid Expr }

// IsNull tests its child for SQL NULL.
type IsNull struct{ Kid Expr }

// Cols implements Expr.
func (e *ColRef) Cols(out ColSet) { out.Add(e.ID) }

// Cols implements Expr.
func (e *Const) Cols(out ColSet) {}

// Cols implements Expr.
func (e *Cmp) Cols(out ColSet) { e.L.Cols(out); e.R.Cols(out) }

// Cols implements Expr.
func (e *Arith) Cols(out ColSet) { e.L.Cols(out); e.R.Cols(out) }

// Cols implements Expr.
func (e *And) Cols(out ColSet) {
	for _, k := range e.Kids {
		k.Cols(out)
	}
}

// Cols implements Expr.
func (e *Or) Cols(out ColSet) {
	for _, k := range e.Kids {
		k.Cols(out)
	}
}

// Cols implements Expr.
func (e *Not) Cols(out ColSet) { e.Kid.Cols(out) }

// Cols implements Expr.
func (e *IsNull) Cols(out ColSet) { e.Kid.Cols(out) }

// SQL implements Expr.
func (e *ColRef) SQL(name func(ColumnID) string) string { return name(e.ID) }

// SQL implements Expr.
func (e *Const) SQL(func(ColumnID) string) string { return e.D.String() }

// SQL implements Expr.
func (e *Cmp) SQL(name func(ColumnID) string) string {
	return fmt.Sprintf("(%s %s %s)", e.L.SQL(name), e.Op, e.R.SQL(name))
}

// SQL implements Expr.
func (e *Arith) SQL(name func(ColumnID) string) string {
	return fmt.Sprintf("(%s %s %s)", e.L.SQL(name), e.Op, e.R.SQL(name))
}

// SQL implements Expr.
func (e *And) SQL(name func(ColumnID) string) string {
	if len(e.Kids) == 0 {
		return "TRUE"
	}
	parts := make([]string, len(e.Kids))
	for i, k := range e.Kids {
		parts[i] = k.SQL(name)
	}
	return "(" + strings.Join(parts, " AND ") + ")"
}

// SQL implements Expr.
func (e *Or) SQL(name func(ColumnID) string) string {
	parts := make([]string, len(e.Kids))
	for i, k := range e.Kids {
		parts[i] = k.SQL(name)
	}
	return "(" + strings.Join(parts, " OR ") + ")"
}

// SQL implements Expr.
func (e *Not) SQL(name func(ColumnID) string) string {
	return "(NOT " + e.Kid.SQL(name) + ")"
}

// SQL implements Expr.
func (e *IsNull) SQL(name func(ColumnID) string) string {
	return "(" + e.Kid.SQL(name) + " IS NULL)"
}

// HashInto appends a structural fingerprint of e to sb; Hash on any Expr is
// equivalent to HashInto into a fresh builder. The single-builder form keeps
// the optimizer's interning hot path allocation-free.
func HashInto(e Expr, sb *strings.Builder) {
	switch t := e.(type) {
	case *ColRef:
		sb.WriteByte('c')
		writeInt(sb, int64(t.ID))
	case *Const:
		sb.WriteByte('k')
		sb.WriteString(t.D.String())
	case *Cmp:
		sb.WriteByte('(')
		HashInto(t.L, sb)
		sb.WriteString(t.Op.String())
		HashInto(t.R, sb)
		sb.WriteByte(')')
	case *Arith:
		sb.WriteByte('(')
		HashInto(t.L, sb)
		sb.WriteString(t.Op.String())
		HashInto(t.R, sb)
		sb.WriteByte(')')
	case *And:
		sb.WriteString("and(")
		for i, k := range t.Kids {
			if i > 0 {
				sb.WriteByte(',')
			}
			HashInto(k, sb)
		}
		sb.WriteByte(')')
	case *Or:
		sb.WriteString("or(")
		for i, k := range t.Kids {
			if i > 0 {
				sb.WriteByte(',')
			}
			HashInto(k, sb)
		}
		sb.WriteByte(')')
	case *Not:
		sb.WriteString("not(")
		HashInto(t.Kid, sb)
		sb.WriteByte(')')
	case *IsNull:
		sb.WriteString("isnull(")
		HashInto(t.Kid, sb)
		sb.WriteByte(')')
	default:
		sb.WriteByte('?')
	}
}

func writeInt(sb *strings.Builder, v int64) {
	var buf [20]byte
	sb.Write(strconv.AppendInt(buf[:0], v, 10))
}

// FingerprintInto mixes a structural fingerprint of e into h: the numeric
// analogue of HashInto, used by the memo's interning table. Two expressions
// with Equal(a, b) always produce identical fingerprints; the converse is
// not guaranteed (hash collisions), which is why the memo backs every
// fingerprint with an Equal check.
func FingerprintInto(e Expr, h *fnv64.Hash) {
	switch t := e.(type) {
	case *ColRef:
		h.Byte('c')
		h.Int(int64(t.ID))
	case *Const:
		h.Byte('k')
		fingerprintDatum(t.D, h)
	case *Cmp:
		h.Byte('(')
		h.Int(int64(t.Op))
		FingerprintInto(t.L, h)
		FingerprintInto(t.R, h)
	case *Arith:
		h.Byte('+')
		h.Int(int64(t.Op))
		FingerprintInto(t.L, h)
		FingerprintInto(t.R, h)
	case *And:
		h.Byte('a')
		h.Int(int64(len(t.Kids)))
		for _, k := range t.Kids {
			FingerprintInto(k, h)
		}
	case *Or:
		h.Byte('o')
		h.Int(int64(len(t.Kids)))
		for _, k := range t.Kids {
			FingerprintInto(k, h)
		}
	case *Not:
		h.Byte('n')
		FingerprintInto(t.Kid, h)
	case *IsNull:
		h.Byte('z')
		FingerprintInto(t.Kid, h)
	default:
		h.Byte('?')
	}
}

func fingerprintDatum(d datum.Datum, h *fnv64.Hash) {
	h.Int(int64(d.K))
	h.Int(d.I)
	h.Float(d.F)
	h.String(d.S)
	h.Bool(d.B)
}

// Equal reports full structural equality of two scalar expressions — the
// collision-proof ground truth behind FingerprintInto.
func Equal(a, b Expr) bool {
	switch x := a.(type) {
	case *ColRef:
		y, ok := b.(*ColRef)
		return ok && x.ID == y.ID
	case *Const:
		y, ok := b.(*Const)
		return ok && x.D == y.D
	case *Cmp:
		y, ok := b.(*Cmp)
		return ok && x.Op == y.Op && Equal(x.L, y.L) && Equal(x.R, y.R)
	case *Arith:
		y, ok := b.(*Arith)
		return ok && x.Op == y.Op && Equal(x.L, y.L) && Equal(x.R, y.R)
	case *And:
		y, ok := b.(*And)
		return ok && exprsEqual(x.Kids, y.Kids)
	case *Or:
		y, ok := b.(*Or)
		return ok && exprsEqual(x.Kids, y.Kids)
	case *Not:
		y, ok := b.(*Not)
		return ok && Equal(x.Kid, y.Kid)
	case *IsNull:
		y, ok := b.(*IsNull)
		return ok && Equal(x.Kid, y.Kid)
	}
	return false
}

func exprsEqual(a, b []Expr) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

func hashOne(e Expr) string {
	var sb strings.Builder
	HashInto(e, &sb)
	return sb.String()
}

// Hash implements Expr.
func (e *ColRef) Hash() string { return hashOne(e) }

// Hash implements Expr.
func (e *Const) Hash() string { return hashOne(e) }

// Hash implements Expr.
func (e *Cmp) Hash() string { return hashOne(e) }

// Hash implements Expr.
func (e *Arith) Hash() string { return hashOne(e) }

// Hash implements Expr.
func (e *And) Hash() string { return hashOne(e) }

// Hash implements Expr.
func (e *Or) Hash() string { return hashOne(e) }

// Hash implements Expr.
func (e *Not) Hash() string { return hashOne(e) }

// Hash implements Expr.
func (e *IsNull) Hash() string { return hashOne(e) }

// TrueExpr returns an always-true predicate.
func TrueExpr() Expr { return &And{} }

// Conjuncts flattens a predicate into its top-level AND factors.
func Conjuncts(e Expr) []Expr {
	if a, ok := e.(*And); ok {
		flat := true
		for _, k := range a.Kids {
			if _, nested := k.(*And); nested {
				flat = false
				break
			}
		}
		if flat {
			// Common case: no nested conjunctions, so the Kids slice already
			// is the conjunct list. Share it with capacity clipped: callers
			// that append get a private reallocation instead of writing
			// through to this node.
			return a.Kids[:len(a.Kids):len(a.Kids)]
		}
		var out []Expr
		for _, k := range a.Kids {
			out = append(out, Conjuncts(k)...)
		}
		return out
	}
	return []Expr{e}
}

// NumConjuncts returns len(Conjuncts(e)) without materializing the slice.
func NumConjuncts(e Expr) int {
	if a, ok := e.(*And); ok {
		n := 0
		for _, k := range a.Kids {
			n += NumConjuncts(k)
		}
		return n
	}
	return 1
}

// MakeAnd rebuilds a predicate from conjuncts; one conjunct is returned
// unwrapped, zero conjuncts become TRUE.
func MakeAnd(conjuncts []Expr) Expr {
	switch len(conjuncts) {
	case 0:
		return TrueExpr()
	case 1:
		return conjuncts[0]
	default:
		return &And{Kids: conjuncts}
	}
}

// ReferencedCols returns the set of columns the expression mentions.
func ReferencedCols(e Expr) ColSet {
	s := make(ColSet)
	e.Cols(s)
	return s
}

// RefsWithin reports whether every column referenced by e is in allowed. It
// is ReferencedCols(e).SubsetOf(allowed) without materializing the set, with
// early exit on the first outside reference.
func RefsWithin(e Expr, allowed ColSet) bool {
	switch t := e.(type) {
	case *ColRef:
		return allowed[t.ID]
	case *Const:
		return true
	case *Cmp:
		return RefsWithin(t.L, allowed) && RefsWithin(t.R, allowed)
	case *Arith:
		return RefsWithin(t.L, allowed) && RefsWithin(t.R, allowed)
	case *And:
		for _, k := range t.Kids {
			if !RefsWithin(k, allowed) {
				return false
			}
		}
		return true
	case *Or:
		for _, k := range t.Kids {
			if !RefsWithin(k, allowed) {
				return false
			}
		}
		return true
	case *Not:
		return RefsWithin(t.Kid, allowed)
	case *IsNull:
		return RefsWithin(t.Kid, allowed)
	}
	return ReferencedCols(e).SubsetOf(allowed)
}

// AggOp enumerates aggregate functions.
type AggOp int

// Aggregate functions.
const (
	AggCountStar AggOp = iota
	AggCount
	AggSum
	AggMin
	AggMax
	AggAvg
)

// String returns the SQL name of the aggregate.
func (o AggOp) String() string {
	return [...]string{"COUNT", "COUNT", "SUM", "MIN", "MAX", "AVG"}[o]
}

// Agg is one aggregate computation: Op applied to Arg (nil for COUNT(*)),
// producing output column Out.
type Agg struct {
	Op  AggOp
	Arg Expr // nil for AggCountStar
	Out ColumnID
}

// SQL renders the aggregate call.
func (a Agg) SQL(name func(ColumnID) string) string {
	if a.Op == AggCountStar {
		return "COUNT(*)"
	}
	return fmt.Sprintf("%s(%s)", a.Op, a.Arg.SQL(name))
}

// Hash returns a structural fingerprint of the aggregate.
func (a Agg) Hash() string {
	if a.Op == AggCountStar {
		return fmt.Sprintf("cnt*->%d", a.Out)
	}
	return fmt.Sprintf("%d(%s)->%d", a.Op, a.Arg.Hash(), a.Out)
}

// FingerprintInto mixes the aggregate's structural fingerprint into h.
func (a Agg) FingerprintInto(h *fnv64.Hash) {
	h.Int(int64(a.Op))
	h.Int(int64(a.Out))
	if a.Arg != nil {
		FingerprintInto(a.Arg, h)
	} else {
		h.Byte('*')
	}
}

// Equal reports structural equality of two aggregates.
func (a Agg) Equal(b Agg) bool {
	if a.Op != b.Op || a.Out != b.Out {
		return false
	}
	if (a.Arg == nil) != (b.Arg == nil) {
		return false
	}
	return a.Arg == nil || Equal(a.Arg, b.Arg)
}
