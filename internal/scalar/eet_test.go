package scalar

import (
	"math/rand"
	"testing"

	"qtrtest/internal/datum"
)

// The EET tests run over a five-column schema that exercises every datum
// type the engines support: c1 INT, c2 FLOAT, c3 STRING, c4 BOOL, c5 DATE.
var eetColTypes = map[ColumnID]datum.Type{
	1: datum.TypeInt,
	2: datum.TypeFloat,
	3: datum.TypeString,
	4: datum.TypeBool,
	5: datum.TypeDate,
}

func eetTypeEnv(c ColumnID) (datum.Type, bool) {
	t, ok := eetColTypes[c]
	return t, ok
}

var eetEnv = Env{1: 0, 2: 1, 3: 2, 4: 3, 5: 4}

// randWideRows draws rows for the five-column schema with a NULL-heavy
// domain (~1/3 per column) so three-valued corner cases dominate.
func randWideRows(r *rand.Rand, n int) []datum.Row {
	rows := make([]datum.Row, n)
	for i := range rows {
		row := make(datum.Row, 5)
		gen := []func() datum.Datum{
			func() datum.Datum { return datum.NewInt(int64(r.Intn(9) - 4)) },
			func() datum.Datum { return datum.NewFloat(float64(r.Intn(16))/4 - 2) },
			func() datum.Datum { return datum.NewString(string(rune('a' + r.Intn(3)))) },
			func() datum.Datum { return datum.NewBool(r.Intn(2) == 0) },
			func() datum.Datum { return datum.NewDate(int64(r.Intn(7))) },
		}
		for c := range row {
			if r.Intn(3) == 0 {
				row[c] = datum.Null
			} else {
				row[c] = gen[c]()
			}
		}
		rows[i] = row
	}
	return rows
}

// randWidePred builds a random predicate over the five-column schema that
// type-checks under eetTypeEnv: arithmetic over int/float, comparisons only
// within a comparable family, bool leaves (column, constant, IS NULL),
// three-valued connectives and (double) negation on top.
func randWidePred(r *rand.Rand, depth int) Expr {
	intVal := func() Expr {
		switch r.Intn(4) {
		case 0:
			return &ColRef{ID: 1}
		case 1:
			return &Const{D: datum.NewInt(int64(r.Intn(9) - 4))}
		case 2:
			// Same-op nested chain: the shape eet-assoc-arith fires on.
			op := []ArithOp{ArithAdd, ArithMul}[r.Intn(2)]
			return &Arith{Op: op,
				L: &Arith{Op: op, L: &ColRef{ID: 1}, R: &Const{D: datum.NewInt(int64(r.Intn(5)))}},
				R: &Const{D: datum.NewInt(int64(r.Intn(5) + 1))}}
		default:
			return &Arith{Op: ArithOp(r.Intn(3)), L: &ColRef{ID: 1},
				R: &Const{D: datum.NewInt(int64(r.Intn(5)))}}
		}
	}
	numVal := func() Expr {
		switch r.Intn(5) {
		case 0:
			return &ColRef{ID: 2}
		case 1:
			return &Const{D: datum.NewFloat(float64(r.Intn(8)) / 2)}
		case 2:
			return &ColRef{ID: 5}
		case 3:
			return &Const{D: datum.Null}
		default:
			return intVal()
		}
	}
	leaf := func() Expr {
		switch r.Intn(6) {
		case 0:
			return &Cmp{Op: CmpOp(r.Intn(6)), L: &ColRef{ID: 3},
				R: &Const{D: datum.NewString(string(rune('a' + r.Intn(3))))}}
		case 1:
			return &Cmp{Op: CmpOp(r.Intn(2)), L: &ColRef{ID: 4},
				R: &Const{D: datum.NewBool(r.Intn(2) == 0)}}
		case 2:
			return &IsNull{Kid: numVal()}
		case 3:
			return &ColRef{ID: 4}
		case 4:
			return &Const{D: datum.NewBool(r.Intn(2) == 0)}
		default:
			return &Cmp{Op: CmpOp(r.Intn(6)), L: numVal(), R: numVal()}
		}
	}
	if depth <= 0 {
		return leaf()
	}
	switch r.Intn(6) {
	case 0:
		return &And{Kids: []Expr{randWidePred(r, depth-1), randWidePred(r, depth-1)}}
	case 1:
		return &Or{Kids: []Expr{randWidePred(r, depth-1), randWidePred(r, depth-1), leaf()}}
	case 2:
		return &Not{Kid: randWidePred(r, depth-1)}
	case 3:
		return &Not{Kid: &Not{Kid: randWidePred(r, depth-1)}}
	default:
		return leaf()
	}
}

func TestTypeOf(t *testing.T) {
	cases := []struct {
		name string
		e    Expr
		want datum.Type
		err  bool
	}{
		{"int-col", &ColRef{ID: 1}, datum.TypeInt, false},
		{"unbound-col", &ColRef{ID: 9}, 0, true},
		{"null-const", &Const{D: datum.Null}, datum.TypeUnknown, false},
		{"bool-const", &Const{D: datum.NewBool(true)}, datum.TypeBool, false},
		{"cmp-numeric-family", lt(col(1), col(2)), datum.TypeBool, false},
		{"cmp-int-date", lt(col(1), col(5)), datum.TypeBool, false},
		{"cmp-null-wildcard", eq(&Const{D: datum.Null}, col(3)), datum.TypeBool, false},
		{"cmp-int-string", eq(col(1), col(3)), 0, true},
		{"cmp-bool-int", eq(col(4), col(1)), 0, true},
		{"arith-int-int", &Arith{Op: ArithAdd, L: col(1), R: lit(2)}, datum.TypeInt, false},
		{"arith-int-float", &Arith{Op: ArithMul, L: col(1), R: col(2)}, datum.TypeFloat, false},
		{"arith-date", &Arith{Op: ArithAdd, L: col(5), R: lit(1)}, datum.TypeFloat, false},
		{"arith-null", &Arith{Op: ArithAdd, L: col(1), R: &Const{D: datum.Null}}, datum.TypeUnknown, false},
		{"arith-string", &Arith{Op: ArithAdd, L: col(3), R: lit(1)}, 0, true},
		{"and-bool-kids", and(lt(col(1), lit(3)), &ColRef{ID: 4}), datum.TypeBool, false},
		{"and-null-kid", and(lt(col(1), lit(3)), &Const{D: datum.Null}), datum.TypeBool, false},
		{"and-int-kid", and(lt(col(1), lit(3)), col(1)), 0, true},
		{"not-bool", &Not{Kid: &ColRef{ID: 4}}, datum.TypeBool, false},
		{"not-int", &Not{Kid: col(1)}, 0, true},
		{"isnull-any", &IsNull{Kid: col(3)}, datum.TypeBool, false},
	}
	for _, c := range cases {
		got, err := TypeOf(c.e, eetTypeEnv)
		if c.err {
			if err == nil {
				t.Errorf("%s: TypeOf = %v, want error", c.name, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("%s: TypeOf error: %v", c.name, err)
		} else if got != c.want {
			t.Errorf("%s: TypeOf = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestRewriteSites checks pre-order enumeration and that Rebuild is
// copy-on-write: substituting at a site must leave the original untouched.
func TestRewriteSites(t *testing.T) {
	inner := eq(&Arith{Op: ArithAdd, L: col(1), R: lit(2)}, lit(3))
	root := and(inner, &Not{Kid: &IsNull{Kid: col(2)}})
	sites := RewriteSites(root)
	// Pre-order: And, Cmp, Arith, c1, 2, 3, Not, IsNull, c2.
	if len(sites) != 9 {
		t.Fatalf("RewriteSites: %d sites, want 9", len(sites))
	}
	if sites[0].E != Expr(root) || sites[1].E != Expr(inner) {
		t.Error("RewriteSites is not pre-order from the root")
	}
	// Replace the Arith with a constant via its site.
	var arithSite *Site
	for i := range sites {
		if _, ok := sites[i].E.(*Arith); ok {
			arithSite = &sites[i]
			break
		}
	}
	if arithSite == nil {
		t.Fatal("no Arith site found")
	}
	rebuilt := arithSite.Rebuild(lit(7))
	if Equal(rebuilt, root) {
		t.Error("Rebuild returned a tree equal to the original")
	}
	// Copy-on-write: the original tree still holds the Arith.
	if _, ok := root.Kids[0].(*Cmp).L.(*Arith); !ok {
		t.Error("Rebuild mutated the original tree")
	}
	nc, ok := rebuilt.(*And).Kids[0].(*Cmp).L.(*Const)
	if !ok || nc.D.I != 7 {
		t.Errorf("rebuilt tree does not contain the replacement at the site")
	}
}

func TestNegateCmpOpComplement(t *testing.T) {
	want := map[CmpOp]CmpOp{
		CmpEQ: CmpNE, CmpNE: CmpEQ,
		CmpLT: CmpGE, CmpLE: CmpGT,
		CmpGT: CmpLE, CmpGE: CmpLT,
	}
	for op, neg := range want {
		if got := negateCmpOp(op); got != neg {
			t.Errorf("negateCmpOp(%v) = %v, want %v", op, got, neg)
		}
	}
}

func TestEETRewriteApplicability(t *testing.T) {
	byName := map[string]EETRewrite{}
	for _, rw := range EETRewrites() {
		byName[rw.Name] = rw
	}
	pred := Expr(lt(col(1), lit(5)))
	illTyped := Expr(eq(col(1), col(3))) // INT = STRING does not type
	bareNull := Expr(&Const{D: datum.Null})

	// Growth rewrites fire on any well-typed predicate with a column…
	for _, name := range []string{"eet-null-tautology", "eet-double-negation", "eet-negate-comparison", "eet-or-false-branch"} {
		if byName[name].Apply(pred, eetTypeEnv) == nil {
			t.Errorf("%s should apply to (c1 < 5)", name)
		}
		// …but never on ill-typed or NULL-wildcard expressions.
		if byName[name].Apply(illTyped, eetTypeEnv) != nil {
			t.Errorf("%s must decline an ill-typed comparison", name)
		}
		if byName[name].Apply(bareNull, eetTypeEnv) != nil {
			t.Errorf("%s must decline a bare NULL (type-wildcard) literal", name)
		}
	}
	// De Morgan needs a connective with >= 2 kids.
	if byName["eet-de-morgan"].Apply(pred, eetTypeEnv) != nil {
		t.Error("eet-de-morgan should not apply to a bare comparison")
	}
	if byName["eet-de-morgan"].Apply(and(pred), eetTypeEnv) != nil {
		t.Error("eet-de-morgan should not apply to a single-kid AND")
	}
	got := byName["eet-de-morgan"].Apply(and(pred, &ColRef{ID: 4}), eetTypeEnv)
	if got == nil {
		t.Error("eet-de-morgan should apply to a two-kid AND")
	} else if _, ok := got.(*Not); !ok {
		t.Errorf("eet-de-morgan produced %T, want *Not", got)
	}
	// Tautology injection needs an anchor column.
	if byName["eet-null-tautology"].Apply(&Const{D: datum.NewBool(true)}, eetTypeEnv) != nil {
		t.Error("eet-null-tautology needs a referenced column to anchor on")
	}
	// Commute declines subtraction, identity swaps, and ill-typed operands.
	commute := byName["eet-commute-arith"]
	if commute.Apply(&Arith{Op: ArithSub, L: col(1), R: lit(2)}, eetTypeEnv) != nil {
		t.Error("eet-commute-arith must decline subtraction")
	}
	if commute.Apply(&Arith{Op: ArithAdd, L: col(1), R: col(1)}, eetTypeEnv) != nil {
		t.Error("eet-commute-arith must decline structurally equal operands")
	}
	if commute.Apply(&Arith{Op: ArithAdd, L: col(3), R: lit(1)}, eetTypeEnv) != nil {
		t.Error("eet-commute-arith must decline string arithmetic")
	}
	swapped := commute.Apply(&Arith{Op: ArithAdd, L: col(1), R: lit(2)}, eetTypeEnv)
	if swapped == nil {
		t.Fatal("eet-commute-arith should apply to (c1 + 2)")
	}
	if a := swapped.(*Arith); !Equal(a.L, lit(2)) || !Equal(a.R, col(1)) {
		t.Errorf("eet-commute-arith produced %v, want operands swapped", swapped)
	}
	// Associate requires a same-op nested add/mul over INT (or NULL) operands.
	assoc := byName["eet-assoc-arith"]
	intChain := &Arith{Op: ArithAdd, L: &Arith{Op: ArithAdd, L: col(1), R: lit(1)}, R: lit(2)}
	if assoc.Apply(intChain, eetTypeEnv) == nil {
		t.Error("eet-assoc-arith should apply to ((c1 + 1) + 2)")
	}
	floatChain := &Arith{Op: ArithAdd, L: &Arith{Op: ArithAdd, L: col(2), R: lit(1)}, R: lit(2)}
	if assoc.Apply(floatChain, eetTypeEnv) != nil {
		t.Error("eet-assoc-arith must decline float operands (rounding is not associative)")
	}
	dateChain := &Arith{Op: ArithAdd, L: &Arith{Op: ArithAdd, L: col(5), R: lit(1)}, R: lit(2)}
	if assoc.Apply(dateChain, eetTypeEnv) != nil {
		t.Error("eet-assoc-arith must decline DATE operands (they take the float path)")
	}
	mixedOps := &Arith{Op: ArithAdd, L: &Arith{Op: ArithMul, L: col(1), R: lit(1)}, R: lit(2)}
	if assoc.Apply(mixedOps, eetTypeEnv) != nil {
		t.Error("eet-assoc-arith must decline mismatched operators")
	}
}

// checkEETEquivalence applies rw at every applicable site of pred and
// asserts the rewritten tree is EXACTLY equivalent to the original on both
// engines over rows: same root type, same datum per row, same filter
// selection, same error presence. Returns how many sites the rewrite fired.
func checkEETEquivalence(t *testing.T, pred Expr, rw EETRewrite, rows []datum.Row) int {
	t.Helper()
	origType, origTypeErr := TypeOf(pred, eetTypeEnv)
	cols := datum.ColumnVecs(rows, 5)
	idx := make([]int, len(rows))
	for i := range idx {
		idx[i] = i
	}
	fired := 0
	for _, site := range RewriteSites(pred) {
		repl := rw.Apply(site.E, eetTypeEnv)
		if repl == nil {
			continue
		}
		fired++
		rewritten := site.Rebuild(repl)
		// Rewrites preserve the static type of the whole tree.
		newType, newTypeErr := TypeOf(rewritten, eetTypeEnv)
		if (origTypeErr != nil) != (newTypeErr != nil) || (origTypeErr == nil && newType != origType) {
			t.Errorf("%s: root type changed: (%v,%v) -> (%v,%v) on %s",
				rw.Name, origType, origTypeErr, newType, newTypeErr, pred.SQL(colName))
			continue
		}
		ve := &VecEval{Env: eetEnv}
		var origVec, newVec datum.Vec
		origVecErr := ve.Eval(pred, cols, idx, &origVec)
		newVecErr := ve.Eval(rewritten, cols, idx, &newVec)
		if (origVecErr != nil) != (newVecErr != nil) {
			t.Errorf("%s: vec error flipped %v -> %v on %s", rw.Name, origVecErr, newVecErr, pred.SQL(colName))
			continue
		}
		for i, row := range rows {
			a, aerr := Eval(pred, row, eetEnv)
			b, berr := Eval(rewritten, row, eetEnv)
			if (aerr != nil) != (berr != nil) {
				t.Fatalf("%s: row %d error flipped %v -> %v on %s -> %s",
					rw.Name, i, aerr, berr, pred.SQL(colName), rewritten.SQL(colName))
			}
			if aerr != nil {
				continue
			}
			if datum.TotalCompare(a, b) != 0 || a.IsNull() != b.IsNull() {
				t.Fatalf("%s: row %d value changed %v -> %v on %s -> %s",
					rw.Name, i, a, b, pred.SQL(colName), rewritten.SQL(colName))
			}
			if origVecErr == nil {
				if datum.TotalCompare(origVec.D[i], newVec.D[i]) != 0 || origVec.IsNull(i) != newVec.IsNull(i) {
					t.Fatalf("%s: row %d vec value changed %v -> %v on %s -> %s",
						rw.Name, i, origVec.D[i], newVec.D[i], pred.SQL(colName), rewritten.SQL(colName))
				}
			}
		}
		// Filter position: EvalPred selections must match when the root is
		// a well-typed predicate.
		if origTypeErr == nil && origType == datum.TypeBool && origVecErr == nil {
			selA, errA := ve.EvalPred(pred, cols, idx, nil)
			selB, errB := ve.EvalPred(rewritten, cols, idx, nil)
			if (errA != nil) != (errB != nil) {
				t.Fatalf("%s: EvalPred error flipped %v -> %v on %s", rw.Name, errA, errB, pred.SQL(colName))
			}
			if errA == nil {
				if len(selA) != len(selB) {
					t.Fatalf("%s: selection size changed %d -> %d on %s -> %s",
						rw.Name, len(selA), len(selB), pred.SQL(colName), rewritten.SQL(colName))
				}
				for i := range selA {
					if selA[i] != selB[i] {
						t.Fatalf("%s: selection changed at %d on %s", rw.Name, i, pred.SQL(colName))
					}
				}
			}
		}
	}
	return fired
}

// TestEETRewritesExactEquivalence sweeps random well-typed predicates and
// checks every catalog rewrite at every applicable site against both
// engines on NULL-heavy data.
func TestEETRewritesExactEquivalence(t *testing.T) {
	fired := map[string]int{}
	for seed := int64(0); seed < 60; seed++ {
		r := rand.New(rand.NewSource(seed))
		rows := randWideRows(r, 64)
		for ei := 0; ei < 4; ei++ {
			pred := randWidePred(r, 2)
			if _, err := TypeOf(pred, eetTypeEnv); err != nil {
				t.Fatalf("seed %d: generator produced ill-typed %s: %v", seed, pred.SQL(colName), err)
			}
			for _, rw := range EETRewrites() {
				fired[rw.Name] += checkEETEquivalence(t, pred, rw, rows)
			}
		}
	}
	for _, rw := range EETRewrites() {
		if fired[rw.Name] == 0 {
			t.Errorf("%s never fired across the sweep; generator lost its coverage", rw.Name)
		}
	}
}

// TestVecEvalMatchesRowEvalWide widens the row-vs-vector differential test
// to all five column types (bool and date leaves, double negation, bool
// constants) on a NULL-heavy domain.
func TestVecEvalMatchesRowEvalWide(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		r := rand.New(rand.NewSource(seed))
		rows := randWideRows(r, 80)
		cols := datum.ColumnVecs(rows, 5)
		idx := make([]int, len(rows))
		for i := range idx {
			idx[i] = i
		}
		ve := &VecEval{Env: eetEnv}
		for ei := 0; ei < 8; ei++ {
			e := randWidePred(r, 2)
			var out datum.Vec
			if err := ve.Eval(e, cols, idx, &out); err != nil {
				t.Fatalf("seed %d: VecEval error on %s: %v", seed, e.SQL(colName), err)
			}
			for i, row := range rows {
				want, err := Eval(e, row, eetEnv)
				if err != nil {
					t.Fatalf("seed %d: row Eval error on %s: %v", seed, e.SQL(colName), err)
				}
				if datum.TotalCompare(out.D[i], want) != 0 || out.IsNull(i) != want.IsNull() {
					t.Fatalf("seed %d expr %s row %d: vec=%v row=%v",
						seed, e.SQL(colName), i, out.D[i], want)
				}
			}
			sel, err := ve.EvalPred(e, cols, idx, nil)
			if err != nil {
				t.Fatalf("seed %d: EvalPred error on %s: %v", seed, e.SQL(colName), err)
			}
			var want []int
			for i, row := range rows {
				ok, err := EvalBool(e, row, eetEnv)
				if err != nil {
					t.Fatalf("seed %d: EvalBool error: %v", seed, err)
				}
				if ok {
					want = append(want, i)
				}
			}
			if len(sel) != len(want) {
				t.Fatalf("seed %d expr %s: EvalPred kept %d rows, EvalBool %d",
					seed, e.SQL(colName), len(sel), len(want))
			}
			for i := range sel {
				if sel[i] != want[i] {
					t.Fatalf("seed %d: selection diverges at %d", seed, i)
				}
			}
		}
	}
}

// FuzzEETRewrite is the native-fuzzing form of the equivalence sweep: one
// seed drives the predicate and data, rwPick selects the catalog entry, and
// every applicable site must rewrite to an exactly equivalent expression.
func FuzzEETRewrite(f *testing.F) {
	for i := int64(0); i < 7; i++ {
		f.Add(i*31+1, i)
	}
	catalog := EETRewrites()
	f.Fuzz(func(t *testing.T, seed, rwPick int64) {
		n := int64(len(catalog))
		rw := catalog[int(((rwPick%n)+n)%n)]
		r := rand.New(rand.NewSource(seed))
		rows := randWideRows(r, 48)
		for ei := 0; ei < 3; ei++ {
			pred := randWidePred(r, 2)
			checkEETEquivalence(t, pred, rw, rows)
		}
	})
}
