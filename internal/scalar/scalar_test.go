package scalar

import (
	"math/rand"
	"testing"
	"testing/quick"

	"qtrtest/internal/datum"
)

func col(id int) *ColRef    { return &ColRef{ID: ColumnID(id)} }
func lit(v int64) *Const    { return &Const{D: datum.NewInt(v)} }
func eq(l, r Expr) *Cmp     { return &Cmp{Op: CmpEQ, L: l, R: r} }
func lt(l, r Expr) *Cmp     { return &Cmp{Op: CmpLT, L: l, R: r} }
func and(kids ...Expr) *And { return &And{Kids: kids} }
func env(ids ...ColumnID) Env {
	e := make(Env)
	for i, id := range ids {
		e[id] = i
	}
	return e
}

func TestEvalComparisons(t *testing.T) {
	row := datum.Row{datum.NewInt(5), datum.NewInt(7), datum.Null}
	e := env(1, 2, 3)
	cases := []struct {
		expr Expr
		want datum.Datum
	}{
		{eq(col(1), lit(5)), datum.NewBool(true)},
		{eq(col(1), col(2)), datum.NewBool(false)},
		{lt(col(1), col(2)), datum.NewBool(true)},
		{eq(col(3), lit(5)), datum.Null}, // NULL comparison -> UNKNOWN
		{&IsNull{Kid: col(3)}, datum.NewBool(true)},
		{&IsNull{Kid: col(1)}, datum.NewBool(false)},
		{&Not{Kid: eq(col(3), lit(5))}, datum.Null},
	}
	for i, c := range cases {
		got, err := Eval(c.expr, row, e)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got != c.want {
			t.Errorf("case %d: got %v want %v", i, got, c.want)
		}
	}
}

func TestEvalThreeValuedConnectives(t *testing.T) {
	row := datum.Row{datum.Null, datum.NewInt(1)}
	e := env(1, 2)
	unknown := eq(col(1), lit(1)) // NULL = 1 -> UNKNOWN
	truthy := eq(col(2), lit(1))
	falsy := eq(col(2), lit(2))

	// UNKNOWN AND FALSE = FALSE; UNKNOWN AND TRUE = UNKNOWN.
	if d, _ := Eval(and(unknown, falsy), row, e); d != datum.NewBool(false) {
		t.Errorf("UNKNOWN AND FALSE = %v, want FALSE", d)
	}
	if d, _ := Eval(and(unknown, truthy), row, e); !d.IsNull() {
		t.Errorf("UNKNOWN AND TRUE = %v, want NULL", d)
	}
	// UNKNOWN OR TRUE = TRUE; UNKNOWN OR FALSE = UNKNOWN.
	if d, _ := Eval(&Or{Kids: []Expr{unknown, truthy}}, row, e); d != datum.NewBool(true) {
		t.Errorf("UNKNOWN OR TRUE = %v, want TRUE", d)
	}
	if d, _ := Eval(&Or{Kids: []Expr{unknown, falsy}}, row, e); !d.IsNull() {
		t.Errorf("UNKNOWN OR FALSE = %v, want NULL", d)
	}
}

func TestEvalBoolNullIsFalse(t *testing.T) {
	row := datum.Row{datum.Null}
	ok, err := EvalBool(eq(col(1), lit(1)), row, env(1))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("NULL predicate must filter the row (WHERE semantics)")
	}
}

func TestEvalArith(t *testing.T) {
	row := datum.Row{datum.NewInt(6), datum.NewFloat(0.5), datum.Null}
	e := env(1, 2, 3)
	if d, _ := Eval(&Arith{Op: ArithMul, L: col(1), R: lit(7)}, row, e); d != datum.NewInt(42) {
		t.Errorf("6*7 = %v", d)
	}
	if d, _ := Eval(&Arith{Op: ArithAdd, L: col(1), R: col(2)}, row, e); d != datum.NewFloat(6.5) {
		t.Errorf("6+0.5 = %v", d)
	}
	if d, _ := Eval(&Arith{Op: ArithSub, L: col(1), R: col(3)}, row, e); !d.IsNull() {
		t.Errorf("6-NULL = %v, want NULL", d)
	}
}

func TestEvalUnboundColumn(t *testing.T) {
	if _, err := Eval(col(9), datum.Row{}, Env{}); err == nil {
		t.Error("expected error for unbound column")
	}
}

func TestConjunctsAndMakeAnd(t *testing.T) {
	e := and(eq(col(1), lit(1)), and(eq(col(2), lit(2)), eq(col(3), lit(3))))
	cs := Conjuncts(e)
	if len(cs) != 3 {
		t.Fatalf("Conjuncts: got %d, want 3", len(cs))
	}
	rebuilt := MakeAnd(cs)
	if rebuilt.Hash() != and(cs[0], cs[1], cs[2]).Hash() {
		t.Error("MakeAnd should rebuild an AND of all conjuncts")
	}
	if MakeAnd(nil).Hash() != TrueExpr().Hash() {
		t.Error("MakeAnd(nil) should be TRUE")
	}
	if MakeAnd(cs[:1]) != cs[0] {
		t.Error("MakeAnd of one conjunct should unwrap")
	}
}

func TestSubstituteAndRemap(t *testing.T) {
	pred := and(eq(col(1), lit(5)), lt(col(2), col(1)))
	remapped := Remap(pred, map[ColumnID]ColumnID{1: 10})
	refs := ReferencedCols(remapped)
	if !refs.Contains(10) || refs.Contains(1) || !refs.Contains(2) {
		t.Errorf("Remap refs wrong: %v", refs.Sorted())
	}
	// The original must be untouched.
	if !ReferencedCols(pred).Contains(1) {
		t.Error("Remap mutated its input")
	}
	inlined := Substitute(pred, map[ColumnID]Expr{1: &Arith{Op: ArithAdd, L: col(3), R: lit(1)}})
	refs2 := ReferencedCols(inlined)
	if !refs2.Contains(3) || refs2.Contains(1) {
		t.Errorf("Substitute refs wrong: %v", refs2.Sorted())
	}
}

func TestColSetOps(t *testing.T) {
	a := NewColSet(1, 2, 3)
	b := NewColSet(3, 4)
	if !NewColSet(1, 2).SubsetOf(a) || a.SubsetOf(b) {
		t.Error("SubsetOf wrong")
	}
	if !a.Intersects(b) || a.Intersects(NewColSet(9)) {
		t.Error("Intersects wrong")
	}
	u := a.Union(b)
	if len(u) != 4 {
		t.Errorf("Union size %d", len(u))
	}
	s := u.Sorted()
	for i := 1; i < len(s); i++ {
		if s[i-1] >= s[i] {
			t.Error("Sorted not ascending")
		}
	}
}

func TestSQLRendering(t *testing.T) {
	name := func(id ColumnID) string { return map[ColumnID]string{1: "a", 2: "b"}[id] }
	e := and(eq(col(1), lit(5)), &Or{Kids: []Expr{lt(col(2), col(1)), &IsNull{Kid: col(2)}}})
	got := e.SQL(name)
	want := "((a = 5) AND ((b < a) OR (b IS NULL)))"
	if got != want {
		t.Errorf("SQL = %q, want %q", got, want)
	}
	if TrueExpr().SQL(name) != "TRUE" {
		t.Error("empty AND must render TRUE")
	}
}

// Property: Hash is structural — structurally equal expressions hash equal,
// and a changed literal changes the hash.
func TestHashStructural(t *testing.T) {
	f := func(a, b int64) bool {
		ea := eq(col(1), lit(a))
		eb := eq(col(1), lit(b))
		if a == b {
			return ea.Hash() == eb.Hash()
		}
		return ea.Hash() != eb.Hash()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: evaluation is deterministic.
func TestEvalDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		row := datum.Row{datum.NewInt(int64(r.Intn(10))), datum.NewInt(int64(r.Intn(10)))}
		e := &Cmp{Op: CmpOp(r.Intn(6)), L: col(1), R: col(2)}
		a, err1 := Eval(e, row, env(1, 2))
		b, err2 := Eval(e, row, env(1, 2))
		if err1 != nil || err2 != nil || a != b {
			t.Fatalf("nondeterministic eval at %d", i)
		}
	}
}

func TestAggSQLAndHash(t *testing.T) {
	a := Agg{Op: AggCountStar, Out: 5}
	if a.SQL(func(ColumnID) string { return "x" }) != "COUNT(*)" {
		t.Error("COUNT(*) rendering")
	}
	s := Agg{Op: AggSum, Arg: col(3), Out: 6}
	if got := s.SQL(func(id ColumnID) string { return "c" }); got != "SUM(c)" {
		t.Errorf("SUM rendering: %s", got)
	}
	if a.Hash() == s.Hash() {
		t.Error("distinct aggs must hash differently")
	}
}

func TestCmpCommute(t *testing.T) {
	pairs := map[CmpOp]CmpOp{
		CmpLT: CmpGT, CmpLE: CmpGE, CmpGT: CmpLT, CmpGE: CmpLE, CmpEQ: CmpEQ, CmpNE: CmpNE,
	}
	for op, want := range pairs {
		if op.Commute() != want {
			t.Errorf("%v.Commute() = %v, want %v", op, op.Commute(), want)
		}
	}
}
