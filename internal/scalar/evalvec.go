package scalar

import (
	"fmt"

	"qtrtest/internal/datum"
)

// VecEval evaluates expressions over column vectors, one batch of rows at a
// time. It reuses scratch vectors across calls, so a VecEval must not be
// shared between goroutines. Results are value-identical to the row-at-a-time
// Eval/EvalBool: both bottom out in the same evalCmp/evalArith kernels.
type VecEval struct {
	// Env maps ColumnIDs to column positions, exactly like Eval's Env maps
	// them to row slots.
	Env Env

	pool []*datum.Vec
}

func (v *VecEval) getVec() *datum.Vec {
	if n := len(v.pool); n > 0 {
		x := v.pool[n-1]
		v.pool = v.pool[:n-1]
		x.Reset()
		return x
	}
	return &datum.Vec{}
}

func (v *VecEval) putVec(x *datum.Vec) { v.pool = append(v.pool, x) }

// vecOp is a resolved operand: a column gathered through the selection
// vector, a dense scratch result, or a constant.
type vecOp struct {
	col   *datum.Vec // gather: value for position k is col.D[idx[k]]
	dense *datum.Vec // dense scratch result: value for position k is dense.D[k]
	c     datum.Datum
}

func (o *vecOp) at(k, ri int) datum.Datum {
	switch {
	case o.col != nil:
		return o.col.D[ri]
	case o.dense != nil:
		return o.dense.D[k]
	default:
		return o.c
	}
}

// operand resolves e without materializing ColRefs and Consts; anything else
// is evaluated into a pooled scratch vector the caller must release.
func (v *VecEval) operand(e Expr, cols []datum.Vec, idx []int) (vecOp, error) {
	switch t := e.(type) {
	case *ColRef:
		slot, ok := v.Env[t.ID]
		if !ok {
			return vecOp{}, fmt.Errorf("scalar: column c%d not in scope", t.ID)
		}
		return vecOp{col: &cols[slot]}, nil
	case *Const:
		return vecOp{c: t.D}, nil
	default:
		scratch := v.getVec()
		if err := v.Eval(e, cols, idx, scratch); err != nil {
			v.putVec(scratch)
			return vecOp{}, err
		}
		return vecOp{dense: scratch}, nil
	}
}

func (v *VecEval) release(o vecOp) {
	if o.dense != nil {
		v.putVec(o.dense)
	}
}

// Eval evaluates e for every selected row, appending one result per entry of
// idx to out (which is reset first). cols holds the input columns; idx[k] is
// the row index of the k-th selected row within them.
func (v *VecEval) Eval(e Expr, cols []datum.Vec, idx []int, out *datum.Vec) error {
	out.Reset()
	switch t := e.(type) {
	case *ColRef:
		slot, ok := v.Env[t.ID]
		if !ok {
			return fmt.Errorf("scalar: column c%d not in scope", t.ID)
		}
		src := cols[slot].D
		for _, ri := range idx {
			out.Append(src[ri])
		}
		return nil
	case *Const:
		for range idx {
			out.Append(t.D)
		}
		return nil
	case *Cmp:
		l, err := v.operand(t.L, cols, idx)
		if err != nil {
			return err
		}
		r, err := v.operand(t.R, cols, idx)
		if err != nil {
			v.release(l)
			return err
		}
		for k, ri := range idx {
			out.Append(triToDatum(evalCmp(t.Op, l.at(k, ri), r.at(k, ri))))
		}
		v.release(l)
		v.release(r)
		return nil
	case *Arith:
		l, err := v.operand(t.L, cols, idx)
		if err != nil {
			return err
		}
		r, err := v.operand(t.R, cols, idx)
		if err != nil {
			v.release(l)
			return err
		}
		for k, ri := range idx {
			d, err := evalArith(t.Op, l.at(k, ri), r.at(k, ri))
			if err != nil {
				v.release(l)
				v.release(r)
				return err
			}
			out.Append(d)
		}
		v.release(l)
		v.release(r)
		return nil
	case *And:
		return v.evalVariadic(t.Kids, cols, idx, out, datum.True, datum.Tri.And)
	case *Or:
		return v.evalVariadic(t.Kids, cols, idx, out, datum.False, datum.Tri.Or)
	case *Not:
		if err := v.Eval(t.Kid, cols, idx, out); err != nil {
			return err
		}
		for k := range out.D {
			tri, err := datumToTri(out.D[k])
			if err != nil {
				return err
			}
			out.Put(k, triToDatum(tri.Not()))
		}
		return nil
	case *IsNull:
		o, err := v.operand(t.Kid, cols, idx)
		if err != nil {
			return err
		}
		for k, ri := range idx {
			out.Append(datum.NewBool(o.at(k, ri).IsNull()))
		}
		v.release(o)
		return nil
	default:
		return fmt.Errorf("scalar: cannot evaluate %T", e)
	}
}

// evalVariadic folds AND/OR over the kids' dense results. Every kid is
// evaluated before folding — the same errors-dominate rule as the row
// engine's Eval — so Error-vs-OK never depends on conjunct order or engine.
// When both engines error, the error *message* may differ (this engine
// evaluates conjunct-major, the row engine row-major, so a different
// offending value can be seen first); error presence is the contract.
func (v *VecEval) evalVariadic(kids []Expr, cols []datum.Vec, idx []int, out *datum.Vec, unit datum.Tri, fold func(datum.Tri, datum.Tri) datum.Tri) error {
	if len(kids) == 0 {
		d := triToDatum(unit)
		for range idx {
			out.Append(d)
		}
		return nil
	}
	if err := v.Eval(kids[0], cols, idx, out); err != nil {
		return err
	}
	// Normalize the first kid through datumToTri so a single-kid AND/OR
	// rejects non-boolean operands exactly like the row engine's fold.
	for k := range out.D {
		tri, err := datumToTri(out.D[k])
		if err != nil {
			return err
		}
		out.Put(k, triToDatum(tri))
	}
	if len(kids) == 1 {
		return nil
	}
	tmp := v.getVec()
	defer v.putVec(tmp)
	for _, kid := range kids[1:] {
		if err := v.Eval(kid, cols, idx, tmp); err != nil {
			return err
		}
		for k := range out.D {
			a, err := datumToTri(out.D[k])
			if err != nil {
				return err
			}
			b, err := datumToTri(tmp.D[k])
			if err != nil {
				return err
			}
			out.Put(k, triToDatum(fold(a, b)))
		}
	}
	return nil
}

// EvalPred filters idx by the predicate under WHERE semantics (NULL is
// false), appending the surviving row indexes to sel[:0] and returning it.
// sel may alias idx's storage: the output is always a subsequence of the
// input, written left to right, so in-place restriction is safe.
//
// Conjunction restricts the selection kid by kid — the same early-out the
// row engine's filter loop gets from rows failing an early conjunct — but
// ONLY when every conjunct is statically error-free (errFree): a conjunct
// that can error must see every input row, or errors-dominate would depend
// on which conjunct ran first. Mixed conjunctions fall back to evaluating
// each conjunct over the full input and intersecting the selections.
func (v *VecEval) EvalPred(e Expr, cols []datum.Vec, idx []int, sel []int) ([]int, error) {
	switch t := e.(type) {
	case *And:
		if len(t.Kids) == 0 {
			return append(sel[:0], idx...), nil
		}
		allSafe := true
		for _, kid := range t.Kids {
			if !errFreePred(kid, v.Env) {
				allSafe = false
				break
			}
		}
		if !allSafe {
			return v.evalPredAndSlow(t.Kids, cols, idx, sel)
		}
		cur, err := v.EvalPred(t.Kids[0], cols, idx, sel)
		for _, kid := range t.Kids[1:] {
			if err != nil {
				return nil, err
			}
			cur, err = v.EvalPred(kid, cols, cur, cur)
		}
		return cur, err
	case *Cmp:
		l, err := v.operand(t.L, cols, idx)
		if err != nil {
			return nil, err
		}
		r, err := v.operand(t.R, cols, idx)
		if err != nil {
			v.release(l)
			return nil, err
		}
		sel = sel[:0]
		for k, ri := range idx {
			if evalCmp(t.Op, l.at(k, ri), r.at(k, ri)) == datum.True {
				sel = append(sel, ri)
			}
		}
		v.release(l)
		v.release(r)
		return sel, nil
	default:
		out := v.getVec()
		defer v.putVec(out)
		if err := v.Eval(e, cols, idx, out); err != nil {
			return nil, err
		}
		sel = sel[:0]
		for k, ri := range idx {
			tri, err := datumToTri(out.D[k])
			if err != nil {
				return nil, err
			}
			if tri == datum.True {
				sel = append(sel, ri)
			}
		}
		return sel, nil
	}
}

// evalPredAndSlow handles a conjunction with at least one conjunct that can
// error: every conjunct is evaluated over the FULL input selection (so any
// error surfaces regardless of what the other conjuncts exclude), and the
// surviving selections are intersected. All selections are ordered
// subsequences of idx, so intersection is a two-pointer merge.
func (v *VecEval) evalPredAndSlow(kids []Expr, cols []datum.Vec, idx []int, sel []int) ([]int, error) {
	cur := append([]int(nil), idx...)
	var scratch []int
	for _, kid := range kids {
		kidSel, err := v.EvalPred(kid, cols, idx, scratch[:0])
		if err != nil {
			return nil, err
		}
		cur = intersectSubseq(idx, cur, kidSel)
		scratch = kidSel
	}
	return append(sel[:0], cur...), nil
}

// intersectSubseq intersects a and b, both subsequences of base (which has
// no duplicate entries), writing the result into a's storage; the output is
// a subsequence of a produced left to right, so the in-place write is safe.
func intersectSubseq(base, a, b []int) []int {
	out := a[:0]
	i, j := 0, 0
	for _, x := range base {
		inA := i < len(a) && a[i] == x
		inB := j < len(b) && b[j] == x
		if inA {
			i++
		}
		if inB {
			j++
		}
		if inA && inB {
			out = append(out, x)
		}
	}
	return out
}
