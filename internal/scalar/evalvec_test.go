package scalar

import (
	"math/rand"
	"testing"

	"qtrtest/internal/datum"
)

func colName(c ColumnID) string { return "c" + string(rune('0'+c)) }

// randVecExpr builds a random type-correct expression over columns 1..3
// (int, float, string), like the engine's query generators do: arithmetic
// only over numeric operands, comparisons only over comparable kinds.
func randVecExpr(r *rand.Rand, depth int) Expr {
	numeric := func() Expr {
		switch r.Intn(3) {
		case 0:
			return &ColRef{ID: 1}
		case 1:
			return &ColRef{ID: 2}
		default:
			return &Const{D: datum.NewInt(int64(r.Intn(10) - 5))}
		}
	}
	numericOrArith := func() Expr {
		if r.Intn(3) == 0 {
			return &Arith{Op: ArithOp(r.Intn(3)), L: numeric(), R: numeric()}
		}
		return numeric()
	}
	leaf := func() Expr {
		if r.Intn(4) == 0 {
			return &Cmp{Op: CmpOp(r.Intn(6)),
				L: &ColRef{ID: 3}, R: &Const{D: datum.NewString(string(rune('a' + r.Intn(4))))}}
		}
		return &Cmp{Op: CmpOp(r.Intn(6)), L: numericOrArith(), R: numericOrArith()}
	}
	if depth <= 0 {
		return leaf()
	}
	switch r.Intn(6) {
	case 0:
		return &And{Kids: []Expr{randVecExpr(r, depth-1), randVecExpr(r, depth-1)}}
	case 1:
		return &Or{Kids: []Expr{randVecExpr(r, depth-1), randVecExpr(r, depth-1)}}
	case 2:
		return &Not{Kid: randVecExpr(r, depth-1)}
	case 3:
		return &IsNull{Kid: numericOrArith()}
	default:
		return leaf()
	}
}

func randVecRows(r *rand.Rand, n int) []datum.Row {
	rows := make([]datum.Row, n)
	for i := range rows {
		row := make(datum.Row, 3)
		if r.Intn(5) == 0 {
			row[0] = datum.Null
		} else {
			row[0] = datum.NewInt(int64(r.Intn(10) - 5))
		}
		if r.Intn(5) == 0 {
			row[1] = datum.Null
		} else {
			row[1] = datum.NewFloat(float64(r.Intn(20))/2 - 5)
		}
		if r.Intn(5) == 0 {
			row[2] = datum.Null
		} else {
			row[2] = datum.NewString(string(rune('a' + r.Intn(4))))
		}
		rows[i] = row
	}
	return rows
}

// VecEval.Eval must produce exactly Eval's value for every row, and
// EvalPred must select exactly the rows EvalBool accepts.
func TestVecEvalMatchesRowEval(t *testing.T) {
	env := Env{1: 0, 2: 1, 3: 2}
	for seed := int64(0); seed < 40; seed++ {
		r := rand.New(rand.NewSource(seed))
		rows := randVecRows(r, 100)
		cols := datum.ColumnVecs(rows, 3)
		idx := make([]int, len(rows))
		for i := range idx {
			idx[i] = i
		}
		ve := &VecEval{Env: env}
		for ei := 0; ei < 10; ei++ {
			e := randVecExpr(r, 2)
			var out datum.Vec
			if err := ve.Eval(e, cols, idx, &out); err != nil {
				t.Fatalf("seed %d: VecEval error: %v", seed, err)
			}
			if out.Len() != len(rows) {
				t.Fatalf("seed %d: got %d results for %d rows", seed, out.Len(), len(rows))
			}
			for i, row := range rows {
				want, err := Eval(e, row, env)
				if err != nil {
					t.Fatalf("seed %d: row Eval error: %v", seed, err)
				}
				got := out.D[i]
				if datum.TotalCompare(got, want) != 0 || got.IsNull() != want.IsNull() {
					t.Fatalf("seed %d expr %s row %d: vec=%v row=%v",
						seed, e.SQL(colName), i, got, want)
				}
				if out.IsNull(i) != want.IsNull() {
					t.Fatalf("seed %d row %d: null bitmap out of sync", seed, i)
				}
			}
			sel, err := ve.EvalPred(e, cols, idx, nil)
			if err != nil {
				t.Fatalf("seed %d: EvalPred error: %v", seed, err)
			}
			var want []int
			for i, row := range rows {
				ok, err := EvalBool(e, row, env)
				if err != nil {
					t.Fatalf("seed %d: EvalBool error: %v", seed, err)
				}
				if ok {
					want = append(want, i)
				}
			}
			if len(sel) != len(want) {
				t.Fatalf("seed %d expr %s: EvalPred kept %d rows, EvalBool %d",
					seed, e.SQL(colName), len(sel), len(want))
			}
			for i := range sel {
				if sel[i] != want[i] {
					t.Fatalf("seed %d: selection diverges at %d: %d vs %d", seed, i, sel[i], want[i])
				}
			}
		}
	}
}

// EvalPred must support in-place restriction: output aliasing input.
func TestVecEvalPredInPlace(t *testing.T) {
	env := Env{1: 0, 2: 1, 3: 2}
	r := rand.New(rand.NewSource(7))
	rows := randVecRows(r, 128)
	cols := datum.ColumnVecs(rows, 3)
	e := &And{Kids: []Expr{
		&Cmp{Op: CmpGT, L: &ColRef{ID: 1}, R: &Const{D: datum.NewInt(-3)}},
		&Cmp{Op: CmpLT, L: &ColRef{ID: 2}, R: &Const{D: datum.NewFloat(3)}},
	}}
	ve := &VecEval{Env: env}
	idx := make([]int, len(rows))
	for i := range idx {
		idx[i] = i
	}
	fresh, err := ve.EvalPred(e, cols, idx, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]int(nil), fresh...)
	inplace, err := ve.EvalPred(e, cols, idx, idx)
	if err != nil {
		t.Fatal(err)
	}
	if len(inplace) != len(want) {
		t.Fatalf("in-place kept %d rows, want %d", len(inplace), len(want))
	}
	for i := range want {
		if inplace[i] != want[i] {
			t.Fatalf("in-place selection diverges at %d", i)
		}
	}
}

// Arithmetic over non-numeric operands must error in both engines.
func TestVecEvalArithErrorPropagates(t *testing.T) {
	env := Env{3: 0}
	rows := []datum.Row{{datum.NewString("x")}}
	cols := datum.ColumnVecs(rows, 1)
	e := &Arith{Op: ArithAdd, L: &ColRef{ID: 3}, R: &Const{D: datum.NewInt(1)}}
	ve := &VecEval{Env: env}
	var out datum.Vec
	if err := ve.Eval(e, cols, []int{0}, &out); err == nil {
		t.Fatal("vectorized arithmetic on string must error")
	}
	if _, err := Eval(e, rows[0], env); err == nil {
		t.Fatal("row arithmetic on string must error")
	}
}
