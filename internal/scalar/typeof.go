package scalar

import (
	"fmt"

	"qtrtest/internal/datum"
)

// TypeEnv resolves a ColumnID to its declared type. The second result is
// false when the column is unknown to the environment.
type TypeEnv func(ColumnID) (datum.Type, bool)

// TypeOf type-checks e under env and returns its static type. It is the
// soundness gate for EET rewrites: an expression accepted by TypeOf never
// raises a typed execution error at runtime (given an env that matches the
// data), every comparison it contains is between comparable kinds, and
// every AND/OR/NOT operand is boolean — so NULL-aware identities hold
// exactly.
//
// datum.TypeUnknown is the type of the NULL literal and acts as a wildcard:
// it is comparable to anything, numeric where a number is expected, and
// boolean where a predicate is expected, because a NULL operand yields
// NULL/Unknown in all of those positions rather than an error.
func TypeOf(e Expr, env TypeEnv) (datum.Type, error) {
	switch t := e.(type) {
	case *ColRef:
		ty, ok := env(t.ID)
		if !ok {
			return datum.TypeUnknown, fmt.Errorf("scalar: column c%d not in type environment", t.ID)
		}
		return ty, nil
	case *Const:
		if t.D.IsNull() {
			return datum.TypeUnknown, nil
		}
		return t.D.TypeOf(), nil
	case *Cmp:
		l, err := TypeOf(t.L, env)
		if err != nil {
			return datum.TypeUnknown, err
		}
		r, err := TypeOf(t.R, env)
		if err != nil {
			return datum.TypeUnknown, err
		}
		if !typesComparable(l, r) {
			return datum.TypeUnknown, fmt.Errorf("scalar: cannot compare %v to %v", l, r)
		}
		return datum.TypeBool, nil
	case *Arith:
		l, err := TypeOf(t.L, env)
		if err != nil {
			return datum.TypeUnknown, err
		}
		r, err := TypeOf(t.R, env)
		if err != nil {
			return datum.TypeUnknown, err
		}
		if !typeNumericOrNull(l) || !typeNumericOrNull(r) {
			return datum.TypeUnknown, fmt.Errorf("scalar: arithmetic on non-numeric %v %s %v", l, t.Op, r)
		}
		if l == datum.TypeUnknown || r == datum.TypeUnknown {
			return datum.TypeUnknown, nil
		}
		if l == datum.TypeInt && r == datum.TypeInt {
			return datum.TypeInt, nil
		}
		return datum.TypeFloat, nil
	case *And:
		return typeOfConnective(t.Kids, env)
	case *Or:
		return typeOfConnective(t.Kids, env)
	case *Not:
		k, err := TypeOf(t.Kid, env)
		if err != nil {
			return datum.TypeUnknown, err
		}
		if !typeBoolOrNull(k) {
			return datum.TypeUnknown, fmt.Errorf("scalar: NOT over non-boolean %v", k)
		}
		return datum.TypeBool, nil
	case *IsNull:
		if _, err := TypeOf(t.Kid, env); err != nil {
			return datum.TypeUnknown, err
		}
		return datum.TypeBool, nil
	default:
		return datum.TypeUnknown, fmt.Errorf("scalar: cannot type %T", e)
	}
}

func typeOfConnective(kids []Expr, env TypeEnv) (datum.Type, error) {
	for _, k := range kids {
		ty, err := TypeOf(k, env)
		if err != nil {
			return datum.TypeUnknown, err
		}
		if !typeBoolOrNull(ty) {
			return datum.TypeUnknown, fmt.Errorf("scalar: connective over non-boolean %v", ty)
		}
	}
	return datum.TypeBool, nil
}

// typeNumeric mirrors datum.Compare's numeric family: INT, FLOAT and DATE
// share an order (dates compare through their day number) and all take the
// arithmetic path.
func typeNumeric(t datum.Type) bool {
	return t == datum.TypeInt || t == datum.TypeFloat || t == datum.TypeDate
}

func typeNumericOrNull(t datum.Type) bool { return t == datum.TypeUnknown || typeNumeric(t) }

func typeBoolOrNull(t datum.Type) bool { return t == datum.TypeUnknown || t == datum.TypeBool }

// typesComparable mirrors datum.Compare: the numeric family is mutually
// comparable, everything else only to its own type; NULL to anything.
func typesComparable(l, r datum.Type) bool {
	if l == datum.TypeUnknown || r == datum.TypeUnknown {
		return true
	}
	if typeNumeric(l) && typeNumeric(r) {
		return true
	}
	return l == r
}

// errFreePred reports whether e is statically guaranteed to evaluate
// without error as a predicate under env: it yields only BOOL or NULL, and
// no subexpression can raise a typed or data-dependent execution error.
// This is a syntactic check (no column types needed): column references in
// predicate position are NOT errFree, since the environment cannot prove
// them boolean.
func errFreePred(e Expr, env Env) bool {
	switch t := e.(type) {
	case *Const:
		return t.D.IsNull() || t.D.K == datum.KindBool
	case *Cmp:
		return errFreeValue(t.L, env) && errFreeValue(t.R, env)
	case *IsNull:
		return errFreeValue(t.Kid, env)
	case *And:
		for _, k := range t.Kids {
			if !errFreePred(k, env) {
				return false
			}
		}
		return true
	case *Or:
		for _, k := range t.Kids {
			if !errFreePred(k, env) {
				return false
			}
		}
		return true
	case *Not:
		return errFreePred(t.Kid, env)
	}
	return false
}

// errFreeValue reports whether evaluating e (in any value position) cannot
// error: bound column references and constants are safe, arithmetic is not
// (its operands' kinds are data-dependent), and predicates are safe iff
// errFreePred says so.
func errFreeValue(e Expr, env Env) bool {
	switch t := e.(type) {
	case *ColRef:
		_, ok := env[t.ID]
		return ok
	case *Const:
		return true
	default:
		return errFreePred(e, env)
	}
}
