package scalar

import (
	"fmt"

	"qtrtest/internal/datum"
)

// Env maps ColumnIDs to slots in the row currently being evaluated.
type Env map[ColumnID]int

// Eval evaluates the expression against row under env. Boolean-valued
// expressions yield a BOOL datum or NULL (three-valued logic).
func Eval(e Expr, row datum.Row, env Env) (datum.Datum, error) {
	switch t := e.(type) {
	case *ColRef:
		slot, ok := env[t.ID]
		if !ok {
			return datum.Null, fmt.Errorf("scalar: column c%d not in scope", t.ID)
		}
		return row[slot], nil
	case *Const:
		return t.D, nil
	case *Cmp:
		l, err := Eval(t.L, row, env)
		if err != nil {
			return datum.Null, err
		}
		r, err := Eval(t.R, row, env)
		if err != nil {
			return datum.Null, err
		}
		return triToDatum(evalCmp(t.Op, l, r)), nil
	case *Arith:
		l, err := Eval(t.L, row, env)
		if err != nil {
			return datum.Null, err
		}
		r, err := Eval(t.R, row, env)
		if err != nil {
			return datum.Null, err
		}
		return evalArith(t.Op, l, r)
	case *And:
		// Errors dominate: every kid is evaluated before folding, so a
		// conjunct that errors surfaces the error even when an earlier
		// conjunct is already FALSE. This keeps Error-vs-OK stable under
		// conjunct reordering and matches the vector engine.
		res := datum.True
		for _, k := range t.Kids {
			d, err := Eval(k, row, env)
			if err != nil {
				return datum.Null, err
			}
			tri, err := datumToTri(d)
			if err != nil {
				return datum.Null, err
			}
			res = res.And(tri)
		}
		return triToDatum(res), nil
	case *Or:
		res := datum.False
		for _, k := range t.Kids {
			d, err := Eval(k, row, env)
			if err != nil {
				return datum.Null, err
			}
			tri, err := datumToTri(d)
			if err != nil {
				return datum.Null, err
			}
			res = res.Or(tri)
		}
		return triToDatum(res), nil
	case *Not:
		d, err := Eval(t.Kid, row, env)
		if err != nil {
			return datum.Null, err
		}
		tri, err := datumToTri(d)
		if err != nil {
			return datum.Null, err
		}
		return triToDatum(tri.Not()), nil
	case *IsNull:
		d, err := Eval(t.Kid, row, env)
		if err != nil {
			return datum.Null, err
		}
		return datum.NewBool(d.IsNull()), nil
	default:
		return datum.Null, fmt.Errorf("scalar: cannot evaluate %T", e)
	}
}

// EvalBool evaluates a predicate; NULL counts as false (WHERE semantics).
// A non-NULL, non-boolean result is a typed execution error, matching the
// vector engine's EvalPred.
func EvalBool(e Expr, row datum.Row, env Env) (bool, error) {
	d, err := Eval(e, row, env)
	if err != nil {
		return false, err
	}
	tri, err := datumToTri(d)
	if err != nil {
		return false, err
	}
	return tri == datum.True, nil
}

// datumToTri interprets a datum in predicate position. NULL is Unknown; a
// non-NULL, non-boolean datum is a typed execution error — both engines
// share this rule, so NOT (NOT e) and e always filter (or fail) alike.
func datumToTri(d datum.Datum) (datum.Tri, error) {
	if d.IsNull() {
		return datum.Unknown, nil
	}
	if d.K == datum.KindBool {
		return datum.TriFromBool(d.B), nil
	}
	return datum.Unknown, fmt.Errorf("scalar: %v is not a boolean predicate", d)
}

func triToDatum(t datum.Tri) datum.Datum {
	switch t {
	case datum.True:
		return datum.NewBool(true)
	case datum.False:
		return datum.NewBool(false)
	default:
		return datum.Null
	}
}

// evalCmp compares two datums under three-valued logic. NULL operands yield
// Unknown, and — deliberately — so does a comparison between incomparable
// kinds (e.g. INT vs STRING): cross-kind comparisons are *documented
// Unknown*, not an error, on both engines. An error here would make
// Error-vs-OK depend on which plan path (hash-join probe vs residual
// predicate) evaluates the comparison; Unknown is order- and path-stable.
// TypeOf rejects cross-kind comparisons statically, so EET rewrites are only
// emitted where comparisons are well-kinded and identities like
// x = y OR x <> y OR x IS NULL OR y IS NULL actually hold.
func evalCmp(op CmpOp, l, r datum.Datum) datum.Tri {
	if l.IsNull() || r.IsNull() {
		return datum.Unknown
	}
	c, ok := datum.Compare(l, r)
	if !ok {
		return datum.Unknown
	}
	switch op {
	case CmpEQ:
		return datum.TriFromBool(c == 0)
	case CmpNE:
		return datum.TriFromBool(c != 0)
	case CmpLT:
		return datum.TriFromBool(c < 0)
	case CmpLE:
		return datum.TriFromBool(c <= 0)
	case CmpGT:
		return datum.TriFromBool(c > 0)
	case CmpGE:
		return datum.TriFromBool(c >= 0)
	}
	return datum.Unknown
}

func evalArith(op ArithOp, l, r datum.Datum) (datum.Datum, error) {
	if l.IsNull() || r.IsNull() {
		return datum.Null, nil
	}
	if l.K == datum.KindInt && r.K == datum.KindInt {
		switch op {
		case ArithAdd:
			return datum.NewInt(l.I + r.I), nil
		case ArithSub:
			return datum.NewInt(l.I - r.I), nil
		case ArithMul:
			return datum.NewInt(l.I * r.I), nil
		}
	}
	lf, lok := asFloat(l)
	rf, rok := asFloat(r)
	if !lok || !rok {
		return datum.Null, fmt.Errorf("scalar: arithmetic on non-numeric %v %s %v", l, op, r)
	}
	switch op {
	case ArithAdd:
		return datum.NewFloat(lf + rf), nil
	case ArithSub:
		return datum.NewFloat(lf - rf), nil
	case ArithMul:
		return datum.NewFloat(lf * rf), nil
	}
	return datum.Null, fmt.Errorf("scalar: unknown arithmetic op %d", op)
}

func asFloat(d datum.Datum) (float64, bool) {
	switch d.K {
	case datum.KindInt, datum.KindDate:
		return float64(d.I), true
	case datum.KindFloat:
		return d.F, true
	}
	return 0, false
}
