package scalar

import (
	"fmt"

	"qtrtest/internal/datum"
)

// Env maps ColumnIDs to slots in the row currently being evaluated.
type Env map[ColumnID]int

// Eval evaluates the expression against row under env. Boolean-valued
// expressions yield a BOOL datum or NULL (three-valued logic).
func Eval(e Expr, row datum.Row, env Env) (datum.Datum, error) {
	switch t := e.(type) {
	case *ColRef:
		slot, ok := env[t.ID]
		if !ok {
			return datum.Null, fmt.Errorf("scalar: column c%d not in scope", t.ID)
		}
		return row[slot], nil
	case *Const:
		return t.D, nil
	case *Cmp:
		l, err := Eval(t.L, row, env)
		if err != nil {
			return datum.Null, err
		}
		r, err := Eval(t.R, row, env)
		if err != nil {
			return datum.Null, err
		}
		return triToDatum(evalCmp(t.Op, l, r)), nil
	case *Arith:
		l, err := Eval(t.L, row, env)
		if err != nil {
			return datum.Null, err
		}
		r, err := Eval(t.R, row, env)
		if err != nil {
			return datum.Null, err
		}
		return evalArith(t.Op, l, r)
	case *And:
		res := datum.True
		for _, k := range t.Kids {
			d, err := Eval(k, row, env)
			if err != nil {
				return datum.Null, err
			}
			res = res.And(datumToTri(d))
			if res == datum.False {
				break
			}
		}
		return triToDatum(res), nil
	case *Or:
		res := datum.False
		for _, k := range t.Kids {
			d, err := Eval(k, row, env)
			if err != nil {
				return datum.Null, err
			}
			res = res.Or(datumToTri(d))
			if res == datum.True {
				break
			}
		}
		return triToDatum(res), nil
	case *Not:
		d, err := Eval(t.Kid, row, env)
		if err != nil {
			return datum.Null, err
		}
		return triToDatum(datumToTri(d).Not()), nil
	case *IsNull:
		d, err := Eval(t.Kid, row, env)
		if err != nil {
			return datum.Null, err
		}
		return datum.NewBool(d.IsNull()), nil
	default:
		return datum.Null, fmt.Errorf("scalar: cannot evaluate %T", e)
	}
}

// EvalBool evaluates a predicate; NULL counts as false (WHERE semantics).
func EvalBool(e Expr, row datum.Row, env Env) (bool, error) {
	d, err := Eval(e, row, env)
	if err != nil {
		return false, err
	}
	return !d.IsNull() && d.K == datum.KindBool && d.B, nil
}

func datumToTri(d datum.Datum) datum.Tri {
	if d.IsNull() {
		return datum.Unknown
	}
	if d.K == datum.KindBool {
		return datum.TriFromBool(d.B)
	}
	// Non-boolean treated as true if non-zero; predicates produced by this
	// engine are always boolean, so this is a defensive default.
	return datum.True
}

func triToDatum(t datum.Tri) datum.Datum {
	switch t {
	case datum.True:
		return datum.NewBool(true)
	case datum.False:
		return datum.NewBool(false)
	default:
		return datum.Null
	}
}

func evalCmp(op CmpOp, l, r datum.Datum) datum.Tri {
	if l.IsNull() || r.IsNull() {
		return datum.Unknown
	}
	c, ok := datum.Compare(l, r)
	if !ok {
		return datum.Unknown
	}
	switch op {
	case CmpEQ:
		return datum.TriFromBool(c == 0)
	case CmpNE:
		return datum.TriFromBool(c != 0)
	case CmpLT:
		return datum.TriFromBool(c < 0)
	case CmpLE:
		return datum.TriFromBool(c <= 0)
	case CmpGT:
		return datum.TriFromBool(c > 0)
	case CmpGE:
		return datum.TriFromBool(c >= 0)
	}
	return datum.Unknown
}

func evalArith(op ArithOp, l, r datum.Datum) (datum.Datum, error) {
	if l.IsNull() || r.IsNull() {
		return datum.Null, nil
	}
	if l.K == datum.KindInt && r.K == datum.KindInt {
		switch op {
		case ArithAdd:
			return datum.NewInt(l.I + r.I), nil
		case ArithSub:
			return datum.NewInt(l.I - r.I), nil
		case ArithMul:
			return datum.NewInt(l.I * r.I), nil
		}
	}
	lf, lok := asFloat(l)
	rf, rok := asFloat(r)
	if !lok || !rok {
		return datum.Null, fmt.Errorf("scalar: arithmetic on non-numeric %v %s %v", l, op, r)
	}
	switch op {
	case ArithAdd:
		return datum.NewFloat(lf + rf), nil
	case ArithSub:
		return datum.NewFloat(lf - rf), nil
	case ArithMul:
		return datum.NewFloat(lf * rf), nil
	}
	return datum.Null, fmt.Errorf("scalar: unknown arithmetic op %d", op)
}

func asFloat(d datum.Datum) (float64, bool) {
	switch d.K {
	case datum.KindInt, datum.KindDate:
		return float64(d.I), true
	case datum.KindFloat:
		return d.F, true
	}
	return 0, false
}
