package logical

import (
	"math/rand"
	"testing"

	"qtrtest/internal/datum"
	"qtrtest/internal/fnv64"
	"qtrtest/internal/scalar"
)

// payloadGen builds random operator payloads (children are irrelevant to
// fingerprints) from a seeded RNG, covering every operator and scalar form.
type payloadGen struct{ rng *rand.Rand }

func (g *payloadGen) col() scalar.ColumnID { return scalar.ColumnID(1 + g.rng.Intn(8)) }

func (g *payloadGen) datum() datum.Datum {
	switch g.rng.Intn(5) {
	case 0:
		return datum.NewInt(int64(g.rng.Intn(100) - 50))
	case 1:
		return datum.NewFloat(float64(g.rng.Intn(100)) / 4)
	case 2:
		return datum.NewString(string(rune('a' + g.rng.Intn(4))))
	case 3:
		return datum.NewBool(g.rng.Intn(2) == 0)
	default:
		return datum.Null
	}
}

func (g *payloadGen) scalarExpr(depth int) scalar.Expr {
	if depth <= 0 {
		if g.rng.Intn(2) == 0 {
			return &scalar.ColRef{ID: g.col()}
		}
		return &scalar.Const{D: g.datum()}
	}
	switch g.rng.Intn(6) {
	case 0:
		return &scalar.Cmp{Op: scalar.CmpOp(g.rng.Intn(6)), L: g.scalarExpr(depth - 1), R: g.scalarExpr(depth - 1)}
	case 1:
		return &scalar.Arith{Op: scalar.ArithOp(g.rng.Intn(3)), L: g.scalarExpr(depth - 1), R: g.scalarExpr(depth - 1)}
	case 2:
		kids := make([]scalar.Expr, g.rng.Intn(3))
		for i := range kids {
			kids[i] = g.scalarExpr(depth - 1)
		}
		return &scalar.And{Kids: kids}
	case 3:
		kids := make([]scalar.Expr, 1+g.rng.Intn(2))
		for i := range kids {
			kids[i] = g.scalarExpr(depth - 1)
		}
		return &scalar.Or{Kids: kids}
	case 4:
		return &scalar.Not{Kid: g.scalarExpr(depth - 1)}
	default:
		return &scalar.IsNull{Kid: g.scalarExpr(depth - 1)}
	}
}

func (g *payloadGen) cols(n int) []scalar.ColumnID {
	out := make([]scalar.ColumnID, n)
	for i := range out {
		out[i] = g.col()
	}
	return out
}

func (g *payloadGen) node() *Expr {
	ops := []Op{OpGet, OpSelect, OpProject, OpJoin, OpLeftJoin, OpSemiJoin,
		OpAntiJoin, OpGroupBy, OpUnionAll, OpLimit, OpSort}
	e := &Expr{Op: ops[g.rng.Intn(len(ops))]}
	switch e.Op {
	case OpGet:
		e.Table = []string{"t", "u", "v"}[g.rng.Intn(3)]
		e.Cols = g.cols(1 + g.rng.Intn(3))
	case OpSelect:
		e.Filter = g.scalarExpr(2)
	case OpJoin, OpLeftJoin, OpSemiJoin, OpAntiJoin:
		e.On = g.scalarExpr(2)
	case OpProject:
		e.Projs = make([]ProjItem, 1+g.rng.Intn(3))
		for i := range e.Projs {
			e.Projs[i] = ProjItem{Out: g.col(), E: g.scalarExpr(1)}
		}
	case OpGroupBy:
		e.GroupCols = g.cols(g.rng.Intn(3))
		e.Aggs = make([]scalar.Agg, 1+g.rng.Intn(2))
		for i := range e.Aggs {
			op := scalar.AggOp(g.rng.Intn(3))
			a := scalar.Agg{Op: op, Out: g.col()}
			if op != scalar.AggCountStar {
				a.Arg = &scalar.ColRef{ID: g.col()}
			}
			e.Aggs[i] = a
		}
	case OpUnionAll:
		n := 1 + g.rng.Intn(3)
		e.OutCols = g.cols(n)
		e.InputCols = [][]scalar.ColumnID{g.cols(n), g.cols(n)}
	case OpLimit:
		e.N = int64(g.rng.Intn(50))
	case OpSort:
		e.Keys = make([]SortKey, 1+g.rng.Intn(3))
		for i := range e.Keys {
			e.Keys[i] = SortKey{Col: g.col(), Desc: g.rng.Intn(2) == 0}
		}
	}
	return e
}

func fingerprintOf(e *Expr) uint64 {
	h := fnv64.New()
	e.PayloadFingerprint(&h)
	return h.Sum()
}

// TestFingerprintProperties checks, over a deterministic random corpus, the
// three properties the memo's interning table rests on:
//
//  1. structurally equal payloads (node vs. deep clone) fingerprint equal
//     and compare PayloadEqual;
//  2. fingerprints and PayloadEqual agree with the legacy PayloadHash
//     string the intern table used before the overhaul: payloads with equal
//     strings are PayloadEqual with equal fingerprints;
//  3. payloads with distinct strings are never PayloadEqual — and, for this
//     corpus, fingerprint distinctly (the seed is fixed, so this is a
//     regression check, not a probabilistic claim).
func TestFingerprintProperties(t *testing.T) {
	g := &payloadGen{rng: rand.New(rand.NewSource(7))}
	const n = 400
	nodes := make([]*Expr, n)
	for i := range nodes {
		nodes[i] = g.node()
	}

	for i, e := range nodes {
		c := e.Clone()
		if !e.PayloadEqual(c) {
			t.Fatalf("node %d: clone not PayloadEqual:\n%s", i, e)
		}
		if fingerprintOf(e) != fingerprintOf(c) {
			t.Fatalf("node %d: clone fingerprint differs:\n%s", i, e)
		}
	}

	byHash := make(map[string][]*Expr)
	for _, e := range nodes {
		byHash[e.PayloadHash()] = append(byHash[e.PayloadHash()], e)
	}
	byFP := make(map[uint64]string)
	for hash, group := range byHash {
		for _, e := range group {
			if !group[0].PayloadEqual(e) || fingerprintOf(group[0]) != fingerprintOf(e) {
				t.Fatalf("payloads with equal hash %q disagree on PayloadEqual/fingerprint", hash)
			}
		}
		fp := fingerprintOf(group[0])
		if prev, dup := byFP[fp]; dup {
			t.Fatalf("fingerprint collision between distinct payloads %q and %q", prev, hash)
		}
		byFP[fp] = hash
	}
	reps := make([]*Expr, 0, len(byHash))
	for _, group := range byHash {
		reps = append(reps, group[0])
	}
	for i := range reps {
		for j := i + 1; j < len(reps); j++ {
			if reps[i].PayloadEqual(reps[j]) {
				t.Fatalf("distinct-hash payloads compare PayloadEqual:\n%s\nvs\n%s", reps[i], reps[j])
			}
		}
	}
	if len(byHash) < n/4 {
		t.Fatalf("corpus degenerate: only %d distinct payloads of %d", len(byHash), n)
	}
}

// TestFingerprintTreeEquality lifts property 1 to whole trees the way the
// memo consumes fingerprints: equal trees interned bottom-up must meet at
// every level.
func TestFingerprintTreeEquality(t *testing.T) {
	g := &payloadGen{rng: rand.New(rand.NewSource(11))}
	leaf := func() *Expr {
		return &Expr{Op: OpGet, Table: "t", Cols: []scalar.ColumnID{1, 2}}
	}
	for i := 0; i < 50; i++ {
		filter := g.scalarExpr(2)
		tree := &Expr{Op: OpSelect, Filter: filter, Children: []*Expr{
			{Op: OpJoin, On: g.scalarExpr(1), Children: []*Expr{leaf(), leaf()}},
		}}
		c := tree.Clone()
		var walk func(a, b *Expr)
		walk = func(a, b *Expr) {
			if fingerprintOf(a) != fingerprintOf(b) || !a.PayloadEqual(b) {
				t.Fatalf("iteration %d: subtree payloads diverge:\n%s\nvs\n%s", i, a, b)
			}
			for k := range a.Children {
				walk(a.Children[k], b.Children[k])
			}
		}
		walk(tree, c)
	}
}
