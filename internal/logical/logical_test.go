package logical

import (
	"testing"

	"qtrtest/internal/catalog"
	"qtrtest/internal/scalar"
)

func testCatalog() *catalog.Catalog {
	return catalog.LoadTPCH(catalog.DefaultTPCHConfig())
}

func mustTable(t *testing.T, md *Metadata, name string) *Expr {
	t.Helper()
	e, err := md.AddTable(name)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestMetadataAddTable(t *testing.T) {
	md := NewMetadata(testCatalog())
	a := mustTable(t, md, "nation")
	b := mustTable(t, md, "nation")
	if a.Cols[0] == b.Cols[0] {
		t.Error("two scans of the same table must get distinct column ids")
	}
	cm := md.Column(a.Cols[1])
	if cm.Table != "nation" || cm.TableCol != "n_name" {
		t.Errorf("column meta wrong: %+v", cm)
	}
	if md.NumColumns() != 6 {
		t.Errorf("NumColumns = %d, want 6", md.NumColumns())
	}
	if _, err := md.AddTable("nope"); err == nil {
		t.Error("AddTable of a missing table must error")
	}
}

func TestMetadataBaseColumn(t *testing.T) {
	md := NewMetadata(testCatalog())
	get := mustTable(t, md, "region")
	tbl, idx, ok := md.BaseColumn(get.Cols[1])
	if !ok || tbl.Name != "region" || idx != 1 {
		t.Errorf("BaseColumn = %v %d %v", tbl, idx, ok)
	}
	computed := md.AddColumn(ColumnMeta{Name: "x"})
	if _, _, ok := md.BaseColumn(computed); ok {
		t.Error("computed column has no base")
	}
}

func TestOutputColsPerOperator(t *testing.T) {
	md := NewMetadata(testCatalog())
	r := mustTable(t, md, "region")
	n := mustTable(t, md, "nation")

	join := &Expr{Op: OpJoin, Children: []*Expr{n, r},
		On: &scalar.Cmp{Op: scalar.CmpEQ, L: &scalar.ColRef{ID: n.Cols[2]}, R: &scalar.ColRef{ID: r.Cols[0]}}}
	if got := len(join.OutputCols()); got != 5 {
		t.Errorf("join outputs %d cols, want 5", got)
	}
	semi := &Expr{Op: OpSemiJoin, Children: []*Expr{n, r}, On: join.On}
	if got := len(semi.OutputCols()); got != 3 {
		t.Errorf("semi join outputs %d cols, want 3 (left only)", got)
	}
	sel := &Expr{Op: OpSelect, Children: []*Expr{join}, Filter: scalar.TrueExpr()}
	if len(sel.OutputCols()) != 5 {
		t.Error("select must pass through")
	}
	agg := md.AddColumn(ColumnMeta{Name: "agg"})
	gb := &Expr{Op: OpGroupBy, Children: []*Expr{join},
		GroupCols: []scalar.ColumnID{n.Cols[2]},
		Aggs:      []scalar.Agg{{Op: scalar.AggCountStar, Out: agg}}}
	outs := gb.OutputCols()
	if len(outs) != 2 || outs[0] != n.Cols[2] || outs[1] != agg {
		t.Errorf("groupby outputs %v", outs)
	}
	proj := &Expr{Op: OpProject, Children: []*Expr{gb},
		Projs: []ProjItem{{Out: agg, E: &scalar.ColRef{ID: agg}}}}
	if len(proj.OutputCols()) != 1 {
		t.Error("project output wrong")
	}
}

func TestCloneIsDeep(t *testing.T) {
	md := NewMetadata(testCatalog())
	r := mustTable(t, md, "region")
	sel := &Expr{Op: OpSelect, Children: []*Expr{r}, Filter: scalar.TrueExpr()}
	cp := sel.Clone()
	cp.Children[0].Table = "nation"
	cp.Children[0].Cols[0] = 999
	if sel.Children[0].Table != "region" || sel.Children[0].Cols[0] == 999 {
		t.Error("Clone shares child state")
	}
}

func TestHashDistinguishesTrees(t *testing.T) {
	md := NewMetadata(testCatalog())
	r := mustTable(t, md, "region")
	n := mustTable(t, md, "nation")
	on := &scalar.Cmp{Op: scalar.CmpEQ, L: &scalar.ColRef{ID: n.Cols[2]}, R: &scalar.ColRef{ID: r.Cols[0]}}
	j1 := &Expr{Op: OpJoin, Children: []*Expr{n, r}, On: on}
	j2 := &Expr{Op: OpJoin, Children: []*Expr{r, n}, On: on}
	if j1.Hash() == j2.Hash() {
		t.Error("commuted joins must hash differently (different trees)")
	}
	if j1.Hash() != j1.Clone().Hash() {
		t.Error("clone must hash identically")
	}
}

func TestCountOpsAndWalk(t *testing.T) {
	md := NewMetadata(testCatalog())
	r := mustTable(t, md, "region")
	n := mustTable(t, md, "nation")
	join := &Expr{Op: OpJoin, Children: []*Expr{n, r}, On: scalar.TrueExpr()}
	sel := &Expr{Op: OpSelect, Children: []*Expr{join}, Filter: scalar.TrueExpr()}
	if sel.CountOps() != 4 {
		t.Errorf("CountOps = %d, want 4", sel.CountOps())
	}
	var ops []Op
	sel.Walk(func(e *Expr) { ops = append(ops, e.Op) })
	if len(ops) != 4 || ops[0] != OpSelect || ops[1] != OpJoin {
		t.Errorf("Walk order: %v", ops)
	}
	if !sel.ContainsOp(OpGet) || sel.ContainsOp(OpGroupBy) {
		t.Error("ContainsOp wrong")
	}
}

func TestRejectsNullsOn(t *testing.T) {
	cols := scalar.NewColSet(1, 2)
	cmp := &scalar.Cmp{Op: scalar.CmpGT, L: &scalar.ColRef{ID: 1}, R: &scalar.Const{}}
	other := &scalar.Cmp{Op: scalar.CmpGT, L: &scalar.ColRef{ID: 9}, R: &scalar.Const{}}
	isNull := &scalar.IsNull{Kid: &scalar.ColRef{ID: 1}}

	if !RejectsNullsOn(cmp, cols) {
		t.Error("comparison on col 1 rejects NULLs")
	}
	if RejectsNullsOn(other, cols) {
		t.Error("comparison on col 9 says nothing about cols 1,2")
	}
	if RejectsNullsOn(isNull, cols) {
		t.Error("IS NULL does not reject NULLs")
	}
	// AND: any null-rejecting conjunct suffices.
	if !RejectsNullsOn(&scalar.And{Kids: []scalar.Expr{isNull, cmp}}, cols) {
		t.Error("AND with a rejecting conjunct rejects")
	}
	// OR: every disjunct must reject.
	if RejectsNullsOn(&scalar.Or{Kids: []scalar.Expr{cmp, isNull}}, cols) {
		t.Error("OR with IS NULL disjunct does not reject")
	}
	if !RejectsNullsOn(&scalar.Or{Kids: []scalar.Expr{cmp, cmp}}, cols) {
		t.Error("OR of rejecting disjuncts rejects")
	}
}

func TestEquiJoinCols(t *testing.T) {
	left := scalar.NewColSet(1, 2)
	right := scalar.NewColSet(3, 4)
	eq1 := &scalar.Cmp{Op: scalar.CmpEQ, L: &scalar.ColRef{ID: 1}, R: &scalar.ColRef{ID: 3}}
	eq2 := &scalar.Cmp{Op: scalar.CmpEQ, L: &scalar.ColRef{ID: 4}, R: &scalar.ColRef{ID: 2}} // swapped sides
	lt := &scalar.Cmp{Op: scalar.CmpLT, L: &scalar.ColRef{ID: 1}, R: &scalar.ColRef{ID: 4}}
	sameSide := &scalar.Cmp{Op: scalar.CmpEQ, L: &scalar.ColRef{ID: 1}, R: &scalar.ColRef{ID: 2}}
	on := &scalar.And{Kids: []scalar.Expr{eq1, eq2, lt, sameSide}}

	pairs, rest := EquiJoinCols(on, left, right)
	if len(pairs) != 2 {
		t.Fatalf("pairs = %v", pairs)
	}
	if pairs[0] != [2]scalar.ColumnID{1, 3} || pairs[1] != [2]scalar.ColumnID{2, 4} {
		t.Errorf("pairs not normalized left-first: %v", pairs)
	}
	if len(rest) != 2 {
		t.Errorf("remainder = %d, want 2", len(rest))
	}
}

func TestAggsReferenceOnly(t *testing.T) {
	allowed := scalar.NewColSet(1)
	ok := []scalar.Agg{{Op: scalar.AggSum, Arg: &scalar.ColRef{ID: 1}}, {Op: scalar.AggCountStar}}
	bad := []scalar.Agg{{Op: scalar.AggSum, Arg: &scalar.ColRef{ID: 2}}}
	if !AggsReferenceOnly(ok, allowed) || AggsReferenceOnly(bad, allowed) {
		t.Error("AggsReferenceOnly wrong")
	}
}

func TestOpProperties(t *testing.T) {
	if OpGet.Arity() != 0 || OpJoin.Arity() != 2 || OpSelect.Arity() != 1 {
		t.Error("Arity wrong")
	}
	for _, op := range []Op{OpJoin, OpLeftJoin, OpSemiJoin, OpAntiJoin} {
		if !op.IsJoin() {
			t.Errorf("%s should be a join", op)
		}
	}
	if OpGroupBy.IsJoin() {
		t.Error("GroupBy is not a join")
	}
	if OpUnionAll.String() != "UnionAll" {
		t.Error("String wrong")
	}
}
