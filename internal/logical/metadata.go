package logical

import (
	"fmt"

	"qtrtest/internal/catalog"
	"qtrtest/internal/datum"
	"qtrtest/internal/scalar"
)

// ColumnMeta describes one ColumnID: where it came from and its type.
type ColumnMeta struct {
	// Name is a display name; synthesized columns get "c<ID>"-style names.
	Name string
	Type datum.Type
	// Table and TableCol identify the base column for columns produced by
	// Get; both are empty for computed columns.
	Table    string
	TableCol string
}

// Metadata allocates ColumnIDs for one query and records what each refers to.
// Every logical tree is interpreted relative to exactly one Metadata.
type Metadata struct {
	cols   []ColumnMeta // index = ColumnID-1
	cat    *catalog.Catalog
	tables int
}

// NewMetadata returns metadata bound to the given catalog.
func NewMetadata(cat *catalog.Catalog) *Metadata {
	return &Metadata{cat: cat}
}

// Catalog returns the catalog the metadata resolves tables against.
func (m *Metadata) Catalog() *catalog.Catalog { return m.cat }

// Clone returns an independent copy of the metadata: the clone starts with
// the same columns but further allocations on either side are invisible to
// the other. The optimizer clones the metadata per optimization so that
// concurrent optimizations of the same query neither race on the column
// table nor observe each other's synthesized columns (which would make
// ColumnID allocation — and therefore plans — scheduling-dependent).
func (m *Metadata) Clone() *Metadata {
	cols := make([]ColumnMeta, len(m.cols))
	copy(cols, m.cols)
	return &Metadata{cols: cols, cat: m.cat, tables: m.tables}
}

// CowClone returns a copy-on-write clone in O(1): the clone shares the
// base's column table for reads, and its capacity is clipped so the first
// AddColumn reallocates onto a private array instead of writing into shared
// memory. The optimizer uses this instead of Clone on its hot path — most
// Optimize calls (every RuleSet probe and Plan(q,¬R) edge costing) never
// synthesize a column, so they never pay for a copy, while the ones that do
// stay exactly as race-free and schedule-independent as before: concurrent
// clones of one base only ever read the shared prefix.
func (m *Metadata) CowClone() *Metadata {
	return &Metadata{cols: m.cols[:len(m.cols):len(m.cols)], cat: m.cat, tables: m.tables}
}

// AddColumn allocates a fresh ColumnID.
func (m *Metadata) AddColumn(meta ColumnMeta) scalar.ColumnID {
	m.cols = append(m.cols, meta)
	return scalar.ColumnID(len(m.cols))
}

// Column returns the metadata for id; it panics on an unknown id, which
// always indicates a bug in tree construction.
func (m *Metadata) Column(id scalar.ColumnID) ColumnMeta {
	if id < 1 || int(id) > len(m.cols) {
		panic(fmt.Sprintf("logical: unknown column id %d", id))
	}
	return m.cols[id-1]
}

// NumColumns returns how many columns have been allocated.
func (m *Metadata) NumColumns() int { return len(m.cols) }

// AddTable allocates fresh ColumnIDs for every column of the named table and
// returns a Get expression over them. Each call returns distinct ids, so the
// same table can be scanned several times in one query.
func (m *Metadata) AddTable(name string) (*Expr, error) {
	t, err := m.cat.Table(name)
	if err != nil {
		return nil, err
	}
	m.tables++
	ids := make([]scalar.ColumnID, len(t.Columns))
	for i, col := range t.Columns {
		ids[i] = m.AddColumn(ColumnMeta{
			Name:     col.Name,
			Type:     col.Type,
			Table:    name,
			TableCol: col.Name,
		})
	}
	return &Expr{Op: OpGet, Table: name, Cols: ids}, nil
}

// ColumnName returns a SQL-safe unique name for the column ("c<ID>"); the SQL
// generator and binder both use this scheme, which is what makes generated
// SQL round-trippable.
func (m *Metadata) ColumnName(id scalar.ColumnID) string {
	return fmt.Sprintf("c%d", id)
}

// BaseColumn returns the catalog column behind id, or ok=false for computed
// columns.
func (m *Metadata) BaseColumn(id scalar.ColumnID) (table *catalog.Table, colIdx int, ok bool) {
	cm := m.Column(id)
	if cm.Table == "" {
		return nil, 0, false
	}
	t, err := m.cat.Table(cm.Table)
	if err != nil {
		return nil, 0, false
	}
	idx := t.ColumnIndex(cm.TableCol)
	if idx < 0 {
		return nil, 0, false
	}
	return t, idx, true
}
