// Package logical defines logical query trees: trees of relational operators
// with instantiated arguments (§2.2 of the paper). These trees are the input
// to the optimizer, the output of query generation, and the thing rule
// patterns match against.
package logical

import (
	"fmt"
	"strconv"
	"strings"

	"qtrtest/internal/fnv64"
	"qtrtest/internal/scalar"
)

// Op enumerates logical relational operators.
type Op int

// Logical operators. OpAny never appears in a real tree; it is the generic
// placeholder used by rule patterns (the circles in the paper's Figure 3).
const (
	OpAny Op = iota
	OpGet
	OpSelect
	OpProject
	OpJoin
	OpLeftJoin
	OpSemiJoin
	OpAntiJoin
	OpGroupBy
	OpUnionAll
	OpLimit
	OpSort
)

var opNames = [...]string{
	OpAny:      "Any",
	OpGet:      "Get",
	OpSelect:   "Select",
	OpProject:  "Project",
	OpJoin:     "Join",
	OpLeftJoin: "LeftJoin",
	OpSemiJoin: "SemiJoin",
	OpAntiJoin: "AntiJoin",
	OpGroupBy:  "GroupBy",
	OpUnionAll: "UnionAll",
	OpLimit:    "Limit",
	OpSort:     "Sort",
}

// String returns the operator name.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// Arity returns the number of children the operator takes.
func (o Op) Arity() int {
	switch o {
	case OpGet:
		return 0
	case OpJoin, OpLeftJoin, OpSemiJoin, OpAntiJoin, OpUnionAll:
		return 2
	default:
		return 1
	}
}

// IsJoin reports whether the operator is one of the join variants.
func (o Op) IsJoin() bool {
	switch o {
	case OpJoin, OpLeftJoin, OpSemiJoin, OpAntiJoin:
		return true
	}
	return false
}

// ProjItem computes expression E into output column Out.
type ProjItem struct {
	Out scalar.ColumnID
	E   scalar.Expr
}

// SortKey orders by Col, descending if Desc.
type SortKey struct {
	Col  scalar.ColumnID
	Desc bool
}

// Expr is a logical operator with instantiated arguments. A single struct
// with per-operator payload fields keeps rule code compact; only the fields
// relevant to Op are meaningful.
type Expr struct {
	Op       Op
	Children []*Expr

	// OpGet
	Table string
	Cols  []scalar.ColumnID // one per table column, in table order

	// OpSelect
	Filter scalar.Expr

	// join variants
	On scalar.Expr

	// OpProject
	Projs []ProjItem

	// OpGroupBy
	GroupCols []scalar.ColumnID
	Aggs      []scalar.Agg

	// OpUnionAll: OutCols[i] is produced from InputCols[child][i].
	OutCols   []scalar.ColumnID
	InputCols [][]scalar.ColumnID

	// OpLimit
	N int64

	// OpSort
	Keys []SortKey
}

// OutputCols returns the columns the operator produces, in order.
func (e *Expr) OutputCols() []scalar.ColumnID {
	switch e.Op {
	case OpGet:
		return e.Cols
	case OpSelect, OpLimit, OpSort:
		return e.Children[0].OutputCols()
	case OpProject:
		out := make([]scalar.ColumnID, len(e.Projs))
		for i, p := range e.Projs {
			out[i] = p.Out
		}
		return out
	case OpJoin, OpLeftJoin:
		l := e.Children[0].OutputCols()
		r := e.Children[1].OutputCols()
		out := make([]scalar.ColumnID, 0, len(l)+len(r))
		out = append(out, l...)
		out = append(out, r...)
		return out
	case OpSemiJoin, OpAntiJoin:
		return e.Children[0].OutputCols()
	case OpGroupBy:
		out := make([]scalar.ColumnID, 0, len(e.GroupCols)+len(e.Aggs))
		out = append(out, e.GroupCols...)
		for _, a := range e.Aggs {
			out = append(out, a.Out)
		}
		return out
	case OpUnionAll:
		return e.OutCols
	}
	return nil
}

// OutputColSet returns OutputCols as a set.
func (e *Expr) OutputColSet() scalar.ColSet {
	return scalar.NewColSet(e.OutputCols()...)
}

// CountOps returns the number of operators in the tree; the paper uses this
// to prefer small, debuggable generated queries (§2.3).
func (e *Expr) CountOps() int {
	n := 1
	for _, c := range e.Children {
		n += c.CountOps()
	}
	return n
}

// Clone returns a deep copy of the operator tree. Scalar expressions are
// shared: they are immutable by convention in this codebase.
func (e *Expr) Clone() *Expr {
	out := *e
	out.Children = make([]*Expr, len(e.Children))
	for i, c := range e.Children {
		out.Children[i] = c.Clone()
	}
	out.Cols = append([]scalar.ColumnID(nil), e.Cols...)
	out.Projs = append([]ProjItem(nil), e.Projs...)
	out.GroupCols = append([]scalar.ColumnID(nil), e.GroupCols...)
	out.Aggs = append([]scalar.Agg(nil), e.Aggs...)
	out.OutCols = append([]scalar.ColumnID(nil), e.OutCols...)
	if e.InputCols != nil {
		out.InputCols = make([][]scalar.ColumnID, len(e.InputCols))
		for i, cs := range e.InputCols {
			out.InputCols[i] = append([]scalar.ColumnID(nil), cs...)
		}
	}
	out.Keys = append([]SortKey(nil), e.Keys...)
	return &out
}

// PayloadHash fingerprints the operator's own arguments (not its children);
// the memo combines it with child group ids to deduplicate expressions.
func (e *Expr) PayloadHash() string {
	var sb strings.Builder
	e.PayloadHashInto(&sb)
	return sb.String()
}

func writeInt(sb *strings.Builder, v int64) {
	var buf [20]byte
	sb.Write(strconv.AppendInt(buf[:0], v, 10))
}

func writeCols(sb *strings.Builder, cols []scalar.ColumnID) {
	for _, c := range cols {
		writeInt(sb, int64(c))
		sb.WriteByte(',')
	}
}

// PayloadHashInto appends the payload fingerprint to sb, avoiding
// allocations on the memo's interning hot path.
func (e *Expr) PayloadHashInto(sb *strings.Builder) {
	writeInt(sb, int64(e.Op))
	sb.WriteByte('|')
	switch e.Op {
	case OpGet:
		sb.WriteString(e.Table)
		writeCols(sb, e.Cols)
	case OpSelect:
		scalar.HashInto(e.Filter, sb)
	case OpJoin, OpLeftJoin, OpSemiJoin, OpAntiJoin:
		scalar.HashInto(e.On, sb)
	case OpProject:
		for _, p := range e.Projs {
			writeInt(sb, int64(p.Out))
			sb.WriteByte('=')
			scalar.HashInto(p.E, sb)
			sb.WriteByte(';')
		}
	case OpGroupBy:
		writeCols(sb, e.GroupCols)
		sb.WriteByte('|')
		for _, a := range e.Aggs {
			sb.WriteString(a.Hash())
			sb.WriteByte(';')
		}
	case OpUnionAll:
		writeCols(sb, e.OutCols)
		sb.WriteByte('|')
		for _, in := range e.InputCols {
			writeCols(sb, in)
			sb.WriteByte('/')
		}
	case OpLimit:
		writeInt(sb, e.N)
	case OpSort:
		for _, k := range e.Keys {
			writeInt(sb, int64(k.Col))
			if k.Desc {
				sb.WriteByte('-')
			}
			sb.WriteByte(',')
		}
	}
}

// PayloadFingerprint mixes the operator's own arguments (not its children)
// into h: the numeric analogue of PayloadHashInto, used by the memo's
// fingerprint interning table. PayloadEqual(a, b) implies identical
// fingerprints; the converse can fail on hash collisions, which the memo
// resolves with a PayloadEqual check per bucket entry.
func (e *Expr) PayloadFingerprint(h *fnv64.Hash) {
	h.Int(int64(e.Op))
	switch e.Op {
	case OpGet:
		h.String(e.Table)
		fingerprintCols(h, e.Cols)
	case OpSelect:
		scalar.FingerprintInto(e.Filter, h)
	case OpJoin, OpLeftJoin, OpSemiJoin, OpAntiJoin:
		scalar.FingerprintInto(e.On, h)
	case OpProject:
		h.Int(int64(len(e.Projs)))
		for _, p := range e.Projs {
			h.Int(int64(p.Out))
			scalar.FingerprintInto(p.E, h)
		}
	case OpGroupBy:
		fingerprintCols(h, e.GroupCols)
		h.Int(int64(len(e.Aggs)))
		for _, a := range e.Aggs {
			a.FingerprintInto(h)
		}
	case OpUnionAll:
		fingerprintCols(h, e.OutCols)
		h.Int(int64(len(e.InputCols)))
		for _, in := range e.InputCols {
			fingerprintCols(h, in)
		}
	case OpLimit:
		h.Int(e.N)
	case OpSort:
		h.Int(int64(len(e.Keys)))
		for _, k := range e.Keys {
			h.Int(int64(k.Col))
			h.Bool(k.Desc)
		}
	}
}

func fingerprintCols(h *fnv64.Hash, cols []scalar.ColumnID) {
	h.Int(int64(len(cols)))
	for _, c := range cols {
		h.Int(int64(c))
	}
}

// PayloadEqual reports whether two nodes carry the same operator and
// payload arguments, ignoring children — the collision-proof equality the
// memo's interning table rests on.
func (e *Expr) PayloadEqual(o *Expr) bool {
	if e.Op != o.Op {
		return false
	}
	switch e.Op {
	case OpGet:
		return e.Table == o.Table && colsEqual(e.Cols, o.Cols)
	case OpSelect:
		return scalar.Equal(e.Filter, o.Filter)
	case OpJoin, OpLeftJoin, OpSemiJoin, OpAntiJoin:
		return scalar.Equal(e.On, o.On)
	case OpProject:
		if len(e.Projs) != len(o.Projs) {
			return false
		}
		for i, p := range e.Projs {
			if p.Out != o.Projs[i].Out || !scalar.Equal(p.E, o.Projs[i].E) {
				return false
			}
		}
		return true
	case OpGroupBy:
		if !colsEqual(e.GroupCols, o.GroupCols) || len(e.Aggs) != len(o.Aggs) {
			return false
		}
		for i, a := range e.Aggs {
			if !a.Equal(o.Aggs[i]) {
				return false
			}
		}
		return true
	case OpUnionAll:
		if !colsEqual(e.OutCols, o.OutCols) || len(e.InputCols) != len(o.InputCols) {
			return false
		}
		for i, in := range e.InputCols {
			if !colsEqual(in, o.InputCols[i]) {
				return false
			}
		}
		return true
	case OpLimit:
		return e.N == o.N
	case OpSort:
		if len(e.Keys) != len(o.Keys) {
			return false
		}
		for i, k := range e.Keys {
			if k != o.Keys[i] {
				return false
			}
		}
		return true
	}
	return true
}

func colsEqual(a, b []scalar.ColumnID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Hash fingerprints the whole tree.
func (e *Expr) Hash() string {
	var sb strings.Builder
	var walk func(x *Expr)
	walk = func(x *Expr) {
		x.PayloadHashInto(&sb)
		sb.WriteString("(")
		for _, c := range x.Children {
			walk(c)
		}
		sb.WriteString(")")
	}
	walk(e)
	return sb.String()
}

// String renders an indented operator tree for debugging.
func (e *Expr) String() string {
	var sb strings.Builder
	var walk func(x *Expr, depth int)
	walk = func(x *Expr, depth int) {
		sb.WriteString(strings.Repeat("  ", depth))
		sb.WriteString(x.Op.String())
		switch x.Op {
		case OpGet:
			fmt.Fprintf(&sb, "(%s)", x.Table)
		case OpSelect:
			fmt.Fprintf(&sb, "[%s]", x.Filter.Hash())
		case OpJoin, OpLeftJoin, OpSemiJoin, OpAntiJoin:
			fmt.Fprintf(&sb, "[%s]", x.On.Hash())
		case OpGroupBy:
			fmt.Fprintf(&sb, "[by %v]", x.GroupCols)
		case OpLimit:
			fmt.Fprintf(&sb, "[%d]", x.N)
		}
		sb.WriteString("\n")
		for _, c := range x.Children {
			walk(c, depth+1)
		}
	}
	walk(e, 0)
	return sb.String()
}

// Walk visits every node of the tree in pre-order.
func (e *Expr) Walk(fn func(*Expr)) {
	fn(e)
	for _, c := range e.Children {
		c.Walk(fn)
	}
}

// ContainsOp reports whether any node in the tree has the given operator.
func (e *Expr) ContainsOp(op Op) bool {
	found := false
	e.Walk(func(x *Expr) {
		if x.Op == op {
			found = true
		}
	})
	return found
}
