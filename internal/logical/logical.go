// Package logical defines logical query trees: trees of relational operators
// with instantiated arguments (§2.2 of the paper). These trees are the input
// to the optimizer, the output of query generation, and the thing rule
// patterns match against.
package logical

import (
	"fmt"
	"strconv"
	"strings"

	"qtrtest/internal/scalar"
)

// Op enumerates logical relational operators.
type Op int

// Logical operators. OpAny never appears in a real tree; it is the generic
// placeholder used by rule patterns (the circles in the paper's Figure 3).
const (
	OpAny Op = iota
	OpGet
	OpSelect
	OpProject
	OpJoin
	OpLeftJoin
	OpSemiJoin
	OpAntiJoin
	OpGroupBy
	OpUnionAll
	OpLimit
	OpSort
)

var opNames = [...]string{
	OpAny:      "Any",
	OpGet:      "Get",
	OpSelect:   "Select",
	OpProject:  "Project",
	OpJoin:     "Join",
	OpLeftJoin: "LeftJoin",
	OpSemiJoin: "SemiJoin",
	OpAntiJoin: "AntiJoin",
	OpGroupBy:  "GroupBy",
	OpUnionAll: "UnionAll",
	OpLimit:    "Limit",
	OpSort:     "Sort",
}

// String returns the operator name.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// Arity returns the number of children the operator takes.
func (o Op) Arity() int {
	switch o {
	case OpGet:
		return 0
	case OpJoin, OpLeftJoin, OpSemiJoin, OpAntiJoin, OpUnionAll:
		return 2
	default:
		return 1
	}
}

// IsJoin reports whether the operator is one of the join variants.
func (o Op) IsJoin() bool {
	switch o {
	case OpJoin, OpLeftJoin, OpSemiJoin, OpAntiJoin:
		return true
	}
	return false
}

// ProjItem computes expression E into output column Out.
type ProjItem struct {
	Out scalar.ColumnID
	E   scalar.Expr
}

// SortKey orders by Col, descending if Desc.
type SortKey struct {
	Col  scalar.ColumnID
	Desc bool
}

// Expr is a logical operator with instantiated arguments. A single struct
// with per-operator payload fields keeps rule code compact; only the fields
// relevant to Op are meaningful.
type Expr struct {
	Op       Op
	Children []*Expr

	// OpGet
	Table string
	Cols  []scalar.ColumnID // one per table column, in table order

	// OpSelect
	Filter scalar.Expr

	// join variants
	On scalar.Expr

	// OpProject
	Projs []ProjItem

	// OpGroupBy
	GroupCols []scalar.ColumnID
	Aggs      []scalar.Agg

	// OpUnionAll: OutCols[i] is produced from InputCols[child][i].
	OutCols   []scalar.ColumnID
	InputCols [][]scalar.ColumnID

	// OpLimit
	N int64

	// OpSort
	Keys []SortKey
}

// OutputCols returns the columns the operator produces, in order.
func (e *Expr) OutputCols() []scalar.ColumnID {
	switch e.Op {
	case OpGet:
		return e.Cols
	case OpSelect, OpLimit, OpSort:
		return e.Children[0].OutputCols()
	case OpProject:
		out := make([]scalar.ColumnID, len(e.Projs))
		for i, p := range e.Projs {
			out[i] = p.Out
		}
		return out
	case OpJoin, OpLeftJoin:
		l := e.Children[0].OutputCols()
		r := e.Children[1].OutputCols()
		out := make([]scalar.ColumnID, 0, len(l)+len(r))
		out = append(out, l...)
		out = append(out, r...)
		return out
	case OpSemiJoin, OpAntiJoin:
		return e.Children[0].OutputCols()
	case OpGroupBy:
		out := make([]scalar.ColumnID, 0, len(e.GroupCols)+len(e.Aggs))
		out = append(out, e.GroupCols...)
		for _, a := range e.Aggs {
			out = append(out, a.Out)
		}
		return out
	case OpUnionAll:
		return e.OutCols
	}
	return nil
}

// OutputColSet returns OutputCols as a set.
func (e *Expr) OutputColSet() scalar.ColSet {
	return scalar.NewColSet(e.OutputCols()...)
}

// CountOps returns the number of operators in the tree; the paper uses this
// to prefer small, debuggable generated queries (§2.3).
func (e *Expr) CountOps() int {
	n := 1
	for _, c := range e.Children {
		n += c.CountOps()
	}
	return n
}

// Clone returns a deep copy of the operator tree. Scalar expressions are
// shared: they are immutable by convention in this codebase.
func (e *Expr) Clone() *Expr {
	out := *e
	out.Children = make([]*Expr, len(e.Children))
	for i, c := range e.Children {
		out.Children[i] = c.Clone()
	}
	out.Cols = append([]scalar.ColumnID(nil), e.Cols...)
	out.Projs = append([]ProjItem(nil), e.Projs...)
	out.GroupCols = append([]scalar.ColumnID(nil), e.GroupCols...)
	out.Aggs = append([]scalar.Agg(nil), e.Aggs...)
	out.OutCols = append([]scalar.ColumnID(nil), e.OutCols...)
	if e.InputCols != nil {
		out.InputCols = make([][]scalar.ColumnID, len(e.InputCols))
		for i, cs := range e.InputCols {
			out.InputCols[i] = append([]scalar.ColumnID(nil), cs...)
		}
	}
	out.Keys = append([]SortKey(nil), e.Keys...)
	return &out
}

// PayloadHash fingerprints the operator's own arguments (not its children);
// the memo combines it with child group ids to deduplicate expressions.
func (e *Expr) PayloadHash() string {
	var sb strings.Builder
	e.PayloadHashInto(&sb)
	return sb.String()
}

func writeInt(sb *strings.Builder, v int64) {
	var buf [20]byte
	sb.Write(strconv.AppendInt(buf[:0], v, 10))
}

func writeCols(sb *strings.Builder, cols []scalar.ColumnID) {
	for _, c := range cols {
		writeInt(sb, int64(c))
		sb.WriteByte(',')
	}
}

// PayloadHashInto appends the payload fingerprint to sb, avoiding
// allocations on the memo's interning hot path.
func (e *Expr) PayloadHashInto(sb *strings.Builder) {
	writeInt(sb, int64(e.Op))
	sb.WriteByte('|')
	switch e.Op {
	case OpGet:
		sb.WriteString(e.Table)
		writeCols(sb, e.Cols)
	case OpSelect:
		scalar.HashInto(e.Filter, sb)
	case OpJoin, OpLeftJoin, OpSemiJoin, OpAntiJoin:
		scalar.HashInto(e.On, sb)
	case OpProject:
		for _, p := range e.Projs {
			writeInt(sb, int64(p.Out))
			sb.WriteByte('=')
			scalar.HashInto(p.E, sb)
			sb.WriteByte(';')
		}
	case OpGroupBy:
		writeCols(sb, e.GroupCols)
		sb.WriteByte('|')
		for _, a := range e.Aggs {
			sb.WriteString(a.Hash())
			sb.WriteByte(';')
		}
	case OpUnionAll:
		writeCols(sb, e.OutCols)
		sb.WriteByte('|')
		for _, in := range e.InputCols {
			writeCols(sb, in)
			sb.WriteByte('/')
		}
	case OpLimit:
		writeInt(sb, e.N)
	case OpSort:
		for _, k := range e.Keys {
			writeInt(sb, int64(k.Col))
			if k.Desc {
				sb.WriteByte('-')
			}
			sb.WriteByte(',')
		}
	}
}

// Hash fingerprints the whole tree.
func (e *Expr) Hash() string {
	var sb strings.Builder
	var walk func(x *Expr)
	walk = func(x *Expr) {
		x.PayloadHashInto(&sb)
		sb.WriteString("(")
		for _, c := range x.Children {
			walk(c)
		}
		sb.WriteString(")")
	}
	walk(e)
	return sb.String()
}

// String renders an indented operator tree for debugging.
func (e *Expr) String() string {
	var sb strings.Builder
	var walk func(x *Expr, depth int)
	walk = func(x *Expr, depth int) {
		sb.WriteString(strings.Repeat("  ", depth))
		sb.WriteString(x.Op.String())
		switch x.Op {
		case OpGet:
			fmt.Fprintf(&sb, "(%s)", x.Table)
		case OpSelect:
			fmt.Fprintf(&sb, "[%s]", x.Filter.Hash())
		case OpJoin, OpLeftJoin, OpSemiJoin, OpAntiJoin:
			fmt.Fprintf(&sb, "[%s]", x.On.Hash())
		case OpGroupBy:
			fmt.Fprintf(&sb, "[by %v]", x.GroupCols)
		case OpLimit:
			fmt.Fprintf(&sb, "[%d]", x.N)
		}
		sb.WriteString("\n")
		for _, c := range x.Children {
			walk(c, depth+1)
		}
	}
	walk(e, 0)
	return sb.String()
}

// Walk visits every node of the tree in pre-order.
func (e *Expr) Walk(fn func(*Expr)) {
	fn(e)
	for _, c := range e.Children {
		c.Walk(fn)
	}
}

// ContainsOp reports whether any node in the tree has the given operator.
func (e *Expr) ContainsOp(op Op) bool {
	found := false
	e.Walk(func(x *Expr) {
		if x.Op == op {
			found = true
		}
	})
	return found
}
