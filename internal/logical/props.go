package logical

import "qtrtest/internal/scalar"

// RejectsNullsOn reports whether the predicate is guaranteed to evaluate to
// non-TRUE whenever every column in cols is NULL. Used by outer-join
// simplification: a null-rejecting filter above a LEFT JOIN lets the join
// become inner. The analysis is conservative: only shapes known to reject
// NULLs return true.
func RejectsNullsOn(pred scalar.Expr, cols scalar.ColSet) bool {
	switch t := pred.(type) {
	case *scalar.And:
		for _, k := range t.Kids {
			if RejectsNullsOn(k, cols) {
				return true
			}
		}
		return false
	case *scalar.Or:
		if len(t.Kids) == 0 {
			return false
		}
		for _, k := range t.Kids {
			if !RejectsNullsOn(k, cols) {
				return false
			}
		}
		return true
	case *scalar.Cmp:
		// A comparison evaluates to UNKNOWN when either side is NULL, so it
		// rejects NULLs on any column it references.
		refs := scalar.ReferencedCols(t)
		return refs.Intersects(cols)
	default:
		return false
	}
}

// EquiJoinCols extracts the column pairs of conjuncts of the form
// (colA = colB) where colA is produced by left and colB by right (or vice
// versa; pairs are normalized left-first). remainder receives the conjuncts
// that are not such equalities.
func EquiJoinCols(on scalar.Expr, left, right scalar.ColSet) (pairs [][2]scalar.ColumnID, remainder []scalar.Expr) {
	for _, c := range scalar.Conjuncts(on) {
		cmp, ok := c.(*scalar.Cmp)
		if !ok || cmp.Op != scalar.CmpEQ {
			remainder = append(remainder, c)
			continue
		}
		lref, lok := cmp.L.(*scalar.ColRef)
		rref, rok := cmp.R.(*scalar.ColRef)
		if !lok || !rok {
			remainder = append(remainder, c)
			continue
		}
		switch {
		case left.Contains(lref.ID) && right.Contains(rref.ID):
			pairs = append(pairs, [2]scalar.ColumnID{lref.ID, rref.ID})
		case left.Contains(rref.ID) && right.Contains(lref.ID):
			pairs = append(pairs, [2]scalar.ColumnID{rref.ID, lref.ID})
		default:
			remainder = append(remainder, c)
		}
	}
	return pairs, remainder
}

// AggsReferenceOnly reports whether every aggregate argument references only
// columns in allowed.
func AggsReferenceOnly(aggs []scalar.Agg, allowed scalar.ColSet) bool {
	for _, a := range aggs {
		if a.Arg == nil {
			continue
		}
		if !scalar.ReferencedCols(a.Arg).SubsetOf(allowed) {
			return false
		}
	}
	return true
}
