package verify

import (
	"bytes"
	"strings"
	"testing"

	"qtrtest/internal/mutate"
	"qtrtest/internal/rules"
)

func run(t *testing.T, cfg Config) *Report {
	t.Helper()
	rep, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return rep
}

// TestPristineRegistryClean: the default 30+17 registry verifies with zero
// findings — the CI gate's positive half.
func TestPristineRegistryClean(t *testing.T) {
	rep := run(t, Config{})
	if len(rep.Findings) != 0 {
		for _, f := range rep.Findings {
			t.Errorf("pristine rule #%d %s flagged: %s\n  instance:\n%s  database: %s",
				f.Rule, f.RuleName, f.Detail, f.Instance, f.Database)
		}
	}
	if rep.Rules != 47 {
		t.Errorf("Rules = %d, want 47", rep.Rules)
	}
	if rep.Exercised < 40 {
		t.Errorf("only %d rules exercised; the instantiation vocabulary lost coverage", rep.Exercised)
	}
	if rep.Executed == 0 {
		t.Error("no pairs executed; the sweep is vacuous")
	}
}

// TestEETRegistryClean: the EET-extended registry (rules 41-47 on top)
// verifies clean, and every EET rule is actually exercised — an EET rewrite
// that stopped firing on the vocabulary would silently weaken the gate.
func TestEETRegistryClean(t *testing.T) {
	rep := run(t, Config{Registry: rules.RegistryWithEET(), EET: true})
	if len(rep.Findings) != 0 {
		for _, f := range rep.Findings {
			t.Errorf("EET rule #%d %s flagged: %s", f.Rule, f.RuleName, f.Detail)
		}
	}
	exercised := map[int]bool{}
	for _, s := range rep.Stats {
		if s.Instances > 0 {
			exercised[s.Rule] = true
		}
	}
	for id := 41; id <= 47; id++ {
		if !exercised[id] {
			t.Errorf("EET rule #%d not exercised by any instantiation", id)
		}
	}
}

// TestAllMutantsFlagged: every seeded mutant registry must be flagged, with
// the finding naming the mutated rule — the static-detectability flip of
// DESIGN §8.3. The witness-minimality bound per kind is a regression pin:
// databases are enumerated smallest-first, so the reported witness database
// must stay at or under the hand-derived minimal size for each fault.
func TestAllMutantsFlagged(t *testing.T) {
	maxWitnessRows := map[mutate.Kind]int{
		mutate.KindSwapJoinType:       1, // lone left row, empty right side
		mutate.KindDupUnionBranch:     1, // one branch row duplicated, other elided
		mutate.KindDropFilterConjunct: 2, // a row passing one conjunct but not both
		mutate.KindDropJoinConjunct:   3, // cross product beats equi-join at 2x1
		mutate.KindFlipSortDir:        2, // two distinct leading keys
		mutate.KindLimitOffByOne:      1, // LIMIT 1 vs mutated LIMIT 0
		mutate.KindWrongAgg:           3, // a group with two distinct aggregated values
	}
	for _, m := range mutate.Mutants() {
		m := m
		t.Run(string(m.Kind), func(t *testing.T) {
			rep := run(t, Config{Registry: m.Registry(), Mutant: string(m.Kind)})
			var hit *Finding
			for i := range rep.Findings {
				if rep.Findings[i].Rule == int(m.Rule) {
					hit = &rep.Findings[i]
				} else {
					t.Errorf("unexpected finding on rule #%d %s: %s",
						rep.Findings[i].Rule, rep.Findings[i].RuleName, rep.Findings[i].Detail)
				}
			}
			if hit == nil {
				t.Fatalf("mutant %s not flagged; verifier missed rule #%d", m, m.Rule)
			}
			if want := maxWitnessRows[m.Kind]; hit.DatabaseRows > want {
				t.Errorf("witness database has %d rows, want <= %d (lost minimality)\n  database: %s",
					hit.DatabaseRows, want, hit.Database)
			}
			wantRepro := "qtrtest verify -mutant " + string(m.Kind)
			if !strings.HasPrefix(hit.Repro, wantRepro) {
				t.Errorf("repro = %q, want prefix %q", hit.Repro, wantRepro)
			}
			if hit.BasePlan == "" || hit.AltPlan == "" || hit.Detail == "" {
				t.Error("witness is missing plan pair or detail")
			}
		})
	}
}

// TestRulesFilterAndRepro: -rules restricts the sweep and the repro line
// replays exactly the failing slice.
func TestRulesFilterAndRepro(t *testing.T) {
	ms, err := mutate.ByKind(mutate.KindFlipSortDir)
	if err != nil {
		t.Fatal(err)
	}
	rep := run(t, Config{Registry: ms[0].Registry(), Mutant: "flip-sort-dir", Rules: []rules.ID{116}})
	if rep.Rules != 1 {
		t.Fatalf("Rules = %d, want 1", rep.Rules)
	}
	if len(rep.Findings) != 1 {
		t.Fatalf("findings = %d, want 1", len(rep.Findings))
	}
	if got, want := rep.Findings[0].Repro, "qtrtest verify -mutant flip-sort-dir -rules 116"; got != want {
		t.Errorf("repro = %q, want %q", got, want)
	}
	if _, err := Run(Config{Rules: []rules.ID{9999}}); err == nil {
		t.Error("unknown rule id accepted")
	}
}

// TestWorkerCountInvariance: the full report is byte-identical for one
// worker and many — the determinism contract the CI gate and repro lines
// rely on.
func TestWorkerCountInvariance(t *testing.T) {
	ms, err := mutate.ByKind(mutate.KindWrongAgg)
	if err != nil {
		t.Fatal(err)
	}
	for _, reg := range []struct {
		name string
		cfg  Config
	}{
		{"pristine", Config{}},
		{"mutant", Config{Registry: ms[0].Registry(), Mutant: "wrong-agg"}},
	} {
		one := run(t, Config{Registry: reg.cfg.Registry, Mutant: reg.cfg.Mutant, Workers: 1})
		many := run(t, Config{Registry: reg.cfg.Registry, Mutant: reg.cfg.Mutant, Workers: 8})
		j1, err := one.JSON()
		if err != nil {
			t.Fatal(err)
		}
		j8, err := many.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(j1, j8) {
			t.Errorf("%s: report differs between workers=1 and workers=8", reg.name)
		}
	}
}

// TestReportRendering: the text form carries the witness and the summary
// line; a smoke test so CLI output stays useful.
func TestReportRendering(t *testing.T) {
	ms, err := mutate.ByKind(mutate.KindLimitOffByOne)
	if err != nil {
		t.Fatal(err)
	}
	rep := run(t, Config{Registry: ms[0].Registry(), Mutant: "limit-off-by-one", Rules: []rules.ID{117}})
	var sb bytes.Buffer
	rep.Print(&sb)
	out := sb.String()
	for _, want := range []string{"registry=mutant:limit-off-by-one", "FINDING rule #117 LimitToLimit", "repro: qtrtest verify -mutant limit-off-by-one -rules 117"} {
		if !strings.Contains(out, want) {
			t.Errorf("report output missing %q:\n%s", want, out)
		}
	}
}
