package verify

import (
	"strings"
	"sync"

	"qtrtest/internal/catalog"
	"qtrtest/internal/datum"
)

// The verifier's universe is deliberately tiny: three interchangeable plain
// tables (two nullable INT columns each) and one keyed table whose first
// column is a primary key. The keyed table exists so that key-dependent rule
// preconditions (colsFormKey, groupHasRowKey — rules 14/15/16) can fire; the
// plain tables carry the duplicate rows and NULLs that separate sound rules
// from plausible-looking broken ones.
const keyedTable = "k"

var plainTables = []string{"s", "t", "u"}

// schemaCatalog builds the fixed verification schema with no rows. It is the
// template the instantiator allocates column metadata against; per-database
// catalogs come from buildCatalog, memoized by content signature so the
// executor's per-table caches never leak contents across distinct databases
// while identical databases share one catalog.
func schemaCatalog() *catalog.Catalog {
	cat := catalog.New()
	for _, name := range plainTables {
		cat.Add(&catalog.Table{
			Name: name,
			Columns: []catalog.Column{
				{Name: "a", Type: datum.TypeInt, Nullable: true},
				{Name: "b", Type: datum.TypeInt, Nullable: true},
			},
		})
	}
	cat.Add(&catalog.Table{
		Name: keyedTable,
		Columns: []catalog.Column{
			{Name: "a", Type: datum.TypeInt, Nullable: false},
			{Name: "b", Type: datum.TypeInt, Nullable: true},
		},
		PrimaryKey: []string{"a"},
	})
	return cat
}

// tableContent is one candidate contents assignment for a single table.
type tableContent struct {
	label string
	rows  []datum.Row
}

func row(vals ...datum.Datum) datum.Row { return datum.Row(vals) }

func iv(v int64) datum.Datum { return datum.NewInt(v) }

// plainContents is the content vocabulary for a plain table, ordered by row
// count so the database enumeration can present smaller databases first:
// empty, a singleton, exact duplicates, two distinct rows, NULL-bearing
// rows, and a three-row table with a duplicated group key. Together they
// cover the classes that break unsound rules: cardinality (duplicates),
// three-valued logic (NULLs), and multi-group aggregation.
func plainContents() []tableContent {
	return []tableContent{
		{label: "{}", rows: nil},
		{label: "{(0,0)}", rows: []datum.Row{row(iv(0), iv(0))}},
		{label: "{(0,0),(0,0)}", rows: []datum.Row{row(iv(0), iv(0)), row(iv(0), iv(0))}},
		{label: "{(0,1),(1,0)}", rows: []datum.Row{row(iv(0), iv(1)), row(iv(1), iv(0))}},
		{label: "{(N,0),(1,N)}", rows: []datum.Row{row(datum.Null, iv(0)), row(iv(1), datum.Null)}},
		{label: "{(0,0),(0,1),(1,1)}", rows: []datum.Row{row(iv(0), iv(0)), row(iv(0), iv(1)), row(iv(1), iv(1))}},
	}
}

// keyedContents is the content vocabulary for the keyed table: the first
// column stays unique and non-NULL as the primary key demands.
func keyedContents() []tableContent {
	return []tableContent{
		{label: "{}", rows: nil},
		{label: "{(0,0)}", rows: []datum.Row{row(iv(0), iv(0))}},
		{label: "{(0,N),(1,0)}", rows: []datum.Row{row(iv(0), datum.Null), row(iv(1), iv(0))}},
		{label: "{(0,0),(1,1),(2,N)}", rows: []datum.Row{row(iv(0), iv(0)), row(iv(1), iv(1)), row(iv(2), datum.Null)}},
	}
}

// contentVocabulary returns the content options for the table at the given
// position of an instance's table list. Positions past the second get a
// trimmed vocabulary: three-table instantiations would otherwise multiply
// the database count sixfold for marginal extra coverage (the interesting
// contents — duplicates, NULLs — are already exercised via the first two
// positions by symmetry of the enumeration).
func contentVocabulary(table string, position int) []tableContent {
	if table == keyedTable {
		all := keyedContents()
		if position >= 2 {
			return []tableContent{all[0], all[2]}
		}
		return all
	}
	all := plainContents()
	if position >= 2 {
		return []tableContent{all[0], all[1], all[3]}
	}
	return all
}

// database assigns contents to each table an instance scans, in the order
// the instance's table list names them.
type database struct {
	tables   []string
	contents []tableContent
	total    int
}

// label renders the database for a witness, e.g. "s={(0,0)} t={}".
func (d database) label() string {
	var sb strings.Builder
	for i, t := range d.tables {
		if i > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(t)
		sb.WriteByte('=')
		sb.WriteString(d.contents[i].label)
	}
	return sb.String()
}

// enumerateDatabases builds the full cross product of content assignments
// for the given tables and orders it by total row count (stable within equal
// totals), so the first failing database a rule check encounters is also a
// smallest one — the witness-minimality guarantee.
func enumerateDatabases(tables []string) []database {
	dbs := []database{{tables: tables}}
	for pos, t := range tables {
		vocab := contentVocabulary(t, pos)
		next := make([]database, 0, len(dbs)*len(vocab))
		for _, d := range dbs {
			for _, c := range vocab {
				nd := database{
					tables:   tables,
					contents: append(append([]tableContent(nil), d.contents...), c),
					total:    d.total + len(c.rows),
				}
				next = append(next, nd)
			}
		}
		dbs = next
	}
	// Insertion sort keeps the enumeration order stable within equal totals
	// without pulling in sort.SliceStable for a list this small.
	for i := 1; i < len(dbs); i++ {
		for j := i; j > 0 && dbs[j-1].total > dbs[j].total; j-- {
			dbs[j-1], dbs[j] = dbs[j], dbs[j-1]
		}
	}
	return dbs
}

// catalogCache shares one materialized catalog per database signature. The
// label fully determines the catalog's contents (tables in order, rows per
// table), so all sweeps over an identically-labeled database can share one
// catalog — and with it the executor's per-table caches (column vectors,
// join indexes) and one result-cache identity, which is what turns the
// near-total plan overlap between rules into cache hits. Sharing by content
// signature preserves the old fresh-per-database isolation guarantee:
// distinct contents still get distinct table objects.
var catalogCache sync.Map // database label -> *catalog.Catalog

// buildCatalog materializes one database as a catalog, memoized by content
// signature. Concurrent rule checks may race to build the same signature;
// LoadOrStore picks one winner, and either candidate is equivalent because
// the label determines every row.
func buildCatalog(d database) *catalog.Catalog {
	key := d.label()
	if v, ok := catalogCache.Load(key); ok {
		return v.(*catalog.Catalog)
	}
	cat := schemaCatalog()
	for i, name := range d.tables {
		t := cat.MustTable(name)
		t.Rows = append([]datum.Row(nil), d.contents[i].rows...)
	}
	v, _ := catalogCache.LoadOrStore(key, cat)
	return v.(*catalog.Catalog)
}
