// Package verify implements a small-scope semantic verifier for
// transformation rules: for every rule it enumerates canonical
// instantiations of the rule's pattern over a tiny fixed schema, pairs each
// instantiation with every abstract database up to a bounded size (small
// integer domains, NULLs, duplicate rows), executes both sides of the
// rewrite with the execution engine, and compares the results under the
// correct sensitivity (multiset by default, positional when a sort pins the
// order, undetermined for LIMIT without order — exec.CompareResults).
//
// The check is static in the campaign sense: no query generation, no
// optimizer search, no randomness — the same bounded-exhaustive sweep every
// run, byte-identical at any worker count. Under the small-scope hypothesis
// (most rule bugs already show up on tiny inputs), a rule that survives
// every instantiation×database pair is very likely sound; a rule that fails
// any pair is definitely broken, and the first failing pair — databases are
// enumerated smallest-first — is emitted as a minimal replayable witness.
//
// Soundness caveat: the sweep is exhaustive only within its bounds (operator
// payload vocabulary, ≤3 tables, ≤3 rows per table, values {NULL,0,1,2}).
// A bug that needs a larger scope — wider schemas, deeper predicate nesting,
// overflow-range arithmetic — is outside the net. The fuzzing and mutation
// campaigns remain the backstop for that tail.
package verify

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"

	"qtrtest/internal/core/suite"
	"qtrtest/internal/exec"
	"qtrtest/internal/logical"
	"qtrtest/internal/memo"
	"qtrtest/internal/par"
	"qtrtest/internal/physical"
	"qtrtest/internal/rescache"
	"qtrtest/internal/rules"
)

// ReportSchema identifies the report's JSON shape.
const ReportSchema = "qtrtest-verify/v1"

// Execution caps per plan run. The databases are tiny, so any plan that
// trips these is pathological (e.g. a fault turned a join into a repeated
// cross product under rescanning); such runs are skipped, not failed.
const (
	maxResultRows = 256
	maxWorkRows   = 4096
)

// Config tunes one verification run.
type Config struct {
	// Registry is the rule set to verify; nil means the default registry.
	Registry *rules.Registry
	// Rules restricts the run to the given rule ids (default: all).
	Rules []rules.ID
	// Mutant labels the registry's mutant kind in the report and repro
	// lines; it does not alter the check.
	Mutant string
	// EET records that the registry includes the EET rule pack, for the
	// report and repro lines.
	EET bool
	// Workers sizes the worker pool (0 = GOMAXPROCS); the report is
	// byte-identical for every value.
	Workers int
	// Cache, when non-nil, memoizes plan executions. The tiny-database
	// sweep is where it pays most: instantiations repeat across rules, and
	// identically-labeled databases share a catalog identity, so the same
	// (plan, database) pair executes once per process instead of once per
	// rule. Reports are byte-identical with and without it.
	Cache *rescache.Cache
	// Backend names an independent execution backend ("" disables it). When
	// set, every base execution of the sweep is additionally replayed there
	// and compared under the same order-aware oracle, so an engine fault that
	// corrupts both sides of a rewrite identically still surfaces.
	Backend string

	// backend is the resolved Backend engine; backendOn gates the check.
	backend   exec.Engine
	backendOn bool
}

// Finding is one verified rule failure: the smallest failing
// instantiation×database pair with both plans and a replay line.
type Finding struct {
	Rule         int    `json:"rule"`
	RuleName     string `json:"rule_name"`
	RuleKind     string `json:"rule_kind"`
	Instance     string `json:"instance"`
	Database     string `json:"database"`
	DatabaseRows int    `json:"database_rows"`
	BasePlan     string `json:"base_plan"`
	AltPlan      string `json:"alt_plan"`
	Detail       string `json:"detail"`
	// FailingPairs counts every failing instantiation×database×substitute
	// triple for the rule; the finding itself renders only the first.
	FailingPairs int    `json:"failing_pairs"`
	Repro        string `json:"repro"`
}

// RuleStat is one rule's sweep accounting.
type RuleStat struct {
	Rule         int    `json:"rule"`
	Name         string `json:"name"`
	Kind         string `json:"kind"`
	Instances    int    `json:"instances"`
	Pairs        int    `json:"pairs"`
	Executed     int    `json:"executed"`
	Identical    int    `json:"identical"`
	Undetermined int    `json:"undetermined"`
	Skipped      int    `json:"skipped"`
	Failing      int    `json:"failing"`
	// BackendChecks counts base executions replayed on the cross-check
	// backend (Config.Backend); omitted when the check is off.
	BackendChecks int  `json:"backend_checks,omitempty"`
	Truncated     bool `json:"truncated,omitempty"`
}

// Report is a verification run's deterministic outcome.
type Report struct {
	Schema       string `json:"schema"`
	Mutant       string `json:"mutant,omitempty"`
	EET          bool   `json:"eet,omitempty"`
	Backend      string `json:"backend,omitempty"`
	Rules        int    `json:"rules"`
	Exercised    int    `json:"exercised"`
	Pairs        int    `json:"pairs"`
	Executed     int    `json:"executed"`
	Identical    int    `json:"identical"`
	Undetermined int    `json:"undetermined"`
	Skipped      int    `json:"skipped"`
	// BackendChecks counts base executions replayed and compared on the
	// cross-check backend; omitted when Config.Backend was empty.
	BackendChecks int        `json:"backend_checks,omitempty"`
	Findings      []Finding  `json:"findings"`
	Stats         []RuleStat `json:"stats"`
}

// JSON renders the report; the output is byte-identical across runs and
// worker counts.
func (r *Report) JSON() ([]byte, error) { return json.MarshalIndent(r, "", "  ") }

// Print renders the report for terminals.
func (r *Report) Print(w io.Writer) {
	fmt.Fprintf(w, "verify: registry=%s rules=%d exercised=%d pairs=%d executed=%d identical=%d undetermined=%d skipped=%d findings=%d\n",
		r.registryLabel(), r.Rules, r.Exercised, r.Pairs, r.Executed, r.Identical, r.Undetermined, r.Skipped, len(r.Findings))
	for _, f := range r.Findings {
		fmt.Fprintf(w, "\nFINDING rule #%d %s (%s): %s\n", f.Rule, f.RuleName, f.RuleKind, f.Detail)
		fmt.Fprintf(w, "  database: %s (%d rows)\n", f.Database, f.DatabaseRows)
		fmt.Fprintf(w, "  instance:\n%s", indent(f.Instance, "    "))
		fmt.Fprintf(w, "  base plan:\n%s", indent(f.BasePlan, "    "))
		fmt.Fprintf(w, "  alt plan:\n%s", indent(f.AltPlan, "    "))
		fmt.Fprintf(w, "  failing pairs: %d\n", f.FailingPairs)
		fmt.Fprintf(w, "  repro: %s\n", f.Repro)
	}
}

func (r *Report) registryLabel() string {
	label := "default"
	if r.Mutant != "" {
		label = "mutant:" + r.Mutant
	}
	if r.EET {
		label += "+eet"
	}
	if r.Backend != "" {
		label += " backend=" + r.Backend
	}
	return label
}

func indent(s, pad string) string {
	s = strings.TrimRight(s, "\n")
	if s == "" {
		return ""
	}
	return pad + strings.ReplaceAll(s, "\n", "\n"+pad) + "\n"
}

// Run verifies every selected rule of the registry and returns the report.
// The only error conditions are configuration mistakes (an unknown rule id);
// rule failures are reported as findings, not errors.
func Run(cfg Config) (*Report, error) {
	reg := cfg.Registry
	if reg == nil {
		reg = rules.DefaultRegistry()
	}
	if cfg.Backend != "" {
		eng, err := exec.EngineByName(cfg.Backend)
		if err != nil {
			return nil, fmt.Errorf("verify: %w", err)
		}
		cfg.backend, cfg.backendOn = eng, true
	}
	targets := reg.All()
	if len(cfg.Rules) > 0 {
		want := make(map[rules.ID]bool, len(cfg.Rules))
		for _, id := range cfg.Rules {
			if _, err := reg.ByID(id); err != nil {
				return nil, fmt.Errorf("verify: %w", err)
			}
			want[id] = true
		}
		var sel []rules.Rule
		for _, r := range targets {
			if want[r.ID()] {
				sel = append(sel, r)
			}
		}
		targets = sel
	}
	results := make([]*ruleResult, len(targets))
	par.ForEach(cfg.Workers, len(targets), func(i int) {
		results[i] = checkRule(targets[i], &cfg)
	})
	rep := &Report{Schema: ReportSchema, Mutant: cfg.Mutant, EET: cfg.EET, Backend: cfg.Backend, Rules: len(targets)}
	for _, res := range results {
		rep.Stats = append(rep.Stats, res.stat)
		rep.Pairs += res.stat.Pairs
		rep.Executed += res.stat.Executed
		rep.Identical += res.stat.Identical
		rep.Undetermined += res.stat.Undetermined
		rep.Skipped += res.stat.Skipped
		rep.BackendChecks += res.stat.BackendChecks
		if res.stat.Instances > 0 {
			rep.Exercised++
		}
		if res.finding != nil {
			res.finding.FailingPairs = res.stat.Failing
			rep.Findings = append(rep.Findings, *res.finding)
		}
	}
	return rep, nil
}

// ruleResult is one rule's private accumulator; the driver merges them in
// registry order, which is what makes the report worker-count independent.
type ruleResult struct {
	cfg     *Config
	stat    RuleStat
	finding *Finding
}

func checkRule(r rules.Rule, cfg *Config) *ruleResult {
	res := &ruleResult{cfg: cfg, stat: RuleStat{
		Rule: int(r.ID()), Name: r.Name(), Kind: r.Kind().String(),
	}}
	insts, truncated := enumerate(r.Pattern())
	res.stat.Truncated = truncated
	for _, inst := range insts {
		switch rr := r.(type) {
		case rules.ExplorationRule:
			res.checkExploration(rr, inst)
		case rules.ImplementationRule:
			res.checkImplementation(rr, inst)
		}
	}
	return res
}

// checkExploration applies the rule to one instantiation inside a private
// memo and compares every substitute against the original tree. Both sides
// are wrapped in a canonical projection over the root group's sorted column
// set before lowering: substitutes agree with the original on the output
// column set but may reorder it.
func (res *ruleResult) checkExploration(r rules.ExplorationRule, inst *instance) {
	m := memo.New(inst.md)
	g := m.Insert(inst.tree)
	root := m.Group(g).Exprs[0]
	ctx := &rules.Context{Memo: m}
	var altTrees []*logical.Expr
	for _, bnd := range rules.Bind(m, root, r.Pattern()) {
		for _, sub := range r.Apply(ctx, bnd) {
			if sub != nil {
				altTrees = append(altTrees, extractBound(m, sub))
			}
		}
	}
	if len(altTrees) == 0 {
		return
	}
	res.stat.Instances++
	outCols := m.Group(g).Cols.Sorted()
	baseTree := wrapProject(inst.tree, outCols)
	base := lower(baseTree)
	alts := make([]*physical.Expr, len(altTrees))
	for i, t := range altTrees {
		alts[i] = lower(wrapProject(t, outCols))
	}
	res.comparePlans(r, inst, baseTree, base, alts)
}

// checkImplementation asks the rule for its physical candidates over one
// instantiation and compares each against the canonical lowering of the
// whole tree. Candidates come back as payload-only root nodes (children
// unset, 1:1 with the memo expression's kid groups); the canonical lowering
// of each kid group's tree is grafted underneath.
func (res *ruleResult) checkImplementation(r rules.ImplementationRule, inst *instance) {
	m := memo.New(inst.md)
	g := m.Insert(inst.tree)
	root := m.Group(g).Exprs[0]
	ctx := &rules.Context{Memo: m}
	var alts []*physical.Expr
	for _, cand := range r.Implement(ctx, root) {
		if cand == nil {
			continue
		}
		cand.Children = make([]*physical.Expr, len(root.Kids))
		for i, kid := range root.Kids {
			cand.Children[i] = lower(m.ExtractFirst(kid))
		}
		alts = append(alts, cand)
	}
	if len(alts) == 0 {
		return
	}
	res.stat.Instances++
	res.comparePlans(r, inst, inst.tree, lower(inst.tree), alts)
}

// comparePlans sweeps every database over the live (structurally different)
// substitutes. A substitute whose plan hash equals the base plan's is
// equivalent by construction and never executed — that is what lets the
// pristine identity-shaped implementation rules (SelectToFilter, SortToSort,
// LimitToLimit, ...) verify with zero executions while their mutated
// variants, whose payloads differ, still get the full sweep.
func (res *ruleResult) comparePlans(r rules.Rule, inst *instance, baseTree *logical.Expr, base *physical.Expr, alts []*physical.Expr) {
	baseHash := base.Hash()
	var live []*physical.Expr
	for _, alt := range alts {
		if alt.Hash() == baseHash {
			res.stat.Pairs++
			res.stat.Identical++
			continue
		}
		live = append(live, alt)
	}
	if len(live) == 0 && !res.cfg.backendOn {
		return
	}
	baseOrder := exec.RootOrder(base)
	orders := make([]exec.PlanOrder, len(live))
	for i, alt := range live {
		orders[i] = exec.RootOrder(alt)
	}
	for _, db := range enumerateDatabases(inst.tables) {
		cat := buildCatalog(db)
		baseRows, err := res.cfg.Cache.Run(exec.EngineBatch, base, cat, maxResultRows, maxWorkRows)
		if err != nil {
			// The base side is the canonical lowering; only a budget trip
			// can fail it, and then no comparison on this database is
			// meaningful.
			res.stat.Pairs += len(live)
			res.stat.Skipped += len(live)
			continue
		}
		if res.cfg.backendOn {
			bx := &suite.BaseExec{Plan: base, Rows: baseRows, Hash: baseHash, Order: baseOrder}
			out, err := suite.CrossCheckBase(res.cfg.Cache, res.cfg.backend, exec.EngineBatch,
				baseTree, bx, cat, maxResultRows, maxWorkRows)
			switch {
			case err != nil:
				res.fail(r, inst, db, base, base, "backend cross-check: "+err.Error())
			case out.Skipped || out.Capped:
			default:
				res.stat.BackendChecks++
				switch out.Verdict {
				case exec.VerdictMismatch:
					res.fail(r, inst, db, base, base, "backend cross-check: "+out.Detail)
				case exec.VerdictUndetermined:
					res.stat.Undetermined++
				}
			}
		}
		for i, alt := range live {
			res.stat.Pairs++
			altRows, err := res.cfg.Cache.Run(exec.EngineBatch, alt, cat, maxResultRows, maxWorkRows)
			if err != nil {
				if errors.Is(err, exec.ErrRowLimit) {
					res.stat.Skipped++
					continue
				}
				res.fail(r, inst, db, base, alt, "execution error: "+err.Error())
				continue
			}
			res.stat.Executed++
			verdict, detail := exec.CompareResults(baseRows, baseOrder, altRows, orders[i])
			switch verdict {
			case exec.VerdictMismatch:
				res.fail(r, inst, db, base, alt, detail)
			case exec.VerdictUndetermined:
				res.stat.Undetermined++
			}
		}
	}
}

// fail records a failing pair; only the first — smallest database, earliest
// instantiation — is rendered as the rule's witness.
func (res *ruleResult) fail(r rules.Rule, inst *instance, db database, base, alt *physical.Expr, detail string) {
	res.stat.Failing++
	if res.finding != nil {
		return
	}
	repro := "qtrtest"
	if res.cfg.Backend != "" {
		repro += " -backend " + res.cfg.Backend
	}
	repro += " verify"
	if res.cfg.Mutant != "" {
		repro += " -mutant " + res.cfg.Mutant
	}
	if res.cfg.EET {
		repro += " -eet"
	}
	repro += fmt.Sprintf(" -rules %d", r.ID())
	res.finding = &Finding{
		Rule:         int(r.ID()),
		RuleName:     r.Name(),
		RuleKind:     r.Kind().String(),
		Instance:     inst.tree.String(),
		Database:     db.label(),
		DatabaseRows: db.total,
		BasePlan:     base.String(),
		AltPlan:      alt.String(),
		Detail:       detail,
		Repro:        repro,
	}
}
