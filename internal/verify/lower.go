package verify

import (
	"fmt"

	"qtrtest/internal/logical"
	"qtrtest/internal/memo"
	"qtrtest/internal/physical"
	"qtrtest/internal/scalar"
)

// lower translates a logical tree into its canonical physical form: one
// fixed, rule-independent implementation per logical operator (scans,
// filters, nested-loop joins, hash aggregation, concatenation). Both sides
// of an exploration rewrite are lowered this way, so the only semantic
// difference between the compared plans is the rewrite itself; for
// implementation rules the canonical plan is the reference the rule's own
// candidate is checked against.
func lower(e *logical.Expr) *physical.Expr {
	kids := make([]*physical.Expr, len(e.Children))
	for i, c := range e.Children {
		kids[i] = lower(c)
	}
	out := &physical.Expr{Children: kids}
	switch e.Op {
	case logical.OpGet:
		out.Op = physical.OpScan
		out.Table = e.Table
		out.Cols = e.Cols
	case logical.OpSelect:
		out.Op = physical.OpFilter
		out.Filter = e.Filter
	case logical.OpProject:
		out.Op = physical.OpProject
		out.Projs = e.Projs
	case logical.OpJoin, logical.OpLeftJoin, logical.OpSemiJoin, logical.OpAntiJoin:
		out.Op = physical.OpNLJoin
		out.JoinType = joinTypeOf(e.Op)
		out.On = e.On
	case logical.OpGroupBy:
		out.Op = physical.OpHashAgg
		out.GroupCols = e.GroupCols
		out.Aggs = e.Aggs
	case logical.OpUnionAll:
		out.Op = physical.OpConcat
		out.OutCols = e.OutCols
		out.InputCols = e.InputCols
	case logical.OpSort:
		out.Op = physical.OpSort
		out.Keys = e.Keys
	case logical.OpLimit:
		out.Op = physical.OpLimit
		out.N = e.N
	default:
		panic(fmt.Sprintf("verify: cannot canonically lower %v", e.Op))
	}
	return out
}

func joinTypeOf(op logical.Op) physical.JoinType {
	switch op {
	case logical.OpLeftJoin:
		return physical.JoinLeft
	case logical.OpSemiJoin:
		return physical.JoinSemi
	case logical.OpAntiJoin:
		return physical.JoinAnti
	}
	return physical.JoinInner
}

// wrapProject puts a pure column-reference projection over the tree, fixing
// the output column ORDER to the given list. Substitutes in a memo group
// agree with the original on the output column SET but may reorder it (a
// commuted join emits right++left); comparing through a canonical
// projection makes the multiset oracle see both sides in one layout.
func wrapProject(tree *logical.Expr, cols []scalar.ColumnID) *logical.Expr {
	projs := make([]logical.ProjItem, len(cols))
	for i, c := range cols {
		projs[i] = logical.ProjItem{Out: c, E: &scalar.ColRef{ID: c}}
	}
	return &logical.Expr{Op: logical.OpProject, Projs: projs, Children: []*logical.Expr{tree}}
}

// extractBound rebuilds the logical tree a substitute denotes: bound nodes
// contribute their payloads, and leaf references pull the referenced group's
// original expression out of the memo.
func extractBound(m *memo.Memo, b *memo.BoundExpr) *logical.Expr {
	if b.IsLeaf() {
		return m.ExtractFirst(b.Group)
	}
	node := *b.Node
	node.Children = make([]*logical.Expr, len(b.Kids))
	for i, k := range b.Kids {
		node.Children[i] = extractBound(m, k)
	}
	return &node
}
