package verify

import (
	"bytes"
	"testing"

	"qtrtest/internal/rescache"
)

// TestCacheDifferentialAcrossWorkers: the small-scope verifier's JSON report
// must be byte-identical with the result cache on and off at every worker
// count. Verification instantiates each rule pattern over the same tiny
// databases, so both sides of many rewrite pairs resolve to identical plans
// across rules — reuse the cache exploits, and reuse that must not alter a
// single finding or stat.
func TestCacheDifferentialAcrossWorkers(t *testing.T) {
	var want []byte
	for _, workers := range []int{1, 8} {
		for _, cached := range []bool{false, true} {
			cfg := Config{Workers: workers}
			if cached {
				cfg.Cache = rescache.New(0)
			}
			rep, err := Run(cfg)
			if err != nil {
				t.Fatalf("workers=%d cached=%v: %v", workers, cached, err)
			}
			data, err := rep.JSON()
			if err != nil {
				t.Fatalf("workers=%d cached=%v: JSON: %v", workers, cached, err)
			}
			if want == nil {
				want = data
			} else if !bytes.Equal(data, want) {
				t.Fatalf("report differs at workers=%d cached=%v:\n--- want ---\n%s\n--- got ---\n%s",
					workers, cached, want, data)
			}
			if cached && cfg.Cache.Stats().Hits == 0 {
				t.Errorf("workers=%d: cache saw zero hits across rule instantiations", workers)
			}
		}
	}
}
