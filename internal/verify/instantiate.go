package verify

import (
	"qtrtest/internal/datum"
	"qtrtest/internal/logical"
	"qtrtest/internal/rules"
	"qtrtest/internal/scalar"
)

// instance is one canonical instantiation of a rule pattern: a concrete
// logical tree whose leaves scan the verification schema, plus the metadata
// its column ids live in and the tables its leaves touch (in first-use
// order, deduplicated — the database enumeration iterates over these).
type instance struct {
	tree   *logical.Expr
	md     *logical.Metadata
	tables []string
}

// maxInstances caps the per-rule instantiation count. The payload
// vocabularies are sized so real patterns stay under it (the largest —
// Select over a join — yields 40); the cap is a safety valve against a
// future pattern shape exploding the cross product, and a trip is reported
// as a truncation in the rule's stats rather than silently dropped.
const maxInstances = 64

// instBuilder enumerates the instantiations for one leaf-table assignment.
// All variants of one assignment share a metadata (column ids are unique
// per leaf position, so trees sharing Get nodes stay self-consistent); each
// rule check owns its builder, so cross-rule parallelism never races on it.
type instBuilder struct {
	md     *logical.Metadata
	leaves []string // table per leaf position
	next   int      // next leaf position to assign
}

// enumerate returns every canonical instantiation of the pattern: two leaf
// assignments (all-plain, and the last leaf swapped to the keyed table so
// key-dependent preconditions can fire) crossed with the per-operator
// payload vocabularies.
func enumerate(p *rules.Pattern) ([]*instance, bool) {
	n := countLeaves(p)
	assigns := [][]string{leafAssignment(n, false)}
	if n > 0 {
		assigns = append(assigns, leafAssignment(n, true))
	}
	var out []*instance
	truncated := false
	for _, leaves := range assigns {
		b := &instBuilder{md: logical.NewMetadata(schemaCatalog()), leaves: leaves}
		trees := b.enum(p)
		for _, tr := range trees {
			if len(out) >= maxInstances {
				truncated = true
				break
			}
			out = append(out, &instance{tree: tr, md: b.md, tables: usedTables(tr)})
		}
	}
	return out, truncated
}

// countLeaves counts the pattern positions that become table scans: generic
// placeholders and concrete Get nodes.
func countLeaves(p *rules.Pattern) int {
	if p.IsGeneric() || p.Op == logical.OpGet {
		return 1
	}
	n := 0
	for _, c := range p.Children {
		n += countLeaves(c)
	}
	return n
}

// leafAssignment maps leaf positions to tables: plain tables positionally,
// cycling if a pattern ever has more leaves than the pool; with keyed set,
// the last leaf scans the keyed table instead.
func leafAssignment(n int, keyed bool) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = plainTables[i%len(plainTables)]
	}
	if keyed && n > 0 {
		out[n-1] = keyedTable
	}
	return out
}

// usedTables lists the distinct tables a tree scans, in first-use order.
func usedTables(tree *logical.Expr) []string {
	var out []string
	seen := map[string]bool{}
	tree.Walk(func(e *logical.Expr) {
		if e.Op == logical.OpGet && !seen[e.Table] {
			seen[e.Table] = true
			out = append(out, e.Table)
		}
	})
	return out
}

// enum returns the instantiation variants for one pattern node: the cross
// product of its children's variants, expanded by this operator's payload
// vocabulary.
func (b *instBuilder) enum(p *rules.Pattern) []*logical.Expr {
	if p.IsGeneric() || p.Op == logical.OpGet {
		table := b.leaves[b.next]
		b.next++
		get, err := b.md.AddTable(table)
		if err != nil {
			// The leaf pool only names schema tables; a miss is a bug in
			// this package, not an input condition.
			panic("verify: " + err.Error())
		}
		return []*logical.Expr{get}
	}
	combos := [][]*logical.Expr{nil}
	for _, c := range p.Children {
		kidVariants := b.enum(c)
		next := make([][]*logical.Expr, 0, len(combos)*len(kidVariants))
		for _, combo := range combos {
			for _, kv := range kidVariants {
				next = append(next, append(append([]*logical.Expr(nil), combo...), kv))
			}
		}
		combos = next
	}
	var out []*logical.Expr
	for _, kids := range combos {
		out = append(out, b.payloadVariants(p.Op, kids)...)
	}
	return out
}

// payloadVariants builds the operator payload vocabulary over the given
// children. The vocabulary is the verifier's scalar small scope: enough
// shapes to trip every precondition class the rule pack tests (null
// rejection, conjunct splitting, equi-join detection, aggregation typing,
// order pinning) without an unbounded expression grammar.
func (b *instBuilder) payloadVariants(op logical.Op, kids []*logical.Expr) []*logical.Expr {
	switch op {
	case logical.OpSelect:
		return selectVariants(kids[0])
	case logical.OpJoin, logical.OpLeftJoin, logical.OpSemiJoin, logical.OpAntiJoin:
		return joinVariants(op, kids[0], kids[1])
	case logical.OpProject:
		return b.projectVariants(kids[0])
	case logical.OpGroupBy:
		return b.groupByVariants(kids[0])
	case logical.OpUnionAll:
		return b.unionVariants(kids[0], kids[1])
	case logical.OpSort:
		return sortVariants(kids[0])
	case logical.OpLimit:
		return limitVariants(kids[0])
	}
	// An operator this vocabulary cannot instantiate (e.g. a future pattern
	// op) yields no variants; the rule is reported as not exercised rather
	// than wrongly passed.
	return nil
}

func colRef(c scalar.ColumnID) scalar.Expr { return &scalar.ColRef{ID: c} }
func intConst(v int64) scalar.Expr         { return &scalar.Const{D: datum.NewInt(v)} }
func ge(l, r scalar.Expr) scalar.Expr      { return &scalar.Cmp{Op: scalar.CmpGE, L: l, R: r} }
func eq(l, r scalar.Expr) scalar.Expr      { return &scalar.Cmp{Op: scalar.CmpEQ, L: l, R: r} }
func add(l, r scalar.Expr) scalar.Expr     { return &scalar.Arith{Op: scalar.ArithAdd, L: l, R: r} }
func firstLast(e *logical.Expr) (f, l scalar.ColumnID) {
	cols := e.OutputCols()
	return cols[0], cols[len(cols)-1]
}

// selectVariants: filters over the child's first and last columns. The set
// covers a left-only predicate (catches unsound outer-join simplification),
// a last-column predicate (null-rejecting on the right side, so the sound
// simplification fires too), a two-conjunct AND (pushdown splitting,
// dropped-conjunct faults, De Morgan), IS NULL (non-null-rejecting), and a
// nested-arithmetic disjunction (exercises the arithmetic EET rewrites).
func selectVariants(kid *logical.Expr) []*logical.Expr {
	f, l := firstLast(kid)
	filters := []scalar.Expr{
		ge(colRef(f), intConst(0)),
	}
	if l != f {
		filters = append(filters, ge(colRef(l), intConst(0)))
	}
	filters = append(filters,
		&scalar.And{Kids: []scalar.Expr{ge(colRef(f), intConst(0)), ge(colRef(l), intConst(1))}},
		&scalar.IsNull{Kid: colRef(l)},
		&scalar.Or{Kids: []scalar.Expr{
			ge(add(add(colRef(f), intConst(1)), intConst(1)), colRef(l)),
			eq(colRef(f), intConst(0)),
		}},
	)
	out := make([]*logical.Expr, len(filters))
	for i, flt := range filters {
		out[i] = &logical.Expr{Op: logical.OpSelect, Filter: flt, Children: []*logical.Expr{kid}}
	}
	return out
}

// joinVariants: an adjacent equi-join (the last left column against the
// first right column — for nested joins this predicate spans the inner
// join's right side, which is what the associativity rules' conjunct
// splitting needs), a first-against-first equi-join, an equi-join with an
// extra non-key conjunct, and a non-equi inequality join.
func joinVariants(op logical.Op, l, r *logical.Expr) []*logical.Expr {
	lf, ll := firstLast(l)
	rf, _ := firstLast(r)
	ons := []scalar.Expr{
		eq(colRef(ll), colRef(rf)),
	}
	if lf != ll {
		ons = append(ons, eq(colRef(lf), colRef(rf)))
	}
	ons = append(ons,
		&scalar.And{Kids: []scalar.Expr{eq(colRef(ll), colRef(rf)), ge(colRef(lf), intConst(0))}},
		ge(colRef(lf), colRef(rf)),
	)
	out := make([]*logical.Expr, len(ons))
	for i, on := range ons {
		out[i] = &logical.Expr{Op: op, On: on, Children: []*logical.Expr{l, r}}
	}
	return out
}

// projectVariants: identity pass-through, a single-column pruning projection
// (column-pruning rules need a strict subset), and a computed column.
func (b *instBuilder) projectVariants(kid *logical.Expr) []*logical.Expr {
	cols := kid.OutputCols()
	identity := make([]logical.ProjItem, len(cols))
	for i, c := range cols {
		identity[i] = logical.ProjItem{Out: c, E: colRef(c)}
	}
	variants := [][]logical.ProjItem{identity}
	if len(cols) > 1 {
		variants = append(variants, []logical.ProjItem{{Out: cols[0], E: colRef(cols[0])}})
	}
	computed := b.md.AddColumn(logical.ColumnMeta{Name: "v", Type: datum.TypeInt})
	variants = append(variants, []logical.ProjItem{
		{Out: cols[0], E: colRef(cols[0])},
		{Out: computed, E: add(colRef(cols[0]), intConst(1))},
	})
	out := make([]*logical.Expr, len(variants))
	for i, projs := range variants {
		out[i] = &logical.Expr{Op: logical.OpProject, Projs: projs, Children: []*logical.Expr{kid}}
	}
	return out
}

// groupByVariants: group by the first column with MIN/MAX/SUM/COUNT(*) over
// the second (the aggregate-swap fault class needs a group with two distinct
// aggregated values), a scalar aggregation, and a group-by-everything
// DISTINCT.
func (b *instBuilder) groupByVariants(kid *logical.Expr) []*logical.Expr {
	cols := kid.OutputCols()
	first := cols[0]
	second := first
	if len(cols) > 1 {
		second = cols[1]
	}
	agg := func(op scalar.AggOp, arg scalar.Expr) scalar.Agg {
		return scalar.Agg{Op: op, Arg: arg, Out: b.md.AddColumn(logical.ColumnMeta{Name: "agg", Type: datum.TypeInt})}
	}
	grouped := &logical.Expr{
		Op:        logical.OpGroupBy,
		GroupCols: []scalar.ColumnID{first},
		Aggs: []scalar.Agg{
			agg(scalar.AggMin, colRef(second)),
			agg(scalar.AggMax, colRef(second)),
			agg(scalar.AggSum, colRef(second)),
			agg(scalar.AggCountStar, nil),
		},
		Children: []*logical.Expr{kid},
	}
	scalarAgg := &logical.Expr{
		Op: logical.OpGroupBy,
		Aggs: []scalar.Agg{
			agg(scalar.AggCountStar, nil),
			agg(scalar.AggSum, colRef(first)),
		},
		Children: []*logical.Expr{kid},
	}
	distinct := &logical.Expr{
		Op:        logical.OpGroupBy,
		GroupCols: append([]scalar.ColumnID(nil), cols...),
		Children:  []*logical.Expr{kid},
	}
	return []*logical.Expr{grouped, scalarAgg, distinct}
}

// unionVariants: one UNION ALL mapping both inputs positionally onto fresh
// output columns. Inputs of unequal width are truncated to the shorter one
// (cannot happen for the shipped patterns, whose union children are leaves).
func (b *instBuilder) unionVariants(l, r *logical.Expr) []*logical.Expr {
	lc, rc := l.OutputCols(), r.OutputCols()
	w := len(lc)
	if len(rc) < w {
		w = len(rc)
	}
	out := make([]scalar.ColumnID, w)
	for i := range out {
		out[i] = b.md.AddColumn(logical.ColumnMeta{Name: "u", Type: datum.TypeInt})
	}
	return []*logical.Expr{{
		Op:        logical.OpUnionAll,
		OutCols:   out,
		InputCols: [][]scalar.ColumnID{lc[:w], rc[:w]},
		Children:  []*logical.Expr{l, r},
	}}
}

// sortVariants: an ascending single-key sort and a descending-then-ascending
// two-key sort; the flipped-direction fault class needs at least two
// distinct leading key values, which the database vocabulary supplies.
func sortVariants(kid *logical.Expr) []*logical.Expr {
	cols := kid.OutputCols()
	out := []*logical.Expr{{
		Op:       logical.OpSort,
		Keys:     []logical.SortKey{{Col: cols[0]}},
		Children: []*logical.Expr{kid},
	}}
	if len(cols) > 1 {
		out = append(out, &logical.Expr{
			Op:       logical.OpSort,
			Keys:     []logical.SortKey{{Col: cols[0], Desc: true}, {Col: cols[1]}},
			Children: []*logical.Expr{kid},
		})
	}
	return out
}

// limitVariants: LIMIT 1 and LIMIT 2; the off-by-one fault class surfaces as
// a row-count mismatch, which the oracle treats as a definite failure even
// without a pinned order.
func limitVariants(kid *logical.Expr) []*logical.Expr {
	return []*logical.Expr{
		{Op: logical.OpLimit, N: 1, Children: []*logical.Expr{kid}},
		{Op: logical.OpLimit, N: 2, Children: []*logical.Expr{kid}},
	}
}
