// Package bind resolves a parsed SQL statement against a catalog into a
// logical query tree: names become ColumnIDs, EXISTS subqueries become semi
// and anti joins, and the result is always topped by a Project that fixes
// the output column order.
package bind

import (
	"fmt"

	"qtrtest/internal/catalog"
	"qtrtest/internal/datum"
	"qtrtest/internal/logical"
	"qtrtest/internal/scalar"
	"qtrtest/internal/sql"
)

// Bound is a fully bound query.
type Bound struct {
	Tree *logical.Expr
	MD   *logical.Metadata
	// OutNames are the result column names, parallel to the root Project.
	OutNames []string
}

// BindSQL parses and binds a SQL query.
func BindSQL(query string, cat *catalog.Catalog) (*Bound, error) {
	stmt, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	return Bind(stmt, cat)
}

// Bind binds a parsed statement.
func Bind(stmt sql.Stmt, cat *catalog.Catalog) (*Bound, error) {
	b := &binder{md: logical.NewMetadata(cat)}
	tree, outs, err := b.bindStmt(stmt, nil)
	if err != nil {
		return nil, err
	}
	// The root must pin the output column order: during optimization a group
	// can hold expressions with different natural layouts (e.g. commuted
	// joins), and only a Project/GroupBy/UnionAll payload fixes the order.
	if tree.Op != logical.OpSort && tree.Op != logical.OpLimit {
		// Sort/Limit already sit above a pinned subtree (see bindSelect).
		tree = pinOrder(tree, outs)
	}
	names := make([]string, len(outs))
	for i, oc := range outs {
		names[i] = oc.name
	}
	return &Bound{Tree: tree, MD: b.md, OutNames: names}, nil
}

// isIdentityProjection reports whether the items pass through exactly the
// tree's output columns in order.
func isIdentityProjection(items []logical.ProjItem, tree *logical.Expr) bool {
	outs := tree.OutputCols()
	if len(items) != len(outs) {
		return false
	}
	for i, it := range items {
		ref, ok := it.E.(*scalar.ColRef)
		if !ok || ref.ID != outs[i] || it.Out != outs[i] {
			return false
		}
	}
	return true
}

// pinOrder ensures the tree's root fixes its output column order through an
// operator payload. Project, GroupBy and UnionAll do; everything else gets a
// pass-through Project on top.
func pinOrder(tree *logical.Expr, outs []scopeCol) *logical.Expr {
	switch tree.Op {
	case logical.OpProject, logical.OpGroupBy, logical.OpUnionAll:
		return tree
	}
	items := make([]logical.ProjItem, len(outs))
	for i, oc := range outs {
		items[i] = logical.ProjItem{Out: oc.id, E: &scalar.ColRef{ID: oc.id}}
	}
	return &logical.Expr{Op: logical.OpProject, Children: []*logical.Expr{tree}, Projs: items}
}

// scopeCol is one visible column during binding.
type scopeCol struct {
	qual string // table alias, possibly empty
	name string
	id   scalar.ColumnID
}

// scope is an ordered list of visible columns with an optional outer scope
// for correlated EXISTS predicates.
type scope struct {
	cols  []scopeCol
	outer *scope
}

func (s *scope) resolve(qual, name string) (scalar.ColumnID, error) {
	var found []scalar.ColumnID
	for _, c := range s.cols {
		if c.name != name {
			continue
		}
		if qual != "" && c.qual != qual {
			continue
		}
		found = append(found, c.id)
	}
	switch len(found) {
	case 1:
		return found[0], nil
	case 0:
		if s.outer != nil {
			return s.outer.resolve(qual, name)
		}
		if qual != "" {
			return 0, fmt.Errorf("bind: column %s.%s does not exist", qual, name)
		}
		return 0, fmt.Errorf("bind: column %s does not exist", name)
	default:
		return 0, fmt.Errorf("bind: column reference %q is ambiguous", name)
	}
}

type binder struct {
	md *logical.Metadata
}

// bindStmt binds a statement, returning the tree and its ordered output
// columns. The tree's root fixes the output order (Project, GroupBy over a
// Project, Sort or Limit above one).
func (b *binder) bindStmt(stmt sql.Stmt, outer *scope) (*logical.Expr, []scopeCol, error) {
	switch t := stmt.(type) {
	case *sql.Select:
		return b.bindSelect(t, outer)
	case *sql.SetOp:
		return b.bindSetOp(t, outer)
	default:
		return nil, nil, fmt.Errorf("bind: unsupported statement type %T", stmt)
	}
}

func (b *binder) bindSetOp(s *sql.SetOp, outer *scope) (*logical.Expr, []scopeCol, error) {
	lt, lo, err := b.bindStmt(s.Left, outer)
	if err != nil {
		return nil, nil, err
	}
	rt, ro, err := b.bindStmt(s.Right, outer)
	if err != nil {
		return nil, nil, err
	}
	if len(lo) != len(ro) {
		return nil, nil, fmt.Errorf("bind: UNION ALL inputs have %d and %d columns", len(lo), len(ro))
	}
	outCols := make([]scalar.ColumnID, len(lo))
	inCols := [][]scalar.ColumnID{make([]scalar.ColumnID, len(lo)), make([]scalar.ColumnID, len(lo))}
	outs := make([]scopeCol, len(lo))
	for i := range lo {
		id := b.md.AddColumn(logical.ColumnMeta{Name: lo[i].name, Type: b.md.Column(lo[i].id).Type})
		outCols[i] = id
		inCols[0][i] = lo[i].id
		inCols[1][i] = ro[i].id
		outs[i] = scopeCol{name: lo[i].name, id: id}
	}
	tree := &logical.Expr{
		Op: logical.OpUnionAll, Children: []*logical.Expr{lt, rt},
		OutCols: outCols, InputCols: inCols,
	}
	return tree, outs, nil
}

func (b *binder) bindSelect(s *sql.Select, outer *scope) (*logical.Expr, []scopeCol, error) {
	tree, sc, err := b.bindFrom(s.From)
	if err != nil {
		return nil, nil, err
	}
	sc.outer = outer

	// WHERE: plain conjuncts become a Select; EXISTS / NOT EXISTS conjuncts
	// become semi / anti joins.
	if s.Where != nil {
		tree, err = b.bindWhere(tree, sc, s.Where)
		if err != nil {
			return nil, nil, err
		}
	}

	// Aggregation.
	hasAgg := containsAggregate(s.Having)
	for _, item := range s.Items {
		if _, ok := item.E.(*sql.CallExpr); ok {
			hasAgg = true
		}
	}
	if s.Having != nil && len(s.GroupBy) == 0 && !hasAgg {
		return nil, nil, fmt.Errorf("bind: HAVING requires GROUP BY or aggregates")
	}
	aggOuts := make(map[int]scalar.ColumnID) // select-item index -> agg output
	if len(s.GroupBy) > 0 || hasAgg {
		if s.Star {
			return nil, nil, fmt.Errorf("bind: SELECT * cannot be combined with GROUP BY or aggregates")
		}
		var groupCols []scalar.ColumnID
		groupSet := make(scalar.ColSet)
		for _, g := range s.GroupBy {
			id, err := b.bindIdent(g, sc)
			if err != nil {
				return nil, nil, err
			}
			groupCols = append(groupCols, id)
			groupSet.Add(id)
		}
		var aggs []scalar.Agg
		for i, item := range s.Items {
			call, ok := item.E.(*sql.CallExpr)
			if !ok {
				e, err := b.bindExpr(item.E, sc)
				if err != nil {
					return nil, nil, err
				}
				if !scalar.ReferencedCols(e).SubsetOf(groupSet) {
					return nil, nil, fmt.Errorf("bind: select item %d must be an aggregate or reference only GROUP BY columns", i+1)
				}
				continue
			}
			ag, err := b.bindAgg(call, sc)
			if err != nil {
				return nil, nil, err
			}
			aggs = append(aggs, ag)
			aggOuts[i] = ag.Out
		}
		var having scalar.Expr
		if s.Having != nil {
			// HAVING may reference aggregates (reusing select-list ones or
			// adding new) and grouping columns.
			var err error
			having, err = b.bindHaving(s.Having, sc, groupSet, &aggs)
			if err != nil {
				return nil, nil, err
			}
		}
		tree = &logical.Expr{
			Op: logical.OpGroupBy, Children: []*logical.Expr{tree},
			GroupCols: groupCols, Aggs: aggs,
		}
		if having != nil {
			tree = &logical.Expr{Op: logical.OpSelect, Children: []*logical.Expr{tree}, Filter: having}
		}
	}

	// Root projection fixes output order and names.
	var items []logical.ProjItem
	var outs []scopeCol
	if s.Star {
		for _, c := range sc.cols {
			items = append(items, logical.ProjItem{Out: c.id, E: &scalar.ColRef{ID: c.id}})
			outs = append(outs, scopeCol{name: c.name, id: c.id})
		}
	} else {
		for i, item := range s.Items {
			var e scalar.Expr
			if aggID, ok := aggOuts[i]; ok {
				e = &scalar.ColRef{ID: aggID}
			} else {
				var err error
				e, err = b.bindExpr(item.E, sc)
				if err != nil {
					return nil, nil, err
				}
			}
			name := item.Alias
			if name == "" {
				if id, ok := item.E.(*sql.Ident); ok {
					name = id.Name
				} else {
					name = fmt.Sprintf("col%d", i+1)
				}
			}
			var out scalar.ColumnID
			if ref, ok := e.(*scalar.ColRef); ok {
				out = ref.ID
			} else {
				out = b.md.AddColumn(logical.ColumnMeta{Name: name, Type: b.typeOf(e)})
			}
			items = append(items, logical.ProjItem{Out: out, E: e})
			outs = append(outs, scopeCol{name: name, id: out})
		}
	}
	// Deduplicate projection outputs: the same column selected twice must
	// get a distinct output id to keep ids unique per operator.
	seen := make(scalar.ColSet)
	for i := range items {
		if seen.Contains(items[i].Out) {
			fresh := b.md.AddColumn(logical.ColumnMeta{Name: outs[i].name, Type: b.md.Column(items[i].Out).Type})
			items[i] = logical.ProjItem{Out: fresh, E: items[i].E}
			outs[i].id = fresh
		}
		seen.Add(items[i].Out)
	}
	// Skip identity projections (the select list passes the operator's
	// output through unchanged, as "SELECT *" does). This matters for rule
	// testing: an interposed no-op Project would hide shapes like
	// Select(Join) from rule patterns after a SQL round trip.
	if !isIdentityProjection(items, tree) {
		tree = &logical.Expr{Op: logical.OpProject, Children: []*logical.Expr{tree}, Projs: items}
	}
	// SELECT DISTINCT deduplicates the projected output: a GroupBy over all
	// output columns with no aggregates.
	if s.Distinct {
		var gc []scalar.ColumnID
		for _, oc := range outs {
			gc = append(gc, oc.id)
		}
		tree = &logical.Expr{Op: logical.OpGroupBy, Children: []*logical.Expr{tree}, GroupCols: gc}
	}

	// ORDER BY and LIMIT apply to the projected output; pin the column
	// order below them (see Bind) since they pass their child layout
	// through.
	if len(s.OrderBy) > 0 || s.Limit != nil {
		tree = pinOrder(tree, outs)
	}
	if len(s.OrderBy) > 0 {
		outScope := &scope{cols: outs}
		var keys []logical.SortKey
		for _, o := range s.OrderBy {
			id, err := b.bindIdent(o.E, outScope)
			if err != nil {
				return nil, nil, err
			}
			keys = append(keys, logical.SortKey{Col: id, Desc: o.Desc})
		}
		tree = &logical.Expr{Op: logical.OpSort, Children: []*logical.Expr{tree}, Keys: keys}
	}
	if s.Limit != nil {
		tree = &logical.Expr{Op: logical.OpLimit, Children: []*logical.Expr{tree}, N: *s.Limit}
	}
	return tree, outs, nil
}

func (b *binder) bindFrom(f sql.FromItem) (*logical.Expr, *scope, error) {
	switch t := f.(type) {
	case *sql.TableRef:
		get, err := b.md.AddTable(t.Name)
		if err != nil {
			return nil, nil, err
		}
		alias := t.Alias
		if alias == "" {
			alias = t.Name
		}
		tbl, _ := b.md.Catalog().Table(t.Name)
		sc := &scope{}
		for i, col := range tbl.Columns {
			sc.cols = append(sc.cols, scopeCol{qual: alias, name: col.Name, id: get.Cols[i]})
		}
		return get, sc, nil
	case *sql.Derived:
		tree, outs, err := b.bindStmt(t.Q, nil)
		if err != nil {
			return nil, nil, err
		}
		sc := &scope{}
		for _, oc := range outs {
			sc.cols = append(sc.cols, scopeCol{qual: t.Alias, name: oc.name, id: oc.id})
		}
		return tree, sc, nil
	case *sql.JoinRef:
		lt, ls, err := b.bindFrom(t.L)
		if err != nil {
			return nil, nil, err
		}
		rt, rs, err := b.bindFrom(t.R)
		if err != nil {
			return nil, nil, err
		}
		sc := &scope{cols: append(append([]scopeCol(nil), ls.cols...), rs.cols...)}
		on, err := b.bindExpr(t.On, sc)
		if err != nil {
			return nil, nil, err
		}
		op := logical.OpJoin
		if t.Kind == sql.JoinLeftOuter {
			op = logical.OpLeftJoin
		}
		return &logical.Expr{Op: op, Children: []*logical.Expr{lt, rt}, On: on}, sc, nil
	default:
		return nil, nil, fmt.Errorf("bind: unsupported FROM item %T", f)
	}
}

// bindWhere splits the predicate's top-level conjuncts into plain filters
// and EXISTS / NOT EXISTS terms.
func (b *binder) bindWhere(tree *logical.Expr, sc *scope, where sql.Expr) (*logical.Expr, error) {
	var plain []scalar.Expr
	var conjuncts []sql.Expr
	var flatten func(e sql.Expr)
	flatten = func(e sql.Expr) {
		if bin, ok := e.(*sql.BinExpr); ok && bin.Op == "AND" {
			flatten(bin.L)
			flatten(bin.R)
			return
		}
		conjuncts = append(conjuncts, e)
	}
	flatten(where)
	for _, c := range conjuncts {
		if ex, ok := c.(*sql.ExistsExpr); ok {
			var err error
			tree, err = b.bindExists(tree, sc, ex)
			if err != nil {
				return nil, err
			}
			continue
		}
		e, err := b.bindExpr(c, sc)
		if err != nil {
			return nil, err
		}
		plain = append(plain, e)
	}
	if len(plain) > 0 {
		tree = &logical.Expr{
			Op: logical.OpSelect, Children: []*logical.Expr{tree},
			Filter: scalar.MakeAnd(plain),
		}
	}
	return tree, nil
}

// bindExists turns an EXISTS subquery into a semi join (NOT EXISTS into an
// anti join). For a simple correlated subquery (a single SELECT whose
// correlation appears in its WHERE clause) the select list and grouping are
// irrelevant to existence and are ignored; the correlated conjuncts become
// the join predicate.
func (b *binder) bindExists(tree *logical.Expr, sc *scope, ex *sql.ExistsExpr) (*logical.Expr, error) {
	op := logical.OpSemiJoin
	if ex.Neg {
		op = logical.OpAntiJoin
	}
	sel, ok := ex.Q.(*sql.Select)
	if !ok {
		// Uncorrelated set operation: bind it whole; the join predicate is
		// TRUE (pure existence).
		inner, _, err := b.bindStmt(ex.Q, nil)
		if err != nil {
			return nil, err
		}
		return &logical.Expr{Op: op, Children: []*logical.Expr{tree, inner}, On: scalar.TrueExpr()}, nil
	}
	inner, innerScope, err := b.bindFrom(sel.From)
	if err != nil {
		return nil, err
	}
	innerCols := inner.OutputColSet()
	var innerConj, onConj []scalar.Expr
	if sel.Where != nil {
		innerScope.outer = sc
		var conjuncts []sql.Expr
		var flatten func(e sql.Expr)
		flatten = func(e sql.Expr) {
			if bin, ok := e.(*sql.BinExpr); ok && bin.Op == "AND" {
				flatten(bin.L)
				flatten(bin.R)
				return
			}
			conjuncts = append(conjuncts, e)
		}
		flatten(sel.Where)
		for _, c := range conjuncts {
			if _, nested := c.(*sql.ExistsExpr); nested {
				return nil, fmt.Errorf("bind: nested EXISTS inside EXISTS is not supported")
			}
			e, err := b.bindExpr(c, innerScope)
			if err != nil {
				return nil, err
			}
			if scalar.ReferencedCols(e).SubsetOf(innerCols) {
				innerConj = append(innerConj, e)
			} else {
				onConj = append(onConj, e)
			}
		}
	}
	if len(innerConj) > 0 {
		inner = &logical.Expr{
			Op: logical.OpSelect, Children: []*logical.Expr{inner},
			Filter: scalar.MakeAnd(innerConj),
		}
	}
	return &logical.Expr{
		Op: op, Children: []*logical.Expr{tree, inner}, On: scalar.MakeAnd(onConj),
	}, nil
}

func (b *binder) bindIdent(e sql.Expr, sc *scope) (scalar.ColumnID, error) {
	id, ok := e.(*sql.Ident)
	if !ok {
		return 0, fmt.Errorf("bind: expected a column reference, found %s", sql.FormatExpr(e))
	}
	return sc.resolve(id.Qual, id.Name)
}

func (b *binder) bindAgg(call *sql.CallExpr, sc *scope) (scalar.Agg, error) {
	var op scalar.AggOp
	switch call.Name {
	case "COUNT":
		if call.Star {
			op = scalar.AggCountStar
		} else {
			op = scalar.AggCount
		}
	case "SUM":
		op = scalar.AggSum
	case "MIN":
		op = scalar.AggMin
	case "MAX":
		op = scalar.AggMax
	case "AVG":
		op = scalar.AggAvg
	default:
		return scalar.Agg{}, fmt.Errorf("bind: unknown aggregate %q", call.Name)
	}
	var arg scalar.Expr
	if !call.Star {
		var err error
		arg, err = b.bindExpr(call.Arg, sc)
		if err != nil {
			return scalar.Agg{}, err
		}
	}
	typ := datum.TypeInt
	switch op {
	case scalar.AggAvg:
		typ = datum.TypeFloat
	case scalar.AggSum, scalar.AggMin, scalar.AggMax:
		typ = b.typeOf(arg)
	}
	out := b.md.AddColumn(logical.ColumnMeta{Name: "agg", Type: typ})
	return scalar.Agg{Op: op, Arg: arg, Out: out}, nil
}

func (b *binder) bindExpr(e sql.Expr, sc *scope) (scalar.Expr, error) {
	switch t := e.(type) {
	case *sql.Ident:
		id, err := sc.resolve(t.Qual, t.Name)
		if err != nil {
			return nil, err
		}
		return &scalar.ColRef{ID: id}, nil
	case *sql.IntLit:
		return &scalar.Const{D: datum.NewInt(t.V)}, nil
	case *sql.FloatLit:
		return &scalar.Const{D: datum.NewFloat(t.V)}, nil
	case *sql.StrLit:
		return &scalar.Const{D: datum.NewString(t.V)}, nil
	case *sql.BoolLit:
		return &scalar.Const{D: datum.NewBool(t.V)}, nil
	case *sql.NullLit:
		return &scalar.Const{D: datum.Null}, nil
	case *sql.NotExpr:
		kid, err := b.bindExpr(t.E, sc)
		if err != nil {
			return nil, err
		}
		return &scalar.Not{Kid: kid}, nil
	case *sql.IsNullExpr:
		kid, err := b.bindExpr(t.E, sc)
		if err != nil {
			return nil, err
		}
		if t.Neg {
			return &scalar.Not{Kid: &scalar.IsNull{Kid: kid}}, nil
		}
		return &scalar.IsNull{Kid: kid}, nil
	case *sql.BinExpr:
		l, err := b.bindExpr(t.L, sc)
		if err != nil {
			return nil, err
		}
		r, err := b.bindExpr(t.R, sc)
		if err != nil {
			return nil, err
		}
		switch t.Op {
		case "AND":
			return &scalar.And{Kids: []scalar.Expr{l, r}}, nil
		case "OR":
			return &scalar.Or{Kids: []scalar.Expr{l, r}}, nil
		case "=":
			return &scalar.Cmp{Op: scalar.CmpEQ, L: l, R: r}, nil
		case "<>":
			return &scalar.Cmp{Op: scalar.CmpNE, L: l, R: r}, nil
		case "<":
			return &scalar.Cmp{Op: scalar.CmpLT, L: l, R: r}, nil
		case "<=":
			return &scalar.Cmp{Op: scalar.CmpLE, L: l, R: r}, nil
		case ">":
			return &scalar.Cmp{Op: scalar.CmpGT, L: l, R: r}, nil
		case ">=":
			return &scalar.Cmp{Op: scalar.CmpGE, L: l, R: r}, nil
		case "+":
			return &scalar.Arith{Op: scalar.ArithAdd, L: l, R: r}, nil
		case "-":
			return &scalar.Arith{Op: scalar.ArithSub, L: l, R: r}, nil
		case "*":
			return &scalar.Arith{Op: scalar.ArithMul, L: l, R: r}, nil
		default:
			return nil, fmt.Errorf("bind: unsupported operator %q", t.Op)
		}
	case *sql.InExpr:
		kid, err := b.bindExpr(t.E, sc)
		if err != nil {
			return nil, err
		}
		var alts []scalar.Expr
		for _, item := range t.List {
			v, err := b.bindExpr(item, sc)
			if err != nil {
				return nil, err
			}
			alts = append(alts, &scalar.Cmp{Op: scalar.CmpEQ, L: kid, R: v})
		}
		var out scalar.Expr = &scalar.Or{Kids: alts}
		if t.Neg {
			out = &scalar.Not{Kid: out}
		}
		return out, nil
	case *sql.BetweenExpr:
		kid, err := b.bindExpr(t.E, sc)
		if err != nil {
			return nil, err
		}
		lo, err := b.bindExpr(t.Lo, sc)
		if err != nil {
			return nil, err
		}
		hi, err := b.bindExpr(t.Hi, sc)
		if err != nil {
			return nil, err
		}
		return &scalar.And{Kids: []scalar.Expr{
			&scalar.Cmp{Op: scalar.CmpGE, L: kid, R: lo},
			&scalar.Cmp{Op: scalar.CmpLE, L: kid, R: hi},
		}}, nil
	case *sql.CallExpr:
		return nil, fmt.Errorf("bind: aggregate %s not allowed here", t.Name)
	case *sql.ExistsExpr:
		return nil, fmt.Errorf("bind: EXISTS is only supported as a top-level WHERE conjunct")
	default:
		return nil, fmt.Errorf("bind: unsupported expression %T", e)
	}
}

// typeOf infers the result type of a bound scalar expression.
func (b *binder) typeOf(e scalar.Expr) datum.Type {
	switch t := e.(type) {
	case *scalar.ColRef:
		return b.md.Column(t.ID).Type
	case *scalar.Const:
		return t.D.TypeOf()
	case *scalar.Cmp, *scalar.And, *scalar.Or, *scalar.Not, *scalar.IsNull:
		return datum.TypeBool
	case *scalar.Arith:
		l, r := b.typeOf(t.L), b.typeOf(t.R)
		if l == datum.TypeInt && r == datum.TypeInt {
			return datum.TypeInt
		}
		return datum.TypeFloat
	default:
		return datum.TypeUnknown
	}
}

// containsAggregate reports whether the AST expression contains an aggregate
// call.
func containsAggregate(e sql.Expr) bool {
	switch t := e.(type) {
	case nil:
		return false
	case *sql.CallExpr:
		return true
	case *sql.BinExpr:
		return containsAggregate(t.L) || containsAggregate(t.R)
	case *sql.NotExpr:
		return containsAggregate(t.E)
	case *sql.IsNullExpr:
		return containsAggregate(t.E)
	case *sql.InExpr:
		if containsAggregate(t.E) {
			return true
		}
		for _, item := range t.List {
			if containsAggregate(item) {
				return true
			}
		}
		return false
	case *sql.BetweenExpr:
		return containsAggregate(t.E) || containsAggregate(t.Lo) || containsAggregate(t.Hi)
	default:
		return false
	}
}

// bindHaving binds a HAVING predicate: aggregate calls become references to
// aggregation outputs (reusing an existing identical aggregate or appending
// a new one), and plain column references must be grouping columns.
func (b *binder) bindHaving(e sql.Expr, sc *scope, groupSet scalar.ColSet, aggs *[]scalar.Agg) (scalar.Expr, error) {
	if call, ok := e.(*sql.CallExpr); ok {
		ag, err := b.bindAgg(call, sc)
		if err != nil {
			return nil, err
		}
		for _, existing := range *aggs {
			if existing.Hash() == ag.Hash() || sameAggregate(existing, ag) {
				return &scalar.ColRef{ID: existing.Out}, nil
			}
		}
		*aggs = append(*aggs, ag)
		return &scalar.ColRef{ID: ag.Out}, nil
	}
	switch t := e.(type) {
	case *sql.BinExpr:
		l, err := b.bindHaving(t.L, sc, groupSet, aggs)
		if err != nil {
			return nil, err
		}
		r, err := b.bindHaving(t.R, sc, groupSet, aggs)
		if err != nil {
			return nil, err
		}
		return b.combineBin(t.Op, l, r)
	case *sql.NotExpr:
		kid, err := b.bindHaving(t.E, sc, groupSet, aggs)
		if err != nil {
			return nil, err
		}
		return &scalar.Not{Kid: kid}, nil
	case *sql.IsNullExpr:
		kid, err := b.bindHaving(t.E, sc, groupSet, aggs)
		if err != nil {
			return nil, err
		}
		if t.Neg {
			return &scalar.Not{Kid: &scalar.IsNull{Kid: kid}}, nil
		}
		return &scalar.IsNull{Kid: kid}, nil
	default:
		out, err := b.bindExpr(e, sc)
		if err != nil {
			return nil, err
		}
		if !scalar.ReferencedCols(out).SubsetOf(groupSet) {
			return nil, fmt.Errorf("bind: HAVING may only reference aggregates and GROUP BY columns")
		}
		return out, nil
	}
}

// sameAggregate reports whether two aggregates compute the same value
// (ignoring their output ids).
func sameAggregate(a, b scalar.Agg) bool {
	if a.Op != b.Op {
		return false
	}
	if a.Arg == nil || b.Arg == nil {
		return a.Arg == nil && b.Arg == nil
	}
	return a.Arg.Hash() == b.Arg.Hash()
}

// combineBin maps a SQL binary operator over two bound operands.
func (b *binder) combineBin(op string, l, r scalar.Expr) (scalar.Expr, error) {
	switch op {
	case "AND":
		return &scalar.And{Kids: []scalar.Expr{l, r}}, nil
	case "OR":
		return &scalar.Or{Kids: []scalar.Expr{l, r}}, nil
	case "=":
		return &scalar.Cmp{Op: scalar.CmpEQ, L: l, R: r}, nil
	case "<>":
		return &scalar.Cmp{Op: scalar.CmpNE, L: l, R: r}, nil
	case "<":
		return &scalar.Cmp{Op: scalar.CmpLT, L: l, R: r}, nil
	case "<=":
		return &scalar.Cmp{Op: scalar.CmpLE, L: l, R: r}, nil
	case ">":
		return &scalar.Cmp{Op: scalar.CmpGT, L: l, R: r}, nil
	case ">=":
		return &scalar.Cmp{Op: scalar.CmpGE, L: l, R: r}, nil
	case "+":
		return &scalar.Arith{Op: scalar.ArithAdd, L: l, R: r}, nil
	case "-":
		return &scalar.Arith{Op: scalar.ArithSub, L: l, R: r}, nil
	case "*":
		return &scalar.Arith{Op: scalar.ArithMul, L: l, R: r}, nil
	default:
		return nil, fmt.Errorf("bind: unsupported operator %q", op)
	}
}
