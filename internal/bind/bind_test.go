package bind

import (
	"strings"
	"testing"

	"qtrtest/internal/catalog"
	"qtrtest/internal/logical"
	"qtrtest/internal/scalar"
)

func testCatalog() *catalog.Catalog {
	return catalog.LoadTPCH(catalog.DefaultTPCHConfig())
}

func mustBind(t *testing.T, q string) *Bound {
	t.Helper()
	b, err := BindSQL(q, testCatalog())
	if err != nil {
		t.Fatalf("BindSQL(%q): %v", q, err)
	}
	return b
}

func ops(e *logical.Expr) []logical.Op {
	var out []logical.Op
	e.Walk(func(x *logical.Expr) { out = append(out, x.Op) })
	return out
}

func TestBindSimpleSelect(t *testing.T) {
	b := mustBind(t, "SELECT n_name FROM nation WHERE n_regionkey = 2")
	got := ops(b.Tree)
	want := []logical.Op{logical.OpProject, logical.OpSelect, logical.OpGet}
	if len(got) != len(want) {
		t.Fatalf("ops = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ops = %v, want %v", got, want)
		}
	}
	if len(b.OutNames) != 1 || b.OutNames[0] != "n_name" {
		t.Errorf("out names: %v", b.OutNames)
	}
}

func TestBindStarSkipsIdentityProject(t *testing.T) {
	// SELECT * over a WHERE must not interpose a Project between Select and
	// the join — rule patterns depend on it. But the ROOT must still pin
	// column order, so the topmost node is a Project.
	b := mustBind(t, "SELECT * FROM (SELECT * FROM nation JOIN region ON n_regionkey = r_regionkey) AS t WHERE n_nationkey > 3")
	got := ops(b.Tree)
	want := []logical.Op{logical.OpProject, logical.OpSelect, logical.OpJoin, logical.OpGet, logical.OpGet}
	if len(got) != len(want) {
		t.Fatalf("ops = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ops = %v, want %v", got, want)
		}
	}
}

func TestBindSelfJoinDistinctColumns(t *testing.T) {
	b := mustBind(t, "SELECT t1.n_name, t2.n_name FROM nation AS t1 JOIN nation AS t2 ON t1.n_nationkey = t2.n_regionkey")
	proj := b.Tree
	if proj.Op != logical.OpProject {
		t.Fatal("root should be a project")
	}
	if proj.Projs[0].Out == proj.Projs[1].Out {
		t.Error("self-join columns must get distinct output ids")
	}
}

func TestBindAmbiguousColumn(t *testing.T) {
	if _, err := BindSQL("SELECT n_name FROM nation AS a JOIN nation AS b ON a.n_nationkey = b.n_nationkey", testCatalog()); err == nil {
		t.Error("ambiguous column must error")
	}
	if _, err := BindSQL("SELECT nope FROM nation", testCatalog()); err == nil {
		t.Error("unknown column must error")
	}
	if _, err := BindSQL("SELECT n_name FROM nope", testCatalog()); err == nil {
		t.Error("unknown table must error")
	}
}

func TestBindGroupBy(t *testing.T) {
	b := mustBind(t, "SELECT n_regionkey, COUNT(*) AS cnt, MAX(n_nationkey) AS m FROM nation GROUP BY n_regionkey")
	var gb *logical.Expr
	b.Tree.Walk(func(e *logical.Expr) {
		if e.Op == logical.OpGroupBy {
			gb = e
		}
	})
	if gb == nil {
		t.Fatal("no GroupBy bound")
	}
	if len(gb.GroupCols) != 1 || len(gb.Aggs) != 2 {
		t.Errorf("groupby shape: %d cols, %d aggs", len(gb.GroupCols), len(gb.Aggs))
	}
	if b.OutNames[1] != "cnt" || b.OutNames[2] != "m" {
		t.Errorf("out names: %v", b.OutNames)
	}
}

func TestBindGroupByValidation(t *testing.T) {
	if _, err := BindSQL("SELECT n_name FROM nation GROUP BY n_regionkey", testCatalog()); err == nil {
		t.Error("non-grouped column in select list must error")
	}
	if _, err := BindSQL("SELECT * FROM nation GROUP BY n_regionkey", testCatalog()); err == nil {
		t.Error("SELECT * with GROUP BY must error")
	}
	if _, err := BindSQL("SELECT COUNT(*) AS c FROM nation WHERE COUNT(*) > 1", testCatalog()); err == nil {
		t.Error("aggregate in WHERE must error")
	}
}

func TestBindExistsToSemiJoin(t *testing.T) {
	b := mustBind(t, "SELECT o_orderkey FROM orders WHERE EXISTS (SELECT 1 AS one FROM lineitem WHERE l_orderkey = o_orderkey AND l_quantity > 10)")
	var semi *logical.Expr
	b.Tree.Walk(func(e *logical.Expr) {
		if e.Op == logical.OpSemiJoin {
			semi = e
		}
	})
	if semi == nil {
		t.Fatal("EXISTS did not become a semi join")
	}
	// The correlated conjunct becomes the join predicate; the local one
	// stays below as a Select on the inner side.
	if semi.Children[1].Op != logical.OpSelect {
		t.Errorf("inner side should keep its local filter, got %s", semi.Children[1].Op)
	}
}

func TestBindNotExistsToAntiJoin(t *testing.T) {
	b := mustBind(t, "SELECT c_name FROM customer WHERE NOT EXISTS (SELECT 1 AS one FROM orders WHERE o_custkey = c_custkey)")
	found := false
	b.Tree.Walk(func(e *logical.Expr) {
		if e.Op == logical.OpAntiJoin {
			found = true
		}
	})
	if !found {
		t.Error("NOT EXISTS did not become an anti join")
	}
}

func TestBindUnionAll(t *testing.T) {
	b := mustBind(t, "SELECT n_name FROM nation UNION ALL SELECT r_name FROM region")
	if b.Tree.Op != logical.OpUnionAll {
		t.Fatalf("root = %s", b.Tree.Op)
	}
	if len(b.Tree.OutCols) != 1 || len(b.Tree.InputCols) != 2 {
		t.Error("union col mapping wrong")
	}
	if _, err := BindSQL("SELECT n_name FROM nation UNION ALL SELECT r_regionkey, r_name FROM region", testCatalog()); err == nil {
		t.Error("union arity mismatch must error")
	}
}

func TestBindOrderByLimitPinsOrder(t *testing.T) {
	b := mustBind(t, "SELECT * FROM nation WHERE n_nationkey > 1 ORDER BY n_name DESC LIMIT 3")
	got := ops(b.Tree)
	want := []logical.Op{logical.OpLimit, logical.OpSort, logical.OpProject, logical.OpSelect, logical.OpGet}
	if len(got) != len(want) {
		t.Fatalf("ops = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ops = %v, want %v", got, want)
		}
	}
	if b.Tree.Children[0].Keys[0].Desc != true {
		t.Error("sort key direction lost")
	}
}

func TestBindComputedProjection(t *testing.T) {
	b := mustBind(t, "SELECT n_nationkey + 1 AS nk FROM nation")
	proj := b.Tree
	if proj.Op != logical.OpProject {
		t.Fatal("root must be project")
	}
	if b.OutNames[0] != "nk" {
		t.Errorf("alias lost: %v", b.OutNames)
	}
	md := b.MD
	if md.Column(proj.Projs[0].Out).Name != "nk" {
		t.Error("computed column metadata name wrong")
	}
}

func TestBindDuplicateSelectItem(t *testing.T) {
	b := mustBind(t, "SELECT n_name, n_name FROM nation")
	proj := b.Tree
	if proj.Projs[0].Out == proj.Projs[1].Out {
		t.Error("duplicate select items must get distinct output ids")
	}
}

func TestBindErrorMessages(t *testing.T) {
	_, err := BindSQL("SELECT x.n_name FROM nation", testCatalog())
	if err == nil || !strings.Contains(err.Error(), "does not exist") {
		t.Errorf("qualified miss: %v", err)
	}
}

func TestBindHaving(t *testing.T) {
	// HAVING reusing the select-list aggregate.
	b := mustBind(t, "SELECT c_nationkey, COUNT(*) AS n FROM customer GROUP BY c_nationkey HAVING COUNT(*) > 4")
	var gb, sel *logical.Expr
	b.Tree.Walk(func(e *logical.Expr) {
		switch e.Op {
		case logical.OpGroupBy:
			gb = e
		case logical.OpSelect:
			sel = e
		}
	})
	if gb == nil || sel == nil {
		t.Fatal("HAVING should bind to Select over GroupBy")
	}
	if len(gb.Aggs) != 1 {
		t.Errorf("HAVING should reuse the select-list COUNT(*), aggs = %d", len(gb.Aggs))
	}
	// HAVING introducing a new aggregate.
	b2 := mustBind(t, "SELECT c_nationkey FROM customer GROUP BY c_nationkey HAVING MAX(c_acctbal) > 0")
	var gb2 *logical.Expr
	b2.Tree.Walk(func(e *logical.Expr) {
		if e.Op == logical.OpGroupBy {
			gb2 = e
		}
	})
	if gb2 == nil || len(gb2.Aggs) != 1 {
		t.Fatal("HAVING must add its aggregate to the GroupBy")
	}
	// Output must still be just the selected column.
	if len(b2.OutNames) != 1 || b2.OutNames[0] != "c_nationkey" {
		t.Errorf("out names: %v", b2.OutNames)
	}
	// HAVING over a non-grouped plain column must fail.
	if _, err := BindSQL("SELECT c_nationkey, COUNT(*) AS n FROM customer GROUP BY c_nationkey HAVING c_name = 'x'", testCatalog()); err == nil {
		t.Error("HAVING on a non-grouped column must error")
	}
	if _, err := BindSQL("SELECT c_name FROM customer HAVING c_name = 'x'", testCatalog()); err == nil {
		t.Error("HAVING without aggregation must error")
	}
}

func TestBindInList(t *testing.T) {
	b := mustBind(t, "SELECT n_name FROM nation WHERE n_regionkey IN (0, 2, 4)")
	if b.Tree.Op != logical.OpProject {
		t.Fatal("root")
	}
	sel := b.Tree.Children[0]
	if sel.Op != logical.OpSelect {
		t.Fatalf("expected Select, got %s", sel.Op)
	}
	or, ok := sel.Filter.(*scalar.Or)
	if !ok || len(or.Kids) != 3 {
		t.Fatalf("IN should bind to a 3-way OR, got %T", sel.Filter)
	}
	// NOT IN becomes a negated OR.
	b2 := mustBind(t, "SELECT n_name FROM nation WHERE n_regionkey NOT IN (0, 2)")
	sel2 := b2.Tree.Children[0]
	if _, ok := sel2.Filter.(*scalar.Not); !ok {
		t.Fatalf("NOT IN should bind to NOT(OR), got %T", sel2.Filter)
	}
}

func TestBindBetween(t *testing.T) {
	b := mustBind(t, "SELECT o_orderkey FROM orders WHERE o_totalprice BETWEEN 1000 AND 2000")
	sel := b.Tree.Children[0]
	and, ok := sel.Filter.(*scalar.And)
	if !ok || len(and.Kids) != 2 {
		t.Fatalf("BETWEEN should bind to a 2-way AND, got %T", sel.Filter)
	}
}

func TestBindSelectDistinct(t *testing.T) {
	b := mustBind(t, "SELECT DISTINCT c_mktsegment FROM customer")
	if b.Tree.Op != logical.OpGroupBy {
		t.Fatalf("DISTINCT should bind to a GroupBy root, got %s", b.Tree.Op)
	}
	if len(b.Tree.GroupCols) != 1 || len(b.Tree.Aggs) != 0 {
		t.Errorf("distinct groupby shape: %d cols %d aggs", len(b.Tree.GroupCols), len(b.Tree.Aggs))
	}
	// DISTINCT with ORDER BY keeps both.
	b2 := mustBind(t, "SELECT DISTINCT n_regionkey FROM nation ORDER BY n_regionkey")
	if b2.Tree.Op != logical.OpSort || b2.Tree.Children[0].Op != logical.OpGroupBy {
		t.Errorf("ops = %v", ops(b2.Tree))
	}
}
