package mutate

import (
	"bytes"
	"testing"

	"qtrtest/internal/catalog"
)

func testTPCH() *catalog.Catalog {
	// A scaled-down instance keeps the full campaign fast; the catches below
	// were also verified at ScaleRows 1.0.
	return catalog.LoadTPCH(catalog.TPCHConfig{ScaleRows: 0.1, Seed: 1})
}

// TestEveryMutantCaughtByFullSuite is the oracle-validation criterion: for
// every shipped mutant, the uncompressed (BASELINE) suite over the mutated
// rule's own target must report a mismatch — and here the compressed suites
// do too.
func TestEveryMutantCaughtByFullSuite(t *testing.T) {
	cat := testTPCH()
	score, err := Run(cat, Config{Seed: 1, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(score.Results) != len(Mutants()) {
		t.Fatalf("campaign ran %d mutants, want %d", len(score.Results), len(Mutants()))
	}
	for i := range score.Results {
		r := &score.Results[i]
		t.Run(string(r.Mutant.Kind), func(t *testing.T) {
			for _, a := range r.Algos {
				if !a.Caught {
					t.Errorf("%s suite missed the injected fault", a.Algo)
				} else if !a.OnTarget {
					t.Errorf("%s caught the fault only via another rule's target", a.Algo)
				}
			}
			if r.SQL == "" || r.BasePlan == "" || r.EdgePlan == "" {
				t.Error("caught mutant must carry plan-diff evidence (SQL, BasePlan, EdgePlan)")
			}
			if r.BasePlan == r.EdgePlan {
				t.Error("plan diff evidence shows identical plans")
			}
		})
	}
	if got := score.CaughtBy("BASELINE"); got != len(score.Results) {
		t.Errorf("mutation score BASELINE %d/%d, want full marks", got, len(score.Results))
	}
}

// TestCampaignDeterministicAcrossWorkers: the rendered report must be
// byte-identical for any worker count.
func TestCampaignDeterministicAcrossWorkers(t *testing.T) {
	cat := testTPCH()
	var want string
	for _, workers := range []int{1, 8} {
		score, err := Run(cat, Config{Seed: 1, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		score.Print(&buf, true)
		if want == "" {
			want = buf.String()
		} else if buf.String() != want {
			t.Fatalf("report differs between workers=1 and workers=%d:\n%s\n---\n%s",
				workers, want, buf.String())
		}
	}
}

// TestMutationSmoke is the CI smoke job: three cheap mutants on a small
// database, all three caught. It exercises the ordered oracle (flip-sort-dir
// is invisible to a multiset comparison), the LIMIT handling and the filter
// path in under a second.
func TestMutationSmoke(t *testing.T) {
	cat := catalog.LoadTPCH(catalog.TPCHConfig{ScaleRows: 0.1, Seed: 1})
	ms, err := ByKind(KindDropFilterConjunct, KindFlipSortDir, KindLimitOffByOne)
	if err != nil {
		t.Fatal(err)
	}
	score, err := Run(cat, Config{Seed: 1, Workers: 4, Mutants: ms})
	if err != nil {
		t.Fatal(err)
	}
	if got := score.CaughtBy("BASELINE"); got != 3 {
		var buf bytes.Buffer
		score.Print(&buf, false)
		t.Fatalf("smoke mutation score %d/3:\n%s", got, buf.String())
	}
}
