package mutate

import (
	"bytes"
	"testing"

	"qtrtest/internal/rescache"
)

// TestCacheDifferentialAcrossWorkers: the mutation campaign's rendered
// report — scores, caught-by tables, plan-diff evidence — must be
// byte-identical with the result cache on and off at every worker count.
// The campaign runs the same suite queries against every mutant registry,
// so the cache sees heavy cross-mutant base-plan overlap; none of that
// reuse may leak into what the report says.
func TestCacheDifferentialAcrossWorkers(t *testing.T) {
	cat := testTPCH()
	var want string
	for _, workers := range []int{1, 8} {
		for _, cached := range []bool{false, true} {
			cfg := Config{Seed: 1, Workers: workers}
			if cached {
				cfg.Cache = rescache.New(0)
			}
			score, err := Run(cat, cfg)
			if err != nil {
				t.Fatalf("workers=%d cached=%v: %v", workers, cached, err)
			}
			var buf bytes.Buffer
			score.Print(&buf, true)
			if want == "" {
				want = buf.String()
			} else if buf.String() != want {
				t.Fatalf("report differs at workers=%d cached=%v:\n--- want ---\n%s\n--- got ---\n%s",
					workers, cached, want, buf.String())
			}
			if cached && cfg.Cache.Stats().Hits == 0 {
				t.Errorf("workers=%d: cache saw zero hits across mutant registries", workers)
			}
		}
	}
}
