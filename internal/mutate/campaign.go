package mutate

import (
	"fmt"
	"io"
	"strings"

	"qtrtest/internal/catalog"
	"qtrtest/internal/core/suite"
	"qtrtest/internal/opt"
	"qtrtest/internal/rescache"
	"qtrtest/internal/rules"
)

// Config tunes a mutation campaign.
type Config struct {
	// K is the test-suite size per target (queries per rule).
	K int
	// Targets adds the first N exploration rules as extra singleton targets
	// beside the mutated rule itself, so that suite compression has queries
	// to share and the algorithms' suites can genuinely differ.
	Targets int
	// ExtraOps pads generated queries with extra random operators.
	ExtraOps int
	// Seed drives query generation (per-target seeding keeps the campaign
	// deterministic for any worker count).
	Seed int64
	// MaxTrials bounds per-query generation attempts.
	MaxTrials int
	// Workers bounds the worker pool used inside each mutant's pipeline;
	// mutants themselves run sequentially, so reports are byte-identical for
	// every worker count.
	Workers int
	// Mutants overrides the shipped catalog (nil means Mutants()).
	Mutants []Mutant
	// Cache, when non-nil, memoizes plan executions across the whole
	// campaign. One cache serves every mutant and every algorithm: a plan's
	// result depends only on (plan, catalog, caps, engine), not on which
	// registry produced it, and the three algorithms' suites overlap heavily
	// in the plans they execute. Scores are byte-identical with and without
	// it.
	Cache *rescache.Cache
	// Backend names an independent execution backend ("" disables it). When
	// set, every suite run additionally replays each base query there and
	// records cross-engine disagreements — an oracle that catches mutants
	// whose fault survives into both sides of the self-differential
	// comparison.
	Backend string
}

func (c *Config) setDefaults() {
	if c.K <= 0 {
		// Mutation campaigns want query diversity: aggregate and sort faults
		// are invisible on degenerate queries (single-row groups, wrapped
		// sorts), and at small k a seed can draw only degenerate queries for
		// a target. k=12 catches every shipped mutant across the seeds and
		// scales exercised in the tests.
		c.K = 12
	}
	if c.Targets < 0 {
		c.Targets = 0
	}
	if c.MaxTrials <= 0 {
		c.MaxTrials = 512
	}
	if c.Mutants == nil {
		c.Mutants = Mutants()
	}
}

// AlgoNames lists the suite-construction algorithms a campaign scores, in
// report order. BASELINE is the uncompressed suite; SMC and TOPK are the
// paper's compression algorithms.
var AlgoNames = []string{"BASELINE", "SMC", "TOPK"}

// AlgoScore records how one algorithm's suite fared against one mutant.
type AlgoScore struct {
	Algo string
	// Caught reports that running the suite produced at least one mismatch:
	// the injected bug was detected.
	Caught bool
	// OnTarget reports that a mismatch was attributed to the mutated rule's
	// own target (a bug can also surface through another rule's edges).
	OnTarget bool
	// Detail is the first mismatch's oracle diagnosis (empty if not caught).
	Detail           string
	PlanExecutions   int
	SkippedIdentical int
	Undetermined     int
	// BackendChecks and BackendDisagreements report the cross-engine oracle
	// (Config.Backend): base queries replayed on the independent backend and
	// how many of those replays disagreed with the mutated pipeline. A
	// disagreement counts as a catch even when no edge mismatched.
	BackendChecks        int
	BackendDisagreements int
}

// MutantResult is the outcome of running the full pipeline against one
// mutant.
type MutantResult struct {
	Mutant  Mutant
	Queries int
	Algos   []AlgoScore
	// SQL, BasePlan and EdgePlan carry the plan-diff evidence from the first
	// catching mismatch: the query, the (wrong) Plan(q) produced with the
	// mutated rule, and the Plan(q,¬R) it was compared against.
	SQL      string
	BasePlan string
	EdgePlan string
}

// Caught reports whether the named algorithm's suite caught the mutant.
func (r *MutantResult) Caught(algo string) bool {
	for _, a := range r.Algos {
		if a.Algo == algo {
			return a.Caught
		}
	}
	return false
}

// Score is the mutation-score report of a campaign: which injected bugs each
// algorithm's suite catches.
type Score struct {
	Results []MutantResult
}

// CaughtBy counts the mutants the named algorithm's suite caught.
func (s *Score) CaughtBy(algo string) int {
	n := 0
	for i := range s.Results {
		if s.Results[i].Caught(algo) {
			n++
		}
	}
	return n
}

// Print renders the mutation-score table; with diff=true it also prints the
// plan-diff evidence per caught mutant.
func (s *Score) Print(w io.Writer, diff bool) {
	fmt.Fprintf(w, "%-42s %-9s %-9s %-9s %s\n", "mutant", "BASELINE", "SMC", "TOPK", "first detection")
	mark := func(a AlgoScore) string {
		if !a.Caught {
			return "missed"
		}
		if a.OnTarget {
			return "caught"
		}
		return "caught*"
	}
	for i := range s.Results {
		r := &s.Results[i]
		detail := ""
		for _, a := range r.Algos {
			if a.Caught && detail == "" {
				detail = a.Detail
			}
		}
		fmt.Fprintf(w, "%-42s %-9s %-9s %-9s %s\n", r.Mutant.String(),
			mark(r.Algos[0]), mark(r.Algos[1]), mark(r.Algos[2]), detail)
		if diff && r.BasePlan != "" {
			fmt.Fprintf(w, "    query: %s\n", r.SQL)
			fmt.Fprintf(w, "    Plan(q) with mutated rule:\n%s", indent(r.BasePlan, "      "))
			if r.EdgePlan != "" {
				fmt.Fprintf(w, "    Plan(q,¬R):\n%s", indent(r.EdgePlan, "      "))
			}
		}
		for _, a := range r.Algos {
			if a.BackendDisagreements > 0 {
				fmt.Fprintf(w, "    %s: %d of %d backend cross-checks disagreed\n",
					a.Algo, a.BackendDisagreements, a.BackendChecks)
			}
		}
	}
	n := len(s.Results)
	fmt.Fprintf(w, "mutation score: BASELINE %d/%d, SMC %d/%d, TOPK %d/%d\n",
		s.CaughtBy("BASELINE"), n, s.CaughtBy("SMC"), n, s.CaughtBy("TOPK"), n)
}

func indent(s, prefix string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = prefix + l
	}
	return strings.Join(lines, "\n") + "\n"
}

// Run executes the mutation campaign: for every mutant, build an optimizer
// over the mutated registry, generate a suite (targets: the mutated rule
// plus cfg.Targets healthy exploration rules), compress it with each
// algorithm, execute each suite through Graph.Run, and record which
// algorithms' suites catch the injected bug. Mutants run sequentially so the
// report order is deterministic; all parallelism lives inside each mutant's
// generate/compress/execute pipeline, which is itself deterministic for any
// worker count.
func Run(cat *catalog.Catalog, cfg Config) (*Score, error) {
	cfg.setDefaults()
	score := &Score{}
	for _, m := range cfg.Mutants {
		res, err := runOne(cat, m, cfg)
		if err != nil {
			return nil, fmt.Errorf("mutate: %s: %w", m, err)
		}
		score.Results = append(score.Results, *res)
	}
	return score, nil
}

// targetsFor builds the campaign target list for one mutant: the mutated
// rule first, then the first cfg.Targets healthy exploration rules.
func targetsFor(m Mutant, n int) []suite.Target {
	targets := []suite.Target{{Rules: []rules.ID{m.Rule}}}
	for _, r := range rules.ExplorationRules() {
		if n <= 0 {
			break
		}
		if r.ID() == m.Rule {
			continue
		}
		targets = append(targets, suite.Target{Rules: []rules.ID{r.ID()}})
		n--
	}
	return targets
}

func runOne(cat *catalog.Catalog, m Mutant, cfg Config) (*MutantResult, error) {
	o := opt.New(m.Registry(), cat)
	g, err := suite.Generate(o, targetsFor(m, cfg.Targets), suite.GenConfig{
		K: cfg.K, Seed: cfg.Seed, ExtraOps: cfg.ExtraOps,
		MaxTrials: cfg.MaxTrials, Workers: cfg.Workers,
	})
	if err != nil {
		return nil, err
	}
	g.SetCache(cfg.Cache)
	if err := g.SetBackend(cfg.Backend); err != nil {
		return nil, err
	}
	res := &MutantResult{Mutant: m, Queries: len(g.Queries)}
	algos := []struct {
		name string
		fn   func() (*suite.Solution, error)
	}{
		{"BASELINE", g.Baseline},
		{"SMC", g.SetMultiCover},
		{"TOPK", g.TopKIndependent},
	}
	for _, a := range algos {
		sol, err := a.fn()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", a.name, err)
		}
		rep, err := g.Run(sol, o, cat)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", a.name, err)
		}
		as := AlgoScore{
			Algo:           a.name,
			PlanExecutions: rep.PlanExecutions, SkippedIdentical: rep.SkippedIdentical,
			Undetermined:  len(rep.Undetermined),
			BackendChecks: rep.BackendChecks, BackendDisagreements: len(rep.BackendDisagreements),
		}
		if len(rep.BackendDisagreements) > 0 {
			bd := &rep.BackendDisagreements[0]
			as.Caught = true
			as.Detail = fmt.Sprintf("backend cross-check: %s", bd.Detail)
			if res.BasePlan == "" && bd.Query.BasePlan != nil {
				res.SQL, res.BasePlan = bd.Query.SQL, bd.Query.BasePlan.String()
			}
		}
		if len(rep.Mismatches) > 0 {
			mm := &rep.Mismatches[0]
			as.Caught = true
			as.Detail = fmt.Sprintf("target %s: %s", mm.Target, mm.Detail)
			for i := range rep.Mismatches {
				if rep.Mismatches[i].Target.CoveredBy(rules.NewSet(m.Rule)) {
					as.OnTarget = true
					mm = &rep.Mismatches[i]
					break
				}
			}
			if res.BasePlan == "" {
				res.SQL, res.BasePlan, res.EdgePlan = mm.Query.SQL, mm.BasePlan, mm.EdgePlan
			}
		}
		res.Algos = append(res.Algos, as)
	}
	return res, nil
}
