package mutate

import (
	"strings"
	"testing"

	"qtrtest/internal/physical"
	"qtrtest/internal/rules"
)

func TestMutantsCoverDistinctKindsAndRules(t *testing.T) {
	ms := Mutants()
	if len(ms) < 6 {
		t.Fatalf("shipped mutants = %d, want at least 6 distinct kinds", len(ms))
	}
	kinds := map[Kind]bool{}
	ids := map[rules.ID]bool{}
	for _, m := range ms {
		if kinds[m.Kind] {
			t.Errorf("duplicate mutant kind %s", m.Kind)
		}
		kinds[m.Kind] = true
		if ids[m.Rule] {
			t.Errorf("two mutants target rule %d", m.Rule)
		}
		ids[m.Rule] = true
		if m.Description == "" || m.RuleName == "" {
			t.Errorf("%s: missing description or rule name", m.Kind)
		}
		if (m.explApply == nil) == (m.wrapImpl == nil) {
			t.Errorf("%s: want exactly one of explApply/wrapImpl", m.Kind)
		}
	}
}

// TestRegistryReplacesInPlace: the mutated rule must keep its ID, name and
// position (definition order is the implementor's tie-break), and
// implementation-rule mutants must append exactly one pristine copy.
func TestRegistryReplacesInPlace(t *testing.T) {
	orig := rules.DefaultRegistry().All()
	for _, m := range Mutants() {
		mutated := m.Registry().All()
		wantLen := len(orig)
		if m.wrapImpl != nil {
			wantLen++ // pristine copy appended
		}
		if len(mutated) != wantLen {
			t.Fatalf("%s: registry size %d, want %d", m, len(mutated), wantLen)
		}
		for i, r := range orig {
			if mutated[i].ID() != r.ID() || mutated[i].Name() != r.Name() {
				t.Errorf("%s: slot %d is %d/%s, want %d/%s (in-place replacement)",
					m, i, mutated[i].ID(), mutated[i].Name(), r.ID(), r.Name())
			}
		}
		if m.wrapImpl != nil {
			last := mutated[len(mutated)-1]
			if last.ID() != m.Rule+PristineIDOffset || !strings.HasSuffix(last.Name(), "Pristine") {
				t.Errorf("%s: pristine copy is %d/%s, want %d/*Pristine",
					m, last.ID(), last.Name(), m.Rule+PristineIDOffset)
			}
		}
	}
}

func TestRegistryPanicsOnUnknownRule(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Registry() must panic for a mutant that matches no rule")
		}
	}()
	m := Mutant{Kind: "bogus", Rule: 999, RuleName: "Nope",
		wrapImpl: func(outs []*physical.Expr) []*physical.Expr { return outs }}
	m.Registry()
}

func TestByKind(t *testing.T) {
	ms, err := ByKind(KindFlipSortDir, KindLimitOffByOne)
	if err != nil || len(ms) != 2 {
		t.Fatalf("ByKind = %v mutants, err %v", len(ms), err)
	}
	if ms[0].Kind != KindFlipSortDir || ms[1].Kind != KindLimitOffByOne {
		t.Errorf("ByKind order = %v, %v; want catalog order", ms[0].Kind, ms[1].Kind)
	}
	if _, err := ByKind(Kind("no-such-fault")); err == nil {
		t.Error("unknown kind must error")
	}
}
