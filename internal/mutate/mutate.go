// Package mutate implements rule-mutation fault injection: deliberately
// wrong variants ("mutants") of the optimizer's transformation rules, used
// to validate that the correctness oracle of §2.3 actually detects buggy
// rules — the method of deliberately-wrong transformations as oracle
// validation.
//
// Each mutant replaces exactly one rule of the default registry, in place,
// with a version whose substitution is subtly wrong: a dropped predicate
// conjunct, a swapped join type, a flipped sort direction, an off-by-one
// limit, a duplicated union branch, a wrong aggregate function. The mutated
// rule keeps its original ID and name, so rule targets and disabled-rule
// sets address it unchanged, and it keeps (or improves) the cost of its
// output, so the implementor's strict-improvement tie-break selects the
// mutated candidate whenever it competes with an equally priced correct one.
//
// For implementation-rule mutants, a pristine copy of the original rule is
// appended under ID Rule+PristineIDOffset: disabling the mutated rule must
// still leave a way to implement its operator (Plan(q,¬R) needs one), and
// because the mutated rule precedes the pristine copy in definition order it
// wins equal-cost ties. Exploration-rule mutants need no pristine copy —
// exploration rules only enlarge the search space.
//
// Running a test suite against a mutated optimizer and checking whether the
// suite reports a mismatch measures the suite's mutation score (see
// campaign.go).
package mutate

import (
	"fmt"

	"qtrtest/internal/logical"
	"qtrtest/internal/memo"
	"qtrtest/internal/physical"
	"qtrtest/internal/rules"
	"qtrtest/internal/scalar"
)

// PristineIDOffset shifts the rule ID under which an implementation-rule
// mutant re-registers the original ("pristine") rule. It is far above every
// real rule ID, so the shifted IDs never collide.
const PristineIDOffset rules.ID = 900

// Kind names the fault a mutant injects.
type Kind string

// The shipped mutant kinds.
const (
	// KindSwapJoinType rewrites Select(LeftJoin) to Select(Join)
	// unconditionally, dropping SimplifyLeftJoin's null-rejection
	// precondition: unmatched left rows are wrongly discarded whenever the
	// filter does not reject NULLs on the right side.
	KindSwapJoinType Kind = "swap-join-type"
	// KindDupUnionBranch makes UnionAllCommute emit UNION ALL branches that
	// duplicate one input and elide the other.
	KindDupUnionBranch Kind = "dup-union-branch"
	// KindDropFilterConjunct drops the last conjunct of every Filter
	// SelectToFilter emits (a single conjunct becomes TRUE).
	KindDropFilterConjunct Kind = "drop-filter-conjunct"
	// KindDropJoinConjunct drops the last equi-key pair, and its equality
	// conjunct, from every HashJoin JoinToHashJoin emits; with a single
	// equi-pair the join degenerates to a filtered cross product.
	KindDropJoinConjunct Kind = "drop-join-conjunct"
	// KindFlipSortDir flips the direction of the leading sort key in every
	// Sort SortToSort emits; only an order-sensitive oracle can catch it.
	KindFlipSortDir Kind = "flip-sort-dir"
	// KindLimitOffByOne makes LimitToLimit emit N-1 instead of N.
	KindLimitOffByOne Kind = "limit-off-by-one"
	// KindWrongAgg swaps aggregate functions in GroupByToHashAgg's output:
	// MIN and MAX trade places and SUM becomes MIN.
	KindWrongAgg Kind = "wrong-agg"
)

// Mutant describes one injected rule fault.
type Mutant struct {
	Kind Kind
	// Rule is the ID of the mutated rule; the mutant keeps this ID, so
	// targets and disabled-rule sets address it unchanged.
	Rule rules.ID
	// RuleName is the original rule's name, for reports.
	RuleName string
	// Description says what the injected bug does.
	Description string

	// explApply, when set, replaces the exploration rule's substitution
	// function entirely.
	explApply func(ctx *rules.Context, b *memo.BoundExpr) []*memo.BoundExpr
	// wrapImpl, when set, post-processes the implementation rule's physical
	// candidates. It may rewrite the freshly allocated candidate nodes but
	// must clone any slice shared with the logical expression.
	wrapImpl func(outs []*physical.Expr) []*physical.Expr
}

// String renders the mutant, e.g. "flip-sort-dir(SortToSort#116)".
func (m Mutant) String() string {
	return fmt.Sprintf("%s(%s#%d)", m.Kind, m.RuleName, m.Rule)
}

// Registry builds the optimizer rule set with this mutant's rule replaced in
// place (via rules.RegistryReplacing, so the mutated rule keeps the
// original's slot in definition order) plus, for implementation rules, the
// pristine copy appended under Rule+PristineIDOffset. It panics if the
// mutant references an unknown rule, mirroring NewRegistry's handling of
// definition errors.
func (m Mutant) Registry() *rules.Registry {
	orig, err := rules.DefaultRegistry().ByID(m.Rule)
	if err != nil {
		panic(fmt.Sprintf("mutate: mutant %s: %v", m, err))
	}
	switch r := orig.(type) {
	case rules.ExplorationRule:
		if m.explApply == nil {
			panic(fmt.Sprintf("mutate: mutant %s targets exploration rule without explApply", m))
		}
		sub := rules.NewExplorationRule(r.ID(), r.Name(), r.Pattern(), m.explApply)
		return rules.RegistryReplacing(map[rules.ID]rules.Rule{m.Rule: sub})
	case rules.ImplementationRule:
		if m.wrapImpl == nil {
			panic(fmt.Sprintf("mutate: mutant %s targets implementation rule without wrapImpl", m))
		}
		wrap := m.wrapImpl
		sub := rules.NewImplementationRule(r.ID(), r.Name(), r.Pattern(),
			func(ctx *rules.Context, e *memo.MExpr) []*physical.Expr {
				return wrap(r.Implement(ctx, e))
			})
		pristine := rules.NewImplementationRule(
			r.ID()+PristineIDOffset, r.Name()+"Pristine", r.Pattern(), r.Implement)
		return rules.RegistryReplacing(map[rules.ID]rules.Rule{m.Rule: sub}, pristine)
	default:
		panic(fmt.Sprintf("mutate: mutant %s targets rule of unknown kind", m))
	}
}

// Mutants returns the shipped mutant catalog in deterministic order.
func Mutants() []Mutant {
	return []Mutant{
		{
			Kind: KindSwapJoinType, Rule: 9, RuleName: "SimplifyLeftJoin",
			Description: "turn LEFT JOIN into INNER JOIN without checking that the filter rejects NULLs",
			explApply: func(ctx *rules.Context, b *memo.BoundExpr) []*memo.BoundExpr {
				join := b.Kids[0]
				newJoin := memo.NewBound(&logical.Expr{Op: logical.OpJoin, On: join.Node.On},
					join.Kids[0], join.Kids[1])
				return []*memo.BoundExpr{
					memo.NewBound(&logical.Expr{Op: logical.OpSelect, Filter: b.Node.Filter}, newJoin),
				}
			},
		},
		{
			Kind: KindDupUnionBranch, Rule: 23, RuleName: "UnionAllCommute",
			Description: "commute UNION ALL into branch-duplicating unions (one input twice, the other elided)",
			explApply: func(ctx *rules.Context, b *memo.BoundExpr) []*memo.BoundExpr {
				out := make([]*memo.BoundExpr, 0, 2)
				for i := 0; i < 2; i++ {
					out = append(out, memo.NewBound(&logical.Expr{
						Op:        logical.OpUnionAll,
						OutCols:   b.Node.OutCols,
						InputCols: [][]scalar.ColumnID{b.Node.InputCols[i], b.Node.InputCols[i]},
					}, b.Kids[i], b.Kids[i]))
				}
				return out
			},
		},
		{
			Kind: KindDropFilterConjunct, Rule: 102, RuleName: "SelectToFilter",
			Description: "drop the last conjunct of every filter predicate",
			wrapImpl: func(outs []*physical.Expr) []*physical.Expr {
				for _, out := range outs {
					if out.Op != physical.OpFilter {
						continue
					}
					conj := scalar.Conjuncts(out.Filter)
					if len(conj) == 0 {
						continue
					}
					out.Filter = scalar.MakeAnd(conj[:len(conj)-1])
				}
				return outs
			},
		},
		{
			Kind: KindDropJoinConjunct, Rule: 104, RuleName: "JoinToHashJoin",
			Description: "drop the last equi-key pair and its equality conjunct from every hash join",
			wrapImpl: func(outs []*physical.Expr) []*physical.Expr {
				for _, out := range outs {
					if out.Op != physical.OpHashJoin || len(out.EquiLeft) == 0 {
						continue
					}
					n := len(out.EquiLeft)
					dl, dr := out.EquiLeft[n-1], out.EquiRight[n-1]
					out.EquiLeft = append([]scalar.ColumnID(nil), out.EquiLeft[:n-1]...)
					out.EquiRight = append([]scalar.ColumnID(nil), out.EquiRight[:n-1]...)
					conj := scalar.Conjuncts(out.On)
					kept := make([]scalar.Expr, 0, len(conj))
					dropped := false
					for _, c := range conj {
						if !dropped && isEquiPair(c, dl, dr) {
							dropped = true
							continue
						}
						kept = append(kept, c)
					}
					out.On = scalar.MakeAnd(kept)
				}
				return outs
			},
		},
		{
			Kind: KindFlipSortDir, Rule: 116, RuleName: "SortToSort",
			Description: "flip the direction of the leading sort key",
			wrapImpl: func(outs []*physical.Expr) []*physical.Expr {
				for _, out := range outs {
					if out.Op != physical.OpSort || len(out.Keys) == 0 {
						continue
					}
					keys := append([]logical.SortKey(nil), out.Keys...)
					keys[0].Desc = !keys[0].Desc
					out.Keys = keys
				}
				return outs
			},
		},
		{
			Kind: KindLimitOffByOne, Rule: 117, RuleName: "LimitToLimit",
			Description: "emit LIMIT N-1 instead of LIMIT N",
			wrapImpl: func(outs []*physical.Expr) []*physical.Expr {
				for _, out := range outs {
					if out.Op == physical.OpLimit && out.N > 0 {
						out.N--
					}
				}
				return outs
			},
		},
		{
			Kind: KindWrongAgg, Rule: 113, RuleName: "GroupByToHashAgg",
			Description: "swap aggregate functions: MIN<->MAX, SUM->MIN",
			wrapImpl: func(outs []*physical.Expr) []*physical.Expr {
				for _, out := range outs {
					if out.Op != physical.OpHashAgg {
						continue
					}
					aggs := append([]scalar.Agg(nil), out.Aggs...)
					changed := false
					for i, a := range aggs {
						switch a.Op {
						case scalar.AggMin:
							aggs[i].Op = scalar.AggMax
							changed = true
						case scalar.AggMax:
							aggs[i].Op = scalar.AggMin
							changed = true
						case scalar.AggSum:
							aggs[i].Op = scalar.AggMin
							changed = true
						}
					}
					if changed {
						out.Aggs = aggs
					}
				}
				return outs
			},
		},
	}
}

// ByKind returns the shipped mutants matching the given kinds, in catalog
// order; unknown kinds produce an error.
func ByKind(kinds ...Kind) ([]Mutant, error) {
	want := make(map[Kind]bool, len(kinds))
	for _, k := range kinds {
		want[k] = true
	}
	var out []Mutant
	for _, m := range Mutants() {
		if want[m.Kind] {
			out = append(out, m)
			delete(want, m.Kind)
		}
	}
	for k := range want {
		return nil, fmt.Errorf("mutate: unknown mutant kind %q", k)
	}
	return out, nil
}

// isEquiPair reports whether e is the equality comparison between exactly
// the two given columns (in either order).
func isEquiPair(e scalar.Expr, l, r scalar.ColumnID) bool {
	cmp, ok := e.(*scalar.Cmp)
	if !ok || cmp.Op != scalar.CmpEQ {
		return false
	}
	a, aok := cmp.L.(*scalar.ColRef)
	b, bok := cmp.R.(*scalar.ColRef)
	if !aok || !bok {
		return false
	}
	return (a.ID == l && b.ID == r) || (a.ID == r && b.ID == l)
}
