package opt

import (
	"sync"
	"testing"

	"qtrtest/internal/bind"
	"qtrtest/internal/catalog"
	"qtrtest/internal/rules"
)

// TestConcurrentOptimizeSharedMetadata hammers one Optimizer with many
// goroutines optimizing the same bound queries against the SAME *Metadata.
// This is the contract the parallel campaign engine relies on and the one
// the lazy copy-on-write metadata clone must preserve: concurrent Optimize
// calls share the base column table read-only, and calls whose rules
// synthesize columns (the aggregate-pushdown family) append onto private
// storage, never into the shared array. Run under -race this covers both
// the clone fast path and the append-after-clone path; in any mode it
// checks that results stay schedule-independent.
func TestConcurrentOptimizeSharedMetadata(t *testing.T) {
	cat := catalog.LoadTPCH(catalog.TPCHConfig{ScaleRows: 1.0, Seed: 42})
	o := New(rules.DefaultRegistry(), cat)

	queries := []string{
		// Exercises aggregate pushdown, which synthesizes columns via
		// Metadata.AddColumn on the cloned metadata.
		"SELECT c_nationkey, COUNT(*) AS cnt FROM customer JOIN orders ON c_custkey = o_custkey GROUP BY c_nationkey",
		"SELECT s_name FROM supplier JOIN nation ON s_nationkey = n_nationkey JOIN region ON n_regionkey = r_regionkey WHERE r_name = 'AFRICA'",
		"SELECT l_returnflag, SUM(l_quantity) AS q FROM lineitem GROUP BY l_returnflag",
	}

	for _, q := range queries {
		bound, err := bind.BindSQL(q, cat)
		if err != nil {
			t.Fatalf("bind %q: %v", q, err)
		}
		want, err := o.Optimize(bound.Tree, bound.MD, Options{})
		if err != nil {
			t.Fatalf("optimize %q: %v", q, err)
		}
		wantHash := want.Plan.Hash()
		wantExprs := want.Memo.NumExprs()

		const goroutines = 8
		const iters = 5
		var wg sync.WaitGroup
		errs := make(chan error, goroutines)
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < iters; i++ {
					res, err := o.Optimize(bound.Tree, bound.MD, Options{})
					if err != nil {
						errs <- err
						return
					}
					if res.Plan.Hash() != wantHash || res.Memo.NumExprs() != wantExprs ||
						res.Cost != want.Cost {
						t.Errorf("concurrent Optimize diverged: hash %s/%s exprs %d/%d cost %v/%v",
							res.Plan.Hash(), wantHash, res.Memo.NumExprs(), wantExprs, res.Cost, want.Cost)
						return
					}
				}
			}()
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatalf("concurrent optimize %q: %v", q, err)
		}
	}
}
