package opt

import (
	"testing"

	"qtrtest/internal/bind"
	"qtrtest/internal/catalog"
	"qtrtest/internal/memo"
	"qtrtest/internal/rules"
)

// estimate optimizes a query and returns the root plan's estimated rows and
// the actual number of rows it produces.
func estimate(t *testing.T, o *Optimizer, q string) (est float64) {
	t.Helper()
	bound, err := bind.BindSQL(q, o.Catalog())
	if err != nil {
		t.Fatal(err)
	}
	res, err := o.Optimize(bound.Tree, bound.MD, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res.Plan.Rows
}

func TestScanCardinality(t *testing.T) {
	o, cat := harness(t)
	got := estimate(t, o, "SELECT * FROM nation")
	want := float64(cat.MustTable("nation").Stats.RowCount)
	if got != want {
		t.Errorf("scan estimate %f, want %f", got, want)
	}
}

func TestEqualityFilterUsesDistinctOrHistogram(t *testing.T) {
	o, cat := harness(t)
	rows := float64(cat.MustTable("customer").Stats.RowCount)
	got := estimate(t, o, "SELECT * FROM customer WHERE c_nationkey = 3")
	// 25 nation keys: expect roughly rows/25, certainly well below half.
	if got <= 0 || got > rows/2 {
		t.Errorf("equality estimate %f out of range (table %f)", got, rows)
	}
}

func TestRangeFilterUsesHistogram(t *testing.T) {
	o, cat := harness(t)
	rows := float64(cat.MustTable("lineitem").Stats.RowCount)
	// l_quantity uniform on [1,50]: quantity <= 10 ≈ 20%.
	got := estimate(t, o, "SELECT * FROM lineitem WHERE l_quantity <= 10")
	frac := got / rows
	if frac < 0.1 || frac > 0.35 {
		t.Errorf("range estimate fraction %f, want ~0.2 via histogram", frac)
	}
	// Without a histogram this would be the fixed 1/3 guess; the histogram
	// should beat it for a very selective range.
	got2 := estimate(t, o, "SELECT * FROM lineitem WHERE l_quantity <= 2")
	if got2/rows > 0.15 {
		t.Errorf("selective range estimate fraction %f, want < 0.15", got2/rows)
	}
}

func TestJoinCardinalityFKLike(t *testing.T) {
	o, cat := harness(t)
	nation := float64(cat.MustTable("nation").Stats.RowCount)
	customer := float64(cat.MustTable("customer").Stats.RowCount)
	got := estimate(t, o, "SELECT * FROM customer JOIN nation ON c_nationkey = n_nationkey")
	// FK join: about one output row per customer.
	if got < customer/3 || got > customer*3 {
		t.Errorf("FK join estimate %f, want ≈ %f", got, customer)
	}
	_ = nation
}

func TestGroupByCardinality(t *testing.T) {
	o, _ := harness(t)
	got := estimate(t, o, "SELECT c_nationkey, COUNT(*) AS n FROM customer GROUP BY c_nationkey")
	// At most 25 nation keys.
	if got <= 0 || got > 30 {
		t.Errorf("group-by estimate %f, want <= 25-ish", got)
	}
	scalarAgg := estimate(t, o, "SELECT COUNT(*) AS n FROM customer")
	if scalarAgg != 1 {
		t.Errorf("scalar aggregate estimate %f, want 1", scalarAgg)
	}
}

func TestUnionCardinality(t *testing.T) {
	o, cat := harness(t)
	got := estimate(t, o, "SELECT n_name FROM nation UNION ALL SELECT r_name FROM region")
	want := float64(cat.MustTable("nation").Stats.RowCount + cat.MustTable("region").Stats.RowCount)
	if got != want {
		t.Errorf("union estimate %f, want %f", got, want)
	}
}

func TestLimitCardinality(t *testing.T) {
	o, _ := harness(t)
	got := estimate(t, o, "SELECT * FROM customer LIMIT 7")
	if got != 7 {
		t.Errorf("limit estimate %f, want 7", got)
	}
}

func TestSemiAntiCardinalityPartition(t *testing.T) {
	o, cat := harness(t)
	total := float64(cat.MustTable("customer").Stats.RowCount)
	semi := estimate(t, o, "SELECT c_name FROM customer WHERE EXISTS (SELECT 1 AS one FROM orders WHERE o_custkey = c_custkey)")
	anti := estimate(t, o, "SELECT c_name FROM customer WHERE NOT EXISTS (SELECT 1 AS one FROM orders WHERE o_custkey = c_custkey)")
	if semi <= 0 || anti < 0 {
		t.Fatalf("bad estimates: semi %f anti %f", semi, anti)
	}
	// Semi + anti should roughly partition the input.
	if sum := semi + anti; sum < total*0.5 || sum > total*1.5 {
		t.Errorf("semi (%f) + anti (%f) = %f, want ≈ %f", semi, anti, sum, total)
	}
}

func TestStatsCachePerGroup(t *testing.T) {
	cat := catalog.LoadTPCH(catalog.DefaultTPCHConfig())
	o := New(rules.DefaultRegistry(), cat)
	bound, err := bind.BindSQL("SELECT * FROM nation JOIN region ON n_regionkey = r_regionkey", cat)
	if err != nil {
		t.Fatal(err)
	}
	res, err := o.Optimize(bound.Tree, bound.MD, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sb := newStatsBuilder(res.Memo)
	a := sb.stats(memo.GroupID(1))
	b := sb.stats(memo.GroupID(1))
	if a != b {
		t.Error("stats should be cached per group")
	}
}
