// Package opt implements the transformation-rule-based query optimizer: a
// top-down memo optimizer in the style of Volcano/Cascades [12][13], with the
// two extensions the paper's testing framework requires (§2.3):
//
//   - RuleSet tracking: every optimization records which transformation
//     rules were exercised, exposed as Result.RuleSet.
//   - Rule disabling: Options.Disabled optimizes the query as if the given
//     rules did not exist, yielding Plan(q, ¬R).
package opt

import (
	"errors"
	"fmt"

	"qtrtest/internal/catalog"
	"qtrtest/internal/logical"
	"qtrtest/internal/memo"
	"qtrtest/internal/physical"
	"qtrtest/internal/rules"
)

// Limits on exploration, to bound optimization of adversarial queries. They
// are generous relative to the query sizes the framework generates.
const (
	defaultMaxExprs  = 1200
	defaultMaxPasses = 12
)

// Options configures one optimization call.
type Options struct {
	// Disabled rules are skipped entirely: their patterns are never matched
	// and their substitutes never generated (Plan(q, ¬R), §2.2).
	Disabled rules.Set
	// MaxExprs caps total memo expressions (0 = default).
	MaxExprs int
	// MaxPasses caps exploration fixpoint passes (0 = default).
	MaxPasses int
	// DisableHistograms makes cardinality estimation fall back to
	// distinct-count heuristics, for estimation-quality ablations.
	DisableHistograms bool
	// exploreOverride, when non-nil, replaces the dirty-queue explorer. It is
	// unexported and only settable from within this package: the differential
	// test uses it to run the reference pass-based explorer against the same
	// memo and compare outcomes.
	exploreOverride func(o *Optimizer, ctx *rules.Context, exercised rules.Set, interactions map[[2]rules.ID]bool, disabled rules.Set, maxExprs, maxPasses int)
}

// Result is the outcome of optimizing one query.
type Result struct {
	// Plan is the lowest-cost physical plan found.
	Plan *physical.Expr
	// Cost is the optimizer-estimated cost of Plan.
	Cost float64
	// RuleSet is the set of rules exercised during this optimization
	// (RuleSet(q) in the paper, §2.2).
	RuleSet rules.Set
	// Interactions records observed rule interactions of the kind §7
	// describes: a pair (r1, r2) is present when rule r2 was exercised on
	// an expression that rule r1's substitution created.
	Interactions map[[2]rules.ID]bool
	// Memo is the final memo, exposed for inspection and tests.
	Memo *memo.Memo
}

// Optimizer optimizes logical trees against a catalog using a rule registry.
//
// An Optimizer is safe for concurrent use: it holds no mutable state of its
// own (the registry and catalog are read-only after construction), every
// Optimize call builds a private memo and stats cache, and the query
// metadata is cloned per call so rules that synthesize columns never mutate
// shared state. The parallel campaign engine relies on this to fan
// optimizations out over a worker pool.
type Optimizer struct {
	reg *rules.Registry
	cat *catalog.Catalog
}

// New returns an optimizer over the given rules and test database.
func New(reg *rules.Registry, cat *catalog.Catalog) *Optimizer {
	return &Optimizer{reg: reg, cat: cat}
}

// Registry returns the rule registry.
func (o *Optimizer) Registry() *rules.Registry { return o.reg }

// Catalog returns the catalog.
func (o *Optimizer) Catalog() *catalog.Catalog { return o.cat }

// ErrNoPlan is returned when no physical plan exists for the query, which
// happens when the implementation rules an operator needs are all disabled.
var ErrNoPlan = errors.New("opt: no physical plan for query (implementation rules disabled?)")

// Optimize explores the query's plan space and returns the best plan found,
// the rules exercised, and the estimated cost.
func (o *Optimizer) Optimize(tree *logical.Expr, md *logical.Metadata, opts Options) (*Result, error) {
	if tree == nil {
		return nil, errors.New("opt: nil query tree")
	}
	maxExprs := opts.MaxExprs
	if maxExprs <= 0 {
		maxExprs = defaultMaxExprs
	}
	maxPasses := opts.MaxPasses
	if maxPasses <= 0 {
		maxPasses = defaultMaxPasses
	}

	// Rules may allocate fresh columns while exploring; working on a private
	// copy-on-write clone keeps concurrent optimizations of the same query
	// race-free and makes the ColumnIDs they allocate independent of
	// scheduling, without paying for a column-table copy on the (common)
	// optimizations that never synthesize a column.
	md = md.CowClone()

	m := memo.New(md)

	// Presized so the typical optimization never grows them incrementally.
	exercised := make(rules.Set, 48)
	interactions := make(map[[2]rules.ID]bool, 16)
	ctx := &rules.Context{Memo: m}

	if opts.exploreOverride != nil {
		m.SetRoot(m.Insert(tree))
		opts.exploreOverride(o, ctx, exercised, interactions, opts.Disabled, maxExprs, maxPasses)
	} else {
		// The explorer's memo hook must be live before the query tree is
		// interned so the initial expressions seed its worklist.
		ex := newExplorer(o, ctx, exercised, interactions, opts.Disabled, maxExprs, maxPasses)
		m.SetRoot(m.Insert(tree))
		ex.run()
	}
	root := m.Root

	sb := newStatsBuilder(m)
	sb.noHistograms = opts.DisableHistograms
	imp := &implementor{
		o: o, ctx: ctx, sb: sb,
		exercised: exercised, disabled: opts.Disabled,
		best: make([]*physical.Expr, m.NumGroups()),
		done: make([]bool, m.NumGroups()), visiting: make([]bool, m.NumGroups()),
	}
	plan := imp.bestPlan(root)
	if plan == nil {
		return nil, ErrNoPlan
	}
	return &Result{Plan: plan, Cost: plan.Cost, RuleSet: exercised, Interactions: interactions, Memo: m}, nil
}

// explorer runs exploration rules to a fixpoint (or the limits) using a
// dirty worklist instead of whole-memo fixpoint passes.
//
// The reference semantics (kept runnable in explore_reference_test.go) scan
// the memo in (group, ord) order once per pass, re-binding an expression only
// when the total size of its child groups — its "kid version" — changed since
// its last visit. The worklist reproduces those semantics exactly, without
// the O(memo) rescans:
//
//   - An expression's bindings depend only on its payload and the contents of
//     its child groups, so it needs re-binding exactly when a child group
//     gains an expression. The memo's onAdd hook fires once per added
//     expression; dirtying the registered parents of the grown group is
//     therefore equivalent to the kid-version check.
//   - The current round's queue is a min-heap on (group, ord) — the scan
//     order of a pass. An expression dirtied at a key after the one being
//     processed would have been reached later in the same scan, so it joins
//     the current round; one dirtied at or before the current key was already
//     passed over and waits for the next round.
//   - Rounds correspond to passes: a round that adds nothing leaves the next
//     queue empty, exactly as a pass with changed=false terminates the loop,
//     and maxPasses bounds the number of rounds.
//
// Rules are drawn from the registry's per-operator index; the omitted rules
// are precisely those whose pattern root differs from the expression's
// operator, for which Bind returns no matches (and fires no side effects).
type explorer struct {
	o            *Optimizer
	ctx          *rules.Context
	exercised    rules.Set
	interactions map[[2]rules.ID]bool
	disabled     rules.Set
	maxExprs     int
	maxPasses    int

	// parents registers, for each group (index = GroupID-1), the memo
	// expressions that have it as a child; they are the expressions
	// invalidated when the group grows. Grown on demand as groups appear.
	parents [][]*memo.MExpr
	cur     exprHeap
	next    []*memo.MExpr
	inCur   map[*memo.MExpr]bool
	inNext  map[*memo.MExpr]bool
	// processing is the expression whose rules are currently running; nil
	// between rounds and during the initial tree interning, when every new
	// expression seeds the first round.
	processing *memo.MExpr
}

func newExplorer(o *Optimizer, ctx *rules.Context, exercised rules.Set, interactions map[[2]rules.ID]bool, disabled rules.Set, maxExprs, maxPasses int) *explorer {
	ex := &explorer{
		o: o, ctx: ctx,
		exercised: exercised, interactions: interactions, disabled: disabled,
		maxExprs: maxExprs, maxPasses: maxPasses,
		parents: make([][]*memo.MExpr, 0, 64),
		inCur:   make(map[*memo.MExpr]bool),
		inNext:  make(map[*memo.MExpr]bool),
	}
	ctx.Memo.SetOnAdd(ex.onAdd)
	return ex
}

// onAdd observes every expression the memo interns: it indexes the new
// expression as a parent of its child groups, then marks dirty both the
// expression itself (it has never been bound) and the registered parents of
// its group (their kid version just changed).
func (ex *explorer) onAdd(e *memo.MExpr) {
	for _, k := range e.Kids {
		ex.grow(k)
		p := ex.parents[k-1]
		if p == nil {
			p = make([]*memo.MExpr, 0, 4)
		}
		ex.parents[k-1] = append(p, e)
	}
	ex.dirty(e)
	ex.grow(e.Group)
	for _, p := range ex.parents[e.Group-1] {
		ex.dirty(p)
	}
}

// grow extends the parents index to cover group g.
func (ex *explorer) grow(g memo.GroupID) {
	for len(ex.parents) < int(g) {
		ex.parents = append(ex.parents, nil)
	}
}

// dirty queues e for (re-)binding: into the current round if its scan
// position is still ahead of the expression being processed, else into the
// next round.
func (ex *explorer) dirty(e *memo.MExpr) {
	if ex.processing != nil && exprLess(ex.processing, e) {
		if !ex.inCur[e] {
			ex.inCur[e] = true
			ex.cur.push(e)
		}
		return
	}
	if !ex.inNext[e] {
		ex.inNext[e] = true
		ex.next = append(ex.next, e)
	}
}

// run drains rounds of the worklist until a round adds nothing, or a cap is
// reached.
func (ex *explorer) run() {
	defer ex.ctx.Memo.SetOnAdd(nil)
	m := ex.ctx.Memo
	for round := 0; round < ex.maxPasses && len(ex.next) > 0; round++ {
		// Swap the queues, recycling the drained round's backing storage.
		prevCur, prevInCur := ex.cur, ex.inCur
		ex.cur, ex.inCur = exprHeap(ex.next), ex.inNext
		ex.cur.init()
		clear(prevInCur)
		ex.next, ex.inNext = prevCur[:0], prevInCur
		for len(ex.cur) > 0 {
			e := ex.cur.pop()
			delete(ex.inCur, e)
			ex.processing = e
			for _, r := range ex.o.reg.ExplorationFor(e.Op()) {
				if ex.disabled.Contains(r.ID()) || e.WasApplied(int(r.ID())) {
					continue
				}
				binds := rules.Bind(m, e, r.Pattern())
				if len(binds) == 0 {
					// The pattern may start matching later, once child groups
					// gain expressions; retry when they grow.
					continue
				}
				e.MarkApplied(int(r.ID()))
				for _, b := range binds {
					subs := r.Apply(ex.ctx, b)
					if len(subs) > 0 {
						ex.exercised.Add(r.ID())
						recordInteractions(ex.interactions, b, r.ID())
					}
					for _, sub := range subs {
						m.InsertSubstituteFrom(sub, e.Group, int(r.ID()))
					}
				}
				if m.NumExprs() >= ex.maxExprs {
					return
				}
			}
			ex.processing = nil
		}
	}
}

// exprLess orders memo expressions by scan position (group, then ord).
func exprLess(a, b *memo.MExpr) bool {
	if a.Group != b.Group {
		return a.Group < b.Group
	}
	return a.Ord < b.Ord
}

// exprHeap is a hand-rolled binary min-heap of memo expressions ordered by
// exprLess; it avoids container/heap's interface indirection on the hot path.
type exprHeap []*memo.MExpr

// init establishes the heap invariant over arbitrary contents.
func (h exprHeap) init() {
	for i := len(h)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
}

func (h *exprHeap) push(e *memo.MExpr) {
	*h = append(*h, e)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !exprLess((*h)[i], (*h)[p]) {
			break
		}
		(*h)[i], (*h)[p] = (*h)[p], (*h)[i]
		i = p
	}
}

func (h *exprHeap) pop() *memo.MExpr {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	old[n] = nil
	*h = old[:n]
	h.siftDown(0)
	return top
}

func (h exprHeap) siftDown(i int) {
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && exprLess(h[l], h[small]) {
			small = l
		}
		if r < n && exprLess(h[r], h[small]) {
			small = r
		}
		if small == i {
			return
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
}

// recordInteractions notes, for every concrete expression the binding
// matched that some earlier rule created, the interaction (creator, fired).
func recordInteractions(interactions map[[2]rules.ID]bool, b *memo.BoundExpr, fired rules.ID) {
	var walk func(x *memo.BoundExpr)
	walk = func(x *memo.BoundExpr) {
		if x.Src != nil && x.Src.CreatedBy != 0 && rules.ID(x.Src.CreatedBy) != fired {
			interactions[[2]rules.ID{rules.ID(x.Src.CreatedBy), fired}] = true
		}
		for _, k := range x.Kids {
			walk(k)
		}
	}
	walk(b)
}

// implementor runs the implementation/costing phase: a bottom-up dynamic
// program over the memo choosing the cheapest physical expression per group.
// Its per-group state is held in dense slices indexed by GroupID, sized once
// at construction (the memo is final when implementation starts).
type implementor struct {
	o         *Optimizer
	ctx       *rules.Context
	sb        *statsBuilder
	exercised rules.Set
	disabled  rules.Set
	best      []*physical.Expr // index = GroupID-1
	done      []bool           // index = GroupID-1: best[g] is final (may be nil: no plan)
	visiting  []bool           // index = GroupID-1
}

func (imp *implementor) bestPlan(g memo.GroupID) *physical.Expr {
	if imp.done[g-1] {
		return imp.best[g-1]
	}
	if imp.visiting[g-1] {
		// Defensive: a cyclic group reference cannot yield a finite plan.
		return nil
	}
	imp.visiting[g-1] = true
	defer func() { imp.visiting[g-1] = false }()

	group := imp.ctx.Memo.Group(g)
	st := imp.sb.stats(g)
	var best *physical.Expr
	for _, e := range group.Exprs {
		kidPlans := make([]*physical.Expr, len(e.Kids))
		ok := true
		for i, k := range e.Kids {
			kidPlans[i] = imp.bestPlan(k)
			if kidPlans[i] == nil {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for _, ir := range imp.o.reg.ImplementationFor(e.Op()) {
			if imp.disabled.Contains(ir.ID()) {
				continue
			}
			cands := ir.Implement(imp.ctx, e)
			if len(cands) > 0 {
				imp.exercised.Add(ir.ID())
			}
			for _, cand := range cands {
				cand.Children = kidPlans
				cand.Rows = st.rows
				cost := localCost(cand)
				for _, kp := range kidPlans {
					cost += kp.Cost
				}
				cand.Cost = cost
				if best == nil || cand.Cost < best.Cost {
					best = cand
				}
			}
		}
	}
	imp.best[g-1] = best
	imp.done[g-1] = true
	return best
}

// String summarizes the optimizer configuration.
func (o *Optimizer) String() string {
	return fmt.Sprintf("optimizer{%d rules, %d tables}", len(o.reg.All()), o.cat.NumTables())
}
