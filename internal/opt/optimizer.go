// Package opt implements the transformation-rule-based query optimizer: a
// top-down memo optimizer in the style of Volcano/Cascades [12][13], with the
// two extensions the paper's testing framework requires (§2.3):
//
//   - RuleSet tracking: every optimization records which transformation
//     rules were exercised, exposed as Result.RuleSet.
//   - Rule disabling: Options.Disabled optimizes the query as if the given
//     rules did not exist, yielding Plan(q, ¬R).
package opt

import (
	"errors"
	"fmt"

	"qtrtest/internal/catalog"
	"qtrtest/internal/logical"
	"qtrtest/internal/memo"
	"qtrtest/internal/physical"
	"qtrtest/internal/rules"
)

// Limits on exploration, to bound optimization of adversarial queries. They
// are generous relative to the query sizes the framework generates.
const (
	defaultMaxExprs  = 1200
	defaultMaxPasses = 12
)

// Options configures one optimization call.
type Options struct {
	// Disabled rules are skipped entirely: their patterns are never matched
	// and their substitutes never generated (Plan(q, ¬R), §2.2).
	Disabled rules.Set
	// MaxExprs caps total memo expressions (0 = default).
	MaxExprs int
	// MaxPasses caps exploration fixpoint passes (0 = default).
	MaxPasses int
	// DisableHistograms makes cardinality estimation fall back to
	// distinct-count heuristics, for estimation-quality ablations.
	DisableHistograms bool
}

// Result is the outcome of optimizing one query.
type Result struct {
	// Plan is the lowest-cost physical plan found.
	Plan *physical.Expr
	// Cost is the optimizer-estimated cost of Plan.
	Cost float64
	// RuleSet is the set of rules exercised during this optimization
	// (RuleSet(q) in the paper, §2.2).
	RuleSet rules.Set
	// Interactions records observed rule interactions of the kind §7
	// describes: a pair (r1, r2) is present when rule r2 was exercised on
	// an expression that rule r1's substitution created.
	Interactions map[[2]rules.ID]bool
	// Memo is the final memo, exposed for inspection and tests.
	Memo *memo.Memo
}

// Optimizer optimizes logical trees against a catalog using a rule registry.
//
// An Optimizer is safe for concurrent use: it holds no mutable state of its
// own (the registry and catalog are read-only after construction), every
// Optimize call builds a private memo and stats cache, and the query
// metadata is cloned per call so rules that synthesize columns never mutate
// shared state. The parallel campaign engine relies on this to fan
// optimizations out over a worker pool.
type Optimizer struct {
	reg *rules.Registry
	cat *catalog.Catalog
}

// New returns an optimizer over the given rules and test database.
func New(reg *rules.Registry, cat *catalog.Catalog) *Optimizer {
	return &Optimizer{reg: reg, cat: cat}
}

// Registry returns the rule registry.
func (o *Optimizer) Registry() *rules.Registry { return o.reg }

// Catalog returns the catalog.
func (o *Optimizer) Catalog() *catalog.Catalog { return o.cat }

// ErrNoPlan is returned when no physical plan exists for the query, which
// happens when the implementation rules an operator needs are all disabled.
var ErrNoPlan = errors.New("opt: no physical plan for query (implementation rules disabled?)")

// Optimize explores the query's plan space and returns the best plan found,
// the rules exercised, and the estimated cost.
func (o *Optimizer) Optimize(tree *logical.Expr, md *logical.Metadata, opts Options) (*Result, error) {
	if tree == nil {
		return nil, errors.New("opt: nil query tree")
	}
	maxExprs := opts.MaxExprs
	if maxExprs <= 0 {
		maxExprs = defaultMaxExprs
	}
	maxPasses := opts.MaxPasses
	if maxPasses <= 0 {
		maxPasses = defaultMaxPasses
	}

	// Rules may allocate fresh columns while exploring; working on a private
	// clone keeps concurrent optimizations of the same query race-free and
	// makes the ColumnIDs they allocate independent of scheduling.
	md = md.Clone()

	m := memo.New(md)
	root := m.Insert(tree)
	m.SetRoot(root)

	exercised := make(rules.Set)
	interactions := make(map[[2]rules.ID]bool)
	ctx := &rules.Context{Memo: m}

	o.explore(ctx, exercised, interactions, opts.Disabled, maxExprs, maxPasses)

	sb := newStatsBuilder(m)
	sb.noHistograms = opts.DisableHistograms
	imp := &implementor{
		o: o, ctx: ctx, sb: sb,
		exercised: exercised, disabled: opts.Disabled,
		best: make(map[memo.GroupID]*physical.Expr), visiting: make(map[memo.GroupID]bool),
	}
	plan := imp.bestPlan(root)
	if plan == nil {
		return nil, ErrNoPlan
	}
	return &Result{Plan: plan, Cost: plan.Cost, RuleSet: exercised, Interactions: interactions, Memo: m}, nil
}

// explore runs exploration rules to a fixpoint (or the limits).
func (o *Optimizer) explore(ctx *rules.Context, exercised rules.Set, interactions map[[2]rules.ID]bool, disabled rules.Set, maxExprs, maxPasses int) {
	m := ctx.Memo
	expl := o.reg.Exploration()
	// Pattern bindings of an expression depend only on the expressions in
	// its child groups (patterns are at most two concrete levels deep).
	// kidVersion lets a pass skip re-binding a rule whose pattern found
	// nothing last time unless a child group has grown since.
	kidVersion := func(e *memo.MExpr) int {
		v := 0
		for _, k := range e.Kids {
			v += len(m.Group(k).Exprs)
		}
		return v
	}
	triedAt := make(map[*memo.MExpr]int)
	for pass := 0; pass < maxPasses; pass++ {
		changed := false
		// Groups and expressions grow during iteration; index-based loops
		// pick the new ones up within the same pass.
		for gi := 1; gi <= m.NumGroups(); gi++ {
			g := m.Group(memo.GroupID(gi))
			for ei := 0; ei < len(g.Exprs); ei++ {
				e := g.Exprs[ei]
				ver := kidVersion(e)
				if v, ok := triedAt[e]; ok && v == ver {
					continue
				}
				triedAt[e] = ver
				for _, r := range expl {
					if disabled.Contains(r.ID()) || e.Applied[int(r.ID())] {
						continue
					}
					binds := rules.Bind(m, e, r.Pattern())
					if len(binds) == 0 {
						// The pattern may start matching later, once child
						// groups gain expressions; retry when they grow.
						continue
					}
					e.Applied[int(r.ID())] = true
					for _, b := range binds {
						subs := r.Apply(ctx, b)
						if len(subs) > 0 {
							exercised.Add(r.ID())
							recordInteractions(interactions, b, r.ID())
						}
						for _, sub := range subs {
							if m.InsertSubstituteFrom(sub, e.Group, int(r.ID())) {
								changed = true
							}
						}
					}
					if m.NumExprs() >= maxExprs {
						return
					}
				}
			}
		}
		if !changed {
			return
		}
	}
}

// recordInteractions notes, for every concrete expression the binding
// matched that some earlier rule created, the interaction (creator, fired).
func recordInteractions(interactions map[[2]rules.ID]bool, b *memo.BoundExpr, fired rules.ID) {
	var walk func(x *memo.BoundExpr)
	walk = func(x *memo.BoundExpr) {
		if x.Src != nil && x.Src.CreatedBy != 0 && rules.ID(x.Src.CreatedBy) != fired {
			interactions[[2]rules.ID{rules.ID(x.Src.CreatedBy), fired}] = true
		}
		for _, k := range x.Kids {
			walk(k)
		}
	}
	walk(b)
}

// implementor runs the implementation/costing phase: a bottom-up dynamic
// program over the memo choosing the cheapest physical expression per group.
type implementor struct {
	o         *Optimizer
	ctx       *rules.Context
	sb        *statsBuilder
	exercised rules.Set
	disabled  rules.Set
	best      map[memo.GroupID]*physical.Expr
	visiting  map[memo.GroupID]bool
}

func (imp *implementor) bestPlan(g memo.GroupID) *physical.Expr {
	if p, ok := imp.best[g]; ok {
		return p
	}
	if imp.visiting[g] {
		// Defensive: a cyclic group reference cannot yield a finite plan.
		return nil
	}
	imp.visiting[g] = true
	defer delete(imp.visiting, g)

	group := imp.ctx.Memo.Group(g)
	st := imp.sb.stats(g)
	var best *physical.Expr
	for _, e := range group.Exprs {
		kidPlans := make([]*physical.Expr, len(e.Kids))
		ok := true
		for i, k := range e.Kids {
			kidPlans[i] = imp.bestPlan(k)
			if kidPlans[i] == nil {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for _, ir := range imp.o.reg.Implementation() {
			if imp.disabled.Contains(ir.ID()) {
				continue
			}
			if ir.Pattern().Op != e.Op() {
				continue
			}
			cands := ir.Implement(imp.ctx, e)
			if len(cands) > 0 {
				imp.exercised.Add(ir.ID())
			}
			for _, cand := range cands {
				cand.Children = kidPlans
				cand.Rows = st.rows
				cost := localCost(cand)
				for _, kp := range kidPlans {
					cost += kp.Cost
				}
				cand.Cost = cost
				if best == nil || cand.Cost < best.Cost {
					best = cand
				}
			}
		}
	}
	imp.best[g] = best
	return best
}

// String summarizes the optimizer configuration.
func (o *Optimizer) String() string {
	return fmt.Sprintf("optimizer{%d rules, %d tables}", len(o.reg.All()), o.cat.NumTables())
}
