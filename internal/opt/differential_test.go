package opt

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"qtrtest/internal/bind"
	"qtrtest/internal/catalog"
	"qtrtest/internal/rules"
)

// The differential harness pins the optimizer hot path: for the full TPC-H
// and star workload corpora (with and without individual exploration rules
// disabled), the memo shape, exercised RuleSet and chosen plan must be
// byte-identical to the snapshot captured before the fingerprint-interning
// and dirty-queue-exploration overhaul. Any scheduling or interning change
// that alters exploration results shows up here as a diff against
// testdata/differential_golden.json.
//
// Regenerate (only when an intentional semantic change is made) with:
//
//	go test ./internal/opt -run TestDifferentialGolden -update-golden

var updateGolden = flag.Bool("update-golden", false, "rewrite the differential golden file")

// tpchCorpus mirrors the root workload_test.go queries; duplicated here so
// the harness is self-contained inside the opt package.
var tpchCorpus = []string{
	"SELECT n_name FROM nation WHERE n_regionkey = 1",
	"SELECT n_name, r_name FROM nation JOIN region ON n_regionkey = r_regionkey WHERE r_name = 'EUROPE'",
	"SELECT s_name FROM supplier JOIN nation ON s_nationkey = n_nationkey JOIN region ON n_regionkey = r_regionkey WHERE r_name = 'AFRICA'",
	"SELECT o_orderstatus, COUNT(*) AS n FROM orders GROUP BY o_orderstatus",
	"SELECT * FROM (SELECT c_nationkey, COUNT(*) AS n FROM customer GROUP BY c_nationkey) AS t WHERE n > 4",
	"SELECT c_name FROM customer LEFT JOIN orders ON c_custkey = o_custkey WHERE o_orderkey IS NULL",
	"SELECT p_name FROM part WHERE EXISTS (SELECT 1 AS one FROM lineitem WHERE l_partkey = p_partkey AND l_quantity > 45)",
	"SELECT c_name FROM customer WHERE NOT EXISTS (SELECT 1 AS one FROM orders WHERE o_custkey = c_custkey)",
	"SELECT n_name FROM nation UNION ALL SELECT r_name FROM region",
	"SELECT c_name, c_acctbal FROM customer ORDER BY c_acctbal DESC LIMIT 10",
	"SELECT l_returnflag, SUM(l_quantity) AS q, AVG(l_discount) AS d, COUNT(*) AS n FROM lineitem GROUP BY l_returnflag",
	"SELECT a.n_name FROM nation AS a JOIN nation AS b ON a.n_regionkey = b.n_nationkey WHERE b.n_name = 'CANADA'",
	"SELECT l_extendedprice * l_discount AS rebate FROM lineitem WHERE l_shipdate < 100",
	"SELECT c_mktsegment FROM customer GROUP BY c_mktsegment",
	"SELECT o_orderkey FROM orders WHERE o_orderdate >= 1000 AND o_orderdate < 2000",
	"SELECT c_nationkey, COUNT(*) AS n FROM customer GROUP BY c_nationkey HAVING COUNT(*) > 4",
	"SELECT s_nationkey FROM supplier GROUP BY s_nationkey HAVING MAX(s_acctbal) > 5000",
	"SELECT n_name FROM nation WHERE n_regionkey IN (0, 3)",
	"SELECT r_name FROM region WHERE r_regionkey NOT IN (1, 2)",
	"SELECT p_name FROM part WHERE p_size BETWEEN 10 AND 12",
}

// starCorpus mirrors the root star_workload_test.go queries.
var starCorpus = []string{
	"SELECT p_category, SUM(f_amount) AS amt FROM sales JOIN product ON f_productkey = p_productkey GROUP BY p_category",
	"SELECT s_channel, d_year, COUNT(*) AS n FROM sales JOIN store ON f_storekey = s_storekey JOIN date_dim ON f_datekey = d_datekey GROUP BY s_channel, d_year",
	"SELECT h_name FROM shopper LEFT JOIN sales ON h_shopperkey = f_shopperkey WHERE f_salekey IS NULL",
	"SELECT h_name FROM shopper WHERE EXISTS (SELECT 1 AS one FROM sales WHERE f_shopperkey = h_shopperkey AND f_quantity > 15)",
	"SELECT d_year, COUNT(*) AS n FROM sales JOIN date_dim ON f_datekey = d_datekey WHERE d_quarter = 2 GROUP BY d_year",
	"SELECT p_name FROM product UNION ALL SELECT s_name FROM store",
	"SELECT f_storekey, SUM(f_amount) AS amt FROM sales GROUP BY f_storekey HAVING COUNT(*) > 30",
}

// diffEntry is one optimization outcome the snapshot pins.
type diffEntry struct {
	DB        string  `json:"db"`
	Query     string  `json:"query"`
	Disabled  []int   `json:"disabled,omitempty"`
	NumGroups int     `json:"num_groups"`
	NumExprs  int     `json:"num_exprs"`
	RuleSet   []int   `json:"rule_set"`
	PlanHash  string  `json:"plan_hash"`
	Cost      float64 `json:"cost"`
}

func diffOptimize(t *testing.T, o *Optimizer, cat *catalog.Catalog, db, sqlText string, disabled rules.Set, opts Options) diffEntry {
	t.Helper()
	bound, err := bind.BindSQL(sqlText, cat)
	if err != nil {
		t.Fatalf("bind %q: %v", sqlText, err)
	}
	opts.Disabled = disabled
	res, err := o.Optimize(bound.Tree, bound.MD, opts)
	if err != nil {
		t.Fatalf("optimize %q (disabled %v): %v", sqlText, disabled.Sorted(), err)
	}
	e := diffEntry{
		DB:        db,
		Query:     sqlText,
		NumGroups: res.Memo.NumGroups(),
		NumExprs:  res.Memo.NumExprs(),
		PlanHash:  res.Plan.Hash(),
		Cost:      res.Cost,
	}
	for _, id := range disabled.Sorted() {
		e.Disabled = append(e.Disabled, int(id))
	}
	for _, id := range res.RuleSet.Sorted() {
		e.RuleSet = append(e.RuleSet, int(id))
	}
	return e
}

// collectDifferential optimizes every corpus query on both schemas, then
// re-optimizes each with every exercised exploration rule disabled in turn —
// exactly the Plan(q) / Plan(q,¬R) calls the campaign engine's edge costing
// issues.
func collectDifferential(t *testing.T, opts Options) []diffEntry {
	t.Helper()
	var out []diffEntry
	run := func(db string, cat *catalog.Catalog, corpus []string) {
		o := New(rules.DefaultRegistry(), cat)
		for _, q := range corpus {
			base := diffOptimize(t, o, cat, db, q, nil, opts)
			out = append(out, base)
			for _, id := range base.RuleSet {
				if id > 100 {
					continue // implementation rules: disabling can make queries unplannable
				}
				out = append(out, diffOptimize(t, o, cat, db, q, rules.NewSet(rules.ID(id)), opts))
			}
		}
	}
	run("tpch", catalog.LoadTPCH(catalog.TPCHConfig{ScaleRows: 1.0, Seed: 42}), tpchCorpus)
	run("star", catalog.LoadStar(catalog.StarConfig{ScaleRows: 1.0, Seed: 42}), starCorpus)
	return out
}

const goldenPath = "testdata/differential_golden.json"

func TestDifferentialGolden(t *testing.T) {
	got := collectDifferential(t, Options{})
	if *updateGolden {
		data, err := json.MarshalIndent(got, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d entries to %s", len(got), goldenPath)
		return
	}
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden (run with -update-golden to capture): %v", err)
	}
	var want []diffEntry
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("entry count changed: got %d, golden %d", len(got), len(want))
	}
	for i := range want {
		if fmt.Sprintf("%+v", got[i]) != fmt.Sprintf("%+v", want[i]) {
			t.Errorf("entry %d diverged from pre-overhaul snapshot:\n got: %+v\nwant: %+v", i, got[i], want[i])
		}
	}
}

// TestDifferentialReferenceExplorer runs the whole corpus twice in-process —
// once through the production dirty-queue explorer and once through the
// preserved pass-based reference (exploreReference) — and requires identical
// memo shapes, rule sets, plans, and costs. Together with the golden file
// this pins both directions: golden proves nothing drifted from the
// pre-overhaul code, and this proves the two explorers stay equivalent as
// rules evolve.
func TestDifferentialReferenceExplorer(t *testing.T) {
	got := collectDifferential(t, Options{})
	ref := collectDifferential(t, Options{exploreOverride: exploreReference})
	if len(got) != len(ref) {
		t.Fatalf("entry count differs: dirty-queue %d, reference %d", len(got), len(ref))
	}
	for i := range ref {
		if fmt.Sprintf("%+v", got[i]) != fmt.Sprintf("%+v", ref[i]) {
			t.Errorf("entry %d: dirty-queue explorer diverged from pass-based reference:\n got: %+v\nwant: %+v", i, got[i], ref[i])
		}
	}
}

// TestDifferentialTightLimits re-runs the comparison under a tight expression
// budget and pass cap, where the two explorers' cutoff behavior (the
// mid-rule maxExprs abort and the round/pass bound) must also coincide.
func TestDifferentialTightLimits(t *testing.T) {
	for _, lim := range []Options{
		{MaxExprs: 40, MaxPasses: 2},
		{MaxExprs: 75, MaxPasses: 1},
		{MaxExprs: 300, MaxPasses: 3},
	} {
		ref := lim
		ref.exploreOverride = exploreReference
		got := collectDifferential(t, lim)
		want := collectDifferential(t, ref)
		for i := range want {
			if fmt.Sprintf("%+v", got[i]) != fmt.Sprintf("%+v", want[i]) {
				t.Errorf("limits %+v entry %d: dirty-queue diverged from reference:\n got: %+v\nwant: %+v", lim, i, got[i], want[i])
			}
		}
	}
}
