package opt

import (
	"testing"

	"qtrtest/internal/bind"
	"qtrtest/internal/catalog"
	"qtrtest/internal/exec"
	"qtrtest/internal/rules"
)

// TestSmokeEndToEnd drives the full pipeline: SQL → bind → optimize →
// execute, and checks that disabling an exercised rule preserves results.
func TestSmokeEndToEnd(t *testing.T) {
	cat := catalog.LoadTPCH(catalog.DefaultTPCHConfig())
	o := New(rules.DefaultRegistry(), cat)

	queries := []string{
		"SELECT n_name FROM nation WHERE n_regionkey = 2",
		"SELECT n_name, r_name FROM nation JOIN region ON n_regionkey = r_regionkey WHERE r_name = 'ASIA'",
		"SELECT c_nationkey, COUNT(*) AS cnt FROM customer GROUP BY c_nationkey",
		"SELECT c_name FROM customer LEFT JOIN nation ON c_nationkey = n_nationkey WHERE c_acctbal > 0",
		"SELECT o_orderkey FROM orders WHERE EXISTS (SELECT 1 AS one FROM lineitem WHERE l_orderkey = o_orderkey AND l_quantity > 30)",
		"SELECT o_orderkey FROM orders WHERE NOT EXISTS (SELECT 1 AS one FROM lineitem WHERE l_orderkey = o_orderkey)",
		"SELECT n_name FROM nation UNION ALL SELECT r_name FROM region",
		"SELECT s_nationkey, MAX(s_acctbal) AS m FROM supplier JOIN nation ON s_nationkey = n_nationkey GROUP BY s_nationkey",
	}
	for _, q := range queries {
		bound, err := bind.BindSQL(q, cat)
		if err != nil {
			t.Fatalf("bind %q: %v", q, err)
		}
		res, err := o.Optimize(bound.Tree, bound.MD, Options{})
		if err != nil {
			t.Fatalf("optimize %q: %v", q, err)
		}
		rows, err := exec.Run(res.Plan, cat)
		if err != nil {
			t.Fatalf("execute %q: %v\nplan:\n%s", q, err, res.Plan)
		}
		if len(res.RuleSet) == 0 {
			t.Errorf("no rules exercised for %q", q)
		}
		// Disable each exercised exploration rule in turn; results must not
		// change (the core correctness invariant of the paper).
		for _, id := range res.RuleSet.Sorted() {
			if id > 100 {
				continue // implementation rules can be required for a plan
			}
			res2, err := o.Optimize(bound.Tree, bound.MD, Options{Disabled: rules.NewSet(id)})
			if err != nil {
				t.Fatalf("optimize %q with rule %d off: %v", q, id, err)
			}
			rows2, err := exec.Run(res2.Plan, cat)
			if err != nil {
				t.Fatalf("execute %q with rule %d off: %v\nplan:\n%s", q, id, err, res2.Plan)
			}
			if !exec.EqualMultisets(rows, rows2) {
				t.Errorf("rule %d changes results of %q: %s", id, q, exec.DiffSummary(rows, rows2))
			}
			if res2.Cost < res.Cost-1e-6 {
				t.Errorf("rule %d off yields cheaper plan for %q: %f < %f", id, q, res2.Cost, res.Cost)
			}
		}
	}
}
