package opt

import (
	"math"

	"qtrtest/internal/physical"
	"qtrtest/internal/scalar"
)

// Cost model: one unit ≈ one row touched. The absolute numbers are
// arbitrary; what matters for the paper's experiments is the ordering it
// induces (nested loops ≫ hash join, pushed-down filters shrink
// intermediates, sorts pay n·log n), because Figures 11–13 compare
// optimizer-estimated costs of plans with rules on versus off.
const (
	cpuFactor   = 1.0
	hashFactor  = 1.2 // per-row cost of building/probing a hash table
	sortFactor  = 1.1 // multiplier on n·log2(n) for sorts
	nlProbeCost = 0.5 // per inner-row probe cost for nested loops
)

// predWeight models per-row predicate evaluation cost: a conjunction of n
// comparisons costs more to evaluate than a single one. This keeps the cost
// order strict between plans that differ only in where (and whether)
// predicates are evaluated.
func predWeight(pred scalar.Expr) float64 {
	if pred == nil {
		return 0.8
	}
	return 0.8 + 0.2*float64(scalar.NumConjuncts(pred))
}

// joinTypeFactor models the relative per-row cost of the join variants:
// outer joins track matches and emit null-extended rows (slightly dearer);
// semi and anti joins can stop probing at the first match (cheaper).
func joinTypeFactor(t physical.JoinType) float64 {
	switch t {
	case physical.JoinLeft:
		return 1.05
	case physical.JoinSemi, physical.JoinAnti:
		return 0.9
	default:
		return 1.0
	}
}

// localCost returns the operator's own cost, excluding children, given the
// node's annotated output Rows and its children's annotated Rows.
func localCost(e *physical.Expr) float64 {
	childRows := func(i int) float64 { return e.Children[i].Rows }
	log2 := func(n float64) float64 { return math.Log2(n + 2) }
	switch e.Op {
	case physical.OpScan:
		return cpuFactor * e.Rows
	case physical.OpFilter:
		return cpuFactor * childRows(0) * predWeight(e.Filter)
	case physical.OpProject:
		return cpuFactor * childRows(0)
	case physical.OpHashJoin:
		return joinTypeFactor(e.JoinType)*hashFactor*(childRows(0)+childRows(1)) +
			cpuFactor*e.Rows*predWeight(e.On)
	case physical.OpMergeJoin:
		l, r := childRows(0), childRows(1)
		return sortFactor*(l*log2(l)+r*log2(r)) + cpuFactor*e.Rows*predWeight(e.On)
	case physical.OpNLJoin:
		return joinTypeFactor(e.JoinType)*nlProbeCost*childRows(0)*childRows(1)*predWeight(e.On) +
			cpuFactor*childRows(0)
	case physical.OpHashAgg:
		return hashFactor*childRows(0) + cpuFactor*e.Rows
	case physical.OpSortAgg:
		in := childRows(0)
		return sortFactor*in*log2(in) + cpuFactor*e.Rows
	case physical.OpSort:
		in := childRows(0)
		return sortFactor * in * log2(in)
	case physical.OpLimit:
		return cpuFactor * e.Rows
	case physical.OpConcat:
		return cpuFactor * (childRows(0) + childRows(1))
	}
	return cpuFactor * e.Rows
}
