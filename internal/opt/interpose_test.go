package opt

import (
	"testing"

	"qtrtest/internal/bind"
	"qtrtest/internal/catalog"
	"qtrtest/internal/logical"
	"qtrtest/internal/memo"
	"qtrtest/internal/physical"
	"qtrtest/internal/rules"
)

// TestInterposedRuleWinsTieAndPristineFallsBack pins the two optimizer
// properties rule-mutation fault injection (internal/mutate) relies on:
//
//  1. a rule interposed in place via rules.RegistryReplacing keeps the
//     original's slot in definition order, so it wins the implementor's
//     equal-cost tie-break against an identically priced copy appended at
//     the end of the registry;
//  2. disabling the interposed rule falls back to that appended copy, so
//     Plan(q, ¬R) can still implement the operator.
func TestInterposedRuleWinsTieAndPristineFallsBack(t *testing.T) {
	cat := catalog.LoadTPCH(catalog.DefaultTPCHConfig())

	const sortRule rules.ID = 116
	orig, err := rules.DefaultRegistry().ByID(sortRule)
	if err != nil {
		t.Fatal(err)
	}
	ir := orig.(rules.ImplementationRule)
	// The substitute emits the same Sort candidates at the same cost, but
	// with the leading key direction flipped — observable in the plan.
	flipped := rules.NewImplementationRule(ir.ID(), ir.Name(), ir.Pattern(),
		func(ctx *rules.Context, e *memo.MExpr) []*physical.Expr {
			outs := ir.Implement(ctx, e)
			for _, out := range outs {
				if out.Op == physical.OpSort && len(out.Keys) > 0 {
					keys := append([]logical.SortKey(nil), out.Keys...)
					keys[0].Desc = !keys[0].Desc
					out.Keys = keys
				}
			}
			return outs
		})
	pristine := rules.NewImplementationRule(
		ir.ID()+900, ir.Name()+"Pristine", ir.Pattern(), ir.Implement)
	o := New(rules.RegistryReplacing(map[rules.ID]rules.Rule{sortRule: flipped}, pristine), cat)

	bound, err := bind.BindSQL("SELECT n_name FROM nation ORDER BY n_name", cat)
	if err != nil {
		t.Fatal(err)
	}

	plan := func(disabled ...rules.ID) *physical.Expr {
		res, err := o.Optimize(bound.Tree, bound.MD, Options{Disabled: rules.NewSet(disabled...)})
		if err != nil {
			t.Fatalf("optimize (disabled %v): %v", disabled, err)
		}
		return res.Plan
	}
	sortOf := func(p *physical.Expr) *physical.Expr {
		for e := p; e != nil; {
			if e.Op == physical.OpSort {
				return e
			}
			if len(e.Children) == 0 {
				break
			}
			e = e.Children[0]
		}
		t.Fatalf("no Sort in plan:\n%s", p)
		return nil
	}

	if s := sortOf(plan()); !s.Keys[0].Desc {
		t.Errorf("interposed rule did not win the equal-cost tie: sort key is asc\nplan:\n%s", plan())
	}
	if s := sortOf(plan(sortRule)); s.Keys[0].Desc {
		t.Errorf("pristine fallback not used with rule %d disabled: sort key is desc\nplan:\n%s", sortRule, plan(sortRule))
	}
}
