package opt

import (
	"qtrtest/internal/memo"
	"qtrtest/internal/rules"
)

// exploreReference is the pass-based exploration fixpoint the dirty-queue
// explorer replaced, preserved verbatim as the reference semantics. The
// differential tests run it through Options.exploreOverride and require the
// production explorer to produce byte-identical memos, rule sets, and plans.
func exploreReference(o *Optimizer, ctx *rules.Context, exercised rules.Set, interactions map[[2]rules.ID]bool, disabled rules.Set, maxExprs, maxPasses int) {
	m := ctx.Memo
	expl := o.reg.Exploration()
	// Pattern bindings of an expression depend only on the expressions in
	// its child groups (patterns are at most two concrete levels deep).
	// kidVersion lets a pass skip re-binding a rule whose pattern found
	// nothing last time unless a child group has grown since.
	kidVersion := func(e *memo.MExpr) int {
		v := 0
		for _, k := range e.Kids {
			v += len(m.Group(k).Exprs)
		}
		return v
	}
	triedAt := make(map[*memo.MExpr]int)
	for pass := 0; pass < maxPasses; pass++ {
		changed := false
		// Groups and expressions grow during iteration; index-based loops
		// pick the new ones up within the same pass.
		for gi := 1; gi <= m.NumGroups(); gi++ {
			g := m.Group(memo.GroupID(gi))
			for ei := 0; ei < len(g.Exprs); ei++ {
				e := g.Exprs[ei]
				ver := kidVersion(e)
				if v, ok := triedAt[e]; ok && v == ver {
					continue
				}
				triedAt[e] = ver
				for _, r := range expl {
					if disabled.Contains(r.ID()) || e.WasApplied(int(r.ID())) {
						continue
					}
					binds := rules.Bind(m, e, r.Pattern())
					if len(binds) == 0 {
						// The pattern may start matching later, once child
						// groups gain expressions; retry when they grow.
						continue
					}
					e.MarkApplied(int(r.ID()))
					for _, b := range binds {
						subs := r.Apply(ctx, b)
						if len(subs) > 0 {
							exercised.Add(r.ID())
							recordInteractions(interactions, b, r.ID())
						}
						for _, sub := range subs {
							if m.InsertSubstituteFrom(sub, e.Group, int(r.ID())) {
								changed = true
							}
						}
					}
					if m.NumExprs() >= maxExprs {
						return
					}
				}
			}
		}
		if !changed {
			return
		}
	}
}
