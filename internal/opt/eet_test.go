package opt

import (
	"testing"

	"qtrtest/internal/bind"
	"qtrtest/internal/catalog"
	"qtrtest/internal/exec"
	"qtrtest/internal/rules"
)

// TestEETRegistryPlansMatchDefault is the end-to-end soundness check for
// the EET rule pack: optimizing under RegistryWithEET must not change query
// results — the grown substitutes are exact equivalences, so whichever plan
// wins the cost race returns the same multiset as the default registry's
// choice. The queries are unordered and LIMIT-free so the multiset compare
// is exact.
func TestEETRegistryPlansMatchDefault(t *testing.T) {
	cat := catalog.LoadTPCH(catalog.DefaultTPCHConfig())
	base := New(rules.DefaultRegistry(), cat)
	eet := New(rules.RegistryWithEET(), cat)
	queries := []string{
		"SELECT n_name FROM nation WHERE n_regionkey = 1",
		"SELECT c_name FROM customer JOIN nation ON c_nationkey = n_nationkey WHERE n_name = 'FRANCE'",
		"SELECT n_name FROM nation WHERE ((n_nationkey + n_regionkey) + n_nationkey) > 0",
		"SELECT n_name FROM nation WHERE n_regionkey = 1 OR n_regionkey = 2",
		"SELECT s_suppkey, COUNT(*) AS c FROM supplier WHERE s_nationkey < 20 GROUP BY s_suppkey",
	}
	// Collect the union of exercised rule IDs to prove the pack actually
	// participates in exploration rather than merely existing.
	exercised := rules.Set{}
	for _, q := range queries {
		bound, err := bind.BindSQL(q, cat)
		if err != nil {
			t.Fatalf("bind %q: %v", q, err)
		}
		bres, err := base.Optimize(bound.Tree, bound.MD, Options{})
		if err != nil {
			t.Fatalf("default optimize %q: %v", q, err)
		}
		bound2, err := bind.BindSQL(q, cat)
		if err != nil {
			t.Fatalf("bind %q: %v", q, err)
		}
		eres, err := eet.Optimize(bound2.Tree, bound2.MD, Options{})
		if err != nil {
			t.Fatalf("eet optimize %q: %v", q, err)
		}
		for _, id := range eres.RuleSet.Sorted() {
			exercised.Add(id)
		}
		brows, err := exec.Run(bres.Plan, cat)
		if err != nil {
			t.Fatalf("default plan for %q: %v", q, err)
		}
		erows, err := exec.Run(eres.Plan, cat)
		if err != nil {
			t.Fatalf("eet plan for %q: %v", q, err)
		}
		if !exec.EqualMultisets(brows, erows) {
			t.Errorf("%q: EET registry changed results: %d vs %d rows; %s",
				q, len(brows), len(erows), exec.DiffSummary(brows, erows))
		}
	}
	for id := rules.ID(41); id <= 47; id++ {
		if !exercised.Contains(id) {
			t.Errorf("EET rule %d never exercised across the query set", id)
		}
	}
}

// TestEETRegistryTerminates: exploration with the EET pack must complete on
// a growth-friendly filter (the NOT-marker guard plus memo dedup close the
// search space). Optimize returning at all is the check; the assertion
// below just pins that the arithmetic rules fired within it.
func TestEETRegistryTerminates(t *testing.T) {
	cat := catalog.LoadTPCH(catalog.DefaultTPCHConfig())
	o := New(rules.RegistryWithEET(), cat)
	bound, err := bind.BindSQL(
		"SELECT n_name FROM nation WHERE ((n_nationkey + n_regionkey) + n_nationkey) > 0 AND n_regionkey < 9", cat)
	if err != nil {
		t.Fatal(err)
	}
	res, err := o.Optimize(bound.Tree, bound.MD, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.RuleSet.Contains(46) || !res.RuleSet.Contains(47) {
		t.Errorf("arith EET rules not exercised on an arith-heavy filter; RuleSet=%v", res.RuleSet.Sorted())
	}
}
