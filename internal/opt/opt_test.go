package opt

import (
	"errors"
	"testing"

	"qtrtest/internal/bind"
	"qtrtest/internal/catalog"
	"qtrtest/internal/exec"
	"qtrtest/internal/logical"
	"qtrtest/internal/physical"
	"qtrtest/internal/rules"
)

func harness(t *testing.T) (*Optimizer, *catalog.Catalog) {
	t.Helper()
	cat := catalog.LoadTPCH(catalog.DefaultTPCHConfig())
	return New(rules.DefaultRegistry(), cat), cat
}

func optimize(t *testing.T, o *Optimizer, q string, opts Options) *Result {
	t.Helper()
	bound, err := bind.BindSQL(q, o.Catalog())
	if err != nil {
		t.Fatalf("bind %q: %v", q, err)
	}
	res, err := o.Optimize(bound.Tree, bound.MD, opts)
	if err != nil {
		t.Fatalf("optimize %q: %v", q, err)
	}
	return res
}

func TestFilterPushdownChosen(t *testing.T) {
	o, _ := harness(t)
	q := "SELECT * FROM lineitem JOIN orders ON l_orderkey = o_orderkey WHERE l_quantity = 1"
	res := optimize(t, o, q, Options{})
	// The chosen plan must have the filter below the join, not above.
	var sawJoin bool
	var filterAboveJoin bool
	var walk func(p *physical.Expr, aboveJoin bool)
	walk = func(p *physical.Expr, aboveJoin bool) {
		switch p.Op {
		case physical.OpHashJoin, physical.OpMergeJoin, physical.OpNLJoin:
			sawJoin = true
			aboveJoin = false // entering children: below the join now
			for _, c := range p.Children {
				walk(c, aboveJoin)
			}
			return
		case physical.OpFilter:
			if aboveJoin {
				filterAboveJoin = true
			}
		}
		for _, c := range p.Children {
			walk(c, aboveJoin)
		}
	}
	walk(res.Plan, true)
	if !sawJoin {
		t.Fatalf("no join in plan:\n%s", res.Plan)
	}
	if filterAboveJoin {
		t.Errorf("filter not pushed below join:\n%s", res.Plan)
	}
	// Disabling the pushdown rules must not lower the cost.
	res2 := optimize(t, o, q, Options{Disabled: rules.NewSet(5, 6, 7)})
	if res2.Cost < res.Cost {
		t.Errorf("disabling pushdown reduced cost: %f < %f", res2.Cost, res.Cost)
	}
}

func TestDisableMonotonicityProperty(t *testing.T) {
	// For a well-behaved optimizer, Cost(q) <= Cost(q, ¬R) — the invariant
	// the TopKMonotonic algorithm relies on (§5.3.1). Check over all
	// singleton exploration-rule disablings for a few queries.
	o, _ := harness(t)
	queries := []string{
		"SELECT c_name FROM customer JOIN nation ON c_nationkey = n_nationkey WHERE n_name = 'FRANCE'",
		"SELECT l_suppkey, COUNT(*) AS c FROM lineitem GROUP BY l_suppkey",
		"SELECT o_orderkey FROM orders WHERE EXISTS (SELECT 1 AS one FROM lineitem WHERE l_orderkey = o_orderkey)",
	}
	for _, q := range queries {
		base := optimize(t, o, q, Options{})
		for _, r := range rules.ExplorationRules() {
			res := optimize(t, o, q, Options{Disabled: rules.NewSet(r.ID())})
			if res.Cost < base.Cost-1e-9 {
				t.Errorf("disabling rule %d lowered cost for %q: %f < %f", r.ID(), q, res.Cost, base.Cost)
			}
		}
	}
}

func TestNoPlanWhenImplementationDisabled(t *testing.T) {
	o, _ := harness(t)
	bound, err := bind.BindSQL("SELECT n_name FROM nation", o.Catalog())
	if err != nil {
		t.Fatal(err)
	}
	_, err = o.Optimize(bound.Tree, bound.MD, Options{Disabled: rules.NewSet(101)}) // GetToScan
	if !errors.Is(err, ErrNoPlan) {
		t.Errorf("expected ErrNoPlan, got %v", err)
	}
}

func TestDisableBothJoinImpls(t *testing.T) {
	o, _ := harness(t)
	q := "SELECT * FROM nation JOIN region ON n_regionkey = r_regionkey"
	// Disable hash and merge join: nested loops must carry the query.
	res := optimize(t, o, q, Options{Disabled: rules.NewSet(104, 106)})
	found := false
	var walk func(p *physical.Expr)
	walk = func(p *physical.Expr) {
		if p.Op == physical.OpNLJoin {
			found = true
		}
		for _, c := range p.Children {
			walk(c)
		}
	}
	walk(res.Plan)
	if !found {
		t.Errorf("expected NL join:\n%s", res.Plan)
	}
	bound, _ := bind.BindSQL(q, o.Catalog())
	if _, err := o.Optimize(bound.Tree, bound.MD, Options{Disabled: rules.NewSet(104, 105, 106)}); !errors.Is(err, ErrNoPlan) {
		t.Errorf("no join implementation left: expected ErrNoPlan, got %v", err)
	}
}

func TestRuleSetIncludesImplementationRules(t *testing.T) {
	o, _ := harness(t)
	res := optimize(t, o, "SELECT * FROM nation JOIN region ON n_regionkey = r_regionkey", Options{})
	for _, id := range []rules.ID{101, 104, 105, 106} {
		if !res.RuleSet.Contains(id) {
			t.Errorf("RuleSet missing implementation rule %d", id)
		}
	}
	if res.RuleSet.Contains(113) {
		t.Error("RuleSet should not contain the aggregation rule for a join query")
	}
}

func TestDisabledRulesNeverReported(t *testing.T) {
	o, _ := harness(t)
	q := "SELECT * FROM (SELECT * FROM nation JOIN region ON n_regionkey = r_regionkey) AS t WHERE n_nationkey > 1"
	base := optimize(t, o, q, Options{})
	for _, id := range base.RuleSet.Sorted() {
		if id > 100 {
			continue
		}
		res := optimize(t, o, q, Options{Disabled: rules.NewSet(id)})
		if res.RuleSet.Contains(id) {
			t.Errorf("disabled rule %d still reported as exercised", id)
		}
	}
}

func TestPlanAnnotations(t *testing.T) {
	o, _ := harness(t)
	res := optimize(t, o, "SELECT c_name FROM customer WHERE c_acctbal > 0", Options{})
	var walk func(p *physical.Expr)
	walk = func(p *physical.Expr) {
		if p.Cost <= 0 {
			t.Errorf("%s has nonpositive cost %f", p.Op, p.Cost)
		}
		if p.Rows < 0 {
			t.Errorf("%s has negative row estimate", p.Op)
		}
		for _, c := range p.Children {
			if c.Cost > p.Cost {
				t.Errorf("child cost %f exceeds parent cumulative cost %f", c.Cost, p.Cost)
			}
			walk(c)
		}
	}
	walk(res.Plan)
}

func TestDeterministicOptimization(t *testing.T) {
	o, _ := harness(t)
	q := "SELECT s_name FROM supplier JOIN nation ON s_nationkey = n_nationkey WHERE n_name <> 'PERU'"
	a := optimize(t, o, q, Options{})
	b := optimize(t, o, q, Options{})
	if a.Plan.Hash() != b.Plan.Hash() {
		t.Error("optimization must be deterministic")
	}
	if a.Cost != b.Cost {
		t.Error("costs must be deterministic")
	}
}

func TestMemoGrowthBounded(t *testing.T) {
	o, _ := harness(t)
	// A 5-way join chain: exploration must stay within limits and succeed.
	q := `SELECT * FROM lineitem
		JOIN orders ON l_orderkey = o_orderkey
		JOIN customer ON o_custkey = c_custkey
		JOIN nation ON c_nationkey = n_nationkey
		JOIN region ON n_regionkey = r_regionkey`
	bound, err := bind.BindSQL(q, o.Catalog())
	if err != nil {
		t.Fatal(err)
	}
	res, err := o.Optimize(bound.Tree, bound.MD, Options{MaxExprs: 500, MaxPasses: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Memo.NumExprs() > 600 {
		t.Errorf("memo exceeded its cap: %d exprs", res.Memo.NumExprs())
	}
	rows, err := exec.Run(res.Plan, o.Catalog())
	if err != nil {
		t.Fatal(err)
	}
	_ = rows
}

func TestNilTree(t *testing.T) {
	o, _ := harness(t)
	if _, err := o.Optimize(nil, logical.NewMetadata(o.Catalog()), Options{}); err == nil {
		t.Error("nil tree must error")
	}
}
