package opt

import (
	"qtrtest/internal/datum"
	"qtrtest/internal/logical"
	"qtrtest/internal/memo"
	"qtrtest/internal/scalar"
)

// groupStats is the optimizer's cardinality estimate for a memo group: a row
// count plus per-column distinct-value estimates. Stats are a logical
// property: every expression in a group shares them, so they are computed
// from the group's first (original) expression.
type groupStats struct {
	rows     float64
	distinct map[scalar.ColumnID]float64
}

const (
	defaultSel  = 1.0 / 3 // selectivity of range and other opaque predicates
	isNullSel   = 0.1
	minSel      = 1e-7
	minRows     = 1e-3
	defaultDist = 10
)

func (s *groupStats) distinctOf(id scalar.ColumnID) float64 {
	if d, ok := s.distinct[id]; ok && d > 0 {
		return d
	}
	return defaultDist
}

// statsBuilder computes and caches group statistics. The cache is a dense
// slice indexed by GroupID: the builder is constructed after exploration,
// when the memo's group count is final.
type statsBuilder struct {
	m     *memo.Memo
	cache []*groupStats // index = GroupID-1
	// noHistograms disables histogram-based selectivity (ablation knob).
	noHistograms bool
}

func newStatsBuilder(m *memo.Memo) *statsBuilder {
	return &statsBuilder{m: m, cache: make([]*groupStats, m.NumGroups())}
}

// statsPlaceholder terminates stats recursion on (impossible in well-formed
// memos) cyclic group references. It is shared and read-only: a cycle reads
// rows=1 and default distinct counts from it, nothing ever writes.
var statsPlaceholder = &groupStats{rows: 1}

func (sb *statsBuilder) stats(g memo.GroupID) *groupStats {
	if st := sb.cache[g-1]; st != nil {
		return st
	}
	sb.cache[g-1] = statsPlaceholder
	st := sb.compute(sb.m.Group(g).Exprs[0])
	sb.cache[g-1] = st
	return st
}

func (sb *statsBuilder) compute(e *memo.MExpr) *groupStats {
	node := e.Node
	switch node.Op {
	case logical.OpGet:
		t, err := sb.m.MD.Catalog().Table(node.Table)
		st := &groupStats{rows: 1, distinct: make(map[scalar.ColumnID]float64, len(node.Cols))}
		if err != nil {
			return st
		}
		st.rows = float64(t.Stats.RowCount)
		for i, col := range t.Columns {
			if i < len(node.Cols) {
				st.distinct[node.Cols[i]] = float64(t.Stats.DistinctCount[col.Name])
			}
		}
		return st

	case logical.OpSelect:
		in := sb.stats(e.Kids[0])
		sel := sb.selectivity(node.Filter, in, nil)
		return scaleStats(in, in.rows*sel)

	case logical.OpProject:
		in := sb.stats(e.Kids[0])
		st := &groupStats{rows: in.rows, distinct: make(map[scalar.ColumnID]float64, len(node.Projs))}
		for _, it := range node.Projs {
			if ref, ok := it.E.(*scalar.ColRef); ok {
				st.distinct[it.Out] = in.distinctOf(ref.ID)
			} else {
				st.distinct[it.Out] = clampDist(in.rows, in.rows)
			}
		}
		return st

	case logical.OpJoin, logical.OpLeftJoin:
		l := sb.stats(e.Kids[0])
		r := sb.stats(e.Kids[1])
		sel := sb.selectivity(node.On, l, r)
		rows := l.rows * r.rows * sel
		if node.Op == logical.OpLeftJoin && rows < l.rows {
			rows = l.rows
		}
		rows = maxf(rows, minRows)
		st := &groupStats{rows: rows, distinct: make(map[scalar.ColumnID]float64, len(l.distinct)+len(r.distinct))}
		for id, d := range l.distinct {
			st.distinct[id] = clampDist(d, rows)
		}
		for id, d := range r.distinct {
			st.distinct[id] = clampDist(d, rows)
		}
		return st

	case logical.OpSemiJoin, logical.OpAntiJoin:
		l := sb.stats(e.Kids[0])
		r := sb.stats(e.Kids[1])
		sel := sb.selectivity(node.On, l, r)
		p := minf(1, r.rows*sel) // probability a left row has a match
		rows := l.rows * p
		if node.Op == logical.OpAntiJoin {
			rows = l.rows * (1 - p)
		}
		return scaleStats(l, maxf(rows, minRows))

	case logical.OpGroupBy:
		in := sb.stats(e.Kids[0])
		if len(node.GroupCols) == 0 {
			st := &groupStats{rows: 1, distinct: make(map[scalar.ColumnID]float64, len(node.Aggs))}
			for _, a := range node.Aggs {
				st.distinct[a.Out] = 1
			}
			return st
		}
		groups := 1.0
		for _, c := range node.GroupCols {
			groups *= in.distinctOf(c)
			if groups > in.rows {
				groups = in.rows
				break
			}
		}
		groups = maxf(minf(groups, in.rows), minRows)
		st := &groupStats{rows: groups, distinct: make(map[scalar.ColumnID]float64, len(node.GroupCols)+len(node.Aggs))}
		for _, c := range node.GroupCols {
			st.distinct[c] = clampDist(in.distinctOf(c), groups)
		}
		for _, a := range node.Aggs {
			st.distinct[a.Out] = clampDist(groups, groups)
		}
		return st

	case logical.OpUnionAll:
		l := sb.stats(e.Kids[0])
		r := sb.stats(e.Kids[1])
		st := &groupStats{rows: l.rows + r.rows, distinct: make(map[scalar.ColumnID]float64, len(node.OutCols))}
		for i, out := range node.OutCols {
			d := defaultDist * 2.0
			if len(node.InputCols) == 2 && i < len(node.InputCols[0]) && i < len(node.InputCols[1]) {
				d = l.distinctOf(node.InputCols[0][i]) + r.distinctOf(node.InputCols[1][i])
			}
			st.distinct[out] = clampDist(d, st.rows)
		}
		return st

	case logical.OpLimit:
		in := sb.stats(e.Kids[0])
		return scaleStats(in, minf(in.rows, float64(node.N)))

	case logical.OpSort:
		return sb.stats(e.Kids[0])
	}
	return &groupStats{rows: 1, distinct: map[scalar.ColumnID]float64{}}
}

// selectivity estimates the fraction of rows satisfying pred. For join
// predicates, r carries the right side's stats; for filters r is nil.
func (sb *statsBuilder) selectivity(pred scalar.Expr, l, r *groupStats) float64 {
	dist := func(id scalar.ColumnID) float64 {
		if r != nil {
			if d, ok := r.distinct[id]; ok && d > 0 {
				return d
			}
		}
		return l.distinctOf(id)
	}
	var selOf func(e scalar.Expr) float64
	selOf = func(e scalar.Expr) float64 {
		switch t := e.(type) {
		case *scalar.And:
			s := 1.0
			for _, k := range t.Kids {
				s *= selOf(k)
			}
			return s
		case *scalar.Or:
			inv := 1.0
			for _, k := range t.Kids {
				inv *= 1 - selOf(k)
			}
			return 1 - inv
		case *scalar.Not:
			return maxf(1-selOf(t.Kid), minSel)
		case *scalar.IsNull:
			return isNullSel
		case *scalar.Cmp:
			lref, lok := t.L.(*scalar.ColRef)
			rref, rok := t.R.(*scalar.ColRef)
			// Column-versus-constant comparisons consult the base table's
			// equi-depth histogram when one exists.
			if lok && !rok {
				if c, isConst := t.R.(*scalar.Const); isConst {
					if s, ok := sb.histSelectivity(t.Op, lref.ID, c.D); ok {
						return s
					}
				}
			}
			if rok && !lok {
				if c, isConst := t.L.(*scalar.Const); isConst {
					if s, ok := sb.histSelectivity(t.Op.Commute(), rref.ID, c.D); ok {
						return s
					}
				}
			}
			var eq float64
			switch {
			case lok && rok:
				eq = 1 / maxf(maxf(dist(lref.ID), dist(rref.ID)), 1)
			case lok:
				eq = 1 / maxf(dist(lref.ID), 1)
			case rok:
				eq = 1 / maxf(dist(rref.ID), 1)
			default:
				eq = defaultSel
			}
			switch t.Op {
			case scalar.CmpEQ:
				return maxf(eq, minSel)
			case scalar.CmpNE:
				return maxf(1-eq, minSel)
			default:
				return defaultSel
			}
		case *scalar.Const:
			return 1
		default:
			return defaultSel
		}
	}
	return maxf(minf(selOf(pred), 1), minSel)
}

// histSelectivity estimates a column-versus-constant comparison through the
// base table's equi-depth histogram. ok is false when the column is computed
// or has no histogram; the caller then falls back to distinct-count
// heuristics. Base-table histograms are used at every plan level — the usual
// approximation that post-operator distributions resemble base ones.
func (sb *statsBuilder) histSelectivity(op scalar.CmpOp, id scalar.ColumnID, d datum.Datum) (float64, bool) {
	if sb.noHistograms {
		return 0, false
	}
	tbl, idx, ok := sb.m.MD.BaseColumn(id)
	if !ok {
		return 0, false
	}
	h := tbl.Stats.Histograms[tbl.Columns[idx].Name]
	if h == nil || h.TotalCount == 0 {
		return 0, false
	}
	v, ok := histValue(d)
	if !ok {
		return 0, false
	}
	nullFrac := float64(h.NullCount) / float64(h.TotalCount)
	var s float64
	switch op {
	case scalar.CmpEQ:
		s = h.SelectivityEQ(v)
	case scalar.CmpNE:
		s = 1 - h.SelectivityEQ(v) - nullFrac
	case scalar.CmpLT:
		s = h.SelectivityLT(v, false)
	case scalar.CmpLE:
		s = h.SelectivityLT(v, true)
	case scalar.CmpGT:
		s = 1 - h.SelectivityLT(v, true) - nullFrac
	case scalar.CmpGE:
		s = 1 - h.SelectivityLT(v, false) - nullFrac
	default:
		return 0, false
	}
	return maxf(minf(s, 1), minSel), true
}

func histValue(d datum.Datum) (float64, bool) {
	switch d.K {
	case datum.KindInt, datum.KindDate:
		return float64(d.I), true
	case datum.KindFloat:
		return d.F, true
	default:
		return 0, false
	}
}

func scaleStats(in *groupStats, rows float64) *groupStats {
	rows = maxf(rows, minRows)
	// groupStats maps are never written after construction, so when clamping
	// would leave every distinct count unchanged the input map is shared
	// instead of cloned.
	share := true
	for _, d := range in.distinct {
		if clampDist(d, rows) != d {
			share = false
			break
		}
	}
	if share {
		return &groupStats{rows: rows, distinct: in.distinct}
	}
	st := &groupStats{rows: rows, distinct: make(map[scalar.ColumnID]float64, len(in.distinct))}
	for id, d := range in.distinct {
		st.distinct[id] = clampDist(d, rows)
	}
	return st
}

func clampDist(d, rows float64) float64 {
	return maxf(minf(d, rows), 1)
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
