package exec

import (
	"testing"

	"qtrtest/internal/catalog"
	"qtrtest/internal/datum"
	"qtrtest/internal/logical"
	"qtrtest/internal/physical"
	"qtrtest/internal/scalar"
)

// confCatalog is testCatalog plus a FLOAT table for the numeric-widening
// cases:
//
//	t3(f): 1.0, 2.5
func confCatalog() *catalog.Catalog {
	c := testCatalog()
	t3 := &catalog.Table{
		Name:    "t3",
		Columns: []catalog.Column{{Name: "f", Type: datum.TypeFloat}},
		Rows: []datum.Row{
			{datum.NewFloat(1.0)},
			{datum.NewFloat(2.5)},
		},
	}
	t3.ComputeStats()
	c.Add(t3)
	return c
}

func scanT3() *physical.Expr {
	return &physical.Expr{Op: physical.OpScan, Table: "t3", Cols: []scalar.ColumnID{5}}
}

func col(id scalar.ColumnID) scalar.Expr { return &scalar.ColRef{ID: id} }
func intc(v int64) scalar.Expr           { return &scalar.Const{D: datum.NewInt(v)} }
func cmp(op scalar.CmpOp, l, r scalar.Expr) scalar.Expr {
	return &scalar.Cmp{Op: op, L: l, R: r}
}

func filterOf(child *physical.Expr, pred scalar.Expr) *physical.Expr {
	return &physical.Expr{Op: physical.OpFilter, Children: []*physical.Expr{child}, Filter: pred}
}

// emptyT1 filters t1 down to zero rows (b > 1000 never holds).
func emptyT1() *physical.Expr {
	return filterOf(scanT1(), cmp(scalar.CmpGT, col(2), intc(1000)))
}

func row(ds ...datum.Datum) datum.Row { return datum.Row(ds) }

// TestBackendConformance executes one table of (plan, expected-rows) cases on
// every registered engine — row, batch and every Backend (ref) — from a
// single test, pinning the semantics the backends must agree on: 3VL
// predicate evaluation, NULL grouping and join keys, empty-input aggregates,
// LIMIT, sort stability and NULL placement, and numeric-kind widening of
// group keys. A positional case compares the output row-for-row; a multiset
// case compares after NormalizeRows on both sides.
func TestBackendConformance(t *testing.T) {
	cat := confCatalog()
	ni, nf, null := datum.NewInt, datum.NewFloat, datum.Null
	cases := []struct {
		name       string
		plan       *physical.Expr
		positional bool
		want       []datum.Row
	}{
		{
			// b > 15: (3,NULL) evaluates UNKNOWN and is dropped.
			name: "3vl-filter-drops-unknown",
			plan: filterOf(scanT1(), cmp(scalar.CmpGT, col(2), intc(15))),
			want: []datum.Row{row(ni(2), ni(20)), row(null, ni(40))},
		},
		{
			// NOT(b > 15): NOT UNKNOWN is still UNKNOWN, so (3,NULL) stays out
			// of both the filter and its negation.
			name: "3vl-not-unknown-stays-unknown",
			plan: filterOf(scanT1(), &scalar.Not{Kid: cmp(scalar.CmpGT, col(2), intc(15))}),
			want: []datum.Row{row(ni(1), ni(10))},
		},
		{
			// a = 1 OR b > 100: the (NULL,40) row is UNKNOWN OR FALSE = UNKNOWN.
			name: "3vl-or-with-null",
			plan: filterOf(scanT1(), &scalar.Or{Kids: []scalar.Expr{
				cmp(scalar.CmpEQ, col(1), intc(1)),
				cmp(scalar.CmpGT, col(2), intc(100)),
			}}),
			want: []datum.Row{row(ni(1), ni(10))},
		},
		{
			name: "is-null-selects-null-row",
			plan: filterOf(scanT1(), &scalar.IsNull{Kid: col(1)}),
			want: []datum.Row{row(null, ni(40))},
		},
		{
			// NULL join keys never match; a=1 matches twice, a=3 once.
			name: "inner-join-null-keys",
			plan: joinPlan(physical.OpHashJoin, physical.JoinInner),
			want: []datum.Row{
				row(ni(1), ni(10), ni(1), datum.NewString("one")),
				row(ni(1), ni(10), ni(1), datum.NewString("uno")),
				row(ni(3), null, ni(3), datum.NewString("three")),
			},
		},
		{
			// Unmatched left rows — including the NULL-key one — pad with NULLs.
			name: "left-join-pads-unmatched",
			plan: joinPlan(physical.OpHashJoin, physical.JoinLeft),
			want: []datum.Row{
				row(ni(1), ni(10), ni(1), datum.NewString("one")),
				row(ni(1), ni(10), ni(1), datum.NewString("uno")),
				row(ni(3), null, ni(3), datum.NewString("three")),
				row(ni(2), ni(20), null, null),
				row(null, ni(40), null, null),
			},
		},
		{
			// Semi emits each matching left row once even with two matches.
			name: "semi-join-no-duplicates",
			plan: joinPlan(physical.OpHashJoin, physical.JoinSemi),
			want: []datum.Row{row(ni(1), ni(10)), row(ni(3), null)},
		},
		{
			// Anti keeps the NULL-key left row: NULL = x is UNKNOWN, not a match.
			name: "anti-join-keeps-null-key",
			plan: joinPlan(physical.OpHashJoin, physical.JoinAnti),
			want: []datum.Row{row(ni(2), ni(20)), row(null, ni(40))},
		},
		{
			// NULL forms its own group; COUNT(b) skips NULL b, SUM(NULL-only)
			// is NULL.
			name: "null-grouping-and-agg-nulls",
			plan: &physical.Expr{
				Op: physical.OpHashAgg, Children: []*physical.Expr{scanT1()},
				GroupCols: []scalar.ColumnID{1},
				Aggs: []scalar.Agg{
					{Op: scalar.AggCountStar, Out: 10},
					{Op: scalar.AggCount, Arg: col(2), Out: 11},
					{Op: scalar.AggSum, Arg: col(2), Out: 12},
				},
			},
			want: []datum.Row{
				row(ni(1), ni(1), ni(1), ni(10)),
				row(ni(2), ni(1), ni(1), ni(20)),
				row(ni(3), ni(1), ni(0), null),
				row(null, ni(1), ni(1), ni(40)),
			},
		},
		{
			// Scalar aggregate over empty input: one row, COUNT 0, others NULL.
			name: "empty-input-scalar-agg",
			plan: &physical.Expr{
				Op: physical.OpHashAgg, Children: []*physical.Expr{emptyT1()},
				Aggs: []scalar.Agg{
					{Op: scalar.AggCountStar, Out: 10},
					{Op: scalar.AggCount, Arg: col(2), Out: 11},
					{Op: scalar.AggSum, Arg: col(2), Out: 12},
					{Op: scalar.AggMin, Arg: col(2), Out: 13},
					{Op: scalar.AggMax, Arg: col(2), Out: 14},
					{Op: scalar.AggAvg, Arg: col(2), Out: 15},
				},
			},
			want: []datum.Row{row(ni(0), ni(0), null, null, null, null)},
		},
		{
			// Grouped aggregate over empty input: zero rows.
			name: "empty-input-grouped-agg",
			plan: &physical.Expr{
				Op: physical.OpHashAgg, Children: []*physical.Expr{emptyT1()},
				GroupCols: []scalar.ColumnID{1},
				Aggs:      []scalar.Agg{{Op: scalar.AggCountStar, Out: 10}},
			},
			want: nil,
		},
		{
			// Ascending sort puts NULL first; positional comparison pins it.
			name:       "sort-asc-nulls-first",
			positional: true,
			plan: &physical.Expr{
				Op: physical.OpSort, Children: []*physical.Expr{scanT1()},
				Keys: []logical.SortKey{{Col: 1}},
			},
			want: []datum.Row{
				row(null, ni(40)), row(ni(1), ni(10)), row(ni(2), ni(20)), row(ni(3), null),
			},
		},
		{
			// Descending sort reverses the total order, so NULL lands last.
			name:       "sort-desc-nulls-last",
			positional: true,
			plan: &physical.Expr{
				Op: physical.OpSort, Children: []*physical.Expr{scanT1()},
				Keys: []logical.SortKey{{Col: 1, Desc: true}},
			},
			want: []datum.Row{
				row(ni(3), null), row(ni(2), ni(20)), row(ni(1), ni(10)), row(null, ni(40)),
			},
		},
		{
			// Stable sort: the tied x=1 rows keep their table order (one, uno).
			name:       "sort-stability-on-ties",
			positional: true,
			plan: &physical.Expr{
				Op: physical.OpSort, Children: []*physical.Expr{scanT2()},
				Keys: []logical.SortKey{{Col: 3}},
			},
			want: []datum.Row{
				row(null, datum.NewString("null")),
				row(ni(1), datum.NewString("one")),
				row(ni(1), datum.NewString("uno")),
				row(ni(3), datum.NewString("three")),
			},
		},
		{
			// LIMIT under the input size, after a total-order sort.
			name:       "limit-under",
			positional: true,
			plan: &physical.Expr{
				Op: physical.OpLimit, N: 2,
				Children: []*physical.Expr{{
					Op: physical.OpSort, Children: []*physical.Expr{scanT1()},
					Keys: []logical.SortKey{{Col: 1}},
				}},
			},
			want: []datum.Row{row(null, ni(40)), row(ni(1), ni(10))},
		},
		{
			// LIMIT over the input size passes everything through.
			name: "limit-over",
			plan: &physical.Expr{Op: physical.OpLimit, N: 10, Children: []*physical.Expr{scanT1()}},
			want: []datum.Row{
				row(ni(1), ni(10)), row(ni(2), ni(20)), row(ni(3), null), row(null, ni(40)),
			},
		},
		{
			// UNION ALL of an INT and a FLOAT column, then GROUP BY: INT 1 and
			// FLOAT 1.0 widen to the same group key, and the group's
			// representative keeps the first appearance's kind (INT).
			name: "union-widens-group-keys",
			plan: &physical.Expr{
				Op: physical.OpHashAgg,
				Children: []*physical.Expr{{
					Op:        physical.OpConcat,
					Children:  []*physical.Expr{scanT1(), scanT3()},
					OutCols:   []scalar.ColumnID{20},
					InputCols: [][]scalar.ColumnID{{1}, {5}},
				}},
				GroupCols: []scalar.ColumnID{20},
				Aggs:      []scalar.Agg{{Op: scalar.AggCountStar, Out: 21}},
			},
			want: []datum.Row{
				row(ni(1), ni(2)), // INT 1 and FLOAT 1.0 fold together
				row(ni(2), ni(1)),
				row(ni(3), ni(1)),
				row(nf(2.5), ni(1)),
				row(null, ni(1)),
			},
		},
		{
			// MIN/MAX over the widened column: MIN is NULL-skipping INT 1 (not
			// FLOAT 1.0 — first smallest wins), MAX is INT 3.
			name: "min-max-over-mixed-kinds",
			plan: &physical.Expr{
				Op: physical.OpHashAgg,
				Children: []*physical.Expr{{
					Op:        physical.OpConcat,
					Children:  []*physical.Expr{scanT1(), scanT3()},
					OutCols:   []scalar.ColumnID{20},
					InputCols: [][]scalar.ColumnID{{1}, {5}},
				}},
				Aggs: []scalar.Agg{
					{Op: scalar.AggMin, Arg: col(20), Out: 21},
					{Op: scalar.AggMax, Arg: col(20), Out: 22},
				},
			},
			want: []datum.Row{row(ni(1), ni(3))},
		},
	}

	engines := Engines()
	if len(engines) < 3 {
		t.Fatalf("Engines() = %v, want row, batch and at least one registered backend", engines)
	}
	for _, tc := range cases {
		for _, eng := range engines {
			t.Run(tc.name+"/"+eng.String(), func(t *testing.T) {
				got, err := RunEngine(eng, tc.plan, cat, 0, 0)
				if err != nil {
					t.Fatalf("RunEngine(%v): %v", eng, err)
				}
				want := tc.want
				if !tc.positional {
					got = NormalizeRows(got)
					want = NormalizeRows(want)
				}
				if len(got) != len(want) {
					t.Fatalf("rows = %d, want %d\ngot: %v\nwant: %v", len(got), len(want), got, want)
				}
				for i := range want {
					if len(got[i]) != len(want[i]) {
						t.Fatalf("row %d width = %d, want %d", i, len(got[i]), len(want[i]))
					}
					for j := range want[i] {
						if got[i][j] != want[i][j] {
							t.Fatalf("row %d col %d = %v, want %v\ngot: %v", i, j, got[i][j], want[i][j], got)
						}
					}
				}
			})
		}
	}
}
