package exec

import (
	"fmt"
	"sort"

	"qtrtest/internal/datum"
	"qtrtest/internal/scalar"
)

// batchAgg is the columnar grouped/scalar aggregation. Aggregate arguments
// are evaluated once per batch (one vectorized pass per aggregate), and group
// keys go through an allocation-free two-step index: only the first row of
// each distinct group allocates its key string. The accumulators are the row
// engine's aggState, so aggregate semantics — including the SUM/AVG
// non-numeric execution error — live in exactly one place.
type batchAgg struct {
	child     BatchIterator
	groupCols []scalar.ColumnID
	aggs      []scalar.Agg
	ve        scalar.VecEval
	sorted    bool

	argVecs []datum.Vec
	keyBuf  []byte

	vecs []datum.Vec // transposed result rows
	idx  []int
	pos  int
	out  Batch
}

func (a *batchAgg) Open() error {
	if err := a.child.Open(); err != nil {
		return err
	}
	slots := make([]int, len(a.groupCols))
	for i, c := range a.groupCols {
		s, ok := a.ve.Env[c]
		if !ok {
			return fmt.Errorf("exec: grouping column c%d not in input", c)
		}
		slots[i] = s
	}
	if a.argVecs == nil {
		a.argVecs = getVecs(len(a.aggs))
	}
	groups := make(map[string]*aggGroup)
	var order []*aggGroup
	for {
		b, err := a.child.Next()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		for i, ag := range a.aggs {
			if ag.Op == scalar.AggCountStar {
				continue
			}
			if err := a.ve.Eval(ag.Arg, b.Cols, b.Idx, &a.argVecs[i]); err != nil {
				return err
			}
		}
		for k, ri := range b.Idx {
			a.keyBuf = a.keyBuf[:0]
			for _, s := range slots {
				a.keyBuf = b.Cols[s].D[ri].AppendKey(a.keyBuf)
			}
			g, ok := groups[string(a.keyBuf)]
			if !ok {
				rep := make(datum.Row, len(slots))
				for i, s := range slots {
					rep[i] = b.Cols[s].D[ri]
				}
				g = &aggGroup{key: string(a.keyBuf), rep: rep, states: make([]*aggState, len(a.aggs))}
				for i := range g.states {
					g.states[i] = newAggState()
				}
				groups[g.key] = g
				order = append(order, g)
			}
			for i, ag := range a.aggs {
				var d datum.Datum
				if ag.Op != scalar.AggCountStar {
					d = a.argVecs[i].D[k]
				}
				if err := g.states[i].add(d, ag.Op); err != nil {
					return err
				}
			}
		}
	}
	// Scalar aggregation over empty input yields one row (COUNT=0, others
	// NULL), per SQL semantics.
	if len(a.groupCols) == 0 && len(order) == 0 {
		g := &aggGroup{states: make([]*aggState, len(a.aggs))}
		for i := range g.states {
			g.states[i] = newAggState()
		}
		order = append(order, g)
	}
	if a.sorted {
		// Key strings use the same injective encoding in both engines, so
		// this order is byte-for-byte the row engine's.
		sort.Slice(order, func(i, j int) bool { return order[i].key < order[j].key })
	}
	width := len(a.groupCols) + len(a.aggs)
	a.vecs = getVecs(width)
	for _, g := range order {
		for i := range g.rep {
			a.vecs[i].Append(g.rep[i])
		}
		for i, ag := range a.aggs {
			a.vecs[len(a.groupCols)+i].Append(g.states[i].result(ag.Op))
		}
	}
	// The result selection is the identity, so the shared iota covers all but
	// pathological group counts; putSel's alias guard keeps it out of the pool.
	if n := len(order); n <= len(denseIota) {
		a.idx = denseIota[:n]
	} else {
		a.idx = make([]int, n)
		for i := range a.idx {
			a.idx[i] = i
		}
	}
	a.pos = 0
	return nil
}

func (a *batchAgg) Next() (*Batch, error) {
	if a.pos >= len(a.idx) {
		return nil, nil
	}
	end := a.pos + batchSize
	if end > len(a.idx) {
		end = len(a.idx)
	}
	a.out = Batch{Cols: a.vecs, Idx: a.idx[a.pos:end]}
	a.pos = end
	return &a.out, nil
}

func (a *batchAgg) Close() error {
	putVecs(a.argVecs)
	putVecs(a.vecs)
	a.argVecs, a.vecs = nil, nil
	putSel(a.idx)
	a.idx = nil
	return a.child.Close()
}
