package exec

import (
	"qtrtest/internal/catalog"
	"qtrtest/internal/datum"
	"qtrtest/internal/logical"
	"qtrtest/internal/physical"
	"qtrtest/internal/scalar"
)

// The batch engine converts the hot operators — scan, filter, project, hash
// join, hash aggregation — to columnar processing: operators exchange Batches
// of column vectors instead of single rows, amortizing interpretation
// overhead and eliminating the per-row key-string and combined-row
// allocations of the Volcano engine. Operators without a columnar
// implementation (sort, limit, concat, merge join, nested-loops join) still
// run row-at-a-time inside the same plan through adapter shims, and the row
// engine remains available as EngineRow — the differential golden tests pin
// the two engines to identical results, identical emission order and
// identical budget verdicts.

const (
	// batchSize is the nominal number of rows per batch. Scans and adapters
	// emit at most this many rows per batch; joins may emit up to candidateCap
	// rows when a probe chunk is match-dense.
	batchSize = 1024
	// candidateCap bounds the candidate join pairs gathered per probe chunk,
	// which bounds the memory a match-heavy (e.g. dropped-predicate) join can
	// pin regardless of fan-out.
	candidateCap = 4096
)

// denseIota is the shared read-only selection vector operators producing
// dense output slice their Idx from. Its length covers the largest batch any
// operator emits: a left join's candidate matches plus one fallout row per
// probe row.
var denseIota = func() []int {
	s := make([]int, candidateCap+batchSize)
	for i := range s {
		s[i] = i
	}
	return s
}()

// Batch is a unit of columnar data flow: one vector per output column plus a
// selection vector. Row k of the batch is (Cols[0].D[Idx[k]], Cols[1].D[Idx[k]], …);
// filters shrink Idx without touching the vectors. A batch and its backing
// arrays are only valid until the producer's next Next call.
type Batch struct {
	Cols []datum.Vec
	Idx  []int
	// Rows, when non-nil, is a ready-made row view of the batch: Rows[k] is
	// row k (the row Idx[k] selects), backed by stable storage that outlives
	// the batch. Producers that already hold materialized rows — scans window
	// the catalog's row slice — set it so consumers that need rows can skip
	// gathering. Operators that reshape the batch (filter, join, aggregate)
	// drop it; they construct fresh Batch values, so staleness cannot leak.
	Rows []datum.Row
}

// Len returns the number of selected rows in the batch.
func (b *Batch) Len() int { return len(b.Idx) }

// BatchIterator is the columnar operator interface: Open, then Next until it
// returns a nil batch, then Close.
type BatchIterator interface {
	Open() error
	// Next returns the next non-empty batch, or (nil, nil) at end of stream.
	Next() (*Batch, error)
	Close() error
}

// Engine selects an execution strategy; the engines are result- and
// verdict-identical by contract.
type Engine int

// Available engines.
const (
	// EngineBatch executes hot operators columnar with row-at-a-time shims
	// for the rest. The default.
	EngineBatch Engine = iota
	// EngineRow is the original Volcano row-at-a-time engine, retained as
	// the differential baseline.
	EngineRow
	// EngineRef is the independent reference interpreter
	// (internal/refengine), registered through the Backend seam in
	// backend.go. It evaluates logical trees directly and shares no
	// evaluation code with the two engines above, which is what makes it a
	// usable cross-check oracle for both of them.
	EngineRef
)

// String returns the engine name as spelled in reports and benchmarks.
func (e Engine) String() string {
	switch e {
	case EngineRow:
		return "row"
	case EngineBatch:
		return "batch"
	}
	if b := backendFor(e); b != nil {
		return b.Name()
	}
	return "batch"
}

// RunEngine executes a plan under the chosen engine with RunMax's caps.
//
// One deliberate fallback keeps the triple budget contract engine-independent:
// when a work budget is set and the plan contains a Limit, the batch engine
// would overshoot the row engine's work total (a batch child materializes up
// to batchSize rows where the row engine pulls exactly N), which could flip a
// campaign's Capped verdicts. Those plans run on the row engine. Plans
// without a Limit drain every operator completely under either engine, so
// their work totals — and therefore their ErrRowLimit outcomes — are
// identical.
func RunEngine(eng Engine, plan *physical.Expr, cat *catalog.Catalog, maxRows int, maxWork int64) ([]datum.Row, error) {
	if b := backendFor(eng); b != nil {
		return b.RunPlan(plan, cat, maxRows, maxWork)
	}
	if eng == EngineRow || (maxWork > 0 && hasLimit(plan)) {
		return runRowEngine(plan, cat, maxRows, maxWork)
	}
	var budget *int64
	if maxWork > 0 {
		b := maxWork
		budget = &b
	}
	it, err := buildBatchIter(plan, cat, budget)
	if err != nil {
		return nil, err
	}
	return runBatch(it, maxRows)
}

// runRowEngine is the retained Volcano path.
func runRowEngine(plan *physical.Expr, cat *catalog.Catalog, maxRows int, maxWork int64) ([]datum.Row, error) {
	var it Iterator
	var err error
	if maxWork > 0 {
		budget := maxWork
		it, err = buildBudget(plan, cat, &budget)
	} else {
		it, err = Build(plan, cat)
	}
	if err != nil {
		return nil, err
	}
	return runIter(it, maxRows)
}

// runBatch opens, drains and closes a batch iterator, gathering result rows
// with the same maxRows semantics as runIter.
func runBatch(it BatchIterator, maxRows int) (out []datum.Row, err error) {
	if err := it.Open(); err != nil {
		return nil, err
	}
	defer func() {
		if cerr := it.Close(); cerr != nil && err == nil {
			out, err = nil, cerr
		}
	}()
	for {
		b, err := it.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return out, nil
		}
		if maxRows > 0 && len(out)+b.Len() > maxRows {
			return nil, ErrRowLimit
		}
		out = append(out, gatherRows(b)...)
	}
}

// gatherRows materializes a batch into rows backed by one shared slab
// allocation, written column-at-a-time: the per-row make() this replaces
// dominated the profile of scan-heavy plans. Batches that carry a row view
// skip even the slab — a bare scan returns the catalog's own rows, the same
// zero-copy contract the row engine's scanIter has always had.
func gatherRows(b *Batch) []datum.Row {
	if b.Rows != nil {
		return b.Rows
	}
	width := len(b.Cols)
	n := b.Len()
	slab := make([]datum.Datum, n*width)
	for c := range b.Cols {
		d := b.Cols[c].D
		for k, ri := range b.Idx {
			slab[k*width+c] = d[ri]
		}
	}
	rows := make([]datum.Row, n)
	for k := range rows {
		rows[k] = slab[k*width : (k+1)*width : (k+1)*width]
	}
	return rows
}

// batchNative reports whether the operator has a columnar implementation.
func batchNative(op physical.Op) bool {
	switch op {
	case physical.OpScan, physical.OpFilter, physical.OpProject,
		physical.OpHashJoin, physical.OpHashAgg, physical.OpSortAgg:
		return true
	}
	return false
}

// buildBatchIter compiles a plan into a batch iterator tree; subtrees rooted
// at operators without a columnar implementation run row-at-a-time behind a
// batchFromRows shim. A non-nil budget threads RunMax's work accounting
// through every operator, charging exactly what buildBudget charges: one unit
// per row each operator emits, adapters free.
func buildBatchIter(plan *physical.Expr, cat *catalog.Catalog, budget *int64) (BatchIterator, error) {
	if !batchNative(plan.Op) {
		it, err := buildRowIter(plan, cat, budget)
		if err != nil {
			return nil, err
		}
		return &batchFromRows{child: it, width: len(plan.OutputCols())}, nil
	}
	var bit BatchIterator
	switch plan.Op {
	case physical.OpScan:
		t, err := cat.Table(plan.Table)
		if err != nil {
			return nil, err
		}
		bit = &batchScan{table: t}
	case physical.OpFilter:
		child, err := buildBatchIter(plan.Children[0], cat, budget)
		if err != nil {
			return nil, err
		}
		bit = &batchFilter{
			child: child, pred: plan.Filter,
			ve: scalar.VecEval{Env: envOf(plan.Children[0].OutputCols())},
		}
	case physical.OpProject:
		child, err := buildBatchIter(plan.Children[0], cat, budget)
		if err != nil {
			return nil, err
		}
		bit = &batchProject{
			child: child, items: plan.Projs,
			ve: scalar.VecEval{Env: envOf(plan.Children[0].OutputCols())},
		}
	case physical.OpHashJoin:
		left, err := buildBatchIter(plan.Children[0], cat, budget)
		if err != nil {
			return nil, err
		}
		right, err := buildBatchIter(plan.Children[1], cat, budget)
		if err != nil {
			return nil, err
		}
		bit = newBatchHashJoin(plan, left, right)
	case physical.OpHashAgg, physical.OpSortAgg:
		child, err := buildBatchIter(plan.Children[0], cat, budget)
		if err != nil {
			return nil, err
		}
		bit = &batchAgg{
			child: child, groupCols: plan.GroupCols, aggs: plan.Aggs,
			ve:     scalar.VecEval{Env: envOf(plan.Children[0].OutputCols())},
			sorted: plan.Op == physical.OpSortAgg,
		}
	}
	if budget != nil {
		bit = &batchBudget{child: bit, budget: budget}
	}
	return bit, nil
}

// buildRowIter compiles a plan into a row iterator tree, compiling
// batch-native subtrees with buildBatchIter behind a rowFromBatch shim. Scans
// stay on the zero-copy scanIter when a row operator consumes them directly.
func buildRowIter(plan *physical.Expr, cat *catalog.Catalog, budget *int64) (Iterator, error) {
	if plan.Op == physical.OpScan {
		t, err := cat.Table(plan.Table)
		if err != nil {
			return nil, err
		}
		var it Iterator = &scanIter{table: t}
		if budget != nil {
			it = &budgetIter{Iterator: it, budget: budget}
		}
		return it, nil
	}
	if batchNative(plan.Op) {
		b, err := buildBatchIter(plan, cat, budget)
		if err != nil {
			return nil, err
		}
		return &rowFromBatch{child: b}, nil
	}
	kids := make([]Iterator, len(plan.Children))
	for i, c := range plan.Children {
		k, err := buildRowIter(c, cat, budget)
		if err != nil {
			return nil, err
		}
		kids[i] = k
	}
	it, err := buildOver(plan, kids, cat)
	if err != nil {
		return nil, err
	}
	if budget != nil {
		it = &budgetIter{Iterator: it, budget: budget}
	}
	return it, nil
}

// batchBudget charges every row a batch operator emits against the shared
// work budget, mirroring budgetIter.
type batchBudget struct {
	child  BatchIterator
	budget *int64
}

func (b *batchBudget) Open() error { return b.child.Open() }

func (b *batchBudget) Next() (*Batch, error) {
	batch, err := b.child.Next()
	if batch != nil {
		*b.budget -= int64(len(batch.Idx))
		if *b.budget < 0 {
			return nil, ErrRowLimit
		}
	}
	return batch, err
}

func (b *batchBudget) Close() error { return b.child.Close() }

// ---- adapters ---------------------------------------------------------------

// rowFromBatch adapts a batch subtree for a row-at-a-time consumer. Each
// batch is materialized once into slab-backed rows because row operators
// (sort, join build sides) retain rows past the batch's lifetime.
type rowFromBatch struct {
	child BatchIterator
	rows  []datum.Row
	pos   int
}

func (r *rowFromBatch) Open() error {
	r.rows, r.pos = nil, 0
	return r.child.Open()
}

func (r *rowFromBatch) Next() (datum.Row, error) {
	for r.pos >= len(r.rows) {
		b, err := r.child.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return nil, nil
		}
		r.rows, r.pos = gatherRows(b), 0
	}
	row := r.rows[r.pos]
	r.pos++
	return row, nil
}

func (r *rowFromBatch) Close() error { return r.child.Close() }

// batchFromRows adapts a row subtree for a batch consumer, accumulating up to
// batchSize rows per batch into reused vectors.
type batchFromRows struct {
	child Iterator
	width int
	vecs  []datum.Vec
	out   Batch
}

func (b *batchFromRows) Open() error {
	if b.vecs == nil {
		b.vecs = getVecs(b.width)
	}
	return b.child.Open()
}

func (b *batchFromRows) Next() (*Batch, error) {
	for c := range b.vecs {
		b.vecs[c].Reset()
	}
	n := 0
	for n < batchSize {
		row, err := b.child.Next()
		if err != nil {
			return nil, err
		}
		if row == nil {
			break
		}
		for c := 0; c < b.width; c++ {
			b.vecs[c].Append(row[c])
		}
		n++
	}
	if n == 0 {
		return nil, nil
	}
	b.out = Batch{Cols: b.vecs, Idx: denseIota[:n]}
	return &b.out, nil
}

func (b *batchFromRows) Close() error {
	putVecs(b.vecs)
	b.vecs = nil
	return b.child.Close()
}

// ---- scan -------------------------------------------------------------------

// batchScan windows the catalog's cached column vectors: zero copies, zero
// per-row work.
type batchScan struct {
	table *catalog.Table
	cols  []datum.Vec
	idx   []int
	pos   int
	out   Batch
}

func (s *batchScan) Open() error {
	s.cols = s.table.ColumnData()
	s.idx = s.table.SeqIdx()
	s.pos = 0
	return nil
}

func (s *batchScan) Next() (*Batch, error) {
	if s.pos >= len(s.idx) {
		return nil, nil
	}
	end := s.pos + batchSize
	if end > len(s.idx) {
		end = len(s.idx)
	}
	// SeqIdx is the identity selection, so the same window of the catalog's
	// row slice is this batch's row view: consumers that materialize rows
	// (runBatch, row adapters) take it as-is instead of slab-copying what the
	// catalog already stores.
	s.out = Batch{Cols: s.cols, Idx: s.idx[s.pos:end], Rows: s.table.Rows[s.pos:end]}
	s.pos = end
	return &s.out, nil
}

func (s *batchScan) Close() error { return nil }

// ---- filter -----------------------------------------------------------------

// batchFilter shrinks the selection vector in place; the column vectors flow
// through untouched.
type batchFilter struct {
	child BatchIterator
	pred  scalar.Expr
	ve    scalar.VecEval
	sel   []int
	out   Batch
}

func (f *batchFilter) Open() error {
	if f.sel == nil {
		f.sel = getSel()
	}
	return f.child.Open()
}

func (f *batchFilter) Next() (*Batch, error) {
	for {
		b, err := f.child.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return nil, nil
		}
		sel, err := f.ve.EvalPred(f.pred, b.Cols, b.Idx, f.sel)
		if err != nil {
			return nil, err
		}
		f.sel = sel
		if len(sel) == 0 {
			continue
		}
		f.out = Batch{Cols: b.Cols, Idx: sel}
		return &f.out, nil
	}
}

func (f *batchFilter) Close() error {
	putSel(f.sel)
	f.sel = nil
	return f.child.Close()
}

// ---- project ----------------------------------------------------------------

// batchProject evaluates each projection once per batch into reused output
// vectors.
type batchProject struct {
	child BatchIterator
	items []logical.ProjItem
	ve    scalar.VecEval
	vecs  []datum.Vec
	out   Batch
}

func (p *batchProject) Open() error {
	if p.vecs == nil {
		p.vecs = getVecs(len(p.items))
	}
	return p.child.Open()
}

func (p *batchProject) Next() (*Batch, error) {
	b, err := p.child.Next()
	if err != nil {
		return nil, err
	}
	if b == nil {
		return nil, nil
	}
	for i, item := range p.items {
		if err := p.ve.Eval(item.E, b.Cols, b.Idx, &p.vecs[i]); err != nil {
			return nil, err
		}
	}
	p.out = Batch{Cols: p.vecs, Idx: denseIota[:b.Len()]}
	return &p.out, nil
}

func (p *batchProject) Close() error {
	putVecs(p.vecs)
	p.vecs = nil
	return p.child.Close()
}
