package exec

import (
	"math/rand"
	"testing"

	"qtrtest/internal/catalog"
	"qtrtest/internal/datum"
	"qtrtest/internal/physical"
	"qtrtest/internal/scalar"
)

// randomTable builds a table with random (seeded) ints incl. NULLs.
func randomTable(name string, cols, rows int, seed int64) *catalog.Table {
	r := rand.New(rand.NewSource(seed))
	t := &catalog.Table{Name: name}
	for c := 0; c < cols; c++ {
		t.Columns = append(t.Columns, catalog.Column{
			Name: string(rune('a' + c)), Type: datum.TypeInt,
		})
	}
	for i := 0; i < rows; i++ {
		row := make(datum.Row, cols)
		for c := range row {
			if r.Intn(10) == 0 {
				row[c] = datum.Null
			} else {
				row[c] = datum.NewInt(int64(r.Intn(8)))
			}
		}
		t.Rows = append(t.Rows, row)
	}
	t.ComputeStats()
	return t
}

// naiveJoin computes a reference join result directly over the rows.
func naiveJoin(l, r *catalog.Table, jt physical.JoinType) []datum.Row {
	matches := func(a, b datum.Row) bool {
		c, ok := datum.Compare(a[0], b[0])
		return ok && c == 0
	}
	var out []datum.Row
	for _, lr := range l.Rows {
		matched := false
		for _, rr := range r.Rows {
			if matches(lr, rr) {
				matched = true
				switch jt {
				case physical.JoinInner, physical.JoinLeft:
					out = append(out, concatRows(lr, rr))
				case physical.JoinSemi:
				}
				if jt == physical.JoinSemi {
					break
				}
			}
		}
		switch jt {
		case physical.JoinLeft:
			if !matched {
				out = append(out, concatRows(lr, nullRow(len(r.Columns))))
			}
		case physical.JoinSemi:
			if matched {
				out = append(out, lr)
			}
		case physical.JoinAnti:
			if !matched {
				out = append(out, lr)
			}
		}
	}
	return out
}

// TestJoinsAgainstNaiveReference cross-checks every join operator and type
// against a brute-force reference over many random tables with NULL keys.
func TestJoinsAgainstNaiveReference(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		c := catalog.New()
		lt := randomTable("l", 2, 12+int(seed)%9, seed)
		rt := randomTable("r", 2, 9+int(seed)%7, seed+1000)
		c.Add(lt)
		c.Add(rt)
		scanL := &physical.Expr{Op: physical.OpScan, Table: "l", Cols: []scalar.ColumnID{1, 2}}
		scanR := &physical.Expr{Op: physical.OpScan, Table: "r", Cols: []scalar.ColumnID{3, 4}}
		on := &scalar.Cmp{Op: scalar.CmpEQ, L: &scalar.ColRef{ID: 1}, R: &scalar.ColRef{ID: 3}}

		for _, jt := range []physical.JoinType{physical.JoinInner, physical.JoinLeft, physical.JoinSemi, physical.JoinAnti} {
			want := naiveJoin(lt, rt, jt)
			ops := []physical.Op{physical.OpHashJoin, physical.OpNLJoin}
			if jt == physical.JoinInner {
				ops = append(ops, physical.OpMergeJoin)
			}
			for _, op := range ops {
				plan := &physical.Expr{
					Op: op, JoinType: jt,
					Children:  []*physical.Expr{scanL, scanR},
					On:        on,
					EquiLeft:  []scalar.ColumnID{1},
					EquiRight: []scalar.ColumnID{3},
				}
				got, err := Run(plan, c)
				if err != nil {
					t.Fatalf("seed %d %s(%s): %v", seed, op, jt, err)
				}
				if !EqualMultisets(want, got) {
					t.Fatalf("seed %d %s(%s): %d rows vs reference %d\n%s",
						seed, op, jt, len(got), len(want), DiffSummary(want, got))
				}
			}
		}
	}
}

// TestAggAgainstNaiveReference cross-checks grouped SUM/COUNT against a
// brute-force computation.
func TestAggAgainstNaiveReference(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		c := catalog.New()
		tbl := randomTable("t", 2, 30, seed)
		c.Add(tbl)
		scan := &physical.Expr{Op: physical.OpScan, Table: "t", Cols: []scalar.ColumnID{1, 2}}
		agg := &physical.Expr{
			Op: physical.OpHashAgg, Children: []*physical.Expr{scan},
			GroupCols: []scalar.ColumnID{1},
			Aggs: []scalar.Agg{
				{Op: scalar.AggCountStar, Out: 10},
				{Op: scalar.AggSum, Arg: &scalar.ColRef{ID: 2}, Out: 11},
			},
		}
		got, err := Run(agg, c)
		if err != nil {
			t.Fatal(err)
		}
		// Brute force.
		type acc struct {
			n    int64
			sum  int64
			some bool
		}
		ref := make(map[string]*acc)
		for _, row := range tbl.Rows {
			k := datum.Row{row[0]}.Key()
			a := ref[k]
			if a == nil {
				a = &acc{}
				ref[k] = a
			}
			a.n++
			if !row[1].IsNull() {
				a.sum += row[1].I
				a.some = true
			}
		}
		if len(got) != len(ref) {
			t.Fatalf("seed %d: groups %d vs reference %d", seed, len(got), len(ref))
		}
		for _, row := range got {
			k := datum.Row{row[0]}.Key()
			a := ref[k]
			if a == nil {
				t.Fatalf("seed %d: unexpected group %v", seed, row[0])
			}
			if row[1].I != a.n {
				t.Errorf("seed %d group %v: count %d vs %d", seed, row[0], row[1].I, a.n)
			}
			if a.some && row[2].I != a.sum {
				t.Errorf("seed %d group %v: sum %v vs %d", seed, row[0], row[2], a.sum)
			}
			if !a.some && !row[2].IsNull() {
				t.Errorf("seed %d group %v: sum should be NULL", seed, row[0])
			}
		}
	}
}
