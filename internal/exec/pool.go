package exec

import (
	"sync"

	"qtrtest/internal/datum"
)

// Scratch recycling for the batch engine. A campaign executes thousands of
// short-lived plans, and every batch iterator used to allocate its column
// vectors and selection buffers fresh in Open; those allocations — not the
// per-row work — dominated scan- and join-heavy profiles. Operators now
// acquire scratch from process-wide pools in Open and return it in Close, so
// one execution's grown buffers serve the next plan.
//
// Safety rules, enforced at the put sites:
//
//   - Reset on get, not trust on put. getVecs length-resets every vector
//     before handing the slice out, so stale datums or null words from the
//     previous owner are unreachable no matter what state it was returned in
//     (datum.Vec.Append writes its null word explicitly, so capacity reuse
//     after Reset never resurrects old bits). TestPoolPoisonIsInvisible pins
//     this by pre-poisoning the pools.
//   - Never pool aliased storage. Selection vectors that alias the shared
//     read-only denseIota (equi joins slice it directly) are rejected by
//     putSel's base-pointer guard, and the hash join only returns its build
//     vectors when it owns them (the bare-scan fast path aliases the
//     catalog's cached column vectors, which must never enter a pool).
//
// Pools hold slices directly; the slice-header box a Put allocates is noise
// next to the vector growth it saves.

var (
	vecsPool sync.Pool // []datum.Vec
	selPool  sync.Pool // []int
	boolPool sync.Pool // []bool
)

// getVecs returns a vector slice of the given width with every element
// length-reset; capacities carry over from previous owners.
func getVecs(width int) []datum.Vec {
	v, _ := vecsPool.Get().([]datum.Vec)
	if cap(v) < width {
		return make([]datum.Vec, width)
	}
	v = v[:width]
	for i := range v {
		v[i].Reset()
	}
	return v
}

// putVecs recycles a vector slice obtained from getVecs. Callers must not
// pass slices that alias storage they do not own.
func putVecs(v []datum.Vec) {
	if cap(v) == 0 {
		return
	}
	vecsPool.Put(v[:0])
}

// getSel returns an empty selection buffer; capacity carries over.
func getSel() []int {
	s, _ := selPool.Get().([]int)
	return s[:0]
}

// putSel recycles a selection buffer. Slices carved from the shared
// read-only denseIota are silently dropped: handing one out as a scratch
// buffer would let an EvalPred append scribble over every operator's dense
// selections at once.
func putSel(s []int) {
	if cap(s) == 0 || &s[:cap(s)][0] == &denseIota[0] {
		return
	}
	selPool.Put(s[:0])
}

// getBools returns a flag slice of length n. Contents are unspecified — the
// caller zeroes what it reads, exactly as it must when growing mid-stream.
func getBools(n int) []bool {
	b, _ := boolPool.Get().([]bool)
	if cap(b) < n {
		return make([]bool, n)
	}
	return b[:n]
}

// putBools recycles a flag slice.
func putBools(b []bool) {
	if cap(b) == 0 {
		return
	}
	boolPool.Put(b[:0])
}
