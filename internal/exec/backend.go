package exec

import (
	"errors"
	"fmt"
	"sort"

	"qtrtest/internal/catalog"
	"qtrtest/internal/datum"
	"qtrtest/internal/logical"
	"qtrtest/internal/physical"
	"qtrtest/internal/refengine"
)

// A Backend is an execution engine that lives outside the in-process
// row/batch iterator machinery. The two built-in engines (EngineRow,
// EngineBatch) share one physical-plan compiler and one scalar evaluator;
// a Backend deliberately does not, so comparing its results against theirs
// breaks the self-differential circularity of the campaign oracles.
//
// The contract every Backend must honor:
//
//   - RunTree evaluates the *logical* query tree — the pre-optimizer form —
//     so an optimizer fault cannot be faithfully replayed into the
//     cross-check. RunPlan evaluates a physical plan by translating it back
//     to its logical form (Delower); oracles use it when the backend should
//     re-execute exactly what a built-in engine ran.
//   - Budgets: exceeding maxRows or maxWork must surface as ErrRowLimit.
//     Work accounting is backend-specific, so oracles treat a budget trip on
//     either side as Capped and skip the comparison (DESIGN.md §15) — caps
//     bound cost, they never flip a verdict.
//   - Results are compared under CompareResults with the normalization
//     contract (multiset comparison unless both sides are sorted, NULLs
//     first in the total order, numeric kinds widened per
//     datum.TotalCompare). A backend needs no particular output order.
//   - Registration requires passing the cross-engine conformance suite
//     (conformance_test.go), which pins 3VL, NULL grouping/joins,
//     empty-input aggregates, LIMIT and sort stability across all engines.
//
// An out-of-process engine slots in behind this same interface: a SQLite
// backend, for example, would implement RunTree by rendering the tree to a
// SELECT via the sql package's formatter, shipping it over database/sql,
// and mapping result values back to datums — no oracle call site changes,
// only a RegisterBackend call (see DESIGN.md §15 for the seam).
type Backend interface {
	// Engine returns the backend's engine ID (distinct from EngineRow and
	// EngineBatch).
	Engine() Engine
	// Name returns the engine name as spelled in reports, cache keys and
	// the -backend CLI flag.
	Name() string
	// RunPlan evaluates a physical plan under the backend's semantics.
	RunPlan(plan *physical.Expr, cat *catalog.Catalog, maxRows int, maxWork int64) ([]datum.Row, error)
	// RunTree evaluates a logical query tree directly.
	RunTree(tree *logical.Expr, cat *catalog.Catalog, maxRows int, maxWork int64) ([]datum.Row, error)
}

// backends holds registered backends in registration order — a slice, not a
// map, so enumeration order is deterministic.
var backends []Backend

// RegisterBackend makes a backend available to RunEngine, RunTree and
// EngineByName. It is meant to be called from package init; duplicate
// engine IDs or names, and attempts to shadow the built-in engines, panic.
func RegisterBackend(b Backend) {
	if b.Engine() == EngineRow || b.Engine() == EngineBatch {
		panic(fmt.Sprintf("exec: backend %q cannot use built-in engine id %d", b.Name(), b.Engine()))
	}
	if b.Name() == "row" || b.Name() == "batch" {
		panic(fmt.Sprintf("exec: backend name %q shadows a built-in engine", b.Name()))
	}
	for _, have := range backends {
		if have.Engine() == b.Engine() || have.Name() == b.Name() {
			panic(fmt.Sprintf("exec: backend %q/%d already registered", b.Name(), b.Engine()))
		}
	}
	backends = append(backends, b)
}

// backendFor returns the registered backend for an engine, or nil for the
// built-in engines and unknown IDs.
func backendFor(e Engine) Backend {
	for _, b := range backends {
		if b.Engine() == e {
			return b
		}
	}
	return nil
}

// HasTreeBackend reports whether the engine can evaluate logical trees
// directly via RunTree. The built-in engines cannot: they only execute
// physical plans.
func HasTreeBackend(e Engine) bool { return backendFor(e) != nil }

// Engines returns every available engine — the built-ins followed by
// registered backends in registration order. The conformance suite runs
// each of them over the same corpus.
func Engines() []Engine {
	out := []Engine{EngineRow, EngineBatch}
	for _, b := range backends {
		out = append(out, b.Engine())
	}
	return out
}

// EngineByName resolves an engine name as spelled in reports and the
// -backend CLI flag.
func EngineByName(name string) (Engine, error) {
	switch name {
	case "row":
		return EngineRow, nil
	case "batch":
		return EngineBatch, nil
	}
	for _, b := range backends {
		if b.Name() == name {
			return b.Engine(), nil
		}
	}
	names := "row, batch"
	for _, b := range backends {
		names += ", " + b.Name()
	}
	return 0, fmt.Errorf("exec: unknown engine %q (have %s)", name, names)
}

// RunTree evaluates a logical query tree on a tree-capable backend with
// RunEngine's budget semantics. The built-in engines reject it: they would
// have to lower the tree through the same code the oracle is trying to
// check.
func RunTree(eng Engine, tree *logical.Expr, cat *catalog.Catalog, maxRows int, maxWork int64) ([]datum.Row, error) {
	b := backendFor(eng)
	if b == nil {
		return nil, fmt.Errorf("exec: engine %v cannot evaluate logical trees directly", eng)
	}
	return b.RunTree(tree, cat, maxRows, maxWork)
}

// Delower translates a physical plan back to the logical tree it
// implements: the inverse of canonical lowering. Every physical join
// algorithm collapses to its logical join (On carries the full predicate,
// so dropping EquiLeft/EquiRight loses nothing), both aggregate
// implementations collapse to GroupBy, and the remaining operators map
// one-to-one. This is how a tree-only backend executes "the same plan" a
// built-in engine ran: same semantics, none of the physical machinery.
func Delower(plan *physical.Expr) (*logical.Expr, error) {
	kids := make([]*logical.Expr, len(plan.Children))
	for i, c := range plan.Children {
		k, err := Delower(c)
		if err != nil {
			return nil, err
		}
		kids[i] = k
	}
	out := &logical.Expr{Children: kids}
	switch plan.Op {
	case physical.OpScan:
		out.Op = logical.OpGet
		out.Table = plan.Table
		out.Cols = plan.Cols
	case physical.OpFilter:
		out.Op = logical.OpSelect
		out.Filter = plan.Filter
	case physical.OpProject:
		out.Op = logical.OpProject
		out.Projs = plan.Projs
	case physical.OpHashJoin, physical.OpNLJoin, physical.OpMergeJoin:
		switch plan.JoinType {
		case physical.JoinLeft:
			out.Op = logical.OpLeftJoin
		case physical.JoinSemi:
			out.Op = logical.OpSemiJoin
		case physical.JoinAnti:
			out.Op = logical.OpAntiJoin
		default:
			out.Op = logical.OpJoin
		}
		out.On = plan.On
	case physical.OpHashAgg, physical.OpSortAgg:
		out.Op = logical.OpGroupBy
		out.GroupCols = plan.GroupCols
		out.Aggs = plan.Aggs
	case physical.OpConcat:
		out.Op = logical.OpUnionAll
		out.OutCols = plan.OutCols
		out.InputCols = plan.InputCols
	case physical.OpSort:
		out.Op = logical.OpSort
		out.Keys = plan.Keys
	case physical.OpLimit:
		out.Op = logical.OpLimit
		out.N = plan.N
	default:
		return nil, fmt.Errorf("exec: cannot delower physical operator %v", plan.Op)
	}
	return out, nil
}

// TreeOrder computes the ordering contract of a logical tree's output, the
// counterpart of RootOrder for plans: whether a Sort survives to the root
// through order-preserving operators (Limit, Select, Project), which output
// slots carry its keys, and where Limits sit relative to it. Cross-engine
// comparisons pass the built-in engine's RootOrder and the tree backend's
// TreeOrder to CompareResults, which then applies the shared normalization
// (positional comparison only when both sides are ordered).
func TreeOrder(tree *logical.Expr) PlanOrder {
	o := PlanOrder{HasLimit: treeHasLimit(tree)}
	var projs [][]logical.ProjItem
	cur := tree
walk:
	for {
		switch cur.Op {
		case logical.OpLimit, logical.OpSelect:
			cur = cur.Children[0]
		case logical.OpProject:
			projs = append(projs, cur.Projs)
			cur = cur.Children[0]
		case logical.OpSort:
			slots := envOf(tree.OutputCols())
			for i, k := range cur.Keys {
				col, ok := liftCol(k.Col, projs)
				if !ok {
					break
				}
				slot, ok := slots[col]
				if !ok {
					break
				}
				o.Slots = append(o.Slots, slot)
				o.Descs = append(o.Descs, cur.Keys[i].Desc)
			}
			o.Sorted = len(o.Slots) > 0
			if o.Sorted {
				o.LimitBelowSort = treeHasLimit(cur.Children[0])
			}
			break walk
		default:
			break walk
		}
	}
	return o
}

func treeHasLimit(e *logical.Expr) bool {
	if e.Op == logical.OpLimit {
		return true
	}
	for _, c := range e.Children {
		if treeHasLimit(c) {
			return true
		}
	}
	return false
}

// NormalizeRows returns a copy of rows sorted by the oracle's total order
// (datum.TotalCompare per slot, left to right): the canonical multiset
// form. Two unordered results are equal iff their normalized forms are
// positionally equal under TotalCompare — the same equivalence
// EqualMultisets computes via key encoding, exposed here for tests and
// tools that want a canonical listing.
func NormalizeRows(rows []datum.Row) []datum.Row {
	out := make([]datum.Row, len(rows))
	copy(out, rows)
	sortRowsTotal(out)
	return out
}

func sortRowsTotal(rows []datum.Row) {
	sort.SliceStable(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		for s := 0; s < len(a) && s < len(b); s++ {
			if c := datum.TotalCompare(a[s], b[s]); c != 0 {
				return c < 0
			}
		}
		return len(a) < len(b)
	})
}

// refBackend adapts the reference engine (internal/refengine) to the
// Backend interface, translating its budget sentinel to ErrRowLimit. It is
// the first — and so far only — registered backend; RunEngine dispatches
// EngineRef here.
type refBackend struct{}

func (refBackend) Engine() Engine { return EngineRef }
func (refBackend) Name() string   { return "ref" }

func (refBackend) RunTree(tree *logical.Expr, cat *catalog.Catalog, maxRows int, maxWork int64) ([]datum.Row, error) {
	rows, err := refengine.Eval(tree, cat, refengine.Limits{MaxRows: maxRows, MaxWork: maxWork})
	if errors.Is(err, refengine.ErrBudget) {
		return nil, ErrRowLimit
	}
	return rows, err
}

func (b refBackend) RunPlan(plan *physical.Expr, cat *catalog.Catalog, maxRows int, maxWork int64) ([]datum.Row, error) {
	tree, err := Delower(plan)
	if err != nil {
		return nil, err
	}
	return b.RunTree(tree, cat, maxRows, maxWork)
}

func init() {
	RegisterBackend(refBackend{})
}
