package exec

import (
	"fmt"
	"math/rand"
	"testing"

	"qtrtest/internal/catalog"
	"qtrtest/internal/datum"
	"qtrtest/internal/logical"
	"qtrtest/internal/physical"
	"qtrtest/internal/scalar"
)

// benchCatalog builds the synthetic fact/dimension pair the engine
// benchmarks run over: "f" with rows fact rows and "d" with a tenth of that,
// both three int columns (a: 1000 distinct, b: 100 distinct, c: unique).
func benchCatalog(rows int) *catalog.Catalog {
	r := rand.New(rand.NewSource(1))
	c := catalog.New()
	for _, name := range []string{"f", "d"} {
		n := rows
		if name == "d" {
			n = rows / 10
		}
		t := &catalog.Table{Name: name, Columns: []catalog.Column{
			{Name: "a", Type: datum.TypeInt}, {Name: "b", Type: datum.TypeInt}, {Name: "c", Type: datum.TypeInt},
		}}
		for i := 0; i < n; i++ {
			t.Rows = append(t.Rows, datum.Row{
				datum.NewInt(int64(r.Intn(1000))), datum.NewInt(int64(r.Intn(100))), datum.NewInt(int64(i)),
			})
		}
		t.ComputeStats()
		c.Add(t)
	}
	return c
}

// benchPlans returns the per-operator plans the engine benchmarks execute,
// from bare scan up to aggregation over a join. The catalog must come from
// benchCatalog.
func benchPlans() []struct {
	name string
	plan *physical.Expr
} {
	scanF := &physical.Expr{Op: physical.OpScan, Table: "f", Cols: []scalar.ColumnID{1, 2, 3}}
	scanD := &physical.Expr{Op: physical.OpScan, Table: "d", Cols: []scalar.ColumnID{4, 5, 6}}
	filter := &physical.Expr{Op: physical.OpFilter, Children: []*physical.Expr{scanF},
		Filter: &scalar.Cmp{Op: scalar.CmpLT, L: &scalar.ColRef{ID: 2}, R: &scalar.Const{D: datum.NewInt(50)}}}
	project := &physical.Expr{Op: physical.OpProject, Children: []*physical.Expr{filter},
		Projs: []logical.ProjItem{
			{Out: 9, E: &scalar.Arith{Op: scalar.ArithAdd, L: &scalar.ColRef{ID: 1}, R: &scalar.ColRef{ID: 3}}},
			{Out: 10, E: &scalar.ColRef{ID: 2}},
		}}
	join := &physical.Expr{Op: physical.OpHashJoin, JoinType: physical.JoinInner,
		Children: []*physical.Expr{filter, scanD},
		On:       &scalar.Cmp{Op: scalar.CmpEQ, L: &scalar.ColRef{ID: 1}, R: &scalar.ColRef{ID: 4}},
		EquiLeft: []scalar.ColumnID{1}, EquiRight: []scalar.ColumnID{4}}
	agg := &physical.Expr{Op: physical.OpHashAgg, Children: []*physical.Expr{join},
		GroupCols: []scalar.ColumnID{5},
		Aggs: []scalar.Agg{
			{Op: scalar.AggCountStar, Out: 20},
			{Op: scalar.AggSum, Arg: &scalar.ColRef{ID: 3}, Out: 21},
		}}
	return []struct {
		name string
		plan *physical.Expr
	}{
		{"scan", scanF}, {"filter", filter}, {"project", project}, {"join", join}, {"agg", agg},
	}
}

// BenchmarkEngineOps measures each hot operator on the row and batch engines
// over a 50k-row synthetic table; `qtrtest bench -exec` runs the same
// workload when producing BENCH_exec.json.
func BenchmarkEngineOps(b *testing.B) {
	cat := benchCatalog(50000)
	for _, p := range benchPlans() {
		for _, eng := range []Engine{EngineRow, EngineBatch} {
			b.Run(fmt.Sprintf("%s/%s", p.name, eng), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := RunEngine(eng, p.plan, cat, 0, 0); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
