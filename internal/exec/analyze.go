package exec

import (
	"fmt"
	"strings"

	"qtrtest/internal/catalog"
	"qtrtest/internal/datum"
	"qtrtest/internal/physical"
)

// OpStats records one operator's estimated versus actual cardinality from an
// instrumented execution (EXPLAIN ANALYZE).
type OpStats struct {
	Op       physical.Op
	Detail   string // table name or join type
	EstRows  float64
	ActRows  int64
	Children []*OpStats
}

// QError returns max(est/act, act/est), the standard cardinality-estimation
// quality metric; 1 is perfect. Zero actuals and estimates are floored at 1.
func (s *OpStats) QError() float64 {
	est := s.EstRows
	act := float64(s.ActRows)
	if est < 1 {
		est = 1
	}
	if act < 1 {
		act = 1
	}
	if est > act {
		return est / act
	}
	return act / est
}

// MaxQError returns the worst Q-error in the subtree.
func (s *OpStats) MaxQError() float64 {
	worst := s.QError()
	for _, c := range s.Children {
		if q := c.MaxQError(); q > worst {
			worst = q
		}
	}
	return worst
}

// String renders the analyze tree like EXPLAIN ANALYZE output.
func (s *OpStats) String() string {
	var sb strings.Builder
	var walk func(x *OpStats, depth int)
	walk = func(x *OpStats, depth int) {
		sb.WriteString(strings.Repeat("  ", depth))
		sb.WriteString(x.Op.String())
		if x.Detail != "" {
			fmt.Fprintf(&sb, "(%s)", x.Detail)
		}
		fmt.Fprintf(&sb, "  est=%.0f act=%d q=%.1f\n", x.EstRows, x.ActRows, x.QError())
		for _, c := range x.Children {
			walk(c, depth+1)
		}
	}
	walk(s, 0)
	return sb.String()
}

// countingIter wraps an iterator, counting emitted rows.
type countingIter struct {
	Iterator
	stats *OpStats
}

func (c *countingIter) Open() error {
	c.stats.ActRows = 0
	return c.Iterator.Open()
}

func (c *countingIter) Next() (datum.Row, error) {
	row, err := c.Iterator.Next()
	if row != nil {
		c.stats.ActRows++
	}
	return row, err
}

// buildAnalyze compiles the plan with a counting wrapper at every operator.
func buildAnalyze(plan *physical.Expr, cat *catalog.Catalog) (Iterator, *OpStats, error) {
	stats := &OpStats{Op: plan.Op, EstRows: plan.Rows}
	switch plan.Op {
	case physical.OpScan:
		stats.Detail = plan.Table
	case physical.OpHashJoin, physical.OpNLJoin, physical.OpMergeJoin:
		stats.Detail = plan.JoinType.String()
	}
	kids := make([]Iterator, len(plan.Children))
	for i, c := range plan.Children {
		kidIt, kidStats, err := buildAnalyze(c, cat)
		if err != nil {
			return nil, nil, err
		}
		kids[i] = kidIt
		stats.Children = append(stats.Children, kidStats)
	}
	// Rebuild this operator over the instrumented children by building a
	// shallow copy whose children are already-built iterators. Build
	// compiles children itself, so construct the operator directly instead.
	it, err := buildOver(plan, kids, cat)
	if err != nil {
		return nil, nil, err
	}
	return &countingIter{Iterator: it, stats: stats}, stats, nil
}

// buildOver constructs one operator over pre-built child iterators; it
// mirrors Build's dispatch.
func buildOver(plan *physical.Expr, kids []Iterator, cat *catalog.Catalog) (Iterator, error) {
	switch plan.Op {
	case physical.OpScan:
		t, err := cat.Table(plan.Table)
		if err != nil {
			return nil, err
		}
		return &scanIter{table: t}, nil
	case physical.OpFilter:
		return &filterIter{child: kids[0], pred: plan.Filter, env: envOf(plan.Children[0].OutputCols())}, nil
	case physical.OpProject:
		return &projectIter{child: kids[0], items: plan.Projs, env: envOf(plan.Children[0].OutputCols())}, nil
	case physical.OpHashJoin:
		return newHashJoin(plan, kids[0], kids[1]), nil
	case physical.OpNLJoin:
		return newNLJoin(plan, kids[0], kids[1]), nil
	case physical.OpMergeJoin:
		if plan.JoinType != physical.JoinInner {
			return nil, fmt.Errorf("exec: merge join supports inner joins only, got %s", plan.JoinType)
		}
		return newMergeJoin(plan, kids[0], kids[1]), nil
	case physical.OpHashAgg, physical.OpSortAgg:
		return &aggIter{
			child: kids[0], groupCols: plan.GroupCols, aggs: plan.Aggs,
			env: envOf(plan.Children[0].OutputCols()), sorted: plan.Op == physical.OpSortAgg,
		}, nil
	case physical.OpSort:
		return &sortIter{child: kids[0], keys: plan.Keys, env: envOf(plan.Children[0].OutputCols())}, nil
	case physical.OpLimit:
		return &limitIter{child: kids[0], n: plan.N}, nil
	case physical.OpConcat:
		return &concatIter{plan: plan, kids: kids}, nil
	}
	return nil, fmt.Errorf("exec: unsupported physical operator %s", plan.Op)
}

// RunAnalyze executes the plan with per-operator row counting and returns
// the rows plus the analyze tree (estimated versus actual cardinalities).
func RunAnalyze(plan *physical.Expr, cat *catalog.Catalog) ([]datum.Row, *OpStats, error) {
	it, stats, err := buildAnalyze(plan, cat)
	if err != nil {
		return nil, nil, err
	}
	rows, err := runIter(it, 0)
	if err != nil {
		return nil, nil, err
	}
	return rows, stats, nil
}
