package exec

import (
	"strings"
	"testing"

	"qtrtest/internal/datum"
	"qtrtest/internal/physical"
	"qtrtest/internal/scalar"
)

func TestRunAnalyzeCountsRows(t *testing.T) {
	plan := joinPlan(physical.OpHashJoin, physical.JoinInner)
	plan.Rows = 3 // pretend the optimizer estimated exactly right
	plan.Children[0].Rows = 4
	plan.Children[1].Rows = 4
	rows, stats, err := RunAnalyze(plan, testCatalog())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if stats.ActRows != 3 {
		t.Errorf("root actual = %d, want 3", stats.ActRows)
	}
	if stats.Children[0].ActRows != 4 || stats.Children[1].ActRows != 4 {
		t.Errorf("scan actuals: %d, %d, want 4, 4",
			stats.Children[0].ActRows, stats.Children[1].ActRows)
	}
	if q := stats.QError(); q != 1 {
		t.Errorf("QError = %f, want 1 for a perfect estimate", q)
	}
	out := stats.String()
	if !strings.Contains(out, "HashJoin(Inner)") || !strings.Contains(out, "act=4") {
		t.Errorf("analyze output:\n%s", out)
	}
}

func TestQErrorMetric(t *testing.T) {
	cases := []struct {
		est  float64
		act  int64
		want float64
	}{
		{10, 10, 1},
		{100, 10, 10},
		{10, 100, 10},
		{0, 0, 1},   // both floored
		{0.5, 2, 2}, // est floored to 1
	}
	for _, c := range cases {
		s := &OpStats{EstRows: c.est, ActRows: c.act}
		if got := s.QError(); got != c.want {
			t.Errorf("QError(est=%g, act=%d) = %g, want %g", c.est, c.act, got, c.want)
		}
	}
}

func TestMaxQError(t *testing.T) {
	root := &OpStats{EstRows: 10, ActRows: 10, Children: []*OpStats{
		{EstRows: 10, ActRows: 100},
		{EstRows: 5, ActRows: 5},
	}}
	if got := root.MaxQError(); got != 10 {
		t.Errorf("MaxQError = %f, want 10", got)
	}
}

func TestRunAnalyzeMatchesRun(t *testing.T) {
	plan := &physical.Expr{
		Op: physical.OpFilter, Children: []*physical.Expr{scanT1()},
		Filter: &scalar.Cmp{Op: scalar.CmpGT, L: &scalar.ColRef{ID: 2}, R: &scalar.Const{D: datum.NewInt(5)}},
	}
	plain, err := Run(plan, testCatalog())
	if err != nil {
		t.Fatal(err)
	}
	analyzed, _, err := RunAnalyze(plan, testCatalog())
	if err != nil {
		t.Fatal(err)
	}
	if !EqualMultisets(plain, analyzed) {
		t.Error("instrumented execution changed results")
	}
}
