package exec

import (
	"math/rand"
	"strings"
	"testing"

	"qtrtest/internal/datum"
	"qtrtest/internal/logical"
	"qtrtest/internal/physical"
	"qtrtest/internal/scalar"
)

// bruteForceEqualMultisets is the obviously-correct O(n^2) reference: greedy
// bipartite matching on row keys.
func bruteForceEqualMultisets(a, b []datum.Row) bool {
	if len(a) != len(b) {
		return false
	}
	used := make([]bool, len(b))
	for _, ra := range a {
		found := false
		for j, rb := range b {
			if !used[j] && ra.Key() == rb.Key() {
				used[j] = true
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// randomRows draws rows of the given width from a small value domain (ints,
// floats, strings, NULLs) so that duplicates and cross-type equalities
// (1 vs 1.0) occur often.
func randomRows(rng *rand.Rand, n, width int) []datum.Row {
	out := make([]datum.Row, n)
	for i := range out {
		row := make(datum.Row, width)
		for j := range row {
			switch rng.Intn(4) {
			case 0:
				row[j] = datum.NewInt(int64(rng.Intn(3)))
			case 1:
				row[j] = datum.NewFloat(float64(rng.Intn(3)))
			case 2:
				row[j] = datum.NewString(string(rune('a' + rng.Intn(2))))
			default:
				row[j] = datum.Null
			}
		}
		out[i] = row
	}
	return out
}

// TestEqualMultisetsProperty checks the hashed multiset oracle against the
// brute-force matcher on random row sets: permutations must compare equal,
// and random independent draws must agree with the reference either way.
func TestEqualMultisetsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		n := rng.Intn(8)
		w := 1 + rng.Intn(3)
		a := randomRows(rng, n, w)

		// A shuffled copy is always an equal multiset.
		perm := make([]datum.Row, n)
		copy(perm, a)
		rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		if !EqualMultisets(a, perm) {
			t.Fatalf("trial %d: shuffled copy not equal: %v vs %v", trial, a, perm)
		}

		// An independent draw from the same small domain collides often
		// enough to exercise both outcomes.
		b := randomRows(rng, n, w)
		got := EqualMultisets(a, b)
		want := bruteForceEqualMultisets(a, b)
		if got != want {
			t.Fatalf("trial %d: EqualMultisets=%v, brute force=%v\na=%v\nb=%v", trial, got, want, a, b)
		}
		if !got && DiffSummary(a, b) == "" {
			t.Fatalf("trial %d: unequal multisets but empty DiffSummary", trial)
		}
	}
}

// ---- RootOrder --------------------------------------------------------------

func sortPlan(child *physical.Expr, keys ...logical.SortKey) *physical.Expr {
	return &physical.Expr{Op: physical.OpSort, Children: []*physical.Expr{child}, Keys: keys}
}

func limitPlan(child *physical.Expr, n int64) *physical.Expr {
	return &physical.Expr{Op: physical.OpLimit, Children: []*physical.Expr{child}, N: n}
}

func TestRootOrder(t *testing.T) {
	scan := scanT1() // cols 1 (slot 0), 2 (slot 1)

	t.Run("unsorted scan", func(t *testing.T) {
		o := RootOrder(scan)
		if o.Sorted || o.HasLimit {
			t.Errorf("scan order = %+v, want unsorted, no limit", o)
		}
	})

	t.Run("sort at root", func(t *testing.T) {
		o := RootOrder(sortPlan(scan, logical.SortKey{Col: 2, Desc: true}, logical.SortKey{Col: 1}))
		if !o.Sorted || len(o.Slots) != 2 || o.Slots[0] != 1 || o.Slots[1] != 0 {
			t.Fatalf("order = %+v, want slots [1 0]", o)
		}
		if !o.Descs[0] || o.Descs[1] {
			t.Errorf("descs = %v, want [true false]", o.Descs)
		}
		if o.HasLimit || o.LimitBelowSort {
			t.Errorf("order = %+v, want no limit", o)
		}
	})

	t.Run("limit above sort", func(t *testing.T) {
		o := RootOrder(limitPlan(sortPlan(scan, logical.SortKey{Col: 1}), 2))
		if !o.Sorted || !o.HasLimit || o.LimitBelowSort {
			t.Errorf("order = %+v, want sorted, limit above sort", o)
		}
	})

	t.Run("limit below sort", func(t *testing.T) {
		o := RootOrder(sortPlan(limitPlan(scan, 2), logical.SortKey{Col: 1}))
		if !o.Sorted || !o.HasLimit || !o.LimitBelowSort {
			t.Errorf("order = %+v, want sorted with limit below sort", o)
		}
	})

	t.Run("projection renames sort key", func(t *testing.T) {
		proj := &physical.Expr{
			Op: physical.OpProject, Children: []*physical.Expr{sortPlan(scan, logical.SortKey{Col: 2})},
			Projs: []logical.ProjItem{
				{Out: 9, E: &scalar.ColRef{ID: 2}},
				{Out: 10, E: &scalar.ColRef{ID: 1}},
			},
		}
		o := RootOrder(proj)
		if !o.Sorted || len(o.Slots) != 1 || o.Slots[0] != 0 {
			t.Errorf("order = %+v, want key lifted to slot 0", o)
		}
	})

	t.Run("projection drops sort key", func(t *testing.T) {
		proj := &physical.Expr{
			Op: physical.OpProject, Children: []*physical.Expr{sortPlan(scan, logical.SortKey{Col: 2})},
			Projs: []logical.ProjItem{{Out: 9, E: &scalar.ColRef{ID: 1}}},
		}
		if o := RootOrder(proj); o.Sorted {
			t.Errorf("order = %+v, want unsorted (key projected away)", o)
		}
	})

	t.Run("projection computes over sort key", func(t *testing.T) {
		proj := &physical.Expr{
			Op: physical.OpProject, Children: []*physical.Expr{sortPlan(scan, logical.SortKey{Col: 2})},
			Projs: []logical.ProjItem{{Out: 9, E: &scalar.Arith{
				Op: scalar.ArithAdd, L: &scalar.ColRef{ID: 2}, R: &scalar.Const{D: datum.NewInt(1)}}}},
		}
		if o := RootOrder(proj); o.Sorted {
			t.Errorf("order = %+v, want unsorted (key computed over)", o)
		}
	})

	t.Run("trailing key truncated, prefix kept", func(t *testing.T) {
		proj := &physical.Expr{
			Op: physical.OpProject, Children: []*physical.Expr{sortPlan(scan,
				logical.SortKey{Col: 1}, logical.SortKey{Col: 2})},
			Projs: []logical.ProjItem{{Out: 9, E: &scalar.ColRef{ID: 1}}},
		}
		o := RootOrder(proj)
		if !o.Sorted || len(o.Slots) != 1 || o.Slots[0] != 0 {
			t.Errorf("order = %+v, want one-key prefix at slot 0", o)
		}
	})

	t.Run("sort under join does not order the root", func(t *testing.T) {
		join := joinPlan(physical.OpHashJoin, physical.JoinInner)
		join.Children[0] = sortPlan(join.Children[0], logical.SortKey{Col: 1})
		if o := RootOrder(join); o.Sorted {
			t.Errorf("order = %+v, want unsorted (sort buried under join)", o)
		}
	})
}

// ---- CompareResults ---------------------------------------------------------

func intRows(vals ...int64) []datum.Row {
	out := make([]datum.Row, len(vals))
	for i, v := range vals {
		out[i] = datum.Row{datum.NewInt(v)}
	}
	return out
}

func TestCompareResults(t *testing.T) {
	unordered := PlanOrder{}
	limited := PlanOrder{HasLimit: true}
	asc := PlanOrder{Sorted: true, Slots: []int{0}, Descs: []bool{false}}
	ascLimited := PlanOrder{Sorted: true, Slots: []int{0}, Descs: []bool{false}, HasLimit: true}
	ascLimitBelow := PlanOrder{Sorted: true, Slots: []int{0}, Descs: []bool{false},
		HasLimit: true, LimitBelowSort: true}

	cases := []struct {
		name       string
		base, alt  []datum.Row
		bo, ao     PlanOrder
		want       Verdict
		wantDetail string // substring; "" means don't check
	}{
		{name: "equal multisets, unordered",
			base: intRows(1, 2, 3), alt: intRows(3, 1, 2), bo: unordered, ao: unordered,
			want: VerdictEqual},
		{name: "count mismatch is always a bug",
			base: intRows(1, 2, 3), alt: intRows(1, 2), bo: limited, ao: limited,
			want: VerdictMismatch, wantDetail: "row count mismatch"},
		{name: "different rows, unordered, no limit",
			base: intRows(1, 2, 3), alt: intRows(1, 2, 4), bo: unordered, ao: unordered,
			want: VerdictMismatch},
		{name: "different rows under LIMIT without order",
			base: intRows(1, 2, 3), alt: intRows(1, 2, 4), bo: limited, ao: limited,
			want: VerdictUndetermined, wantDetail: "LIMIT without a total order"},
		{name: "ordered, key sequences diverge",
			base: intRows(1, 2, 3), alt: intRows(3, 2, 1), bo: asc, ao: asc,
			want: VerdictMismatch, wantDetail: "ordered results diverge at row 0"},
		{name: "ordered divergence explained by LIMIT below sort",
			base: intRows(1, 2, 3), alt: intRows(2, 3, 4), bo: ascLimitBelow, ao: asc,
			want: VerdictUndetermined, wantDetail: "LIMIT below the ORDER BY"},
		{name: "ordered, equal keys and multisets",
			base: intRows(1, 2, 2), alt: intRows(1, 2, 2), bo: asc, ao: asc,
			want: VerdictEqual},
		{name: "ordered, equal keys but multiset differs at LIMIT boundary",
			base: []datum.Row{{datum.NewInt(1), datum.NewInt(10)}, {datum.NewInt(2), datum.NewInt(20)}},
			alt:  []datum.Row{{datum.NewInt(1), datum.NewInt(10)}, {datum.NewInt(2), datum.NewInt(21)}},
			bo:   ascLimited, ao: ascLimited,
			want: VerdictUndetermined, wantDetail: "LIMIT boundary"},
		{name: "ordered, equal keys but multiset differs, no limit",
			base: []datum.Row{{datum.NewInt(1), datum.NewInt(10)}, {datum.NewInt(2), datum.NewInt(20)}},
			alt:  []datum.Row{{datum.NewInt(1), datum.NewInt(10)}, {datum.NewInt(2), datum.NewInt(21)}},
			bo:   asc, ao: asc,
			want: VerdictMismatch},
		{name: "only one side ordered falls back to multiset compare",
			base: intRows(3, 1, 2), alt: intRows(1, 2, 3), bo: asc, ao: unordered,
			want: VerdictEqual},
		{name: "tie permutation within ordered results is legal",
			base: []datum.Row{{datum.NewInt(1), datum.NewInt(10)}, {datum.NewInt(1), datum.NewInt(20)}},
			alt:  []datum.Row{{datum.NewInt(1), datum.NewInt(20)}, {datum.NewInt(1), datum.NewInt(10)}},
			bo:   asc, ao: asc,
			want: VerdictEqual},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, detail := CompareResults(tc.base, tc.bo, tc.alt, tc.ao)
			if got != tc.want {
				t.Fatalf("verdict = %s (%s), want %s", got, detail, tc.want)
			}
			if tc.wantDetail != "" && !strings.Contains(detail, tc.wantDetail) {
				t.Errorf("detail = %q, want substring %q", detail, tc.wantDetail)
			}
		})
	}
}

// TestCompareResultsCatchesFlippedSort is the oracle-level regression for the
// flip-sort-dir mutant: same multiset, reversed order, both roots sorted.
// The multiset oracle alone would call this equal.
func TestCompareResultsCatchesFlippedSort(t *testing.T) {
	asc := PlanOrder{Sorted: true, Slots: []int{0}, Descs: []bool{false}}
	desc := PlanOrder{Sorted: true, Slots: []int{0}, Descs: []bool{true}}
	base := intRows(1, 2, 3)
	alt := intRows(3, 2, 1)
	if !EqualMultisets(base, alt) {
		t.Fatal("setup: rows must be equal as multisets")
	}
	got, _ := CompareResults(base, asc, alt, desc)
	if got != VerdictMismatch {
		t.Fatalf("verdict = %s, want mismatch for reversed ordered results", got)
	}
}
