package exec

import (
	"testing"

	"qtrtest/internal/datum"
	"qtrtest/internal/logical"
	"qtrtest/internal/physical"
	"qtrtest/internal/scalar"
)

// TestIteratorsReopen: every operator must be re-runnable (Open resets
// state); the correctness runner executes shared plans repeatedly.
func TestIteratorsReopen(t *testing.T) {
	cat := testCatalog()
	plans := []*physical.Expr{
		scanT1(),
		{Op: physical.OpFilter, Children: []*physical.Expr{scanT1()},
			Filter: &scalar.Cmp{Op: scalar.CmpGT, L: &scalar.ColRef{ID: 2}, R: &scalar.Const{D: datum.NewInt(0)}}},
		joinPlan(physical.OpHashJoin, physical.JoinInner),
		joinPlan(physical.OpNLJoin, physical.JoinLeft),
		joinPlan(physical.OpMergeJoin, physical.JoinInner),
		{Op: physical.OpHashAgg, Children: []*physical.Expr{scanT2()},
			GroupCols: []scalar.ColumnID{3},
			Aggs:      []scalar.Agg{{Op: scalar.AggCountStar, Out: 10}}},
		{Op: physical.OpSort, Children: []*physical.Expr{scanT1()},
			Keys: []logical.SortKey{{Col: 1}}},
		{Op: physical.OpLimit, Children: []*physical.Expr{scanT1()}, N: 2},
	}
	for _, plan := range plans {
		it, err := Build(plan, cat)
		if err != nil {
			t.Fatalf("%s: %v", plan.Op, err)
		}
		count := func() int {
			if err := it.Open(); err != nil {
				t.Fatalf("%s open: %v", plan.Op, err)
			}
			n := 0
			for {
				row, err := it.Next()
				if err != nil {
					t.Fatalf("%s next: %v", plan.Op, err)
				}
				if row == nil {
					break
				}
				n++
			}
			return n
		}
		first := count()
		second := count()
		if first != second {
			t.Errorf("%s: first run %d rows, second run %d — Open must reset state", plan.Op, first, second)
		}
		if err := it.Close(); err != nil {
			t.Errorf("%s close: %v", plan.Op, err)
		}
	}
}

// TestNextAfterEOF: Next after exhaustion keeps returning nil without error.
func TestNextAfterEOF(t *testing.T) {
	it, err := Build(scanT1(), testCatalog())
	if err != nil {
		t.Fatal(err)
	}
	if err := it.Open(); err != nil {
		t.Fatal(err)
	}
	for {
		row, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if row == nil {
			break
		}
	}
	for i := 0; i < 3; i++ {
		row, err := it.Next()
		if err != nil || row != nil {
			t.Fatalf("Next after EOF: row=%v err=%v", row, err)
		}
	}
}

// TestFilterErrorPropagation: scalar evaluation errors surface, not panic.
func TestFilterErrorPropagation(t *testing.T) {
	plan := &physical.Expr{
		Op: physical.OpFilter, Children: []*physical.Expr{scanT1()},
		Filter: &scalar.Cmp{Op: scalar.CmpEQ, L: &scalar.ColRef{ID: 999}, R: &scalar.Const{D: datum.NewInt(1)}},
	}
	if _, err := Run(plan, testCatalog()); err == nil {
		t.Error("unbound column must produce an error")
	}
}
