package exec

import (
	"fmt"
	"sort"

	"qtrtest/internal/datum"
	"qtrtest/internal/physical"
	"qtrtest/internal/scalar"
)

// keySlots resolves equi-key columns to input row slots. A key column
// missing from its input is a plan-construction bug and must surface as an
// error rather than silently probing slot 0.
func keySlots(env scalar.Env, cols []scalar.ColumnID, join, side string) ([]int, error) {
	slots := make([]int, len(cols))
	for i, c := range cols {
		s, ok := env[c]
		if !ok {
			return nil, fmt.Errorf("exec: %s join key column c%d not in %s input", join, c, side)
		}
		slots[i] = s
	}
	return slots, nil
}

// drain reads an iterator to completion.
func drain(it Iterator) ([]datum.Row, error) {
	if err := it.Open(); err != nil {
		return nil, err
	}
	var out []datum.Row
	for {
		row, err := it.Next()
		if err != nil {
			return nil, err
		}
		if row == nil {
			return out, nil
		}
		out = append(out, row)
	}
}

// combinedEnv builds the evaluation environment for a (left ++ right) row.
func combinedEnv(plan *physical.Expr) scalar.Env {
	l := plan.Children[0].OutputCols()
	r := plan.Children[1].OutputCols()
	env := make(scalar.Env, len(l)+len(r))
	for i, c := range l {
		env[c] = i
	}
	for i, c := range r {
		env[c] = len(l) + i
	}
	return env
}

func concatRows(l, r datum.Row) datum.Row {
	out := make(datum.Row, 0, len(l)+len(r))
	out = append(out, l...)
	return append(out, r...)
}

func nullRow(n int) datum.Row {
	out := make(datum.Row, n)
	for i := range out {
		out[i] = datum.Null
	}
	return out
}

// keyOf builds a hash key from the given slots; ok is false when any key
// datum is NULL (SQL equality never matches NULLs). The bytes match what the
// batch engine's key index produces: both are Datum.AppendKey sequences.
func keyOf(row datum.Row, slots []int) (string, bool) {
	var buf []byte
	for _, s := range slots {
		if row[s].IsNull() {
			return "", false
		}
		buf = row[s].AppendKey(buf)
	}
	return string(buf), true
}

// ---- hash join -------------------------------------------------------------

type hashJoinIter struct {
	plan        *physical.Expr
	left, right Iterator

	env        scalar.Env
	leftSlots  []int
	rightSlots []int
	rightWidth int

	table map[string][]datum.Row

	leftRow datum.Row
	matches []datum.Row
	midx    int
	matched bool

	done bool
}

func newHashJoin(plan *physical.Expr, left, right Iterator) Iterator {
	return &hashJoinIter{plan: plan, left: left, right: right}
}

func (h *hashJoinIter) Open() error {
	h.env = combinedEnv(h.plan)
	lcols := h.plan.Children[0].OutputCols()
	rcols := h.plan.Children[1].OutputCols()
	h.rightWidth = len(rcols)
	lenv := envOf(lcols)
	renv := envOf(rcols)
	var err error
	if h.leftSlots, err = keySlots(lenv, h.plan.EquiLeft, "hash", "left"); err != nil {
		return err
	}
	if h.rightSlots, err = keySlots(renv, h.plan.EquiRight, "hash", "right"); err != nil {
		return err
	}
	rows, err := drain(h.right)
	if err != nil {
		return err
	}
	h.table = make(map[string][]datum.Row)
	for _, row := range rows {
		if key, ok := keyOf(row, h.rightSlots); ok {
			h.table[key] = append(h.table[key], row)
		}
	}
	h.leftRow, h.matches, h.midx, h.matched, h.done = nil, nil, 0, false, false
	return h.left.Open()
}

func (h *hashJoinIter) Next() (datum.Row, error) {
	if h.done {
		return nil, nil
	}
	for {
		// Emit pending matches for the current left row.
		for h.leftRow != nil && h.midx < len(h.matches) {
			rrow := h.matches[h.midx]
			h.midx++
			combined := concatRows(h.leftRow, rrow)
			ok, err := scalar.EvalBool(h.plan.On, combined, h.env)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
			h.matched = true
			switch h.plan.JoinType {
			case physical.JoinInner, physical.JoinLeft:
				return combined, nil
			case physical.JoinSemi:
				h.matches = nil // one match suffices
				return h.leftRow, nil
			case physical.JoinAnti:
				h.matches = nil // disqualified
			}
		}
		// Current left row exhausted; handle outer/anti fallout.
		if h.leftRow != nil {
			lrow := h.leftRow
			h.leftRow = nil
			if !h.matched {
				switch h.plan.JoinType {
				case physical.JoinLeft:
					return concatRows(lrow, nullRow(h.rightWidth)), nil
				case physical.JoinAnti:
					return lrow, nil
				}
			}
		}
		// Advance to the next left row.
		lrow, err := h.left.Next()
		if err != nil {
			return nil, err
		}
		if lrow == nil {
			h.done = true
			return nil, nil
		}
		h.leftRow = lrow
		h.matched = false
		h.midx = 0
		if key, ok := keyOf(lrow, h.leftSlots); ok {
			h.matches = h.table[key]
		} else {
			h.matches = nil
		}
	}
}

func (h *hashJoinIter) Close() error {
	err1 := h.left.Close()
	err2 := h.right.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

// ---- nested loops join ---------------------------------------------------------

type nlJoinIter struct {
	plan        *physical.Expr
	left, right Iterator

	env        scalar.Env
	rightRows  []datum.Row
	rightWidth int

	leftRow datum.Row
	ridx    int
	matched bool
	done    bool
}

func newNLJoin(plan *physical.Expr, left, right Iterator) Iterator {
	return &nlJoinIter{plan: plan, left: left, right: right}
}

func (n *nlJoinIter) Open() error {
	n.env = combinedEnv(n.plan)
	n.rightWidth = len(n.plan.Children[1].OutputCols())
	rows, err := drain(n.right)
	if err != nil {
		return err
	}
	n.rightRows = rows
	n.leftRow, n.ridx, n.matched, n.done = nil, 0, false, false
	return n.left.Open()
}

func (n *nlJoinIter) Next() (datum.Row, error) {
	if n.done {
		return nil, nil
	}
	for {
		for n.leftRow != nil && n.ridx < len(n.rightRows) {
			rrow := n.rightRows[n.ridx]
			n.ridx++
			combined := concatRows(n.leftRow, rrow)
			ok, err := scalar.EvalBool(n.plan.On, combined, n.env)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
			n.matched = true
			switch n.plan.JoinType {
			case physical.JoinInner, physical.JoinLeft:
				return combined, nil
			case physical.JoinSemi:
				n.ridx = len(n.rightRows)
				return n.leftRow, nil
			case physical.JoinAnti:
				n.ridx = len(n.rightRows)
			}
		}
		if n.leftRow != nil {
			lrow := n.leftRow
			n.leftRow = nil
			if !n.matched {
				switch n.plan.JoinType {
				case physical.JoinLeft:
					return concatRows(lrow, nullRow(n.rightWidth)), nil
				case physical.JoinAnti:
					return lrow, nil
				}
			}
		}
		lrow, err := n.left.Next()
		if err != nil {
			return nil, err
		}
		if lrow == nil {
			n.done = true
			return nil, nil
		}
		n.leftRow = lrow
		n.ridx = 0
		n.matched = false
	}
}

func (n *nlJoinIter) Close() error {
	err1 := n.left.Close()
	err2 := n.right.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

// ---- merge join (inner) ----------------------------------------------------------

type mergeJoinIter struct {
	plan        *physical.Expr
	left, right Iterator

	env scalar.Env
	out []datum.Row
	pos int
}

func newMergeJoin(plan *physical.Expr, left, right Iterator) Iterator {
	return &mergeJoinIter{plan: plan, left: left, right: right}
}

// Open sorts both inputs on the equi-join keys and merges matching key
// groups, applying the full predicate to each candidate pair.
func (m *mergeJoinIter) Open() error {
	m.env = combinedEnv(m.plan)
	lenv := envOf(m.plan.Children[0].OutputCols())
	renv := envOf(m.plan.Children[1].OutputCols())
	lslots, err := keySlots(lenv, m.plan.EquiLeft, "merge", "left")
	if err != nil {
		return err
	}
	rslots, err := keySlots(renv, m.plan.EquiRight, "merge", "right")
	if err != nil {
		return err
	}
	lrows, err := drain(m.left)
	if err != nil {
		return err
	}
	rrows, err := drain(m.right)
	if err != nil {
		return err
	}
	byKey := func(rows []datum.Row, slots []int) {
		sort.SliceStable(rows, func(i, j int) bool {
			for _, s := range slots {
				c := datum.TotalCompare(rows[i][s], rows[j][s])
				if c != 0 {
					return c < 0
				}
			}
			return false
		})
	}
	byKey(lrows, lslots)
	byKey(rrows, rslots)

	cmpKeys := func(l, r datum.Row) int {
		for i := range lslots {
			if c := datum.TotalCompare(l[lslots[i]], r[rslots[i]]); c != 0 {
				return c
			}
		}
		return 0
	}
	hasNullKey := func(row datum.Row, slots []int) bool {
		for _, s := range slots {
			if row[s].IsNull() {
				return true
			}
		}
		return false
	}

	m.out = m.out[:0]
	li, ri := 0, 0
	for li < len(lrows) && ri < len(rrows) {
		if hasNullKey(lrows[li], lslots) {
			li++
			continue
		}
		if hasNullKey(rrows[ri], rslots) {
			ri++
			continue
		}
		c := cmpKeys(lrows[li], rrows[ri])
		if c < 0 {
			li++
			continue
		}
		if c > 0 {
			ri++
			continue
		}
		// Key group: advance both ends and cross-product the group.
		le := li
		for le < len(lrows) && cmpKeys(lrows[le], rrows[ri]) == 0 {
			le++
		}
		re := ri
		for re < len(rrows) && cmpKeys(lrows[li], rrows[re]) == 0 {
			re++
		}
		for i := li; i < le; i++ {
			for j := ri; j < re; j++ {
				combined := concatRows(lrows[i], rrows[j])
				ok, err := scalar.EvalBool(m.plan.On, combined, m.env)
				if err != nil {
					return err
				}
				if ok {
					m.out = append(m.out, combined)
				}
			}
		}
		li, ri = le, re
	}
	m.pos = 0
	return nil
}

func (m *mergeJoinIter) Next() (datum.Row, error) {
	if m.pos >= len(m.out) {
		return nil, nil
	}
	row := m.out[m.pos]
	m.pos++
	return row, nil
}

func (m *mergeJoinIter) Close() error {
	err1 := m.left.Close()
	err2 := m.right.Close()
	if err1 != nil {
		return err1
	}
	return err2
}
