package exec

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"qtrtest/internal/catalog"
	"qtrtest/internal/datum"
	"qtrtest/internal/logical"
	"qtrtest/internal/physical"
	"qtrtest/internal/scalar"
)

// runEngines executes the plan on both engines and requires byte-identical
// results in identical order: the batch engine's contract is not just
// multiset equality but emission-order fidelity, which the fuzz report
// byte-identity test and CompareResults both lean on.
func runEngines(t *testing.T, plan *physical.Expr, cat *catalog.Catalog) []datum.Row {
	t.Helper()
	want, err := RunEngine(EngineRow, plan, cat, 0, 0)
	if err != nil {
		t.Fatalf("row engine: %v", err)
	}
	got, err := RunEngine(EngineBatch, plan, cat, 0, 0)
	if err != nil {
		t.Fatalf("batch engine: %v", err)
	}
	requireSameRows(t, want, got)
	return got
}

func requireSameRows(t *testing.T, want, got []datum.Row) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("batch engine returned %d rows, row engine %d\n%s",
			len(got), len(want), DiffSummary(want, got))
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("row %d: width %d vs %d", i, len(got[i]), len(want[i]))
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("row %d col %d: batch %v (kind %v) vs row %v (kind %v)",
					i, j, got[i][j], got[i][j].K, want[i][j], want[i][j].K)
			}
		}
	}
}

// TestEngineDifferentialHandPlans pins row/batch equivalence on a hand-built
// plan per operator and join type, including the adapter shims (sort, limit,
// concat, merge and nested-loops joins run row-at-a-time inside batch plans).
func TestEngineDifferentialHandPlans(t *testing.T) {
	filterGT15 := func(child *physical.Expr) *physical.Expr {
		return &physical.Expr{
			Op: physical.OpFilter, Children: []*physical.Expr{child},
			Filter: &scalar.Cmp{Op: scalar.CmpGT, L: &scalar.ColRef{ID: 2}, R: &scalar.Const{D: datum.NewInt(15)}},
		}
	}
	project := func(child *physical.Expr) *physical.Expr {
		return &physical.Expr{
			Op: physical.OpProject, Children: []*physical.Expr{child},
			Projs: []logical.ProjItem{
				{Out: 9, E: &scalar.Arith{Op: scalar.ArithAdd, L: &scalar.ColRef{ID: 1}, R: &scalar.Const{D: datum.NewInt(100)}}},
				{Out: 8, E: &scalar.ColRef{ID: 2}},
			},
		}
	}
	sortBy := func(child *physical.Expr, col scalar.ColumnID, desc bool) *physical.Expr {
		return &physical.Expr{
			Op: physical.OpSort, Children: []*physical.Expr{child},
			Keys: []logical.SortKey{{Col: col, Desc: desc}},
		}
	}
	agg := func(child *physical.Expr, groupBy []scalar.ColumnID, op physical.Op) *physical.Expr {
		return &physical.Expr{
			Op: op, Children: []*physical.Expr{child},
			GroupCols: groupBy,
			Aggs: []scalar.Agg{
				{Op: scalar.AggCountStar, Out: 20},
				{Op: scalar.AggSum, Arg: &scalar.ColRef{ID: 2}, Out: 21},
				{Op: scalar.AggMin, Arg: &scalar.ColRef{ID: 2}, Out: 22},
				{Op: scalar.AggMax, Arg: &scalar.ColRef{ID: 2}, Out: 23},
				{Op: scalar.AggAvg, Arg: &scalar.ColRef{ID: 2}, Out: 24},
			},
		}
	}

	plans := map[string]*physical.Expr{
		"scan":            scanT1(),
		"filter":          filterGT15(scanT1()),
		"project":         project(scanT1()),
		"sort":            sortBy(scanT1(), 2, true),
		"limit":           {Op: physical.OpLimit, N: 2, Children: []*physical.Expr{scanT1()}},
		"hashagg":         agg(scanT1(), []scalar.ColumnID{1}, physical.OpHashAgg),
		"sortagg":         agg(scanT1(), []scalar.ColumnID{1}, physical.OpSortAgg),
		"scalaragg":       agg(scanT1(), nil, physical.OpHashAgg),
		"scalaragg-empty": agg(filterGT15(filterGT15(scanT1())), nil, physical.OpHashAgg),
		"concat": {
			Op: physical.OpConcat, Children: []*physical.Expr{scanT1(), scanT2()},
			OutCols:   []scalar.ColumnID{30},
			InputCols: [][]scalar.ColumnID{{1}, {3}},
		},
		"agg-over-join": agg(joinPlan(physical.OpHashJoin, physical.JoinInner), []scalar.ColumnID{1}, physical.OpHashAgg),
		"sort-over-join-over-filter": sortBy(&physical.Expr{
			Op: physical.OpHashJoin, JoinType: physical.JoinLeft,
			Children:  []*physical.Expr{filterGT15(scanT1()), scanT2()},
			On:        eqOn(),
			EquiLeft:  []scalar.ColumnID{1},
			EquiRight: []scalar.ColumnID{3},
		}, 4, false),
		"project-over-agg": {
			Op:       physical.OpProject,
			Children: []*physical.Expr{agg(scanT1(), []scalar.ColumnID{1}, physical.OpHashAgg)},
			Projs: []logical.ProjItem{
				{Out: 40, E: &scalar.Arith{Op: scalar.ArithMul, L: &scalar.ColRef{ID: 21}, R: &scalar.Const{D: datum.NewInt(2)}}},
			},
		},
	}
	for _, op := range []physical.Op{physical.OpHashJoin, physical.OpNLJoin} {
		for _, jt := range []physical.JoinType{physical.JoinInner, physical.JoinLeft, physical.JoinSemi, physical.JoinAnti} {
			plans[fmt.Sprintf("%s-%s", op, jt)] = joinPlan(op, jt)
		}
	}
	plans["mergejoin-inner"] = joinPlan(physical.OpMergeJoin, physical.JoinInner)
	// Residual predicate on top of the equi-key: exercises partial selection
	// inside a join chunk.
	residual := joinPlan(physical.OpHashJoin, physical.JoinLeft)
	residual.On = &scalar.And{Kids: []scalar.Expr{
		eqOn(),
		&scalar.Cmp{Op: scalar.CmpNE, L: &scalar.ColRef{ID: 4}, R: &scalar.Const{D: datum.NewString("uno")}},
	}}
	plans["hashjoin-residual"] = residual

	cat := testCatalog()
	for name, plan := range plans {
		t.Run(name, func(t *testing.T) { runEngines(t, plan, cat) })
	}
}

// TestEngineChunkSpanningJoin drives the batch hash join past candidateCap so
// probe rows span chunk boundaries: 200 probe rows × 300 matching build rows
// is 60000 candidate pairs against a 4096-pair chunk, so most rows' match
// lists are split mid-row and the carried rowMatched / resume-cursor state is
// what keeps semi/anti/left fallout correct. The existing small-table tests
// never leave the first chunk.
func TestEngineChunkSpanningJoin(t *testing.T) {
	c := catalog.New()
	mk := func(name string, rows int, key func(i int) datum.Datum) *catalog.Table {
		tbl := &catalog.Table{Name: name, Columns: []catalog.Column{
			{Name: "k", Type: datum.TypeInt}, {Name: "v", Type: datum.TypeInt},
		}}
		for i := 0; i < rows; i++ {
			tbl.Rows = append(tbl.Rows, datum.Row{key(i), datum.NewInt(int64(i))})
		}
		tbl.ComputeStats()
		return tbl
	}
	// Left: mostly the hot key 7, with interleaved no-match keys and NULLs so
	// anti/left fallout rows appear between match-heavy rows.
	c.Add(mk("big_l", 200, func(i int) datum.Datum {
		switch {
		case i%17 == 0:
			return datum.NewInt(5) // never matches
		case i%23 == 0:
			return datum.Null
		default:
			return datum.NewInt(7)
		}
	}))
	c.Add(mk("big_r", 300, func(i int) datum.Datum {
		if i%31 == 0 {
			return datum.Null
		}
		return datum.NewInt(7)
	}))
	scanL := &physical.Expr{Op: physical.OpScan, Table: "big_l", Cols: []scalar.ColumnID{1, 2}}
	scanR := &physical.Expr{Op: physical.OpScan, Table: "big_r", Cols: []scalar.ColumnID{3, 4}}
	on := &scalar.Cmp{Op: scalar.CmpEQ, L: &scalar.ColRef{ID: 1}, R: &scalar.ColRef{ID: 3}}
	// A residual that passes about half the candidates, so selection vectors
	// inside chunks are partial rather than all-or-nothing.
	residual := &scalar.And{Kids: []scalar.Expr{
		on,
		&scalar.Cmp{Op: scalar.CmpLT,
			L: &scalar.Arith{Op: scalar.ArithAdd, L: &scalar.ColRef{ID: 2}, R: &scalar.ColRef{ID: 4}},
			R: &scalar.Const{D: datum.NewInt(250)}},
	}}
	for _, jt := range []physical.JoinType{physical.JoinInner, physical.JoinLeft, physical.JoinSemi, physical.JoinAnti} {
		for _, pred := range []struct {
			name string
			on   scalar.Expr
		}{{"equi", on}, {"residual", residual}} {
			t.Run(fmt.Sprintf("%s-%s", jt, pred.name), func(t *testing.T) {
				plan := &physical.Expr{
					Op: physical.OpHashJoin, JoinType: jt,
					Children:  []*physical.Expr{scanL, scanR},
					On:        pred.on,
					EquiLeft:  []scalar.ColumnID{1},
					EquiRight: []scalar.ColumnID{3},
				}
				rows := runEngines(t, plan, c)
				if jt == physical.JoinInner && pred.name == "equi" && len(rows) <= candidateCap {
					t.Fatalf("test is not chunk-spanning: %d rows", len(rows))
				}
			})
		}
	}
}

// planGen builds random plans over fresh random tables, assigning globally
// unique column ids per scan. All columns are ints, so every generated
// expression is type-correct and scalar errors cannot make the engines
// diverge on error sites.
type planGen struct {
	r       *rand.Rand
	cat     *catalog.Catalog
	nextCol scalar.ColumnID
	nextTbl int
}

func (g *planGen) scan() *physical.Expr {
	name := fmt.Sprintf("g%d", g.nextTbl)
	tbl := randomTable(name, 3, 8+g.r.Intn(30), g.r.Int63())
	g.cat.Add(tbl)
	g.nextTbl++
	cols := make([]scalar.ColumnID, len(tbl.Columns))
	for i := range cols {
		cols[i] = g.nextCol
		g.nextCol++
	}
	return &physical.Expr{Op: physical.OpScan, Table: name, Cols: cols}
}

func (g *planGen) operand(cols []scalar.ColumnID) scalar.Expr {
	if g.r.Intn(3) == 0 {
		return &scalar.Const{D: datum.NewInt(int64(g.r.Intn(8)))}
	}
	return &scalar.ColRef{ID: cols[g.r.Intn(len(cols))]}
}

func (g *planGen) pred(cols []scalar.ColumnID, depth int) scalar.Expr {
	if depth > 0 {
		switch g.r.Intn(5) {
		case 0:
			return &scalar.And{Kids: []scalar.Expr{g.pred(cols, depth-1), g.pred(cols, depth-1)}}
		case 1:
			return &scalar.Or{Kids: []scalar.Expr{g.pred(cols, depth-1), g.pred(cols, depth-1)}}
		case 2:
			return &scalar.Not{Kid: g.pred(cols, depth-1)}
		}
	}
	if g.r.Intn(6) == 0 {
		return &scalar.IsNull{Kid: g.operand(cols)}
	}
	ops := []scalar.CmpOp{scalar.CmpEQ, scalar.CmpNE, scalar.CmpLT, scalar.CmpLE, scalar.CmpGT, scalar.CmpGE}
	return &scalar.Cmp{Op: ops[g.r.Intn(len(ops))], L: g.operand(cols), R: g.operand(cols)}
}

func (g *planGen) gen(depth int) *physical.Expr {
	if depth <= 0 || g.r.Intn(4) == 0 {
		return g.scan()
	}
	child := g.gen(depth - 1)
	cols := child.OutputCols()
	switch g.r.Intn(7) {
	case 0:
		return &physical.Expr{
			Op: physical.OpFilter, Children: []*physical.Expr{child},
			Filter: g.pred(cols, 2),
		}
	case 1:
		n := 1 + g.r.Intn(3)
		projs := make([]logical.ProjItem, n)
		arith := []scalar.ArithOp{scalar.ArithAdd, scalar.ArithSub, scalar.ArithMul}
		for i := range projs {
			var e scalar.Expr
			if g.r.Intn(2) == 0 {
				e = g.operand(cols)
			} else {
				e = &scalar.Arith{Op: arith[g.r.Intn(len(arith))], L: g.operand(cols), R: g.operand(cols)}
			}
			projs[i] = logical.ProjItem{Out: g.nextCol, E: e}
			g.nextCol++
		}
		return &physical.Expr{Op: physical.OpProject, Children: []*physical.Expr{child}, Projs: projs}
	case 2:
		right := g.gen(depth - 1)
		rcols := right.OutputCols()
		jts := []physical.JoinType{physical.JoinInner, physical.JoinLeft, physical.JoinSemi, physical.JoinAnti}
		jt := jts[g.r.Intn(len(jts))]
		ops := []physical.Op{physical.OpHashJoin, physical.OpNLJoin}
		if jt == physical.JoinInner {
			ops = append(ops, physical.OpMergeJoin)
		}
		lk := cols[g.r.Intn(len(cols))]
		rk := rcols[g.r.Intn(len(rcols))]
		var on scalar.Expr = &scalar.Cmp{Op: scalar.CmpEQ, L: &scalar.ColRef{ID: lk}, R: &scalar.ColRef{ID: rk}}
		if g.r.Intn(3) == 0 {
			on = &scalar.And{Kids: []scalar.Expr{on, g.pred(append(append([]scalar.ColumnID{}, cols...), rcols...), 1)}}
		}
		return &physical.Expr{
			Op: ops[g.r.Intn(len(ops))], JoinType: jt,
			Children:  []*physical.Expr{child, right},
			On:        on,
			EquiLeft:  []scalar.ColumnID{lk},
			EquiRight: []scalar.ColumnID{rk},
		}
	case 3:
		aggOps := []scalar.AggOp{scalar.AggCount, scalar.AggSum, scalar.AggMin, scalar.AggMax, scalar.AggAvg}
		n := 1 + g.r.Intn(3)
		aggs := make([]scalar.Agg, 0, n+1)
		aggs = append(aggs, scalar.Agg{Op: scalar.AggCountStar, Out: g.nextCol})
		g.nextCol++
		for i := 0; i < n; i++ {
			aggs = append(aggs, scalar.Agg{
				Op: aggOps[g.r.Intn(len(aggOps))], Arg: g.operand(cols), Out: g.nextCol,
			})
			g.nextCol++
		}
		var groupBy []scalar.ColumnID
		if g.r.Intn(4) != 0 {
			groupBy = []scalar.ColumnID{cols[g.r.Intn(len(cols))]}
		}
		op := physical.OpHashAgg
		if g.r.Intn(2) == 0 {
			op = physical.OpSortAgg
		}
		return &physical.Expr{Op: op, Children: []*physical.Expr{child}, GroupCols: groupBy, Aggs: aggs}
	case 4:
		keys := []logical.SortKey{{Col: cols[g.r.Intn(len(cols))], Desc: g.r.Intn(2) == 0}}
		return &physical.Expr{Op: physical.OpSort, Children: []*physical.Expr{child}, Keys: keys}
	case 5:
		return &physical.Expr{Op: physical.OpLimit, N: int64(1 + g.r.Intn(20)), Children: []*physical.Expr{child}}
	default:
		right := g.gen(depth - 1)
		rcols := right.OutputCols()
		w := len(cols)
		if len(rcols) < w {
			w = len(rcols)
		}
		out := make([]scalar.ColumnID, w)
		for i := range out {
			out[i] = g.nextCol
			g.nextCol++
		}
		return &physical.Expr{
			Op: physical.OpConcat, Children: []*physical.Expr{child, right},
			OutCols:   out,
			InputCols: [][]scalar.ColumnID{cols[:w], rcols[:w]},
		}
	}
}

// TestEngineDifferentialRandomPlans compares the engines over hundreds of
// random operator trees, then re-runs each plan under a ladder of work and
// row budgets and requires identical verdicts: same rows, or ErrRowLimit on
// both sides. Plans containing a Limit take the documented row-engine
// fallback when a work budget is set, which this test transparently covers.
func TestEngineDifferentialRandomPlans(t *testing.T) {
	seeds := 60
	if testing.Short() {
		seeds = 15
	}
	for seed := 0; seed < seeds; seed++ {
		g := &planGen{r: rand.New(rand.NewSource(int64(seed))), cat: catalog.New(), nextCol: 1}
		plan := g.gen(3)
		want := runEngines(t, plan, g.cat)

		for _, maxWork := range []int64{1, 7, 64, 1000, 50000} {
			rowRows, rowErr := RunEngine(EngineRow, plan, g.cat, 0, maxWork)
			batchRows, batchErr := RunEngine(EngineBatch, plan, g.cat, 0, maxWork)
			if (rowErr != nil) != (batchErr != nil) {
				t.Fatalf("seed %d maxWork %d: row err %v, batch err %v", seed, maxWork, rowErr, batchErr)
			}
			if rowErr != nil {
				if !errors.Is(rowErr, ErrRowLimit) || !errors.Is(batchErr, ErrRowLimit) {
					t.Fatalf("seed %d maxWork %d: unexpected errors %v / %v", seed, maxWork, rowErr, batchErr)
				}
				continue
			}
			requireSameRows(t, rowRows, batchRows)
		}
		if len(want) > 1 {
			maxRows := len(want) / 2
			_, rowErr := RunEngine(EngineRow, plan, g.cat, maxRows, 0)
			_, batchErr := RunEngine(EngineBatch, plan, g.cat, maxRows, 0)
			if !errors.Is(rowErr, ErrRowLimit) || !errors.Is(batchErr, ErrRowLimit) {
				t.Fatalf("seed %d maxRows %d: want ErrRowLimit on both, got %v / %v",
					seed, maxRows, rowErr, batchErr)
			}
		}
	}
}

// TestSumAvgNonNumericErrors pins the aggregate-typing fix: SUM and AVG over
// a non-numeric input must fail execution instead of silently returning 0.0,
// identically on both engines.
func TestSumAvgNonNumericErrors(t *testing.T) {
	cat := testCatalog()
	for _, op := range []scalar.AggOp{scalar.AggSum, scalar.AggAvg} {
		plan := &physical.Expr{
			Op: physical.OpHashAgg, Children: []*physical.Expr{scanT2()},
			Aggs: []scalar.Agg{{Op: op, Arg: &scalar.ColRef{ID: 4}, Out: 10}},
		}
		for _, eng := range []Engine{EngineRow, EngineBatch} {
			_, err := RunEngine(eng, plan, cat, 0, 0)
			if err == nil {
				t.Fatalf("%s engine: %s over strings succeeded, want error", eng, op)
			}
			if !strings.Contains(err.Error(), "non-numeric") {
				t.Fatalf("%s engine: %s error = %q, want non-numeric typing error", eng, op, err)
			}
		}
	}
	// Grouped variant: the bad value sits in one group of several.
	plan := &physical.Expr{
		Op: physical.OpHashAgg, Children: []*physical.Expr{scanT2()},
		GroupCols: []scalar.ColumnID{3},
		Aggs:      []scalar.Agg{{Op: scalar.AggSum, Arg: &scalar.ColRef{ID: 4}, Out: 10}},
	}
	for _, eng := range []Engine{EngineRow, EngineBatch} {
		if _, err := RunEngine(eng, plan, cat, 0, 0); err == nil {
			t.Fatalf("%s engine: grouped SUM over strings succeeded, want error", eng)
		}
	}
}

// TestMinMaxMixedKinds pins MIN/MAX semantics over mixed-kind inputs: they
// stay legal and order values by datum.TotalCompare, the same total order the
// sort operator and the comparison oracle use.
func TestMinMaxMixedKinds(t *testing.T) {
	cat := testCatalog()
	// UNION ALL of t1.a (ints + NULL) and t2.y (strings) produces one
	// mixed-kind column.
	concat := &physical.Expr{
		Op: physical.OpConcat, Children: []*physical.Expr{scanT1(), scanT2()},
		OutCols:   []scalar.ColumnID{50},
		InputCols: [][]scalar.ColumnID{{1}, {4}},
	}
	plan := &physical.Expr{
		Op: physical.OpHashAgg, Children: []*physical.Expr{concat},
		Aggs: []scalar.Agg{
			{Op: scalar.AggMin, Arg: &scalar.ColRef{ID: 50}, Out: 51},
			{Op: scalar.AggMax, Arg: &scalar.ColRef{ID: 50}, Out: 52},
		},
	}
	rows := runEngines(t, plan, cat)
	if len(rows) != 1 {
		t.Fatalf("scalar agg rows = %d", len(rows))
	}
	inputs, err := Run(concat, cat)
	if err != nil {
		t.Fatal(err)
	}
	wantMin, wantMax := datum.Null, datum.Null
	for _, r := range inputs {
		d := r[0]
		if d.IsNull() {
			continue
		}
		if wantMin.IsNull() || datum.TotalCompare(d, wantMin) < 0 {
			wantMin = d
		}
		if wantMax.IsNull() || datum.TotalCompare(d, wantMax) > 0 {
			wantMax = d
		}
	}
	if rows[0][0] != wantMin || rows[0][1] != wantMax {
		t.Fatalf("MIN/MAX = %v/%v, want %v/%v by TotalCompare", rows[0][0], rows[0][1], wantMin, wantMax)
	}
}

// TestMergeJoinNonInnerRejected pins that every build path rejects a
// non-inner merge join through buildOver's single guard (Build used to carry
// a duplicate of it).
func TestMergeJoinNonInnerRejected(t *testing.T) {
	cat := testCatalog()
	plan := joinPlan(physical.OpMergeJoin, physical.JoinLeft)
	if _, err := Build(plan, cat); err == nil {
		t.Error("Build accepted a non-inner merge join")
	}
	budget := int64(1000)
	if _, err := buildBudget(plan, cat, &budget); err == nil {
		t.Error("buildBudget accepted a non-inner merge join")
	}
	for _, eng := range []Engine{EngineRow, EngineBatch} {
		if _, err := RunEngine(eng, plan, cat, 0, 1000); err == nil || errors.Is(err, ErrRowLimit) {
			t.Errorf("%s engine with budget: err = %v, want merge-join build error", eng, err)
		}
		if _, err := RunEngine(eng, plan, cat, 0, 0); err == nil {
			t.Errorf("%s engine: accepted a non-inner merge join", eng)
		}
	}
}
