package exec

import (
	"testing"

	"qtrtest/internal/datum"
	"qtrtest/internal/logical"
	"qtrtest/internal/physical"
	"qtrtest/internal/scalar"
)

// These tests audit the oracle's cross-kind comparison semantics — the exact
// rules the reference backend's normalization layer re-implements — and pin
// them with regressions on both production engines. Two invariants matter:
// numeric kinds widen (an INT 1 row and a FLOAT 1.0 row are the same row to
// the multiset oracle AND to the ordered key-sequence check, because both
// Row.Key and TotalCompare fold numerics through their float64 image), and
// NULL ordering is NULL-first ascending / NULL-last descending everywhere.

// TestMultisetFoldsNumericKinds: INT vs FLOAT rows of equal value are one
// multiset element.
func TestMultisetFoldsNumericKinds(t *testing.T) {
	a := []datum.Row{{datum.NewInt(1)}, {datum.NewInt(2)}}
	b := []datum.Row{{datum.NewFloat(1.0)}, {datum.NewFloat(2.0)}}
	if !EqualMultisets(a, b) {
		t.Fatal("INT rows and equal-valued FLOAT rows must be equal multisets")
	}
	if EqualMultisets(a, []datum.Row{{datum.NewFloat(1.0)}, {datum.NewFloat(2.5)}}) {
		t.Fatal("2 and 2.5 folded together")
	}
}

// TestKeySeqFoldsNumericKinds: the ordered comparison's key-sequence check
// widens the same way, so an INT-keyed and a FLOAT-keyed sorted result of
// equal values compare Equal rather than diverging at row 0.
func TestKeySeqFoldsNumericKinds(t *testing.T) {
	order := PlanOrder{Sorted: true, Slots: []int{0}, Descs: []bool{false}}
	ints := []datum.Row{{datum.NewInt(1)}, {datum.NewInt(2)}}
	floats := []datum.Row{{datum.NewFloat(1.0)}, {datum.NewFloat(2.0)}}
	if v, detail := CompareResults(ints, order, floats, order); v != VerdictEqual {
		t.Fatalf("widened sorted results: verdict %v (%s), want equal", v, detail)
	}
}

// TestFlippedNullPlacementIsMismatch: NULL sorts first ascending; a result
// claiming the same ascending order with NULL last contradicts it at row 0,
// and the oracle must say mismatch, not hide it in the multiset.
func TestFlippedNullPlacementIsMismatch(t *testing.T) {
	order := PlanOrder{Sorted: true, Slots: []int{0}, Descs: []bool{false}}
	nullFirst := []datum.Row{{datum.Null}, {datum.NewInt(1)}, {datum.NewInt(2)}}
	nullLast := []datum.Row{{datum.NewInt(1)}, {datum.NewInt(2)}, {datum.Null}}
	v, _ := CompareResults(nullFirst, order, nullLast, order)
	if v != VerdictMismatch {
		t.Fatalf("NULL-first vs NULL-last under one ascending contract: verdict %v, want mismatch", v)
	}
}

// TestNormalizeRowsMatchesTotalCompare: NormalizeRows — the canonical
// multiset form backends are compared in — must order rows exactly as
// datum.TotalCompare does: NULL first, then numeric values widened across
// kinds.
func TestNormalizeRowsMatchesTotalCompare(t *testing.T) {
	in := []datum.Row{
		{datum.NewFloat(2.5)},
		{datum.Null},
		{datum.NewInt(2)},
		{datum.NewFloat(1.5)},
	}
	got := NormalizeRows(in)
	want := []datum.Row{
		{datum.Null},
		{datum.NewFloat(1.5)},
		{datum.NewInt(2)},
		{datum.NewFloat(2.5)},
	}
	for i := range want {
		if got[i][0] != want[i][0] {
			t.Fatalf("normalized[%d] = %v, want %v (full: %v)", i, got[i][0], want[i][0], got)
		}
	}
	// The input must not be reordered in place.
	if in[0][0] != datum.NewFloat(2.5) {
		t.Fatal("NormalizeRows mutated its input")
	}
}

// TestEnginesAgreeOnWidenedKeys is the engine-level regression: the same
// query computed with INT keys on one side and FLOAT-widened keys on the
// other (a + 0.0) must compare Equal through the oracle on the row engine,
// the batch engine, and between them.
func TestEnginesAgreeOnWidenedKeys(t *testing.T) {
	cat := testCatalog()
	intPlan := &physical.Expr{
		Op: physical.OpProject, Children: []*physical.Expr{scanT1()},
		Projs: []logical.ProjItem{{Out: 10, E: &scalar.ColRef{ID: 1}}},
	}
	floatPlan := &physical.Expr{
		Op: physical.OpProject, Children: []*physical.Expr{scanT1()},
		Projs: []logical.ProjItem{{Out: 10, E: &scalar.Arith{
			Op: scalar.ArithAdd, L: &scalar.ColRef{ID: 1}, R: &scalar.Const{D: datum.NewFloat(0)},
		}}},
	}
	for _, eng := range []Engine{EngineRow, EngineBatch} {
		intRows, err := RunEngine(eng, intPlan, cat, 0, 0)
		if err != nil {
			t.Fatalf("%v int plan: %v", eng, err)
		}
		floatRows, err := RunEngine(eng, floatPlan, cat, 0, 0)
		if err != nil {
			t.Fatalf("%v float plan: %v", eng, err)
		}
		if v, detail := CompareResults(intRows, RootOrder(intPlan), floatRows, RootOrder(floatPlan)); v != VerdictEqual {
			t.Errorf("%v: INT vs FLOAT-widened projection: verdict %v (%s), want equal", eng, v, detail)
		}
	}
}

// TestEnginesAgreeOnNullPlacement pins NULL-first ascending and NULL-last
// descending on the row and batch engines positionally — the same contract
// the conformance suite checks on every backend, asserted here directly on
// the two production engines as the oracle-audit regression.
func TestEnginesAgreeOnNullPlacement(t *testing.T) {
	cat := testCatalog()
	for _, tc := range []struct {
		desc     bool
		nullSlot int // row index where the NULL key must land
	}{
		{desc: false, nullSlot: 0},
		{desc: true, nullSlot: 3},
	} {
		plan := &physical.Expr{
			Op: physical.OpSort, Children: []*physical.Expr{scanT1()},
			Keys: []logical.SortKey{{Col: 1, Desc: tc.desc}},
		}
		for _, eng := range []Engine{EngineRow, EngineBatch} {
			rows, err := RunEngine(eng, plan, cat, 0, 0)
			if err != nil {
				t.Fatalf("%v: %v", eng, err)
			}
			for i, r := range rows {
				if r[0].IsNull() != (i == tc.nullSlot) {
					t.Fatalf("%v desc=%v: NULL key at row %d, want row %d (rows: %v)",
						eng, tc.desc, i, tc.nullSlot, rows)
				}
			}
		}
	}
}
