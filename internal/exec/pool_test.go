package exec

import (
	"fmt"
	"testing"

	"qtrtest/internal/datum"
	"qtrtest/internal/logical"
	"qtrtest/internal/physical"
	"qtrtest/internal/scalar"
)

// poisonPools preloads every scratch pool with garbage-filled buffers: vectors
// carrying live datums and null bits at full length, selection vectors full of
// out-of-range indices, flag slices stuck at true. If any operator trusts a
// pooled buffer's contents or length instead of resetting on acquisition, the
// poison surfaces as wrong rows — which the differential run below would
// catch. Buffers are Put at poisoned length deliberately; get-side hygiene is
// the contract under test.
func poisonPools(tb testing.TB) {
	tb.Helper()
	for i := 0; i < 64; i++ {
		vecs := make([]datum.Vec, 9)
		for c := range vecs {
			for k := 0; k < 2000; k++ {
				vecs[c].Append(datum.NewInt(int64(-777 - k)))
			}
			vecs[c].Append(datum.Null)
		}
		vecsPool.Put(vecs)
		sel := make([]int, 5000)
		for k := range sel {
			sel[k] = 1 << 30
		}
		selPool.Put(sel)
		flags := make([]bool, 3000)
		for k := range flags {
			flags[k] = true
		}
		boolPool.Put(flags)
	}
}

// TestPoolPoisonIsInvisible is the pooled-scratch hygiene guard: with every
// pool poisoned before each execution, batch results must still match the row
// engine (which uses none of the pools) on plans covering every pooled
// operator — filter selections, project vectors, join candidate/output/build
// vectors and match flags, aggregate argument/result vectors, and the
// row-adapter vectors behind sort.
func TestPoolPoisonIsInvisible(t *testing.T) {
	cat := testCatalog()
	agg := func(child *physical.Expr) *physical.Expr {
		return &physical.Expr{
			Op: physical.OpHashAgg, Children: []*physical.Expr{child},
			GroupCols: []scalar.ColumnID{1},
			Aggs:      []scalar.Agg{{Op: scalar.AggCountStar, Out: 20}},
		}
	}
	plans := map[string]*physical.Expr{
		"scan": scanT1(),
		"filter": {
			Op: physical.OpFilter, Children: []*physical.Expr{scanT1()},
			Filter: &scalar.Cmp{Op: scalar.CmpGT, L: &scalar.ColRef{ID: 2}, R: &scalar.Const{D: datum.NewInt(15)}},
		},
		"project": {
			Op: physical.OpProject, Children: []*physical.Expr{scanT1()},
			Projs: []logical.ProjItem{
				{Out: 9, E: &scalar.Arith{Op: scalar.ArithAdd, L: &scalar.ColRef{ID: 1}, R: &scalar.Const{D: datum.NewInt(100)}}},
			},
		},
		"agg":          agg(scanT1()),
		"agg-over-row": agg(&physical.Expr{Op: physical.OpSort, Children: []*physical.Expr{scanT1()}, Keys: []logical.SortKey{{Col: 2, Desc: true}}}),
	}
	for _, jt := range []physical.JoinType{physical.JoinInner, physical.JoinLeft, physical.JoinSemi, physical.JoinAnti} {
		plans[fmt.Sprintf("hashjoin-%s", jt)] = joinPlan(physical.OpHashJoin, jt)
	}
	// Residual predicate forces the EvalPred selection path (the equi fast
	// path never writes into sel); filter under the build side forces the
	// owned build vectors instead of the bare-scan alias.
	residual := joinPlan(physical.OpHashJoin, physical.JoinLeft)
	residual.Children[1] = &physical.Expr{
		Op: physical.OpFilter, Children: []*physical.Expr{residual.Children[1]},
		Filter: &scalar.Cmp{Op: scalar.CmpNE, L: &scalar.ColRef{ID: 4}, R: &scalar.Const{D: datum.NewString("uno")}},
	}
	plans["hashjoin-built"] = residual

	for name, plan := range plans {
		t.Run(name, func(t *testing.T) {
			want, err := RunEngine(EngineRow, plan, cat, 0, 0)
			if err != nil {
				t.Fatalf("row engine: %v", err)
			}
			// Several rounds so later executions consume buffers earlier
			// poisoned *and* buffers recycled from the previous round.
			for round := 0; round < 3; round++ {
				poisonPools(t)
				got, err := RunEngine(EngineBatch, plan, cat, 0, 0)
				if err != nil {
					t.Fatalf("round %d: batch engine: %v", round, err)
				}
				requireSameRows(t, want, got)
			}
		})
	}
}

// TestPutSelRejectsDenseIota pins the alias guard directly: a selection
// sliced from the shared read-only iota must never enter the pool, or a later
// EvalPred would scribble over every operator's dense selections.
func TestPutSelRejectsDenseIota(t *testing.T) {
	// Drain the pool so the Get below can only see what this test Puts.
	for {
		if s, _ := selPool.Get().([]int); s == nil {
			break
		}
	}
	putSel(denseIota[:16])
	if s, _ := selPool.Get().([]int); s != nil && &s[:cap(s)][0] == &denseIota[0] {
		t.Fatalf("denseIota alias entered the selection pool")
	}
	if denseIota[10] != 10 {
		t.Fatalf("denseIota corrupted: [10] = %d", denseIota[10])
	}
}
