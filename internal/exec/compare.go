package exec

import (
	"fmt"

	"qtrtest/internal/datum"
)

// EqualMultisets reports whether two result sets contain the same rows with
// the same multiplicities, ignoring order. This is the correctness oracle:
// two plans for the same query must produce equal multisets.
func EqualMultisets(a, b []datum.Row) bool {
	if len(a) != len(b) {
		return false
	}
	counts := make(map[string]int, len(a))
	for _, r := range a {
		counts[r.Key()]++
	}
	for _, r := range b {
		k := r.Key()
		counts[k]--
		if counts[k] < 0 {
			return false
		}
	}
	return true
}

// DiffSummary describes the first discrepancy between two result multisets,
// for correctness-bug reports.
func DiffSummary(a, b []datum.Row) string {
	if len(a) != len(b) {
		return fmt.Sprintf("row count mismatch: %d vs %d", len(a), len(b))
	}
	counts := make(map[string]int, len(a))
	for _, r := range a {
		counts[r.Key()]++
	}
	for _, r := range b {
		k := r.Key()
		counts[k]--
		if counts[k] < 0 {
			return fmt.Sprintf("row %v appears more often in the second result", r)
		}
	}
	return ""
}
