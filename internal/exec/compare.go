package exec

import (
	"fmt"

	"qtrtest/internal/datum"
	"qtrtest/internal/logical"
	"qtrtest/internal/physical"
	"qtrtest/internal/scalar"
)

// EqualMultisets reports whether two result sets contain the same rows with
// the same multiplicities, ignoring order. This is the base correctness
// oracle: two plans for the same query must produce equal multisets.
func EqualMultisets(a, b []datum.Row) bool {
	if len(a) != len(b) {
		return false
	}
	counts := make(map[string]int, len(a))
	for _, r := range a {
		counts[r.Key()]++
	}
	for _, r := range b {
		k := r.Key()
		counts[k]--
		if counts[k] < 0 {
			return false
		}
	}
	return true
}

// DiffSummary describes the first discrepancy between two result multisets,
// for correctness-bug reports.
func DiffSummary(a, b []datum.Row) string {
	if len(a) != len(b) {
		return fmt.Sprintf("row count mismatch: %d vs %d", len(a), len(b))
	}
	counts := make(map[string]int, len(a))
	for _, r := range a {
		counts[r.Key()]++
	}
	for _, r := range b {
		k := r.Key()
		counts[k]--
		if counts[k] < 0 {
			return fmt.Sprintf("row %v appears more often in the second result", r)
		}
	}
	return ""
}

// Verdict classifies the outcome of comparing two executions of the same
// query.
type Verdict int

// Comparison verdicts.
const (
	// VerdictEqual means the results are compatible: no bug.
	VerdictEqual Verdict = iota
	// VerdictMismatch means the results cannot both be correct: a
	// correctness bug in one of the plans.
	VerdictMismatch
	// VerdictUndetermined means the results differ but the query's semantics
	// do not fully determine its output (a LIMIT without a total order), so
	// two correct plans may legally disagree.
	VerdictUndetermined
)

var verdictNames = [...]string{"equal", "mismatch", "undetermined"}

// String returns the verdict name.
func (v Verdict) String() string { return verdictNames[v] }

// PlanOrder describes the output-ordering contract of a plan root, computed
// by RootOrder. The oracle uses it to compare ordered results
// order-sensitively and to recognize under-determined queries.
type PlanOrder struct {
	// Sorted reports that the root establishes an output ordering: a Sort
	// reaches the root through order-preserving operators (Limit, Filter,
	// Project).
	Sorted bool
	// Slots and Descs give, per surviving sort key, the output row slot
	// holding the key value and the sort direction. A key whose column is
	// projected away (or computed over) truncates the list; the remaining
	// prefix still orders the output.
	Slots []int
	Descs []bool
	// HasLimit reports a Limit anywhere in the plan. Row counts stay
	// deterministic (LIMIT N yields min(N, |input|) rows), but which rows
	// survive may not be.
	HasLimit bool
	// LimitBelowSort reports a Limit beneath the root ordering's Sort, which
	// leaves even the sorted content under-determined.
	LimitBelowSort bool
}

// RootOrder computes the ordering contract of a plan's output: whether a
// Sort survives to the root, which output slots carry its keys, and where
// Limits sit relative to it.
func RootOrder(plan *physical.Expr) PlanOrder {
	o := PlanOrder{HasLimit: hasLimit(plan)}
	var projs [][]logical.ProjItem
	cur := plan
walk:
	for {
		switch cur.Op {
		case physical.OpLimit, physical.OpFilter:
			cur = cur.Children[0]
		case physical.OpProject:
			projs = append(projs, cur.Projs)
			cur = cur.Children[0]
		case physical.OpSort:
			slots := envOf(plan.OutputCols())
			for i, k := range cur.Keys {
				col, ok := liftCol(k.Col, projs)
				if !ok {
					break
				}
				slot, ok := slots[col]
				if !ok {
					break
				}
				o.Slots = append(o.Slots, slot)
				o.Descs = append(o.Descs, cur.Keys[i].Desc)
			}
			o.Sorted = len(o.Slots) > 0
			if o.Sorted {
				o.LimitBelowSort = hasLimit(cur.Children[0])
			}
			break walk
		default:
			break walk
		}
	}
	return o
}

// liftCol maps a column produced below the crossed projections (outermost
// first) to the corresponding root output column; ok is false when a
// projection drops the column or computes an expression over it.
func liftCol(col scalar.ColumnID, projs [][]logical.ProjItem) (scalar.ColumnID, bool) {
	for i := len(projs) - 1; i >= 0; i-- {
		found := false
		for _, it := range projs[i] {
			if ref, ok := it.E.(*scalar.ColRef); ok && ref.ID == col {
				col = it.Out
				found = true
				break
			}
		}
		if !found {
			return 0, false
		}
	}
	return col, true
}

func hasLimit(e *physical.Expr) bool {
	if e.Op == physical.OpLimit {
		return true
	}
	for _, c := range e.Children {
		if hasLimit(c) {
			return true
		}
	}
	return false
}

// CompareResults is the order-aware correctness oracle: it compares the
// results of two plans for the same query given each plan's ordering
// contract.
//
// Row counts are deterministic even under LIMIT, so a count difference is
// always a mismatch. When both roots are ordered, the sort-key value
// sequences must agree position by position (rows within a tie group may
// legally be permuted); a flipped or wrong sort order is therefore a
// mismatch, which a pure multiset comparison would miss. Differences that a
// LIMIT without a total order can explain — different rows surviving the
// cut, or different tie-group rows at a sorted LIMIT boundary — yield
// VerdictUndetermined rather than accusing a correct plan.
func CompareResults(base []datum.Row, baseOrder PlanOrder, alt []datum.Row, altOrder PlanOrder) (Verdict, string) {
	if len(base) != len(alt) {
		return VerdictMismatch, fmt.Sprintf("row count mismatch: %d vs %d", len(base), len(alt))
	}
	equalMulti := EqualMultisets(base, alt)
	nkeys := len(baseOrder.Slots)
	if len(altOrder.Slots) < nkeys {
		nkeys = len(altOrder.Slots)
	}
	if baseOrder.Sorted && altOrder.Sorted && nkeys > 0 {
		if r, k := keySeqDiff(base, baseOrder, alt, altOrder, nkeys); r >= 0 {
			if baseOrder.LimitBelowSort || altOrder.LimitBelowSort {
				return VerdictUndetermined, fmt.Sprintf(
					"sort-key sequences diverge at row %d, but a LIMIT below the ORDER BY leaves the sorted content under-determined", r)
			}
			return VerdictMismatch, fmt.Sprintf("ordered results diverge at row %d: sort key %v vs %v",
				r, base[r][baseOrder.Slots[k]], alt[r][altOrder.Slots[k]])
		}
		if equalMulti {
			return VerdictEqual, ""
		}
		if baseOrder.HasLimit || altOrder.HasLimit {
			return VerdictUndetermined, "equal sort-key sequences but row multisets differ at a LIMIT boundary: " + DiffSummary(base, alt)
		}
		return VerdictMismatch, DiffSummary(base, alt)
	}
	if equalMulti {
		return VerdictEqual, ""
	}
	if baseOrder.HasLimit || altOrder.HasLimit {
		return VerdictUndetermined, "LIMIT without a total order: " + DiffSummary(base, alt)
	}
	return VerdictMismatch, DiffSummary(base, alt)
}

// keySeqDiff returns the first (row, key) position where the two ordered
// results' sort-key value sequences disagree, or (-1, 0) if they match.
func keySeqDiff(a []datum.Row, ao PlanOrder, b []datum.Row, bo PlanOrder, nkeys int) (int, int) {
	for r := range a {
		for k := 0; k < nkeys; k++ {
			if datum.TotalCompare(a[r][ao.Slots[k]], b[r][bo.Slots[k]]) != 0 {
				return r, k
			}
		}
	}
	return -1, 0
}
