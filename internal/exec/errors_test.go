package exec

import (
	"errors"
	"strings"
	"testing"

	"qtrtest/internal/datum"
	"qtrtest/internal/logical"
	"qtrtest/internal/physical"
	"qtrtest/internal/scalar"
)

// TestSortMissingKeyColumn: a sort key absent from the input must fail the
// execution. The old implementation silently fell back to slot 0, producing
// a wrong-but-plausible ordering that poisoned the correctness oracle.
func TestSortMissingKeyColumn(t *testing.T) {
	plan := sortPlan(scanT1(), logical.SortKey{Col: 99})
	_, err := Run(plan, testCatalog())
	if err == nil || !strings.Contains(err.Error(), "sort key column c99") {
		t.Fatalf("err = %v, want missing sort key column error", err)
	}
	// RunAnalyze compiles through buildOver and must fail identically.
	if _, _, err := RunAnalyze(plan, testCatalog()); err == nil {
		t.Error("RunAnalyze must reject the same plan")
	}
}

// TestJoinMissingKeyColumn: hash and merge joins must reject equi-key
// columns that are not produced by their inputs instead of probing slot 0.
func TestJoinMissingKeyColumn(t *testing.T) {
	for _, op := range []physical.Op{physical.OpHashJoin, physical.OpMergeJoin} {
		for _, side := range []string{"left", "right"} {
			plan := joinPlan(op, physical.JoinInner)
			if side == "left" {
				plan.EquiLeft = []scalar.ColumnID{99}
			} else {
				plan.EquiRight = []scalar.ColumnID{99}
			}
			_, err := Run(plan, testCatalog())
			if err == nil || !strings.Contains(err.Error(), "join key column c99") ||
				!strings.Contains(err.Error(), side) {
				t.Errorf("%s/%s: err = %v, want missing join key column error", op, side, err)
			}
		}
	}
}

// failingCloseIter yields a fixed set of rows and then fails on Close.
type failingCloseIter struct {
	rows     []datum.Row
	pos      int
	nextErr  error
	closeErr error
}

func (f *failingCloseIter) Open() error { f.pos = 0; return nil }

func (f *failingCloseIter) Next() (datum.Row, error) {
	if f.nextErr != nil && f.pos == len(f.rows) {
		return nil, f.nextErr
	}
	if f.pos >= len(f.rows) {
		return nil, nil
	}
	row := f.rows[f.pos]
	f.pos++
	return row, nil
}

func (f *failingCloseIter) Close() error { return f.closeErr }

// TestRunPropagatesCloseError: a Close failure after a clean scan must not
// be swallowed — resources failing to release can invalidate the results.
func TestRunPropagatesCloseError(t *testing.T) {
	closeErr := errors.New("close failed")
	it := &failingCloseIter{rows: intRows(1, 2), closeErr: closeErr}
	rows, err := runIter(it, 0)
	if !errors.Is(err, closeErr) {
		t.Fatalf("err = %v, want the Close error", err)
	}
	if rows != nil {
		t.Errorf("rows = %v, want nil when Close fails", rows)
	}
}

// TestRunPrefersNextError: when both Next and Close fail, the Next error is
// the root cause and must win.
func TestRunPrefersNextError(t *testing.T) {
	nextErr := errors.New("next failed")
	it := &failingCloseIter{rows: intRows(1), nextErr: nextErr, closeErr: errors.New("close failed")}
	_, err := runIter(it, 0)
	if !errors.Is(err, nextErr) {
		t.Fatalf("err = %v, want the Next error", err)
	}
}
