package exec

import (
	"qtrtest/internal/datum"
	"qtrtest/internal/physical"
	"qtrtest/internal/scalar"
)

// batchHashJoin is the columnar hash join. The build side is materialized
// into column vectors behind an allocation-free key index (map hits cost no
// allocation; only distinct keys allocate); the probe side is processed in
// chunks of candidate (left, right) pairs whose join predicate is evaluated
// in one vectorized pass per chunk.
//
// Emission order is pinned to the row engine's: for each probe row in stream
// order, its passing matches in build-insertion order, then its outer/anti
// fallout. The differential golden tests rely on it.
type batchHashJoin struct {
	plan        *physical.Expr
	left, right BatchIterator

	jt         physical.JoinType
	leftWidth  int
	rightWidth int
	leftSlots  []int
	rightSlots []int
	equi       bool           // On is exactly the equi-key conjunction
	ve         scalar.VecEval // env over the combined (left ++ right) layout

	// build side. ownRight records that rightVecs is pool-backed scratch this
	// join filled itself; the bare-scan fast path instead aliases the
	// catalog's cached column vectors, which must never be recycled.
	rightVecs []datum.Vec
	ownRight  bool
	lookup    map[string]int32
	groups    [][]int32

	// probe cursor: position li in the current left batch; mi is the offset
	// into the current row's candidate group when the row's candidates span
	// chunks. rowMatched[k] records whether probe row k of the batch has
	// produced a passing match yet.
	lb         *Batch
	li         int
	inRow      bool
	mi         int
	group      []int32
	rowMatched []bool

	keyBuf []byte

	// per-chunk scratch
	keep     []int // non-NULL-key row indices of the current build batch
	candL    []int // left row index (into lb.Cols) per candidate
	candR    []int // build row index (into rightVecs) per candidate
	segs     []joinSeg
	candVecs []datum.Vec // gathered candidate pairs, combined layout
	sel      []int

	outVecs []datum.Vec // materialized output (left joins)
	outIdx  []int       // selected output (semi/anti joins)
	out     Batch
}

// joinSeg is one probe row's slice of a chunk's candidate pairs.
type joinSeg struct {
	li         int  // position in lb.Idx
	start, end int  // candidate range
	final      bool // chunk holds the row's last candidates
}

func newBatchHashJoin(plan *physical.Expr, left, right BatchIterator) *batchHashJoin {
	return &batchHashJoin{
		plan: plan, left: left, right: right,
		jt: plan.JoinType, equi: equiOnly(plan),
	}
}

// equiOnly reports whether the join predicate is exactly the conjunction of
// the equi-key equalities. The hash index only ever yields non-NULL key-equal
// candidates, and the key encoding is injective with respect to
// datum.Compare equality (numeric kinds fold through the same float64 image
// both sides use), so for such predicates every candidate passes by
// construction and the per-candidate predicate pass can be skipped.
func equiOnly(plan *physical.Expr) bool {
	conj := []scalar.Expr{plan.On}
	if and, ok := plan.On.(*scalar.And); ok {
		conj = and.Kids
	}
	if len(conj) != len(plan.EquiLeft) {
		return false
	}
	used := make([]bool, len(plan.EquiLeft))
	for _, e := range conj {
		cmp, ok := e.(*scalar.Cmp)
		if !ok || cmp.Op != scalar.CmpEQ {
			return false
		}
		l, lok := cmp.L.(*scalar.ColRef)
		r, rok := cmp.R.(*scalar.ColRef)
		if !lok || !rok {
			return false
		}
		found := false
		for i := range plan.EquiLeft {
			if used[i] {
				continue
			}
			if (plan.EquiLeft[i] == l.ID && plan.EquiRight[i] == r.ID) ||
				(plan.EquiLeft[i] == r.ID && plan.EquiRight[i] == l.ID) {
				used[i] = true
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

func (h *batchHashJoin) Open() error {
	lcols := h.plan.Children[0].OutputCols()
	rcols := h.plan.Children[1].OutputCols()
	h.leftWidth, h.rightWidth = len(lcols), len(rcols)
	h.ve.Env = combinedEnv(h.plan)
	var err error
	if h.leftSlots, err = keySlots(envOf(lcols), h.plan.EquiLeft, "hash", "left"); err != nil {
		return err
	}
	if h.rightSlots, err = keySlots(envOf(rcols), h.plan.EquiRight, "hash", "right"); err != nil {
		return err
	}
	if err := h.buildSide(); err != nil {
		return err
	}
	if h.candVecs == nil {
		h.candVecs = getVecs(h.leftWidth + h.rightWidth)
		h.outVecs = getVecs(h.leftWidth + h.rightWidth)
	}
	h.candL, h.candR, h.outIdx = getSel(), getSel(), getSel()
	if !h.equi {
		// Equi-only joins alias denseIota for sel and never write through it;
		// only the EvalPred path wants a reusable buffer.
		h.sel = getSel()
	}
	h.lb, h.li, h.inRow = nil, 0, false
	return h.left.Open()
}

// scanOf unwraps a batch subtree down to a bare table scan, looking through
// the budget wrapper; nil when the subtree is anything else.
func scanOf(it BatchIterator) (*batchScan, *batchBudget) {
	if bb, ok := it.(*batchBudget); ok {
		if bs, ok := bb.child.(*batchScan); ok {
			return bs, bb
		}
		return nil, nil
	}
	bs, _ := it.(*batchScan)
	return bs, nil
}

// buildSide drains the right child into column vectors, indexing non-NULL
// keys. Rows with a NULL key can never match and are not stored.
//
// When the build child is a bare table scan, the catalog's cached column
// vectors are indexed in place: they are stable storage, so copying them
// per execution would be pure overhead. The group index then holds table row
// positions and skipped NULL-key rows simply have no group entry.
func (h *batchHashJoin) buildSide() error {
	if err := h.right.Open(); err != nil {
		return err
	}
	if bs, bb := scanOf(h.right); bs != nil {
		h.rightVecs, h.ownRight = bs.cols, false
		idx := bs.table.JoinIndex(h.rightSlots)
		h.lookup, h.groups = idx.Lookup, idx.Groups
		if bb != nil {
			// Charge what the scan would have emitted batch by batch; only
			// the plan-wide total matters for the ErrRowLimit verdict.
			*bb.budget -= int64(len(bs.idx))
			if *bb.budget < 0 {
				return ErrRowLimit
			}
		}
		bs.pos = len(bs.idx) // the scan is consumed
		return nil
	}
	h.rightVecs, h.ownRight = getVecs(h.rightWidth), true
	h.lookup = make(map[string]int32)
	h.groups = nil // never reuse: the fast path above aliases a shared index
	h.keep = getSel()
	stored := int32(0)
	for {
		b, err := h.right.Next()
		if err != nil {
			return err
		}
		if b == nil {
			return nil
		}
		h.keep = h.keep[:0]
	rows:
		for _, ri := range b.Idx {
			h.keyBuf = h.keyBuf[:0]
			for _, s := range h.rightSlots {
				d := b.Cols[s].D[ri]
				if d.IsNull() {
					continue rows
				}
				h.keyBuf = d.AppendKey(h.keyBuf)
			}
			slot, ok := h.lookup[string(h.keyBuf)]
			if !ok {
				slot = int32(len(h.groups))
				h.lookup[string(h.keyBuf)] = slot
				h.groups = append(h.groups, nil)
			}
			h.keep = append(h.keep, ri)
			h.groups[slot] = append(h.groups[slot], stored)
			stored++
		}
		for c := 0; c < h.rightWidth; c++ {
			h.rightVecs[c].AppendGather(b.Cols[c].D, h.keep)
		}
	}
}

func (h *batchHashJoin) Next() (*Batch, error) {
	for {
		if h.lb == nil {
			lb, err := h.left.Next()
			if err != nil {
				return nil, err
			}
			if lb == nil {
				return nil, nil
			}
			h.lb, h.li, h.inRow = lb, 0, false
			if cap(h.rowMatched) < lb.Len() {
				h.rowMatched = getBools(lb.Len())
			}
			h.rowMatched = h.rowMatched[:lb.Len()]
			for k := range h.rowMatched {
				h.rowMatched[k] = false
			}
		}
		var b *Batch
		var err error
		if h.equi && (h.jt == physical.JoinSemi || h.jt == physical.JoinAnti) {
			b = h.semiAntiEqui()
		} else {
			b, err = h.processChunk()
			if err != nil {
				return nil, err
			}
		}
		if h.li >= len(h.lb.Idx) && !h.inRow {
			h.lb = nil
		}
		if b != nil && b.Len() > 0 {
			return b, nil
		}
	}
}

// semiAntiEqui handles semi and anti joins whose predicate is exactly the
// equi-key conjunction: a probe row passes iff its candidate group is
// (non-)empty, so the whole batch resolves with one hash lookup per row and
// no candidate pairs are ever gathered.
func (h *batchHashJoin) semiAntiEqui() *Batch {
	h.outIdx = h.outIdx[:0]
	for ; h.li < len(h.lb.Idx); h.li++ {
		h.resolveRow()
		if (len(h.group) > 0) == (h.jt == physical.JoinSemi) {
			h.outIdx = append(h.outIdx, h.lb.Idx[h.li])
		}
	}
	h.inRow = false
	h.out = Batch{Cols: h.lb.Cols, Idx: h.outIdx}
	return &h.out
}

// resolveRow looks up the candidate group for the probe row at position li.
func (h *batchHashJoin) resolveRow() {
	ri := h.lb.Idx[h.li]
	h.group, h.mi, h.inRow = nil, 0, true
	h.keyBuf = h.keyBuf[:0]
	for _, s := range h.leftSlots {
		d := h.lb.Cols[s].D[ri]
		if d.IsNull() {
			return
		}
		h.keyBuf = d.AppendKey(h.keyBuf)
	}
	if slot, ok := h.lookup[string(h.keyBuf)]; ok {
		h.group = h.groups[slot]
	}
}

// processChunk gathers up to candidateCap candidate pairs starting at the
// probe cursor, evaluates the join predicate once over all of them, and
// emits the chunk's output in row-engine order.
func (h *batchHashJoin) processChunk() (*Batch, error) {
	h.candL = h.candL[:0]
	h.candR = h.candR[:0]
	h.segs = h.segs[:0]
	n := 0
	for h.li < len(h.lb.Idx) && n < candidateCap {
		if !h.inRow {
			h.resolveRow()
		}
		if h.rowMatched[h.li] && (h.jt == physical.JoinSemi || h.jt == physical.JoinAnti) {
			// Decision already made in an earlier chunk; the row engine stops
			// probing such a row too (it nils the match list).
			h.mi = len(h.group)
		}
		start := n
		ri := h.lb.Idx[h.li]
		for h.mi < len(h.group) && n < candidateCap {
			h.candL = append(h.candL, ri)
			h.candR = append(h.candR, int(h.group[h.mi]))
			h.mi++
			n++
		}
		final := h.mi >= len(h.group)
		h.segs = append(h.segs, joinSeg{li: h.li, start: start, end: n, final: final})
		if !final {
			break // chunk full mid-row; resume this row next call
		}
		h.li++
		h.inRow = false
	}
	if err := h.evalChunk(); err != nil {
		return nil, err
	}
	return h.emitChunk(), nil
}

// evalChunk gathers the candidate pairs into combined column vectors and
// runs one vectorized predicate pass, leaving the passing candidate
// positions in h.sel. For an equi-only predicate the pass is skipped: every
// hash candidate matches by construction.
func (h *batchHashJoin) evalChunk() error {
	h.sel = h.sel[:0]
	if len(h.candL) == 0 {
		return nil
	}
	for c := range h.candVecs {
		h.candVecs[c].Reset()
	}
	for c := 0; c < h.leftWidth; c++ {
		h.candVecs[c].AppendGather(h.lb.Cols[c].D, h.candL)
	}
	for c := 0; c < h.rightWidth; c++ {
		h.candVecs[h.leftWidth+c].AppendGather(h.rightVecs[c].D, h.candR)
	}
	if h.equi {
		// Aliasing the shared read-only iota is safe: an equi-only join never
		// takes the EvalPred branch below, which is the only writer into sel.
		h.sel = denseIota[:len(h.candL)]
		return nil
	}
	sel, err := h.ve.EvalPred(h.plan.On, h.candVecs, denseIota[:len(h.candL)], h.sel)
	if err != nil {
		return err
	}
	h.sel = sel
	return nil
}

// emitChunk walks the chunk's segments in probe order and assembles the
// output batch: each row's passing matches, then its fallout once its
// candidates are exhausted.
func (h *batchHashJoin) emitChunk() *Batch {
	sel := h.sel
	switch h.jt {
	case physical.JoinInner:
		// Pure selection over the candidate vectors: zero copies.
		h.out = Batch{Cols: h.candVecs, Idx: sel}
		return &h.out
	case physical.JoinSemi, physical.JoinAnti:
		h.outIdx = h.outIdx[:0]
		si := 0
		for _, seg := range h.segs {
			for si < len(sel) && sel[si] < seg.start {
				si++
			}
			if si < len(sel) && sel[si] < seg.end && !h.rowMatched[seg.li] {
				h.rowMatched[seg.li] = true
				if h.jt == physical.JoinSemi {
					h.outIdx = append(h.outIdx, h.lb.Idx[seg.li])
				}
			}
			if seg.final && h.jt == physical.JoinAnti && !h.rowMatched[seg.li] {
				h.outIdx = append(h.outIdx, h.lb.Idx[seg.li])
			}
		}
		h.out = Batch{Cols: h.lb.Cols, Idx: h.outIdx}
		return &h.out
	default: // JoinLeft
		for c := range h.outVecs {
			h.outVecs[c].Reset()
		}
		m := 0
		si := 0
		for _, seg := range h.segs {
			for si < len(sel) && sel[si] < seg.start {
				si++
			}
			for si < len(sel) && sel[si] < seg.end {
				p := sel[si]
				si++
				for c := range h.outVecs {
					h.outVecs[c].Append(h.candVecs[c].D[p])
				}
				m++
				h.rowMatched[seg.li] = true
			}
			if seg.final && !h.rowMatched[seg.li] {
				ri := h.lb.Idx[seg.li]
				for c := 0; c < h.leftWidth; c++ {
					h.outVecs[c].Append(h.lb.Cols[c].D[ri])
				}
				for c := h.leftWidth; c < len(h.outVecs); c++ {
					h.outVecs[c].Append(datum.Null)
				}
				m++
			}
		}
		h.out = Batch{Cols: h.outVecs, Idx: denseIota[:m]}
		return &h.out
	}
}

func (h *batchHashJoin) Close() error {
	putVecs(h.candVecs)
	putVecs(h.outVecs)
	if h.ownRight {
		putVecs(h.rightVecs)
	}
	h.candVecs, h.outVecs, h.rightVecs, h.ownRight = nil, nil, nil, false
	putSel(h.keep)
	putSel(h.candL)
	putSel(h.candR)
	putSel(h.outIdx)
	putSel(h.sel) // drops the denseIota alias an equi join leaves here
	h.keep, h.candL, h.candR, h.outIdx, h.sel = nil, nil, nil, nil, nil
	putBools(h.rowMatched)
	h.rowMatched = nil
	err1 := h.left.Close()
	err2 := h.right.Close()
	if err1 != nil {
		return err1
	}
	return err2
}
