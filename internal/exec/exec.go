// Package exec implements a Volcano-style iterator execution engine for
// physical plans. Correctness testing (§2.3) executes Plan(q) and
// Plan(q,¬R) and compares their results as multisets; this package provides
// both the execution and the comparison oracle.
package exec

import (
	"errors"
	"fmt"
	"sort"

	"qtrtest/internal/catalog"
	"qtrtest/internal/datum"
	"qtrtest/internal/logical"
	"qtrtest/internal/physical"
	"qtrtest/internal/scalar"
)

// Iterator is the operator interface: Open, then Next until it returns a nil
// row, then Close.
type Iterator interface {
	Open() error
	// Next returns the next row, or (nil, nil) at end of stream.
	Next() (datum.Row, error)
	Close() error
}

// envOf maps a column layout to slot positions.
func envOf(cols []scalar.ColumnID) scalar.Env {
	env := make(scalar.Env, len(cols))
	for i, c := range cols {
		env[c] = i
	}
	return env
}

// Build compiles a physical plan into an iterator tree over the catalog's
// in-memory tables.
func Build(plan *physical.Expr, cat *catalog.Catalog) (Iterator, error) {
	kids := make([]Iterator, len(plan.Children))
	for i, c := range plan.Children {
		k, err := Build(c, cat)
		if err != nil {
			return nil, err
		}
		kids[i] = k
	}
	return buildOver(plan, kids, cat)
}

// Run executes a plan to completion on the default (batch) engine and
// returns all result rows.
func Run(plan *physical.Expr, cat *catalog.Catalog) ([]datum.Row, error) {
	return RunEngine(EngineBatch, plan, cat, 0, 0)
}

// ErrRowLimit reports that a plan exceeded a row cap passed to RunMax: its
// result grew past maxRows, or its operators produced more rows in total
// than maxWork. Fuzzing uses it to skip pathological plans (a dropped join
// predicate turns a join into a cross product) instead of paying for them.
var ErrRowLimit = errors.New("exec: result row cap exceeded")

// RunMax executes a plan like Run but fails with ErrRowLimit as soon as the
// result exceeds maxRows, or the rows produced by all operators together —
// rescans included — exceed maxWork. A root-only cap cannot bound a plan
// whose intermediate results explode while its root stays small (a dropped
// join predicate under an aggregation); the work budget can. Zero or
// negative caps mean uncapped.
func RunMax(plan *physical.Expr, cat *catalog.Catalog, maxRows int, maxWork int64) ([]datum.Row, error) {
	return RunEngine(EngineBatch, plan, cat, maxRows, maxWork)
}

// budgetIter charges every row an operator emits against a budget shared by
// the whole plan. Plans execute single-threaded, so a plain counter works.
type budgetIter struct {
	Iterator
	budget *int64
}

func (b *budgetIter) Next() (datum.Row, error) {
	row, err := b.Iterator.Next()
	if row != nil {
		*b.budget--
		if *b.budget < 0 {
			return nil, ErrRowLimit
		}
	}
	return row, err
}

// buildBudget compiles the plan with a work-counting wrapper at every
// operator, mirroring Build.
func buildBudget(plan *physical.Expr, cat *catalog.Catalog, budget *int64) (Iterator, error) {
	kids := make([]Iterator, len(plan.Children))
	for i, c := range plan.Children {
		k, err := buildBudget(c, cat, budget)
		if err != nil {
			return nil, err
		}
		kids[i] = k
	}
	it, err := buildOver(plan, kids, cat)
	if err != nil {
		return nil, err
	}
	return &budgetIter{Iterator: it, budget: budget}, nil
}

// runIter opens, drains and closes an iterator. A Close error on an
// otherwise successful scan is a real failure and must not be swallowed.
// maxRows > 0 caps the result size.
func runIter(it Iterator, maxRows int) (out []datum.Row, err error) {
	if err := it.Open(); err != nil {
		return nil, err
	}
	defer func() {
		if cerr := it.Close(); cerr != nil && err == nil {
			out, err = nil, cerr
		}
	}()
	for {
		row, err := it.Next()
		if err != nil {
			return nil, err
		}
		if row == nil {
			return out, nil
		}
		if maxRows > 0 && len(out) >= maxRows {
			return nil, ErrRowLimit
		}
		out = append(out, row)
	}
}

// ---- scan -----------------------------------------------------------------

type scanIter struct {
	table *catalog.Table
	pos   int
}

func (s *scanIter) Open() error { s.pos = 0; return nil }

func (s *scanIter) Next() (datum.Row, error) {
	if s.pos >= len(s.table.Rows) {
		return nil, nil
	}
	row := s.table.Rows[s.pos]
	s.pos++
	return row, nil
}

func (s *scanIter) Close() error { return nil }

// ---- filter ---------------------------------------------------------------

type filterIter struct {
	child Iterator
	pred  scalar.Expr
	env   scalar.Env
}

func (f *filterIter) Open() error { return f.child.Open() }

func (f *filterIter) Next() (datum.Row, error) {
	for {
		row, err := f.child.Next()
		if err != nil || row == nil {
			return nil, err
		}
		ok, err := scalar.EvalBool(f.pred, row, f.env)
		if err != nil {
			return nil, err
		}
		if ok {
			return row, nil
		}
	}
}

func (f *filterIter) Close() error { return f.child.Close() }

// ---- project ----------------------------------------------------------------

type projectIter struct {
	child Iterator
	items []logical.ProjItem
	env   scalar.Env
}

func (p *projectIter) Open() error { return p.child.Open() }

func (p *projectIter) Next() (datum.Row, error) {
	row, err := p.child.Next()
	if err != nil || row == nil {
		return nil, err
	}
	out := make(datum.Row, len(p.items))
	for i, it := range p.items {
		d, err := scalar.Eval(it.E, row, p.env)
		if err != nil {
			return nil, err
		}
		out[i] = d
	}
	return out, nil
}

func (p *projectIter) Close() error { return p.child.Close() }

// ---- sort -------------------------------------------------------------------

type sortIter struct {
	child Iterator
	keys  []logical.SortKey
	env   scalar.Env
	rows  []datum.Row
	pos   int
}

func (s *sortIter) Open() error {
	if err := s.child.Open(); err != nil {
		return err
	}
	// Resolve key slots up front: a sort key missing from the input is a
	// plan-construction bug and must fail loudly, not silently sort by the
	// column in slot 0.
	slots := make([]int, len(s.keys))
	for i, k := range s.keys {
		slot, ok := s.env[k.Col]
		if !ok {
			return fmt.Errorf("exec: sort key column c%d not in input", k.Col)
		}
		slots[i] = slot
	}
	s.rows = s.rows[:0]
	for {
		row, err := s.child.Next()
		if err != nil {
			return err
		}
		if row == nil {
			break
		}
		s.rows = append(s.rows, row)
	}
	sort.SliceStable(s.rows, func(i, j int) bool {
		for ki, k := range s.keys {
			slot := slots[ki]
			c := datum.TotalCompare(s.rows[i][slot], s.rows[j][slot])
			if c != 0 {
				if k.Desc {
					return c > 0
				}
				return c < 0
			}
		}
		return false
	})
	s.pos = 0
	return nil
}

func (s *sortIter) Next() (datum.Row, error) {
	if s.pos >= len(s.rows) {
		return nil, nil
	}
	row := s.rows[s.pos]
	s.pos++
	return row, nil
}

func (s *sortIter) Close() error { return s.child.Close() }

// ---- limit --------------------------------------------------------------------

type limitIter struct {
	child Iterator
	n     int64
	seen  int64
}

func (l *limitIter) Open() error { l.seen = 0; return l.child.Open() }

func (l *limitIter) Next() (datum.Row, error) {
	if l.seen >= l.n {
		return nil, nil
	}
	row, err := l.child.Next()
	if err != nil || row == nil {
		return nil, err
	}
	l.seen++
	return row, nil
}

func (l *limitIter) Close() error { return l.child.Close() }

// ---- concat (UNION ALL) ----------------------------------------------------------

type concatIter struct {
	plan *physical.Expr
	kids []Iterator
	cur  int
	maps [][]int // per child: output position -> child slot
}

func (c *concatIter) Open() error {
	c.cur = 0
	c.maps = make([][]int, len(c.kids))
	for i, kid := range c.kids {
		if err := kid.Open(); err != nil {
			return err
		}
		env := envOf(c.plan.Children[i].OutputCols())
		m := make([]int, len(c.plan.OutCols))
		for j := range c.plan.OutCols {
			slot, ok := env[c.plan.InputCols[i][j]]
			if !ok {
				return fmt.Errorf("exec: concat input column c%d missing from child %d", c.plan.InputCols[i][j], i)
			}
			m[j] = slot
		}
		c.maps[i] = m
	}
	return nil
}

func (c *concatIter) Next() (datum.Row, error) {
	for c.cur < len(c.kids) {
		row, err := c.kids[c.cur].Next()
		if err != nil {
			return nil, err
		}
		if row == nil {
			c.cur++
			continue
		}
		out := make(datum.Row, len(c.maps[c.cur]))
		for j, slot := range c.maps[c.cur] {
			out[j] = row[slot]
		}
		return out, nil
	}
	return nil, nil
}

func (c *concatIter) Close() error {
	var first error
	for _, k := range c.kids {
		if err := k.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
