package exec

import (
	"fmt"
	"sort"

	"qtrtest/internal/datum"
	"qtrtest/internal/scalar"
)

// aggIter implements grouped and scalar aggregation. Grouping is hash-based;
// with sorted=true output groups are emitted in group-key order (matching the
// determinism of a stream aggregate fed by a sort).
type aggIter struct {
	child     Iterator
	groupCols []scalar.ColumnID
	aggs      []scalar.Agg
	env       scalar.Env
	sorted    bool

	out []datum.Row
	pos int
}

// aggState accumulates one aggregate over one group.
type aggState struct {
	count  int64 // non-null inputs (or all rows for COUNT(*))
	sumI   int64
	sumF   float64
	allInt bool
	min    datum.Datum
	max    datum.Datum
	sawRow bool
}

func newAggState() *aggState {
	return &aggState{allInt: true, min: datum.Null, max: datum.Null}
}

func (s *aggState) add(d datum.Datum, op scalar.AggOp) error {
	if op == scalar.AggCountStar {
		s.count++
		return nil
	}
	if d.IsNull() {
		return nil
	}
	s.count++
	s.sawRow = true
	switch d.K {
	case datum.KindInt, datum.KindDate:
		s.sumI += d.I
		s.sumF += float64(d.I)
	case datum.KindFloat:
		s.allInt = false
		s.sumF += d.F
	default:
		// SUM/AVG over a non-numeric input used to fall through here without
		// accumulating anything, so result() silently returned 0.0 — a wrong
		// answer the differential oracle would then trust. Surface it as an
		// execution error instead. COUNT/MIN/MAX are defined for any kind
		// (MIN/MAX order mixed kinds by datum.TotalCompare) and stay legal.
		if op == scalar.AggSum || op == scalar.AggAvg {
			return fmt.Errorf("exec: %s over non-numeric %s value", op, d.TypeOf())
		}
		s.allInt = false
	}
	if s.min.IsNull() || datum.TotalCompare(d, s.min) < 0 {
		s.min = d
	}
	if s.max.IsNull() || datum.TotalCompare(d, s.max) > 0 {
		s.max = d
	}
	return nil
}

func (s *aggState) result(op scalar.AggOp) datum.Datum {
	switch op {
	case scalar.AggCountStar, scalar.AggCount:
		return datum.NewInt(s.count)
	case scalar.AggSum:
		if !s.sawRow {
			return datum.Null
		}
		if s.allInt {
			return datum.NewInt(s.sumI)
		}
		return datum.NewFloat(s.sumF)
	case scalar.AggMin:
		return s.min
	case scalar.AggMax:
		return s.max
	case scalar.AggAvg:
		if s.count == 0 {
			return datum.Null
		}
		return datum.NewFloat(s.sumF / float64(s.count))
	}
	return datum.Null
}

type aggGroup struct {
	key    string
	rep    datum.Row // group column values
	states []*aggState
}

func (a *aggIter) Open() error {
	if err := a.child.Open(); err != nil {
		return err
	}
	slots := make([]int, len(a.groupCols))
	for i, c := range a.groupCols {
		s, ok := a.env[c]
		if !ok {
			return fmt.Errorf("exec: grouping column c%d not in input", c)
		}
		slots[i] = s
	}
	groups := make(map[string]*aggGroup)
	var order []*aggGroup
	var keyBuf []byte
	for {
		row, err := a.child.Next()
		if err != nil {
			return err
		}
		if row == nil {
			break
		}
		keyBuf = keyBuf[:0]
		rep := make(datum.Row, len(slots))
		for i, s := range slots {
			rep[i] = row[s]
			keyBuf = rep[i].AppendKey(keyBuf)
		}
		g, ok := groups[string(keyBuf)]
		if !ok {
			g = &aggGroup{key: string(keyBuf), rep: rep, states: make([]*aggState, len(a.aggs))}
			for i := range g.states {
				g.states[i] = newAggState()
			}
			groups[g.key] = g
			order = append(order, g)
		}
		for i, ag := range a.aggs {
			var d datum.Datum
			if ag.Op != scalar.AggCountStar {
				var err error
				d, err = scalar.Eval(ag.Arg, row, a.env)
				if err != nil {
					return err
				}
			}
			if err := g.states[i].add(d, ag.Op); err != nil {
				return err
			}
		}
	}
	// Scalar aggregation over empty input yields one row (COUNT=0, others
	// NULL), per SQL semantics.
	if len(a.groupCols) == 0 && len(order) == 0 {
		g := &aggGroup{states: make([]*aggState, len(a.aggs))}
		for i := range g.states {
			g.states[i] = newAggState()
		}
		order = append(order, g)
	}
	if a.sorted {
		sort.Slice(order, func(i, j int) bool { return order[i].key < order[j].key })
	}
	a.out = a.out[:0]
	for _, g := range order {
		row := make(datum.Row, 0, len(a.groupCols)+len(a.aggs))
		row = append(row, g.rep...)
		for i, ag := range a.aggs {
			row = append(row, g.states[i].result(ag.Op))
		}
		a.out = append(a.out, row)
	}
	a.pos = 0
	return nil
}

func (a *aggIter) Next() (datum.Row, error) {
	if a.pos >= len(a.out) {
		return nil, nil
	}
	row := a.out[a.pos]
	a.pos++
	return row, nil
}

func (a *aggIter) Close() error { return a.child.Close() }
