package exec

import (
	"testing"

	"qtrtest/internal/catalog"
	"qtrtest/internal/datum"
	"qtrtest/internal/logical"
	"qtrtest/internal/physical"
	"qtrtest/internal/scalar"
)

// testCatalog builds two small tables with NULLs:
//
//	t1(a, b):  (1,10) (2,20) (3,NULL) (NULL,40)
//	t2(x, y):  (1,'one') (1,'uno') (3,'three') (NULL,'null')
func testCatalog() *catalog.Catalog {
	c := catalog.New()
	t1 := &catalog.Table{
		Name: "t1",
		Columns: []catalog.Column{
			{Name: "a", Type: datum.TypeInt}, {Name: "b", Type: datum.TypeInt},
		},
		PrimaryKey: []string{"a"},
		Rows: []datum.Row{
			{datum.NewInt(1), datum.NewInt(10)},
			{datum.NewInt(2), datum.NewInt(20)},
			{datum.NewInt(3), datum.Null},
			{datum.Null, datum.NewInt(40)},
		},
	}
	t1.ComputeStats()
	c.Add(t1)
	t2 := &catalog.Table{
		Name: "t2",
		Columns: []catalog.Column{
			{Name: "x", Type: datum.TypeInt}, {Name: "y", Type: datum.TypeString},
		},
		Rows: []datum.Row{
			{datum.NewInt(1), datum.NewString("one")},
			{datum.NewInt(1), datum.NewString("uno")},
			{datum.NewInt(3), datum.NewString("three")},
			{datum.Null, datum.NewString("null")},
		},
	}
	t2.ComputeStats()
	c.Add(t2)
	return c
}

// Column ids by convention in these tests: t1 -> a=1 b=2; t2 -> x=3 y=4.
func scanT1() *physical.Expr {
	return &physical.Expr{Op: physical.OpScan, Table: "t1", Cols: []scalar.ColumnID{1, 2}}
}

func scanT2() *physical.Expr {
	return &physical.Expr{Op: physical.OpScan, Table: "t2", Cols: []scalar.ColumnID{3, 4}}
}

func eqOn() scalar.Expr {
	return &scalar.Cmp{Op: scalar.CmpEQ, L: &scalar.ColRef{ID: 1}, R: &scalar.ColRef{ID: 3}}
}

func mustRun(t *testing.T, plan *physical.Expr) []datum.Row {
	t.Helper()
	rows, err := Run(plan, testCatalog())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return rows
}

func TestScan(t *testing.T) {
	rows := mustRun(t, scanT1())
	if len(rows) != 4 {
		t.Fatalf("scan rows = %d", len(rows))
	}
}

func TestFilter(t *testing.T) {
	plan := &physical.Expr{
		Op: physical.OpFilter, Children: []*physical.Expr{scanT1()},
		Filter: &scalar.Cmp{Op: scalar.CmpGT, L: &scalar.ColRef{ID: 2}, R: &scalar.Const{D: datum.NewInt(15)}},
	}
	rows := mustRun(t, plan)
	// b > 15 keeps (2,20),(NULL,40); (3,NULL) is UNKNOWN -> dropped.
	if len(rows) != 2 {
		t.Fatalf("filter rows = %d, want 2", len(rows))
	}
}

func TestProject(t *testing.T) {
	plan := &physical.Expr{
		Op: physical.OpProject, Children: []*physical.Expr{scanT1()},
		Projs: []logical.ProjItem{
			{Out: 9, E: &scalar.Arith{Op: scalar.ArithAdd, L: &scalar.ColRef{ID: 1}, R: &scalar.Const{D: datum.NewInt(100)}}},
		},
	}
	rows := mustRun(t, plan)
	if len(rows) != 4 || len(rows[0]) != 1 {
		t.Fatalf("project shape wrong: %v", rows)
	}
	if rows[0][0] != datum.NewInt(101) {
		t.Errorf("computed value = %v", rows[0][0])
	}
	if !rows[3][0].IsNull() {
		t.Errorf("NULL + 100 = %v, want NULL", rows[3][0])
	}
}

func joinPlan(op physical.Op, jt physical.JoinType) *physical.Expr {
	return &physical.Expr{
		Op: op, JoinType: jt,
		Children:  []*physical.Expr{scanT1(), scanT2()},
		On:        eqOn(),
		EquiLeft:  []scalar.ColumnID{1},
		EquiRight: []scalar.ColumnID{3},
	}
}

// Expected inner join result: a=1 matches (1,one),(1,uno); a=3 matches
// (3,three). NULL keys never match. Total 3 rows.
func TestInnerJoinVariants(t *testing.T) {
	for _, op := range []physical.Op{physical.OpHashJoin, physical.OpNLJoin, physical.OpMergeJoin} {
		rows := mustRun(t, joinPlan(op, physical.JoinInner))
		if len(rows) != 3 {
			t.Errorf("%s inner join rows = %d, want 3", op, len(rows))
		}
		for _, r := range rows {
			if len(r) != 4 {
				t.Fatalf("%s row width %d", op, len(r))
			}
		}
	}
}

func TestLeftJoin(t *testing.T) {
	for _, op := range []physical.Op{physical.OpHashJoin, physical.OpNLJoin} {
		rows := mustRun(t, joinPlan(op, physical.JoinLeft))
		// 3 matches + null-extended rows for a=2 and a=NULL.
		if len(rows) != 5 {
			t.Fatalf("%s left join rows = %d, want 5", op, len(rows))
		}
		nullExtended := 0
		for _, r := range rows {
			if r[2].IsNull() && r[3].IsNull() {
				nullExtended++
			}
		}
		if nullExtended != 2 {
			t.Errorf("%s null-extended rows = %d, want 2", op, nullExtended)
		}
	}
}

func TestSemiAndAntiJoin(t *testing.T) {
	for _, op := range []physical.Op{physical.OpHashJoin, physical.OpNLJoin} {
		semi := mustRun(t, joinPlan(op, physical.JoinSemi))
		// a=1 and a=3 have matches; each left row emitted once.
		if len(semi) != 2 {
			t.Errorf("%s semi rows = %d, want 2", op, len(semi))
		}
		for _, r := range semi {
			if len(r) != 2 {
				t.Errorf("%s semi row width %d, want 2 (left only)", op, len(r))
			}
		}
		anti := mustRun(t, joinPlan(op, physical.JoinAnti))
		// a=2 and a=NULL have no match.
		if len(anti) != 2 {
			t.Errorf("%s anti rows = %d, want 2", op, len(anti))
		}
	}
}

func TestJoinResidualPredicate(t *testing.T) {
	// ON a = x AND y <> 'uno' — residual on top of the equi keys.
	plan := joinPlan(physical.OpHashJoin, physical.JoinInner)
	plan.On = &scalar.And{Kids: []scalar.Expr{
		eqOn(),
		&scalar.Cmp{Op: scalar.CmpNE, L: &scalar.ColRef{ID: 4}, R: &scalar.Const{D: datum.NewString("uno")}},
	}}
	rows := mustRun(t, plan)
	if len(rows) != 2 {
		t.Fatalf("residual join rows = %d, want 2", len(rows))
	}

	// Left join with residual: a=1 keeps 1 match; a=2,3(!),NULL null-extend.
	plan2 := joinPlan(physical.OpHashJoin, physical.JoinLeft)
	plan2.On = &scalar.And{Kids: []scalar.Expr{
		eqOn(),
		&scalar.Cmp{Op: scalar.CmpEQ, L: &scalar.ColRef{ID: 4}, R: &scalar.Const{D: datum.NewString("one")}},
	}}
	rows2 := mustRun(t, plan2)
	if len(rows2) != 4 {
		t.Fatalf("left join with residual rows = %d, want 4", len(rows2))
	}
}

func TestCrossJoinOnTrue(t *testing.T) {
	plan := &physical.Expr{
		Op: physical.OpNLJoin, JoinType: physical.JoinInner,
		Children: []*physical.Expr{scanT1(), scanT2()},
		On:       scalar.TrueExpr(),
	}
	rows := mustRun(t, plan)
	if len(rows) != 16 {
		t.Fatalf("cross join rows = %d, want 16", len(rows))
	}
}

func TestHashAgg(t *testing.T) {
	agg := &physical.Expr{
		Op: physical.OpHashAgg, Children: []*physical.Expr{scanT2()},
		GroupCols: []scalar.ColumnID{3},
		Aggs: []scalar.Agg{
			{Op: scalar.AggCountStar, Out: 10},
			{Op: scalar.AggCount, Arg: &scalar.ColRef{ID: 4}, Out: 11},
		},
	}
	rows := mustRun(t, agg)
	// Groups: x=1 (2 rows), x=3 (1), x=NULL (1).
	if len(rows) != 3 {
		t.Fatalf("agg groups = %d, want 3", len(rows))
	}
	counts := map[string]int64{}
	for _, r := range rows {
		counts[r[0].String()] = r[1].I
	}
	if counts["1"] != 2 || counts["3"] != 1 || counts["NULL"] != 1 {
		t.Errorf("group counts wrong: %v", counts)
	}
}

func TestAggNullHandling(t *testing.T) {
	// SUM/MIN/MAX/AVG/COUNT over b of t1: values 10,20,NULL,40.
	agg := &physical.Expr{
		Op: physical.OpHashAgg, Children: []*physical.Expr{scanT1()},
		Aggs: []scalar.Agg{
			{Op: scalar.AggSum, Arg: &scalar.ColRef{ID: 2}, Out: 10},
			{Op: scalar.AggMin, Arg: &scalar.ColRef{ID: 2}, Out: 11},
			{Op: scalar.AggMax, Arg: &scalar.ColRef{ID: 2}, Out: 12},
			{Op: scalar.AggAvg, Arg: &scalar.ColRef{ID: 2}, Out: 13},
			{Op: scalar.AggCount, Arg: &scalar.ColRef{ID: 2}, Out: 14},
			{Op: scalar.AggCountStar, Out: 15},
		},
	}
	rows := mustRun(t, agg)
	if len(rows) != 1 {
		t.Fatalf("scalar agg rows = %d", len(rows))
	}
	r := rows[0]
	if r[0] != datum.NewInt(70) || r[1] != datum.NewInt(10) || r[2] != datum.NewInt(40) {
		t.Errorf("sum/min/max = %v %v %v", r[0], r[1], r[2])
	}
	if r[3].K != datum.KindFloat || r[3].F != 70.0/3 {
		t.Errorf("avg = %v", r[3])
	}
	if r[4] != datum.NewInt(3) || r[5] != datum.NewInt(4) {
		t.Errorf("count/count* = %v %v", r[4], r[5])
	}
}

func TestScalarAggOverEmptyInput(t *testing.T) {
	empty := &physical.Expr{
		Op: physical.OpFilter, Children: []*physical.Expr{scanT1()},
		Filter: &scalar.Cmp{Op: scalar.CmpGT, L: &scalar.ColRef{ID: 2}, R: &scalar.Const{D: datum.NewInt(1000)}},
	}
	agg := &physical.Expr{
		Op: physical.OpHashAgg, Children: []*physical.Expr{empty},
		Aggs: []scalar.Agg{
			{Op: scalar.AggCountStar, Out: 10},
			{Op: scalar.AggSum, Arg: &scalar.ColRef{ID: 2}, Out: 11},
		},
	}
	rows := mustRun(t, agg)
	if len(rows) != 1 {
		t.Fatalf("scalar agg over empty input must yield one row, got %d", len(rows))
	}
	if rows[0][0] != datum.NewInt(0) || !rows[0][1].IsNull() {
		t.Errorf("empty input: count=%v sum=%v, want 0/NULL", rows[0][0], rows[0][1])
	}
	// Grouped agg over empty input yields no rows.
	agg.GroupCols = []scalar.ColumnID{1}
	rows = mustRun(t, agg)
	if len(rows) != 0 {
		t.Errorf("grouped agg over empty input must yield no rows, got %d", len(rows))
	}
}

func TestSortAggMatchesHashAgg(t *testing.T) {
	mk := func(op physical.Op) *physical.Expr {
		return &physical.Expr{
			Op: op, Children: []*physical.Expr{scanT2()},
			GroupCols: []scalar.ColumnID{3},
			Aggs:      []scalar.Agg{{Op: scalar.AggCountStar, Out: 10}},
		}
	}
	h := mustRun(t, mk(physical.OpHashAgg))
	s := mustRun(t, mk(physical.OpSortAgg))
	if !EqualMultisets(h, s) {
		t.Error("hash and sort aggregation disagree")
	}
}

func TestSortAndLimit(t *testing.T) {
	sorted := &physical.Expr{
		Op: physical.OpSort, Children: []*physical.Expr{scanT1()},
		Keys: []logical.SortKey{{Col: 2, Desc: true}},
	}
	rows := mustRun(t, sorted)
	if rows[0][1] != datum.NewInt(40) || !rows[3][1].IsNull() {
		t.Errorf("descending sort wrong: %v", rows)
	}
	limited := &physical.Expr{Op: physical.OpLimit, Children: []*physical.Expr{sorted}, N: 2}
	rows = mustRun(t, limited)
	if len(rows) != 2 || rows[1][1] != datum.NewInt(20) {
		t.Errorf("limit wrong: %v", rows)
	}
}

func TestConcatRemapsColumns(t *testing.T) {
	plan := &physical.Expr{
		Op:        physical.OpConcat,
		Children:  []*physical.Expr{scanT1(), scanT2()},
		OutCols:   []scalar.ColumnID{20},
		InputCols: [][]scalar.ColumnID{{2}, {3}}, // t1.b ++ t2.x
	}
	rows := mustRun(t, plan)
	if len(rows) != 8 {
		t.Fatalf("concat rows = %d", len(rows))
	}
	if rows[0][0] != datum.NewInt(10) || rows[4][0] != datum.NewInt(1) {
		t.Errorf("concat values wrong: %v", rows)
	}
	for _, r := range rows {
		if len(r) != 1 {
			t.Fatal("concat width wrong")
		}
	}
}

func TestEqualMultisets(t *testing.T) {
	a := []datum.Row{{datum.NewInt(1)}, {datum.NewInt(1)}, {datum.NewInt(2)}}
	b := []datum.Row{{datum.NewInt(2)}, {datum.NewInt(1)}, {datum.NewInt(1)}}
	c := []datum.Row{{datum.NewInt(1)}, {datum.NewInt(2)}, {datum.NewInt(2)}}
	if !EqualMultisets(a, b) {
		t.Error("order must not matter")
	}
	if EqualMultisets(a, c) {
		t.Error("multiplicities must matter")
	}
	if EqualMultisets(a, a[:2]) {
		t.Error("lengths must matter")
	}
	if DiffSummary(a, c) == "" {
		t.Error("DiffSummary should describe the discrepancy")
	}
	// Int/float equality across plans.
	d := []datum.Row{{datum.NewFloat(1)}, {datum.NewFloat(1)}, {datum.NewFloat(2)}}
	if !EqualMultisets(a, d) {
		t.Error("1 and 1.0 must compare equal across plans")
	}
}

func TestBuildErrors(t *testing.T) {
	bad := &physical.Expr{Op: physical.OpScan, Table: "missing"}
	if _, err := Run(bad, testCatalog()); err == nil {
		t.Error("scan of missing table must error")
	}
	mj := joinPlan(physical.OpMergeJoin, physical.JoinLeft)
	if _, err := Build(mj, testCatalog()); err == nil {
		t.Error("merge join only supports inner joins")
	}
}

func TestConcatSameChildTwice(t *testing.T) {
	// The OR-expansion rule produces UNION ALL branches over the same input
	// columns; the executor must handle identical InputCols on both sides.
	plan := &physical.Expr{
		Op:        physical.OpConcat,
		Children:  []*physical.Expr{scanT1(), scanT1()},
		OutCols:   []scalar.ColumnID{20, 21},
		InputCols: [][]scalar.ColumnID{{1, 2}, {1, 2}},
	}
	rows := mustRun(t, plan)
	if len(rows) != 8 {
		t.Fatalf("rows = %d, want 8 (each t1 row twice)", len(rows))
	}
	counts := map[string]int{}
	for _, r := range rows {
		counts[r.Key()]++
	}
	for k, c := range counts {
		if c != 2 {
			t.Errorf("row %s appears %d times, want 2", k, c)
		}
	}
}
