// Package memo implements the optimizer's memo: a forest of groups of
// logically equivalent expressions, as in Volcano/Cascades [12][13]. The
// memo provides interning (structural deduplication) of expressions, which
// is what keeps exploration to a fixpoint finite.
package memo

import (
	"fmt"
	"strconv"
	"strings"

	"qtrtest/internal/logical"
	"qtrtest/internal/scalar"
)

// GroupID identifies a group of equivalent expressions. IDs start at 1.
type GroupID int

// MExpr is a logical expression inside the memo: an operator payload plus
// child group references.
type MExpr struct {
	// Node carries the operator and its arguments; Node.Children is unused.
	Node *logical.Expr
	// Kids are the child groups, in operator order.
	Kids []GroupID
	// Group is the group this expression belongs to.
	Group GroupID
	// Applied records rules already fired on this expression, keyed by rule
	// ID, so each (rule, expression) pair fires at most once.
	Applied map[int]bool
	// CreatedBy is the ID of the rule whose substitution created this
	// expression, or 0 for expressions of the original query tree. It
	// powers rule-interaction tracking (§7): rule r2 exercised on an
	// expression created by r1.
	CreatedBy int
}

// Op returns the operator of the expression.
func (e *MExpr) Op() logical.Op { return e.Node.Op }

// Group is a set of logically equivalent expressions with shared logical
// properties.
type Group struct {
	ID    GroupID
	Exprs []*MExpr
	// Cols is the set of columns every expression in the group produces.
	Cols scalar.ColSet
}

// Memo holds groups and the interning table.
type Memo struct {
	MD     *logical.Metadata
	groups []*Group
	intern map[string]*MExpr
	nexprs int
	// Root is the group representing the whole query.
	Root GroupID
}

// New returns an empty memo over the given metadata.
func New(md *logical.Metadata) *Memo {
	return &Memo{MD: md, intern: make(map[string]*MExpr)}
}

// NumGroups returns the number of groups.
func (m *Memo) NumGroups() int { return len(m.groups) }

// NumExprs returns the total number of memo expressions.
func (m *Memo) NumExprs() int { return m.nexprs }

// Group returns the group with the given id.
func (m *Memo) Group(id GroupID) *Group {
	return m.groups[id-1]
}

// Groups returns all groups in creation order.
func (m *Memo) Groups() []*Group { return m.groups }

func exprKey(node *logical.Expr, kids []GroupID) string {
	var sb strings.Builder
	node.PayloadHashInto(&sb)
	for _, k := range kids {
		sb.WriteByte('@')
		var buf [20]byte
		sb.Write(strconv.AppendInt(buf[:0], int64(k), 10))
	}
	return sb.String()
}

// payloadOnly strips children from a logical node, keeping arguments.
func payloadOnly(node *logical.Expr) *logical.Expr {
	cp := node.Clone()
	cp.Children = nil
	return cp
}

// colSetOf computes the group column set for a node given its kid groups.
func (m *Memo) colSetOf(node *logical.Expr, kids []GroupID) scalar.ColSet {
	kidSet := func(i int) scalar.ColSet { return m.Group(kids[i]).Cols }
	switch node.Op {
	case logical.OpGet:
		return scalar.NewColSet(node.Cols...)
	case logical.OpSelect, logical.OpLimit, logical.OpSort:
		return kidSet(0)
	case logical.OpProject:
		s := make(scalar.ColSet, len(node.Projs))
		for _, p := range node.Projs {
			s.Add(p.Out)
		}
		return s
	case logical.OpJoin, logical.OpLeftJoin:
		return kidSet(0).Union(kidSet(1))
	case logical.OpSemiJoin, logical.OpAntiJoin:
		return kidSet(0)
	case logical.OpGroupBy:
		s := make(scalar.ColSet)
		for _, c := range node.GroupCols {
			s.Add(c)
		}
		for _, a := range node.Aggs {
			s.Add(a.Out)
		}
		return s
	case logical.OpUnionAll:
		return scalar.NewColSet(node.OutCols...)
	}
	return make(scalar.ColSet)
}

func (m *Memo) newGroup(node *logical.Expr, kids []GroupID) *Group {
	g := &Group{ID: GroupID(len(m.groups) + 1)}
	g.Cols = m.colSetOf(node, kids)
	m.groups = append(m.groups, g)
	return g
}

// addExpr places (node, kids) in group g, returning the expression and
// whether it was newly added. If the identical expression already exists in a
// DIFFERENT group, nothing is added (the memo does not merge groups; see
// DESIGN.md) and added=false.
func (m *Memo) addExpr(node *logical.Expr, kids []GroupID, g *Group, createdBy int) (*MExpr, bool) {
	key := exprKey(node, kids)
	if existing, ok := m.intern[key]; ok {
		return existing, false
	}
	e := &MExpr{Node: payloadOnly(node), Kids: kids, Group: g.ID, Applied: make(map[int]bool), CreatedBy: createdBy}
	g.Exprs = append(g.Exprs, e)
	m.intern[key] = e
	m.nexprs++
	return e, true
}

// Insert interns a complete logical tree, creating groups bottom-up, and
// returns the group holding its root. Structurally identical subtrees share
// groups.
func (m *Memo) Insert(tree *logical.Expr) GroupID {
	kids := make([]GroupID, len(tree.Children))
	for i, c := range tree.Children {
		kids[i] = m.Insert(c)
	}
	key := exprKey(tree, kids)
	if existing, ok := m.intern[key]; ok {
		return existing.Group
	}
	g := m.newGroup(tree, kids)
	m.addExpr(tree, kids, g, 0)
	return g.ID
}

// SetRoot records the root group of the query.
func (m *Memo) SetRoot(g GroupID) { m.Root = g }

// BoundExpr is the currency between the memo and transformation rules: a
// pattern match binds memo expressions into a BoundExpr tree whose leaves are
// group references; a rule's substitute is likewise a BoundExpr tree that the
// memo re-interns.
type BoundExpr struct {
	// Node is nil for a pure group-reference leaf.
	Node *logical.Expr
	Kids []*BoundExpr
	// Group: for a leaf, the referenced group; for a bound (matched)
	// expression, the group the expression lives in. Zero for rule-built
	// substitute nodes that do not exist in the memo yet.
	Group GroupID
	// Src is the memo expression a concrete pattern node bound to; nil for
	// leaves and substitutes. It carries provenance for rule-interaction
	// tracking.
	Src *MExpr
}

// GroupRef returns a leaf BoundExpr referencing group g.
func GroupRef(g GroupID) *BoundExpr { return &BoundExpr{Group: g} }

// NewBound returns a substitute node over kids.
func NewBound(node *logical.Expr, kids ...*BoundExpr) *BoundExpr {
	return &BoundExpr{Node: payloadOnly(node), Kids: kids}
}

// IsLeaf reports whether b is a pure group reference.
func (b *BoundExpr) IsLeaf() bool { return b.Node == nil }

// Cols returns the output column set of the bound expression.
func (m *Memo) Cols(b *BoundExpr) scalar.ColSet {
	if b.IsLeaf() {
		return m.Group(b.Group).Cols
	}
	switch b.Node.Op {
	case logical.OpGet, logical.OpProject, logical.OpGroupBy, logical.OpUnionAll:
		return m.colSetOf(b.Node, nil)
	case logical.OpJoin, logical.OpLeftJoin:
		return m.Cols(b.Kids[0]).Union(m.Cols(b.Kids[1]))
	default:
		return m.Cols(b.Kids[0])
	}
}

// ensureGroup interns a substitute BoundExpr subtree and returns its group.
func (m *Memo) ensureGroup(b *BoundExpr, createdBy int) GroupID {
	if b.IsLeaf() {
		return b.Group
	}
	kids := make([]GroupID, len(b.Kids))
	for i, k := range b.Kids {
		kids[i] = m.ensureGroup(k, createdBy)
	}
	key := exprKey(b.Node, kids)
	if existing, ok := m.intern[key]; ok {
		return existing.Group
	}
	g := m.newGroup(b.Node, kids)
	m.addExpr(b.Node, kids, g, createdBy)
	return g.ID
}

// InsertSubstitute adds the root of a rule's substitute tree to the target
// group (the group of the matched expression). It returns true if a new
// expression was added anywhere.
func (m *Memo) InsertSubstitute(b *BoundExpr, target GroupID) bool {
	return m.InsertSubstituteFrom(b, target, 0)
}

// InsertSubstituteFrom is InsertSubstitute recording the creating rule's ID
// on every newly added expression.
func (m *Memo) InsertSubstituteFrom(b *BoundExpr, target GroupID, createdBy int) bool {
	if b.IsLeaf() {
		// A substitute that is just "the child group" (e.g. eliminating a
		// no-op operator) cannot be expressed without group merging; skip.
		return false
	}
	before := m.NumExprs()
	kids := make([]GroupID, len(b.Kids))
	for i, k := range b.Kids {
		kids[i] = m.ensureGroup(k, createdBy)
	}
	m.addExpr(b.Node, kids, m.Group(target), createdBy)
	return m.NumExprs() > before
}

// ExtractFirst rebuilds a logical tree from the first (original) expression
// of each group, for debugging and for tests.
func (m *Memo) ExtractFirst(g GroupID) *logical.Expr {
	e := m.Group(g).Exprs[0]
	node := e.Node.Clone()
	node.Children = make([]*logical.Expr, len(e.Kids))
	for i, k := range e.Kids {
		node.Children[i] = m.ExtractFirst(k)
	}
	return node
}

// String renders the memo for debugging.
func (m *Memo) String() string {
	var sb strings.Builder
	for _, g := range m.groups {
		fmt.Fprintf(&sb, "G%d:", g.ID)
		for _, e := range g.Exprs {
			fmt.Fprintf(&sb, " [%s", e.Node.Op)
			for _, k := range e.Kids {
				fmt.Fprintf(&sb, " G%d", k)
			}
			sb.WriteString("]")
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
