// Package memo implements the optimizer's memo: a forest of groups of
// logically equivalent expressions, as in Volcano/Cascades [12][13]. The
// memo provides interning (structural deduplication) of expressions, which
// is what keeps exploration to a fixpoint finite.
package memo

import (
	"fmt"
	"strings"

	"qtrtest/internal/fnv64"
	"qtrtest/internal/logical"
	"qtrtest/internal/scalar"
)

// GroupID identifies a group of equivalent expressions. IDs start at 1.
type GroupID int

// MExpr is a logical expression inside the memo: an operator payload plus
// child group references.
type MExpr struct {
	// Node carries the operator and its arguments. Children must be ignored:
	// for expressions interned from an original query tree it still points at
	// that tree's nodes (the memo no longer pays a defensive payload clone
	// per insert), and logical trees are immutable by convention.
	Node *logical.Expr
	// Kids are the child groups, in operator order.
	Kids []GroupID
	// Group is the group this expression belongs to.
	Group GroupID
	// Ord is the expression's index within its group: (Group, Ord) is the
	// deterministic scan position the dirty-queue explorer orders its
	// worklist by.
	Ord int
	// applied records rules already fired on this expression, so each
	// (rule, expression) pair fires at most once. Rule IDs 1..64 live in the
	// bitmask (exploration rule IDs are small); anything larger overflows
	// into the slice. The common case never allocates.
	applied    uint64
	appliedBig []int32
	// internNext chains expressions whose fingerprints share an intern
	// bucket (see Memo.intern).
	internNext *MExpr
	// CreatedBy is the ID of the rule whose substitution created this
	// expression, or 0 for expressions of the original query tree. It
	// powers rule-interaction tracking (§7): rule r2 exercised on an
	// expression created by r1.
	CreatedBy int
}

// Op returns the operator of the expression.
func (e *MExpr) Op() logical.Op { return e.Node.Op }

// WasApplied reports whether the rule already fired on this expression.
func (e *MExpr) WasApplied(ruleID int) bool {
	if ruleID >= 1 && ruleID <= 64 {
		return e.applied&(1<<uint(ruleID-1)) != 0
	}
	for _, id := range e.appliedBig {
		if id == int32(ruleID) {
			return true
		}
	}
	return false
}

// MarkApplied records that the rule fired on this expression.
func (e *MExpr) MarkApplied(ruleID int) {
	if ruleID >= 1 && ruleID <= 64 {
		e.applied |= 1 << uint(ruleID-1)
		return
	}
	e.appliedBig = append(e.appliedBig, int32(ruleID))
}

// Group is a set of logically equivalent expressions with shared logical
// properties.
type Group struct {
	ID    GroupID
	Exprs []*MExpr
	// Cols is the set of columns every expression in the group produces.
	Cols scalar.ColSet
	// leafRef caches the group's leaf BoundExpr for the binder (see LeafRef).
	leafRef *BoundExpr
}

// Memo holds groups and the interning table.
type Memo struct {
	MD     *logical.Metadata
	groups []*Group
	// intern maps a structural fingerprint of (payload, kids) to the
	// expressions in that hash bucket, chained through MExpr.internNext so a
	// bucket costs no slice allocation. Correctness never depends on hash
	// quality: lookups always confirm with a full PayloadEqual + kids check,
	// so a collision merely shares a bucket, never conflates expressions.
	intern map[uint64]*MExpr
	nexprs int
	// Root is the group representing the whole query.
	Root GroupID
	// onAdd, when set, observes every newly interned expression; the
	// dirty-queue explorer uses it to invalidate parent expressions.
	onAdd func(e *MExpr)
	// fingerprint computes the interning hash; tests override it to force
	// bucket collisions.
	fingerprint func(node *logical.Expr, kids []GroupID) uint64
}

// New returns an empty memo over the given metadata.
func New(md *logical.Metadata) *Memo {
	return &Memo{
		MD:          md,
		groups:      make([]*Group, 0, 32),
		intern:      make(map[uint64]*MExpr, 64),
		fingerprint: exprFingerprint,
	}
}

// SetOnAdd registers fn to be called for every newly interned expression
// (nil unregisters). The optimizer's explorer uses this to maintain its
// dirty worklist.
func (m *Memo) SetOnAdd(fn func(e *MExpr)) { m.onAdd = fn }

// NumGroups returns the number of groups.
func (m *Memo) NumGroups() int { return len(m.groups) }

// NumExprs returns the total number of memo expressions.
func (m *Memo) NumExprs() int { return m.nexprs }

// Group returns the group with the given id.
func (m *Memo) Group(id GroupID) *Group {
	return m.groups[id-1]
}

// Groups returns all groups in creation order.
func (m *Memo) Groups() []*Group { return m.groups }

// exprFingerprint hashes an expression's payload and child groups into the
// uint64 interning key.
func exprFingerprint(node *logical.Expr, kids []GroupID) uint64 {
	h := fnv64.New()
	node.PayloadFingerprint(&h)
	for _, k := range kids {
		h.Int(int64(k))
	}
	return h.Sum()
}

// lookup returns the interned expression structurally equal to (node, kids),
// or nil. fp must be m.fingerprint(node, kids).
func (m *Memo) lookup(fp uint64, node *logical.Expr, kids []GroupID) *MExpr {
	for e := m.intern[fp]; e != nil; e = e.internNext {
		if kidsEqual(e.Kids, kids) && e.Node.PayloadEqual(node) {
			return e
		}
	}
	return nil
}

func kidsEqual(a, b []GroupID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// payloadOnly strips children from a logical node, keeping arguments. The
// copy is shallow: payload slices are shared with the original, which is safe
// because logical nodes are immutable by convention (nothing in the codebase
// writes to a payload after construction) and a full Clone per substitute
// dominated the old interning profile.
func payloadOnly(node *logical.Expr) *logical.Expr {
	cp := *node
	cp.Children = nil
	return &cp
}

// colSetOf computes the group column set for a node given its kid groups.
func (m *Memo) colSetOf(node *logical.Expr, kids []GroupID) scalar.ColSet {
	kidSet := func(i int) scalar.ColSet { return m.Group(kids[i]).Cols }
	switch node.Op {
	case logical.OpGet:
		return scalar.NewColSet(node.Cols...)
	case logical.OpSelect, logical.OpLimit, logical.OpSort:
		return kidSet(0)
	case logical.OpProject:
		s := make(scalar.ColSet, len(node.Projs))
		for _, p := range node.Projs {
			s.Add(p.Out)
		}
		return s
	case logical.OpJoin, logical.OpLeftJoin:
		return kidSet(0).Union(kidSet(1))
	case logical.OpSemiJoin, logical.OpAntiJoin:
		return kidSet(0)
	case logical.OpGroupBy:
		s := make(scalar.ColSet)
		for _, c := range node.GroupCols {
			s.Add(c)
		}
		for _, a := range node.Aggs {
			s.Add(a.Out)
		}
		return s
	case logical.OpUnionAll:
		return scalar.NewColSet(node.OutCols...)
	}
	return make(scalar.ColSet)
}

func (m *Memo) newGroup(node *logical.Expr, kids []GroupID) *Group {
	g := &Group{ID: GroupID(len(m.groups) + 1)}
	g.Cols = m.colSetOf(node, kids)
	m.groups = append(m.groups, g)
	return g
}

// addExpr places (node, kids) in group g, returning the expression and
// whether it was newly added. If the identical expression already exists in a
// DIFFERENT group, nothing is added (the memo does not merge groups; see
// DESIGN.md) and added=false.
func (m *Memo) addExpr(node *logical.Expr, kids []GroupID, g *Group, createdBy int) (*MExpr, bool) {
	fp := m.fingerprint(node, kids)
	if existing := m.lookup(fp, node, kids); existing != nil {
		return existing, false
	}
	return m.addInterned(fp, node, kids, g, createdBy), true
}

// addInterned appends a known-novel expression to its group and the intern
// table. The caller must have established that no structurally equal
// expression exists (via lookup with the same fp).
func (m *Memo) addInterned(fp uint64, node *logical.Expr, kids []GroupID, g *Group, createdBy int) *MExpr {
	e := &MExpr{Node: node, Kids: kids, Group: g.ID, Ord: len(g.Exprs), CreatedBy: createdBy}
	g.Exprs = append(g.Exprs, e)
	e.internNext = m.intern[fp]
	m.intern[fp] = e
	m.nexprs++
	if m.onAdd != nil {
		m.onAdd(e)
	}
	return e
}

// Insert interns a complete logical tree, creating groups bottom-up, and
// returns the group holding its root. Structurally identical subtrees share
// groups.
func (m *Memo) Insert(tree *logical.Expr) GroupID {
	kids := make([]GroupID, len(tree.Children))
	for i, c := range tree.Children {
		kids[i] = m.Insert(c)
	}
	fp := m.fingerprint(tree, kids)
	if existing := m.lookup(fp, tree, kids); existing != nil {
		return existing.Group
	}
	g := m.newGroup(tree, kids)
	m.addInterned(fp, tree, kids, g, 0)
	return g.ID
}

// SetRoot records the root group of the query.
func (m *Memo) SetRoot(g GroupID) { m.Root = g }

// BoundExpr is the currency between the memo and transformation rules: a
// pattern match binds memo expressions into a BoundExpr tree whose leaves are
// group references; a rule's substitute is likewise a BoundExpr tree that the
// memo re-interns.
type BoundExpr struct {
	// Node is nil for a pure group-reference leaf.
	Node *logical.Expr
	Kids []*BoundExpr
	// Group: for a leaf, the referenced group; for a bound (matched)
	// expression, the group the expression lives in. Zero for rule-built
	// substitute nodes that do not exist in the memo yet.
	Group GroupID
	// Src is the memo expression a concrete pattern node bound to; nil for
	// leaves and substitutes. It carries provenance for rule-interaction
	// tracking.
	Src *MExpr
}

// GroupRef returns a leaf BoundExpr referencing group g.
func GroupRef(g GroupID) *BoundExpr { return &BoundExpr{Group: g} }

// LeafRef returns a cached leaf BoundExpr referencing group g. The binder
// uses it on its hot path instead of GroupRef; callers share the returned
// node and must treat it as immutable (all BoundExpr trees are read-only
// after construction).
func (m *Memo) LeafRef(g GroupID) *BoundExpr {
	grp := m.Group(g)
	if grp.leafRef == nil {
		grp.leafRef = &BoundExpr{Group: g}
	}
	return grp.leafRef
}

// NewBound returns a substitute node over kids. A node that carries children
// (a matched original-tree node) has its payload copied with children
// stripped; an already-childless node — the common case, rules building
// fresh payload nodes — is shared as-is, relying on the same immutability
// convention the rest of the memo rests on.
//
// kids are copied into storage co-allocated with the BoundExpr (operator
// arity never exceeds 2), which also lets callers' variadic slices stay on
// their stacks: the parameter never escapes.
func NewBound(node *logical.Expr, kids ...*BoundExpr) *BoundExpr {
	if len(kids) > 2 {
		panic("memo: NewBound with more than 2 kids")
	}
	if node.Children != nil {
		node = payloadOnly(node)
	}
	buf := &struct {
		b    BoundExpr
		kids [2]*BoundExpr
	}{b: BoundExpr{Node: node}}
	copy(buf.kids[:], kids)
	buf.b.Kids = buf.kids[:len(kids):len(kids)]
	return &buf.b
}

// IsLeaf reports whether b is a pure group reference.
func (b *BoundExpr) IsLeaf() bool { return b.Node == nil }

// Cols returns the output column set of the bound expression.
func (m *Memo) Cols(b *BoundExpr) scalar.ColSet {
	if b.IsLeaf() {
		return m.Group(b.Group).Cols
	}
	switch b.Node.Op {
	case logical.OpGet, logical.OpProject, logical.OpGroupBy, logical.OpUnionAll:
		return m.colSetOf(b.Node, nil)
	case logical.OpJoin, logical.OpLeftJoin:
		return m.Cols(b.Kids[0]).Union(m.Cols(b.Kids[1]))
	default:
		return m.Cols(b.Kids[0])
	}
}

// ensureGroup interns a substitute BoundExpr subtree and returns its group.
func (m *Memo) ensureGroup(b *BoundExpr, createdBy int) GroupID {
	if b.IsLeaf() {
		return b.Group
	}
	kids := make([]GroupID, len(b.Kids))
	for i, k := range b.Kids {
		kids[i] = m.ensureGroup(k, createdBy)
	}
	fp := m.fingerprint(b.Node, kids)
	if existing := m.lookup(fp, b.Node, kids); existing != nil {
		return existing.Group
	}
	g := m.newGroup(b.Node, kids)
	m.addInterned(fp, b.Node, kids, g, createdBy)
	return g.ID
}

// InsertSubstitute adds the root of a rule's substitute tree to the target
// group (the group of the matched expression). It returns true if a new
// expression was added anywhere.
func (m *Memo) InsertSubstitute(b *BoundExpr, target GroupID) bool {
	return m.InsertSubstituteFrom(b, target, 0)
}

// InsertSubstituteFrom is InsertSubstitute recording the creating rule's ID
// on every newly added expression.
func (m *Memo) InsertSubstituteFrom(b *BoundExpr, target GroupID, createdBy int) bool {
	if b.IsLeaf() {
		// A substitute that is just "the child group" (e.g. eliminating a
		// no-op operator) cannot be expressed without group merging; skip.
		return false
	}
	before := m.NumExprs()
	kids := make([]GroupID, len(b.Kids))
	for i, k := range b.Kids {
		kids[i] = m.ensureGroup(k, createdBy)
	}
	m.addExpr(b.Node, kids, m.Group(target), createdBy)
	return m.NumExprs() > before
}

// ExtractFirst rebuilds a logical tree from the first (original) expression
// of each group, for debugging and for tests.
func (m *Memo) ExtractFirst(g GroupID) *logical.Expr {
	e := m.Group(g).Exprs[0]
	node := payloadOnly(e.Node)
	node.Children = make([]*logical.Expr, len(e.Kids))
	for i, k := range e.Kids {
		node.Children[i] = m.ExtractFirst(k)
	}
	return node
}

// String renders the memo for debugging.
func (m *Memo) String() string {
	var sb strings.Builder
	for _, g := range m.groups {
		fmt.Fprintf(&sb, "G%d:", g.ID)
		for _, e := range g.Exprs {
			fmt.Fprintf(&sb, " [%s", e.Node.Op)
			for _, k := range e.Kids {
				fmt.Fprintf(&sb, " G%d", k)
			}
			sb.WriteString("]")
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
