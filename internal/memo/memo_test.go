package memo

import (
	"testing"

	"qtrtest/internal/catalog"
	"qtrtest/internal/logical"
	"qtrtest/internal/scalar"
)

func newMD(t *testing.T) *logical.Metadata {
	t.Helper()
	return logical.NewMetadata(catalog.LoadTPCH(catalog.DefaultTPCHConfig()))
}

func scan(t *testing.T, md *logical.Metadata, name string) *logical.Expr {
	t.Helper()
	e, err := md.AddTable(name)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestInsertInternsIdenticalSubtrees(t *testing.T) {
	md := newMD(t)
	r := scan(t, md, "region")
	// Two references to the same Get expression share one group.
	on := scalar.TrueExpr()
	join := &logical.Expr{Op: logical.OpJoin, Children: []*logical.Expr{r, r.Clone()}, On: on}
	m := New(md)
	root := m.Insert(join)
	if m.NumGroups() != 2 {
		t.Errorf("expected 2 groups (get, join), got %d", m.NumGroups())
	}
	e := m.Group(root).Exprs[0]
	if e.Kids[0] != e.Kids[1] {
		t.Error("identical subtrees should intern to the same group")
	}
}

func TestInsertDistinctTablesDistinctGroups(t *testing.T) {
	md := newMD(t)
	r := scan(t, md, "region")
	n := scan(t, md, "nation")
	join := &logical.Expr{Op: logical.OpJoin, Children: []*logical.Expr{r, n}, On: scalar.TrueExpr()}
	m := New(md)
	root := m.Insert(join)
	if m.NumGroups() != 3 {
		t.Errorf("expected 3 groups, got %d", m.NumGroups())
	}
	g := m.Group(root)
	if len(g.Cols) != 2+3 {
		t.Errorf("join group col set size = %d", len(g.Cols))
	}
}

func TestInsertSubstituteDedup(t *testing.T) {
	md := newMD(t)
	r := scan(t, md, "region")
	n := scan(t, md, "nation")
	join := &logical.Expr{Op: logical.OpJoin, Children: []*logical.Expr{n, r}, On: scalar.TrueExpr()}
	m := New(md)
	root := m.Insert(join)
	e := m.Group(root).Exprs[0]

	// Commute: Join(r, n) is new.
	sub := NewBound(&logical.Expr{Op: logical.OpJoin, On: scalar.TrueExpr()},
		GroupRef(e.Kids[1]), GroupRef(e.Kids[0]))
	if !m.InsertSubstitute(sub, root) {
		t.Fatal("first substitute should add an expression")
	}
	if len(m.Group(root).Exprs) != 2 {
		t.Fatalf("group should have 2 exprs, got %d", len(m.Group(root).Exprs))
	}
	// Re-inserting the same substitute must be a no-op.
	if m.InsertSubstitute(sub, root) {
		t.Error("duplicate substitute should not add")
	}
	// Re-inserting the original expression must be a no-op too.
	orig := NewBound(&logical.Expr{Op: logical.OpJoin, On: scalar.TrueExpr()},
		GroupRef(e.Kids[0]), GroupRef(e.Kids[1]))
	if m.InsertSubstitute(orig, root) {
		t.Error("original substitute should dedup")
	}
}

func TestInsertSubstituteCreatesInnerGroups(t *testing.T) {
	md := newMD(t)
	n := scan(t, md, "nation")
	m := New(md)
	root := m.Insert(n)
	before := m.NumGroups()

	filter := &scalar.Cmp{Op: scalar.CmpGT, L: &scalar.ColRef{ID: n.Cols[0]}, R: &scalar.Const{}}
	// Select(Select(get)) as a two-level substitute.
	inner := NewBound(&logical.Expr{Op: logical.OpSelect, Filter: filter}, GroupRef(root))
	outer := NewBound(&logical.Expr{Op: logical.OpSelect, Filter: filter}, inner)
	// Insert into a new group context: we abuse root here — in real use the
	// target group is logically equivalent; for this structural test we
	// just verify group creation mechanics.
	m.InsertSubstitute(outer, root)
	if m.NumGroups() != before+1 {
		t.Errorf("expected exactly one new group for the inner select, got %d new", m.NumGroups()-before)
	}
}

func TestLeafSubstituteRejected(t *testing.T) {
	md := newMD(t)
	n := scan(t, md, "nation")
	m := New(md)
	root := m.Insert(n)
	if m.InsertSubstitute(GroupRef(root), root) {
		t.Error("a pure group reference cannot be inserted as a substitute")
	}
}

func TestExtractFirstRoundTrips(t *testing.T) {
	md := newMD(t)
	r := scan(t, md, "region")
	n := scan(t, md, "nation")
	join := &logical.Expr{Op: logical.OpJoin, Children: []*logical.Expr{n, r}, On: scalar.TrueExpr()}
	sel := &logical.Expr{Op: logical.OpSelect, Children: []*logical.Expr{join},
		Filter: &scalar.Cmp{Op: scalar.CmpGT, L: &scalar.ColRef{ID: n.Cols[0]}, R: &scalar.Const{}}}
	m := New(md)
	root := m.Insert(sel)
	m.SetRoot(root)
	got := m.ExtractFirst(root)
	if got.Hash() != sel.Hash() {
		t.Errorf("ExtractFirst differs:\n%s\nvs\n%s", got, sel)
	}
}

func TestGroupColsPerOp(t *testing.T) {
	md := newMD(t)
	n := scan(t, md, "nation")
	agg := md.AddColumn(logical.ColumnMeta{Name: "agg"})
	gb := &logical.Expr{Op: logical.OpGroupBy, Children: []*logical.Expr{n},
		GroupCols: []scalar.ColumnID{n.Cols[2]},
		Aggs:      []scalar.Agg{{Op: scalar.AggCountStar, Out: agg}}}
	m := New(md)
	root := m.Insert(gb)
	cols := m.Group(root).Cols
	if len(cols) != 2 || !cols.Contains(n.Cols[2]) || !cols.Contains(agg) {
		t.Errorf("groupby group cols wrong: %v", cols.Sorted())
	}
}

// TestForcedCollisionsStayCorrect pins that interning correctness never
// depends on fingerprint quality: with the fingerprint function degraded to a
// constant, every expression lands in one bucket and only the structural
// equality fallback tells them apart. All interning behavior — dedup of
// identical subtrees, distinct groups for distinct payloads, substitute
// dedup — must be unchanged.
func TestForcedCollisionsStayCorrect(t *testing.T) {
	md := newMD(t)
	r := scan(t, md, "region")
	n := scan(t, md, "nation")
	m := New(md)
	m.fingerprint = func(*logical.Expr, []GroupID) uint64 { return 0 }

	join := &logical.Expr{Op: logical.OpJoin, Children: []*logical.Expr{n, r}, On: scalar.TrueExpr()}
	root := m.Insert(join)
	if m.NumGroups() != 3 || m.NumExprs() != 3 {
		t.Fatalf("got %d groups / %d exprs, want 3 / 3", m.NumGroups(), m.NumExprs())
	}
	// Re-inserting the identical tree finds every level in the single bucket.
	if g := m.Insert(join.Clone()); g != root {
		t.Errorf("re-insert landed in group %d, want %d", g, root)
	}
	if m.NumExprs() != 3 {
		t.Errorf("re-insert added expressions: %d", m.NumExprs())
	}
	// A commuted join is structurally different and must not be conflated
	// with the original despite the identical fingerprint.
	e := m.Group(root).Exprs[0]
	sub := NewBound(&logical.Expr{Op: logical.OpJoin, On: scalar.TrueExpr()},
		GroupRef(e.Kids[1]), GroupRef(e.Kids[0]))
	if !m.InsertSubstitute(sub, root) {
		t.Fatal("commuted substitute should be recognized as new")
	}
	if m.InsertSubstitute(sub, root) {
		t.Error("repeated substitute should dedup inside the collision bucket")
	}
	if got := len(m.Group(root).Exprs); got != 2 {
		t.Errorf("join group has %d exprs, want 2", got)
	}
}

// TestOrdTracksGroupPosition pins the Ord invariant the dirty-queue explorer
// orders its worklist by: Ord is the expression's index within its group.
func TestOrdTracksGroupPosition(t *testing.T) {
	md := newMD(t)
	r := scan(t, md, "region")
	n := scan(t, md, "nation")
	join := &logical.Expr{Op: logical.OpJoin, Children: []*logical.Expr{n, r}, On: scalar.TrueExpr()}
	m := New(md)
	root := m.Insert(join)
	e := m.Group(root).Exprs[0]
	sub := NewBound(&logical.Expr{Op: logical.OpJoin, On: scalar.TrueExpr()},
		GroupRef(e.Kids[1]), GroupRef(e.Kids[0]))
	m.InsertSubstitute(sub, root)
	for _, g := range m.Groups() {
		for i, e := range g.Exprs {
			if e.Ord != i {
				t.Errorf("group %d expr %d has Ord %d", g.ID, i, e.Ord)
			}
			if e.Group != g.ID {
				t.Errorf("group %d expr %d has Group %d", g.ID, i, e.Group)
			}
		}
	}
}

// TestOnAddHookObservesEveryExpr pins the contract the explorer depends on:
// the hook fires exactly once per interned expression, never for dedup hits.
func TestOnAddHookObservesEveryExpr(t *testing.T) {
	md := newMD(t)
	r := scan(t, md, "region")
	n := scan(t, md, "nation")
	m := New(md)
	var seen []*MExpr
	m.SetOnAdd(func(e *MExpr) { seen = append(seen, e) })

	join := &logical.Expr{Op: logical.OpJoin, Children: []*logical.Expr{n, r}, On: scalar.TrueExpr()}
	root := m.Insert(join)
	if len(seen) != 3 {
		t.Fatalf("hook fired %d times for initial insert, want 3", len(seen))
	}
	m.Insert(join.Clone()) // full dedup: no new expressions
	if len(seen) != 3 {
		t.Errorf("hook fired on dedup hit")
	}
	e := m.Group(root).Exprs[0]
	sub := NewBound(&logical.Expr{Op: logical.OpJoin, On: scalar.TrueExpr()},
		GroupRef(e.Kids[1]), GroupRef(e.Kids[0]))
	m.InsertSubstitute(sub, root)
	if len(seen) != 4 {
		t.Fatalf("hook fired %d times after substitute, want 4", len(seen))
	}
	if last := seen[len(seen)-1]; last.Group != root || last.Ord != 1 {
		t.Errorf("hook saw (group %d, ord %d), want (%d, 1)", last.Group, last.Ord, root)
	}
}

func TestBoundExprCols(t *testing.T) {
	md := newMD(t)
	r := scan(t, md, "region")
	n := scan(t, md, "nation")
	m := New(md)
	gr := m.Insert(r)
	gn := m.Insert(n)
	join := NewBound(&logical.Expr{Op: logical.OpJoin, On: scalar.TrueExpr()}, GroupRef(gn), GroupRef(gr))
	cols := m.Cols(join)
	if len(cols) != 5 {
		t.Errorf("bound join cols = %d, want 5", len(cols))
	}
	sel := NewBound(&logical.Expr{Op: logical.OpSelect, Filter: scalar.TrueExpr()}, join)
	if len(m.Cols(sel)) != 5 {
		t.Error("bound select cols should pass through")
	}
}
