package physical

import (
	"fmt"
	"strings"
)

// DOT renders the plan as a Graphviz digraph, one node per operator labeled
// with its estimates — handy when debugging why a rule's plan won or lost.
func (e *Expr) DOT() string {
	var sb strings.Builder
	sb.WriteString("digraph plan {\n  node [shape=box, fontname=\"monospace\"];\n")
	n := 0
	var walk func(x *Expr) int
	walk = func(x *Expr) int {
		id := n
		n++
		label := x.Op.String()
		switch x.Op {
		case OpScan:
			label += "\\n" + x.Table
		case OpHashJoin, OpNLJoin, OpMergeJoin:
			label += "\\n" + x.JoinType.String()
		}
		fmt.Fprintf(&sb, "  n%d [label=\"%s\\nrows=%.0f cost=%.1f\"];\n", id, label, x.Rows, x.Cost)
		for _, c := range x.Children {
			cid := walk(c)
			fmt.Fprintf(&sb, "  n%d -> n%d;\n", id, cid)
		}
		return id
	}
	walk(e)
	sb.WriteString("}\n")
	return sb.String()
}
