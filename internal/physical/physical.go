// Package physical defines executable operator trees: the output of the
// optimizer's implementation phase and the input to the execution engine.
package physical

import (
	"fmt"
	"strings"
	"sync/atomic"
	"unsafe"

	"qtrtest/internal/logical"
	"qtrtest/internal/scalar"
)

// Op enumerates physical operators.
type Op int

// Physical operators.
const (
	OpScan Op = iota
	OpFilter
	OpProject
	OpHashJoin
	OpNLJoin
	OpMergeJoin
	OpHashAgg
	OpSortAgg
	OpSort
	OpLimit
	OpConcat
)

var opNames = [...]string{
	OpScan:      "Scan",
	OpFilter:    "Filter",
	OpProject:   "Project",
	OpHashJoin:  "HashJoin",
	OpNLJoin:    "NLJoin",
	OpMergeJoin: "MergeJoin",
	OpHashAgg:   "HashAgg",
	OpSortAgg:   "SortAgg",
	OpSort:      "Sort",
	OpLimit:     "Limit",
	OpConcat:    "Concat",
}

// String returns the operator name.
func (o Op) String() string { return opNames[o] }

// JoinType distinguishes the join variants a physical join can execute.
type JoinType int

// Join types.
const (
	JoinInner JoinType = iota
	JoinLeft
	JoinSemi
	JoinAnti
)

var joinNames = [...]string{"Inner", "Left", "Semi", "Anti"}

// String returns the join type name.
func (t JoinType) String() string { return joinNames[t] }

// Expr is a physical operator tree node annotated with the optimizer's
// cardinality and cost estimates.
type Expr struct {
	Op       Op
	JoinType JoinType
	Children []*Expr

	// OpScan
	Table string
	Cols  []scalar.ColumnID

	// OpFilter
	Filter scalar.Expr

	// joins: On is the full predicate; EquiLeft/EquiRight are the key
	// columns hash and merge joins probe on (always a subset of On).
	On        scalar.Expr
	EquiLeft  []scalar.ColumnID
	EquiRight []scalar.ColumnID

	// OpProject
	Projs []logical.ProjItem

	// aggregation
	GroupCols []scalar.ColumnID
	Aggs      []scalar.Agg

	// OpConcat
	OutCols   []scalar.ColumnID
	InputCols [][]scalar.ColumnID

	// OpLimit
	N int64

	// OpSort
	Keys []logical.SortKey

	// Annotations filled by the optimizer.
	Rows float64 // estimated output cardinality
	Cost float64 // cumulative estimated cost

	// hash memoizes Hash() as an atomically published *string. Plans are
	// immutable once the optimizer hands them out (mutation-injection
	// rewrites physical nodes only inside implementation rules, before
	// anything can observe them), so the fingerprint never needs
	// invalidation; a racing double computation stores the same string
	// either way. A raw unsafe.Pointer rather than atomic.Pointer[string]
	// because the latter's noCopy would forbid the implementor's by-value
	// candidate construction (rules.one copies a fresh Expr into its
	// co-allocation buffer) — those copies happen strictly before the node
	// is published, when the field is still nil.
	hash unsafe.Pointer
}

// cachedHash returns the memoized fingerprint, or "" before first compute.
func (e *Expr) cachedHash() string {
	if p := (*string)(atomic.LoadPointer(&e.hash)); p != nil {
		return *p
	}
	return ""
}

func (e *Expr) storeHash(h string) { atomic.StorePointer(&e.hash, unsafe.Pointer(&h)) }

// OutputCols returns the ordered column layout the operator produces; the
// execution engine maps ColumnIDs to row slots with it.
func (e *Expr) OutputCols() []scalar.ColumnID {
	switch e.Op {
	case OpScan:
		return e.Cols
	case OpFilter, OpSort, OpLimit:
		return e.Children[0].OutputCols()
	case OpProject:
		out := make([]scalar.ColumnID, len(e.Projs))
		for i, p := range e.Projs {
			out[i] = p.Out
		}
		return out
	case OpHashJoin, OpNLJoin, OpMergeJoin:
		switch e.JoinType {
		case JoinSemi, JoinAnti:
			return e.Children[0].OutputCols()
		default:
			l := e.Children[0].OutputCols()
			r := e.Children[1].OutputCols()
			out := make([]scalar.ColumnID, 0, len(l)+len(r))
			out = append(out, l...)
			return append(out, r...)
		}
	case OpHashAgg, OpSortAgg:
		out := make([]scalar.ColumnID, 0, len(e.GroupCols)+len(e.Aggs))
		out = append(out, e.GroupCols...)
		for _, a := range e.Aggs {
			out = append(out, a.Out)
		}
		return out
	case OpConcat:
		return e.OutCols
	}
	return nil
}

// Hash fingerprints the plan's structure and arguments (not its cost
// annotations). Identical plans produce identical hashes; the correctness
// runner uses this to skip executing Plan(q,¬R) when it equals Plan(q)
// (paper footnote 1).
//
// Hash is memoized per node: campaigns fingerprint the same plan at every
// comparison site (skip checks, result-cache keys, report dedup), and since
// subtrees memoize too, plans that share subplans share the work.
func (e *Expr) Hash() string {
	if h := e.cachedHash(); h != "" {
		return h
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d/%d|", e.Op, e.JoinType)
	switch e.Op {
	case OpScan:
		fmt.Fprintf(&sb, "%s%v", e.Table, e.Cols)
	case OpFilter:
		sb.WriteString(e.Filter.Hash())
	case OpHashJoin, OpNLJoin, OpMergeJoin:
		if e.On != nil {
			sb.WriteString(e.On.Hash())
		}
		fmt.Fprintf(&sb, "%v%v", e.EquiLeft, e.EquiRight)
	case OpProject:
		for _, p := range e.Projs {
			fmt.Fprintf(&sb, "%d=%s;", p.Out, p.E.Hash())
		}
	case OpHashAgg, OpSortAgg:
		fmt.Fprintf(&sb, "%v|", e.GroupCols)
		for _, a := range e.Aggs {
			sb.WriteString(a.Hash())
		}
	case OpConcat:
		fmt.Fprintf(&sb, "%v%v", e.OutCols, e.InputCols)
	case OpLimit:
		fmt.Fprintf(&sb, "%d", e.N)
	case OpSort:
		fmt.Fprintf(&sb, "%v", e.Keys)
	}
	sb.WriteString("(")
	for _, c := range e.Children {
		sb.WriteString(c.Hash())
	}
	sb.WriteString(")")
	h := sb.String()
	e.storeHash(h)
	return h
}

// String renders an indented plan with cost annotations, in the spirit of
// EXPLAIN output.
func (e *Expr) String() string {
	cname := func(c scalar.ColumnID) string { return fmt.Sprintf("c%d", c) }
	var sb strings.Builder
	var walk func(x *Expr, depth int)
	walk = func(x *Expr, depth int) {
		sb.WriteString(strings.Repeat("  ", depth))
		sb.WriteString(x.Op.String())
		// Operator payloads are part of the rendering: two plans that differ
		// only in a sort direction, a limit count or an aggregate function
		// must render differently — the correctness reports use this output
		// as plan-diff evidence.
		switch x.Op {
		case OpHashJoin, OpNLJoin, OpMergeJoin:
			fmt.Fprintf(&sb, "(%s", x.JoinType)
			for i := range x.EquiLeft {
				fmt.Fprintf(&sb, " c%d=c%d", x.EquiLeft[i], x.EquiRight[i])
			}
			sb.WriteString(")")
		case OpScan:
			fmt.Fprintf(&sb, "(%s)", x.Table)
		case OpFilter:
			if x.Filter != nil {
				fmt.Fprintf(&sb, "(%s)", x.Filter.SQL(cname))
			}
		case OpSort:
			parts := make([]string, len(x.Keys))
			for i, k := range x.Keys {
				parts[i] = fmt.Sprintf("c%d", k.Col)
				if k.Desc {
					parts[i] += " desc"
				}
			}
			fmt.Fprintf(&sb, "(%s)", strings.Join(parts, ", "))
		case OpLimit:
			fmt.Fprintf(&sb, "(%d)", x.N)
		case OpHashAgg, OpSortAgg:
			parts := make([]string, 0, len(x.GroupCols)+len(x.Aggs))
			for _, c := range x.GroupCols {
				parts = append(parts, fmt.Sprintf("c%d", c))
			}
			for _, a := range x.Aggs {
				parts = append(parts, a.SQL(cname))
			}
			fmt.Fprintf(&sb, "(%s)", strings.Join(parts, ", "))
		}
		fmt.Fprintf(&sb, "  rows=%.0f cost=%.1f\n", x.Rows, x.Cost)
		for _, c := range x.Children {
			walk(c, depth+1)
		}
	}
	walk(e, 0)
	return sb.String()
}

// CountOps returns the number of operators in the plan.
func (e *Expr) CountOps() int {
	n := 1
	for _, c := range e.Children {
		n += c.CountOps()
	}
	return n
}
