package physical

import (
	"strings"
	"testing"

	"qtrtest/internal/logical"
	"qtrtest/internal/scalar"
)

func scanNode(table string, cols ...scalar.ColumnID) *Expr {
	return &Expr{Op: OpScan, Table: table, Cols: cols}
}

func TestOutputColsJoins(t *testing.T) {
	l := scanNode("a", 1, 2)
	r := scanNode("b", 3)
	inner := &Expr{Op: OpHashJoin, JoinType: JoinInner, Children: []*Expr{l, r}}
	if got := inner.OutputCols(); len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Errorf("inner join outputs %v", got)
	}
	semi := &Expr{Op: OpHashJoin, JoinType: JoinSemi, Children: []*Expr{l, r}}
	if got := semi.OutputCols(); len(got) != 2 {
		t.Errorf("semi join outputs %v", got)
	}
	anti := &Expr{Op: OpNLJoin, JoinType: JoinAnti, Children: []*Expr{l, r}}
	if got := anti.OutputCols(); len(got) != 2 {
		t.Errorf("anti join outputs %v", got)
	}
}

func TestOutputColsAggAndProject(t *testing.T) {
	in := scanNode("a", 1, 2)
	agg := &Expr{Op: OpHashAgg, Children: []*Expr{in},
		GroupCols: []scalar.ColumnID{1},
		Aggs:      []scalar.Agg{{Op: scalar.AggCountStar, Out: 9}}}
	if got := agg.OutputCols(); len(got) != 2 || got[1] != 9 {
		t.Errorf("agg outputs %v", got)
	}
	proj := &Expr{Op: OpProject, Children: []*Expr{in},
		Projs: []logical.ProjItem{{Out: 7, E: &scalar.ColRef{ID: 1}}}}
	if got := proj.OutputCols(); len(got) != 1 || got[0] != 7 {
		t.Errorf("project outputs %v", got)
	}
	concat := &Expr{Op: OpConcat, Children: []*Expr{in, in}, OutCols: []scalar.ColumnID{5}}
	if got := concat.OutputCols(); len(got) != 1 || got[0] != 5 {
		t.Errorf("concat outputs %v", got)
	}
}

func TestHashDistinguishesPlans(t *testing.T) {
	l := scanNode("a", 1)
	r := scanNode("b", 2)
	on := &scalar.Cmp{Op: scalar.CmpEQ, L: &scalar.ColRef{ID: 1}, R: &scalar.ColRef{ID: 2}}
	hj := &Expr{Op: OpHashJoin, Children: []*Expr{l, r}, On: on,
		EquiLeft: []scalar.ColumnID{1}, EquiRight: []scalar.ColumnID{2}}
	nl := &Expr{Op: OpNLJoin, Children: []*Expr{l, r}, On: on}
	if hj.Hash() == nl.Hash() {
		t.Error("different operators must hash differently")
	}
	hj2 := &Expr{Op: OpHashJoin, Children: []*Expr{r, l}, On: on,
		EquiLeft: []scalar.ColumnID{2}, EquiRight: []scalar.ColumnID{1}}
	if hj.Hash() == hj2.Hash() {
		t.Error("commuted children must hash differently")
	}
	// Cost annotations must NOT affect the hash.
	withCost := &Expr{Op: OpHashJoin, Children: []*Expr{l, r}, On: on,
		EquiLeft: []scalar.ColumnID{1}, EquiRight: []scalar.ColumnID{2}, Cost: 123, Rows: 9}
	if hj.Hash() != withCost.Hash() {
		t.Error("cost annotations must not change the plan hash")
	}
}

func TestStringAndCount(t *testing.T) {
	l := scanNode("a", 1)
	f := &Expr{Op: OpFilter, Children: []*Expr{l}, Filter: scalar.TrueExpr(), Rows: 3, Cost: 4}
	s := f.String()
	if !strings.Contains(s, "Filter") || !strings.Contains(s, "Scan(a)") {
		t.Errorf("String output: %s", s)
	}
	if f.CountOps() != 2 {
		t.Errorf("CountOps = %d", f.CountOps())
	}
}

func TestDOTExport(t *testing.T) {
	l := scanNode("a", 1)
	r := scanNode("b", 2)
	join := &Expr{Op: OpHashJoin, JoinType: JoinLeft, Children: []*Expr{l, r}, Rows: 5, Cost: 42}
	dot := join.DOT()
	for _, frag := range []string{"digraph plan", "HashJoin\\nLeft", "Scan\\na", "n0 -> n1", "n0 -> n2"} {
		if !strings.Contains(dot, frag) {
			t.Errorf("DOT missing %q:\n%s", frag, dot)
		}
	}
}
