package prof

import (
	"os"
	"path/filepath"
	"testing"
)

func TestDisabledSessionIsNil(t *testing.T) {
	s, err := Start("", "")
	if err != nil {
		t.Fatalf("Start with no paths: %v", err)
	}
	if s != nil {
		t.Fatalf("Start with no paths returned a session: %+v", s)
	}
	// Stop must be safe on the nil session every caller defers.
	if err := s.Stop(); err != nil {
		t.Fatalf("Stop on nil session: %v", err)
	}
}

func TestProfilesWrittenAndClosed(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	s, err := Start(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	// Allocate a little so the heap profile has something to record.
	sink := make([][]byte, 64)
	for i := range sink {
		sink[i] = make([]byte, 1024)
	}
	_ = sink
	if err := s.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	for _, path := range []string{cpu, mem} {
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if fi.Size() == 0 {
			t.Errorf("profile %s is empty", path)
		}
	}
	// A second Stop must be a no-op, not a double close.
	if err := s.Stop(); err != nil {
		t.Fatalf("second Stop: %v", err)
	}
}

func TestMemOnlySession(t *testing.T) {
	mem := filepath.Join(t.TempDir(), "mem.pprof")
	s, err := Start("", mem)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Stop(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(mem); err != nil {
		t.Fatalf("heap profile not written: %v", err)
	}
}

func TestStartCreateErrorPropagates(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "missing", "cpu.pprof")
	if _, err := Start(bad, ""); err == nil {
		t.Fatal("Start with uncreatable cpu path succeeded")
	}
}

func TestStopHeapCreateErrorPropagates(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "missing", "mem.pprof")
	s, err := Start("", bad)
	if err != nil {
		// The mem path is only opened at Stop, so Start must not fail.
		t.Fatalf("Start: %v", err)
	}
	if err := s.Stop(); err == nil {
		t.Fatal("Stop with uncreatable mem path succeeded")
	}
}
