// Package prof wires the standard -cpuprofile/-memprofile flags into the
// command-line binaries. It exists so every command stops profiles and
// closes their files the same way, with write and close errors propagated
// instead of silently dropped.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Session holds the profiling state of one command invocation.
type Session struct {
	cpu     *os.File
	memPath string
}

// Start begins CPU profiling when cpuPath is non-empty and remembers
// memPath for a heap snapshot at Stop. Either path may be empty; a nil
// session with no error means profiling is entirely disabled.
func Start(cpuPath, memPath string) (*Session, error) {
	if cpuPath == "" && memPath == "" {
		return nil, nil
	}
	s := &Session{memPath: memPath}
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("create cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			if cerr := f.Close(); cerr != nil {
				err = fmt.Errorf("%w (and closing profile: %v)", err, cerr)
			}
			return nil, fmt.Errorf("start cpu profile: %w", err)
		}
		s.cpu = f
	}
	return s, nil
}

// Stop finishes CPU profiling and writes the heap profile, if either was
// requested. It is safe to call on a nil session and returns the first
// error encountered, including file-close errors.
func (s *Session) Stop() error {
	if s == nil {
		return nil
	}
	var first error
	if s.cpu != nil {
		pprof.StopCPUProfile()
		if err := s.cpu.Close(); err != nil && first == nil {
			first = fmt.Errorf("close cpu profile: %w", err)
		}
		s.cpu = nil
	}
	if s.memPath != "" {
		if err := writeHeap(s.memPath); err != nil && first == nil {
			first = err
		}
		s.memPath = ""
	}
	return first
}

func writeHeap(path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create mem profile: %w", err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("close mem profile: %w", cerr)
		}
	}()
	runtime.GC() // materialize up-to-date allocation statistics
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("write mem profile: %w", err)
	}
	return nil
}
