package suite

import (
	"qtrtest/internal/logical"
	"qtrtest/internal/memo"
	"qtrtest/internal/rules"
)

// buggySwapProjectRule returns a deliberately unsound exploration rule used
// as the negative control in correctness tests: it rewrites a LEFT OUTER
// JOIN to an inner join unconditionally (the sound rule 9 requires a
// null-rejecting filter above). Inner joins cost slightly less than outer
// joins, so the optimizer always prefers the wrong plan, and results differ
// whenever an unmatched left row exists.
func buggySwapProjectRule() rules.ExplorationRule {
	pattern := rules.P(logical.OpLeftJoin, rules.Any(), rules.Any())
	return rules.NewExplorationRule(901, "BuggyLeftJoinToJoin", pattern,
		func(ctx *rules.Context, b *memo.BoundExpr) []*memo.BoundExpr {
			return []*memo.BoundExpr{
				memo.NewBound(&logical.Expr{Op: logical.OpJoin, On: b.Node.On},
					b.Kids[0], b.Kids[1]),
			}
		})
}
