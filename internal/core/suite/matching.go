package suite

import (
	"fmt"
	"math"

	"qtrtest/internal/par"
)

// MatchingNoShare solves the §7 variant of test-suite compression: every
// query of the original suite is mapped to exactly one target (no sharing),
// each target still receives exactly k queries, and the total cost
// Σ [Cost(q) + Cost(q,¬R)] is minimized. With |TS| = n·k this is an
// assignment problem between queries and target slots, solved exactly with
// the Hungarian algorithm — the polynomial-time contrast to the NP-hard
// shared version.
func (g *Graph) MatchingNoShare() (*Solution, error) {
	before := g.coster.calls.Load()
	nq := len(g.Queries)
	slots := len(g.Targets) * g.K
	if nq != slots {
		return nil, fmt.Errorf("suite: matching variant needs |TS| = n·k (%d queries, %d slots)", nq, slots)
	}
	const big = 1e15
	// cost[q][s]: assigning query q to slot s (slot s belongs to target
	// s/K). Non-edges get a prohibitive (but finite) cost so the algorithm
	// stays total; a result using one means infeasibility. Rows are filled
	// on the worker pool — building the full matrix is the edge-costing hot
	// loop of this variant.
	cost := make([][]float64, nq)
	par.ForEach(g.workers, nq, func(qi int) {
		row := make([]float64, slots)
		for s := 0; s < slots; s++ {
			ti := s / g.K
			t := g.Targets[ti]
			if t.CoveredBy(g.Queries[qi].RuleSet) {
				ec := g.coster.cost(g.Queries[qi], t)
				if math.IsInf(ec, 1) {
					row[s] = big
				} else {
					row[s] = g.Queries[qi].Cost + ec
				}
			} else {
				row[s] = big
			}
		}
		cost[qi] = row
	})
	match := hungarian(cost)
	var asg []Assignment
	total := 0.0
	for qi, s := range match {
		if cost[qi][s] >= big {
			return nil, fmt.Errorf("suite: no feasible no-share assignment (query %d forced onto a non-edge)", qi)
		}
		ti := s / g.K
		ec := g.coster.cost(g.Queries[qi], g.Targets[ti])
		asg = append(asg, Assignment{Target: ti, Query: qi, EdgeCost: ec})
		total += cost[qi][s]
	}
	sol := &Solution{Name: "MATCHING", Assignments: asg, TotalCost: total}
	sol.OptimizerCalls = int(g.coster.calls.Load() - before)
	return sol, nil
}

// hungarian solves the square assignment problem, returning for each row the
// column assigned to it. Standard O(n³) potentials implementation.
func hungarian(cost [][]float64) []int {
	n := len(cost)
	const inf = math.MaxFloat64
	u := make([]float64, n+1)
	v := make([]float64, n+1)
	p := make([]int, n+1)   // p[j] = row matched to column j (1-based rows)
	way := make([]int, n+1) // way[j] = previous column on the augmenting path
	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, n+1)
		used := make([]bool, n+1)
		for j := range minv {
			minv[j] = inf
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := inf
			j1 := 0
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}
	match := make([]int, n)
	for j := 1; j <= n; j++ {
		if p[j] > 0 {
			match[p[j]-1] = j - 1
		}
	}
	return match
}
