// Package suite implements correctness-test suites for transformation rules
// (§2.3, §4, §5 of the paper): suite generation (k distinct queries per
// rule or rule pair), the bipartite rule/query graph with node costs Cost(q)
// and edge costs Cost(q,¬R), the BASELINE execution strategy, the
// SetMultiCover and TopKIndependent compression algorithms (the latter with
// the monotonicity optimization of §5.3.1), and the execution/validation
// runner that detects correctness bugs.
package suite

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"qtrtest/internal/core/qgen"
	"qtrtest/internal/exec"
	"qtrtest/internal/logical"
	"qtrtest/internal/opt"
	"qtrtest/internal/par"
	"qtrtest/internal/physical"
	"qtrtest/internal/rescache"
	"qtrtest/internal/rules"
)

// Target is what one test suite validates: a single rule or a rule pair.
type Target struct {
	Rules []rules.ID
}

// SingletonTargets returns one target per rule.
func SingletonTargets(ids []rules.ID) []Target {
	out := make([]Target, len(ids))
	for i, id := range ids {
		out[i] = Target{Rules: []rules.ID{id}}
	}
	return out
}

// PairTargets returns all C(n,2) rule-pair targets.
func PairTargets(ids []rules.ID) []Target {
	var out []Target
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			out = append(out, Target{Rules: []rules.ID{ids[i], ids[j]}})
		}
	}
	return out
}

// Set returns the target's rules as a Set.
func (t Target) Set() rules.Set { return rules.NewSet(t.Rules...) }

// CoveredBy reports whether the query's RuleSet exercises every rule of the
// target.
func (t Target) CoveredBy(rs rules.Set) bool {
	for _, id := range t.Rules {
		if !rs.Contains(id) {
			return false
		}
	}
	return true
}

// String renders the target, e.g. "{3}" or "{3,7}".
func (t Target) String() string {
	parts := make([]string, len(t.Rules))
	for i, id := range t.Rules {
		parts[i] = fmt.Sprintf("%d", id)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// Query is one test case in the overall suite TS.
type Query struct {
	Idx     int
	SQL     string
	Tree    *logical.Expr
	MD      *logical.Metadata
	RuleSet rules.Set
	// Cost is the node cost Cost(q): the optimizer-estimated cost of the
	// plan with all rules enabled.
	Cost float64
	// BasePlan is Plan(q), captured when the query was generated (the
	// generation trial already optimized it); the correctness runner reuses
	// it instead of re-invoking the optimizer per execution.
	BasePlan *physical.Expr
	// BasePlanHash caches BasePlan.Hash() for the identical-plan skip.
	BasePlanHash string
	// GeneratedFor is the index of the target whose suite TS_i this query
	// was generated for (the BASELINE method executes exactly those).
	GeneratedFor int
}

// Graph is the bipartite graph of §4.1: rule targets on one side, queries on
// the other, an edge (t,q) wherever optimizing q exercises every rule of t.
// Edge costs Cost(q,¬R) are computed lazily through an edgeCoster so that
// the monotonicity optimization's savings in optimizer calls are observable
// (Figure 14).
type Graph struct {
	Targets []Target
	Queries []*Query
	// Adj[t] lists indices of queries covering target t.
	Adj [][]int

	K int

	coster *edgeCoster
	// workers bounds the worker pool used by the parallel algorithm and
	// execution paths; <= 0 means GOMAXPROCS.
	workers int
	// engine selects the execution engine Run uses; the zero value is the
	// batch engine.
	engine exec.Engine
	// cache, when non-nil, memoizes plan executions across Run calls (and
	// across graphs sharing the same cache); nil executes directly.
	cache *rescache.Cache
	// backend, when backendOn, is the independent engine Run replays every
	// distinct base query on (SetBackend).
	backend   exec.Engine
	backendOn bool
}

// Workers returns the graph's worker-pool bound (<= 0 means GOMAXPROCS).
func (g *Graph) Workers() int { return g.workers }

// SetWorkers overrides the worker-pool bound for subsequent algorithm runs
// and suite executions.
func (g *Graph) SetWorkers(n int) { g.workers = n }

// SetEngine overrides the execution engine used by Run. Reports are
// byte-identical across engines; the differential golden tests hold the suite
// to that.
func (g *Graph) SetEngine(e exec.Engine) { g.engine = e }

// SetCache routes Run's plan executions through a shared result cache.
// Reports are byte-identical with and without one; the cache differential
// tests hold the suite to that.
func (g *Graph) SetCache(c *rescache.Cache) { g.cache = c }

// SetBackend enables the independent-backend cross-check: Run additionally
// replays every distinct base query on the named engine ("ref", "row",
// "batch") and reports disagreements. An empty name disables the check
// (the default); reports are byte-identical to a backend-less run then.
func (g *Graph) SetBackend(name string) error {
	if name == "" {
		g.backendOn = false
		return nil
	}
	e, err := exec.EngineByName(name)
	if err != nil {
		return err
	}
	g.backend = e
	g.backendOn = true
	return nil
}

// edgeKey identifies one edge (q, ¬R) of the bipartite graph. Targets are
// singleton rules or rule pairs, so two rule IDs suffice (r2 is zero for
// singletons); a comparable struct key avoids the per-lookup allocation a
// formatted string key would pay in the hottest loop of SMC/TOPK.
type edgeKey struct {
	q      int
	r1, r2 rules.ID
}

func keyOf(q int, t Target) edgeKey {
	k := edgeKey{q: q, r1: t.Rules[0]}
	if len(t.Rules) > 1 {
		k.r2 = t.Rules[1]
	}
	return k
}

// edgeCosterShards is the number of cache shards; a small power of two keeps
// lock contention negligible without bloating the per-graph footprint.
const edgeCosterShards = 16

// edgeCoster computes and caches Cost(q, ¬R), counting optimizer calls. It
// is safe for concurrent use: the cache is sharded under per-shard mutexes,
// and each entry carries a sync.Once so that concurrent requests for the
// same edge optimize exactly once (single-flight) — the call counter stays
// exact under any parallel schedule, which Figure 14's accounting requires.
type edgeCoster struct {
	o      *opt.Optimizer
	calls  atomic.Int64
	shards [edgeCosterShards]edgeShard
}

type edgeShard struct {
	mu sync.Mutex
	m  map[edgeKey]*edgeEntry
}

type edgeEntry struct {
	once sync.Once
	res  edgeResult
}

type edgeResult struct {
	cost float64
	plan *physical.Expr
}

func newEdgeCoster(o *opt.Optimizer) *edgeCoster {
	ec := &edgeCoster{o: o}
	for i := range ec.shards {
		ec.shards[i].m = make(map[edgeKey]*edgeEntry)
	}
	return ec
}

func (ec *edgeCoster) shard(k edgeKey) *edgeShard {
	h := uint64(k.q)*0x9e3779b9 + uint64(k.r1)*31 + uint64(k.r2)
	return &ec.shards[h%edgeCosterShards]
}

// entry returns the single-flight cache entry for an edge, creating it if
// absent. Only the entry's creator-or-first-caller runs the optimizer.
func (ec *edgeCoster) entry(k edgeKey) *edgeEntry {
	s := ec.shard(k)
	s.mu.Lock()
	e, ok := s.m[k]
	if !ok {
		e = &edgeEntry{}
		s.m[k] = e
	}
	s.mu.Unlock()
	return e
}

// prime seeds the cache with a known edge result without consuming an
// optimizer call; tests use it to build synthetic graphs.
func (ec *edgeCoster) prime(q int, t Target, res edgeResult) {
	e := ec.entry(keyOf(q, t))
	e.once.Do(func() { e.res = res })
}

// cost returns Cost(q,¬R) for the target's rules, invoking the optimizer on
// a cache miss. A query that cannot be planned at all with the rules
// disabled costs +Inf.
func (ec *edgeCoster) cost(q *Query, t Target) float64 {
	return ec.edge(q, t).cost
}

func (ec *edgeCoster) edge(q *Query, t Target) edgeResult {
	e := ec.entry(keyOf(q.Idx, t))
	e.once.Do(func() {
		ec.calls.Add(1)
		res, err := ec.o.Optimize(q.Tree, q.MD, opt.Options{Disabled: t.Set()})
		if err != nil {
			e.res = edgeResult{cost: math.Inf(1)}
			return
		}
		// For an ideal optimizer Cost(q) ≤ Cost(q,¬R): the search space with
		// a rule disabled is a subset of the full one (§5.2). Our search is
		// budget-capped, so the disabled run can occasionally stumble on a
		// plan the full run's budget missed; clamp to restore the invariant
		// the monotonicity optimization relies on.
		e.res = edgeResult{cost: math.Max(res.Cost, q.Cost), plan: res.Plan}
	})
	return e.res
}

// OptimizerCalls reports how many Cost(q,¬R) optimizations have run so far.
func (g *Graph) OptimizerCalls() int { return int(g.coster.calls.Load()) }

// ResetOptimizerCalls zeroes the call counter and cache, so that successive
// algorithm runs over the same graph can be compared (Figure 14).
func (g *Graph) ResetOptimizerCalls() {
	g.coster.calls.Store(0)
	for i := range g.coster.shards {
		s := &g.coster.shards[i]
		s.mu.Lock()
		s.m = make(map[edgeKey]*edgeEntry)
		s.mu.Unlock()
	}
}

// EdgeCost exposes Cost(q,¬R) for query index q and target t.
func (g *Graph) EdgeCost(q int, t Target) float64 {
	return g.coster.cost(g.Queries[q], t)
}

// EdgePlan returns the plan Plan(q,¬R) behind an edge.
func (g *Graph) EdgePlan(q int, t Target) *physical.Expr {
	return g.coster.edge(g.Queries[q], t).plan
}

// GenMethod selects how suite queries are generated.
type GenMethod int

// Generation methods.
const (
	// MethodPattern uses rule-pattern instantiation (§3).
	MethodPattern GenMethod = iota
	// MethodRandom uses the stochastic baseline.
	MethodRandom
)

// GenConfig configures suite generation.
type GenConfig struct {
	// K is the test-suite size: distinct queries per target (§2.3).
	K int
	// Method selects PATTERN or RANDOM generation.
	Method GenMethod
	// ExtraOps pads queries with extra operators so correctness tests are
	// non-trivial (§2.3).
	ExtraOps int
	// Seed drives the generator.
	Seed int64
	// MaxTrials bounds per-query generation attempts.
	MaxTrials int
	// Workers bounds the worker pool used for generation, edge costing and
	// suite execution; <= 0 means runtime.GOMAXPROCS(0). Results are
	// byte-identical for every worker count: each target's generator is
	// seeded from (Seed, target index), never from shared RNG state.
	Workers int
}

// Generate builds the overall test suite TS = ∪ TS_i for the given targets
// and assembles the bipartite graph. Targets are generated on a bounded
// worker pool (cfg.Workers); per-target results land in index-addressed
// slots and are flattened in target order, so the suite — including query
// indices — does not depend on the worker count.
func Generate(o *opt.Optimizer, targets []Target, cfg GenConfig) (*Graph, error) {
	if cfg.K <= 0 {
		cfg.K = 10
	}
	if cfg.MaxTrials <= 0 {
		cfg.MaxTrials = 512
	}
	gen, err := qgen.New(o, qgen.Config{Seed: cfg.Seed, MaxTrials: cfg.MaxTrials, ExtraOps: cfg.ExtraOps})
	if err != nil {
		return nil, err
	}
	g := &Graph{
		Targets: targets,
		K:       cfg.K,
		coster:  newEdgeCoster(o),
		workers: cfg.Workers,
	}
	perTarget := make([][]*Query, len(targets))
	err = par.ForEachErr(cfg.Workers, len(targets), func(ti int) error {
		t := targets[ti]
		wgen := gen.Fork(par.DeriveSeed(cfg.Seed, ti))
		seen := make(map[string]bool)
		qs := make([]*Query, 0, cfg.K)
		dups := 0
		for len(qs) < cfg.K {
			q, err := generateOne(wgen, t, cfg)
			if err != nil {
				return fmt.Errorf("suite: generating query %d for target %s: %w", len(qs)+1, t, err)
			}
			if seen[q.SQL] {
				// The paper requires k distinct queries per target; retry, but
				// bounded — a generator whose query space for this target holds
				// fewer than k distinct queries would otherwise loop forever.
				dups++
				if dups >= cfg.MaxTrials {
					return fmt.Errorf("suite: only %d distinct queries for target %s after %d duplicate trials (k=%d)",
						len(qs), t, dups, cfg.K)
				}
				continue
			}
			seen[q.SQL] = true
			qs = append(qs, q)
		}
		perTarget[ti] = qs
		return nil
	})
	if err != nil {
		return nil, err
	}
	for ti, qs := range perTarget {
		for _, q := range qs {
			q.Idx = len(g.Queries)
			q.GeneratedFor = ti
			g.Queries = append(g.Queries, q)
		}
	}
	g.buildAdjacency()
	return g, nil
}

func generateOne(gen *qgen.Generator, t Target, cfg GenConfig) (*Query, error) {
	var res *qgen.Query
	var err error
	if cfg.Method == MethodRandom {
		res, err = gen.GenerateRandom(t.Rules)
	} else if len(t.Rules) == 2 {
		res, err = gen.GeneratePatternPair(t.Rules[0], t.Rules[1])
	} else {
		res, err = gen.GeneratePattern(t.Rules[0])
	}
	if err != nil {
		return nil, err
	}
	q := &Query{
		SQL: res.SQL, Tree: res.Tree, MD: res.MD,
		RuleSet: res.RuleSet, Cost: res.Cost,
		BasePlan: res.Plan,
	}
	if res.Plan != nil {
		q.BasePlanHash = res.Plan.Hash()
	}
	return q, nil
}

func (g *Graph) buildAdjacency() {
	g.Adj = make([][]int, len(g.Targets))
	for ti, t := range g.Targets {
		for qi, q := range g.Queries {
			if t.CoveredBy(q.RuleSet) {
				g.Adj[ti] = append(g.Adj[ti], qi)
			}
		}
	}
}

// Assignment maps one query to one target in a solution.
type Assignment struct {
	Target int
	Query  int
	// EdgeCost is Cost(q, ¬R) for this edge.
	EdgeCost float64
}

// Solution is a valid subgraph per §4.1: every target has exactly K distinct
// queries assigned.
type Solution struct {
	Name        string
	Assignments []Assignment
	// TotalCost = Σ_{distinct queries used} Cost(q) + Σ_edges Cost(q,¬R):
	// the estimated cost of executing the suite, with Plan(q) shared across
	// targets that reuse the query.
	TotalCost float64
	// OptimizerCalls consumed while computing the solution (edge-cost
	// optimizations), for Figure 14.
	OptimizerCalls int
}

// finalize computes TotalCost from the assignments.
func (g *Graph) finalize(name string, asg []Assignment, shareNodeCost bool) *Solution {
	sort.Slice(asg, func(i, j int) bool {
		if asg[i].Target != asg[j].Target {
			return asg[i].Target < asg[j].Target
		}
		return asg[i].Query < asg[j].Query
	})
	total := 0.0
	seen := make(map[int]bool)
	for _, a := range asg {
		if shareNodeCost {
			if !seen[a.Query] {
				seen[a.Query] = true
				total += g.Queries[a.Query].Cost
			}
		} else {
			total += g.Queries[a.Query].Cost
		}
		total += a.EdgeCost
	}
	return &Solution{Name: name, Assignments: asg, TotalCost: total}
}

// Validate checks the §4.1 invariants: each target has exactly K distinct
// queries, and every assignment is a real edge.
func (g *Graph) Validate(sol *Solution) error {
	perTarget := make(map[int]map[int]bool)
	for _, a := range sol.Assignments {
		if a.Target < 0 || a.Target >= len(g.Targets) || a.Query < 0 || a.Query >= len(g.Queries) {
			return fmt.Errorf("suite: assignment out of range: %+v", a)
		}
		if !g.Targets[a.Target].CoveredBy(g.Queries[a.Query].RuleSet) {
			return fmt.Errorf("suite: query %d does not cover target %s", a.Query, g.Targets[a.Target])
		}
		m := perTarget[a.Target]
		if m == nil {
			m = make(map[int]bool)
			perTarget[a.Target] = m
		}
		if m[a.Query] {
			return fmt.Errorf("suite: duplicate assignment of query %d to target %s", a.Query, g.Targets[a.Target])
		}
		m[a.Query] = true
	}
	for ti, t := range g.Targets {
		if len(perTarget[ti]) != g.K {
			return fmt.Errorf("suite: target %s has %d queries, want %d", t, len(perTarget[ti]), g.K)
		}
	}
	return nil
}
