package suite

import (
	"testing"

	"qtrtest/internal/catalog"
	"qtrtest/internal/opt"
	"qtrtest/internal/rules"
)

func explorationIDs(n int) []rules.ID {
	var ids []rules.ID
	for _, r := range rules.ExplorationRules() {
		ids = append(ids, r.ID())
		if len(ids) == n {
			break
		}
	}
	return ids
}

func newGraph(t *testing.T, targets []Target, k int) (*Graph, *opt.Optimizer, *catalog.Catalog) {
	t.Helper()
	cat := catalog.LoadTPCH(catalog.DefaultTPCHConfig())
	o := opt.New(rules.DefaultRegistry(), cat)
	g, err := Generate(o, targets, GenConfig{K: k, Seed: 99, ExtraOps: 2})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return g, o, cat
}

func TestSingletonCompression(t *testing.T) {
	targets := SingletonTargets(explorationIDs(8))
	g, _, _ := newGraph(t, targets, 3)

	base, err := g.Baseline()
	if err != nil {
		t.Fatalf("Baseline: %v", err)
	}
	smc, err := g.SetMultiCover()
	if err != nil {
		t.Fatalf("SetMultiCover: %v", err)
	}
	topk, err := g.TopKIndependent()
	if err != nil {
		t.Fatalf("TopKIndependent: %v", err)
	}
	for _, sol := range []*Solution{base, smc, topk} {
		if err := g.Validate(sol); err != nil {
			t.Errorf("%s: invalid solution: %v", sol.Name, err)
		}
		if sol.TotalCost <= 0 {
			t.Errorf("%s: nonpositive total cost %f", sol.Name, sol.TotalCost)
		}
	}
	if topk.TotalCost > base.TotalCost {
		t.Errorf("TOPK (%f) should not exceed BASELINE (%f) for singletons", topk.TotalCost, base.TotalCost)
	}
	if smc.TotalCost > base.TotalCost*2 {
		t.Errorf("SMC (%f) unexpectedly far above BASELINE (%f)", smc.TotalCost, base.TotalCost)
	}
}

func TestTopKMonotonicMatchesTopK(t *testing.T) {
	targets := PairTargets(explorationIDs(5))
	g, _, _ := newGraph(t, targets, 2)

	topk, err := g.TopKIndependent()
	if err != nil {
		t.Fatalf("TopKIndependent: %v", err)
	}
	g.ResetOptimizerCalls()
	mono, err := g.TopKMonotonic()
	if err != nil {
		t.Fatalf("TopKMonotonic: %v", err)
	}
	if err := g.Validate(mono); err != nil {
		t.Fatalf("monotonic solution invalid: %v", err)
	}
	if diff := topk.TotalCost - mono.TotalCost; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("monotonic TOPK changed solution cost: %f vs %f", mono.TotalCost, topk.TotalCost)
	}
	if mono.OptimizerCalls >= topk.OptimizerCalls {
		t.Errorf("monotonicity saved no optimizer calls: %d vs %d", mono.OptimizerCalls, topk.OptimizerCalls)
	}
}

func TestCorrectnessRunCleanRules(t *testing.T) {
	targets := SingletonTargets(explorationIDs(6))
	g, o, cat := newGraph(t, targets, 2)
	sol, err := g.TopKIndependent()
	if err != nil {
		t.Fatalf("TopKIndependent: %v", err)
	}
	rep, err := g.Run(sol, o, cat)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(rep.Mismatches) != 0 {
		for _, m := range rep.Mismatches {
			t.Errorf("correctness bug flagged for healthy rules: target %s query %q: %s",
				m.Target, m.Query.SQL, m.Detail)
		}
	}
	if rep.PlanExecutions == 0 {
		t.Error("no plans executed")
	}
}

func TestMatchingNoShare(t *testing.T) {
	targets := SingletonTargets(explorationIDs(5))
	g, _, _ := newGraph(t, targets, 2)
	sol, err := g.MatchingNoShare()
	if err != nil {
		t.Fatalf("MatchingNoShare: %v", err)
	}
	// Every query used exactly once.
	used := make(map[int]bool)
	for _, a := range sol.Assignments {
		if used[a.Query] {
			t.Fatalf("query %d assigned twice in no-share matching", a.Query)
		}
		used[a.Query] = true
	}
	if len(used) != len(g.Queries) {
		t.Fatalf("matching used %d of %d queries", len(used), len(g.Queries))
	}
	if err := g.Validate(sol); err != nil {
		t.Fatalf("matching solution invalid: %v", err)
	}
	base, err := g.Baseline()
	if err != nil {
		t.Fatal(err)
	}
	if sol.TotalCost > base.TotalCost+1e-6 {
		t.Errorf("optimal no-share matching (%f) exceeds BASELINE (%f)", sol.TotalCost, base.TotalCost)
	}
}

func TestGenerateWithRandomMethod(t *testing.T) {
	cat := catalog.LoadTPCH(catalog.DefaultTPCHConfig())
	o := opt.New(rules.DefaultRegistry(), cat)
	// Rules RANDOM reaches quickly.
	targets := SingletonTargets([]rules.ID{1, 4, 5})
	g, err := Generate(o, targets, GenConfig{K: 2, Seed: 3, Method: MethodRandom, MaxTrials: 512})
	if err != nil {
		t.Fatalf("Generate(random): %v", err)
	}
	if len(g.Queries) != 6 {
		t.Fatalf("queries = %d, want 6", len(g.Queries))
	}
	for ti, tgt := range g.Targets {
		if len(g.Adj[ti]) < g.K {
			t.Errorf("target %s under-covered: %d", tgt, len(g.Adj[ti]))
		}
	}
}

func TestTargetHelpers(t *testing.T) {
	tg := Target{Rules: []rules.ID{3, 7}}
	if tg.String() != "{3,7}" {
		t.Errorf("String = %s", tg.String())
	}
	if !tg.CoveredBy(rules.NewSet(3, 7, 9)) || tg.CoveredBy(rules.NewSet(3)) {
		t.Error("CoveredBy wrong")
	}
	pairs := PairTargets([]rules.ID{1, 2, 3})
	if len(pairs) != 3 {
		t.Errorf("PairTargets = %d", len(pairs))
	}
	if len(SingletonTargets([]rules.ID{1, 2})) != 2 {
		t.Error("SingletonTargets wrong")
	}
}

func TestRunSkipsIdenticalPlans(t *testing.T) {
	// Rules that rarely change the final plan (e.g. exercised-but-not-
	// relevant ones) yield identical Plan(q,¬r): the runner must skip those
	// executions (paper footnote 1).
	targets := SingletonTargets(explorationIDs(4))
	g, o, cat := newGraph(t, targets, 2)
	sol, err := g.Baseline()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := g.Run(sol, o, cat)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SkippedIdentical == 0 {
		t.Log("no identical plans this run (acceptable, but unusual)")
	}
	if rep.PlanExecutions+rep.SkippedIdentical < len(sol.Assignments) {
		t.Errorf("executions (%d) + skipped (%d) < assignments (%d)",
			rep.PlanExecutions, rep.SkippedIdentical, len(sol.Assignments))
	}
}

func TestGenerateProducesDistinctQueriesPerTarget(t *testing.T) {
	targets := SingletonTargets(explorationIDs(5))
	g, _, _ := newGraph(t, targets, 3)
	for ti := range g.Targets {
		seen := map[string]bool{}
		for _, q := range g.Queries {
			if q.GeneratedFor != ti {
				continue
			}
			if seen[q.SQL] {
				t.Fatalf("target %d has duplicate query: %s", ti, q.SQL)
			}
			seen[q.SQL] = true
		}
		if len(seen) != g.K {
			t.Fatalf("target %d owns %d distinct queries, want %d", ti, len(seen), g.K)
		}
	}
}

func TestEdgeCostCachedAcrossAlgorithms(t *testing.T) {
	targets := SingletonTargets(explorationIDs(4))
	g, _, _ := newGraph(t, targets, 2)
	if _, err := g.TopKIndependent(); err != nil {
		t.Fatal(err)
	}
	calls := g.OptimizerCalls()
	// Re-running any algorithm must hit the cache only.
	if _, err := g.Baseline(); err != nil {
		t.Fatal(err)
	}
	if _, err := g.TopKIndependent(); err != nil {
		t.Fatal(err)
	}
	if g.OptimizerCalls() != calls {
		t.Errorf("algorithms recomputed cached edges: %d -> %d", calls, g.OptimizerCalls())
	}
}
