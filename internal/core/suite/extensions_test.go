package suite

import (
	"testing"

	"qtrtest/internal/bind"
	"qtrtest/internal/catalog"
	"qtrtest/internal/exec"
	"qtrtest/internal/opt"
	"qtrtest/internal/rules"
)

// TestExtensionRulesAreSound applies the correctness methodology to the
// schema-dependent extension rules (31-34) on queries crafted to trigger
// them, over both test databases.
func TestExtensionRulesAreSound(t *testing.T) {
	cases := []struct {
		name string
		cat  *catalog.Catalog
		sql  string
		rule rules.ID
	}{
		{
			"fk_join_elimination_tpch",
			catalog.LoadTPCH(catalog.DefaultTPCHConfig()),
			"SELECT c_name, c_acctbal FROM customer JOIN nation ON c_nationkey = n_nationkey",
			31,
		},
		{
			"fk_join_elimination_star",
			catalog.LoadStar(catalog.DefaultStarConfig()),
			"SELECT f_amount FROM sales JOIN product ON f_productkey = p_productkey",
			31,
		},
		{
			"fk_semijoin_elimination",
			catalog.LoadTPCH(catalog.DefaultTPCHConfig()),
			"SELECT o_orderkey FROM orders WHERE EXISTS (SELECT 1 AS one FROM customer WHERE c_custkey = o_custkey)",
			32,
		},
		{
			"or_expansion",
			catalog.LoadTPCH(catalog.DefaultTPCHConfig()),
			"SELECT n_name FROM nation WHERE n_regionkey = 1 OR n_nationkey < 3",
			33,
		},
		{
			"split_select",
			catalog.LoadTPCH(catalog.DefaultTPCHConfig()),
			"SELECT s_name FROM supplier WHERE s_acctbal > 0 AND s_nationkey < 20",
			34,
		},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			o := opt.New(rules.RegistryWithExtensions(), c.cat)
			bound, err := bind.BindSQL(c.sql, c.cat)
			if err != nil {
				t.Fatal(err)
			}
			on, err := o.Optimize(bound.Tree, bound.MD, opt.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !on.RuleSet.Contains(c.rule) {
				t.Fatalf("rule %d not exercised; RuleSet = %v", c.rule, on.RuleSet.Sorted())
			}
			rowsOn, err := exec.Run(on.Plan, c.cat)
			if err != nil {
				t.Fatal(err)
			}
			off, err := o.Optimize(bound.Tree, bound.MD, opt.Options{Disabled: rules.NewSet(c.rule)})
			if err != nil {
				t.Fatal(err)
			}
			rowsOff, err := exec.Run(off.Plan, c.cat)
			if err != nil {
				t.Fatal(err)
			}
			if !exec.EqualMultisets(rowsOn, rowsOff) {
				t.Errorf("rule %d changes results: %s", c.rule, exec.DiffSummary(rowsOn, rowsOff))
			}
		})
	}
}

// TestFKJoinEliminationChoosesEliminatedPlan: the join-free plan must win on
// cost when only fact columns are needed.
func TestFKJoinEliminationChoosesEliminatedPlan(t *testing.T) {
	cat := catalog.LoadTPCH(catalog.DefaultTPCHConfig())
	o := opt.New(rules.RegistryWithExtensions(), cat)
	bound, err := bind.BindSQL("SELECT c_name FROM customer JOIN nation ON c_nationkey = n_nationkey", cat)
	if err != nil {
		t.Fatal(err)
	}
	res, err := o.Optimize(bound.Tree, bound.MD, opt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Plan.CountOps(); got > 2 {
		t.Errorf("expected a scan+project plan after FK elimination, got %d ops:\n%s", got, res.Plan)
	}
}
