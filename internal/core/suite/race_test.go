package suite

import (
	"sync"
	"testing"

	"qtrtest/internal/catalog"
	"qtrtest/internal/opt"
	"qtrtest/internal/rules"
)

// TestEdgeCosterSingleFlightConcurrent hammers the edge-cost cache from many
// goroutines requesting the same small set of edges. The single-flight
// contract has two halves: every goroutine observes the same cost for an
// edge, and the optimizer runs exactly once per distinct edge no matter how
// the requests interleave — the exact-call accounting Figure 14 depends on.
// Run under -race this also checks the sharded cache for data races.
func TestEdgeCosterSingleFlightConcurrent(t *testing.T) {
	cat := catalog.LoadTPCH(catalog.TPCHConfig{ScaleRows: 1.0, Seed: 42})
	o := opt.New(rules.DefaultRegistry(), cat)
	targets := SingletonTargets([]rules.ID{1, 4, 5, 9})
	g, err := Generate(o, targets, GenConfig{K: 2, Seed: 7, ExtraOps: 2, Workers: 2})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	g.ResetOptimizerCalls()

	// Collect every (query, target) edge of the graph.
	type edge struct {
		q *Query
		t Target
	}
	var edges []edge
	for ti, qs := range g.Adj {
		for _, qi := range qs {
			edges = append(edges, edge{q: g.Queries[qi], t: g.Targets[ti]})
		}
	}
	if len(edges) == 0 {
		t.Fatal("graph has no edges")
	}

	// First pass, sequential: the reference costs.
	want := make([]float64, len(edges))
	for i, e := range edges {
		want[i] = g.coster.cost(e.q, e.t)
	}
	calls := g.OptimizerCalls()
	if calls == 0 || calls > len(edges) {
		t.Fatalf("sequential pass made %d optimizer calls for %d edges", calls, len(edges))
	}

	// Concurrent pass over a fresh cache: every edge requested by every
	// goroutine, yet the call counter must land exactly where the
	// sequential pass did.
	g.ResetOptimizerCalls()
	const goroutines = 8
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range edges {
				// Stagger start positions so goroutines collide on
				// different entries first.
				j := (i + w*len(edges)/goroutines) % len(edges)
				if got := g.coster.cost(edges[j].q, edges[j].t); got != want[j] {
					t.Errorf("edge %d: concurrent cost %v, sequential cost %v", j, got, want[j])
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := g.OptimizerCalls(); got != calls {
		t.Errorf("concurrent pass made %d optimizer calls, sequential made %d (single-flight violated)", got, calls)
	}
}
