package suite

import (
	"fmt"

	"qtrtest/internal/catalog"
	"qtrtest/internal/datum"
	"qtrtest/internal/exec"
	"qtrtest/internal/opt"
)

// Mismatch records one detected correctness bug: a query whose results
// change when a target's rules are disabled.
type Mismatch struct {
	Target Target
	Query  *Query
	Detail string
}

// Report summarizes one execution of a (possibly compressed) test suite.
type Report struct {
	// PlanExecutions counts plans actually executed (shared Plan(q) runs
	// count once; identical disabled-plans are skipped per footnote 1).
	PlanExecutions int
	// SkippedIdentical counts edges whose Plan(q,¬R) was identical to
	// Plan(q) and therefore did not need executing.
	SkippedIdentical int
	// Mismatches are the correctness bugs found (empty for a healthy rule
	// set).
	Mismatches []Mismatch
}

// Run executes the solution's test suite against the database: for every
// distinct query, Plan(q) runs once; for every edge, Plan(q,¬R) runs (unless
// identical to Plan(q)) and its result multiset is compared with the
// original. Any difference is a correctness bug in one of the target's
// rules.
func (g *Graph) Run(sol *Solution, o *opt.Optimizer, cat *catalog.Catalog) (*Report, error) {
	rep := &Report{}
	baseRows := make(map[int][]datum.Row)
	basePlanHash := make(map[int]string)
	for _, a := range sol.Assignments {
		q := g.Queries[a.Query]
		if _, ok := baseRows[a.Query]; !ok {
			res, err := o.Optimize(q.Tree, q.MD, opt.Options{})
			if err != nil {
				return nil, fmt.Errorf("suite: planning query %d: %w", a.Query, err)
			}
			rows, err := exec.Run(res.Plan, cat)
			if err != nil {
				return nil, fmt.Errorf("suite: executing query %d: %w", a.Query, err)
			}
			baseRows[a.Query] = rows
			basePlanHash[a.Query] = res.Plan.Hash()
			rep.PlanExecutions++
		}
		t := g.Targets[a.Target]
		plan := g.EdgePlan(a.Query, t)
		if plan == nil {
			return nil, fmt.Errorf("suite: no plan for query %d with %s disabled", a.Query, t)
		}
		if plan.Hash() == basePlanHash[a.Query] {
			// Identical plans are guaranteed to produce identical results;
			// skip the execution (paper footnote 1).
			rep.SkippedIdentical++
			continue
		}
		rows, err := exec.Run(plan, cat)
		if err != nil {
			return nil, fmt.Errorf("suite: executing query %d with %s disabled: %w", a.Query, t, err)
		}
		rep.PlanExecutions++
		base := baseRows[a.Query]
		if !exec.EqualMultisets(base, rows) {
			rep.Mismatches = append(rep.Mismatches, Mismatch{
				Target: t, Query: q,
				Detail: exec.DiffSummary(base, rows),
			})
		}
	}
	return rep, nil
}
