package suite

import (
	"fmt"

	"qtrtest/internal/catalog"
	"qtrtest/internal/datum"
	"qtrtest/internal/exec"
	"qtrtest/internal/opt"
	"qtrtest/internal/par"
	"qtrtest/internal/physical"
)

// Mismatch records one detected correctness bug: a query whose results
// change when a target's rules are disabled.
type Mismatch struct {
	Target Target
	Query  *Query
	Detail string
}

// Report summarizes one execution of a (possibly compressed) test suite.
type Report struct {
	// PlanExecutions counts plans actually executed (shared Plan(q) runs
	// count once; identical disabled-plans are skipped per footnote 1).
	PlanExecutions int
	// SkippedIdentical counts edges whose Plan(q,¬R) was identical to
	// Plan(q) and therefore did not need executing.
	SkippedIdentical int
	// Mismatches are the correctness bugs found (empty for a healthy rule
	// set).
	Mismatches []Mismatch
}

// Run executes the solution's test suite against the database: for every
// distinct query, Plan(q) runs once; for every edge, Plan(q,¬R) runs (unless
// identical to Plan(q)) and its result multiset is compared with the
// original. Any difference is a correctness bug in one of the target's
// rules.
//
// Plan(q) is the base plan captured at generation time (Query.BasePlan) and
// Plan(q,¬R) comes from the edge cache populated while the compression
// algorithm selected the edge, so for a suite built by Generate and
// compressed by any of the algorithms, Run invokes the optimizer zero times
// — it only executes plans. Base and edge executions each fan out over the
// graph's worker pool; mismatches are reported in assignment order
// regardless of the worker count. The optimizer argument is used only as a
// fallback for graphs whose queries carry no stored base plan (e.g. graphs
// assembled by hand).
func (g *Graph) Run(sol *Solution, o *opt.Optimizer, cat *catalog.Catalog) (*Report, error) {
	rep := &Report{}

	// Distinct queries in first-appearance order.
	var distinct []int
	queryOf := make(map[int]int) // query index -> slot in distinct
	for _, a := range sol.Assignments {
		if _, ok := queryOf[a.Query]; !ok {
			queryOf[a.Query] = len(distinct)
			distinct = append(distinct, a.Query)
		}
	}

	// Phase 1: execute every Plan(q) once, in parallel.
	type baseExec struct {
		rows []datum.Row
		hash string
	}
	bases := make([]baseExec, len(distinct))
	err := par.ForEachErr(g.workers, len(distinct), func(i int) error {
		qi := distinct[i]
		q := g.Queries[qi]
		plan, hash := q.BasePlan, q.BasePlanHash
		if plan == nil {
			res, err := o.Optimize(q.Tree, q.MD, opt.Options{})
			if err != nil {
				return fmt.Errorf("suite: planning query %d: %w", qi, err)
			}
			plan, hash = res.Plan, res.Plan.Hash()
		}
		rows, err := exec.Run(plan, cat)
		if err != nil {
			return fmt.Errorf("suite: executing query %d: %w", qi, err)
		}
		bases[i] = baseExec{rows: rows, hash: hash}
		return nil
	})
	if err != nil {
		return nil, err
	}
	rep.PlanExecutions = len(distinct)

	// Phase 2: execute every edge's Plan(q,¬R) in parallel, skipping plans
	// identical to the base. Results land in assignment-indexed slots so the
	// report is deterministic.
	type edgeExec struct {
		skipped  bool
		mismatch *Mismatch
	}
	edges := make([]edgeExec, len(sol.Assignments))
	err = par.ForEachErr(g.workers, len(sol.Assignments), func(i int) error {
		a := sol.Assignments[i]
		q := g.Queries[a.Query]
		t := g.Targets[a.Target]
		base := &bases[queryOf[a.Query]]
		var plan *physical.Expr
		if plan = g.EdgePlan(a.Query, t); plan == nil {
			return fmt.Errorf("suite: no plan for query %d with %s disabled", a.Query, t)
		}
		if plan.Hash() == base.hash {
			// Identical plans are guaranteed to produce identical results;
			// skip the execution (paper footnote 1).
			edges[i].skipped = true
			return nil
		}
		rows, err := exec.Run(plan, cat)
		if err != nil {
			return fmt.Errorf("suite: executing query %d with %s disabled: %w", a.Query, t, err)
		}
		if !exec.EqualMultisets(base.rows, rows) {
			edges[i].mismatch = &Mismatch{
				Target: t, Query: q,
				Detail: exec.DiffSummary(base.rows, rows),
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i := range edges {
		if edges[i].skipped {
			rep.SkippedIdentical++
			continue
		}
		rep.PlanExecutions++
		if edges[i].mismatch != nil {
			rep.Mismatches = append(rep.Mismatches, *edges[i].mismatch)
		}
	}
	return rep, nil
}
