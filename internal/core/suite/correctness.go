package suite

import (
	"errors"
	"fmt"

	"qtrtest/internal/catalog"
	"qtrtest/internal/datum"
	"qtrtest/internal/exec"
	"qtrtest/internal/opt"
	"qtrtest/internal/par"
	"qtrtest/internal/physical"
	"qtrtest/internal/rescache"
)

// Mismatch records one detected correctness bug: a query whose results
// change when a target's rules are disabled.
type Mismatch struct {
	Target Target
	Query  *Query
	Detail string
	// BasePlan and EdgePlan are the rendered Plan(q) and Plan(q,¬R): the
	// plan-level evidence for the bug report, so a reader can see which
	// operator choice diverged without re-running the optimizer.
	BasePlan string
	EdgePlan string
}

// Undetermined flags an edge whose results differ even though the query's
// semantics do not fully determine its output (a LIMIT without a total
// order). Two correct plans may legally disagree on such queries, so they
// are reported separately instead of being counted as correctness bugs.
type Undetermined struct {
	Target Target
	Query  *Query
	Detail string
}

// Report summarizes one execution of a (possibly compressed) test suite.
type Report struct {
	// PlanExecutions counts plans actually executed (shared Plan(q) runs
	// count once; identical disabled-plans are skipped per footnote 1).
	PlanExecutions int
	// SkippedIdentical counts edges whose Plan(q,¬R) was identical to
	// Plan(q) and therefore did not need executing.
	SkippedIdentical int
	// Mismatches are the correctness bugs found (empty for a healthy rule
	// set).
	Mismatches []Mismatch
	// Undetermined lists edges whose result differences are explained by
	// under-determined query semantics rather than a rule bug.
	Undetermined []Undetermined
	// BackendChecks counts distinct base queries replayed on the
	// cross-check backend (SetBackend); zero when the check is off.
	BackendChecks int
	// BackendDisagreements lists base queries whose backend replay did not
	// agree with the primary engine — evidence of a fault the
	// self-differential oracle cannot see.
	BackendDisagreements []BackendDisagreement
}

// BackendDisagreement records one cross-engine divergence: the primary
// engine and the independent backend produced incompatible results (or one
// errored) for the same query.
type BackendDisagreement struct {
	Query  *Query
	Detail string
}

// BaseExec is one executed Plan(q): the reference side of the differential
// oracle. The suite runner builds one per distinct query; the fuzzer builds
// one per generated query and compares every Plan(q,¬R) and every
// metamorphic variant against it through CompareEdge.
type BaseExec struct {
	Plan  *physical.Expr
	Rows  []datum.Row
	Hash  string
	Order exec.PlanOrder
}

// ExecBase executes a base plan and captures everything CompareEdge needs.
// maxRows > 0 caps the buffered result and maxWork > 0 caps the total rows
// produced by all operators (the error is exec.ErrRowLimit either way).
func ExecBase(plan *physical.Expr, cat *catalog.Catalog, maxRows int, maxWork int64) (*BaseExec, error) {
	return ExecBaseEngine(exec.EngineBatch, plan, cat, maxRows, maxWork)
}

// ExecBaseEngine is ExecBase on an explicit execution engine.
func ExecBaseEngine(eng exec.Engine, plan *physical.Expr, cat *catalog.Catalog, maxRows int, maxWork int64) (*BaseExec, error) {
	return ExecBaseCached(nil, eng, plan, cat, maxRows, maxWork)
}

// ExecBaseCached is ExecBaseEngine through a result cache; a nil cache
// executes directly. Cached rows are shared read-only between every BaseExec
// holding them, which the oracle permits because CompareResults never
// mutates its inputs.
func ExecBaseCached(rc *rescache.Cache, eng exec.Engine, plan *physical.Expr, cat *catalog.Catalog, maxRows int, maxWork int64) (*BaseExec, error) {
	rows, err := rc.Run(eng, plan, cat, maxRows, maxWork)
	if err != nil {
		return nil, err
	}
	return &BaseExec{Plan: plan, Rows: rows, Hash: plan.Hash(), Order: exec.RootOrder(plan)}, nil
}

// EdgeOutcome is CompareEdge's result: either the alternative plan was not
// worth executing (identical to the base, or over the row cap), or the
// order-aware oracle's verdict on its results.
type EdgeOutcome struct {
	// Skipped reports the plan was structurally identical to the base;
	// identical plans are guaranteed to produce identical results, so the
	// execution is skipped (paper footnote 1).
	Skipped bool
	// Capped reports the alternative exceeded maxRows or maxWork, so no
	// comparison was possible (only with a positive cap).
	Capped  bool
	Verdict exec.Verdict
	Detail  string
}

// CompareEdge executes an alternative plan for base's query and compares the
// results with the order-aware oracle. maxRows > 0 caps the alternative's
// buffered result; maxWork > 0 caps its total operator output.
func CompareEdge(cat *catalog.Catalog, base *BaseExec, plan *physical.Expr, maxRows int, maxWork int64) (EdgeOutcome, error) {
	return CompareEdgeEngine(exec.EngineBatch, cat, base, plan, maxRows, maxWork)
}

// CompareEdgeEngine is CompareEdge on an explicit execution engine.
func CompareEdgeEngine(eng exec.Engine, cat *catalog.Catalog, base *BaseExec, plan *physical.Expr, maxRows int, maxWork int64) (EdgeOutcome, error) {
	return CompareEdgeCached(nil, eng, cat, base, plan, maxRows, maxWork)
}

// CompareEdgeCached is CompareEdgeEngine through a result cache; a nil cache
// executes directly. The identical-plan skip (paper footnote 1) stays ahead
// of the cache — a skip needs no lookup at all.
func CompareEdgeCached(rc *rescache.Cache, eng exec.Engine, cat *catalog.Catalog, base *BaseExec, plan *physical.Expr, maxRows int, maxWork int64) (EdgeOutcome, error) {
	if plan.Hash() == base.Hash {
		return EdgeOutcome{Skipped: true}, nil
	}
	rows, err := rc.Run(eng, plan, cat, maxRows, maxWork)
	if errors.Is(err, exec.ErrRowLimit) {
		return EdgeOutcome{Capped: true}, nil
	}
	if err != nil {
		return EdgeOutcome{}, err
	}
	verdict, detail := exec.CompareResults(base.Rows, base.Order, rows, exec.RootOrder(plan))
	return EdgeOutcome{Verdict: verdict, Detail: detail}, nil
}

// Run executes the solution's test suite against the database: for every
// distinct query, Plan(q) runs once; for every edge, Plan(q,¬R) runs (unless
// identical to Plan(q)) and its results are compared with the original by
// the order-aware oracle (exec.CompareResults): multiset comparison by
// default, order-sensitive on the sort keys when the plan roots establish an
// ordering, and differences explainable by a LIMIT without a total order are
// flagged as Undetermined rather than reported as bugs.
//
// Plan(q) is the base plan captured at generation time (Query.BasePlan) and
// Plan(q,¬R) comes from the edge cache populated while the compression
// algorithm selected the edge, so for a suite built by Generate and
// compressed by any of the algorithms, Run invokes the optimizer zero times
// — it only executes plans. Base and edge executions each fan out over the
// graph's worker pool; mismatches are reported in assignment order
// regardless of the worker count. The optimizer argument is used only as a
// fallback for graphs whose queries carry no stored base plan (e.g. graphs
// assembled by hand).
func (g *Graph) Run(sol *Solution, o *opt.Optimizer, cat *catalog.Catalog) (*Report, error) {
	rep := &Report{}

	// Distinct queries in first-appearance order.
	var distinct []int
	queryOf := make(map[int]int) // query index -> slot in distinct
	for _, a := range sol.Assignments {
		if _, ok := queryOf[a.Query]; !ok {
			queryOf[a.Query] = len(distinct)
			distinct = append(distinct, a.Query)
		}
	}

	// Phase 1: execute every Plan(q) once, in parallel. With a cross-check
	// backend set, each base is additionally replayed there and compared;
	// outcomes land in index-addressed slots and are merged in distinct
	// order so the report stays byte-identical at any worker count.
	type backendCheck struct {
		checked bool
		detail  string
		diff    bool
	}
	bases := make([]*BaseExec, len(distinct))
	bkChecks := make([]backendCheck, len(distinct))
	err := par.ForEachErr(g.workers, len(distinct), func(i int) error {
		qi := distinct[i]
		q := g.Queries[qi]
		plan := q.BasePlan
		if plan == nil {
			res, err := o.Optimize(q.Tree, q.MD, opt.Options{})
			if err != nil {
				return fmt.Errorf("suite: planning query %d: %w", qi, err)
			}
			plan = res.Plan
		}
		base, err := ExecBaseCached(g.cache, g.engine, plan, cat, 0, 0)
		if err != nil {
			return fmt.Errorf("suite: executing query %d: %w", qi, err)
		}
		bases[i] = base
		if g.backendOn && q.Tree != nil {
			out, err := CrossCheckBase(g.cache, g.backend, g.engine, q.Tree, base, cat, 0, 0)
			switch {
			case err != nil:
				bkChecks[i] = backendCheck{checked: true, diff: true, detail: err.Error()}
			case out.Skipped || out.Capped:
				// Nothing independent to compare (backend == engine; caps
				// cannot trip at (0,0)).
			case out.Verdict == exec.VerdictMismatch:
				bkChecks[i] = backendCheck{checked: true, diff: true, detail: out.Detail}
			default:
				bkChecks[i] = backendCheck{checked: true}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	rep.PlanExecutions = len(distinct)
	for i, bc := range bkChecks {
		if !bc.checked {
			continue
		}
		rep.BackendChecks++
		if bc.diff {
			rep.BackendDisagreements = append(rep.BackendDisagreements,
				BackendDisagreement{Query: g.Queries[distinct[i]], Detail: bc.detail})
		}
	}

	// Phase 2: execute every edge's Plan(q,¬R) in parallel, skipping plans
	// identical to the base. Results land in assignment-indexed slots so the
	// report is deterministic.
	type edgeExec struct {
		skipped      bool
		mismatch     *Mismatch
		undetermined *Undetermined
	}
	edges := make([]edgeExec, len(sol.Assignments))
	err = par.ForEachErr(g.workers, len(sol.Assignments), func(i int) error {
		a := sol.Assignments[i]
		q := g.Queries[a.Query]
		t := g.Targets[a.Target]
		base := bases[queryOf[a.Query]]
		var plan *physical.Expr
		if plan = g.EdgePlan(a.Query, t); plan == nil {
			return fmt.Errorf("suite: no plan for query %d with %s disabled", a.Query, t)
		}
		out, err := CompareEdgeCached(g.cache, g.engine, cat, base, plan, 0, 0)
		if err != nil {
			return fmt.Errorf("suite: executing query %d with %s disabled: %w", a.Query, t, err)
		}
		if out.Skipped {
			edges[i].skipped = true
			return nil
		}
		switch out.Verdict {
		case exec.VerdictMismatch:
			edges[i].mismatch = &Mismatch{
				Target: t, Query: q, Detail: out.Detail,
				BasePlan: base.Plan.String(), EdgePlan: plan.String(),
			}
		case exec.VerdictUndetermined:
			edges[i].undetermined = &Undetermined{Target: t, Query: q, Detail: out.Detail}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i := range edges {
		if edges[i].skipped {
			rep.SkippedIdentical++
			continue
		}
		rep.PlanExecutions++
		if edges[i].mismatch != nil {
			rep.Mismatches = append(rep.Mismatches, *edges[i].mismatch)
		}
		if edges[i].undetermined != nil {
			rep.Undetermined = append(rep.Undetermined, *edges[i].undetermined)
		}
	}
	return rep, nil
}
