package suite

import (
	"fmt"
	"testing"

	"qtrtest/internal/catalog"
	"qtrtest/internal/core/qgen"
	"qtrtest/internal/exec"
	"qtrtest/internal/opt"
	"qtrtest/internal/rules"
)

// TestEveryExplorationRuleIsSound applies the paper's correctness
// methodology (§2.3) to every exploration rule in the registry: generate
// queries that exercise the rule, execute Plan(q) and Plan(q,¬{r}), and
// require identical result multisets. This is simultaneously the strongest
// soundness test of the 30 rule implementations and an end-to-end test of
// generation, optimization and execution.
func TestEveryExplorationRuleIsSound(t *testing.T) {
	cat := catalog.LoadTPCH(catalog.DefaultTPCHConfig())
	o := opt.New(rules.DefaultRegistry(), cat)

	for _, r := range rules.ExplorationRules() {
		r := r
		t.Run(fmt.Sprintf("rule%02d_%s", r.ID(), r.Name()), func(t *testing.T) {
			gen, err := qgen.New(o, qgen.Config{Seed: 1000 + int64(r.ID()), MaxTrials: 256, ExtraOps: 2})
			if err != nil {
				t.Fatal(err)
			}
			for n := 0; n < 3; n++ {
				q, err := gen.GeneratePattern(r.ID())
				if err != nil {
					t.Fatalf("query %d: %v", n, err)
				}
				resOn, err := o.Optimize(q.Tree, q.MD, opt.Options{})
				if err != nil {
					t.Fatalf("query %d optimize: %v", n, err)
				}
				rowsOn, err := exec.Run(resOn.Plan, cat)
				if err != nil {
					t.Fatalf("query %d execute: %v\nSQL: %s\nplan:\n%s", n, err, q.SQL, resOn.Plan)
				}
				resOff, err := o.Optimize(q.Tree, q.MD, opt.Options{Disabled: rules.NewSet(r.ID())})
				if err != nil {
					t.Fatalf("query %d optimize off: %v", n, err)
				}
				if resOff.Plan.Hash() == resOn.Plan.Hash() {
					continue // identical plans, identical results (footnote 1)
				}
				rowsOff, err := exec.Run(resOff.Plan, cat)
				if err != nil {
					t.Fatalf("query %d execute off: %v\nSQL: %s\nplan:\n%s", n, err, q.SQL, resOff.Plan)
				}
				if !exec.EqualMultisets(rowsOn, rowsOff) {
					t.Errorf("CORRECTNESS BUG in %s: %s\nSQL: %s\nplan on:\n%s\nplan off:\n%s",
						r.Name(), exec.DiffSummary(rowsOn, rowsOff), q.SQL, resOn.Plan, resOff.Plan)
				}
			}
		})
	}
}

// TestRandomDifferentialHarness is the stochastic methodology of §4 at small
// scale: random queries, and for every exploration rule each exercises, a
// rule-on/rule-off differential execution.
func TestRandomDifferentialHarness(t *testing.T) {
	cat := catalog.LoadTPCH(catalog.DefaultTPCHConfig())
	o := opt.New(rules.DefaultRegistry(), cat)
	gen, err := qgen.New(o, qgen.Config{Seed: 77, MaxTrials: 1})
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for i := 0; i < 40; i++ {
		q, err := gen.GenerateRandom(nil) // no target: any random query
		if err != nil {
			t.Fatal(err)
		}
		resOn, err := o.Optimize(q.Tree, q.MD, opt.Options{})
		if err != nil {
			t.Fatal(err)
		}
		rowsOn, err := exec.Run(resOn.Plan, cat)
		if err != nil {
			t.Fatalf("execute: %v\nSQL: %s\nplan:\n%s", err, q.SQL, resOn.Plan)
		}
		for _, id := range resOn.RuleSet.Sorted() {
			if id > 100 {
				continue
			}
			resOff, err := o.Optimize(q.Tree, q.MD, opt.Options{Disabled: rules.NewSet(id)})
			if err != nil {
				t.Fatal(err)
			}
			if resOff.Plan.Hash() == resOn.Plan.Hash() {
				continue
			}
			rowsOff, err := exec.Run(resOff.Plan, cat)
			if err != nil {
				t.Fatalf("execute off rule %d: %v\nSQL: %s", id, err, q.SQL)
			}
			checked++
			if !exec.EqualMultisets(rowsOn, rowsOff) {
				t.Errorf("rule %d changes results of random query\nSQL: %s\ndiff: %s",
					id, q.SQL, exec.DiffSummary(rowsOn, rowsOff))
			}
		}
	}
	if checked == 0 {
		t.Error("differential harness never compared distinct plans")
	}
}

// TestInjectedBugIsCaught registers a deliberately unsound rule and checks
// the framework flags it — the negative control for the two tests above.
func TestInjectedBugIsCaught(t *testing.T) {
	cat := catalog.LoadTPCH(catalog.DefaultTPCHConfig())
	buggy := buggySwapProjectRule()
	o := opt.New(rules.RegistryWith(buggy), cat)

	gen, err := qgen.New(o, qgen.Config{Seed: 5, MaxTrials: 256, ExtraOps: 1})
	if err != nil {
		t.Fatal(err)
	}
	caught := false
	for n := 0; n < 10 && !caught; n++ {
		q, err := gen.GeneratePattern(buggy.ID())
		if err != nil {
			t.Fatalf("cannot generate for buggy rule: %v", err)
		}
		resOn, err := o.Optimize(q.Tree, q.MD, opt.Options{})
		if err != nil {
			t.Fatal(err)
		}
		resOff, err := o.Optimize(q.Tree, q.MD, opt.Options{Disabled: rules.NewSet(buggy.ID())})
		if err != nil {
			t.Fatal(err)
		}
		if resOn.Plan.Hash() == resOff.Plan.Hash() {
			continue
		}
		rowsOn, err := exec.Run(resOn.Plan, cat)
		if err != nil {
			t.Fatal(err)
		}
		rowsOff, err := exec.Run(resOff.Plan, cat)
		if err != nil {
			t.Fatal(err)
		}
		if !exec.EqualMultisets(rowsOn, rowsOff) {
			caught = true
		}
	}
	if !caught {
		t.Error("injected bug was never detected — oracle or generation regressed")
	}
}
