package suite

import (
	"errors"
	"fmt"

	"qtrtest/internal/catalog"
	"qtrtest/internal/datum"
	"qtrtest/internal/exec"
	"qtrtest/internal/logical"
	"qtrtest/internal/rescache"
)

// This file wires the independent-backend cross-check into the campaign
// oracles. The differential and metamorphic oracles are self-differential:
// both sides execute on the same engine, so a fault shared by the optimizer
// and executor is invisible to them. CrossCheckBase replays a base query on
// a second engine and compares under the same order-aware oracle, turning
// that shared-fault class into ordinary findings.

// CrossCheckBase replays base's query on an independent backend and
// compares the results through the result cache with the order-aware
// oracle.
//
// A tree-capable backend (exec.HasTreeBackend) evaluates the query's
// *logical* tree — the pre-optimizer form — so an optimizer fault in the
// base plan cannot replay itself into the cross-check; a built-in engine
// backend re-executes the base plan. Budget trips on the backend side
// surface as Capped (never a verdict), keeping Capped outcomes
// backend-independent per the budget-parity contract (DESIGN.md §15). An
// execution error on the backend when the base succeeded is itself a
// semantic divergence and is returned as an error for the caller to report.
func CrossCheckBase(rc *rescache.Cache, backend, primary exec.Engine, tree *logical.Expr, base *BaseExec, cat *catalog.Catalog, maxRows int, maxWork int64) (EdgeOutcome, error) {
	if backend == primary {
		return EdgeOutcome{Skipped: true}, nil
	}
	var (
		rows  []datum.Row
		order exec.PlanOrder
		err   error
	)
	if exec.HasTreeBackend(backend) {
		if tree == nil {
			return EdgeOutcome{}, fmt.Errorf("suite: backend %v needs the logical tree for a cross-check", backend)
		}
		rows, err = rc.RunTree(backend, tree, cat, maxRows, maxWork)
		order = exec.TreeOrder(tree)
	} else {
		rows, err = rc.Run(backend, base.Plan, cat, maxRows, maxWork)
		order = base.Order
	}
	if errors.Is(err, exec.ErrRowLimit) {
		return EdgeOutcome{Capped: true}, nil
	}
	if err != nil {
		return EdgeOutcome{}, fmt.Errorf("backend %v execution: %w", backend, err)
	}
	verdict, detail := exec.CompareResults(base.Rows, base.Order, rows, order)
	return EdgeOutcome{Verdict: verdict, Detail: detail}, nil
}
