package suite

import (
	"fmt"
	"sort"
)

// Baseline is the BASELINE method of §2.3: each target executes exactly the
// k queries generated for it, and nothing is shared — the cost is
// Σ_i Σ_{q∈TS_i} [Cost(q) + Cost(q,¬r_i)].
func (g *Graph) Baseline() (*Solution, error) {
	before := g.coster.calls
	var asg []Assignment
	for ti, t := range g.Targets {
		n := 0
		for _, q := range g.Queries {
			if q.GeneratedFor != ti {
				continue
			}
			asg = append(asg, Assignment{Target: ti, Query: q.Idx, EdgeCost: g.coster.cost(q, t)})
			n++
		}
		if n != g.K {
			return nil, fmt.Errorf("suite: target %s owns %d generated queries, want %d", t, n, g.K)
		}
	}
	sol := g.finalize("BASELINE", asg, false)
	sol.OptimizerCalls = g.coster.calls - before
	return sol, nil
}

// SetMultiCover is the greedy algorithm of Figure 5, adapted from the
// constrained set multicover approximation [19]: repeatedly pick the query
// with the highest benefit (remaining targets covered per unit of node
// cost) until every target is covered k times. Edge costs are ignored
// during selection — the experiments show where that hurts.
func (g *Graph) SetMultiCover() (*Solution, error) {
	before := g.coster.calls
	remaining := make([]int, len(g.Targets)) // coverage still needed
	for ti := range g.Targets {
		remaining[ti] = g.K
	}
	need := len(g.Targets) * g.K
	picked := make([]bool, len(g.Queries))
	assignedTo := make([][]int, len(g.Queries)) // query -> targets it covers on pick
	coverable := make([][]int, len(g.Queries))  // query -> targets with an edge
	for ti := range g.Targets {
		for _, qi := range g.Adj[ti] {
			coverable[qi] = append(coverable[qi], ti)
		}
	}
	for need > 0 {
		bestQ, bestCovers := -1, 0
		bestBenefit := -1.0
		for qi, q := range g.Queries {
			if picked[qi] {
				continue
			}
			covers := 0
			for _, ti := range coverable[qi] {
				if remaining[ti] > 0 {
					covers++
				}
			}
			if covers == 0 {
				continue
			}
			cost := q.Cost
			if cost <= 0 {
				cost = 1e-9
			}
			benefit := float64(covers) / cost
			if benefit > bestBenefit {
				bestBenefit = benefit
				bestQ = qi
				bestCovers = covers
			}
		}
		if bestQ < 0 {
			return nil, fmt.Errorf("suite: set multicover is infeasible: %d coverage slots unfilled", need)
		}
		picked[bestQ] = true
		for _, ti := range coverable[bestQ] {
			if remaining[ti] > 0 {
				remaining[ti]--
				need--
				assignedTo[bestQ] = append(assignedTo[bestQ], ti)
			}
		}
		_ = bestCovers
	}
	var asg []Assignment
	for qi, targets := range assignedTo {
		for _, ti := range targets {
			asg = append(asg, Assignment{
				Target: ti, Query: qi,
				EdgeCost: g.coster.cost(g.Queries[qi], g.Targets[ti]),
			})
		}
	}
	sol := g.finalize("SMC", asg, true)
	sol.OptimizerCalls = g.coster.calls - before
	return sol, nil
}

// TopKIndependent is the algorithm of Figure 6: independently for every
// target, pick the k edges with the lowest Cost(q,¬R). It is a factor-2
// approximation of the optimal compression (§5.2).
func (g *Graph) TopKIndependent() (*Solution, error) {
	before := g.coster.calls
	var asg []Assignment
	for ti, t := range g.Targets {
		cand := g.Adj[ti]
		if len(cand) < g.K {
			return nil, fmt.Errorf("suite: target %s has only %d covering queries, want %d", t, len(cand), g.K)
		}
		type edge struct {
			q    int
			cost float64
		}
		edges := make([]edge, len(cand))
		for i, qi := range cand {
			edges[i] = edge{q: qi, cost: g.coster.cost(g.Queries[qi], t)}
		}
		sort.Slice(edges, func(i, j int) bool {
			if edges[i].cost != edges[j].cost {
				return edges[i].cost < edges[j].cost
			}
			return edges[i].q < edges[j].q
		})
		for _, e := range edges[:g.K] {
			asg = append(asg, Assignment{Target: ti, Query: e.q, EdgeCost: e.cost})
		}
	}
	sol := g.finalize("TOPK", asg, true)
	sol.OptimizerCalls = g.coster.calls - before
	return sol, nil
}

// TopKMonotonic is TopKIndependent with the §5.3.1 optimization: since
// Cost(q) ≤ Cost(q,¬R) for a well-behaved optimizer, scanning candidates in
// increasing node-cost order lets the algorithm stop computing edge costs as
// soon as the next node cost exceeds the current k-th best edge cost. It
// returns the same solution while invoking the optimizer far less often.
func (g *Graph) TopKMonotonic() (*Solution, error) {
	before := g.coster.calls
	var asg []Assignment
	for ti, t := range g.Targets {
		cand := append([]int(nil), g.Adj[ti]...)
		if len(cand) < g.K {
			return nil, fmt.Errorf("suite: target %s has only %d covering queries, want %d", t, len(cand), g.K)
		}
		sort.Slice(cand, func(i, j int) bool {
			ci, cj := g.Queries[cand[i]].Cost, g.Queries[cand[j]].Cost
			if ci != cj {
				return ci < cj
			}
			return cand[i] < cand[j]
		})
		type edge struct {
			q    int
			cost float64
		}
		var best []edge // kept sorted ascending by cost, size ≤ K
		insert := func(e edge) {
			pos := sort.Search(len(best), func(i int) bool {
				if best[i].cost != e.cost {
					return best[i].cost > e.cost
				}
				return best[i].q > e.q
			})
			best = append(best, edge{})
			copy(best[pos+1:], best[pos:])
			best[pos] = e
			if len(best) > g.K {
				best = best[:g.K]
			}
		}
		for _, qi := range cand {
			if len(best) == g.K && g.Queries[qi].Cost > best[g.K-1].cost {
				// Every remaining candidate has node cost (and therefore
				// edge cost) strictly above the current k-th best edge; no
				// remaining edge can enter the top k.
				break
			}
			insert(edge{q: qi, cost: g.coster.cost(g.Queries[qi], t)})
		}
		for _, e := range best {
			asg = append(asg, Assignment{Target: ti, Query: e.q, EdgeCost: e.cost})
		}
	}
	sol := g.finalize("TOPK-MONO", asg, true)
	sol.OptimizerCalls = g.coster.calls - before
	return sol, nil
}
