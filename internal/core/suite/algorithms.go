package suite

import (
	"fmt"
	"sort"

	"qtrtest/internal/par"
)

// flatten concatenates per-target assignment slices in target order; the
// parallel algorithms write into index-addressed slots, so the flattened
// order matches what a sequential run would have produced.
func flatten(perTarget [][]Assignment) []Assignment {
	n := 0
	for _, a := range perTarget {
		n += len(a)
	}
	out := make([]Assignment, 0, n)
	for _, a := range perTarget {
		out = append(out, a...)
	}
	return out
}

// Baseline is the BASELINE method of §2.3: each target executes exactly the
// k queries generated for it, and nothing is shared — the cost is
// Σ_i Σ_{q∈TS_i} [Cost(q) + Cost(q,¬r_i)].
func (g *Graph) Baseline() (*Solution, error) {
	before := g.coster.calls.Load()
	perTarget := make([][]Assignment, len(g.Targets))
	err := par.ForEachErr(g.workers, len(g.Targets), func(ti int) error {
		t := g.Targets[ti]
		var asg []Assignment
		for _, q := range g.Queries {
			if q.GeneratedFor != ti {
				continue
			}
			asg = append(asg, Assignment{Target: ti, Query: q.Idx, EdgeCost: g.coster.cost(q, t)})
		}
		if len(asg) != g.K {
			return fmt.Errorf("suite: target %s owns %d generated queries, want %d", t, len(asg), g.K)
		}
		perTarget[ti] = asg
		return nil
	})
	if err != nil {
		return nil, err
	}
	sol := g.finalize("BASELINE", flatten(perTarget), false)
	sol.OptimizerCalls = int(g.coster.calls.Load() - before)
	return sol, nil
}

// SetMultiCover is the greedy algorithm of Figure 5, adapted from the
// constrained set multicover approximation [19]: repeatedly pick the query
// with the highest benefit (remaining targets covered per unit of node
// cost) until every target is covered k times. Edge costs are ignored
// during selection — the experiments show where that hurts.
func (g *Graph) SetMultiCover() (*Solution, error) {
	before := g.coster.calls.Load()
	remaining := make([]int, len(g.Targets)) // coverage still needed
	for ti := range g.Targets {
		remaining[ti] = g.K
	}
	need := len(g.Targets) * g.K
	picked := make([]bool, len(g.Queries))
	assignedTo := make([][]int, len(g.Queries)) // query -> targets it covers on pick
	coverable := make([][]int, len(g.Queries))  // query -> targets with an edge
	for ti := range g.Targets {
		for _, qi := range g.Adj[ti] {
			coverable[qi] = append(coverable[qi], ti)
		}
	}
	for need > 0 {
		bestQ, bestCovers := -1, 0
		bestBenefit := -1.0
		for qi, q := range g.Queries {
			if picked[qi] {
				continue
			}
			covers := 0
			for _, ti := range coverable[qi] {
				if remaining[ti] > 0 {
					covers++
				}
			}
			if covers == 0 {
				continue
			}
			cost := q.Cost
			if cost <= 0 {
				cost = 1e-9
			}
			benefit := float64(covers) / cost
			if benefit > bestBenefit {
				bestBenefit = benefit
				bestQ = qi
				bestCovers = covers
			}
		}
		if bestQ < 0 {
			return nil, fmt.Errorf("suite: set multicover is infeasible: %d coverage slots unfilled", need)
		}
		picked[bestQ] = true
		for _, ti := range coverable[bestQ] {
			if remaining[ti] > 0 {
				remaining[ti]--
				need--
				assignedTo[bestQ] = append(assignedTo[bestQ], ti)
			}
		}
		_ = bestCovers
	}
	// The greedy selection above consults only node costs; the edge costs of
	// the chosen assignments are independent of one another, so they are
	// materialized on the worker pool.
	type pick struct{ qi, ti int }
	var picks []pick
	for qi, targets := range assignedTo {
		for _, ti := range targets {
			picks = append(picks, pick{qi: qi, ti: ti})
		}
	}
	asg := make([]Assignment, len(picks))
	par.ForEach(g.workers, len(picks), func(i int) {
		p := picks[i]
		asg[i] = Assignment{
			Target: p.ti, Query: p.qi,
			EdgeCost: g.coster.cost(g.Queries[p.qi], g.Targets[p.ti]),
		}
	})
	sol := g.finalize("SMC", asg, true)
	sol.OptimizerCalls = int(g.coster.calls.Load() - before)
	return sol, nil
}

// TopKIndependent is the algorithm of Figure 6: independently for every
// target, pick the k edges with the lowest Cost(q,¬R). It is a factor-2
// approximation of the optimal compression (§5.2). Targets are processed on
// the worker pool — "independently for every target" is literal — and the
// single-flight edge cache guarantees each (q,¬R) optimizes once even when
// two targets race for a shared query's edge.
func (g *Graph) TopKIndependent() (*Solution, error) {
	before := g.coster.calls.Load()
	perTarget := make([][]Assignment, len(g.Targets))
	err := par.ForEachErr(g.workers, len(g.Targets), func(ti int) error {
		t := g.Targets[ti]
		cand := g.Adj[ti]
		if len(cand) < g.K {
			return fmt.Errorf("suite: target %s has only %d covering queries, want %d", t, len(cand), g.K)
		}
		type edge struct {
			q    int
			cost float64
		}
		edges := make([]edge, len(cand))
		for i, qi := range cand {
			edges[i] = edge{q: qi, cost: g.coster.cost(g.Queries[qi], t)}
		}
		sort.Slice(edges, func(i, j int) bool {
			if edges[i].cost != edges[j].cost {
				return edges[i].cost < edges[j].cost
			}
			return edges[i].q < edges[j].q
		})
		asg := make([]Assignment, g.K)
		for i, e := range edges[:g.K] {
			asg[i] = Assignment{Target: ti, Query: e.q, EdgeCost: e.cost}
		}
		perTarget[ti] = asg
		return nil
	})
	if err != nil {
		return nil, err
	}
	sol := g.finalize("TOPK", flatten(perTarget), true)
	sol.OptimizerCalls = int(g.coster.calls.Load() - before)
	return sol, nil
}

// TopKMonotonic is TopKIndependent with the §5.3.1 optimization: since
// Cost(q) ≤ Cost(q,¬R) for a well-behaved optimizer, scanning candidates in
// increasing node-cost order lets the algorithm stop computing edge costs as
// soon as the next node cost exceeds the current k-th best edge cost. It
// returns the same solution while invoking the optimizer far less often.
// Targets run on the worker pool; within a target the candidate scan stays
// sequential because each edge-cost decision (compute or prune) depends on
// the k-th best edge seen so far — that keeps the set of optimizer calls,
// and hence Figure 14's counts, identical for every worker count.
func (g *Graph) TopKMonotonic() (*Solution, error) {
	before := g.coster.calls.Load()
	perTarget := make([][]Assignment, len(g.Targets))
	err := par.ForEachErr(g.workers, len(g.Targets), func(ti int) error {
		t := g.Targets[ti]
		cand := append([]int(nil), g.Adj[ti]...)
		if len(cand) < g.K {
			return fmt.Errorf("suite: target %s has only %d covering queries, want %d", t, len(cand), g.K)
		}
		sort.Slice(cand, func(i, j int) bool {
			ci, cj := g.Queries[cand[i]].Cost, g.Queries[cand[j]].Cost
			if ci != cj {
				return ci < cj
			}
			return cand[i] < cand[j]
		})
		type edge struct {
			q    int
			cost float64
		}
		var best []edge // kept sorted ascending by cost, size ≤ K
		insert := func(e edge) {
			pos := sort.Search(len(best), func(i int) bool {
				if best[i].cost != e.cost {
					return best[i].cost > e.cost
				}
				return best[i].q > e.q
			})
			best = append(best, edge{})
			copy(best[pos+1:], best[pos:])
			best[pos] = e
			if len(best) > g.K {
				best = best[:g.K]
			}
		}
		for _, qi := range cand {
			if len(best) == g.K && g.Queries[qi].Cost > best[g.K-1].cost {
				// Every remaining candidate has node cost (and therefore
				// edge cost) strictly above the current k-th best edge; no
				// remaining edge can enter the top k.
				break
			}
			insert(edge{q: qi, cost: g.coster.cost(g.Queries[qi], t)})
		}
		asg := make([]Assignment, len(best))
		for i, e := range best {
			asg[i] = Assignment{Target: ti, Query: e.q, EdgeCost: e.cost}
		}
		perTarget[ti] = asg
		return nil
	})
	if err != nil {
		return nil, err
	}
	sol := g.finalize("TOPK-MONO", flatten(perTarget), true)
	sol.OptimizerCalls = int(g.coster.calls.Load() - before)
	return sol, nil
}
