package suite

import (
	"math"
	"testing"

	"qtrtest/internal/logical"
	"qtrtest/internal/rules"
)

// syntheticGraph builds a Graph directly (no query generation) with
// prescribed node costs, coverage and edge costs — the bipartite abstraction
// of §4.1 in isolation, so algorithm behavior is testable exactly.
//
// edges[t][q] holds Cost(q,¬target_t), or a negative number for "no edge".
func syntheticGraph(t *testing.T, k int, nodeCosts []float64, edges [][]float64) *Graph {
	t.Helper()
	g := &Graph{K: k, coster: newEdgeCoster(nil)}
	for ti := range edges {
		g.Targets = append(g.Targets, Target{Rules: []rules.ID{rules.ID(ti + 1)}})
	}
	for qi, c := range nodeCosts {
		rs := make(rules.Set)
		for ti := range edges {
			if edges[ti][qi] >= 0 {
				rs.Add(rules.ID(ti + 1))
			}
		}
		q := &Query{
			Idx: qi, SQL: string(rune('a' + qi)),
			Tree:    &logical.Expr{Op: logical.OpGet},
			RuleSet: rs, Cost: c,
			GeneratedFor: -1,
		}
		g.Queries = append(g.Queries, q)
		for ti := range edges {
			if edges[ti][qi] >= 0 {
				g.coster.prime(qi, g.Targets[ti], edgeResult{cost: edges[ti][qi]})
			}
		}
	}
	g.buildAdjacency()
	return g
}

// TestPaperExample1 reproduces Example 1 from §4.1 exactly: two rules, two
// queries, k=1. BASELINE costs 500; sharing q2 costs 340.
func TestPaperExample1(t *testing.T) {
	g := syntheticGraph(t, 1,
		[]float64{100, 100}, // Cost(q1)=Cost(q2)=100
		[][]float64{
			{180, 120}, // rule r1: edges to q1 (180) and q2 (120)
			{-1, 120},  // rule r2: edge to q2 only (120)
		})
	// Assign baseline ownership: q1 was generated for r1, q2 for r2.
	g.Queries[0].GeneratedFor = 0
	g.Queries[1].GeneratedFor = 1

	base, err := g.Baseline()
	if err != nil {
		t.Fatal(err)
	}
	if base.TotalCost != 500 {
		t.Errorf("BASELINE = %f, paper says 500", base.TotalCost)
	}
	topk, err := g.TopKIndependent()
	if err != nil {
		t.Fatal(err)
	}
	if topk.TotalCost != 340 {
		t.Errorf("TOPK = %f, paper's shared strategy costs 340", topk.TotalCost)
	}
	smc, err := g.SetMultiCover()
	if err != nil {
		t.Fatal(err)
	}
	if smc.TotalCost != 340 {
		t.Errorf("SMC = %f, want 340 (q2 covers both rules at equal node cost)", smc.TotalCost)
	}
}

// TestSMCIgnoresEdgeCosts constructs the pathology of §6.2.2: a query cheap
// to optimize normally but catastrophically expensive with a rule disabled.
// SMC picks it anyway; TOPK avoids it.
func TestSMCIgnoresEdgeCosts(t *testing.T) {
	g := syntheticGraph(t, 1,
		[]float64{10, 50, 50},
		[][]float64{
			{100000, 60, -1}, // r1: the cheap query's edge explodes
			{100000, -1, 60},
		})
	g.Queries[0].GeneratedFor = 0
	g.Queries[1].GeneratedFor = 0 // unused by SMC/TOPK
	g.Queries[2].GeneratedFor = 1

	smc, err := g.SetMultiCover()
	if err != nil {
		t.Fatal(err)
	}
	topk, err := g.TopKIndependent()
	if err != nil {
		t.Fatal(err)
	}
	if smc.TotalCost <= topk.TotalCost {
		t.Errorf("expected SMC (%f) to lose to TOPK (%f) under hostile edge costs", smc.TotalCost, topk.TotalCost)
	}
	if topk.TotalCost != (50+60)+(50+60) {
		t.Errorf("TOPK = %f, want 220", topk.TotalCost)
	}
}

// TestTopKPicksKCheapestEdges checks exact selection with k=2.
func TestTopKPicksKCheapestEdges(t *testing.T) {
	g := syntheticGraph(t, 2,
		[]float64{10, 20, 30, 40},
		[][]float64{
			{15, 25, 12, 99},
		})
	sol, err := g.TopKIndependent()
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Assignments) != 2 {
		t.Fatalf("assignments = %d", len(sol.Assignments))
	}
	picked := map[int]bool{}
	for _, a := range sol.Assignments {
		picked[a.Query] = true
	}
	if !picked[0] || !picked[2] {
		t.Errorf("TOPK picked %v, want queries 0 and 2 (edges 15, 12)", sol.Assignments)
	}
	// Total: node costs 10+30 + edges 15+12 = 67.
	if sol.TotalCost != 67 {
		t.Errorf("TOPK total = %f, want 67", sol.TotalCost)
	}
}

// TestMonotonicEqualsFullOnSynthetic checks the two TOPK variants agree on
// adversarial tie patterns (clamped costs guarantee node <= edge).
func TestMonotonicEqualsFullOnSynthetic(t *testing.T) {
	g := syntheticGraph(t, 2,
		[]float64{10, 10, 10, 30, 30},
		[][]float64{
			{10, 10, 10, 30, 31},
			{12, 10, -1, 35, 30},
		})
	full, err := g.TopKIndependent()
	if err != nil {
		t.Fatal(err)
	}
	mono, err := g.TopKMonotonic()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(full.TotalCost-mono.TotalCost) > 1e-9 {
		t.Errorf("full %f vs mono %f", full.TotalCost, mono.TotalCost)
	}
}

// TestInsufficientCoverageErrors: a target with fewer than k covering
// queries must fail loudly, not silently under-validate.
func TestInsufficientCoverageErrors(t *testing.T) {
	g := syntheticGraph(t, 2,
		[]float64{10},
		[][]float64{{15}})
	if _, err := g.TopKIndependent(); err == nil {
		t.Error("TopK must error when coverage < k")
	}
	if _, err := g.TopKMonotonic(); err == nil {
		t.Error("TopKMonotonic must error when coverage < k")
	}
}

// TestValidateRejectsBadSolutions exercises the §4.1 invariant checks.
func TestValidateRejectsBadSolutions(t *testing.T) {
	g := syntheticGraph(t, 1,
		[]float64{10, 20},
		[][]float64{{15, 25}})
	ok := &Solution{Assignments: []Assignment{{Target: 0, Query: 0, EdgeCost: 15}}}
	if err := g.Validate(ok); err != nil {
		t.Errorf("valid solution rejected: %v", err)
	}
	dup := &Solution{Assignments: []Assignment{
		{Target: 0, Query: 0}, {Target: 0, Query: 0},
	}}
	if err := g.Validate(dup); err == nil {
		t.Error("duplicate assignment accepted")
	}
	short := &Solution{}
	if err := g.Validate(short); err == nil {
		t.Error("under-covered solution accepted")
	}
	g2 := syntheticGraph(t, 1, []float64{10}, [][]float64{{-1}})
	bad := &Solution{Assignments: []Assignment{{Target: 0, Query: 0}}}
	if err := g2.Validate(bad); err == nil {
		t.Error("non-edge assignment accepted")
	}
}

// TestMatchingOptimalOnSynthetic verifies the Hungarian solver finds the
// optimum on a case where greedy per-target choices are suboptimal.
func TestMatchingOptimalOnSynthetic(t *testing.T) {
	// Two targets, k=1, two queries; both cover both targets.
	// q0: node 10; edges r1:10, r2:100
	// q1: node 10; edges r1:11, r2:20
	// Greedy for r1 takes q0 (cheapest edge), forcing q1 onto r2: 10+10+10+20=50.
	// Alternative: q1→r1, q0→r2: 10+11+10+100=131. Optimum is 50.
	g := syntheticGraph(t, 1,
		[]float64{10, 10},
		[][]float64{
			{10, 11},
			{100, 20},
		})
	sol, err := g.MatchingNoShare()
	if err != nil {
		t.Fatal(err)
	}
	if sol.TotalCost != 50 {
		t.Errorf("matching total = %f, want 50", sol.TotalCost)
	}
}

// TestEdgeCostClampInvariant: the coster enforces Cost(q) <= Cost(q,¬R),
// which TopKMonotonic's pruning depends on.
func TestEdgeCostClampInvariant(t *testing.T) {
	// Exercised through the real optimizer: every edge of a small real
	// graph satisfies the invariant.
	targets := SingletonTargets(explorationIDs(5))
	g, _, _ := newGraph(t, targets, 2)
	for ti, t2 := range g.Targets {
		for _, qi := range g.Adj[ti] {
			ec := g.EdgeCost(qi, t2)
			if !math.IsInf(ec, 1) && ec < g.Queries[qi].Cost-1e-9 {
				t.Fatalf("edge cost %f below node cost %f", ec, g.Queries[qi].Cost)
			}
		}
	}
}
