package suite

import (
	"math"
	"testing"

	"qtrtest/internal/catalog"
	"qtrtest/internal/opt"
	"qtrtest/internal/rules"
)

// suiteRun captures everything a campaign produces that the determinism
// guarantee covers: the generated suite, the solutions of every compression
// algorithm, their costs and their optimizer-call accounting.
type suiteRun struct {
	sqls      []string
	ruleSets  [][]rules.ID
	planHash  []string
	solutions map[string]*Solution
	calls     map[string]int
}

func runCampaign(t *testing.T, cat *catalog.Catalog, targets []Target, k int, workers int) *suiteRun {
	t.Helper()
	o := opt.New(rules.DefaultRegistry(), cat)
	g, err := Generate(o, targets, GenConfig{K: k, Seed: 7, ExtraOps: 2, Workers: workers})
	if err != nil {
		t.Fatalf("Generate(workers=%d): %v", workers, err)
	}
	run := &suiteRun{solutions: make(map[string]*Solution), calls: make(map[string]int)}
	for _, q := range g.Queries {
		run.sqls = append(run.sqls, q.SQL)
		run.ruleSets = append(run.ruleSets, q.RuleSet.Sorted())
		run.planHash = append(run.planHash, q.BasePlanHash)
	}
	for _, algo := range []struct {
		name string
		fn   func() (*Solution, error)
	}{
		{"SMC", g.SetMultiCover},
		{"TOPK", g.TopKIndependent},
		{"TOPK-MONO", func() (*Solution, error) { g.ResetOptimizerCalls(); return g.TopKMonotonic() }},
	} {
		sol, err := algo.fn()
		if err != nil {
			t.Fatalf("%s(workers=%d): %v", algo.name, workers, err)
		}
		run.solutions[algo.name] = sol
		run.calls[algo.name] = sol.OptimizerCalls
	}
	return run
}

func assertRunsIdentical(t *testing.T, label string, seq, par *suiteRun) {
	t.Helper()
	if len(seq.sqls) != len(par.sqls) {
		t.Fatalf("%s: suite sizes differ: %d vs %d", label, len(seq.sqls), len(par.sqls))
	}
	for i := range seq.sqls {
		if seq.sqls[i] != par.sqls[i] {
			t.Fatalf("%s: query %d differs:\n  seq: %s\n  par: %s", label, i, seq.sqls[i], par.sqls[i])
		}
		if seq.planHash[i] != par.planHash[i] {
			t.Errorf("%s: base plan of query %d differs", label, i)
		}
		a, b := seq.ruleSets[i], par.ruleSets[i]
		if len(a) != len(b) {
			t.Fatalf("%s: RuleSet of query %d differs: %v vs %v", label, i, a, b)
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("%s: RuleSet of query %d differs: %v vs %v", label, i, a, b)
			}
		}
	}
	for name, ssol := range seq.solutions {
		psol := par.solutions[name]
		if len(ssol.Assignments) != len(psol.Assignments) {
			t.Fatalf("%s/%s: assignment counts differ: %d vs %d", label, name, len(ssol.Assignments), len(psol.Assignments))
		}
		for i := range ssol.Assignments {
			sa, pa := ssol.Assignments[i], psol.Assignments[i]
			if sa.Target != pa.Target || sa.Query != pa.Query {
				t.Fatalf("%s/%s: assignment %d differs: %+v vs %+v", label, name, i, sa, pa)
			}
			if sa.EdgeCost != pa.EdgeCost && !(math.IsInf(sa.EdgeCost, 1) && math.IsInf(pa.EdgeCost, 1)) {
				t.Fatalf("%s/%s: edge cost %d differs: %v vs %v", label, name, i, sa.EdgeCost, pa.EdgeCost)
			}
		}
		if ssol.TotalCost != psol.TotalCost {
			t.Errorf("%s/%s: total cost differs: %v vs %v", label, name, ssol.TotalCost, psol.TotalCost)
		}
		if seq.calls[name] != par.calls[name] {
			t.Errorf("%s/%s: optimizer calls differ: %d vs %d", label, name, seq.calls[name], par.calls[name])
		}
	}
}

// TestParallelCampaignDeterministicTPCH asserts the engine's hard
// constraint: with the same seed, a sequential run (workers=1) and a
// parallel run (workers=8) of suite generation + SMC + TOPK + TopKMonotonic
// produce identical suites, Solution assignments, costs and OptimizerCalls
// on the TPC-H schema.
func TestParallelCampaignDeterministicTPCH(t *testing.T) {
	cat := catalog.LoadTPCH(catalog.DefaultTPCHConfig())
	targets := SingletonTargets(explorationIDs(6))
	seq := runCampaign(t, cat, targets, 3, 1)
	par := runCampaign(t, cat, targets, 3, 8)
	assertRunsIdentical(t, "tpch/singletons", seq, par)
}

// TestParallelCampaignDeterministicTPCHPairs covers rule-pair targets, where
// the edge cache sees the heaviest concurrent sharing.
func TestParallelCampaignDeterministicTPCHPairs(t *testing.T) {
	if testing.Short() {
		t.Skip("pair campaign is slow")
	}
	cat := catalog.LoadTPCH(catalog.DefaultTPCHConfig())
	targets := PairTargets(explorationIDs(5))
	seq := runCampaign(t, cat, targets, 2, 1)
	par := runCampaign(t, cat, targets, 2, 8)
	assertRunsIdentical(t, "tpch/pairs", seq, par)
}

// TestParallelCampaignDeterministicStar repeats the guarantee on the star
// schema (§6.1's "other databases with different schemas").
func TestParallelCampaignDeterministicStar(t *testing.T) {
	cat := catalog.LoadStar(catalog.StarConfig{ScaleRows: 1.0, Seed: 42})
	targets := SingletonTargets(explorationIDs(6))
	seq := runCampaign(t, cat, targets, 3, 1)
	par := runCampaign(t, cat, targets, 3, 8)
	assertRunsIdentical(t, "star/singletons", seq, par)
}

// TestParallelRunReportDeterministic checks the execution phase: validation
// reports (executions, skips, mismatch list) are identical for sequential
// and parallel runners, and the runner performs zero optimizer calls when
// base plans were captured at generation time.
func TestParallelRunReportDeterministic(t *testing.T) {
	cat := catalog.LoadTPCH(catalog.DefaultTPCHConfig())
	o := opt.New(rules.DefaultRegistry(), cat)
	targets := SingletonTargets(explorationIDs(5))
	reports := make([]*Report, 2)
	for i, workers := range []int{1, 8} {
		g, err := Generate(o, targets, GenConfig{K: 2, Seed: 11, ExtraOps: 2, Workers: workers})
		if err != nil {
			t.Fatalf("Generate: %v", err)
		}
		sol, err := g.TopKIndependent()
		if err != nil {
			t.Fatalf("TopKIndependent: %v", err)
		}
		callsBefore := g.OptimizerCalls()
		rep, err := g.Run(sol, o, cat)
		if err != nil {
			t.Fatalf("Run(workers=%d): %v", workers, err)
		}
		if got := g.OptimizerCalls() - callsBefore; got != 0 {
			t.Errorf("Run(workers=%d) consumed %d optimizer calls, want 0", workers, got)
		}
		reports[i] = rep
	}
	seq, par := reports[0], reports[1]
	if seq.PlanExecutions != par.PlanExecutions || seq.SkippedIdentical != par.SkippedIdentical {
		t.Errorf("report counts differ: seq {%d,%d} vs par {%d,%d}",
			seq.PlanExecutions, seq.SkippedIdentical, par.PlanExecutions, par.SkippedIdentical)
	}
	if len(seq.Mismatches) != len(par.Mismatches) {
		t.Fatalf("mismatch counts differ: %d vs %d", len(seq.Mismatches), len(par.Mismatches))
	}
	for i := range seq.Mismatches {
		if seq.Mismatches[i].Query.SQL != par.Mismatches[i].Query.SQL {
			t.Errorf("mismatch %d differs", i)
		}
	}
}
