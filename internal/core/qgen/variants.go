package qgen

import (
	"fmt"
	"time"

	"qtrtest/internal/bind"
	"qtrtest/internal/logical"
	"qtrtest/internal/opt"
	"qtrtest/internal/rules"
	"qtrtest/internal/sqlgen"
)

// This file implements the §7 variants of the query generation problem:
//
//   - Relevance: a rule that is exercised may still not influence the final
//     plan. GenerateRelevant finds a query where turning the rule OFF makes
//     the optimizer pick a DIFFERENT plan.
//   - Interactions: beyond "both rules fired somewhere",
//     GenerateInteractionPair finds a query where rule r2 fires on an
//     expression that rule r1's substitution created (the optimizer tracks
//     substitution provenance to observe this).

// GenerateRelevant generates a query for which the rule is *relevant*: the
// plan chosen with the rule disabled differs from the plan chosen with it
// enabled. Every trial costs two optimizer calls.
func (g *Generator) GenerateRelevant(id rules.ID) (*Query, error) {
	p, err := g.Pattern(id)
	if err != nil {
		return nil, err
	}
	//qtrlint:allow wallclock telemetry only: Elapsed reports generation latency, never influences the query produced
	start := time.Now()
	for trial := 1; trial <= g.cfg.MaxTrials; trial++ {
		md := logical.NewMetadata(g.opt.Catalog())
		tree, err := g.instantiate(p, md)
		if err != nil {
			continue
		}
		for i := 0; i < g.cfg.ExtraOps; i++ {
			if tree, err = g.wrapRandomOp(tree, md); err != nil {
				break
			}
		}
		if err != nil {
			continue
		}
		q, ok, err := g.relevantTry(tree, md, id)
		if err != nil {
			return nil, err
		}
		if ok {
			q.Trials = trial
			q.Elapsed = time.Since(start)
			return q, nil
		}
	}
	return nil, fmt.Errorf("%w (RELEVANT, rule %d, %d trials)", ErrExhausted, id, g.cfg.MaxTrials)
}

func (g *Generator) relevantTry(tree *logical.Expr, md *logical.Metadata, id rules.ID) (*Query, bool, error) {
	sqlText, err := sqlgen.Generate(tree, md)
	if err != nil {
		return nil, false, err
	}
	bound, err := bind.BindSQL(sqlText, g.opt.Catalog())
	if err != nil {
		return nil, false, fmt.Errorf("qgen: generated SQL failed to bind: %w", err)
	}
	on, err := g.opt.Optimize(bound.Tree, bound.MD, opt.Options{})
	if err != nil {
		return nil, false, err
	}
	if !on.RuleSet.Contains(id) {
		return nil, false, nil
	}
	off, err := g.opt.Optimize(bound.Tree, bound.MD, opt.Options{Disabled: rules.NewSet(id)})
	if err != nil {
		// With the rule off the query may become unplannable (for
		// implementation rules); that certainly makes the rule relevant.
		return &Query{SQL: sqlText, Tree: bound.Tree, MD: bound.MD, RuleSet: on.RuleSet, Plan: on.Plan, Cost: on.Cost}, true, nil
	}
	if off.Plan.Hash() == on.Plan.Hash() {
		return nil, false, nil
	}
	return &Query{SQL: sqlText, Tree: bound.Tree, MD: bound.MD, RuleSet: on.RuleSet, Plan: on.Plan, Cost: on.Cost}, true, nil
}

// GenerateInteractionPair generates a query exhibiting the §7 rule
// interaction "r2 is exercised on an expression obtained by exercising r1".
// Compositions where r1's pattern feeds r2's generic slots are tried first,
// since they are the shapes most likely to produce the dependency.
func (g *Generator) GenerateInteractionPair(r1, r2 rules.ID) (*Query, error) {
	p1, err := g.Pattern(r1)
	if err != nil {
		return nil, err
	}
	p2, err := g.Pattern(r2)
	if err != nil {
		return nil, err
	}
	// Prefer substituting r1's pattern into r2's slots: then r1 rewrites a
	// subtree that sits exactly where r2 will look for it.
	var candidates []*rules.Pattern
	for i := range p2.Generics() {
		c := p2.Clone()
		*c.Generics()[i] = *p1.Clone()
		candidates = append(candidates, c)
	}
	candidates = append(candidates, ComposePatterns(p1, p2)...)

	//qtrlint:allow wallclock telemetry only: Elapsed reports generation latency, never influences the query produced
	start := time.Now()
	for trial := 1; trial <= g.cfg.MaxTrials; trial++ {
		p := candidates[(trial-1)%len(candidates)]
		md := logical.NewMetadata(g.opt.Catalog())
		tree, err := g.instantiate(p, md)
		if err != nil {
			continue
		}
		sqlText, err := sqlgen.Generate(tree, md)
		if err != nil {
			continue
		}
		bound, err := bind.BindSQL(sqlText, g.opt.Catalog())
		if err != nil {
			return nil, fmt.Errorf("qgen: generated SQL failed to bind: %w", err)
		}
		res, err := g.opt.Optimize(bound.Tree, bound.MD, opt.Options{})
		if err != nil {
			return nil, err
		}
		if res.Interactions[[2]rules.ID{r1, r2}] {
			return &Query{
				SQL: sqlText, Tree: bound.Tree, MD: bound.MD,
				RuleSet: res.RuleSet, Plan: res.Plan, Cost: res.Cost,
				Trials: trial, Elapsed: time.Since(start),
			}, nil
		}
	}
	return nil, fmt.Errorf("%w (INTERACTION, pair {%d,%d}, %d trials)", ErrExhausted, r1, r2, g.cfg.MaxTrials)
}
