package qgen

import (
	"errors"
	"fmt"

	"qtrtest/internal/datum"
	"qtrtest/internal/logical"
	"qtrtest/internal/rules"
	"qtrtest/internal/scalar"
)

// errCannotInstantiate signals that a pattern or operator cannot be given
// valid arguments against this catalog; the caller retries with a different
// shape.
var errCannotInstantiate = errors.New("qgen: cannot instantiate operator")

// instantiate turns a rule pattern into a concrete logical query tree
// (§3.1): generic operators become leaf subtrees (base table scans), and
// each concrete operator gets arguments chosen so that the known
// preconditions of the rules over that shape plausibly hold.
func (g *Generator) instantiate(p *rules.Pattern, md *logical.Metadata) (*logical.Expr, error) {
	if p.IsGeneric() {
		return g.randomLeaf(md)
	}
	kids := make([]*logical.Expr, len(p.Children))
	for i, pc := range p.Children {
		k, err := g.instantiate(pc, md)
		if err != nil {
			return nil, err
		}
		kids[i] = k
	}
	if p.Op == logical.OpGet {
		// Implementation-rule patterns have concrete Get leaves.
		return g.randomGet(md)
	}
	if len(kids) == 0 {
		// A concrete non-leaf operator in a pattern always carries its
		// children as generics; a bare one gets leaf children.
		arity := p.Op.Arity()
		for i := 0; i < arity; i++ {
			k, err := g.randomLeaf(md)
			if err != nil {
				return nil, err
			}
			kids = append(kids, k)
		}
	}
	return g.buildOp(p.Op, kids, md)
}

// randomLeaf produces the subtree standing in for a generic pattern slot: a
// base table scan.
func (g *Generator) randomLeaf(md *logical.Metadata) (*logical.Expr, error) {
	return g.randomGet(md)
}

func (g *Generator) randomGet(md *logical.Metadata) (*logical.Expr, error) {
	names := md.Catalog().TableNames()
	if len(names) == 0 {
		return nil, errors.New("qgen: catalog has no tables")
	}
	return md.AddTable(names[g.rng.Intn(len(names))])
}

// buildOp instantiates one operator's arguments over the given children.
func (g *Generator) buildOp(op logical.Op, kids []*logical.Expr, md *logical.Metadata) (*logical.Expr, error) {
	switch op {
	case logical.OpSelect:
		f, err := g.makeFilter(kids[0], md)
		if err != nil {
			return nil, err
		}
		return &logical.Expr{Op: logical.OpSelect, Children: kids, Filter: f}, nil

	case logical.OpProject:
		items, err := g.makeProjection(kids[0], md)
		if err != nil {
			return nil, err
		}
		return &logical.Expr{Op: logical.OpProject, Children: kids, Projs: items}, nil

	case logical.OpJoin, logical.OpLeftJoin, logical.OpSemiJoin, logical.OpAntiJoin:
		on, err := g.makeJoinPred(kids[0], kids[1], md)
		if err != nil {
			return nil, err
		}
		return &logical.Expr{Op: op, Children: kids, On: on}, nil

	case logical.OpGroupBy:
		gc, aggs, err := g.makeGrouping(kids[0], md)
		if err != nil {
			return nil, err
		}
		return &logical.Expr{Op: logical.OpGroupBy, Children: kids, GroupCols: gc, Aggs: aggs}, nil

	case logical.OpUnionAll:
		return g.makeUnion(kids[0], kids[1], md)

	case logical.OpLimit:
		return &logical.Expr{Op: logical.OpLimit, Children: kids, N: int64(1 + g.rng.Intn(100))}, nil

	case logical.OpSort:
		cols := kids[0].OutputCols()
		if len(cols) == 0 {
			return nil, errCannotInstantiate
		}
		key := logical.SortKey{Col: cols[g.rng.Intn(len(cols))], Desc: g.rng.Intn(2) == 0}
		return &logical.Expr{Op: logical.OpSort, Children: kids, Keys: []logical.SortKey{key}}, nil
	}
	return nil, fmt.Errorf("qgen: cannot instantiate operator %s", op)
}

// comparableCols returns the child's output columns usable in predicates,
// i.e. of a concrete comparable type.
func comparableCols(e *logical.Expr, md *logical.Metadata) []scalar.ColumnID {
	var out []scalar.ColumnID
	for _, c := range e.OutputCols() {
		switch md.Column(c).Type {
		case datum.TypeInt, datum.TypeFloat, datum.TypeString, datum.TypeDate:
			out = append(out, c)
		}
	}
	return out
}

// sampleConst draws a literal for comparisons against col, preferring an
// actual value from the base table so that predicates are selective but not
// always empty.
func (g *Generator) sampleConst(col scalar.ColumnID, md *logical.Metadata) scalar.Expr {
	if t, idx, ok := md.BaseColumn(col); ok && len(t.Rows) > 0 {
		row := t.Rows[g.rng.Intn(len(t.Rows))]
		return &scalar.Const{D: row[idx]}
	}
	switch md.Column(col).Type {
	case datum.TypeFloat:
		return &scalar.Const{D: datum.NewFloat(float64(g.rng.Intn(1000)))}
	case datum.TypeString:
		return &scalar.Const{D: datum.NewString("v")}
	case datum.TypeDate:
		return &scalar.Const{D: datum.NewDate(int64(g.rng.Intn(2557)))}
	default:
		return &scalar.Const{D: datum.NewInt(int64(g.rng.Intn(100)))}
	}
}

var cmpOps = []scalar.CmpOp{scalar.CmpEQ, scalar.CmpLT, scalar.CmpLE, scalar.CmpGT, scalar.CmpGE, scalar.CmpNE}

// makeFilter builds a selection predicate over the child. Shape-aware
// heuristics raise the chance that the rules matching Select(child) have
// their extra preconditions satisfied (§3.1: preconditions abstracted in the
// engine can be leveraged during generation):
//
//   - over a GroupBy, prefer filtering on grouping columns (rule 12);
//   - over a LeftJoin, filter the left side or null-reject the right side
//     (rules 8 and 9), each half the time.
func (g *Generator) makeFilter(child *logical.Expr, md *logical.Metadata) (scalar.Expr, error) {
	pool := comparableCols(child, md)
	switch child.Op {
	case logical.OpGroupBy:
		if len(child.GroupCols) > 0 && g.rng.Intn(4) > 0 {
			pool = filterByType(child.GroupCols, md)
		}
	case logical.OpLeftJoin:
		side := child.Children[g.rng.Intn(2)]
		pool = comparableCols(side, md)
	}
	if len(pool) == 0 {
		pool = comparableCols(child, md)
	}
	if len(pool) == 0 {
		return nil, errCannotInstantiate
	}
	col := pool[g.rng.Intn(len(pool))]
	cmp := &scalar.Cmp{
		Op: cmpOps[g.rng.Intn(len(cmpOps))],
		L:  &scalar.ColRef{ID: col},
		R:  g.sampleConst(col, md),
	}
	// Occasionally add a second conjunct or an IS NULL disjunct for variety.
	switch g.rng.Intn(5) {
	case 0:
		col2 := pool[g.rng.Intn(len(pool))]
		return &scalar.And{Kids: []scalar.Expr{cmp, &scalar.Cmp{
			Op: cmpOps[g.rng.Intn(len(cmpOps))],
			L:  &scalar.ColRef{ID: col2},
			R:  g.sampleConst(col2, md),
		}}}, nil
	case 1:
		return &scalar.Or{Kids: []scalar.Expr{cmp, &scalar.IsNull{Kid: &scalar.ColRef{ID: col}}}}, nil
	default:
		return cmp, nil
	}
}

func filterByType(cols []scalar.ColumnID, md *logical.Metadata) []scalar.ColumnID {
	var out []scalar.ColumnID
	for _, c := range cols {
		switch md.Column(c).Type {
		case datum.TypeInt, datum.TypeFloat, datum.TypeString, datum.TypeDate:
			out = append(out, c)
		}
	}
	return out
}

// makeProjection keeps a nonempty random subset of the child's columns,
// sometimes adding a computed item.
func (g *Generator) makeProjection(child *logical.Expr, md *logical.Metadata) ([]logical.ProjItem, error) {
	cols := child.OutputCols()
	if len(cols) == 0 {
		return nil, errCannotInstantiate
	}
	var items []logical.ProjItem
	for _, c := range cols {
		if g.rng.Intn(3) > 0 { // keep ~2/3 of the columns
			items = append(items, logical.ProjItem{Out: c, E: &scalar.ColRef{ID: c}})
		}
	}
	if len(items) == 0 {
		c := cols[g.rng.Intn(len(cols))]
		items = append(items, logical.ProjItem{Out: c, E: &scalar.ColRef{ID: c}})
	}
	// A computed item with ~1/3 probability.
	if nums := numericCols(cols, md); len(nums) > 0 && g.rng.Intn(3) == 0 {
		c := nums[g.rng.Intn(len(nums))]
		out := md.AddColumn(logical.ColumnMeta{Name: "expr", Type: datum.TypeFloat})
		items = append(items, logical.ProjItem{
			Out: out,
			E: &scalar.Arith{
				Op: scalar.ArithAdd,
				L:  &scalar.ColRef{ID: c},
				R:  &scalar.Const{D: datum.NewInt(int64(g.rng.Intn(10)))},
			},
		})
	}
	return items, nil
}

// excludeCols returns cols with the members of drop removed, preserving order.
func excludeCols(cols []scalar.ColumnID, drop scalar.ColSet) []scalar.ColumnID {
	var out []scalar.ColumnID
	for _, c := range cols {
		if !drop.Contains(c) {
			out = append(out, c)
		}
	}
	return out
}

func numericCols(cols []scalar.ColumnID, md *logical.Metadata) []scalar.ColumnID {
	var out []scalar.ColumnID
	for _, c := range cols {
		switch md.Column(c).Type {
		case datum.TypeInt, datum.TypeFloat:
			out = append(out, c)
		}
	}
	return out
}

func intCols(cols []scalar.ColumnID, md *logical.Metadata) []scalar.ColumnID {
	var out []scalar.ColumnID
	for _, c := range cols {
		if md.Column(c).Type == datum.TypeInt {
			out = append(out, c)
		}
	}
	return out
}

// keyCols returns the child's columns that belong to the primary key of the
// base table the child scans, when the child is a Get.
func keyCols(e *logical.Expr, md *logical.Metadata) []scalar.ColumnID {
	if e.Op != logical.OpGet {
		return nil
	}
	t, err := md.Catalog().Table(e.Table)
	if err != nil || len(t.PrimaryKey) != 1 {
		return nil
	}
	idx := t.ColumnIndex(t.PrimaryKey[0])
	if idx < 0 || idx >= len(e.Cols) {
		return nil
	}
	return []scalar.ColumnID{e.Cols[idx]}
}

// joinPoolCols selects the columns of a join input worth joining on. Over a
// GroupBy child the grouping columns are used (aggregate outputs in a join
// predicate block the group-by reordering rules); over a Get the primary key
// is preferred half the time, which also satisfies the duplicate-free
// preconditions of rules 14–16.
func (g *Generator) joinPoolCols(e *logical.Expr, md *logical.Metadata) []scalar.ColumnID {
	if e.Op == logical.OpGroupBy && len(e.GroupCols) > 0 {
		return filterByType(e.GroupCols, md)
	}
	if pk := keyCols(e, md); pk != nil && g.rng.Intn(2) == 0 {
		return pk
	}
	return comparableCols(e, md)
}

// makeJoinPred builds an equality predicate between type-compatible columns
// of the two inputs, occasionally adding a non-equi conjunct.
func (g *Generator) makeJoinPred(l, r *logical.Expr, md *logical.Metadata) (scalar.Expr, error) {
	lc := g.joinPoolCols(l, md)
	rc := g.joinPoolCols(r, md)
	type pair struct{ a, b scalar.ColumnID }
	var pairs []pair
	for _, a := range lc {
		for _, b := range rc {
			if typeClass(md.Column(a).Type) == typeClass(md.Column(b).Type) {
				pairs = append(pairs, pair{a, b})
			}
		}
	}
	if len(pairs) == 0 {
		return nil, errCannotInstantiate
	}
	p := pairs[g.rng.Intn(len(pairs))]
	eq := &scalar.Cmp{Op: scalar.CmpEQ, L: &scalar.ColRef{ID: p.a}, R: &scalar.ColRef{ID: p.b}}
	if g.rng.Intn(5) == 0 {
		q := pairs[g.rng.Intn(len(pairs))]
		return &scalar.And{Kids: []scalar.Expr{eq, &scalar.Cmp{
			Op: scalar.CmpLE, L: &scalar.ColRef{ID: q.a}, R: &scalar.ColRef{ID: q.b},
		}}}, nil
	}
	return eq, nil
}

// typeClass folds numeric types together for join-compatibility.
func typeClass(t datum.Type) int {
	switch t {
	case datum.TypeInt, datum.TypeFloat, datum.TypeDate:
		return 0
	case datum.TypeString:
		return 1
	default:
		return 2
	}
}

var aggOps = []scalar.AggOp{
	scalar.AggCountStar, scalar.AggCount, scalar.AggSum,
	scalar.AggMin, scalar.AggMax, scalar.AggSum, scalar.AggAvg,
}

// makeGrouping picks grouping columns and aggregates. Over a Join child, the
// join's left-side equality columns are forced into the grouping columns and
// the aggregates read the left input — the precondition of the group-by
// push-down rule (the paper's running example of a rule that a pattern alone
// cannot guarantee, §1).
func (g *Generator) makeGrouping(child *logical.Expr, md *logical.Metadata) ([]scalar.ColumnID, []scalar.Agg, error) {
	cols := child.OutputCols()
	if len(cols) == 0 {
		return nil, nil, errCannotInstantiate
	}
	gcSet := make(scalar.ColSet)
	var gc []scalar.ColumnID
	aggPool := cols

	if child.Op.IsJoin() && child.On != nil {
		left := child.Children[0].OutputColSet()
		right := child.Children[1].OutputColSet()
		pairs, _ := logical.EquiJoinCols(child.On, left, right)
		for _, p := range pairs {
			if !gcSet.Contains(p[0]) {
				gcSet.Add(p[0])
				gc = append(gc, p[0])
			}
		}
		aggPool = child.Children[0].OutputCols()
	}
	pool := filterByType(cols, md)
	if len(pool) == 0 {
		return nil, nil, errCannotInstantiate
	}
	for len(gc) == 0 || (len(gc) < 3 && g.rng.Intn(2) == 0) {
		c := pool[g.rng.Intn(len(pool))]
		if !gcSet.Contains(c) {
			gcSet.Add(c)
			gc = append(gc, c)
		}
		if len(gc) >= len(pool) {
			break
		}
	}
	var aggs []scalar.Agg
	nAggs := g.rng.Intn(3)
	nums := numericCols(aggPool, md)
	// Prefer aggregating columns outside the grouping key: an aggregate over
	// a grouping column is constant per group, so MIN/MAX/SUM over it cannot
	// distinguish a correct implementation from a subtly wrong one.
	if nonGC := excludeCols(nums, gcSet); len(nonGC) > 0 {
		nums = nonGC
	}
	// SUM and AVG accumulate in input order, so over float columns their low
	// bits depend on the plan's row order — a false-mismatch source for any
	// exact-equality oracle. Restrict them to integer columns, where
	// accumulation is exact and order-independent.
	ints := intCols(nums, md)
	for i := 0; i < nAggs; i++ {
		op := aggOps[g.rng.Intn(len(aggOps))]
		pool := nums
		if op == scalar.AggSum || op == scalar.AggAvg {
			if len(ints) == 0 {
				op = scalar.AggMin
			} else {
				pool = ints
			}
		}
		var arg scalar.Expr
		typ := datum.TypeInt
		if op != scalar.AggCountStar {
			if len(pool) == 0 {
				op = scalar.AggCountStar
			} else {
				c := pool[g.rng.Intn(len(pool))]
				arg = &scalar.ColRef{ID: c}
				switch op {
				case scalar.AggCount:
					typ = datum.TypeInt
				case scalar.AggAvg:
					typ = datum.TypeFloat
				default:
					typ = md.Column(c).Type
				}
			}
		}
		out := md.AddColumn(logical.ColumnMeta{Name: "agg", Type: typ})
		aggs = append(aggs, scalar.Agg{Op: op, Arg: arg, Out: out})
	}
	return gc, aggs, nil
}

// makeUnion aligns two inputs on type-compatible column lists and builds a
// UNION ALL over them.
func (g *Generator) makeUnion(l, r *logical.Expr, md *logical.Metadata) (*logical.Expr, error) {
	type byClass map[int][]scalar.ColumnID
	classify := func(e *logical.Expr) byClass {
		m := make(byClass)
		for _, c := range e.OutputCols() {
			k := typeClass(md.Column(c).Type)
			if k != 2 {
				m[k] = append(m[k], c)
			}
		}
		return m
	}
	lc, rc := classify(l), classify(r)
	var lin, rin []scalar.ColumnID
	// Fixed class order: ranging over the map would make generation
	// nondeterministic across runs.
	for k := 0; k < 2; k++ {
		ls, rs := lc[k], rc[k]
		n := len(ls)
		if len(rs) < n {
			n = len(rs)
		}
		if n > 2 {
			n = 2
		}
		for i := 0; i < n; i++ {
			lin = append(lin, ls[i])
			rin = append(rin, rs[i])
		}
	}
	if len(lin) == 0 {
		return nil, errCannotInstantiate
	}
	outs := make([]scalar.ColumnID, len(lin))
	for i := range lin {
		outs[i] = md.AddColumn(logical.ColumnMeta{Name: "u", Type: md.Column(lin[i]).Type})
	}
	return &logical.Expr{
		Op: logical.OpUnionAll, Children: []*logical.Expr{l, r},
		OutCols: outs, InputCols: [][]scalar.ColumnID{lin, rin},
	}, nil
}

// randomOps is the operator vocabulary of the stochastic generator.
var randomOps = []logical.Op{
	logical.OpSelect, logical.OpSelect, logical.OpProject,
	logical.OpJoin, logical.OpJoin, logical.OpLeftJoin,
	logical.OpSemiJoin, logical.OpAntiJoin,
	logical.OpGroupBy, logical.OpUnionAll,
}

// randomTree builds a stochastic logical tree with roughly the given number
// of operators — the RANDOM baseline [1][17].
func (g *Generator) randomTree(md *logical.Metadata, budget int) (*logical.Expr, error) {
	if budget <= 1 {
		return g.randomLeaf(md)
	}
	for attempt := 0; attempt < 8; attempt++ {
		op := randomOps[g.rng.Intn(len(randomOps))]
		var kids []*logical.Expr
		var err error
		if op.Arity() == 2 {
			lb := 1 + g.rng.Intn(budget-1)
			var l, r *logical.Expr
			l, err = g.randomTree(md, lb)
			if err != nil {
				return nil, err
			}
			r, err = g.randomTree(md, budget-1-lb)
			if err != nil {
				return nil, err
			}
			kids = []*logical.Expr{l, r}
		} else {
			var c *logical.Expr
			c, err = g.randomTree(md, budget-1)
			if err != nil {
				return nil, err
			}
			kids = []*logical.Expr{c}
		}
		tree, err := g.buildOp(op, kids, md)
		if err == nil {
			return tree, nil
		}
		if !errors.Is(err, errCannotInstantiate) {
			return nil, err
		}
	}
	return g.randomLeaf(md)
}

// wrapRandomOp adds one random operator above the tree (§2.3's mechanism for
// generating more complex queries that still exercise a rule).
func (g *Generator) wrapRandomOp(tree *logical.Expr, md *logical.Metadata) (*logical.Expr, error) {
	for attempt := 0; attempt < 8; attempt++ {
		op := randomOps[g.rng.Intn(len(randomOps))]
		var kids []*logical.Expr
		if op.Arity() == 2 {
			leaf, err := g.randomLeaf(md)
			if err != nil {
				return nil, err
			}
			if g.rng.Intn(2) == 0 {
				kids = []*logical.Expr{tree, leaf}
			} else {
				kids = []*logical.Expr{leaf, tree}
			}
		} else {
			kids = []*logical.Expr{tree}
		}
		wrapped, err := g.buildOp(op, kids, md)
		if err == nil {
			return wrapped, nil
		}
		if !errors.Is(err, errCannotInstantiate) {
			return nil, err
		}
	}
	return tree, nil
}
