// Package qgen implements the paper's query generation module (§3): given a
// transformation rule (or rule pair), generate a SQL query that exercises it
// when optimized.
//
// Two methods are provided:
//
//   - RANDOM: the state-of-the-art baseline [1][17] — generate stochastic
//     queries until one exercises the target rules.
//   - PATTERN: the paper's contribution — fetch the rule's pattern through
//     the optimizer's XML API, instantiate its generic operators and
//     arguments into a concrete logical query tree, emit SQL, and verify
//     via RuleSet(q). For rule pairs, compose the two patterns (§3.2).
//
// Both methods run the full pipeline per trial (tree → SQL → parse → bind →
// optimize), exactly like the paper's prototype on a real server.
package qgen

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"qtrtest/internal/bind"
	"qtrtest/internal/logical"
	"qtrtest/internal/opt"
	"qtrtest/internal/physical"
	"qtrtest/internal/rules"
	"qtrtest/internal/sqlgen"
)

// Config tunes a Generator.
type Config struct {
	// Seed makes generation deterministic.
	Seed int64
	// MaxTrials bounds the attempts per target before giving up (default
	// 512).
	MaxTrials int
	// ExtraOps pads each generated query with this many additional random
	// operators (§2.3's complexity constraint), used when generating
	// correctness-test queries that should be non-trivial.
	ExtraOps int
}

// Query is a generated test case.
type Query struct {
	SQL     string
	Tree    *logical.Expr
	MD      *logical.Metadata
	RuleSet rules.Set
	// Plan is the best physical plan with all rules enabled — Plan(q) —
	// captured at generation time so downstream consumers (the correctness
	// runner in particular) never re-invoke the optimizer for it.
	Plan *physical.Expr
	// Cost is the optimizer-estimated cost of the best plan (all rules on).
	Cost float64
	// Trials is the number of attempts needed to find this query.
	Trials int
	// Elapsed is the wall-clock time spent, including failed trials.
	Elapsed time.Duration
}

// ErrExhausted is returned when MaxTrials attempts did not produce a query
// exercising the target rules.
var ErrExhausted = errors.New("qgen: trial budget exhausted without exercising the target rules")

// Generator produces rule-targeted test queries. A Generator owns a single
// RNG and is therefore NOT safe for concurrent use; parallel campaigns give
// every worker its own generator via Fork.
type Generator struct {
	opt      *opt.Optimizer
	cfg      Config
	rng      *rand.Rand
	patterns map[rules.ID]*rules.Pattern
}

// New builds a generator. The rule patterns are fetched through the
// registry's XML export — the DBMS API surface of §3.1 — rather than by
// linking to the rule implementations.
func New(o *opt.Optimizer, cfg Config) (*Generator, error) {
	if cfg.MaxTrials <= 0 {
		cfg.MaxTrials = 512
	}
	data, err := o.Registry().ExportXML()
	if err != nil {
		return nil, fmt.Errorf("qgen: exporting rule patterns: %w", err)
	}
	exported, err := rules.ParseExportXML(data)
	if err != nil {
		return nil, fmt.Errorf("qgen: parsing rule patterns: %w", err)
	}
	pats := make(map[rules.ID]*rules.Pattern, len(exported))
	for _, er := range exported {
		pats[er.ID] = er.Pattern
	}
	return &Generator{
		opt:      o,
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		patterns: pats,
	}, nil
}

// Fork returns a generator sharing this one's optimizer, configuration and
// parsed rule patterns (all read-only), but with an independent RNG seeded
// at seed. Forked generators can run on concurrent workers; deriving the
// seed from the work item (not from shared RNG state) is what keeps
// parallel generation byte-identical to a sequential run.
func (g *Generator) Fork(seed int64) *Generator {
	return &Generator{
		opt:      g.opt,
		cfg:      g.cfg,
		rng:      rand.New(rand.NewSource(seed)),
		patterns: g.patterns,
	}
}

// Pattern returns the exported pattern for a rule id.
func (g *Generator) Pattern(id rules.ID) (*rules.Pattern, error) {
	p, ok := g.patterns[id]
	if !ok {
		return nil, fmt.Errorf("qgen: no pattern for rule %d", id)
	}
	return p, nil
}

// tryTree runs one trial: render the tree to SQL, parse and bind it, and
// optimize. It reports whether all target rules were exercised.
func (g *Generator) tryTree(tree *logical.Expr, md *logical.Metadata, target []rules.ID) (*Query, bool, error) {
	sqlText, err := sqlgen.Generate(tree, md)
	if err != nil {
		return nil, false, err
	}
	bound, err := bind.BindSQL(sqlText, g.opt.Catalog())
	if err != nil {
		return nil, false, fmt.Errorf("qgen: generated SQL failed to bind: %w\nSQL: %s", err, sqlText)
	}
	res, err := g.opt.Optimize(bound.Tree, bound.MD, opt.Options{})
	if err != nil {
		return nil, false, err
	}
	for _, id := range target {
		if !res.RuleSet.Contains(id) {
			return nil, false, nil
		}
	}
	return &Query{
		SQL: sqlText, Tree: bound.Tree, MD: bound.MD,
		RuleSet: res.RuleSet, Plan: res.Plan, Cost: res.Cost,
	}, true, nil
}

// GenerateRandom is the RANDOM method: stochastic queries until one
// exercises every rule in target.
func (g *Generator) GenerateRandom(target []rules.ID) (*Query, error) {
	//qtrlint:allow wallclock telemetry only: Elapsed reports generation latency, never influences the query produced
	start := time.Now()
	for trial := 1; trial <= g.cfg.MaxTrials; trial++ {
		md := logical.NewMetadata(g.opt.Catalog())
		tree, err := g.randomTree(md, 2+g.rng.Intn(5)+g.cfg.ExtraOps)
		if err != nil {
			return nil, err
		}
		q, ok, err := g.tryTree(tree, md, target)
		if err != nil {
			return nil, err
		}
		if ok {
			q.Trials = trial
			q.Elapsed = time.Since(start)
			return q, nil
		}
	}
	return nil, fmt.Errorf("%w (RANDOM, target %v, %d trials)", ErrExhausted, target, g.cfg.MaxTrials)
}

// GeneratePattern is the PATTERN method for a single rule.
func (g *Generator) GeneratePattern(id rules.ID) (*Query, error) {
	p, err := g.Pattern(id)
	if err != nil {
		return nil, err
	}
	return g.generateFromPatterns([]rules.ID{id}, []*rules.Pattern{p})
}

// GeneratePatternPair is the PATTERN method for a rule pair: the two rule
// patterns are composed (§3.2) and instantiated; among candidate
// compositions the query with the fewest operators that exercises both rules
// wins.
func (g *Generator) GeneratePatternPair(a, b rules.ID) (*Query, error) {
	pa, err := g.Pattern(a)
	if err != nil {
		return nil, err
	}
	pb, err := g.Pattern(b)
	if err != nil {
		return nil, err
	}
	comps := ComposePatterns(pa, pb)
	return g.generateFromPatterns([]rules.ID{a, b}, comps)
}

// generateFromPatterns rotates through candidate patterns, instantiating
// each with fresh random arguments per trial.
func (g *Generator) generateFromPatterns(target []rules.ID, candidates []*rules.Pattern) (*Query, error) {
	//qtrlint:allow wallclock telemetry only: Elapsed reports generation latency, never influences the query produced
	start := time.Now()
	var best *Query
	for trial := 1; trial <= g.cfg.MaxTrials; trial++ {
		p := candidates[(trial-1)%len(candidates)]
		md := logical.NewMetadata(g.opt.Catalog())
		tree, err := g.instantiate(p, md)
		if err != nil {
			// Some compositions cannot be instantiated against this catalog
			// (e.g. no type-compatible columns); try the next.
			continue
		}
		for i := 0; i < g.cfg.ExtraOps; i++ {
			tree, err = g.wrapRandomOp(tree, md)
			if err != nil {
				break
			}
		}
		if err != nil {
			continue
		}
		q, ok, err := g.tryTree(tree, md, target)
		if err != nil {
			return nil, err
		}
		if ok {
			q.Trials = trial
			q.Elapsed = time.Since(start)
			// Prefer the smallest query; once we have swept every candidate
			// composition once, return the best found (§3.2).
			if best == nil || q.Tree.CountOps() < best.Tree.CountOps() {
				best = q
			}
			if trial >= len(candidates) {
				return best, nil
			}
		} else if best != nil && trial >= len(candidates) {
			return best, nil
		}
	}
	if best != nil {
		return best, nil
	}
	return nil, fmt.Errorf("%w (PATTERN, target %v, %d trials)", ErrExhausted, target, g.cfg.MaxTrials)
}

// ComposePatterns enumerates compositions of two rule patterns (§3.2):
//  1. a new root (Join or UnionAll) with the two patterns as children, and
//  2. each pattern substituted into each generic slot of the other.
func ComposePatterns(a, b *rules.Pattern) []*rules.Pattern {
	var out []*rules.Pattern
	// Substitution compositions first: they tend to produce smaller queries
	// and capture the input/output rule interaction the paper highlights.
	for i := range a.Generics() {
		c := a.Clone()
		*c.Generics()[i] = *b.Clone()
		out = append(out, c)
	}
	for i := range b.Generics() {
		c := b.Clone()
		*c.Generics()[i] = *a.Clone()
		out = append(out, c)
	}
	out = append(out,
		rules.P(logical.OpJoin, a.Clone(), b.Clone()),
		rules.P(logical.OpUnionAll, a.Clone(), b.Clone()),
	)
	return out
}
