package qgen

import (
	"testing"

	"qtrtest/internal/opt"
	"qtrtest/internal/rules"
)

// TestGenerateRelevant finds queries where disabling the rule changes the
// chosen plan (§7's relevance variant).
func TestGenerateRelevant(t *testing.T) {
	g := newTestGenerator(t, 31)
	// Rules whose effect no other rule combination reproduces; rules like
	// PushSelectBelowJoinRight are almost never relevant because commute
	// plus the left-side pushdown reaches the same plans — exactly the
	// exercised-versus-relevant gap §7 describes.
	for _, id := range []rules.ID{9, 12, 21} {
		q, err := g.GenerateRelevant(id)
		if err != nil {
			t.Errorf("rule %d: %v", id, err)
			continue
		}
		on, err := g.opt.Optimize(q.Tree, q.MD, opt.Options{})
		if err != nil {
			t.Fatal(err)
		}
		off, err := g.opt.Optimize(q.Tree, q.MD, opt.Options{Disabled: rules.NewSet(id)})
		if err != nil {
			continue // unplannable without the rule: trivially relevant
		}
		if on.Plan.Hash() == off.Plan.Hash() {
			t.Errorf("rule %d: returned query is not relevant", id)
		}
	}
}

// TestGenerateInteractionPair exercises the provenance-based interaction
// variant: r2 fires on an expression created by r1.
func TestGenerateInteractionPair(t *testing.T) {
	g := newTestGenerator(t, 41)
	pairs := [][2]rules.ID{
		{5, 1},  // SelectIntoJoin creates a Join; JoinCommute fires on it
		{9, 6},  // SimplifyLeftJoin creates Select(Join); pushdown follows
		{21, 1}, // SemiJoinToJoin creates a Join; JoinCommute fires on it
	}
	for _, p := range pairs {
		q, err := g.GenerateInteractionPair(p[0], p[1])
		if err != nil {
			t.Errorf("pair %v: %v", p, err)
			continue
		}
		res, err := g.opt.Optimize(q.Tree, q.MD, opt.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Interactions[p] {
			t.Errorf("pair %v: interaction not reproducible on re-optimization", p)
		}
	}
}

// TestInteractionsTracked verifies provenance tracking directly: the paper's
// §3 example — join/outer-join associativity enabling join commutativity.
func TestInteractionsTracked(t *testing.T) {
	g := newTestGenerator(t, 51)
	q, err := g.GeneratePatternPair(17, 1) // JoinLeftJoinAssoc then JoinCommute
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.opt.Optimize(q.Tree, q.MD, opt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Interactions) == 0 {
		t.Error("no interactions recorded for a composed-pattern query")
	}
}
