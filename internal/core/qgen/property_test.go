package qgen

import (
	"testing"
	"testing/quick"

	"qtrtest/internal/logical"
	"qtrtest/internal/memo"
	"qtrtest/internal/rules"
)

// TestGeneratorDeterministic: same seed, same sequence of generated SQL.
func TestGeneratorDeterministic(t *testing.T) {
	a := newTestGenerator(t, 101)
	b := newTestGenerator(t, 101)
	for i := 0; i < 10; i++ {
		qa, err := a.GenerateRandom(nil)
		if err != nil {
			t.Fatal(err)
		}
		qb, err := b.GenerateRandom(nil)
		if err != nil {
			t.Fatal(err)
		}
		if qa.SQL != qb.SQL {
			t.Fatalf("query %d diverged:\n%s\nvs\n%s", i, qa.SQL, qb.SQL)
		}
	}
}

// TestComposePatternsCount: compositions = generic slots of a + generic
// slots of b + the two root combinations (Join, UnionAll).
func TestComposePatternsCount(t *testing.T) {
	reg := rules.DefaultRegistry()
	f := func(ai, bi uint8) bool {
		expl := rules.ExplorationRules()
		a := expl[int(ai)%len(expl)].Pattern()
		b := expl[int(bi)%len(expl)].Pattern()
		comps := ComposePatterns(a, b)
		return len(comps) == len(a.Generics())+len(b.Generics())+2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
	_ = reg
}

// TestMemoInsertIdempotent: inserting the same random tree twice neither
// adds expressions nor creates a new group — the interning invariant the
// whole exploration loop depends on.
func TestMemoInsertIdempotent(t *testing.T) {
	g := newTestGenerator(t, 113)
	for i := 0; i < 50; i++ {
		md := logical.NewMetadata(g.opt.Catalog())
		tree, err := g.randomTree(md, 2+i%6)
		if err != nil {
			t.Fatal(err)
		}
		m := memo.New(md)
		g1 := m.Insert(tree)
		groups, exprs := m.NumGroups(), m.NumExprs()
		g2 := m.Insert(tree.Clone())
		if g1 != g2 {
			t.Fatalf("re-inserting a tree changed its group: %d vs %d", g1, g2)
		}
		if m.NumGroups() != groups || m.NumExprs() != exprs {
			t.Fatalf("re-insertion grew the memo: %d/%d -> %d/%d",
				groups, exprs, m.NumGroups(), m.NumExprs())
		}
	}
}

// TestRandomTreesAreValid: every random tree renders to SQL that parses,
// binds, optimizes and has a consistent output column set.
func TestRandomTreesAreValid(t *testing.T) {
	g := newTestGenerator(t, 127)
	for i := 0; i < 60; i++ {
		md := logical.NewMetadata(g.opt.Catalog())
		tree, err := g.randomTree(md, 2+i%8)
		if err != nil {
			t.Fatal(err)
		}
		if len(tree.OutputCols()) == 0 {
			t.Fatalf("tree %d has no output columns:\n%s", i, tree)
		}
		if _, _, err := g.tryTree(tree, md, nil); err != nil {
			t.Fatalf("tree %d failed the pipeline: %v\n%s", i, err, tree)
		}
	}
}

// TestPatternTreesContainPattern: instantiation must embed the pattern shape
// (the necessary condition of §3.1) in the produced tree.
func TestPatternTreesContainPattern(t *testing.T) {
	g := newTestGenerator(t, 131)
	for _, r := range rules.ExplorationRules() {
		p, err := g.Pattern(r.ID())
		if err != nil {
			t.Fatal(err)
		}
		md := logical.NewMetadata(g.opt.Catalog())
		tree, err := g.instantiate(p, md)
		if err != nil {
			continue // some patterns need several draws; covered elsewhere
		}
		if !p.ContainedIn(tree) {
			t.Errorf("rule %d (%s): instantiated tree does not contain its pattern\n%s",
				r.ID(), r.Name(), tree)
		}
	}
}
