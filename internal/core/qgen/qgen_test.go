package qgen

import (
	"testing"

	"qtrtest/internal/catalog"
	"qtrtest/internal/opt"
	"qtrtest/internal/rules"
)

func newTestGenerator(t *testing.T, seed int64) *Generator {
	t.Helper()
	cat := catalog.LoadTPCH(catalog.DefaultTPCHConfig())
	o := opt.New(rules.DefaultRegistry(), cat)
	g, err := New(o, Config{Seed: seed, MaxTrials: 256})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return g
}

// TestPatternCoversEveryExplorationRule is the core claim behind Figure 8:
// pattern-based generation finds a query exercising each rule, in few trials.
func TestPatternCoversEveryExplorationRule(t *testing.T) {
	g := newTestGenerator(t, 7)
	for _, r := range rules.ExplorationRules() {
		q, err := g.GeneratePattern(r.ID())
		if err != nil {
			t.Errorf("rule %d (%s): %v", r.ID(), r.Name(), err)
			continue
		}
		if !q.RuleSet.Contains(r.ID()) {
			t.Errorf("rule %d (%s): returned query does not exercise the rule", r.ID(), r.Name())
		}
		if q.Trials > 32 {
			t.Errorf("rule %d (%s): took %d trials, want few", r.ID(), r.Name(), q.Trials)
		}
	}
}

// TestPatternCoversImplementationRules checks the implementation-rule path
// (single-node patterns, §3.1's hash-join example).
func TestPatternCoversImplementationRules(t *testing.T) {
	g := newTestGenerator(t, 11)
	for _, r := range rules.ImplementationRules() {
		if r.ID() == 116 || r.ID() == 117 {
			continue // Sort/Limit are not produced by pattern instantiation wrappers alone
		}
		q, err := g.GeneratePattern(r.ID())
		if err != nil {
			t.Errorf("rule %d (%s): %v", r.ID(), r.Name(), err)
			continue
		}
		if !q.RuleSet.Contains(r.ID()) {
			t.Errorf("rule %d (%s): query does not exercise the rule", r.ID(), r.Name())
		}
	}
}

// TestRandomEventuallyCovers spot-checks that the RANDOM baseline can also
// find queries for common rules (with more trials).
func TestRandomEventuallyCovers(t *testing.T) {
	g := newTestGenerator(t, 3)
	for _, id := range []rules.ID{1, 4, 5} {
		q, err := g.GenerateRandom([]rules.ID{id})
		if err != nil {
			t.Fatalf("rule %d: %v", id, err)
		}
		if !q.RuleSet.Contains(id) {
			t.Fatalf("rule %d: query does not exercise it", id)
		}
	}
}

// TestPatternPairs exercises composition for a sample of pairs.
func TestPatternPairs(t *testing.T) {
	g := newTestGenerator(t, 19)
	pairs := [][2]rules.ID{{1, 4}, {1, 12}, {5, 21}, {9, 23}, {14, 1}}
	for _, p := range pairs {
		q, err := g.GeneratePatternPair(p[0], p[1])
		if err != nil {
			t.Errorf("pair %v: %v", p, err)
			continue
		}
		if !q.RuleSet.Contains(p[0]) || !q.RuleSet.Contains(p[1]) {
			t.Errorf("pair %v: RuleSet %v misses a target", p, q.RuleSet.Sorted())
		}
	}
}

// TestPatternCoversRulesOnStarSchema replays the coverage test against the
// second test database (§6.1: "other databases with different schemas and
// sizes, and the results are similar").
func TestPatternCoversRulesOnStarSchema(t *testing.T) {
	cat := catalog.LoadStar(catalog.DefaultStarConfig())
	o := opt.New(rules.DefaultRegistry(), cat)
	g, err := New(o, Config{Seed: 23, MaxTrials: 256})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rules.ExplorationRules() {
		q, err := g.GeneratePattern(r.ID())
		if err != nil {
			t.Errorf("star schema, rule %d (%s): %v", r.ID(), r.Name(), err)
			continue
		}
		if !q.RuleSet.Contains(r.ID()) {
			t.Errorf("star schema, rule %d (%s): not exercised", r.ID(), r.Name())
		}
	}
}

// TestExtraOpsGrowQueries checks the §2.3 complexity knob.
func TestExtraOpsGrowQueries(t *testing.T) {
	cat := catalog.LoadTPCH(catalog.DefaultTPCHConfig())
	o := opt.New(rules.DefaultRegistry(), cat)
	g, err := New(o, Config{Seed: 5, MaxTrials: 256, ExtraOps: 4})
	if err != nil {
		t.Fatal(err)
	}
	q, err := g.GeneratePattern(1)
	if err != nil {
		t.Fatal(err)
	}
	if n := q.Tree.CountOps(); n < 5 {
		t.Errorf("expected a padded query, got %d ops", n)
	}
}
