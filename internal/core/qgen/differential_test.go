package qgen

import (
	"errors"
	"testing"

	"qtrtest/internal/bind"
	"qtrtest/internal/exec"
	"qtrtest/internal/opt"
	"qtrtest/internal/rules"
	"qtrtest/internal/sqlgen"
)

// TestJoinImplementationsAgree forces random queries through different
// physical join algorithms (by disabling the others' implementation rules)
// and requires identical results: a differential test of the hash,
// nested-loop and merge join executors against each other.
func TestJoinImplementationsAgree(t *testing.T) {
	g := newTestGenerator(t, 61)
	variants := []struct {
		name     string
		disabled rules.Set
	}{
		{"hash-only", rules.NewSet(105, 106, 108, 110, 112)},
		{"nl-only", rules.NewSet(104, 106, 107, 109, 111)},
		{"prefer-merge", rules.NewSet(104, 105)},
	}
	for i := 0; i < 25; i++ {
		q, err := g.GenerateRandom(nil)
		if err != nil {
			t.Fatal(err)
		}
		base, err := g.opt.Optimize(q.Tree, q.MD, opt.Options{})
		if err != nil {
			t.Fatal(err)
		}
		baseRows, err := exec.Run(base.Plan, g.opt.Catalog())
		if err != nil {
			t.Fatalf("base execute: %v\nSQL: %s", err, q.SQL)
		}
		for _, v := range variants {
			res, err := g.opt.Optimize(q.Tree, q.MD, opt.Options{Disabled: v.disabled})
			if err != nil {
				if errors.Is(err, opt.ErrNoPlan) {
					continue // e.g. non-equi join with hash/merge disabled is fine
				}
				t.Fatal(err)
			}
			rows, err := exec.Run(res.Plan, g.opt.Catalog())
			if err != nil {
				t.Fatalf("%s execute: %v\nSQL: %s\nplan:\n%s", v.name, err, q.SQL, res.Plan)
			}
			if !exec.EqualMultisets(baseRows, rows) {
				t.Errorf("%s disagrees with the default plan\nSQL: %s\ndiff: %s",
					v.name, q.SQL, exec.DiffSummary(baseRows, rows))
			}
		}
	}
}

// TestSQLRoundTripPreservesResults: for random generated trees, optimizing
// and executing the tree directly must produce the same results as going
// through SQL text, the parser and the binder.
func TestSQLRoundTripPreservesResults(t *testing.T) {
	g := newTestGenerator(t, 71)
	cat := g.opt.Catalog()
	for i := 0; i < 30; i++ {
		q, err := g.GenerateRandom(nil)
		if err != nil {
			t.Fatal(err)
		}
		// Path A: the bound tree from generation (already round-tripped once).
		resA, err := g.opt.Optimize(q.Tree, q.MD, opt.Options{})
		if err != nil {
			t.Fatal(err)
		}
		rowsA, err := exec.Run(resA.Plan, cat)
		if err != nil {
			t.Fatalf("execute A: %v\nSQL: %s", err, q.SQL)
		}
		// Path B: regenerate SQL from the bound tree and bind again.
		sql2, err := sqlgen.Generate(q.Tree, q.MD)
		if err != nil {
			t.Fatalf("regenerate: %v", err)
		}
		bound2, err := bind.BindSQL(sql2, cat)
		if err != nil {
			t.Fatalf("rebind: %v\nSQL: %s", err, sql2)
		}
		resB, err := g.opt.Optimize(bound2.Tree, bound2.MD, opt.Options{})
		if err != nil {
			t.Fatal(err)
		}
		rowsB, err := exec.Run(resB.Plan, cat)
		if err != nil {
			t.Fatalf("execute B: %v\nSQL: %s", err, sql2)
		}
		if len(rowsA) != len(rowsB) {
			t.Errorf("round trip changed result size: %d vs %d\nSQL: %s", len(rowsA), len(rowsB), q.SQL)
			continue
		}
		// Column IDs differ between bindings, so compare row counts and
		// per-row widths (multiset keys are id-independent only in value
		// terms; widths and cardinality catch structural drift).
		if len(rowsA) > 0 && len(rowsA[0]) != len(rowsB[0]) {
			t.Errorf("round trip changed result width: %d vs %d\nSQL: %s", len(rowsA[0]), len(rowsB[0]), q.SQL)
		}
		if !exec.EqualMultisets(rowsA, rowsB) {
			t.Errorf("round trip changed results\nSQL A: %s\nSQL B: %s\ndiff: %s",
				q.SQL, sql2, exec.DiffSummary(rowsA, rowsB))
		}
	}
}
