package qgen

import (
	"errors"
	"math/rand"

	"qtrtest/internal/logical"
)

// WeightedOps is the operator vocabulary of the weighted stochastic tree
// generator, in fixed order — Weights is stored positionally against this
// slice, so selection is deterministic for a given seed. Unlike the plain
// RANDOM vocabulary (randomOps), it includes Sort and Limit: fuzzing wants
// order- and cardinality-sensitive shapes in the population, because
// sort-direction and limit-boundary faults are invisible without them.
var WeightedOps = []logical.Op{
	logical.OpSelect, logical.OpProject,
	logical.OpJoin, logical.OpLeftJoin,
	logical.OpSemiJoin, logical.OpAntiJoin,
	logical.OpGroupBy, logical.OpUnionAll,
	logical.OpSort, logical.OpLimit,
}

// Weights assigns a relative selection weight to each operator of
// WeightedOps. The zero value is unusable; start from DefaultWeights.
type Weights struct {
	w []int
}

// DefaultWeights returns the starting operator distribution, roughly matching
// the plain RANDOM vocabulary's emphasis on selections and joins.
func DefaultWeights() *Weights {
	return &Weights{w: []int{
		3, // Select
		2, // Project
		3, // Join
		2, // LeftJoin
		1, // SemiJoin
		1, // AntiJoin
		2, // GroupBy
		2, // UnionAll
		2, // Sort
		2, // Limit
	}}
}

// Clone returns an independent copy.
func (w *Weights) Clone() *Weights {
	return &Weights{w: append([]int(nil), w.w...)}
}

// Weight returns the current weight of op (0 if op is not in WeightedOps).
func (w *Weights) Weight(op logical.Op) int {
	for i, o := range WeightedOps {
		if o == op {
			return w.w[i]
		}
	}
	return 0
}

// Boost raises op's weight by delta, saturating at max. Operators outside
// WeightedOps are ignored.
func (w *Weights) Boost(op logical.Op, delta, max int) {
	for i, o := range WeightedOps {
		if o != op {
			continue
		}
		w.w[i] += delta
		if w.w[i] > max {
			w.w[i] = max
		}
		return
	}
}

// pick draws one operator with probability proportional to its weight.
func (w *Weights) pick(rng *rand.Rand) logical.Op {
	total := 0
	for _, v := range w.w {
		total += v
	}
	if total <= 0 {
		return WeightedOps[rng.Intn(len(WeightedOps))]
	}
	n := rng.Intn(total)
	for i, v := range w.w {
		if n < v {
			return WeightedOps[i]
		}
		n -= v
	}
	return WeightedOps[len(WeightedOps)-1]
}

// RandomTreeWeighted builds a stochastic logical tree of roughly budget
// operators, drawing operators from the weighted vocabulary. It generalizes
// randomTree beyond the rule-pattern pipeline: the fuzzer adjusts the
// weights between generations (plan-shape coverage steering), while the
// instantiation machinery — buildOp and its argument heuristics — is shared
// with the paper's PATTERN/RANDOM generators. The caller may share one
// *Weights across concurrent generators: selection only reads it.
func (g *Generator) RandomTreeWeighted(md *logical.Metadata, budget int, w *Weights) (*logical.Expr, error) {
	return g.randomTreeWeighted(md, budget, w, true)
}

// randomTreeWeighted recurses with a root flag: OpLimit is only allowed at
// the root of the whole query. An interior LIMIT has no defining order, so
// which rows survive it is a plan property, not a query property — two
// correct plans can legitimately disagree on everything computed above it,
// which would turn both oracles into false-positive generators. At the root
// the comparator's limit-aware verdict logic handles the ambiguity instead.
func (g *Generator) randomTreeWeighted(md *logical.Metadata, budget int, w *Weights, root bool) (*logical.Expr, error) {
	if budget <= 1 {
		return g.randomLeaf(md)
	}
	for attempt := 0; attempt < 8; attempt++ {
		op := w.pick(g.rng)
		if op == logical.OpLimit && !root {
			continue
		}
		var kids []*logical.Expr
		var err error
		if op.Arity() == 2 {
			lb := 1 + g.rng.Intn(budget-1)
			var l, r *logical.Expr
			l, err = g.randomTreeWeighted(md, lb, w, false)
			if err != nil {
				return nil, err
			}
			r, err = g.randomTreeWeighted(md, budget-1-lb, w, false)
			if err != nil {
				return nil, err
			}
			kids = []*logical.Expr{l, r}
		} else {
			var c *logical.Expr
			c, err = g.randomTreeWeighted(md, budget-1, w, false)
			if err != nil {
				return nil, err
			}
			kids = []*logical.Expr{c}
		}
		tree, err := g.buildOp(op, kids, md)
		if err == nil {
			return tree, nil
		}
		if !errors.Is(err, errCannotInstantiate) {
			return nil, err
		}
	}
	return g.randomLeaf(md)
}
