package sql

import "testing"

// FuzzParseRoundTrip checks the printer/parser fixpoint: any input the
// parser accepts must format to SQL the parser accepts again, and the
// re-parsed statement must format to the identical text. Parser panics on
// arbitrary input are caught by the fuzz driver itself.
func FuzzParseRoundTrip(f *testing.F) {
	for _, seed := range []string{
		"SELECT * FROM t",
		"SELECT DISTINCT a, b AS x FROM t AS u WHERE (a > 1) AND b <= 2.5",
		"SELECT a FROM t WHERE a IS NOT NULL ORDER BY a DESC LIMIT 3",
		"SELECT n_name FROM nation JOIN supplier ON n_nationkey = s_nationkey",
		"SELECT a FROM t LEFT OUTER JOIN u ON t.a = u.b WHERE u.b IS NULL",
		"SELECT c1, COUNT(*) FROM (SELECT a AS c1 FROM t) AS d GROUP BY c1 HAVING COUNT(*) > 1",
		"SELECT a FROM t WHERE EXISTS (SELECT b FROM u WHERE u.b = t.a)",
		"SELECT a FROM t WHERE NOT EXISTS (SELECT b FROM u) UNION ALL SELECT c FROM v",
		"SELECT a FROM t WHERE a IN (1, 2, 3) OR a BETWEEN 10 AND 20",
		"SELECT a FROM t WHERE NOT (a = 1 OR a = 'it''s')",
		"SELECT -1 + 2 * 3 - a FROM t WHERE x <> 1e6",
		"SELECT SUM(a + b) AS s FROM t GROUP BY c, d ORDER BY s",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		s1, err := Parse(input)
		if err != nil {
			return
		}
		p1 := FormatStmt(s1)
		s2, err := Parse(p1)
		if err != nil {
			t.Fatalf("formatted SQL does not re-parse: %v\ninput: %q\nformatted: %q", err, input, p1)
		}
		p2 := FormatStmt(s2)
		if p1 != p2 {
			t.Fatalf("format is not a fixpoint:\ninput:  %q\nfirst:  %q\nsecond: %q", input, p1, p2)
		}
	})
}
