package sql

import (
	"fmt"
	"strings"
)

// tokenKind classifies lexer tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokInt
	tokFloat
	tokString
	tokPunct
)

type token struct {
	kind tokenKind
	text string // keywords upper-cased; punct verbatim
	pos  int
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"ORDER": true, "LIMIT": true, "AS": true, "JOIN": true, "LEFT": true,
	"OUTER": true, "INNER": true, "ON": true, "AND": true, "OR": true,
	"NOT": true, "IS": true, "NULL": true, "TRUE": true, "FALSE": true,
	"EXISTS": true, "UNION": true, "ALL": true, "ASC": true, "DESC": true,
	"COUNT": true, "SUM": true, "MIN": true, "MAX": true, "AVG": true,
	"HAVING": true, "DISTINCT": true, "IN": true, "BETWEEN": true,
}

// lex tokenizes the input, returning a token slice ending in tokEOF.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '\'':
			j := i + 1
			var sb strings.Builder
			for {
				if j >= n {
					return nil, fmt.Errorf("sql: unterminated string literal at offset %d", i)
				}
				if input[j] == '\'' {
					if j+1 < n && input[j+1] == '\'' {
						sb.WriteByte('\'')
						j += 2
						continue
					}
					break
				}
				sb.WriteByte(input[j])
				j++
			}
			toks = append(toks, token{kind: tokString, text: sb.String(), pos: i})
			i = j + 1
		case c >= '0' && c <= '9':
			j := i
			isFloat := false
			for j < n && (input[j] >= '0' && input[j] <= '9') {
				j++
			}
			if j < n && input[j] == '.' {
				isFloat = true
				j++
				for j < n && (input[j] >= '0' && input[j] <= '9') {
					j++
				}
			}
			if j < n && (input[j] == 'e' || input[j] == 'E') {
				isFloat = true
				j++
				if j < n && (input[j] == '+' || input[j] == '-') {
					j++
				}
				for j < n && (input[j] >= '0' && input[j] <= '9') {
					j++
				}
			}
			kind := tokInt
			if isFloat {
				kind = tokFloat
			}
			toks = append(toks, token{kind: kind, text: input[i:j], pos: i})
			i = j
		case isIdentStart(rune(c)):
			j := i
			for j < n && isIdentPart(rune(input[j])) {
				j++
			}
			word := input[i:j]
			up := strings.ToUpper(word)
			if keywords[up] {
				toks = append(toks, token{kind: tokKeyword, text: up, pos: i})
			} else {
				toks = append(toks, token{kind: tokIdent, text: strings.ToLower(word), pos: i})
			}
			i = j
		default:
			switch c {
			case '<':
				if i+1 < n && (input[i+1] == '=' || input[i+1] == '>') {
					toks = append(toks, token{kind: tokPunct, text: input[i : i+2], pos: i})
					i += 2
				} else {
					toks = append(toks, token{kind: tokPunct, text: "<", pos: i})
					i++
				}
			case '>':
				if i+1 < n && input[i+1] == '=' {
					toks = append(toks, token{kind: tokPunct, text: ">=", pos: i})
					i += 2
				} else {
					toks = append(toks, token{kind: tokPunct, text: ">", pos: i})
					i++
				}
			case '!':
				if i+1 < n && input[i+1] == '=' {
					toks = append(toks, token{kind: tokPunct, text: "<>", pos: i})
					i += 2
				} else {
					return nil, fmt.Errorf("sql: unexpected character %q at offset %d", c, i)
				}
			case '=', '(', ')', ',', '.', '+', '-', '*':
				toks = append(toks, token{kind: tokPunct, text: string(c), pos: i})
				i++
			default:
				return nil, fmt.Errorf("sql: unexpected character %q at offset %d", c, i)
			}
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: n})
	return toks, nil
}

// Identifiers are ASCII-only: the lexer scans bytes, and treating a byte
// >= 0x80 as a unicode letter would corrupt non-UTF-8 input when the
// identifier is later case-folded.
func isIdentStart(r rune) bool {
	return r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
}

func isIdentPart(r rune) bool {
	return isIdentStart(r) || (r >= '0' && r <= '9')
}
