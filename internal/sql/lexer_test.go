package sql

import "testing"

func lexOK(t *testing.T, in string) []token {
	t.Helper()
	toks, err := lex(in)
	if err != nil {
		t.Fatalf("lex(%q): %v", in, err)
	}
	return toks
}

func TestLexKeywordsAndIdents(t *testing.T) {
	toks := lexOK(t, "SELECT foo FROM Bar")
	if toks[0].kind != tokKeyword || toks[0].text != "SELECT" {
		t.Errorf("tok0 = %+v", toks[0])
	}
	if toks[1].kind != tokIdent || toks[1].text != "foo" {
		t.Errorf("tok1 = %+v", toks[1])
	}
	if toks[3].kind != tokIdent || toks[3].text != "bar" {
		t.Errorf("identifiers must lowercase: %+v", toks[3])
	}
	if toks[len(toks)-1].kind != tokEOF {
		t.Error("missing EOF token")
	}
}

func TestLexNumbers(t *testing.T) {
	toks := lexOK(t, "1 2.5 3e4 5.0E-2 007")
	kinds := []tokenKind{tokInt, tokFloat, tokFloat, tokFloat, tokInt}
	for i, k := range kinds {
		if toks[i].kind != k {
			t.Errorf("token %d (%q): kind %d, want %d", i, toks[i].text, toks[i].kind, k)
		}
	}
}

func TestLexStrings(t *testing.T) {
	toks := lexOK(t, "'hello' 'it''s' ''")
	want := []string{"hello", "it's", ""}
	for i, w := range want {
		if toks[i].kind != tokString || toks[i].text != w {
			t.Errorf("string %d = %q, want %q", i, toks[i].text, w)
		}
	}
	if _, err := lex("'unterminated"); err == nil {
		t.Error("unterminated string must fail")
	}
}

func TestLexOperators(t *testing.T) {
	toks := lexOK(t, "= <> < <= > >= != + - * ( ) , .")
	want := []string{"=", "<>", "<", "<=", ">", ">=", "<>", "+", "-", "*", "(", ")", ",", "."}
	for i, w := range want {
		if toks[i].kind != tokPunct || toks[i].text != w {
			t.Errorf("punct %d = %q, want %q", i, toks[i].text, w)
		}
	}
}

func TestLexErrors(t *testing.T) {
	for _, in := range []string{"a ; b", "a ! b", "a @ b", "#"} {
		if _, err := lex(in); err == nil {
			t.Errorf("lex(%q) should fail", in)
		}
	}
}

func TestLexPositions(t *testing.T) {
	toks := lexOK(t, "ab  cd")
	if toks[0].pos != 0 || toks[1].pos != 4 {
		t.Errorf("positions: %d %d", toks[0].pos, toks[1].pos)
	}
}
