package sql

import (
	"fmt"
	"strconv"
)

// Parse parses a SQL statement (SELECT, possibly combined with UNION ALL).
func Parse(input string) (Stmt, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: input}
	stmt, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, p.errorf("unexpected trailing input %q", p.peek().text)
	}
	return stmt, nil
}

type parser struct {
	toks []token
	pos  int
	src  string
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) atEOF() bool { return p.peek().kind == tokEOF }
func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) errorf(format string, args ...interface{}) error {
	return fmt.Errorf("sql: at offset %d: %s", p.peek().pos, fmt.Sprintf(format, args...))
}

func (p *parser) isKeyword(kw string) bool {
	t := p.peek()
	return t.kind == tokKeyword && t.text == kw
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.isKeyword(kw) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errorf("expected %s, found %q", kw, p.peek().text)
	}
	return nil
}

func (p *parser) isPunct(s string) bool {
	t := p.peek()
	return t.kind == tokPunct && t.text == s
}

func (p *parser) acceptPunct(s string) bool {
	if p.isPunct(s) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectPunct(s string) error {
	if !p.acceptPunct(s) {
		return p.errorf("expected %q, found %q", s, p.peek().text)
	}
	return nil
}

// parseStmt parses select [UNION ALL select]*, left-associative.
func (p *parser) parseStmt() (Stmt, error) {
	left, err := p.parseSelectOrParen()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("UNION") {
		if err := p.expectKeyword("ALL"); err != nil {
			return nil, err
		}
		right, err := p.parseSelectOrParen()
		if err != nil {
			return nil, err
		}
		left = &SetOp{All: true, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseSelectOrParen() (Stmt, error) {
	if p.acceptPunct("(") {
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return s, nil
	}
	return p.parseSelect()
}

func (p *parser) parseSelect() (*Select, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	sel := &Select{}
	if p.acceptKeyword("DISTINCT") {
		sel.Distinct = true
	}
	if p.acceptPunct("*") {
		sel.Star = true
	} else {
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := SelectItem{E: e}
			if p.acceptKeyword("AS") {
				t := p.next()
				if t.kind != tokIdent {
					return nil, p.errorf("expected alias after AS, found %q", t.text)
				}
				item.Alias = t.text
			} else if p.peek().kind == tokIdent {
				item.Alias = p.next().text
			}
			sel.Items = append(sel.Items, item)
			if !p.acceptPunct(",") {
				break
			}
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	from, err := p.parseFrom()
	if err != nil {
		return nil, err
	}
	sel.From = from
	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = w
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if !p.acceptPunct(",") {
				break
			}
		}
	}
	if p.acceptKeyword("HAVING") {
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Having = h
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{E: e}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if !p.acceptPunct(",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		t := p.next()
		if t.kind != tokInt {
			return nil, p.errorf("expected integer after LIMIT, found %q", t.text)
		}
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errorf("invalid LIMIT value %q", t.text)
		}
		sel.Limit = &v
	}
	return sel, nil
}

// parseFrom parses a source followed by zero or more JOIN clauses.
func (p *parser) parseFrom() (FromItem, error) {
	left, err := p.parseFromPrimary()
	if err != nil {
		return nil, err
	}
	for {
		var kind JoinKind
		switch {
		case p.acceptKeyword("JOIN"):
			kind = JoinInner
		case p.isKeyword("INNER"):
			p.next()
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			kind = JoinInner
		case p.isKeyword("LEFT"):
			p.next()
			p.acceptKeyword("OUTER")
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			kind = JoinLeftOuter
		default:
			return left, nil
		}
		right, err := p.parseFromPrimary()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		on, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		left = &JoinRef{Kind: kind, L: left, R: right, On: on}
	}
}

func (p *parser) parseFromPrimary() (FromItem, error) {
	if p.acceptPunct("(") {
		q, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		p.acceptKeyword("AS")
		t := p.next()
		if t.kind != tokIdent {
			return nil, p.errorf("derived table requires an alias, found %q", t.text)
		}
		return &Derived{Q: q, Alias: t.text}, nil
	}
	t := p.next()
	if t.kind != tokIdent {
		return nil, p.errorf("expected table name, found %q", t.text)
	}
	ref := &TableRef{Name: t.text}
	if p.acceptKeyword("AS") {
		a := p.next()
		if a.kind != tokIdent {
			return nil, p.errorf("expected alias after AS, found %q", a.text)
		}
		ref.Alias = a.text
	} else if p.peek().kind == tokIdent {
		ref.Alias = p.next().text
	}
	return ref, nil
}

// Expression grammar, loosest to tightest: OR, AND, NOT, comparison / IS
// NULL, additive, multiplicative, unary, primary.

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinExpr{Op: "OR", L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &BinExpr{Op: "AND", L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.isKeyword("NOT") && p.toks[p.pos+1].kind == tokKeyword && p.toks[p.pos+1].text == "EXISTS" {
		p.next()
		return p.parseExists(true)
	}
	if p.acceptKeyword("NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &NotExpr{E: e}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseExists(neg bool) (Expr, error) {
	if err := p.expectKeyword("EXISTS"); err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	q, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return &ExistsExpr{Neg: neg, Q: q}, nil
}

func (p *parser) parseComparison() (Expr, error) {
	if p.isKeyword("EXISTS") {
		return p.parseExists(false)
	}
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	if p.acceptKeyword("IS") {
		neg := p.acceptKeyword("NOT")
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		return &IsNullExpr{E: left, Neg: neg}, nil
	}
	if p.isKeyword("IN") || (p.isKeyword("NOT") && p.toks[p.pos+1].kind == tokKeyword && p.toks[p.pos+1].text == "IN") {
		neg := p.acceptKeyword("NOT")
		p.next() // IN
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		in := &InExpr{E: left, Neg: neg}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			in.List = append(in.List, e)
			if !p.acceptPunct(",") {
				break
			}
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return in, nil
	}
	if p.acceptKeyword("BETWEEN") {
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &BetweenExpr{E: left, Lo: lo, Hi: hi}, nil
	}
	for _, op := range []string{"=", "<>", "<=", ">=", "<", ">"} {
		if p.isPunct(op) {
			p.next()
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &BinExpr{Op: op, L: left, R: right}, nil
		}
	}
	return left, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.isPunct("+"):
			op = "+"
		case p.isPunct("-"):
			op = "-"
		default:
			return left, nil
		}
		p.next()
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = &BinExpr{Op: op, L: left, R: right}
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.isPunct("*") {
		p.next()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &BinExpr{Op: "*", L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseUnary() (Expr, error) {
	if p.acceptPunct("-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		switch lit := e.(type) {
		case *IntLit:
			return &IntLit{V: -lit.V}, nil
		case *FloatLit:
			return &FloatLit{V: -lit.V}, nil
		default:
			return &BinExpr{Op: "-", L: &IntLit{V: 0}, R: e}, nil
		}
	}
	return p.parsePrimary()
}

var aggNames = map[string]bool{"COUNT": true, "SUM": true, "MIN": true, "MAX": true, "AVG": true}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokInt:
		p.next()
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errorf("invalid integer %q", t.text)
		}
		return &IntLit{V: v}, nil
	case tokFloat:
		p.next()
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, p.errorf("invalid number %q", t.text)
		}
		return &FloatLit{V: v}, nil
	case tokString:
		p.next()
		return &StrLit{V: t.text}, nil
	case tokKeyword:
		switch t.text {
		case "TRUE":
			p.next()
			return &BoolLit{V: true}, nil
		case "FALSE":
			p.next()
			return &BoolLit{V: false}, nil
		case "NULL":
			p.next()
			return &NullLit{}, nil
		case "COUNT", "SUM", "MIN", "MAX", "AVG":
			p.next()
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			call := &CallExpr{Name: t.text}
			if t.text == "COUNT" && p.acceptPunct("*") {
				call.Star = true
			} else {
				arg, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				call.Arg = arg
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return call, nil
		case "EXISTS":
			return p.parseExists(false)
		}
		return nil, p.errorf("unexpected keyword %q in expression", t.text)
	case tokIdent:
		p.next()
		if p.acceptPunct(".") {
			n := p.next()
			if n.kind != tokIdent {
				return nil, p.errorf("expected column name after %q.", t.text)
			}
			return &Ident{Qual: t.text, Name: n.text}, nil
		}
		return &Ident{Name: t.text}, nil
	case tokPunct:
		if t.text == "(" {
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errorf("unexpected token %q in expression", t.text)
}
