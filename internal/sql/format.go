package sql

import (
	"fmt"
	"strings"
)

// FormatStmt renders a statement AST back to parseable SQL. The output is a
// printing fixpoint: Parse(FormatStmt(s)) succeeds for every s produced by
// Parse, and formatting the re-parsed statement reproduces the same text.
// Expressions print fully parenthesized, so the text encodes the tree shape
// rather than relying on precedence.
func FormatStmt(s Stmt) string {
	var sb strings.Builder
	formatStmt(&sb, s)
	return sb.String()
}

func formatStmt(sb *strings.Builder, s Stmt) {
	switch t := s.(type) {
	case *Select:
		formatSelect(sb, t)
	case *SetOp:
		// The parser builds UNION ALL left-associative, so the left side
		// prints flat; a set-op right side needs parentheses to parse back
		// into the same shape.
		formatStmt(sb, t.Left)
		sb.WriteString(" UNION ALL ")
		if _, ok := t.Right.(*SetOp); ok {
			sb.WriteByte('(')
			formatStmt(sb, t.Right)
			sb.WriteByte(')')
		} else {
			formatStmt(sb, t.Right)
		}
	}
}

func formatSelect(sb *strings.Builder, s *Select) {
	sb.WriteString("SELECT ")
	if s.Distinct {
		sb.WriteString("DISTINCT ")
	}
	if s.Star {
		sb.WriteByte('*')
	} else {
		for i, item := range s.Items {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(FormatExpr(item.E))
			if item.Alias != "" {
				sb.WriteString(" AS ")
				sb.WriteString(item.Alias)
			}
		}
	}
	sb.WriteString(" FROM ")
	formatFrom(sb, s.From)
	if s.Where != nil {
		sb.WriteString(" WHERE ")
		sb.WriteString(FormatExpr(s.Where))
	}
	if len(s.GroupBy) > 0 {
		sb.WriteString(" GROUP BY ")
		for i, e := range s.GroupBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(FormatExpr(e))
		}
	}
	if s.Having != nil {
		sb.WriteString(" HAVING ")
		sb.WriteString(FormatExpr(s.Having))
	}
	if len(s.OrderBy) > 0 {
		sb.WriteString(" ORDER BY ")
		for i, k := range s.OrderBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(FormatExpr(k.E))
			if k.Desc {
				sb.WriteString(" DESC")
			}
		}
	}
	if s.Limit != nil {
		fmt.Fprintf(sb, " LIMIT %d", *s.Limit)
	}
}

func formatFrom(sb *strings.Builder, f FromItem) {
	switch t := f.(type) {
	case *TableRef:
		sb.WriteString(t.Name)
		if t.Alias != "" {
			sb.WriteString(" AS ")
			sb.WriteString(t.Alias)
		}
	case *Derived:
		sb.WriteByte('(')
		formatStmt(sb, t.Q)
		sb.WriteString(") AS ")
		sb.WriteString(t.Alias)
	case *JoinRef:
		// Join chains are left-associative like the parser's, so the left
		// side prints flat; parseFromPrimary never yields a JoinRef on the
		// right, so no parentheses are needed there either.
		formatFrom(sb, t.L)
		if t.Kind == JoinLeftOuter {
			sb.WriteString(" LEFT JOIN ")
		} else {
			sb.WriteString(" JOIN ")
		}
		formatFrom(sb, t.R)
		sb.WriteString(" ON ")
		sb.WriteString(FormatExpr(t.On))
	}
}
