package sql

import (
	"strings"
	"testing"
)

func parseOK(t *testing.T, q string) Stmt {
	t.Helper()
	s, err := Parse(q)
	if err != nil {
		t.Fatalf("Parse(%q): %v", q, err)
	}
	return s
}

func TestParseSimpleSelect(t *testing.T) {
	s := parseOK(t, "SELECT a, b AS bee FROM t WHERE a = 1").(*Select)
	if len(s.Items) != 2 || s.Items[1].Alias != "bee" {
		t.Errorf("items: %+v", s.Items)
	}
	ref, ok := s.From.(*TableRef)
	if !ok || ref.Name != "t" {
		t.Errorf("from: %+v", s.From)
	}
	bin, ok := s.Where.(*BinExpr)
	if !ok || bin.Op != "=" {
		t.Errorf("where: %+v", s.Where)
	}
}

func TestParseStar(t *testing.T) {
	s := parseOK(t, "SELECT * FROM t").(*Select)
	if !s.Star {
		t.Error("star not detected")
	}
}

func TestParseImplicitAlias(t *testing.T) {
	s := parseOK(t, "SELECT a x FROM t u").(*Select)
	if s.Items[0].Alias != "x" {
		t.Error("implicit select alias")
	}
	if s.From.(*TableRef).Alias != "u" {
		t.Error("implicit table alias")
	}
}

func TestParseJoins(t *testing.T) {
	s := parseOK(t, "SELECT * FROM a JOIN b ON a.x = b.y LEFT OUTER JOIN c ON b.y = c.z").(*Select)
	outer, ok := s.From.(*JoinRef)
	if !ok || outer.Kind != JoinLeftOuter {
		t.Fatalf("outer join: %+v", s.From)
	}
	inner, ok := outer.L.(*JoinRef)
	if !ok || inner.Kind != JoinInner {
		t.Fatalf("inner join: %+v", outer.L)
	}
	if _, ok := outer.R.(*TableRef); !ok {
		t.Error("right side should be a table")
	}
}

func TestParseDerivedTable(t *testing.T) {
	s := parseOK(t, "SELECT * FROM (SELECT a FROM t) AS d WHERE d.a > 0").(*Select)
	d, ok := s.From.(*Derived)
	if !ok || d.Alias != "d" {
		t.Fatalf("derived: %+v", s.From)
	}
	if _, ok := d.Q.(*Select); !ok {
		t.Error("derived body should be a select")
	}
}

func TestParseGroupByAggregates(t *testing.T) {
	s := parseOK(t, "SELECT a, COUNT(*) AS n, SUM(b) AS s FROM t GROUP BY a").(*Select)
	if len(s.GroupBy) != 1 {
		t.Fatal("group by missing")
	}
	c := s.Items[1].E.(*CallExpr)
	if c.Name != "COUNT" || !c.Star {
		t.Error("COUNT(*) wrong")
	}
	sum := s.Items[2].E.(*CallExpr)
	if sum.Name != "SUM" || sum.Star || sum.Arg == nil {
		t.Error("SUM wrong")
	}
}

func TestParseUnionAll(t *testing.T) {
	st := parseOK(t, "SELECT a FROM t UNION ALL SELECT b FROM u UNION ALL SELECT c FROM v")
	top, ok := st.(*SetOp)
	if !ok {
		t.Fatal("expected SetOp")
	}
	if _, ok := top.Left.(*SetOp); !ok {
		t.Error("UNION ALL should be left-associative")
	}
	// Parenthesized variant.
	st2 := parseOK(t, "(SELECT a FROM t) UNION ALL (SELECT b FROM u)")
	if _, ok := st2.(*SetOp); !ok {
		t.Error("parenthesized union")
	}
}

func TestParseExists(t *testing.T) {
	s := parseOK(t, "SELECT * FROM t WHERE EXISTS (SELECT 1 AS one FROM u WHERE u.x = t.y) AND NOT EXISTS (SELECT 1 AS one FROM v)").(*Select)
	bin := s.Where.(*BinExpr)
	if bin.Op != "AND" {
		t.Fatal("expected AND")
	}
	ex := bin.L.(*ExistsExpr)
	if ex.Neg {
		t.Error("first EXISTS should not be negated")
	}
	nex := bin.R.(*ExistsExpr)
	if !nex.Neg {
		t.Error("NOT EXISTS should be negated")
	}
}

func TestParseOrderLimit(t *testing.T) {
	s := parseOK(t, "SELECT a FROM t ORDER BY a DESC, b ASC LIMIT 7").(*Select)
	if len(s.OrderBy) != 2 || !s.OrderBy[0].Desc || s.OrderBy[1].Desc {
		t.Errorf("order by: %+v", s.OrderBy)
	}
	if s.Limit == nil || *s.Limit != 7 {
		t.Error("limit wrong")
	}
}

func TestParsePrecedence(t *testing.T) {
	s := parseOK(t, "SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3").(*Select)
	or := s.Where.(*BinExpr)
	if or.Op != "OR" {
		t.Fatal("OR should bind loosest")
	}
	and := or.R.(*BinExpr)
	if and.Op != "AND" {
		t.Error("AND should bind tighter than OR")
	}
	s2 := parseOK(t, "SELECT * FROM t WHERE a + b * c < 10").(*Select)
	cmp := s2.Where.(*BinExpr)
	if cmp.Op != "<" {
		t.Fatal("comparison should bind loosest among arithmetics")
	}
	add := cmp.L.(*BinExpr)
	if add.Op != "+" || add.R.(*BinExpr).Op != "*" {
		t.Error("* should bind tighter than +")
	}
}

func TestParseLiteralsAndIsNull(t *testing.T) {
	s := parseOK(t, "SELECT * FROM t WHERE a IS NOT NULL AND b IS NULL AND c = 'it''s' AND d = -5 AND e = 1.25 AND f = TRUE AND g <> FALSE AND h = NULL").(*Select)
	var count int
	var walk func(e Expr)
	walk = func(e Expr) {
		if bin, ok := e.(*BinExpr); ok && bin.Op == "AND" {
			walk(bin.L)
			walk(bin.R)
			return
		}
		count++
		switch tt := e.(type) {
		case *IsNullExpr:
		case *BinExpr:
			switch r := tt.R.(type) {
			case *StrLit:
				if r.V != "it's" {
					t.Errorf("string literal: %q", r.V)
				}
			case *IntLit:
				if r.V != -5 {
					t.Errorf("negative literal: %d", r.V)
				}
			case *FloatLit:
				if r.V != 1.25 {
					t.Errorf("float literal: %g", r.V)
				}
			case *BoolLit, *NullLit:
			default:
				t.Errorf("unexpected literal %T", tt.R)
			}
		default:
			t.Errorf("unexpected conjunct %T", e)
		}
	}
	walk(s.Where)
	if count != 8 {
		t.Errorf("conjuncts = %d, want 8", count)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM t",
		"SELECT * FROM",
		"SELECT * FROM (SELECT a FROM t)", // derived without alias
		"SELECT * FROM t WHERE",
		"SELECT * FROM t GROUP",
		"SELECT * FROM t LIMIT x",
		"SELECT * FROM t UNION SELECT * FROM u", // only UNION ALL
		"SELECT a FROM t trailing garbage (",
		"SELECT * FROM t WHERE a = 'unterminated",
		"SELECT * FROM t WHERE a ! b",
		"SELECT COUNT( FROM t",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) should fail", q)
		}
	}
}

func TestFormatExpr(t *testing.T) {
	s := parseOK(t, "SELECT * FROM t WHERE (a + 1) * 2 >= b AND NOT (c IS NULL)").(*Select)
	got := FormatExpr(s.Where)
	for _, frag := range []string{"(a + 1)", "* 2", ">= b", "NOT", "IS NULL"} {
		if !strings.Contains(got, frag) {
			t.Errorf("FormatExpr missing %q in %q", frag, got)
		}
	}
}

func TestCaseInsensitiveKeywords(t *testing.T) {
	parseOK(t, "select a from t where a = 1 group by a order by a limit 1")
	s := parseOK(t, "Select A From T").(*Select)
	// Identifiers are normalized to lowercase.
	if s.Items[0].E.(*Ident).Name != "a" || s.From.(*TableRef).Name != "t" {
		t.Error("identifiers should be lowercased")
	}
}
