// Package sql implements a lexer, parser and AST for the SQL subset the
// framework generates and accepts: SELECT with joins (inner and LEFT OUTER),
// derived tables, WHERE with EXISTS/NOT EXISTS subqueries, GROUP BY with
// aggregates, UNION ALL, ORDER BY and LIMIT.
package sql

import (
	"fmt"
	"strings"
)

// Stmt is a query statement: *Select or *SetOp.
type Stmt interface{ stmt() }

// Select is a single SELECT block.
type Select struct {
	Distinct bool
	Star     bool
	Items    []SelectItem
	From     FromItem
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    *int64
}

func (*Select) stmt() {}

// SetOp combines two statements; only UNION ALL is supported.
type SetOp struct {
	All         bool
	Left, Right Stmt
}

func (*SetOp) stmt() {}

// SelectItem is one projection, optionally aliased.
type SelectItem struct {
	E     Expr
	Alias string
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	E    Expr
	Desc bool
}

// FromItem is a table source: *TableRef, *Derived or *JoinRef.
type FromItem interface{ fromItem() }

// TableRef names a base table.
type TableRef struct {
	Name  string
	Alias string
}

func (*TableRef) fromItem() {}

// Derived is a parenthesized subquery with an alias.
type Derived struct {
	Q     Stmt
	Alias string
}

func (*Derived) fromItem() {}

// JoinKind distinguishes the supported join syntaxes.
type JoinKind int

// Join kinds.
const (
	JoinInner JoinKind = iota
	JoinLeftOuter
)

// JoinRef is an explicit join between two sources.
type JoinRef struct {
	Kind JoinKind
	L, R FromItem
	On   Expr
}

func (*JoinRef) fromItem() {}

// Expr is a scalar AST expression.
type Expr interface{ expr() }

// Ident is a possibly qualified column reference.
type Ident struct {
	Qual string // optional table qualifier
	Name string
}

// IntLit is an integer literal.
type IntLit struct{ V int64 }

// FloatLit is a floating-point literal.
type FloatLit struct{ V float64 }

// StrLit is a string literal.
type StrLit struct{ V string }

// BoolLit is TRUE or FALSE.
type BoolLit struct{ V bool }

// NullLit is NULL.
type NullLit struct{}

// BinExpr is a binary operation; Op is one of = <> < <= > >= + - * AND OR.
type BinExpr struct {
	Op   string
	L, R Expr
}

// NotExpr negates its operand.
type NotExpr struct{ E Expr }

// IsNullExpr is "E IS [NOT] NULL".
type IsNullExpr struct {
	E   Expr
	Neg bool
}

// ExistsExpr is "[NOT] EXISTS (subquery)".
type ExistsExpr struct {
	Neg bool
	Q   Stmt
}

// InExpr is "E [NOT] IN (e1, e2, ...)".
type InExpr struct {
	E    Expr
	Neg  bool
	List []Expr
}

// BetweenExpr is "E BETWEEN Lo AND Hi".
type BetweenExpr struct {
	E      Expr
	Lo, Hi Expr
}

// CallExpr is an aggregate function call.
type CallExpr struct {
	Name string // upper-cased
	Star bool   // COUNT(*)
	Arg  Expr
}

func (*Ident) expr()       {}
func (*IntLit) expr()      {}
func (*FloatLit) expr()    {}
func (*StrLit) expr()      {}
func (*BoolLit) expr()     {}
func (*NullLit) expr()     {}
func (*BinExpr) expr()     {}
func (*NotExpr) expr()     {}
func (*IsNullExpr) expr()  {}
func (*ExistsExpr) expr()  {}
func (*InExpr) expr()      {}
func (*BetweenExpr) expr() {}
func (*CallExpr) expr()    {}

// FormatExpr renders an expression AST back to parseable SQL, fully
// parenthesized (subqueries print via FormatStmt).
func FormatExpr(e Expr) string {
	switch t := e.(type) {
	case *Ident:
		if t.Qual != "" {
			return t.Qual + "." + t.Name
		}
		return t.Name
	case *IntLit:
		return fmt.Sprintf("%d", t.V)
	case *FloatLit:
		return fmt.Sprintf("%g", t.V)
	case *StrLit:
		return "'" + strings.ReplaceAll(t.V, "'", "''") + "'"
	case *BoolLit:
		if t.V {
			return "TRUE"
		}
		return "FALSE"
	case *NullLit:
		return "NULL"
	case *BinExpr:
		return "(" + FormatExpr(t.L) + " " + t.Op + " " + FormatExpr(t.R) + ")"
	case *NotExpr:
		return "(NOT " + FormatExpr(t.E) + ")"
	case *IsNullExpr:
		if t.Neg {
			return "(" + FormatExpr(t.E) + " IS NOT NULL)"
		}
		return "(" + FormatExpr(t.E) + " IS NULL)"
	case *ExistsExpr:
		// Parenthesized so a NOT EXISTS inside a NotExpr cannot fuse with
		// the outer NOT when re-parsed.
		if t.Neg {
			return "(NOT EXISTS (" + FormatStmt(t.Q) + "))"
		}
		return "(EXISTS (" + FormatStmt(t.Q) + "))"
	case *InExpr:
		parts := make([]string, len(t.List))
		for i, e := range t.List {
			parts[i] = FormatExpr(e)
		}
		op := " IN ("
		if t.Neg {
			op = " NOT IN ("
		}
		return "(" + FormatExpr(t.E) + op + strings.Join(parts, ", ") + "))"
	case *BetweenExpr:
		return "(" + FormatExpr(t.E) + " BETWEEN " + FormatExpr(t.Lo) + " AND " + FormatExpr(t.Hi) + ")"
	case *CallExpr:
		if t.Star {
			return t.Name + "(*)"
		}
		return t.Name + "(" + FormatExpr(t.Arg) + ")"
	}
	return "?"
}
