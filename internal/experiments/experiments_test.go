package experiments

import (
	"strings"
	"testing"
)

// quickRunner keeps experiment tests fast: small rule counts and suites.
func quickRunner() *Runner {
	return NewRunner(Config{Seed: 42, ScaleRows: 1.0, Quick: true, MaxTrials: 128})
}

// TestFig8Shape asserts the paper's headline result: PATTERN needs far fewer
// trials than RANDOM, and never fails.
func TestFig8Shape(t *testing.T) {
	r := quickRunner()
	res, err := r.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	random, pattern := res.Totals()
	if pattern >= random {
		t.Errorf("PATTERN (%d) should beat RANDOM (%d)", pattern, random)
	}
	for _, row := range res.Rows {
		if row.PatternFailed {
			t.Errorf("%s: PATTERN failed", row.Label)
		}
		if row.PatternTrials > 32 {
			t.Errorf("%s: PATTERN took %d trials", row.Label, row.PatternTrials)
		}
	}
	var sb strings.Builder
	res.Print(&sb)
	if !strings.Contains(sb.String(), "TOTAL") {
		t.Error("Print output missing totals")
	}
}

// TestFig9Shape: the PATTERN advantage grows for rule pairs.
func TestFig9Shape(t *testing.T) {
	r := NewRunner(Config{Seed: 42, ScaleRows: 1.0, MaxTrials: 64})
	res, err := r.PairGeneration(5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pairs != 10 {
		t.Fatalf("pairs = %d", res.Pairs)
	}
	if res.PatternTrials >= res.RandomTrials {
		t.Errorf("PATTERN pairs (%d) should beat RANDOM (%d)", res.PatternTrials, res.RandomTrials)
	}
	if res.PatternFailed > 0 {
		t.Errorf("PATTERN failed on %d pairs", res.PatternFailed)
	}
}

// TestFig11Shape: compression beats BASELINE for singleton rules.
func TestFig11Shape(t *testing.T) {
	r := quickRunner()
	rows, err := r.Fig11()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		if row.TopK >= row.Baseline {
			t.Errorf("n=%d: TOPK (%f) should beat BASELINE (%f)", row.N, row.TopK, row.Baseline)
		}
		if row.SMC >= row.Baseline {
			t.Errorf("n=%d: SMC (%f) should beat BASELINE (%f) for singletons", row.N, row.SMC, row.Baseline)
		}
	}
}

// TestFig14Shape: monotonicity saves optimizer calls at identical quality.
func TestFig14Shape(t *testing.T) {
	r := quickRunner()
	rows, err := r.Fig14()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		if !row.CostsEqual {
			t.Errorf("n=%d: monotonic TOPK changed the solution cost", row.N)
		}
		if row.CallsMono >= row.CallsFull {
			t.Errorf("n=%d: no optimizer calls saved (%d vs %d)", row.N, row.CallsMono, row.CallsFull)
		}
	}
}
