package experiments

import (
	"strings"
	"testing"
	"time"
)

func TestPrintFig9And10(t *testing.T) {
	results := []*PairGenResult{
		{N: 15, Pairs: 105, RandomTrials: 1187, PatternTrials: 383,
			RandomElapsed: 2 * time.Second, PatternElapsed: 300 * time.Millisecond},
		{N: 30, Pairs: 435, RandomTrials: 13000, PatternTrials: 950,
			RandomElapsed: 9 * time.Second, PatternElapsed: time.Second},
	}
	var sb strings.Builder
	PrintFig9(&sb, results)
	out := sb.String()
	for _, frag := range []string{"Figure 9", "1187", "383", "13000", "3.1x", "13.7x"} {
		if !strings.Contains(out, frag) {
			t.Errorf("Fig9 output missing %q:\n%s", frag, out)
		}
	}
	sb.Reset()
	PrintFig10(&sb, results)
	out = sb.String()
	for _, frag := range []string{"Figure 10", "2s", "300ms"} {
		if !strings.Contains(out, frag) {
			t.Errorf("Fig10 output missing %q:\n%s", frag, out)
		}
	}
}

func TestPrintCompression(t *testing.T) {
	rows := []*CompressionRow{
		{N: 5, K: 10, Baseline: 1000, SMC: 120, TopK: 100},
		{N: 10, K: 10, Baseline: 5000, SMC: 600, TopK: 400},
	}
	var sb strings.Builder
	PrintCompression(&sb, "title-here", rows, false)
	out := sb.String()
	for _, frag := range []string{"title-here", "10.0x", "1.20x", "12.5x", "1.50x"} {
		if !strings.Contains(out, frag) {
			t.Errorf("compression output missing %q:\n%s", frag, out)
		}
	}
	sb.Reset()
	PrintCompression(&sb, "by-k", rows, true)
	if !strings.Contains(sb.String(), "k") {
		t.Error("by-k header missing")
	}
}

func TestPrintFig14(t *testing.T) {
	rows := []*MonotonicityRow{
		{N: 5, Pairs: 10, CallsFull: 90, CallsMono: 12, CostsEqual: true},
	}
	var sb strings.Builder
	PrintFig14(&sb, rows)
	out := sb.String()
	for _, frag := range []string{"Figure 14", "90", "12", "7.5x", "true"} {
		if !strings.Contains(out, frag) {
			t.Errorf("Fig14 output missing %q:\n%s", frag, out)
		}
	}
}

func TestFig8Print(t *testing.T) {
	res := &Fig8Result{Rows: []GenRow{
		{Label: "1:JoinCommute", RandomTrials: 10, PatternTrials: 1},
		{Label: "2:Other", RandomTrials: 256, RandomFailed: true, PatternTrials: 2},
	}}
	var sb strings.Builder
	res.Print(&sb)
	out := sb.String()
	for _, frag := range []string{"JoinCommute", ">256", "TOTAL", "266", "3"} {
		if !strings.Contains(out, frag) {
			t.Errorf("Fig8 output missing %q:\n%s", frag, out)
		}
	}
	r, p := res.Totals()
	if r != 266 || p != 3 {
		t.Errorf("totals = %d, %d", r, p)
	}
}
