// Package experiments regenerates every figure of the paper's evaluation
// (§6, Figures 8–14) against this repository's substrate, plus Figure 15,
// an extension: the mutation score of the correctness oracle under
// rule-mutation fault injection. Absolute numbers differ from the paper
// (different optimizer, rules and hardware); the shapes under test are
// documented per figure in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"io"
	"time"

	"qtrtest/internal/catalog"
	"qtrtest/internal/core/qgen"
	"qtrtest/internal/core/suite"
	"qtrtest/internal/mutate"
	"qtrtest/internal/opt"
	"qtrtest/internal/par"
	"qtrtest/internal/rules"
)

// Config scales the experiments.
type Config struct {
	// Seed drives all generators.
	Seed int64
	// ScaleRows scales the TPC-H data.
	ScaleRows float64
	// Quick shrinks rule counts and suite sizes so the full set of figures
	// runs in seconds rather than minutes.
	Quick bool
	// MaxTrials caps per-target generation attempts (also the value
	// recorded when RANDOM exhausts its budget).
	MaxTrials int
	// Workers bounds the campaign worker pool (<= 0 means GOMAXPROCS). The
	// figure series — trial counts, suite costs, optimizer calls — are
	// byte-identical for every worker count; only wall-clock time changes.
	Workers int
}

// DefaultConfig mirrors the paper's parameters.
func DefaultConfig() Config {
	return Config{Seed: 42, ScaleRows: 1.0, MaxTrials: 256}
}

// Runner owns the database and optimizer shared by all figures.
type Runner struct {
	cfg Config
	cat *catalog.Catalog
	opt *opt.Optimizer
}

// NewRunner builds the test database and optimizer.
func NewRunner(cfg Config) *Runner {
	if cfg.MaxTrials <= 0 {
		cfg.MaxTrials = 256
	}
	if cfg.ScaleRows <= 0 {
		cfg.ScaleRows = 1.0
	}
	cat := catalog.LoadTPCH(catalog.TPCHConfig{ScaleRows: cfg.ScaleRows, Seed: cfg.Seed})
	return &Runner{cfg: cfg, cat: cat, opt: opt.New(rules.DefaultRegistry(), cat)}
}

// Optimizer exposes the shared optimizer.
func (r *Runner) Optimizer() *opt.Optimizer { return r.opt }

func (r *Runner) explorationIDs(n int) []rules.ID {
	var ids []rules.ID
	for _, rule := range rules.ExplorationRules() {
		ids = append(ids, rule.ID())
		if n > 0 && len(ids) == n {
			break
		}
	}
	return ids
}

func (r *Runner) newGenerator(seed int64) (*qgen.Generator, error) {
	return qgen.New(r.opt, qgen.Config{Seed: seed, MaxTrials: r.cfg.MaxTrials})
}

// ---------------------------------------------------------------------------
// Figure 8: RANDOM vs PATTERN trials per singleton rule.

// GenRow is one generation measurement.
type GenRow struct {
	Label          string
	RandomTrials   int
	PatternTrials  int
	RandomElapsed  time.Duration
	PatternElapsed time.Duration
	RandomFailed   bool
	PatternFailed  bool
}

// Fig8Result holds per-rule trial counts.
type Fig8Result struct {
	Rows []GenRow
}

// Totals sums trials across rows.
func (f *Fig8Result) Totals() (random, pattern int) {
	for _, r := range f.Rows {
		random += r.RandomTrials
		pattern += r.PatternTrials
	}
	return random, pattern
}

// Fig8 measures, for every exploration rule, the number of query-generation
// trials RANDOM and PATTERN need to find a query exercising the rule. Rules
// are measured on the campaign worker pool; every rule's generators are
// seeded from (Seed, rule id) alone, so the trial counts are identical for
// any worker count.
func (r *Runner) Fig8() (*Fig8Result, error) {
	n := 0 // all
	if r.cfg.Quick {
		n = 10
	}
	ids := r.explorationIDs(n)
	rows := make([]GenRow, len(ids))
	err := par.ForEachErr(r.cfg.Workers, len(ids), func(i int) error {
		id := ids[i]
		rule, err := rules.DefaultRegistry().ByID(id)
		if err != nil {
			return err
		}
		row := GenRow{Label: fmt.Sprintf("%d:%s", id, rule.Name())}

		gr, err := r.newGenerator(r.cfg.Seed + int64(id))
		if err != nil {
			return err
		}
		if q, err := gr.GenerateRandom([]rules.ID{id}); err != nil {
			row.RandomTrials = r.cfg.MaxTrials
			row.RandomFailed = true
		} else {
			row.RandomTrials = q.Trials
			row.RandomElapsed = q.Elapsed
		}

		gp, err := r.newGenerator(r.cfg.Seed + 1000 + int64(id))
		if err != nil {
			return err
		}
		if q, err := gp.GeneratePattern(id); err != nil {
			row.PatternTrials = r.cfg.MaxTrials
			row.PatternFailed = true
		} else {
			row.PatternTrials = q.Trials
			row.PatternElapsed = q.Elapsed
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Fig8Result{Rows: rows}, nil
}

// Print renders the figure as a table.
func (f *Fig8Result) Print(w io.Writer) {
	fmt.Fprintf(w, "Figure 8: trials to generate a query per singleton rule (RANDOM vs PATTERN)\n")
	fmt.Fprintf(w, "%-28s %8s %9s\n", "rule", "RANDOM", "PATTERN")
	for _, r := range f.Rows {
		fmt.Fprintf(w, "%-28s %8s %9s\n", r.Label, trialStr(r.RandomTrials, r.RandomFailed), trialStr(r.PatternTrials, r.PatternFailed))
	}
	tr, tp := f.Totals()
	fmt.Fprintf(w, "%-28s %8d %9d   (paper: 234 vs 38)\n", "TOTAL", tr, tp)
}

func trialStr(n int, failed bool) string {
	if failed {
		return fmt.Sprintf(">%d", n)
	}
	return fmt.Sprintf("%d", n)
}

// ---------------------------------------------------------------------------
// Figures 9 and 10: RANDOM vs PATTERN for rule pairs (trials and time).

// PairGenResult aggregates a rule-pair generation sweep for one n.
type PairGenResult struct {
	N              int
	Pairs          int
	RandomTrials   int
	PatternTrials  int
	RandomElapsed  time.Duration
	PatternElapsed time.Duration
	RandomFailures int
	PatternFailed  int
}

// PairGeneration measures trials and time to generate one query per rule
// pair over the first n exploration rules. It backs both Figure 9 (trials)
// and Figure 10 (time). Pairs run on the campaign worker pool, each with
// generators forked from (Seed, pair index); per-pair measurements land in
// index-addressed slots and are summed in pair order, so the trial series
// does not depend on the worker count.
func (r *Runner) PairGeneration(n int) (*PairGenResult, error) {
	ids := r.explorationIDs(n)
	gr, err := r.newGenerator(r.cfg.Seed + 31)
	if err != nil {
		return nil, err
	}
	gp, err := r.newGenerator(r.cfg.Seed + 67)
	if err != nil {
		return nil, err
	}
	var pairs [][2]rules.ID
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			pairs = append(pairs, [2]rules.ID{ids[i], ids[j]})
		}
	}
	type pairRow struct {
		randomTrials, patternTrials   int
		randomElapsed, patternElapsed time.Duration
		randomFailed, patternFailed   bool
	}
	rows := make([]pairRow, len(pairs))
	par.ForEach(r.cfg.Workers, len(pairs), func(i int) {
		p := pairs[i]
		var row pairRow
		if q, err := gr.Fork(par.DeriveSeed(r.cfg.Seed+31, i)).GenerateRandom(p[:]); err != nil {
			row.randomTrials = r.cfg.MaxTrials
			row.randomFailed = true
		} else {
			row.randomTrials = q.Trials
			row.randomElapsed = q.Elapsed
		}
		if q, err := gp.Fork(par.DeriveSeed(r.cfg.Seed+67, i)).GeneratePatternPair(p[0], p[1]); err != nil {
			row.patternTrials = r.cfg.MaxTrials
			row.patternFailed = true
		} else {
			row.patternTrials = q.Trials
			row.patternElapsed = q.Elapsed
		}
		rows[i] = row
	})
	res := &PairGenResult{N: n, Pairs: len(pairs)}
	for _, row := range rows {
		res.RandomTrials += row.randomTrials
		res.PatternTrials += row.patternTrials
		res.RandomElapsed += row.randomElapsed
		res.PatternElapsed += row.patternElapsed
		if row.randomFailed {
			res.RandomFailures++
		}
		if row.patternFailed {
			res.PatternFailed++
		}
	}
	return res, nil
}

// Fig9And10 runs the pair-generation sweep for the paper's two rule counts.
func (r *Runner) Fig9And10() ([]*PairGenResult, error) {
	ns := []int{15, 30}
	if r.cfg.Quick {
		ns = []int{6, 10}
	}
	var out []*PairGenResult
	for _, n := range ns {
		res, err := r.PairGeneration(n)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// PrintFig9 renders the trials comparison.
func PrintFig9(w io.Writer, results []*PairGenResult) {
	fmt.Fprintf(w, "Figure 9: total trials to generate a query per rule pair (log-scale in paper)\n")
	fmt.Fprintf(w, "%6s %7s %10s %10s %8s\n", "n", "pairs", "RANDOM", "PATTERN", "speedup")
	for _, res := range results {
		sp := float64(res.RandomTrials) / float64(max(res.PatternTrials, 1))
		fmt.Fprintf(w, "%6d %7d %10d %10d %7.1fx\n", res.N, res.Pairs, res.RandomTrials, res.PatternTrials, sp)
	}
	fmt.Fprintf(w, "(paper: n=15 1187 vs 383; n=30 >13000 vs <1000, ~13x)\n")
}

// PrintFig10 renders the time comparison.
func PrintFig10(w io.Writer, results []*PairGenResult) {
	fmt.Fprintf(w, "Figure 10: total time to generate a query per rule pair\n")
	fmt.Fprintf(w, "%6s %7s %12s %12s %8s\n", "n", "pairs", "RANDOM", "PATTERN", "speedup")
	for _, res := range results {
		sp := float64(res.RandomElapsed) / float64(max64(int64(res.PatternElapsed), 1))
		fmt.Fprintf(w, "%6d %7d %12s %12s %7.1fx\n", res.N, res.Pairs,
			res.RandomElapsed.Round(time.Millisecond), res.PatternElapsed.Round(time.Millisecond), sp)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// ---------------------------------------------------------------------------
// Figures 11-13: test-suite compression cost.

// CompressionRow compares the three strategies at one sweep point.
type CompressionRow struct {
	N        int
	K        int
	Pairs    bool
	Baseline float64
	SMC      float64
	TopK     float64
}

// compressionPoint builds a suite and runs the three algorithms.
func (r *Runner) compressionPoint(n, k int, pairs bool, seed int64) (*CompressionRow, error) {
	ids := r.explorationIDs(n)
	var targets []suite.Target
	if pairs {
		targets = suite.PairTargets(ids)
	} else {
		targets = suite.SingletonTargets(ids)
	}
	g, err := suite.Generate(r.opt, targets, suite.GenConfig{
		K: k, Seed: seed, ExtraOps: 3, MaxTrials: r.cfg.MaxTrials,
		Workers: r.cfg.Workers,
	})
	if err != nil {
		return nil, err
	}
	base, err := g.Baseline()
	if err != nil {
		return nil, err
	}
	smc, err := g.SetMultiCover()
	if err != nil {
		return nil, err
	}
	topk, err := g.TopKIndependent()
	if err != nil {
		return nil, err
	}
	return &CompressionRow{
		N: n, K: k, Pairs: pairs,
		Baseline: base.TotalCost, SMC: smc.TotalCost, TopK: topk.TotalCost,
	}, nil
}

// Fig11 sweeps the number of singleton rules at k=10.
func (r *Runner) Fig11() ([]*CompressionRow, error) {
	ns := []int{5, 10, 15, 20, 25, 30}
	k := 10
	if r.cfg.Quick {
		ns = []int{4, 8, 12}
		k = 4
	}
	var out []*CompressionRow
	for _, n := range ns {
		row, err := r.compressionPoint(n, k, false, r.cfg.Seed+int64(n))
		if err != nil {
			return nil, err
		}
		out = append(out, row)
	}
	return out, nil
}

// Fig12 sweeps the number of rules whose pairs are tested, at k=10.
func (r *Runner) Fig12() ([]*CompressionRow, error) {
	ns := []int{5, 10, 15}
	k := 10
	if r.cfg.Quick {
		ns = []int{4, 6}
		k = 3
	}
	var out []*CompressionRow
	for _, n := range ns {
		row, err := r.compressionPoint(n, k, true, r.cfg.Seed+100+int64(n))
		if err != nil {
			return nil, err
		}
		out = append(out, row)
	}
	return out, nil
}

// Fig13 varies the test-suite size k over rule pairs. The paper fixes n=15;
// the default here uses n=10 (45 pairs) so the k=20 point stays tractable on
// a laptop — the sweep variable and the SMC-degradation trend are identical.
func (r *Runner) Fig13() ([]*CompressionRow, error) {
	ks := []int{1, 2, 5, 10, 20}
	n := 10
	if r.cfg.Quick {
		ks = []int{1, 2, 4}
		n = 5
	}
	var out []*CompressionRow
	for _, k := range ks {
		row, err := r.compressionPoint(n, k, true, r.cfg.Seed+200+int64(k))
		if err != nil {
			return nil, err
		}
		out = append(out, row)
	}
	return out, nil
}

// PrintCompression renders a compression sweep.
func PrintCompression(w io.Writer, title string, rows []*CompressionRow, byK bool) {
	fmt.Fprintln(w, title)
	head := "n"
	if byK {
		head = "k"
	}
	fmt.Fprintf(w, "%6s %14s %14s %14s %10s %10s\n", head, "BASELINE", "SMC", "TOPK", "base/topk", "smc/topk")
	for _, r := range rows {
		x := r.N
		if byK {
			x = r.K
		}
		fmt.Fprintf(w, "%6d %14.0f %14.0f %14.0f %9.1fx %9.2fx\n",
			x, r.Baseline, r.SMC, r.TopK, r.Baseline/r.TopK, r.SMC/r.TopK)
	}
}

// ---------------------------------------------------------------------------
// Figure 14: optimizer calls saved by exploiting monotonicity.

// MonotonicityRow compares optimizer invocations for one sweep point.
type MonotonicityRow struct {
	N          int
	Pairs      int
	CallsFull  int
	CallsMono  int
	CostsEqual bool
}

// Fig14 measures, over rule-pair suites, the optimizer invocations needed to
// build the TOPK solution with and without the §5.3.1 monotonicity pruning.
func (r *Runner) Fig14() ([]*MonotonicityRow, error) {
	ns := []int{5, 10, 15}
	k := 10
	if r.cfg.Quick {
		ns = []int{4, 6}
		k = 3
	}
	var out []*MonotonicityRow
	for _, n := range ns {
		ids := r.explorationIDs(n)
		g, err := suite.Generate(r.opt, suite.PairTargets(ids), suite.GenConfig{
			K: k, Seed: r.cfg.Seed + 300 + int64(n), ExtraOps: 3, MaxTrials: r.cfg.MaxTrials,
			Workers: r.cfg.Workers,
		})
		if err != nil {
			return nil, err
		}
		full, err := g.TopKIndependent()
		if err != nil {
			return nil, err
		}
		g.ResetOptimizerCalls()
		mono, err := g.TopKMonotonic()
		if err != nil {
			return nil, err
		}
		diff := full.TotalCost - mono.TotalCost
		out = append(out, &MonotonicityRow{
			N: n, Pairs: len(g.Targets),
			CallsFull: full.OptimizerCalls, CallsMono: mono.OptimizerCalls,
			CostsEqual: diff < 1e-6 && diff > -1e-6,
		})
	}
	return out, nil
}

// PrintFig14 renders the monotonicity comparison.
func PrintFig14(w io.Writer, rows []*MonotonicityRow) {
	fmt.Fprintln(w, "Figure 14: optimizer calls to build the rule-pair bipartite graph (TOPK)")
	fmt.Fprintf(w, "%6s %7s %10s %12s %9s %10s\n", "n", "pairs", "full", "monotonic", "saving", "same cost")
	for _, r := range rows {
		fmt.Fprintf(w, "%6d %7d %10d %12d %8.1fx %10v\n",
			r.N, r.Pairs, r.CallsFull, r.CallsMono,
			float64(r.CallsFull)/float64(max(r.CallsMono, 1)), r.CostsEqual)
	}
	fmt.Fprintln(w, "(paper: 6x-9x fewer calls, identical solution quality)")
}

// ---------------------------------------------------------------------------
// Figure 15: mutation score of the correctness oracle (extension beyond the
// paper's evaluation).

// Fig15 runs the rule-mutation fault-injection campaign: every shipped
// mutant replaces one rule with a subtly wrong variant, and the full
// pipeline (generate, compress, execute, compare) runs once per mutant. The
// resulting mutation score validates the oracle itself — an oracle that
// cannot catch seeded faults says nothing when it reports zero mismatches on
// the healthy rule set.
func (r *Runner) Fig15() (*mutate.Score, error) {
	return mutate.Run(r.cat, mutate.Config{
		Seed: r.cfg.Seed, MaxTrials: r.cfg.MaxTrials, Workers: r.cfg.Workers,
	})
}

// PrintFig15 renders the mutation-score table.
func PrintFig15(w io.Writer, s *mutate.Score) {
	fmt.Fprintln(w, "Figure 15: mutation score of the correctness oracle (injected rule faults)")
	s.Print(w, false)
	fmt.Fprintln(w, "(every shipped mutant must be caught by the uncompressed BASELINE suite)")
}
