package fuzz

import (
	"bytes"
	"testing"

	"qtrtest/internal/catalog"
)

// TestDeterminismAcrossWorkers is the campaign's core contract: the same
// seed produces a byte-identical JSON report at every worker count.
func TestDeterminismAcrossWorkers(t *testing.T) {
	cat := catalog.LoadTPCH(catalog.TPCHConfig{ScaleRows: 0.1, Seed: 1})
	var reports [][]byte
	for _, workers := range []int{1, 8} {
		rep, err := Run(Config{Seed: 7, N: 96, Workers: workers, Catalog: cat, DB: "tpch"})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		data, err := rep.JSON()
		if err != nil {
			t.Fatalf("workers=%d: JSON: %v", workers, err)
		}
		reports = append(reports, data)
	}
	if !bytes.Equal(reports[0], reports[1]) {
		t.Errorf("reports differ between -workers 1 and 8:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s",
			reports[0], reports[1])
	}
}

// TestPristineNoFindings: under the unmutated registry, neither the
// differential nor the metamorphic oracle may fire — any finding here is a
// false positive in the fuzzer itself.
func TestPristineNoFindings(t *testing.T) {
	cat := catalog.LoadTPCH(catalog.DefaultTPCHConfig())
	for _, seed := range []int64{1, 42} {
		rep, err := Run(Config{Seed: seed, N: 200, Workers: 8, Catalog: cat, DB: "tpch"})
		if err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
		if len(rep.Findings) != 0 {
			f := rep.Findings[0]
			t.Errorf("seed=%d: pristine campaign reported %d findings; first: kind=%s rule=%d rewrite=%q detail=%s sql=%s",
				seed, len(rep.Findings), f.Kind, f.Rule, f.Rewrite, f.Detail, f.SQL)
		}
		if rep.Generated == 0 {
			t.Errorf("seed=%d: no queries reached execution", seed)
		}
		if rep.PlanShapes < 10 {
			t.Errorf("seed=%d: only %d distinct plan shapes; steering has nothing to work with", seed, rep.PlanShapes)
		}
	}
}

// TestPristineRandomCatalog runs the pristine oracle over a generated
// catalog: the random-schema path must be as false-positive-free as TPC-H.
func TestPristineRandomCatalog(t *testing.T) {
	rep, err := Run(Config{Seed: 3, N: 150, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if rep.DB != "rand" {
		t.Errorf("defaulted catalog should label the report rand, got %q", rep.DB)
	}
	if len(rep.Findings) != 0 {
		f := rep.Findings[0]
		t.Errorf("pristine random-catalog campaign reported %d findings; first: kind=%s rule=%d rewrite=%q detail=%s sql=%s",
			len(rep.Findings), f.Kind, f.Rule, f.Rewrite, f.Detail, f.SQL)
	}
	if rep.Generated == 0 {
		t.Error("no queries reached execution on the random catalog")
	}
}

// TestReproLine pins the reproducer format: it must name the seed, db and
// mutant, and promise worker-independence.
func TestReproLine(t *testing.T) {
	cfg := Config{Seed: 9, N: 50, DB: "tpch", Mutant: "wrong-agg"}
	cfg.setDefaults()
	got := cfg.repro()
	want := "qtrtest -db tpch -seed 9 fuzz -n 50 -mutant wrong-agg  # any -workers"
	if got != want {
		t.Errorf("repro line:\n got %q\nwant %q", got, want)
	}
	rcfg := Config{Seed: 4}
	rcfg.setDefaults()
	got = rcfg.repro()
	want = "qtrtest -seed 4 fuzz -n 500 -randcat  # any -workers"
	if got != want {
		t.Errorf("randcat repro line:\n got %q\nwant %q", got, want)
	}
	ecfg := Config{Seed: 9, N: 50, DB: "tpch", Mutant: "wrong-agg", EET: true}
	ecfg.setDefaults()
	got = ecfg.repro()
	want = "qtrtest -db tpch -seed 9 fuzz -n 50 -eet -mutant wrong-agg  # any -workers"
	if got != want {
		t.Errorf("eet repro line:\n got %q\nwant %q", got, want)
	}
}

// TestRandomCatalogDeterministic: the same seed must build the same catalog.
func TestRandomCatalogDeterministic(t *testing.T) {
	a, b := RandomCatalog(11), RandomCatalog(11)
	an, bn := a.TableNames(), b.TableNames()
	if len(an) == 0 || len(an) != len(bn) {
		t.Fatalf("table counts differ: %d vs %d", len(an), len(bn))
	}
	for i := range an {
		ta, _ := a.Table(an[i])
		tb, _ := b.Table(bn[i])
		if ta.Name != tb.Name || len(ta.Columns) != len(tb.Columns) || len(ta.Rows) != len(tb.Rows) {
			t.Errorf("table %d differs: %s/%d cols/%d rows vs %s/%d cols/%d rows",
				i, ta.Name, len(ta.Columns), len(ta.Rows), tb.Name, len(tb.Columns), len(tb.Rows))
		}
	}
}
