package fuzz

import (
	"testing"

	"qtrtest/internal/datum"
	"qtrtest/internal/logical"
	"qtrtest/internal/scalar"
)

// Synthetic trees with synthetic keep predicates exercise Shrink in
// isolation: no SQL rendering, binding or execution — the campaign-level
// validity of shrunk reproducers is covered by shrunkStillTrips.

func scanNode(cols ...scalar.ColumnID) *logical.Expr {
	return &logical.Expr{Op: logical.OpGet, Table: "t", Cols: cols}
}

func cmpGT(col scalar.ColumnID, v int64) scalar.Expr {
	return &scalar.Cmp{Op: scalar.CmpGT, L: &scalar.ColRef{ID: col}, R: &scalar.Const{D: datum.NewInt(v)}}
}

// TestShrinkHoistsToMinimalTree: with a keep predicate that only requires a
// GroupBy somewhere in the tree, a four-operator tower must shrink to
// GroupBy over Scan — every wrapper hoisted away, the GroupBy itself kept.
func TestShrinkHoistsToMinimalTree(t *testing.T) {
	tree := &logical.Expr{
		Op:     logical.OpSelect,
		Filter: cmpGT(3, 10),
		Children: []*logical.Expr{{
			Op:        logical.OpGroupBy,
			GroupCols: []scalar.ColumnID{1},
			Aggs:      []scalar.Agg{{Op: scalar.AggCountStar, Out: 3}},
			Children: []*logical.Expr{{
				Op:       logical.OpSelect,
				Filter:   cmpGT(2, 5),
				Children: []*logical.Expr{scanNode(1, 2)},
			}},
		}},
	}
	keep := func(e *logical.Expr) bool { return e.ContainsOp(logical.OpGroupBy) }
	got := Shrink(tree, keep, 0)
	if got.CountOps() != 2 {
		t.Fatalf("shrunk to %d ops, want 2:\n%s", got.CountOps(), got)
	}
	if got.Op != logical.OpGroupBy || got.Children[0].Op != logical.OpGet {
		t.Errorf("shrunk shape is %s over %s, want GroupBy over Scan", got.Op, got.Children[0].Op)
	}
	if tree.CountOps() != 4 {
		t.Errorf("input tree was mutated: now %d ops, want 4", tree.CountOps())
	}
}

// TestShrinkDropsConjuncts: a keep predicate pinned to one conjunct must
// strip the other conjuncts from a Select's filter.
func TestShrinkDropsConjuncts(t *testing.T) {
	needle := cmpGT(2, 7)
	tree := &logical.Expr{
		Op:       logical.OpSelect,
		Filter:   scalar.MakeAnd([]scalar.Expr{cmpGT(1, 1), needle, cmpGT(3, 3)}),
		Children: []*logical.Expr{scanNode(1, 2, 3)},
	}
	keep := func(e *logical.Expr) bool {
		if e.Op != logical.OpSelect {
			return false
		}
		for _, c := range scalar.Conjuncts(e.Filter) {
			if scalar.Equal(c, needle) {
				return true
			}
		}
		return false
	}
	got := Shrink(tree, keep, 0)
	conj := scalar.Conjuncts(got.Filter)
	if len(conj) != 1 || !scalar.Equal(conj[0], needle) {
		t.Errorf("shrunk filter is %s, want exactly the needle conjunct", got.Filter.SQL(func(id scalar.ColumnID) string { return "c" }))
	}
	if len(scalar.Conjuncts(tree.Filter)) != 3 {
		t.Error("input tree's filter was mutated")
	}
}

// TestShrinkDropsSiblingSubtree: hoisting one side of a join must discard
// the entire other input when keep only needs the surviving side.
func TestShrinkDropsSiblingSubtree(t *testing.T) {
	left := &logical.Expr{
		Op:       logical.OpSelect,
		Filter:   cmpGT(1, 0),
		Children: []*logical.Expr{scanNode(1, 2)},
	}
	right := &logical.Expr{
		Op:       logical.OpSelect,
		Filter:   cmpGT(3, 0),
		Children: []*logical.Expr{scanNode(3, 4)},
	}
	tree := &logical.Expr{
		Op:       logical.OpJoin,
		On:       &scalar.Cmp{Op: scalar.CmpEQ, L: &scalar.ColRef{ID: 1}, R: &scalar.ColRef{ID: 3}},
		Children: []*logical.Expr{left, right},
	}
	// Keep any tree that still scans the right input's table columns.
	keep := func(e *logical.Expr) bool {
		found := false
		e.Walk(func(n *logical.Expr) {
			if n.Op == logical.OpGet && len(n.Cols) > 0 && n.Cols[0] == 3 {
				found = true
			}
		})
		return found
	}
	got := Shrink(tree, keep, 0)
	if got.Op != logical.OpGet || got.Cols[0] != 3 {
		t.Errorf("shrunk to:\n%s\nwant the bare right-input scan", got)
	}
}

// TestShrinkDeterministic: Shrink's candidate order is fixed and keep is
// pure, so repeated runs on equal inputs give structurally equal outputs.
func TestShrinkDeterministic(t *testing.T) {
	build := func() *logical.Expr {
		return &logical.Expr{
			Op:   logical.OpSort,
			Keys: []logical.SortKey{{Col: 1}, {Col: 2, Desc: true}},
			Children: []*logical.Expr{{
				Op:     logical.OpSelect,
				Filter: scalar.MakeAnd([]scalar.Expr{cmpGT(1, 1), cmpGT(2, 2)}),
				Children: []*logical.Expr{{
					Op:        logical.OpGroupBy,
					GroupCols: []scalar.ColumnID{1, 2},
					Aggs:      []scalar.Agg{{Op: scalar.AggCountStar, Out: 5}},
					Children:  []*logical.Expr{scanNode(1, 2)},
				}},
			}},
		}
	}
	keep := func(e *logical.Expr) bool {
		return e.ContainsOp(logical.OpGroupBy) && e.ContainsOp(logical.OpSelect)
	}
	a := Shrink(build(), keep, 0)
	b := Shrink(build(), keep, 0)
	if a.Hash() != b.Hash() {
		t.Errorf("repeated shrink differs:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
	if a.ContainsOp(logical.OpSort) {
		t.Errorf("Sort should have been hoisted away:\n%s", a)
	}
}

// TestShrinkRespectsBudget: maxChecks=1 allows at most one keep evaluation,
// so at most the very first candidate reduction can be accepted.
func TestShrinkRespectsBudget(t *testing.T) {
	tree := &logical.Expr{
		Op:     logical.OpSelect,
		Filter: cmpGT(1, 0),
		Children: []*logical.Expr{{
			Op:       logical.OpSelect,
			Filter:   cmpGT(2, 0),
			Children: []*logical.Expr{scanNode(1, 2)},
		}},
	}
	calls := 0
	keep := func(e *logical.Expr) bool { calls++; return true }
	got := Shrink(tree, keep, 1)
	if calls > 1 {
		t.Errorf("keep evaluated %d times, budget was 1", calls)
	}
	// One accepted hoist: Select over Scan (3 ops -> 2 ops).
	if got.CountOps() != 2 {
		t.Errorf("shrunk to %d ops, want exactly one accepted reduction (2 ops)", got.CountOps())
	}
}

// TestShrinkKeepsUnshrinkable: when keep rejects every candidate the input
// comes back unchanged (same node, not a copy).
func TestShrinkKeepsUnshrinkable(t *testing.T) {
	tree := &logical.Expr{
		Op:       logical.OpSelect,
		Filter:   cmpGT(1, 0),
		Children: []*logical.Expr{scanNode(1)},
	}
	orig := tree.Hash()
	got := Shrink(tree, func(*logical.Expr) bool { return false }, 0)
	if got != tree {
		t.Error("unshrinkable tree should be returned as-is")
	}
	if tree.Hash() != orig {
		t.Error("input tree was mutated")
	}
}
