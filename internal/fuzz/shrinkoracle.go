package fuzz

import (
	"errors"

	"qtrtest/internal/bind"
	"qtrtest/internal/core/suite"
	"qtrtest/internal/exec"
	"qtrtest/internal/logical"
	"qtrtest/internal/opt"
	"qtrtest/internal/rules"
	"qtrtest/internal/sqlgen"
)

// shrinkFinding minimizes the finding's query tree while the same oracle
// keeps failing, and records the shrunk SQL on the public finding. Each kind
// gets its own keep predicate; rewrite-error findings are left unshrunk — a
// broken rewrite wants its full originating query as context.
func (c *campaign) shrinkFinding(f *finding) {
	var keep func(*logical.Expr) bool
	switch f.pub.Kind {
	case KindDifferential:
		keep = func(t *logical.Expr) bool {
			return c.diffTrips(t, f.md, rules.ID(f.pub.Rule))
		}
	case KindMetamorphic:
		keep = func(t *logical.Expr) bool {
			return c.metaTrips(t, f.md, f.pub.Rewrite, f.pub.Seed)
		}
	case KindExecError:
		keep = func(t *logical.Expr) bool {
			return c.execErrs(t, f.md, rules.ID(f.pub.Rule))
		}
	default:
		return
	}
	if !keep(f.tree) {
		// The original no longer trips when re-derived (it should — every
		// stage is deterministic — so this is pure defensiveness): report
		// it unshrunk rather than attach a wrong reproducer.
		return
	}
	shrunk := Shrink(f.tree, keep, c.cfg.MaxShrinkChecks)
	sqlText, err := sqlgen.Generate(shrunk, f.md)
	if err != nil {
		return
	}
	f.pub.ShrunkSQL = sqlText
	f.pub.ShrunkOps = shrunk.CountOps()
}

// rebindPlan runs a candidate tree through the standard pipeline up to the
// optimized base plan, returning the re-bound tree alongside.
func (c *campaign) rebind(t *logical.Expr, md *logical.Metadata) (*bind.Bound, error) {
	sqlText, err := sqlgen.Generate(t, md)
	if err != nil {
		return nil, err
	}
	return bind.BindSQL(sqlText, c.cfg.Catalog)
}

// diffTrips reports whether the differential oracle still flags the query
// with rule id disabled.
func (c *campaign) diffTrips(t *logical.Expr, md *logical.Metadata, id rules.ID) bool {
	bound, err := c.rebind(t, md)
	if err != nil {
		return false
	}
	res, err := c.opt.Optimize(bound.Tree, bound.MD, opt.Options{})
	if err != nil || res.Plan.Cost > c.cfg.MaxCost {
		return false
	}
	base, err := suite.ExecBaseEngine(c.cfg.Engine, res.Plan, c.cfg.Catalog, c.cfg.MaxRows, c.cfg.MaxWork)
	if err != nil {
		return false
	}
	altRes, err := c.opt.Optimize(bound.Tree, bound.MD, opt.Options{Disabled: rules.NewSet(id)})
	if err != nil || altRes.Plan.Cost > c.cfg.MaxCost {
		return false
	}
	out, err := suite.CompareEdgeEngine(c.cfg.Engine, c.cfg.Catalog, base, altRes.Plan, c.cfg.MaxRows, c.cfg.MaxWork)
	return err == nil && !out.Skipped && !out.Capped && out.Verdict == exec.VerdictMismatch
}

// metaTrips reports whether the named metamorphic rewrite still applies to
// the query and still produces mismatching results. seed is the finding's
// derived seed, so seed-dependent rewrites (EET site selection) replay the
// same choice on each shrink candidate.
func (c *campaign) metaTrips(t *logical.Expr, md *logical.Metadata, name string, seed int64) bool {
	bound, err := c.rebind(t, md)
	if err != nil {
		return false
	}
	res, err := c.opt.Optimize(bound.Tree, bound.MD, opt.Options{})
	if err != nil || res.Plan.Cost > c.cfg.MaxCost {
		return false
	}
	base, err := suite.ExecBaseEngine(c.cfg.Engine, res.Plan, c.cfg.Catalog, c.cfg.MaxRows, c.cfg.MaxWork)
	if err != nil {
		return false
	}
	for _, rw := range c.rewrites {
		if rw.Name != name {
			continue
		}
		alt := rw.Apply(bound.Tree, bound.MD, seed)
		if alt == nil {
			return false
		}
		altPlan, err := c.planTree(alt, bound.MD)
		if err != nil || altPlan.Cost > c.cfg.MaxCost {
			return false
		}
		out, err := suite.CompareEdgeEngine(c.cfg.Engine, c.cfg.Catalog, base, altPlan, c.cfg.MaxRows, c.cfg.MaxWork)
		return err == nil && !out.Skipped && !out.Capped && out.Verdict == exec.VerdictMismatch
	}
	return false
}

// execErrs reports whether the pipeline still fails with an execution error
// (not the row cap): on the base plan when id is 0, else on Plan(q,¬id).
func (c *campaign) execErrs(t *logical.Expr, md *logical.Metadata, id rules.ID) bool {
	bound, err := c.rebind(t, md)
	if err != nil {
		return false
	}
	res, err := c.opt.Optimize(bound.Tree, bound.MD, opt.Options{})
	if err != nil || res.Plan.Cost > c.cfg.MaxCost {
		return false
	}
	plan := res.Plan
	if id != 0 {
		altRes, err := c.opt.Optimize(bound.Tree, bound.MD, opt.Options{Disabled: rules.NewSet(id)})
		if err != nil || altRes.Plan.Cost > c.cfg.MaxCost {
			return false
		}
		plan = altRes.Plan
	}
	_, err = exec.RunEngine(c.cfg.Engine, plan, c.cfg.Catalog, c.cfg.MaxRows, c.cfg.MaxWork)
	return err != nil && !errors.Is(err, exec.ErrRowLimit)
}
