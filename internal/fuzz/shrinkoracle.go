package fuzz

import (
	"errors"

	"qtrtest/internal/bind"
	"qtrtest/internal/core/suite"
	"qtrtest/internal/exec"
	"qtrtest/internal/logical"
	"qtrtest/internal/opt"
	"qtrtest/internal/physical"
	"qtrtest/internal/rescache"
	"qtrtest/internal/rules"
	"qtrtest/internal/sqlgen"
)

// shrinkBudget charges the shrinker's oracle budget by execution identity: a
// plan execution costs one check the first time its cache key appears during
// this finding's shrink and is free on every recurrence — exactly the
// executions that would miss a result cache primed by this shrink alone.
//
// The seen-set is deliberately local to the finding rather than asking the
// shared campaign cache "would this hit?": cache contents depend on eviction
// order and on what other workers executed first, so consulting them would
// make shrinking scheduling-dependent. The local set makes the charge
// sequence a pure function of the finding — byte-identical reports with the
// cache on or off, at any worker count — while still modeling what the
// shrinker actually costs when a cache is present, since replayed candidates
// are hits there too.
type shrinkBudget struct {
	remaining int
	seen      map[rescache.Key]struct{}
}

func newShrinkBudget(n int) *shrinkBudget {
	return &shrinkBudget{remaining: n, seen: make(map[rescache.Key]struct{})}
}

// charge deducts one check if this execution key is new to the finding.
func (b *shrinkBudget) charge(eng exec.Engine, plan *physical.Expr, c *campaign) {
	b.chargeKey(rescache.KeyFor(eng, plan, c.cfg.Catalog, c.cfg.MaxRows, c.cfg.MaxWork))
}

// chargeKey is charge for a pre-built execution key (tree executions on a
// backend carry their own key shape).
func (b *shrinkBudget) chargeKey(k rescache.Key) {
	if _, ok := b.seen[k]; ok {
		return
	}
	b.seen[k] = struct{}{}
	b.remaining--
}

func (b *shrinkBudget) spent() bool { return b.remaining <= 0 }

// shrinkFinding minimizes the finding's query tree while the same oracle
// keeps failing, and records the shrunk SQL on the public finding. Each kind
// gets its own keep predicate; rewrite-error findings are left unshrunk — a
// broken rewrite wants its full originating query as context.
//
// The oracle budget (cfg.MaxShrinkChecks) counts distinct plan executions,
// not keep evaluations: candidates whose plans were all executed earlier in
// the shrink re-check for free, so the budget buys strictly more reductions
// than it used to. Shrink's own check bound is effectively disabled — budget
// exhaustion rejects every candidate, which terminates the reduction loop.
func (c *campaign) shrinkFinding(f *finding) {
	budget := newShrinkBudget(c.cfg.MaxShrinkChecks)
	var keep func(*logical.Expr) bool
	switch f.pub.Kind {
	case KindDifferential:
		keep = func(t *logical.Expr) bool {
			return !budget.spent() && c.diffTrips(t, f.md, rules.ID(f.pub.Rule), budget)
		}
	case KindMetamorphic:
		keep = func(t *logical.Expr) bool {
			return !budget.spent() && c.metaTrips(t, f.md, f.pub.Rewrite, f.pub.Seed, budget)
		}
	case KindExecError:
		keep = func(t *logical.Expr) bool {
			return !budget.spent() && c.execErrs(t, f.md, rules.ID(f.pub.Rule), budget)
		}
	case KindBackend:
		keep = func(t *logical.Expr) bool {
			return !budget.spent() && c.backendTrips(t, f.md, budget)
		}
	default:
		return
	}
	if !keep(f.tree) {
		// The original no longer trips when re-derived (it should — every
		// stage is deterministic — so this is pure defensiveness): report
		// it unshrunk rather than attach a wrong reproducer.
		return
	}
	shrunk := Shrink(f.tree, keep, 1<<30)
	sqlText, err := sqlgen.Generate(shrunk, f.md)
	if err != nil {
		return
	}
	f.pub.ShrunkSQL = sqlText
	f.pub.ShrunkOps = shrunk.CountOps()
}

// rebindPlan runs a candidate tree through the standard pipeline up to the
// optimized base plan, returning the re-bound tree alongside.
func (c *campaign) rebind(t *logical.Expr, md *logical.Metadata) (*bind.Bound, error) {
	sqlText, err := sqlgen.Generate(t, md)
	if err != nil {
		return nil, err
	}
	return bind.BindSQL(sqlText, c.cfg.Catalog)
}

// diffTrips reports whether the differential oracle still flags the query
// with rule id disabled.
func (c *campaign) diffTrips(t *logical.Expr, md *logical.Metadata, id rules.ID, budget *shrinkBudget) bool {
	bound, err := c.rebind(t, md)
	if err != nil {
		return false
	}
	res, err := c.opt.Optimize(bound.Tree, bound.MD, opt.Options{})
	if err != nil || res.Plan.Cost > c.cfg.MaxCost {
		return false
	}
	budget.charge(c.cfg.Engine, res.Plan, c)
	base, err := c.execBase(res.Plan)
	if err != nil {
		return false
	}
	altRes, err := c.opt.Optimize(bound.Tree, bound.MD, opt.Options{Disabled: rules.NewSet(id)})
	if err != nil || altRes.Plan.Cost > c.cfg.MaxCost {
		return false
	}
	out, err := c.compareEdge(base, altRes.Plan)
	if err == nil && !out.Skipped {
		budget.charge(c.cfg.Engine, altRes.Plan, c)
	}
	return err == nil && !out.Skipped && !out.Capped && out.Verdict == exec.VerdictMismatch
}

// metaTrips reports whether the named metamorphic rewrite still applies to
// the query and still produces mismatching results. seed is the finding's
// derived seed, so seed-dependent rewrites (EET site selection) replay the
// same choice on each shrink candidate.
func (c *campaign) metaTrips(t *logical.Expr, md *logical.Metadata, name string, seed int64, budget *shrinkBudget) bool {
	bound, err := c.rebind(t, md)
	if err != nil {
		return false
	}
	res, err := c.opt.Optimize(bound.Tree, bound.MD, opt.Options{})
	if err != nil || res.Plan.Cost > c.cfg.MaxCost {
		return false
	}
	budget.charge(c.cfg.Engine, res.Plan, c)
	base, err := c.execBase(res.Plan)
	if err != nil {
		return false
	}
	for _, rw := range c.rewrites {
		if rw.Name != name {
			continue
		}
		alt := rw.Apply(bound.Tree, bound.MD, seed)
		if alt == nil {
			return false
		}
		altPlan, err := c.planTree(alt, bound.MD)
		if err != nil || altPlan.Cost > c.cfg.MaxCost {
			return false
		}
		out, err := c.compareEdge(base, altPlan)
		if err == nil && !out.Skipped {
			budget.charge(c.cfg.Engine, altPlan, c)
		}
		return err == nil && !out.Skipped && !out.Capped && out.Verdict == exec.VerdictMismatch
	}
	return false
}

// backendTrips reports whether the cross-engine oracle still fires on the
// candidate: the independent backend's replay of the query either errors
// where the base succeeded or produces mismatching results.
func (c *campaign) backendTrips(t *logical.Expr, md *logical.Metadata, budget *shrinkBudget) bool {
	bound, err := c.rebind(t, md)
	if err != nil {
		return false
	}
	res, err := c.opt.Optimize(bound.Tree, bound.MD, opt.Options{})
	if err != nil || res.Plan.Cost > c.cfg.MaxCost {
		return false
	}
	budget.charge(c.cfg.Engine, res.Plan, c)
	base, err := c.execBase(res.Plan)
	if err != nil {
		return false
	}
	if exec.HasTreeBackend(c.backend) {
		budget.chargeKey(rescache.KeyForTree(c.backend, bound.Tree, c.cfg.Catalog, c.cfg.MaxRows, c.cfg.MaxWork))
	} else {
		budget.charge(c.backend, res.Plan, c)
	}
	out, err := suite.CrossCheckBase(c.cache, c.backend, c.cfg.Engine,
		bound.Tree, base, c.cfg.Catalog, c.cfg.MaxRows, c.cfg.MaxWork)
	if err != nil {
		return true
	}
	return !out.Skipped && !out.Capped && out.Verdict == exec.VerdictMismatch
}

// execErrs reports whether the pipeline still fails with an execution error
// (not the row cap): on the base plan when id is 0, else on Plan(q,¬id).
func (c *campaign) execErrs(t *logical.Expr, md *logical.Metadata, id rules.ID, budget *shrinkBudget) bool {
	bound, err := c.rebind(t, md)
	if err != nil {
		return false
	}
	res, err := c.opt.Optimize(bound.Tree, bound.MD, opt.Options{})
	if err != nil || res.Plan.Cost > c.cfg.MaxCost {
		return false
	}
	plan := res.Plan
	if id != 0 {
		altRes, err := c.opt.Optimize(bound.Tree, bound.MD, opt.Options{Disabled: rules.NewSet(id)})
		if err != nil || altRes.Plan.Cost > c.cfg.MaxCost {
			return false
		}
		plan = altRes.Plan
	}
	budget.charge(c.cfg.Engine, plan, c)
	_, err = c.cache.Run(c.cfg.Engine, plan, c.cfg.Catalog, c.cfg.MaxRows, c.cfg.MaxWork)
	return err != nil && !errors.Is(err, exec.ErrRowLimit)
}
