package fuzz

import (
	"bytes"
	"testing"

	"qtrtest/internal/bind"
	"qtrtest/internal/catalog"
	"qtrtest/internal/core/suite"
	"qtrtest/internal/exec"
	"qtrtest/internal/mutate"
	"qtrtest/internal/opt"
)

// TestBackendCampaignCatchesAllMutants is the cross-engine acceptance test:
// a blind fuzz campaign with the reference backend as a third oracle must
// still catch every shipped mutant at seeds 1 and 42 — the backend check may
// never mask the existing oracles — and the wrong-agg mutant must be caught
// at least once by the backend oracle itself (a KindBackend finding), since
// an executor-side aggregate fault replayed on both sides of the
// self-differential comparison is exactly what the independent engine
// exists to see.
func TestBackendCampaignCatchesAllMutants(t *testing.T) {
	cat := catalog.LoadTPCH(catalog.DefaultTPCHConfig())
	sawBackendKind := false
	for _, seed := range []int64{1, 42} {
		for _, m := range mutate.Mutants() {
			rep, err := Run(Config{
				Seed: seed, N: 300, Workers: 8, Catalog: cat, DB: "tpch",
				Registry: m.Registry(), Mutant: string(m.Kind), Backend: "ref",
				StopOnFinding: true, MaxShrunk: 1,
			})
			if err != nil {
				t.Fatalf("seed=%d mutant=%s: %v", seed, m.Kind, err)
			}
			if len(rep.Findings) == 0 {
				t.Errorf("seed=%d mutant=%s: backend campaign missed the mutant (0 findings in %d queries)",
					seed, m.Kind, rep.N)
				continue
			}
			if rep.BackendChecks == 0 {
				t.Errorf("seed=%d mutant=%s: campaign ran no backend checks", seed, m.Kind)
			}
			for _, f := range rep.Findings {
				if f.Kind == KindBackend {
					if m.Kind == "wrong-agg" {
						sawBackendKind = true
					}
					if !backendFindingReplays(t, cat, m, f) {
						t.Errorf("seed=%d mutant=%s: backend finding does not replay: sql=%s",
							seed, m.Kind, f.SQL)
					}
				}
			}
		}
	}
	if !sawBackendKind {
		t.Error("wrong-agg was never caught by the backend oracle itself (no KindBackend finding at either seed)")
	}
}

// backendFindingReplays re-derives a KindBackend finding from its SQL alone:
// bind, optimize under the mutant registry, execute the base plan, and
// cross-check it against the reference backend. The finding is genuine iff
// the cross-check still reports a divergence.
func backendFindingReplays(t *testing.T, cat *catalog.Catalog, m mutate.Mutant, f Finding) bool {
	t.Helper()
	o := opt.New(m.Registry(), cat)
	bound, err := bind.BindSQL(f.SQL, cat)
	if err != nil {
		t.Logf("finding SQL does not bind: %v", err)
		return false
	}
	res, err := o.Optimize(bound.Tree, bound.MD, opt.Options{})
	if err != nil {
		t.Logf("finding SQL does not plan: %v", err)
		return false
	}
	base, err := suite.ExecBase(res.Plan, cat, 0, 2e6)
	if err != nil {
		return false
	}
	ref, _ := exec.EngineByName("ref")
	out, err := suite.CrossCheckBase(nil, ref, exec.EngineBatch, bound.Tree, base, cat, 0, 2e6)
	if err != nil {
		return true // backend errored where the base ran: still a divergence
	}
	return !out.Skipped && !out.Capped && out.Verdict == exec.VerdictMismatch
}

// TestBackendCampaignPristineAndDeterministic: with the pristine registry
// the backend oracle must stay silent — zero cross-engine disagreements on
// the random, TPC-H and star catalogs at both seeds — and the report must be
// byte-identical at 1 and 8 workers.
func TestBackendCampaignPristineAndDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("three campaigns per seed in -short mode")
	}
	for _, seed := range []int64{1, 42} {
		cats := []struct {
			name string
			cat  *catalog.Catalog
		}{
			{"rand", nil}, // nil catalog: the fuzzer derives one from the seed
			{"tpch", catalog.LoadTPCH(catalog.TPCHConfig{ScaleRows: 0.25, Seed: seed})},
			{"star", catalog.LoadStar(catalog.StarConfig{ScaleRows: 0.25, Seed: seed})},
		}
		for _, c := range cats {
			cfg := Config{Seed: seed, N: 64, Workers: 1, Backend: "ref", Catalog: c.cat}
			if c.cat != nil {
				cfg.DB = c.name
			}
			one, err := Run(cfg)
			if err != nil {
				t.Fatalf("seed=%d db=%s workers=1: %v", seed, c.name, err)
			}
			cfg.Workers = 8
			eight, err := Run(cfg)
			if err != nil {
				t.Fatalf("seed=%d db=%s workers=8: %v", seed, c.name, err)
			}
			if len(one.Findings) != 0 {
				f := one.Findings[0]
				t.Errorf("seed=%d db=%s: pristine campaign reported %d finding(s); first: %s %s",
					seed, c.name, len(one.Findings), f.Kind, f.Detail)
			}
			if one.BackendChecks == 0 {
				t.Errorf("seed=%d db=%s: no backend checks ran; the pristine sweep is vacuous", seed, c.name)
			}
			aj, _ := one.JSON()
			bj, _ := eight.JSON()
			if string(aj) != string(bj) {
				t.Errorf("seed=%d db=%s: report differs between 1 and 8 workers", seed, c.name)
			}
		}
	}
}

// TestBackendOffReportUnchanged pins the wire format: a campaign without a
// backend must emit a report with no backend fields at all, byte-identical
// to what pre-backend builds produced.
func TestBackendOffReportUnchanged(t *testing.T) {
	cat := catalog.LoadTPCH(catalog.TPCHConfig{ScaleRows: 0.1, Seed: 7})
	rep, err := Run(Config{Seed: 7, N: 16, Workers: 4, Catalog: cat, DB: "tpch"})
	if err != nil {
		t.Fatal(err)
	}
	data, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, banned := range []string{`"backend"`, `"backend_checks"`} {
		if bytes.Contains(data, []byte(banned)) {
			t.Errorf("backend-off report contains %s:\n%s", banned, data)
		}
	}
}
