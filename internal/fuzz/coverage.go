package fuzz

import (
	"qtrtest/internal/fnv64"
	"qtrtest/internal/physical"
)

// PlanShape fingerprints the operator structure of a physical plan: operator
// kinds, join variants and tree shape, but none of the payloads (predicates,
// columns, constants). Two plans share a shape when the optimizer made the
// same chain of operator choices for them, which is the granularity QPG-style
// coverage steering cares about: a novel shape means the generator pushed the
// optimizer somewhere it had not been this campaign.
func PlanShape(plan *physical.Expr) uint64 {
	h := fnv64.New()
	shapeInto(&h, plan)
	return h.Sum()
}

func shapeInto(h *fnv64.Hash, e *physical.Expr) {
	h.Int(int64(e.Op))
	h.Int(int64(e.JoinType))
	h.Byte('(')
	for _, c := range e.Children {
		shapeInto(h, c)
	}
	h.Byte(')')
}
