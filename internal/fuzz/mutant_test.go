package fuzz

import (
	"testing"

	"qtrtest/internal/bind"
	"qtrtest/internal/catalog"
	"qtrtest/internal/core/suite"
	"qtrtest/internal/exec"
	"qtrtest/internal/mutate"
	"qtrtest/internal/opt"
	"qtrtest/internal/rules"
)

// TestCampaignCatchesAllMutants is the headline acceptance test: a fuzz
// campaign at seeds 1 and 42 must catch every shipped mutant — without being
// told which rule was mutated — and ship a shrunk reproducer for it.
// StopOnFinding keeps the runtime bounded without giving any mutant special
// treatment.
func TestCampaignCatchesAllMutants(t *testing.T) {
	cat := catalog.LoadTPCH(catalog.DefaultTPCHConfig())
	for _, seed := range []int64{1, 42} {
		for _, m := range mutate.Mutants() {
			rep, err := Run(Config{
				Seed: seed, N: 300, Workers: 8, Catalog: cat, DB: "tpch",
				Registry: m.Registry(), Mutant: string(m.Kind),
				StopOnFinding: true, MaxShrunk: 1,
			})
			if err != nil {
				t.Fatalf("seed=%d mutant=%s: %v", seed, m.Kind, err)
			}
			if len(rep.Findings) == 0 {
				t.Errorf("seed=%d mutant=%s: campaign missed the mutant (0 findings in %d queries)",
					seed, m.Kind, rep.N)
				continue
			}
			f := rep.Findings[0]
			if f.ShrunkSQL == "" {
				t.Errorf("seed=%d mutant=%s: first finding has no shrunk reproducer (kind=%s)",
					seed, m.Kind, f.Kind)
				continue
			}
			if f.Repro == "" {
				t.Errorf("seed=%d mutant=%s: finding has no repro line", seed, m.Kind)
			}
			// The shrunk reproducer must still trip the same oracle when
			// replayed from its SQL alone.
			if !shrunkStillTrips(t, cat, m, f) {
				t.Errorf("seed=%d mutant=%s: shrunk reproducer no longer trips the oracle: kind=%s sql=%s",
					seed, m.Kind, f.Kind, f.ShrunkSQL)
			}
		}
	}
}

// shrunkStillTrips replays a finding's shrunk SQL through the same pipeline
// and oracle that produced the original finding. The rewrite lookup spans
// the full catalog (tree-level plus EET) so EET-campaign findings replay
// too; the finding's own Seed replays any seed-dependent site choice.
func shrunkStillTrips(t *testing.T, cat *catalog.Catalog, m mutate.Mutant, f Finding) bool {
	t.Helper()
	o := opt.New(m.Registry(), cat)
	bound, err := bind.BindSQL(f.ShrunkSQL, cat)
	if err != nil {
		t.Logf("shrunk SQL does not bind: %v", err)
		return false
	}
	res, err := o.Optimize(bound.Tree, bound.MD, opt.Options{})
	if err != nil {
		t.Logf("shrunk SQL does not plan: %v", err)
		return false
	}
	switch f.Kind {
	case KindDifferential:
		base, err := suite.ExecBase(res.Plan, cat, 0, 2e6)
		if err != nil {
			return false
		}
		altRes, err := o.Optimize(bound.Tree, bound.MD, opt.Options{Disabled: rules.NewSet(rules.ID(f.Rule))})
		if err != nil {
			return false
		}
		out, err := suite.CompareEdge(cat, base, altRes.Plan, 0, 2e6)
		return err == nil && !out.Skipped && out.Verdict == exec.VerdictMismatch
	case KindMetamorphic:
		base, err := suite.ExecBase(res.Plan, cat, 0, 2e6)
		if err != nil {
			return false
		}
		for _, rw := range rewritesFor(Config{EET: true}) {
			if rw.Name != f.Rewrite {
				continue
			}
			alt := rw.Apply(bound.Tree, bound.MD, f.Seed)
			if alt == nil {
				return false
			}
			c := &campaign{cfg: Config{Catalog: cat}, opt: o}
			altPlan, err := c.planTree(alt, bound.MD)
			if err != nil {
				return false
			}
			out, err := suite.CompareEdge(cat, base, altPlan, 0, 2e6)
			return err == nil && !out.Skipped && out.Verdict == exec.VerdictMismatch
		}
		return false
	case KindExecError:
		plan := res.Plan
		if f.Rule != 0 {
			altRes, err := o.Optimize(bound.Tree, bound.MD, opt.Options{Disabled: rules.NewSet(rules.ID(f.Rule))})
			if err != nil {
				return false
			}
			plan = altRes.Plan
		}
		_, err := exec.Run(plan, cat)
		return err != nil
	}
	return false
}

// TestMutantCampaignDeterministic: the same mutant campaign run twice gives
// the same report, shrunk reproducers included.
func TestMutantCampaignDeterministic(t *testing.T) {
	cat := catalog.LoadTPCH(catalog.TPCHConfig{ScaleRows: 0.5, Seed: 1})
	ms, err := mutate.ByKind(mutate.KindDropFilterConjunct)
	if err != nil || len(ms) == 0 {
		t.Fatalf("drop-filter-conjunct mutant not registered: %v", err)
	}
	cfg := Config{
		Seed: 5, N: 96, Workers: 4, Catalog: cat, DB: "tpch",
		Registry: ms[0].Registry(), Mutant: string(ms[0].Kind),
		StopOnFinding: true, MaxShrunk: 2,
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	aj, _ := a.JSON()
	bj, _ := b.JSON()
	if string(aj) != string(bj) {
		t.Errorf("repeated campaign differs:\n--- first ---\n%s\n--- second ---\n%s", aj, bj)
	}
	if len(a.Findings) == 0 {
		t.Error("campaign caught nothing; determinism check is vacuous")
	}
}
