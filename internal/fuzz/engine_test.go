package fuzz

import (
	"bytes"
	"testing"

	"qtrtest/internal/catalog"
	"qtrtest/internal/exec"
)

// TestEngineReportByteIdentity is the batch engine's campaign-level contract:
// a fuzz campaign run on the columnar engine must produce a byte-identical
// JSON report to the same campaign on the retained row engine — same
// verdicts, same skip counts, same shrunk reproducers. Anything less means
// the engines disagree on some plan's results or on a budget verdict.
// RandomCatalog always runs; TPC-H and star ride along unless -short.
func TestEngineReportByteIdentity(t *testing.T) {
	type db struct {
		name string
		cat  *catalog.Catalog
	}
	dbs := []db{{"rand", nil}}
	if !testing.Short() {
		dbs = append(dbs,
			db{"tpch", catalog.LoadTPCH(catalog.TPCHConfig{ScaleRows: 0.2, Seed: 1})},
			db{"star", catalog.LoadStar(catalog.DefaultStarConfig())},
		)
	}
	for _, d := range dbs {
		t.Run(d.name, func(t *testing.T) {
			var reports [][]byte
			for _, eng := range []exec.Engine{exec.EngineRow, exec.EngineBatch} {
				cfg := Config{Seed: 21, N: 96, Workers: 8, Engine: eng}
				if d.cat != nil {
					cfg.Catalog = d.cat
					cfg.DB = d.name
				}
				rep, err := Run(cfg)
				if err != nil {
					t.Fatalf("engine=%s: %v", eng, err)
				}
				data, err := rep.JSON()
				if err != nil {
					t.Fatalf("engine=%s: JSON: %v", eng, err)
				}
				reports = append(reports, data)
			}
			if !bytes.Equal(reports[0], reports[1]) {
				t.Errorf("reports differ between engines:\n--- row ---\n%s\n--- batch ---\n%s",
					reports[0], reports[1])
			}
		})
	}
}

// TestStringDomainCarriesFramingBytes pins that the widened random-value
// domain actually reaches generated tables: some catalog must contain a
// string value with a framing byte, or the key-encoding regression coverage
// this domain exists for is silently gone.
func TestStringDomainCarriesFramingBytes(t *testing.T) {
	found := false
	for seed := int64(0); seed < 20 && !found; seed++ {
		cat := RandomCatalog(seed)
		for _, name := range cat.TableNames() {
			tbl, err := cat.Table(name)
			if err != nil {
				t.Fatal(err)
			}
			for _, row := range tbl.Rows {
				for _, dm := range row {
					if !dm.IsNull() && len(dm.S) > 0 {
						for _, b := range []byte(dm.S) {
							if b == '|' || b == ':' || b == ';' {
								found = true
							}
						}
					}
				}
			}
		}
	}
	if !found {
		t.Error("no random catalog produced a string containing a key-framing byte (| : ;)")
	}
}
