package fuzz

import (
	"qtrtest/internal/logical"
	"qtrtest/internal/scalar"
)

// Shrink greedily minimizes a failing query tree: it repeatedly tries
// reductions — hoisting a child over its parent, dropping predicate
// conjuncts, projection items, grouping columns, aggregates, sort keys and
// union columns — and keeps any reduction for which keep still reports the
// failure. Candidates are enumerated in a fixed order and keep is assumed
// deterministic, so shrinking is deterministic; ill-formed candidates (a
// hoisted child missing columns its new parent references) are rejected by
// keep itself when the reduced tree fails to render, bind or plan.
//
// maxChecks bounds the number of keep evaluations; every accepted reduction
// strictly decreases CountOps or a payload length, so termination does not
// depend on the bound. The returned tree shares nodes with the input; the
// input is never mutated.
func Shrink(tree *logical.Expr, keep func(*logical.Expr) bool, maxChecks int) *logical.Expr {
	if maxChecks <= 0 {
		maxChecks = 400
	}
	checks := 0
	best := tree
	for {
		next := shrinkStep(best, func(cand *logical.Expr) bool {
			if checks >= maxChecks {
				return false
			}
			checks++
			return keep(cand)
		}, checks >= maxChecks)
		if next == nil {
			return best
		}
		best = next
	}
}

// shrinkStep returns the first accepted reduction of root, or nil when no
// candidate is accepted (or the budget is spent).
func shrinkStep(root *logical.Expr, try func(*logical.Expr) bool, exhausted bool) *logical.Expr {
	if exhausted {
		return nil
	}
	var nodes []*logical.Expr
	var paths [][]int
	var walk func(e *logical.Expr, path []int)
	walk = func(e *logical.Expr, path []int) {
		nodes = append(nodes, e)
		paths = append(paths, append([]int(nil), path...))
		for i, c := range e.Children {
			walk(c, append(path, i))
		}
	}
	walk(root, nil)

	for ni, n := range nodes {
		path := paths[ni]
		// Hoist each child over the node: the strongest reduction, removing
		// the node (and, for binary operators, a whole sibling subtree).
		for i := range n.Children {
			if cand := replaceAt(root, path, n.Children[i]); try(cand) {
				return cand
			}
		}
		for _, repl := range reduceNode(n) {
			if cand := replaceAt(root, path, repl); try(cand) {
				return cand
			}
		}
	}
	return nil
}

// reduceNode enumerates single-payload reductions of one node, smallest
// change last so the more aggressive candidates are tried first.
func reduceNode(n *logical.Expr) []*logical.Expr {
	var out []*logical.Expr
	mod := func(f func(c *logical.Expr)) {
		c := *n
		c.Children = append([]*logical.Expr(nil), n.Children...)
		f(&c)
		out = append(out, &c)
	}
	switch n.Op {
	case logical.OpSelect:
		conj := scalar.Conjuncts(n.Filter)
		if len(conj) >= 2 {
			for i := range conj {
				rest := dropAt(conj, i)
				mod(func(c *logical.Expr) { c.Filter = scalar.MakeAnd(rest) })
			}
		}
	case logical.OpJoin, logical.OpLeftJoin, logical.OpSemiJoin, logical.OpAntiJoin:
		conj := scalar.Conjuncts(n.On)
		if len(conj) >= 2 {
			for i := range conj {
				rest := dropAt(conj, i)
				mod(func(c *logical.Expr) { c.On = scalar.MakeAnd(rest) })
			}
		}
	case logical.OpProject:
		if len(n.Projs) >= 2 {
			for i := range n.Projs {
				items := append(append([]logical.ProjItem(nil), n.Projs[:i]...), n.Projs[i+1:]...)
				mod(func(c *logical.Expr) { c.Projs = items })
			}
		}
	case logical.OpGroupBy:
		for i := range n.Aggs {
			aggs := append(append([]scalar.Agg(nil), n.Aggs[:i]...), n.Aggs[i+1:]...)
			mod(func(c *logical.Expr) { c.Aggs = aggs })
		}
		if len(n.GroupCols) >= 2 {
			for i := range n.GroupCols {
				gc := append(append([]scalar.ColumnID(nil), n.GroupCols[:i]...), n.GroupCols[i+1:]...)
				mod(func(c *logical.Expr) { c.GroupCols = gc })
			}
		}
	case logical.OpSort:
		if len(n.Keys) >= 2 {
			for i := range n.Keys {
				keys := append(append([]logical.SortKey(nil), n.Keys[:i]...), n.Keys[i+1:]...)
				mod(func(c *logical.Expr) { c.Keys = keys })
			}
		}
	case logical.OpUnionAll:
		if len(n.OutCols) >= 2 {
			for i := range n.OutCols {
				outs := append(append([]scalar.ColumnID(nil), n.OutCols[:i]...), n.OutCols[i+1:]...)
				ins := make([][]scalar.ColumnID, len(n.InputCols))
				for k, cs := range n.InputCols {
					ins[k] = append(append([]scalar.ColumnID(nil), cs[:i]...), cs[i+1:]...)
				}
				mod(func(c *logical.Expr) { c.OutCols, c.InputCols = outs, ins })
			}
		}
	}
	return out
}

func dropAt(conj []scalar.Expr, i int) []scalar.Expr {
	return append(append([]scalar.Expr(nil), conj[:i]...), conj[i+1:]...)
}

// replaceAt returns a copy of root with the node at path replaced by repl.
// Nodes off the path are shared with root, which is safe because shrink
// candidates are re-rendered and re-bound, never mutated.
func replaceAt(root *logical.Expr, path []int, repl *logical.Expr) *logical.Expr {
	if len(path) == 0 {
		return repl
	}
	cp := *root
	cp.Children = append([]*logical.Expr(nil), root.Children...)
	cp.Children[path[0]] = replaceAt(root.Children[path[0]], path[1:], repl)
	return &cp
}
