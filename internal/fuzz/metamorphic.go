package fuzz

import (
	"qtrtest/internal/logical"
	"qtrtest/internal/scalar"
)

// A Rewrite is one known-equivalence metamorphic transformation: applied to a
// query tree it yields a different tree with the same result multiset (up to
// the usual LIMIT-without-total-order caveat, which the order-aware oracle
// already classifies as Undetermined). Rewritten trees are rendered back to
// SQL and re-planned, so the oracle compares two full optimizer+executor
// passes — no disabled-rule baseline needed (the EET idea).
type Rewrite struct {
	Name string
	// Apply returns the rewritten tree, or nil when the rewrite does not
	// apply to this query. The input tree is never mutated. seed is the
	// query's derived seed: rewrites with a choice to make (the EET
	// rewrites pick one expression site per query) make it deterministically
	// from seed, so reports stay byte-identical at any worker count and the
	// shrinker can replay the exact same choice.
	Apply func(tree *logical.Expr, md *logical.Metadata, seed int64) *logical.Expr
}

// Rewrites returns the metamorphic rewrite catalog in fixed order.
func Rewrites() []Rewrite {
	return []Rewrite{
		{Name: "reorder-predicates", Apply: reorderPredicates},
		{Name: "commute-joins", Apply: commuteJoins},
		{Name: "redundant-filter", Apply: redundantFilter},
	}
}

// reorderPredicates reverses the conjunct order of every multi-conjunct
// Select filter and join predicate. AND is commutative under SQL's
// three-valued logic and the engine's scalar evaluation is side-effect-free,
// so the result multiset is unchanged — but predicate-ordering-sensitive
// optimizer code (conjunct splitting, equi-key extraction) sees different
// input.
func reorderPredicates(tree *logical.Expr, _ *logical.Metadata, _ int64) *logical.Expr {
	applied := false
	out := tree.Clone()
	out.Walk(func(e *logical.Expr) {
		if e.Op == logical.OpSelect {
			if f, ok := reverseConjuncts(e.Filter); ok {
				e.Filter = f
				applied = true
			}
		}
		if e.Op.IsJoin() {
			if on, ok := reverseConjuncts(e.On); ok {
				e.On = on
				applied = true
			}
		}
	})
	if !applied {
		return nil
	}
	return out
}

// reverseConjuncts rebuilds a predicate with its conjuncts in reverse order;
// ok is false when there is at most one conjunct. The conjunct slice is
// copied: Conjuncts may share the original And's backing array.
func reverseConjuncts(pred scalar.Expr) (scalar.Expr, bool) {
	if pred == nil {
		return nil, false
	}
	conj := scalar.Conjuncts(pred)
	if len(conj) < 2 {
		return nil, false
	}
	rev := make([]scalar.Expr, len(conj))
	for i, c := range conj {
		rev[len(conj)-1-i] = c
	}
	return scalar.MakeAnd(rev), true
}

// commuteJoins swaps the children of every inner Join. Inner joins are
// commutative as multisets, but the column order of a join's output follows
// its children, so when the root's column list changes an identity Project
// restores the original order — the rewritten query stays comparable
// column-for-column with the original.
func commuteJoins(tree *logical.Expr, _ *logical.Metadata, _ int64) *logical.Expr {
	applied := false
	out := tree.Clone()
	out.Walk(func(e *logical.Expr) {
		if e.Op == logical.OpJoin {
			e.Children[0], e.Children[1] = e.Children[1], e.Children[0]
			applied = true
		}
	})
	if !applied {
		return nil
	}
	orig := tree.OutputCols()
	now := out.OutputCols()
	if !sameCols(orig, now) {
		items := make([]logical.ProjItem, len(orig))
		for i, c := range orig {
			items[i] = logical.ProjItem{Out: c, E: &scalar.ColRef{ID: c}}
		}
		out = &logical.Expr{Op: logical.OpProject, Children: []*logical.Expr{out}, Projs: items}
	}
	return out
}

func sameCols(a, b []scalar.ColumnID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// redundantFilter wraps the query in a tautological selection over its first
// output column: c IS NULL OR NOT (c IS NULL) holds for every value
// including NULL (unlike c = c, which is NULL for NULL), so the filter keeps
// every row — even above a LIMIT — while handing the optimizer an extra
// Select to push around.
func redundantFilter(tree *logical.Expr, _ *logical.Metadata, _ int64) *logical.Expr {
	cols := tree.OutputCols()
	if len(cols) == 0 {
		return nil
	}
	ref := func() scalar.Expr { return &scalar.ColRef{ID: cols[0]} }
	pred := &scalar.Or{Kids: []scalar.Expr{
		&scalar.IsNull{Kid: ref()},
		&scalar.Not{Kid: &scalar.IsNull{Kid: ref()}},
	}}
	return &logical.Expr{Op: logical.OpSelect, Children: []*logical.Expr{tree.Clone()}, Filter: pred}
}
