package fuzz

import (
	"qtrtest/internal/datum"
	"qtrtest/internal/logical"
	"qtrtest/internal/scalar"
)

// EET wiring: each scalar.EETRewrites catalog entry becomes a first-class
// metamorphic Rewrite. Unlike the tree-level rewrites, an EET rewrite has a
// choice to make — which predicate site of which operator to rewrite — and
// makes it deterministically from the query's derived seed: all applicable
// (operator, expression-site) candidates are enumerated in tree pre-order,
// and the seed picks exactly one. One site per query keeps reproducers
// minimal (the shrinker replays the same seed, so the choice is stable as
// the query shrinks) while the campaign as a whole, steered across many
// queries and seeds, covers the whole candidate space.

// eetRewrites returns one campaign Rewrite per scalar EET catalog entry, in
// catalog order.
func eetRewrites() []Rewrite {
	catalog := scalar.EETRewrites()
	out := make([]Rewrite, len(catalog))
	for i, er := range catalog {
		er := er
		out[i] = Rewrite{
			Name: er.Name,
			Apply: func(tree *logical.Expr, md *logical.Metadata, seed int64) *logical.Expr {
				return applyEETRewrite(er, tree, md, seed)
			},
		}
	}
	return out
}

// mdTypeEnv adapts query metadata to the scalar type checker, bounds-checked
// so an out-of-range ColumnID is "unknown" rather than a panic.
func mdTypeEnv(md *logical.Metadata) scalar.TypeEnv {
	return func(id scalar.ColumnID) (datum.Type, bool) {
		if id < 1 || int(id) > md.NumColumns() {
			return datum.TypeUnknown, false
		}
		return md.Column(id).Type, true
	}
}

// eetCandidate is one applicable (operator, expression-site) pair on a
// cloned tree: set installs a rewritten expression at that operator slot.
type eetCandidate struct {
	site scalar.Site
	set  func(scalar.Expr)
}

// applyEETRewrite clones tree, enumerates every expression site of every
// predicate-bearing slot (Select filters, join On conditions, Project
// expressions) where er applies, picks the seed-th candidate, and splices
// the rewrite in. Returns nil when no site applies. Clone shares scalar
// expressions with the original, but Site.Rebuild is copy-on-write, so the
// original tree's expressions are never mutated.
func applyEETRewrite(er scalar.EETRewrite, tree *logical.Expr, md *logical.Metadata, seed int64) *logical.Expr {
	env := mdTypeEnv(md)
	out := tree.Clone()
	var cands []eetCandidate
	collect := func(e scalar.Expr, set func(scalar.Expr)) {
		if e == nil {
			return
		}
		for _, s := range scalar.RewriteSites(e) {
			if er.Apply(s.E, env) == nil {
				continue
			}
			cands = append(cands, eetCandidate{site: s, set: set})
		}
	}
	out.Walk(func(node *logical.Expr) {
		switch {
		case node.Op == logical.OpSelect:
			collect(node.Filter, func(e scalar.Expr) { node.Filter = e })
		case node.Op.IsJoin():
			collect(node.On, func(e scalar.Expr) { node.On = e })
		case node.Op == logical.OpProject:
			for i := range node.Projs {
				i := i
				collect(node.Projs[i].E, func(e scalar.Expr) { node.Projs[i].E = e })
			}
		}
	})
	if len(cands) == 0 {
		return nil
	}
	n := int64(len(cands))
	pick := cands[int(((seed%n)+n)%n)]
	pick.set(pick.site.Rebuild(er.Apply(pick.site.E, env)))
	return out
}
