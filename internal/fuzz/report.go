package fuzz

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Finding kinds.
const (
	// KindDifferential is a Plan(q) vs Plan(q,¬R) result mismatch.
	KindDifferential = "differential"
	// KindMetamorphic is a mismatch between a query and a known-equivalent
	// rewrite of it.
	KindMetamorphic = "metamorphic"
	// KindExecError is a plan the executor rejected or failed on — a
	// plan-construction bug rather than a wrong result.
	KindExecError = "exec-error"
	// KindRewriteError means a metamorphic rewrite's output failed to
	// render, bind or plan: a bug in the fuzzer's own rewrite catalog, kept
	// visible so the equivalence tests pin it to zero.
	KindRewriteError = "rewrite-error"
	// KindBackend is a cross-engine divergence: the independent backend's
	// replay of the base query (Config.Backend) produced results the
	// order-aware oracle rejects, or errored where the base succeeded.
	KindBackend = "backend"
)

// Finding is one reported fault, with the evidence and a reproducer line.
type Finding struct {
	// Query is the campaign index of the generated query; Seed is its
	// derived per-query seed (par.DeriveSeed(campaign seed, Query)).
	Query int    `json:"query"`
	Seed  int64  `json:"seed"`
	Kind  string `json:"kind"`
	// Rule is the disabled rule of a differential finding.
	Rule int `json:"rule,omitempty"`
	// Rewrite is the metamorphic rewrite name of a metamorphic finding.
	Rewrite string `json:"rewrite,omitempty"`
	SQL     string `json:"sql"`
	// RuleSet is RuleSet(q) of the original query: the rule set recorded in
	// the reproducer.
	RuleSet string `json:"rule_set"`
	Detail  string `json:"detail"`
	// ShrunkSQL and ShrunkOps describe the minimized query that still trips
	// the same oracle (only the first finding of a campaign's query is
	// shrunk when many queries trip at once).
	ShrunkSQL string `json:"shrunk_sql,omitempty"`
	ShrunkOps int    `json:"shrunk_ops,omitempty"`
	BasePlan  string `json:"base_plan,omitempty"`
	AltPlan   string `json:"alt_plan,omitempty"`
	// Repro replays the campaign that produced this finding; the report is
	// byte-identical for every -workers value.
	Repro string `json:"repro"`
}

// Report is a fuzz campaign's outcome. Its JSON form is deterministic: same
// seed and configuration give byte-identical reports at any worker count
// (provided no -timeout cut the campaign short).
type Report struct {
	Schema string `json:"schema"`
	DB     string `json:"db"`
	Mutant string `json:"mutant,omitempty"`
	// Backend is the cross-engine oracle's engine name (Config.Backend);
	// empty when the check was off. Both fields are omitted then, keeping
	// backend-less reports byte-identical to earlier schema revisions.
	Backend string `json:"backend,omitempty"`
	Seed    int64  `json:"seed"`
	N       int    `json:"n"`
	// Generated counts queries that reached execution; Skipped tallies the
	// rest by pipeline stage.
	Generated int            `json:"generated"`
	Skipped   map[string]int `json:"skipped,omitempty"`
	// PlanShapes is the size of the plan-shape coverage map at campaign end.
	PlanShapes int `json:"plan_shapes"`
	// PlanExecutions counts plans actually executed (identical disabled-rule
	// plans are skipped, as in the suite runner).
	PlanExecutions     int `json:"plan_executions"`
	DifferentialChecks int `json:"differential_checks"`
	MetamorphicChecks  int `json:"metamorphic_checks"`
	// BackendChecks counts base queries compared against the cross-engine
	// backend (budget-capped replays excluded).
	BackendChecks int `json:"backend_checks,omitempty"`
	Undetermined  int `json:"undetermined"`
	// TimedOut reports the campaign stopped at a round boundary because the
	// -timeout budget ran out; a timed-out report is NOT
	// workers-deterministic.
	TimedOut bool      `json:"timed_out,omitempty"`
	Findings []Finding `json:"findings"`
}

// ReportSchema identifies the JSON report format.
const ReportSchema = "qtrtest-fuzz/v1"

// JSON renders the report in its stable wire form.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Print renders the campaign summary in the style of `qtrtest mutate`.
func (r *Report) Print(w io.Writer) {
	fmt.Fprintf(w, "fuzz campaign: db=%s seed=%d n=%d", r.DB, r.Seed, r.N)
	if r.Mutant != "" {
		fmt.Fprintf(w, " mutant=%s", r.Mutant)
	}
	if r.Backend != "" {
		fmt.Fprintf(w, " backend=%s", r.Backend)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "  %d queries executed (%s), %d distinct plan shapes\n",
		r.Generated, r.skipSummary(), r.PlanShapes)
	fmt.Fprintf(w, "  %d plan executions: %d differential checks, %d metamorphic checks, %d undetermined\n",
		r.PlanExecutions, r.DifferentialChecks, r.MetamorphicChecks, r.Undetermined)
	if r.Backend != "" {
		fmt.Fprintf(w, "  %d cross-engine checks against backend %s\n", r.BackendChecks, r.Backend)
	}
	if r.TimedOut {
		fmt.Fprintln(w, "  campaign stopped early: -timeout budget exhausted")
	}
	fmt.Fprintf(w, "  findings: %d\n", len(r.Findings))
	for i := range r.Findings {
		f := &r.Findings[i]
		head := f.Kind
		switch f.Kind {
		case KindDifferential:
			head = fmt.Sprintf("differential ¬%d", f.Rule)
		case KindMetamorphic:
			head = fmt.Sprintf("metamorphic %s", f.Rewrite)
		case KindBackend:
			head = fmt.Sprintf("backend %s", r.Backend)
		}
		fmt.Fprintf(w, "  [%d] query %d (seed %d) %s: %s\n", i+1, f.Query, f.Seed, head, f.Detail)
		fmt.Fprintf(w, "      sql: %s\n", f.SQL)
		if f.ShrunkSQL != "" {
			fmt.Fprintf(w, "      shrunk (%d ops): %s\n", f.ShrunkOps, f.ShrunkSQL)
		}
		fmt.Fprintf(w, "      rule set: %s\n", f.RuleSet)
		fmt.Fprintf(w, "      repro: %s\n", f.Repro)
	}
}

func (r *Report) skipSummary() string {
	if len(r.Skipped) == 0 {
		return fmt.Sprintf("all %d generated", r.N)
	}
	keys := make([]string, 0, len(r.Skipped))
	for k := range r.Skipped {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s %d", k, r.Skipped[k])
	}
	return "skipped: " + strings.Join(parts, ", ")
}
