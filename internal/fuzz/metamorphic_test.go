package fuzz

import (
	"testing"

	"qtrtest/internal/bind"
	"qtrtest/internal/catalog"
	"qtrtest/internal/core/suite"
	"qtrtest/internal/exec"
	"qtrtest/internal/opt"
	"qtrtest/internal/rules"
)

// metamorphicCases are hand-written queries that exercise every rewrite in
// the catalog. Table names are per-catalog; the column aliases follow the
// sqlgen convention so rewritten trees re-render cleanly.
var metamorphicCases = map[string][]string{
	"tpch": {
		// Multi-conjunct Select: reorder-predicates applies.
		"SELECT * FROM (SELECT s_suppkey AS c1, s_nationkey AS c2, s_acctbal AS c3 FROM supplier) AS t1 WHERE ((c1 > 3) AND (c2 > 1))",
		// Inner join: commute-joins applies (and its identity Project).
		"SELECT * FROM (SELECT n_nationkey AS c1, n_name AS c2 FROM nation) AS t1 JOIN (SELECT s_suppkey AS c3, s_nationkey AS c4 FROM supplier) AS t2 ON (c1 = c4)",
		// Join with compound predicate: both conjunct reversal and commutation.
		"SELECT * FROM (SELECT c_custkey AS c1, c_nationkey AS c2 FROM customer) AS t1 JOIN (SELECT o_orderkey AS c3, o_custkey AS c4, o_totalprice AS c5 FROM orders) AS t2 ON ((c1 = c4) AND (c1 <= c3))",
		// Aggregation above a join: rewrites below a GroupBy.
		"SELECT c2, MIN(c3) AS c9 FROM (SELECT * FROM (SELECT s_suppkey AS c1, s_nationkey AS c2, s_acctbal AS c3 FROM supplier) AS t1 WHERE ((c2 >= 0) AND (c3 > 0.0))) AS t3 GROUP BY c2",
		// Sorted output: rewrites must preserve the root ordering contract.
		"SELECT * FROM (SELECT p_partkey AS c1, p_size AS c2 FROM part) AS t1 WHERE ((c2 > 10) AND (c1 > 0)) ORDER BY c1",
		// Nested integer arithmetic in a projection and a comparison inside
		// the filter: the EET arithmetic rewrites (commute, associate) and
		// comparison negation have sites here.
		"SELECT ((c1 + c2) + c1) AS c9 FROM (SELECT s_suppkey AS c1, s_nationkey AS c2 FROM supplier) AS t1 WHERE ((c1 + c2) < 20)",
	},
	"star": {
		"SELECT * FROM (SELECT f_salekey AS c1, f_storekey AS c2, f_quantity AS c3 FROM sales) AS t1 WHERE ((c3 > 1) AND (c2 > 2))",
		"SELECT * FROM (SELECT s_storekey AS c1, s_name AS c2 FROM store) AS t1 JOIN (SELECT f_salekey AS c3, f_storekey AS c4 FROM sales) AS t2 ON (c1 = c4)",
		"SELECT c2, COUNT(*) AS c9, MAX(c3) AS c10 FROM (SELECT * FROM (SELECT f_salekey AS c1, f_storekey AS c2, f_quantity AS c3 FROM sales) AS t1 WHERE ((c1 > 0) AND (c3 >= 0))) AS t3 GROUP BY c2",
	},
}

// TestRewritesPreserveResults: under the pristine registry, every applicable
// metamorphic rewrite — tree-level and EET — must be result-equivalent to
// the original query on both shipped catalogs. A mismatch here means a
// rewrite is wrong — the campaign would report optimizer bugs that are
// really fuzzer bugs. EET rewrites pick one site per seed, so they run at
// several seeds to spread over different sites.
func TestRewritesPreserveResults(t *testing.T) {
	catalogs := map[string]*catalog.Catalog{
		"tpch": catalog.LoadTPCH(catalog.DefaultTPCHConfig()),
		"star": catalog.LoadStar(catalog.DefaultStarConfig()),
	}
	treeSeeds := []int64{0}
	eetSeeds := []int64{0, 1, 2, 5}
	applied := make(map[string]int) // global: some EET rewrites need the tpch arith case
	allRewrites := rewritesFor(Config{EET: true})
	for db, cases := range metamorphicCases {
		cat := catalogs[db]
		o := opt.New(rules.DefaultRegistry(), cat)
		c := &campaign{cfg: Config{Catalog: cat}, opt: o}
		dbApplied := make(map[string]int)
		for _, sql := range cases {
			bound, err := bind.BindSQL(sql, cat)
			if err != nil {
				t.Fatalf("%s: bind %q: %v", db, sql, err)
			}
			res, err := o.Optimize(bound.Tree, bound.MD, opt.Options{})
			if err != nil {
				t.Fatalf("%s: optimize %q: %v", db, sql, err)
			}
			base, err := suite.ExecBase(res.Plan, cat, 0, 0)
			if err != nil {
				t.Fatalf("%s: execute %q: %v", db, sql, err)
			}
			for _, rw := range allRewrites {
				seeds := treeSeeds
				if isEETRewrite(rw.Name) {
					seeds = eetSeeds
				}
				for _, seed := range seeds {
					alt := rw.Apply(bound.Tree, bound.MD, seed)
					if alt == nil {
						continue
					}
					applied[rw.Name]++
					dbApplied[rw.Name]++
					altPlan, err := c.planTree(alt, bound.MD)
					if err != nil {
						t.Errorf("%s: rewrite %s (seed %d) of %q failed to plan: %v", db, rw.Name, seed, sql, err)
						continue
					}
					out, err := suite.CompareEdge(cat, base, altPlan, 0, 0)
					if err != nil {
						t.Errorf("%s: rewrite %s (seed %d) of %q failed to execute: %v", db, rw.Name, seed, sql, err)
						continue
					}
					if !out.Skipped && out.Verdict == exec.VerdictMismatch {
						t.Errorf("%s: rewrite %s (seed %d) changed the results of %q: %s\nbase plan:\n%s\nalt plan:\n%s",
							db, rw.Name, seed, sql, out.Detail, res.Plan, altPlan)
					}
				}
			}
		}
		// Equivalence that never ran proves nothing: every tree-level rewrite
		// must have applied to at least one case per catalog.
		for _, rw := range Rewrites() {
			if dbApplied[rw.Name] == 0 {
				t.Errorf("%s: rewrite %s applied to no test case", db, rw.Name)
			}
		}
	}
	// The EET catalog is asserted globally: the arithmetic rewrites need the
	// tpch arithmetic case, but every catalog entry must have run somewhere.
	for _, rw := range allRewrites {
		if applied[rw.Name] == 0 {
			t.Errorf("rewrite %s applied to no test case", rw.Name)
		}
	}
}

func isEETRewrite(name string) bool {
	return len(name) > 4 && name[:4] == "eet-"
}

// TestRewritesReturnNilWhenInapplicable pins the applicability contract:
// rewrites must decline rather than return an unchanged tree (a no-op
// rewrite would make every comparison a skipped self-comparison).
func TestRewritesReturnNilWhenInapplicable(t *testing.T) {
	cat := catalog.LoadTPCH(catalog.DefaultTPCHConfig())
	// Single-conjunct filter, no joins: only redundant-filter applies.
	bound, err := bind.BindSQL("SELECT * FROM (SELECT n_nationkey AS c1, n_name AS c2 FROM nation) AS t1 WHERE (c1 > 5)", cat)
	if err != nil {
		t.Fatal(err)
	}
	for _, rw := range rewritesFor(Config{EET: true}) {
		alt := rw.Apply(bound.Tree, bound.MD, 0)
		switch rw.Name {
		case "reorder-predicates", "commute-joins":
			if alt != nil {
				t.Errorf("rewrite %s should not apply to a single-conjunct join-free query", rw.Name)
			}
		case "redundant-filter":
			if alt == nil {
				t.Errorf("rewrite %s should always apply to a query with output columns", rw.Name)
			}
		case "eet-commute-arith", "eet-assoc-arith":
			// No arithmetic anywhere in the query: no candidate sites.
			if alt != nil {
				t.Errorf("rewrite %s should not apply to an arithmetic-free query", rw.Name)
			}
		case "eet-negate-comparison", "eet-null-tautology", "eet-double-negation", "eet-or-false-branch":
			// The filter (c1 > 5) is a typed boolean site for all of these.
			if alt == nil {
				t.Errorf("rewrite %s should apply to a comparison filter", rw.Name)
			}
		case "eet-de-morgan":
			// No multi-kid connective in the filter.
			if alt != nil {
				t.Errorf("rewrite %s should not apply to a single-comparison filter", rw.Name)
			}
		}
	}
}
