package fuzz

import (
	"bytes"
	"testing"

	"qtrtest/internal/catalog"
	"qtrtest/internal/rescache"
)

// TestCacheDifferentialAcrossWorkers is the result cache's correctness
// contract for the fuzz campaign: the JSON report must be byte-identical
// with the cache on and off, at every worker count. Cached rows are shared
// read-only and cached errors replay verbatim, so the cache may change only
// how fast a campaign runs, never what it reports.
func TestCacheDifferentialAcrossWorkers(t *testing.T) {
	cat := catalog.LoadTPCH(catalog.TPCHConfig{ScaleRows: 0.1, Seed: 1})
	var want []byte
	for _, workers := range []int{1, 8} {
		for _, cached := range []bool{false, true} {
			cfg := Config{Seed: 7, N: 96, Workers: workers, Catalog: cat, DB: "tpch"}
			if cached {
				cfg.Cache = rescache.New(0)
			}
			rep, err := Run(cfg)
			if err != nil {
				t.Fatalf("workers=%d cached=%v: %v", workers, cached, err)
			}
			data, err := rep.JSON()
			if err != nil {
				t.Fatalf("workers=%d cached=%v: JSON: %v", workers, cached, err)
			}
			if want == nil {
				want = data
			} else if !bytes.Equal(data, want) {
				t.Fatalf("report differs at workers=%d cached=%v:\n--- want ---\n%s\n--- got ---\n%s",
					workers, cached, want, data)
			}
			if cached {
				st := cfg.Cache.Stats()
				if st.Hits == 0 {
					t.Errorf("workers=%d: cache saw zero hits; the campaign has no plan overlap to test", workers)
				}
			}
		}
	}
}

// TestCacheDifferentialUnderEviction: a cache squeezed hard enough to evict
// constantly still changes nothing in the report — eviction only forces
// recompute, and recompute is deterministic.
func TestCacheDifferentialUnderEviction(t *testing.T) {
	cat := catalog.LoadTPCH(catalog.TPCHConfig{ScaleRows: 0.1, Seed: 1})
	base, err := Run(Config{Seed: 5, N: 64, Workers: 4, Catalog: cat, DB: "tpch"})
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := base.JSON()
	if err != nil {
		t.Fatal(err)
	}
	tiny := rescache.New(64 << 10) // 64 KiB: forces heavy eviction on TPC-H rows
	rep, err := Run(Config{Seed: 5, N: 64, Workers: 4, Catalog: cat, DB: "tpch", Cache: tiny})
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Fatalf("report differs under a 64 KiB cache:\n--- uncached ---\n%s\n--- tiny cache ---\n%s",
			wantJSON, gotJSON)
	}
}
