package fuzz

import (
	"bytes"
	"testing"

	"qtrtest/internal/catalog"
	"qtrtest/internal/mutate"
)

// TestEETCampaignCatchesAllMutants: with the EET rewrites enabled the
// campaign must still catch every shipped mutant blind at both acceptance
// seeds, and the shrunk reproducer must replay — including findings whose
// tripping rewrite is an EET one, whose site choice depends on the seed.
func TestEETCampaignCatchesAllMutants(t *testing.T) {
	cat := catalog.LoadTPCH(catalog.DefaultTPCHConfig())
	for _, seed := range []int64{1, 42} {
		for _, m := range mutate.Mutants() {
			rep, err := Run(Config{
				Seed: seed, N: 300, Workers: 8, Catalog: cat, DB: "tpch",
				Registry: m.Registry(), Mutant: string(m.Kind), EET: true,
				StopOnFinding: true, MaxShrunk: 1,
			})
			if err != nil {
				t.Fatalf("seed=%d mutant=%s: %v", seed, m.Kind, err)
			}
			if len(rep.Findings) == 0 {
				t.Errorf("seed=%d mutant=%s: EET campaign missed the mutant (0 findings in %d queries)",
					seed, m.Kind, rep.N)
				continue
			}
			f := rep.Findings[0]
			if f.ShrunkSQL == "" {
				t.Errorf("seed=%d mutant=%s: first finding has no shrunk reproducer (kind=%s)",
					seed, m.Kind, f.Kind)
				continue
			}
			if !shrunkStillTrips(t, cat, m, f) {
				t.Errorf("seed=%d mutant=%s: shrunk reproducer no longer trips the oracle: kind=%s rewrite=%q sql=%s",
					seed, m.Kind, f.Kind, f.Rewrite, f.ShrunkSQL)
			}
		}
	}
}

// TestEETPristineNoFindings: EET rewrites are exact equivalences, so under
// the unmutated registry they must produce zero findings — any finding is
// an unsound catalog entry or an engine divergence.
func TestEETPristineNoFindings(t *testing.T) {
	cat := catalog.LoadTPCH(catalog.DefaultTPCHConfig())
	for _, seed := range []int64{1, 42} {
		rep, err := Run(Config{Seed: seed, N: 200, Workers: 8, Catalog: cat, DB: "tpch", EET: true})
		if err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
		if len(rep.Findings) != 0 {
			f := rep.Findings[0]
			t.Errorf("seed=%d: pristine EET campaign reported %d findings; first: kind=%s rewrite=%q detail=%s sql=%s",
				seed, len(rep.Findings), f.Kind, f.Rewrite, f.Detail, f.SQL)
		}
		if rep.MetamorphicChecks <= 0 {
			t.Errorf("seed=%d: no metamorphic checks ran; EET flag had no effect", seed)
		}
	}
}

// TestEETDeterminismAcrossWorkers: the per-seed EET site selection must not
// depend on scheduling — byte-identical reports at any worker count.
func TestEETDeterminismAcrossWorkers(t *testing.T) {
	cat := catalog.LoadTPCH(catalog.TPCHConfig{ScaleRows: 0.1, Seed: 1})
	var reports [][]byte
	for _, workers := range []int{1, 8} {
		rep, err := Run(Config{Seed: 7, N: 96, Workers: workers, Catalog: cat, DB: "tpch", EET: true})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		data, err := rep.JSON()
		if err != nil {
			t.Fatalf("workers=%d: JSON: %v", workers, err)
		}
		reports = append(reports, data)
	}
	if !bytes.Equal(reports[0], reports[1]) {
		t.Errorf("EET reports differ between -workers 1 and 8:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s",
			reports[0], reports[1])
	}
}
