// Package fuzz is the plan-guided metamorphic fuzzing subsystem: a seeded,
// deterministic campaign that generates random logical query trees (and,
// optionally, random catalogs), runs two oracles per query — the paper's
// differential Plan(q) vs Plan(q,¬R) execution oracle and a metamorphic
// oracle built on known-equivalence rewrites — steers generation QPG-style
// with a plan-shape coverage map, and shrinks every reported failure to a
// minimal query.
//
// Determinism contract: for a fixed Config (and no Timeout cutoff) the
// report is byte-identical at every worker count. Per-query randomness is
// derived from (Seed, index) via par.DeriveSeed; coverage-guided weight
// updates happen only between fixed-size rounds, with the coverage map
// merged in index order, so every query sees a weight snapshot that depends
// only on the campaign prefix — never on worker scheduling.
package fuzz

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"qtrtest/internal/bind"
	"qtrtest/internal/catalog"
	"qtrtest/internal/core/qgen"
	"qtrtest/internal/core/suite"
	"qtrtest/internal/exec"
	"qtrtest/internal/logical"
	"qtrtest/internal/opt"
	"qtrtest/internal/par"
	"qtrtest/internal/physical"
	"qtrtest/internal/rescache"
	"qtrtest/internal/rules"
	"qtrtest/internal/sqlgen"
)

// Config tunes a fuzz campaign.
type Config struct {
	// Seed drives everything: catalog choice (when Catalog is nil), query
	// generation and coverage steering.
	Seed int64
	// N is the number of queries to generate (default 500).
	N int
	// Workers bounds the worker pool; the report is identical for any value.
	Workers int
	// Timeout, when positive, stops the campaign at the next round boundary
	// after the budget elapses. A timed-out report is marked TimedOut and is
	// not workers-deterministic.
	Timeout time.Duration
	// Registry is the rule set under test (default rules.DefaultRegistry;
	// mutation self-tests pass a mutant's registry).
	Registry *rules.Registry
	// Catalog is the test database (default: RandomCatalog(Seed)).
	Catalog *catalog.Catalog
	// DB labels the catalog in the report and reproducer line ("tpch",
	// "star", "rand").
	DB string
	// Mutant labels an injected fault in the report and reproducer line.
	Mutant string
	// MaxOps bounds the random-tree operator budget (default 7).
	MaxOps int
	// MaxRows caps each plan execution's buffered result; plans over the cap
	// are skipped, not failed (default 20000).
	MaxRows int
	// MaxCost skips plans whose estimated cost exceeds it (default 5e6).
	// MaxRows only bounds the root output; a fault that drops a join
	// predicate can make an intermediate result explode while the root stays
	// small, and the cost estimate is the deterministic signal that prices
	// that explosion before execution pays for it.
	MaxCost float64
	// MaxWork caps the total rows produced by all operators of one plan
	// execution, rescans included (default 2e6). It is the runtime backstop
	// behind MaxCost: an injected fault mutates the plan after costing, so
	// its estimate can be arbitrarily wrong about the work its output
	// actually takes.
	MaxWork int64
	// RoundSize is the number of queries per steering round (default 32).
	// Coverage feedback adjusts generator weights only between rounds.
	RoundSize int
	// MaxShrunk bounds how many findings get shrunk (default 8, in report
	// order); MaxShrinkChecks bounds shrink-oracle evaluations per finding
	// (default 300).
	MaxShrunk       int
	MaxShrinkChecks int
	// EET enables the expression-level equivalence rewrites (the scalar EET
	// catalog) alongside the tree-level metamorphic rewrites.
	EET bool
	// StopOnFinding stops the campaign at the first round boundary where at
	// least one finding exists. Unlike Timeout, the cutoff is round-granular
	// and depends only on query indices, so the report stays
	// workers-deterministic.
	StopOnFinding bool
	// Engine selects the execution engine for every plan execution in the
	// campaign (the zero value is the batch engine). Campaign reports are
	// byte-identical across engines; the knob exists so the differential
	// golden tests can pin that.
	Engine exec.Engine
	// Backend names an independent engine ("ref", "row", "batch") that
	// every base query is additionally replayed on and compared against —
	// the cross-engine oracle that breaks the campaign's self-differential
	// circularity. The "ref" backend evaluates the pre-optimizer logical
	// tree on the reference interpreter, so it catches faults the optimizer
	// and both built-in engines share. Empty (the default) disables the
	// check, leaving the report byte-identical to a backend-less campaign.
	Backend string
	// Cache, when non-nil, memoizes plan executions across the whole
	// campaign — oracles and shrinker alike. Reports are byte-identical with
	// and without it (the cache differential tests pin that); it only
	// collapses the repeated executions fuzzing is full of: Plan(q,¬R)
	// equal to some earlier alternative, shrink candidates replayed after
	// each accepted reduction, rewrites sharing subplans.
	Cache *rescache.Cache
}

func (c *Config) setDefaults() {
	if c.N <= 0 {
		c.N = 500
	}
	if c.MaxOps < 2 {
		c.MaxOps = 7
	}
	if c.MaxRows <= 0 {
		c.MaxRows = 20000
	}
	if c.MaxCost <= 0 {
		c.MaxCost = 5e6
	}
	if c.MaxWork <= 0 {
		c.MaxWork = 2e6
	}
	if c.RoundSize <= 0 {
		c.RoundSize = 32
	}
	if c.MaxShrunk <= 0 {
		c.MaxShrunk = 8
	}
	if c.MaxShrinkChecks <= 0 {
		c.MaxShrinkChecks = 300
	}
	if c.Registry == nil {
		c.Registry = rules.DefaultRegistry()
	}
	if c.Catalog == nil {
		c.Catalog = RandomCatalog(c.Seed)
		if c.DB == "" {
			c.DB = "rand"
		}
	}
	if c.DB == "" {
		c.DB = "custom"
	}
}

// repro formats the reproducer line: the CLI invocation that replays the
// campaign byte-identically at any -workers count.
func (c *Config) repro() string {
	db := fmt.Sprintf("-db %s ", c.DB)
	if c.DB == "rand" {
		db = ""
	}
	backend := ""
	if c.Backend != "" {
		backend = fmt.Sprintf("-backend %s ", c.Backend)
	}
	line := fmt.Sprintf("qtrtest %s%s-seed %d fuzz -n %d", db, backend, c.Seed, c.N)
	if c.EET {
		line += " -eet"
	}
	if c.DB == "rand" {
		line += " -randcat"
	}
	if c.Mutant != "" {
		line += fmt.Sprintf(" -mutant %s", c.Mutant)
	}
	return line + "  # any -workers"
}

// rewritesFor returns the campaign's rewrite list: the tree-level catalog,
// plus the EET expression-level catalog when cfg.EET is set.
func rewritesFor(cfg Config) []Rewrite {
	rws := Rewrites()
	if cfg.EET {
		rws = append(rws, eetRewrites()...)
	}
	return rws
}

// campaign bundles the per-run state shared by all workers (all read-only
// during a round).
type campaign struct {
	cfg      Config
	opt      *opt.Optimizer
	gen      *qgen.Generator
	rewrites []Rewrite
	cache    *rescache.Cache
	// backend is the resolved Config.Backend engine; backendOn gates the
	// cross-engine oracle.
	backend   exec.Engine
	backendOn bool
}

// execBase runs a base plan under the campaign's caps, through the cache
// when one is configured.
func (c *campaign) execBase(plan *physical.Expr) (*suite.BaseExec, error) {
	return suite.ExecBaseCached(c.cache, c.cfg.Engine, plan, c.cfg.Catalog, c.cfg.MaxRows, c.cfg.MaxWork)
}

// compareEdge runs an alternative plan under the campaign's caps and applies
// the order-aware oracle, through the cache when one is configured.
func (c *campaign) compareEdge(base *suite.BaseExec, plan *physical.Expr) (suite.EdgeOutcome, error) {
	return suite.CompareEdgeCached(c.cache, c.cfg.Engine, c.cfg.Catalog, base, plan, c.cfg.MaxRows, c.cfg.MaxWork)
}

// finding is the internal form of a Finding, carrying the bound tree and
// metadata needed to shrink it after the campaign.
type finding struct {
	pub  Finding
	tree *logical.Expr
	md   *logical.Metadata
}

// result is one query's outcome, written into an index-addressed slot.
type result struct {
	skip          string // "" when the query executed; else the stage that rejected it
	shape         uint64
	ops           []logical.Op
	planExecs     int
	diffChecks    int
	metaChecks    int
	backendChecks int
	undetermined  int
	findings      []finding
}

// Run executes a fuzz campaign and returns its report.
func Run(cfg Config) (*Report, error) {
	cfg.setDefaults()
	var backendEng exec.Engine
	if cfg.Backend != "" {
		var err error
		backendEng, err = exec.EngineByName(cfg.Backend)
		if err != nil {
			return nil, err
		}
	}
	o := opt.New(cfg.Registry, cfg.Catalog)
	gen, err := qgen.New(o, qgen.Config{Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	c := &campaign{
		cfg: cfg, opt: o, gen: gen, rewrites: rewritesFor(cfg), cache: cfg.Cache,
		backend: backendEng, backendOn: cfg.Backend != "",
	}

	rep := &Report{
		Schema: ReportSchema, DB: cfg.DB, Mutant: cfg.Mutant, Backend: cfg.Backend,
		Seed: cfg.Seed, N: cfg.N, Findings: []Finding{},
	}
	var deadline time.Time
	if cfg.Timeout > 0 {
		//qtrlint:allow wallclock -timeout is a wall-clock budget checked only at round boundaries; reports produced without hitting it are still deterministic
		deadline = time.Now().Add(cfg.Timeout)
	}

	weights := qgen.DefaultWeights()
	coverage := make(map[uint64]int)
	var found []finding
	for base := 0; base < cfg.N; base += cfg.RoundSize {
		n := cfg.RoundSize
		if base+n > cfg.N {
			n = cfg.N - base
		}
		// Workers share this round's weight snapshot read-only; boosts are
		// applied after the round, in index order.
		snap := weights.Clone()
		results := make([]result, n)
		par.ForEach(cfg.Workers, n, func(i int) {
			results[i] = c.runOne(base+i, snap)
		})
		for i := range results {
			r := &results[i]
			if r.skip != "" {
				if rep.Skipped == nil {
					rep.Skipped = make(map[string]int)
				}
				rep.Skipped[r.skip]++
				continue
			}
			rep.Generated++
			rep.PlanExecutions += r.planExecs
			rep.DifferentialChecks += r.diffChecks
			rep.MetamorphicChecks += r.metaChecks
			rep.BackendChecks += r.backendChecks
			rep.Undetermined += r.undetermined
			if coverage[r.shape] == 0 {
				// Novel plan shape: QPG-style steering boosts the operators
				// that produced it, so later rounds sample them more often.
				for _, op := range r.ops {
					weights.Boost(op, 1, 12)
				}
			}
			coverage[r.shape]++
			found = append(found, r.findings...)
		}
		if cfg.StopOnFinding && len(found) > 0 {
			break
		}
		if cfg.Timeout > 0 {
			//qtrlint:allow wallclock see above: round-boundary timeout check
			if time.Now().After(deadline) {
				rep.TimedOut = true
				break
			}
		}
	}
	rep.PlanShapes = len(coverage)

	// Shrink the first MaxShrunk findings, in parallel (each shrink is a
	// deterministic function of its finding alone, so slots keep the report
	// deterministic).
	nshrink := len(found)
	if nshrink > cfg.MaxShrunk {
		nshrink = cfg.MaxShrunk
	}
	par.ForEach(cfg.Workers, nshrink, func(i int) {
		c.shrinkFinding(&found[i])
	})
	for i := range found {
		found[i].pub.Repro = cfg.repro()
		rep.Findings = append(rep.Findings, found[i].pub)
	}
	sort.SliceStable(rep.Findings, func(i, j int) bool {
		return rep.Findings[i].Query < rep.Findings[j].Query
	})
	return rep, nil
}

// runOne generates and tests one query: tree → SQL → bind → optimize →
// execute, then the differential oracle over every rule in RuleSet(q) and
// the metamorphic oracle over every applicable rewrite.
func (c *campaign) runOne(idx int, w *qgen.Weights) result {
	var r result
	seed := par.DeriveSeed(c.cfg.Seed, idx)
	g := c.gen.Fork(seed)
	rng := rand.New(rand.NewSource(par.DeriveSeed(seed, 1)))
	md := logical.NewMetadata(c.cfg.Catalog)
	budget := 2 + rng.Intn(c.cfg.MaxOps-1)
	tree, err := g.RandomTreeWeighted(md, budget, w)
	if err != nil {
		r.skip = "generate"
		return r
	}
	sqlText, err := sqlgen.Generate(tree, md)
	if err != nil {
		r.skip = "render"
		return r
	}
	bound, err := bind.BindSQL(sqlText, c.cfg.Catalog)
	if err != nil {
		r.skip = "bind"
		return r
	}
	res, err := c.opt.Optimize(bound.Tree, bound.MD, opt.Options{})
	if err != nil {
		r.skip = "optimize"
		return r
	}
	if res.Plan.Cost > c.cfg.MaxCost {
		r.skip = "estcap"
		return r
	}
	r.shape = PlanShape(res.Plan)
	r.ops = distinctOps(bound.Tree)

	mk := func(kind string) finding {
		return finding{
			pub: Finding{
				Query: idx, Seed: seed, Kind: kind, SQL: sqlText,
				RuleSet: fmt.Sprintf("%v", res.RuleSet.Sorted()),
			},
			tree: bound.Tree, md: bound.MD,
		}
	}

	base, err := c.execBase(res.Plan)
	if errors.Is(err, exec.ErrRowLimit) {
		r.skip = "rowcap"
		return r
	}
	if err != nil {
		f := mk(KindExecError)
		f.pub.Detail = err.Error()
		f.pub.BasePlan = res.Plan.String()
		r.findings = append(r.findings, f)
		return r
	}
	r.planExecs++

	// Cross-engine oracle: replay the query on the independent backend and
	// compare against the base execution. A backend-side execution error is
	// itself a divergence (engines must agree on Error-vs-OK); a budget
	// trip on the backend skips the comparison per the budget-parity
	// contract.
	if c.backendOn {
		out, err := suite.CrossCheckBase(c.cache, c.backend, c.cfg.Engine,
			bound.Tree, base, c.cfg.Catalog, c.cfg.MaxRows, c.cfg.MaxWork)
		switch {
		case err != nil:
			f := mk(KindBackend)
			f.pub.Detail = err.Error()
			f.pub.BasePlan = res.Plan.String()
			r.findings = append(r.findings, f)
		case out.Skipped || out.Capped:
			// backend == engine, or the backend hit a budget: nothing to
			// compare.
		default:
			r.backendChecks++
			switch out.Verdict {
			case exec.VerdictMismatch:
				f := mk(KindBackend)
				f.pub.Detail = out.Detail
				f.pub.BasePlan = res.Plan.String()
				r.findings = append(r.findings, f)
			case exec.VerdictUndetermined:
				r.undetermined++
			}
		}
	}

	// Differential oracle: disable each exercised rule in turn and compare.
	// An unplannable Plan(q,¬r) (r was the only implementation of some
	// operator) is skipped, not reported: losing plannability is expected,
	// wrong results are not.
	for _, id := range res.RuleSet.Sorted() {
		altRes, err := c.opt.Optimize(bound.Tree, bound.MD, opt.Options{Disabled: rules.NewSet(id)})
		if err != nil || altRes.Plan.Cost > c.cfg.MaxCost {
			continue
		}
		out, err := c.compareEdge(base, altRes.Plan)
		if err != nil {
			f := mk(KindExecError)
			f.pub.Rule = int(id)
			f.pub.Detail = err.Error()
			f.pub.BasePlan = res.Plan.String()
			f.pub.AltPlan = altRes.Plan.String()
			r.findings = append(r.findings, f)
			continue
		}
		if out.Skipped || out.Capped {
			continue
		}
		r.planExecs++
		r.diffChecks++
		switch out.Verdict {
		case exec.VerdictMismatch:
			f := mk(KindDifferential)
			f.pub.Rule = int(id)
			f.pub.Detail = out.Detail
			f.pub.BasePlan = res.Plan.String()
			f.pub.AltPlan = altRes.Plan.String()
			r.findings = append(r.findings, f)
		case exec.VerdictUndetermined:
			r.undetermined++
		}
	}

	// Metamorphic oracle: each applicable rewrite is rendered, re-planned
	// and compared against the base execution.
	for _, rw := range c.rewrites {
		alt := rw.Apply(bound.Tree, bound.MD, seed)
		if alt == nil {
			continue
		}
		altPlan, err := c.planTree(alt, bound.MD)
		if err != nil {
			f := mk(KindRewriteError)
			f.pub.Rewrite = rw.Name
			f.pub.Detail = err.Error()
			r.findings = append(r.findings, f)
			continue
		}
		if altPlan.Cost > c.cfg.MaxCost {
			continue
		}
		out, err := c.compareEdge(base, altPlan)
		if err != nil {
			f := mk(KindExecError)
			f.pub.Rewrite = rw.Name
			f.pub.Detail = err.Error()
			f.pub.BasePlan = res.Plan.String()
			f.pub.AltPlan = altPlan.String()
			r.findings = append(r.findings, f)
			continue
		}
		if out.Capped {
			continue
		}
		if !out.Skipped {
			r.planExecs++
		}
		r.metaChecks++
		switch out.Verdict {
		case exec.VerdictMismatch:
			f := mk(KindMetamorphic)
			f.pub.Rewrite = rw.Name
			f.pub.Detail = out.Detail
			f.pub.BasePlan = res.Plan.String()
			f.pub.AltPlan = altPlan.String()
			r.findings = append(r.findings, f)
		case exec.VerdictUndetermined:
			r.undetermined++
		}
	}
	return r
}

// planTree renders a logical tree to SQL, re-binds and optimizes it — the
// same pipeline a generated query takes, applied to a rewritten tree. The
// supplied metadata is the original query's (a superset of the tree's
// columns), which sqlgen accepts because it names columns by ID.
func (c *campaign) planTree(tree *logical.Expr, md *logical.Metadata) (*physical.Expr, error) {
	sqlText, err := sqlgen.Generate(tree, md)
	if err != nil {
		return nil, fmt.Errorf("render: %w", err)
	}
	bound, err := bind.BindSQL(sqlText, c.cfg.Catalog)
	if err != nil {
		return nil, fmt.Errorf("bind: %w (sql: %s)", err, sqlText)
	}
	res, err := c.opt.Optimize(bound.Tree, bound.MD, opt.Options{})
	if err != nil {
		return nil, fmt.Errorf("optimize: %w", err)
	}
	return res.Plan, nil
}

// distinctOps returns the distinct logical operators of a tree, sorted, for
// coverage-steering boosts.
func distinctOps(tree *logical.Expr) []logical.Op {
	seen := make(map[logical.Op]bool)
	tree.Walk(func(e *logical.Expr) { seen[e.Op] = true })
	var out []logical.Op
	for _, op := range qgen.WeightedOps {
		if seen[op] {
			out = append(out, op)
		}
	}
	return out
}
