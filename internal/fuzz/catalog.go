package fuzz

import (
	"fmt"
	"math/rand"

	"qtrtest/internal/catalog"
	"qtrtest/internal/datum"
)

// RandomCatalog builds a small random test database, deterministic in seed:
// 2–4 tables of 2–5 columns with mixed types, nullable columns, occasional
// single-column integer primary keys, and 6–40 rows each. Values are drawn
// from deliberately small domains so that random equality predicates and
// join keys actually match rows, and every nullable column carries real
// NULLs so three-valued-logic bugs are reachable. Statistics (including
// histograms) are computed so the cost model behaves as it would on the
// shipped catalogs.
func RandomCatalog(seed int64) *catalog.Catalog {
	rng := rand.New(rand.NewSource(seed))
	cat := catalog.New()
	nt := 2 + rng.Intn(3)
	for ti := 0; ti < nt; ti++ {
		t := &catalog.Table{Name: fmt.Sprintf("r%d", ti)}
		hasPK := rng.Intn(2) == 0
		ncols := 2 + rng.Intn(4)
		if hasPK {
			t.Columns = append(t.Columns, catalog.Column{Name: "a0", Type: datum.TypeInt})
			t.PrimaryKey = []string{"a0"}
		}
		for len(t.Columns) < ncols {
			c := catalog.Column{
				Name:     fmt.Sprintf("a%d", len(t.Columns)),
				Type:     randomType(rng),
				Nullable: rng.Intn(3) == 0,
			}
			t.Columns = append(t.Columns, c)
		}
		nrows := 6 + rng.Intn(35)
		for ri := 0; ri < nrows; ri++ {
			row := make(datum.Row, len(t.Columns))
			for ci, c := range t.Columns {
				if hasPK && ci == 0 {
					row[ci] = datum.NewInt(int64(ri))
					continue
				}
				if c.Nullable && rng.Intn(8) == 0 {
					row[ci] = datum.Null
					continue
				}
				row[ci] = randomValue(rng, c.Type)
			}
			t.Rows = append(t.Rows, row)
		}
		t.ComputeStats()
		cat.Add(t)
	}
	return cat
}

func randomType(rng *rand.Rand) datum.Type {
	switch rng.Intn(4) {
	case 0:
		return datum.TypeFloat
	case 1:
		return datum.TypeString
	case 2:
		return datum.TypeDate
	default:
		return datum.TypeInt
	}
}

// stringDomain is the pool random string values draw from. Besides plain
// letters it includes strings carrying the bytes the row-key encoding uses
// for framing (`|`, `:`, `;`) and pairs like "a|b" / "a" + "b" that would
// collide under a non-injective multi-part key, so key-encoding bugs in
// joins, aggregation and result comparison are reachable by fuzzing.
var stringDomain = []string{
	"a", "b", "c", "d", "e", "f",
	"a|b", "a|", "|b", "a:b", "a;b",
	"s1:a", "3:abc", "", "a|5:b",
}

// randomValue draws from a small per-type domain: joins and equality
// predicates over random columns need collisions to produce rows.
func randomValue(rng *rand.Rand, t datum.Type) datum.Datum {
	switch t {
	case datum.TypeFloat:
		return datum.NewFloat(float64(rng.Intn(40)) / 2)
	case datum.TypeString:
		return datum.NewString(stringDomain[rng.Intn(len(stringDomain))])
	case datum.TypeDate:
		return datum.NewDate(int64(rng.Intn(60)))
	default:
		return datum.NewInt(int64(rng.Intn(25)))
	}
}
