package rulecheck

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"qtrtest/internal/rules"
)

// The static rule-pair composability matrix, computed from pattern shapes
// alone (§3: pattern composition). For each ordered pair of exploration
// rules (a, b) it records which composition constructions apply — the same
// constructions the query generator uses to build a rule-pair query — and,
// separately, whether a's declared output can feed b's pattern (the basis
// of observed interactions). The dynamic side cross-validates both: every
// pair the optimizer co-exercises on the TPC-H workload must be composable
// here, and every observed interaction a→b must be explained by FeedsInto.

// Mode is a bitmask of applicable composition constructions for an ordered
// rule pair.
type Mode uint8

// The composition constructions, mirroring qgen.ComposePatterns.
const (
	// ComposeOverlap: some concrete subtree of a's pattern unifies with one
	// of b's, so a single tree region can satisfy both patterns at once.
	ComposeOverlap Mode = 1 << iota
	// ComposeSubstitute: b's pattern substitutes into a generic placeholder
	// of a's pattern, stacking b's shape beneath a's.
	ComposeSubstitute
	// ComposeJoinRoot: the two patterns combine as the children of a fresh
	// Join root.
	ComposeJoinRoot
	// ComposeUnionRoot: the two patterns combine as the branches of a fresh
	// UnionAll root.
	ComposeUnionRoot
)

// String renders the set of constructions, e.g. "overlap|substitute".
func (m Mode) String() string {
	if m == 0 {
		return "none"
	}
	var parts []string
	if m&ComposeOverlap != 0 {
		parts = append(parts, "overlap")
	}
	if m&ComposeSubstitute != 0 {
		parts = append(parts, "substitute")
	}
	if m&ComposeJoinRoot != 0 {
		parts = append(parts, "join-root")
	}
	if m&ComposeUnionRoot != 0 {
		parts = append(parts, "union-root")
	}
	return strings.Join(parts, "|")
}

// Matrix is the composability matrix over a rule set's exploration rules.
type Matrix struct {
	// IDs lists the exploration rules covered, ascending.
	IDs []rules.ID `json:"ids"`
	// Modes maps an ordered pair [a, b] to the applicable constructions for
	// composing b into/alongside a. Pairs with no applicable construction
	// are present with mode 0, so lookups distinguish "incomposable" from
	// "rule not covered".
	Modes map[[2]rules.ID]Mode `json:"-"`
	// Feeds maps [a, b] to whether some declared output shape of a overlaps
	// b's pattern: firing a can create the match that lets b fire.
	Feeds map[[2]rules.ID]bool `json:"-"`
}

// Composability computes the matrix from pattern shapes alone.
func Composability(infos []RuleInfo) *Matrix {
	var expl []RuleInfo
	for _, ri := range infos {
		if ri.Kind == rules.KindExploration && ri.Pattern != nil &&
			rules.ValidatePattern(ri.Pattern) == nil {
			expl = append(expl, ri)
		}
	}
	if len(expl) == 0 {
		return nil
	}
	sort.Slice(expl, func(i, j int) bool { return expl[i].ID < expl[j].ID })
	m := &Matrix{
		Modes: make(map[[2]rules.ID]Mode, len(expl)*len(expl)),
		Feeds: make(map[[2]rules.ID]bool),
	}
	for _, ri := range expl {
		m.IDs = append(m.IDs, ri.ID)
	}
	for _, a := range expl {
		for _, b := range expl {
			var mode Mode
			if a.Pattern.Overlaps(b.Pattern) {
				mode |= ComposeOverlap
			}
			if len(a.Pattern.Generics()) > 0 {
				mode |= ComposeSubstitute
			}
			// The fresh-root constructions place both patterns under a new
			// binary operator; they apply whenever both patterns exist,
			// which the filter above already guarantees.
			mode |= ComposeJoinRoot | ComposeUnionRoot
			m.Modes[[2]rules.ID{a.ID, b.ID}] = mode
			for _, p := range a.Produces {
				if p != nil && rules.ValidatePattern(p) == nil && p.Overlaps(b.Pattern) {
					m.Feeds[[2]rules.ID{a.ID, b.ID}] = true
					break
				}
			}
		}
	}
	return m
}

// Composable reports whether any construction composes the ordered pair.
// False is also returned for rules the matrix does not cover.
func (m *Matrix) Composable(a, b rules.ID) bool {
	return m != nil && m.Modes[[2]rules.ID{a, b}] != 0
}

// ModeOf returns the constructions applicable to the ordered pair.
func (m *Matrix) ModeOf(a, b rules.ID) Mode {
	if m == nil {
		return 0
	}
	return m.Modes[[2]rules.ID{a, b}]
}

// FeedsInto reports whether a's declared output can create a match for b.
func (m *Matrix) FeedsInto(a, b rules.ID) bool {
	return m != nil && m.Feeds[[2]rules.ID{a, b}]
}

// matrixPair is the JSON wire form of one ordered-pair entry.
type matrixPair struct {
	A     rules.ID `json:"a"`
	B     rules.ID `json:"b"`
	Modes string   `json:"modes"`
	Feeds bool     `json:"feeds,omitempty"`
}

// MarshalJSON renders the matrix with its pair maps expanded to a sorted
// array (Go maps with array keys have no native JSON form).
func (m *Matrix) MarshalJSON() ([]byte, error) {
	var pairs []matrixPair
	for _, a := range m.IDs {
		for _, b := range m.IDs {
			pairs = append(pairs, matrixPair{
				A: a, B: b, Modes: m.ModeOf(a, b).String(), Feeds: m.FeedsInto(a, b),
			})
		}
	}
	return json.Marshal(struct {
		IDs   []rules.ID   `json:"ids"`
		Pairs []matrixPair `json:"pairs"`
	}{m.IDs, pairs})
}

// String renders the feeds relation compactly, one source rule per line.
func (m *Matrix) String() string {
	if m == nil {
		return "(no exploration rules)"
	}
	var sb strings.Builder
	for _, a := range m.IDs {
		var feeds []string
		for _, b := range m.IDs {
			if m.FeedsInto(a, b) {
				feeds = append(feeds, fmt.Sprintf("%d", b))
			}
		}
		fmt.Fprintf(&sb, "#%d feeds {%s}\n", a, strings.Join(feeds, ","))
	}
	return sb.String()
}
