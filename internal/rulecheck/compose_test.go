package rulecheck

import (
	"testing"

	"qtrtest/internal/rules"
)

func defaultMatrix(t *testing.T) *Matrix {
	t.Helper()
	m := Composability(FromRegistry(rules.DefaultRegistry()))
	if m == nil {
		t.Fatal("nil matrix for default registry")
	}
	return m
}

// TestMatrixCoversExplorationRules: the matrix covers exactly the
// exploration rules, in ascending ID order, with an entry for every ordered
// pair.
func TestMatrixCoversExplorationRules(t *testing.T) {
	m := defaultMatrix(t)
	reg := rules.DefaultRegistry()
	want := 0
	for _, r := range reg.All() {
		if r.Kind() == rules.KindExploration {
			want++
		}
	}
	if len(m.IDs) != want {
		t.Fatalf("matrix covers %d rules, registry has %d exploration rules", len(m.IDs), want)
	}
	for i := 1; i < len(m.IDs); i++ {
		if m.IDs[i-1] >= m.IDs[i] {
			t.Fatalf("IDs not ascending: %v", m.IDs)
		}
	}
	if got, want := len(m.Modes), len(m.IDs)*len(m.IDs); got != want {
		t.Fatalf("Modes has %d entries, want %d", got, want)
	}
}

// TestMatrixProperties pins structural facts of the shipped rule set.
func TestMatrixProperties(t *testing.T) {
	m := defaultMatrix(t)
	for _, a := range m.IDs {
		for _, b := range m.IDs {
			mode, rev := m.ModeOf(a, b), m.ModeOf(b, a)
			// Overlap is symmetric by construction.
			if mode&ComposeOverlap != rev&ComposeOverlap {
				t.Fatalf("overlap not symmetric for (%d,%d)", a, b)
			}
			// Every built-in pattern has a generic slot and the fresh-root
			// constructions always apply, so every pair is composable some
			// way — the interesting signal is in the per-mode split and the
			// feeds relation.
			if mode == 0 {
				t.Fatalf("pair (%d,%d) incomposable", a, b)
			}
		}
	}
	// JoinCommute (#1) produces Join(*,*), which its own pattern consumes:
	// the canonical self-feeding rule.
	if !m.FeedsInto(1, 1) {
		t.Error("JoinCommute does not feed itself")
	}
	// SelectMerge (#4) produces Select(*); PushSelectBelowJoinLeft (#6)
	// consumes Select(Join(*,*)) — a selection can sit over a join, so #4
	// must feed #6.
	if !m.FeedsInto(4, 6) {
		t.Error("SelectMerge does not feed PushSelectBelowJoinLeft")
	}
	// The feeds relation must not be the trivial all-true relation: rules
	// producing only join shapes cannot feed rules that require a UnionAll
	// root anywhere in their pattern. JoinCommute (#1) produces Join(*,*)
	// only; UnionAllDistribute... use GroupByUnionPull (#25's pattern
	// consumes GroupBy(UnionAll(...))) — assert at least one pair is false.
	allTrue := true
	for _, a := range m.IDs {
		for _, b := range m.IDs {
			if !m.FeedsInto(a, b) {
				allTrue = false
			}
		}
	}
	if allTrue {
		t.Error("feeds relation is trivially all-true; overlap computation is broken")
	}
}
