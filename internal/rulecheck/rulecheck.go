// Package rulecheck is the static-analysis layer over the optimizer's rule
// registry: a domain linter that checks rule definitions — patterns,
// identifiers, declared output shapes — without optimizing a single query.
// It complements the dynamic pipeline (generate → optimize → execute →
// compare): the dynamic side detects rules whose substitutions are wrong,
// the static side detects rule *sets* that are malformed, shadowed, opaque
// to analysis, or mutated.
//
// The checks:
//
//   - pattern: every consumed and produced pattern is well-formed for the
//     binder (known operators, exact arity, generic placeholders as leaves,
//     concrete root). Registry construction enforces this too; the check
//     exists for rule sets that arrive through the XML API (§3.1), which
//     bypasses construction-time validation.
//   - duplicate-id / duplicate-name: rule identifiers are unique.
//   - pristine-band: no rule occupies the ID ≥ PristineIDOffset band that
//     internal/mutate reserves for the pristine copies it appends when it
//     replaces an implementation rule. A populated band means the registry
//     under analysis is a mutated one, not the shipping rule set.
//   - produces: every exploration rule declares its output shapes (the
//     Producer interface); an undeclared rule is opaque to the termination
//     and composability analyses. Declared shapes must bind their generic
//     placeholders: a rule whose consumed pattern has no generic slots
//     cannot produce a shape containing one (a free pattern variable).
//   - dead-end: every declared output shape is consumed by some rule, so no
//     substitution produces expressions the rule set can neither transform
//     further nor implement.
//   - termination: cycles in the produces/consumes graph (rule a's output
//     shape overlaps rule b's pattern, and transitively back to a) are
//     reported as info — the memo's expression deduplication is what
//     guarantees exploration terminates, and the report makes the reliance
//     visible.
package rulecheck

import (
	"fmt"
	"sort"

	"qtrtest/internal/mutate"
	"qtrtest/internal/rules"
)

// Severity grades a diagnostic.
type Severity int

// Severities, in increasing order of concern. Info never affects exit
// status; Warning and Error do.
const (
	Info Severity = iota
	Warning
	Error
)

// String returns the severity name.
func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	default:
		return "error"
	}
}

// MarshalJSON renders the severity as its name.
func (s Severity) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// Diagnostic is one finding.
type Diagnostic struct {
	// Check names the check that produced the finding (e.g. "pattern",
	// "pristine-band").
	Check    string   `json:"check"`
	Severity Severity `json:"severity"`
	// RuleID and RuleName identify the offending rule; RuleID is 0 for
	// findings about the rule set as a whole.
	RuleID   rules.ID `json:"rule_id,omitempty"`
	RuleName string   `json:"rule_name,omitempty"`
	Message  string   `json:"message"`
}

// String renders the diagnostic one per line, lint style.
func (d Diagnostic) String() string {
	subject := "ruleset"
	if d.RuleName != "" {
		subject = fmt.Sprintf("%s(#%d)", d.RuleName, d.RuleID)
	}
	return fmt.Sprintf("%s: %s: %s: %s", d.Severity, d.Check, subject, d.Message)
}

// Report is the outcome of a check run.
type Report struct {
	Diagnostics []Diagnostic `json:"diagnostics"`
	// Matrix is the static rule-pair composability matrix over the checked
	// exploration rules (nil when the rule set has none).
	Matrix *Matrix `json:"matrix,omitempty"`
}

// Count returns how many diagnostics have the given severity.
func (r *Report) Count(s Severity) int {
	n := 0
	for _, d := range r.Diagnostics {
		if d.Severity == s {
			n++
		}
	}
	return n
}

// Failed reports whether the run should exit nonzero: any Warning or Error.
// Info diagnostics (e.g. termination-cycle reports) never fail a run.
func (r *Report) Failed() bool { return r.Count(Error) > 0 || r.Count(Warning) > 0 }

// RuleInfo is the analyzer's view of one rule: plain data, so rule sets can
// come from a live Registry, from an XML export, or be built by tests.
type RuleInfo struct {
	ID      rules.ID
	Name    string
	Kind    rules.Kind
	Pattern *rules.Pattern
	// Produces holds the declared output shapes (nil when the rule does not
	// implement rules.Producer or declares none).
	Produces []*rules.Pattern
}

// FromRegistry extracts the analyzer's view of a live registry.
func FromRegistry(reg *rules.Registry) []RuleInfo {
	out := make([]RuleInfo, 0, len(reg.All()))
	for _, r := range reg.All() {
		ri := RuleInfo{ID: r.ID(), Name: r.Name(), Kind: r.Kind(), Pattern: r.Pattern()}
		if p, ok := r.(rules.Producer); ok {
			ri.Produces = p.Produces()
		}
		out = append(out, ri)
	}
	return out
}

// FromExported extracts the analyzer's view of a parsed XML export. The XML
// wire form does not carry produced shapes, so Produces is nil for every
// rule.
func FromExported(ex []rules.ExportedRule) []RuleInfo {
	out := make([]RuleInfo, 0, len(ex))
	for _, r := range ex {
		out = append(out, RuleInfo{ID: r.ID, Name: r.Name, Kind: r.Kind, Pattern: r.Pattern})
	}
	return out
}

// Options tunes a check run.
type Options struct {
	// RequireProduces enables the warning for exploration rules that declare
	// no output shapes. Disable it for XML-sourced rule sets, whose wire
	// form cannot carry the declarations.
	RequireProduces bool
}

// CheckRegistry runs every check against a live registry.
func CheckRegistry(reg *rules.Registry) *Report {
	return Check(FromRegistry(reg), Options{RequireProduces: true})
}

// CheckExported runs the checks applicable to an XML-sourced rule set.
func CheckExported(ex []rules.ExportedRule) *Report {
	return Check(FromExported(ex), Options{})
}

// Check runs every check over the rule set and returns the report. The
// diagnostics are in deterministic order: checks run in a fixed sequence and
// each walks the rules in slice order.
func Check(infos []RuleInfo, opts Options) *Report {
	rep := &Report{}
	checkPatterns(infos, rep)
	checkIdentifiers(infos, rep)
	checkPristineBand(infos, rep)
	checkProduces(infos, opts, rep)
	checkDeadEnds(infos, rep)
	checkTermination(infos, rep)
	rep.Matrix = Composability(infos)
	return rep
}

// checkPatterns validates every consumed and produced pattern.
func checkPatterns(infos []RuleInfo, rep *Report) {
	for _, ri := range infos {
		if err := rules.ValidatePattern(ri.Pattern); err != nil {
			rep.Diagnostics = append(rep.Diagnostics, Diagnostic{
				Check: "pattern", Severity: Error, RuleID: ri.ID, RuleName: ri.Name,
				Message: err.Error(),
			})
		}
		for i, p := range ri.Produces {
			if err := rules.ValidatePattern(p); err != nil {
				rep.Diagnostics = append(rep.Diagnostics, Diagnostic{
					Check: "pattern", Severity: Error, RuleID: ri.ID, RuleName: ri.Name,
					Message: fmt.Sprintf("produced shape %d: %v", i, err),
				})
			}
		}
	}
}

// checkIdentifiers flags duplicate rule IDs and names.
func checkIdentifiers(infos []RuleInfo, rep *Report) {
	byID := make(map[rules.ID]string)
	byName := make(map[string]rules.ID)
	for _, ri := range infos {
		if prev, dup := byID[ri.ID]; dup {
			rep.Diagnostics = append(rep.Diagnostics, Diagnostic{
				Check: "duplicate-id", Severity: Error, RuleID: ri.ID, RuleName: ri.Name,
				Message: fmt.Sprintf("rule id %d already used by %q", ri.ID, prev),
			})
		} else {
			byID[ri.ID] = ri.Name
		}
		if prev, dup := byName[ri.Name]; dup {
			rep.Diagnostics = append(rep.Diagnostics, Diagnostic{
				Check: "duplicate-name", Severity: Error, RuleID: ri.ID, RuleName: ri.Name,
				Message: fmt.Sprintf("rule name %q already used by #%d", ri.Name, prev),
			})
		} else {
			byName[ri.Name] = ri.ID
		}
	}
}

// checkPristineBand flags rules whose ID lies in the band internal/mutate
// reserves for pristine shadow copies. A shipping registry never populates
// the band: its presence is the static fingerprint of an
// implementation-rule mutant (the mutated rule keeps the original ID and
// slot; the pristine copy rides at ID+offset to keep Plan(q,¬R) plannable).
func checkPristineBand(infos []RuleInfo, rep *Report) {
	byID := make(map[rules.ID]RuleInfo, len(infos))
	for _, ri := range infos {
		byID[ri.ID] = ri
	}
	for _, ri := range infos {
		if ri.ID < mutate.PristineIDOffset {
			continue
		}
		msg := fmt.Sprintf("rule id %d is inside the pristine shadow band (ids ≥ %d are reserved for mutation fault injection)",
			ri.ID, mutate.PristineIDOffset)
		if base, ok := byID[ri.ID-mutate.PristineIDOffset]; ok {
			msg += fmt.Sprintf("; shadows %s(#%d), whose in-slot definition is therefore a mutant",
				base.Name, base.ID)
		}
		rep.Diagnostics = append(rep.Diagnostics, Diagnostic{
			Check: "pristine-band", Severity: Error, RuleID: ri.ID, RuleName: ri.Name,
			Message: msg,
		})
	}
}

// checkProduces flags exploration rules without declared output shapes
// (opaque to the termination and composability analyses) and free pattern
// variables: a produced shape with generic placeholders when the consumed
// pattern binds none, so the placeholders stand for nothing.
func checkProduces(infos []RuleInfo, opts Options, rep *Report) {
	for _, ri := range infos {
		if ri.Kind != rules.KindExploration {
			continue
		}
		if len(ri.Produces) == 0 {
			if opts.RequireProduces {
				rep.Diagnostics = append(rep.Diagnostics, Diagnostic{
					Check: "produces", Severity: Warning, RuleID: ri.ID, RuleName: ri.Name,
					Message: "exploration rule declares no produced output shapes; termination and composability analysis cannot see through it (every built-in rule declares its shapes — an undeclared in-slot rule is a substituted one)",
				})
			}
			continue
		}
		if ri.Pattern == nil || len(ri.Pattern.Generics()) > 0 {
			continue
		}
		for i, p := range ri.Produces {
			if p != nil && len(p.Generics()) > 0 {
				rep.Diagnostics = append(rep.Diagnostics, Diagnostic{
					Check: "produces", Severity: Error, RuleID: ri.ID, RuleName: ri.Name,
					Message: fmt.Sprintf("produced shape %d (%s) has free pattern variables: the consumed pattern %s binds no generic placeholders",
						i, p, ri.Pattern),
				})
			}
		}
	}
}

// checkDeadEnds flags declared output shapes that no rule in the set can
// consume: the substitution would produce expressions the optimizer can
// neither transform further nor implement.
func checkDeadEnds(infos []RuleInfo, rep *Report) {
	for _, ri := range infos {
		for i, p := range ri.Produces {
			if p == nil || rules.ValidatePattern(p) != nil {
				continue
			}
			consumed := false
			for _, other := range infos {
				if other.Pattern != nil && p.Overlaps(other.Pattern) {
					consumed = true
					break
				}
			}
			if !consumed {
				rep.Diagnostics = append(rep.Diagnostics, Diagnostic{
					Check: "dead-end", Severity: Error, RuleID: ri.ID, RuleName: ri.Name,
					Message: fmt.Sprintf("produced shape %d (%s) overlaps no rule's pattern: its expressions can never be transformed or implemented", i, p),
				})
			}
		}
	}
}

// checkTermination reports cycles in the produces/consumes graph: an edge
// a→b whenever some declared output shape of a overlaps b's pattern, so b
// can fire on a's substitutes. Cycles are expected in a Volcano-style rule
// set (commutativity rules feed themselves) and termination rests on the
// memo's expression deduplication, not on the graph being acyclic — the
// check therefore reports each nontrivial strongly connected component as
// info, making the reliance visible without failing the run.
func checkTermination(infos []RuleInfo, rep *Report) {
	expl := make([]RuleInfo, 0, len(infos))
	for _, ri := range infos {
		if ri.Kind == rules.KindExploration && len(ri.Produces) > 0 && ri.Pattern != nil {
			expl = append(expl, ri)
		}
	}
	n := len(expl)
	if n == 0 {
		return
	}
	adj := make([][]int, n)
	for i, a := range expl {
		for j, b := range expl {
			for _, p := range a.Produces {
				if p != nil && rules.ValidatePattern(p) == nil && p.Overlaps(b.Pattern) {
					adj[i] = append(adj[i], j)
					break
				}
			}
		}
	}
	for _, scc := range stronglyConnected(adj) {
		selfLoop := false
		if len(scc) == 1 {
			for _, j := range adj[scc[0]] {
				if j == scc[0] {
					selfLoop = true
					break
				}
			}
		}
		if len(scc) == 1 && !selfLoop {
			continue
		}
		names := make([]string, len(scc))
		for k, i := range scc {
			names[k] = fmt.Sprintf("%s(#%d)", expl[i].Name, expl[i].ID)
		}
		sort.Strings(names)
		rep.Diagnostics = append(rep.Diagnostics, Diagnostic{
			Check: "termination", Severity: Info,
			Message: fmt.Sprintf("produces/consumes cycle over %d rule(s): %v — exploration termination relies on memo deduplication, not rule-set acyclicity", len(scc), names),
		})
	}
}

// stronglyConnected returns the strongly connected components of the graph
// (adjacency lists over node indices), each component's members sorted
// ascending and the components ordered by smallest member. Iterative
// Tarjan, so deep rule sets cannot overflow the goroutine stack.
func stronglyConnected(adj [][]int) [][]int {
	n := len(adj)
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	var comps [][]int
	next := 0

	type frame struct{ v, ei int }
	for start := 0; start < n; start++ {
		if index[start] != -1 {
			continue
		}
		work := []frame{{start, 0}}
		for len(work) > 0 {
			f := &work[len(work)-1]
			v := f.v
			if f.ei == 0 {
				index[v] = next
				low[v] = next
				next++
				stack = append(stack, v)
				onStack[v] = true
			}
			advanced := false
			for f.ei < len(adj[v]) {
				w := adj[v][f.ei]
				f.ei++
				if index[w] == -1 {
					work = append(work, frame{w, 0})
					advanced = true
					break
				}
				if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
			}
			if advanced {
				continue
			}
			if low[v] == index[v] {
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				sort.Ints(comp)
				comps = append(comps, comp)
			}
			work = work[:len(work)-1]
			if len(work) > 0 {
				p := work[len(work)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
		}
	}
	sort.Slice(comps, func(i, j int) bool { return comps[i][0] < comps[j][0] })
	return comps
}
