package rulecheck

import (
	"strings"
	"testing"

	"qtrtest/internal/logical"
	"qtrtest/internal/mutate"
	"qtrtest/internal/rules"
)

// TestPristineRegistryClean is the baseline contract: the shipping rule set
// produces no warnings or errors (info diagnostics, e.g. termination-cycle
// reports, are allowed).
func TestPristineRegistryClean(t *testing.T) {
	for _, tc := range []struct {
		name string
		reg  *rules.Registry
	}{
		{"default", rules.DefaultRegistry()},
		{"with-extensions", rules.RegistryWithExtensions()},
		{"with-eet", rules.RegistryWithEET()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rep := CheckRegistry(tc.reg)
			for _, d := range rep.Diagnostics {
				if d.Severity != Info {
					t.Errorf("pristine registry flagged: %s", d)
				}
			}
			if rep.Failed() {
				t.Errorf("Failed() = true on pristine registry")
			}
		})
	}
}

// TestPristineTerminationCycleReported asserts the info-level termination
// report fires on the shipping rules: commutativity rules feed themselves,
// so the produces/consumes graph must contain at least one cycle and the
// checker must surface (not suppress) it.
func TestPristineTerminationCycleReported(t *testing.T) {
	rep := CheckRegistry(rules.DefaultRegistry())
	found := false
	for _, d := range rep.Diagnostics {
		if d.Check == "termination" && d.Severity == Info {
			found = true
		}
	}
	if !found {
		t.Fatalf("no termination cycle reported for the default registry; diagnostics: %v", rep.Diagnostics)
	}
}

// TestEveryMutantRegistryFlagged: each shipped mutant leaves a static
// fingerprint the checker catches. Implementation-rule mutants populate the
// pristine ID band; exploration-rule mutants substitute a rule built
// without produces declarations. The semantic fault itself (a dropped
// conjunct, a flipped sort direction) is not statically visible — DESIGN.md
// documents that — but the injection mechanism is.
func TestEveryMutantRegistryFlagged(t *testing.T) {
	wantCheck := map[mutate.Kind]string{
		mutate.KindSwapJoinType:       "produces",
		mutate.KindDupUnionBranch:     "produces",
		mutate.KindDropFilterConjunct: "pristine-band",
		mutate.KindDropJoinConjunct:   "pristine-band",
		mutate.KindFlipSortDir:        "pristine-band",
		mutate.KindLimitOffByOne:      "pristine-band",
		mutate.KindWrongAgg:           "pristine-band",
	}
	muts := mutate.Mutants()
	if len(muts) != len(wantCheck) {
		t.Fatalf("mutant catalog has %d entries, test expects %d; update wantCheck", len(muts), len(wantCheck))
	}
	for _, m := range muts {
		t.Run(string(m.Kind), func(t *testing.T) {
			rep := CheckRegistry(m.Registry())
			if !rep.Failed() {
				t.Fatalf("mutant %s produced a clean report", m)
			}
			want := wantCheck[m.Kind]
			found := false
			for _, d := range rep.Diagnostics {
				if d.Check == want && d.RuleID%mutate.PristineIDOffset == m.Rule%mutate.PristineIDOffset {
					found = true
				}
			}
			if !found {
				t.Errorf("mutant %s: no %q finding for rule #%d; got %v", m, want, m.Rule, rep.Diagnostics)
			}
		})
	}
}

// TestExportedRoundTripClean: the XML-sourced view of the default registry
// is clean too (produces declarations are not required there).
func TestExportedRoundTripClean(t *testing.T) {
	data, err := rules.DefaultRegistry().ExportXML()
	if err != nil {
		t.Fatal(err)
	}
	ex, err := rules.ParseExportXML(data)
	if err != nil {
		t.Fatal(err)
	}
	rep := CheckExported(ex)
	for _, d := range rep.Diagnostics {
		if d.Severity != Info {
			t.Errorf("exported registry flagged: %s", d)
		}
	}
}

// TestMalformedExportedPatterns: rule sets arriving via XML bypass registry
// construction, so the pattern check must catch what NewRegistry would have
// panicked on.
func TestMalformedExportedPatterns(t *testing.T) {
	ex := []rules.ExportedRule{
		{ID: 1, Name: "GenericRoot", Kind: rules.KindExploration,
			Pattern: rules.Any()},
		{ID: 2, Name: "BadArity", Kind: rules.KindExploration,
			Pattern: rules.P(logical.OpJoin, rules.Any())},
		{ID: 3, Name: "GenericWithKids", Kind: rules.KindExploration,
			Pattern: rules.P(logical.OpSelect, &rules.Pattern{
				Op: logical.OpAny, Children: []*rules.Pattern{rules.Any()},
			})},
		{ID: 2, Name: "DupID", Kind: rules.KindExploration,
			Pattern: rules.P(logical.OpSelect, rules.Any())},
		{ID: 5, Name: "BadArity", Kind: rules.KindExploration,
			Pattern: rules.P(logical.OpSelect, rules.Any())},
	}
	rep := CheckExported(ex)
	counts := map[string]int{}
	for _, d := range rep.Diagnostics {
		if d.Severity == Error {
			counts[d.Check]++
		}
	}
	if counts["pattern"] != 3 {
		t.Errorf("pattern errors = %d, want 3; diagnostics: %v", counts["pattern"], rep.Diagnostics)
	}
	if counts["duplicate-id"] != 1 || counts["duplicate-name"] != 1 {
		t.Errorf("duplicate errors = %v, want one of each", counts)
	}
}

// TestFreePatternVariable: a produced shape with a generic placeholder is an
// error when the consumed pattern binds none.
func TestFreePatternVariable(t *testing.T) {
	infos := []RuleInfo{{
		ID: 50, Name: "LeafRule", Kind: rules.KindExploration,
		Pattern:  rules.P(logical.OpGet),
		Produces: []*rules.Pattern{rules.P(logical.OpSelect, rules.Any())},
	}, {
		// Consumes Select(Get); keeps the produced shape from being a
		// dead end.
		ID: 51, Name: "Consumer", Kind: rules.KindExploration,
		Pattern:  rules.P(logical.OpSelect, rules.Any()),
		Produces: []*rules.Pattern{rules.P(logical.OpGet)},
	}}
	rep := Check(infos, Options{RequireProduces: true})
	found := false
	for _, d := range rep.Diagnostics {
		if d.Check == "produces" && d.Severity == Error && d.RuleID == 50 &&
			strings.Contains(d.Message, "free pattern variable") {
			found = true
		}
	}
	if !found {
		t.Errorf("no free-pattern-variable error; got %v", rep.Diagnostics)
	}
}

// TestDeadEndProduction: an output shape no rule consumes is an error.
func TestDeadEndProduction(t *testing.T) {
	infos := []RuleInfo{{
		ID: 60, Name: "SortsForNobody", Kind: rules.KindExploration,
		Pattern:  rules.P(logical.OpSelect, rules.Any()),
		Produces: []*rules.Pattern{rules.P(logical.OpSort, rules.Any())},
	}}
	rep := Check(infos, Options{RequireProduces: true})
	found := false
	for _, d := range rep.Diagnostics {
		if d.Check == "dead-end" && d.Severity == Error && d.RuleID == 60 {
			found = true
		}
	}
	if !found {
		t.Errorf("no dead-end error; got %v", rep.Diagnostics)
	}
}

// TestStronglyConnected pins the SCC decomposition on a known graph:
// 0→1→2→0 is one component, 3→3 a self-loop, 4 isolated.
func TestStronglyConnected(t *testing.T) {
	adj := [][]int{{1}, {2}, {0}, {3}, nil}
	comps := stronglyConnected(adj)
	if len(comps) != 3 {
		t.Fatalf("got %d components %v, want 3", len(comps), comps)
	}
	want := [][]int{{0, 1, 2}, {3}, {4}}
	for i := range want {
		if len(comps[i]) != len(want[i]) {
			t.Fatalf("component %d = %v, want %v", i, comps[i], want[i])
		}
		for j := range want[i] {
			if comps[i][j] != want[i][j] {
				t.Fatalf("component %d = %v, want %v", i, comps[i], want[i])
			}
		}
	}
}
