package refengine

import (
	"fmt"
	"sort"

	"qtrtest/internal/datum"
	"qtrtest/internal/logical"
	"qtrtest/internal/scalar"
)

// This file is the reference engine's own aggregation. Grouping is
// sort-based (stable sort on the group columns, then adjacent runs of
// compare-equal keys form groups) rather than hash-based like the
// production engines, so the two implementations cannot share a bug in key
// encoding — the class of fault PR 6's non-injective Row.Key was. Group
// equality follows the oracle's normalization contract: NULL groups with
// NULL, and numeric kinds group through their float64 image (INT 1 and
// FLOAT 1.0 are one group), exactly like datum.AppendKey folds them on the
// production engines. The group's representative values are those of its
// first row in input order; stable sorting preserves that choice.
//
// The pinned aggregate semantics:
//
//   - COUNT(*) counts rows; COUNT(x) counts non-NULL inputs;
//   - SUM skips NULLs, is NULL over no non-NULL input, stays a wrapping
//     int64 while every input is INT/DATE and widens to FLOAT otherwise;
//   - SUM/AVG over a non-numeric input is an execution error;
//   - MIN/MAX accept any kind, ordered by the total order, skipping NULLs;
//   - AVG is always FLOAT (sum/count over non-NULL inputs), NULL when no
//     non-NULL input;
//   - scalar aggregation (no group columns) over empty input yields one
//     row; grouped aggregation over empty input yields none.

// accum accumulates one aggregate over one group.
type accum struct {
	rows    int64 // all rows, for COUNT(*)
	nonNull int64 // non-NULL inputs
	sumI    int64
	sumF    float64
	allInt  bool
	min     datum.Datum
	max     datum.Datum
}

func newAccum() *accum {
	return &accum{allInt: true, min: datum.Null, max: datum.Null}
}

func (a *accum) add(d datum.Datum, op scalar.AggOp) error {
	if op == scalar.AggCountStar {
		a.rows++
		return nil
	}
	if d.IsNull() {
		return nil
	}
	a.nonNull++
	switch d.K {
	case datum.KindInt, datum.KindDate:
		a.sumI += d.I
		a.sumF += float64(d.I)
	case datum.KindFloat:
		a.allInt = false
		a.sumF += d.F
	default:
		if op == scalar.AggSum || op == scalar.AggAvg {
			return fmt.Errorf("refengine: %s over non-numeric %s value", op, d.TypeOf())
		}
		a.allInt = false
	}
	if a.min.IsNull() || compareTotal(d, a.min) < 0 {
		a.min = d
	}
	if a.max.IsNull() || compareTotal(d, a.max) > 0 {
		a.max = d
	}
	return nil
}

func (a *accum) result(op scalar.AggOp) datum.Datum {
	switch op {
	case scalar.AggCountStar:
		return datum.NewInt(a.rows)
	case scalar.AggCount:
		return datum.NewInt(a.nonNull)
	case scalar.AggSum:
		switch {
		case a.nonNull == 0:
			return datum.Null
		case a.allInt:
			return datum.NewInt(a.sumI)
		}
		return datum.NewFloat(a.sumF)
	case scalar.AggMin:
		return a.min
	case scalar.AggMax:
		return a.max
	case scalar.AggAvg:
		if a.nonNull == 0 {
			return datum.Null
		}
		return datum.NewFloat(a.sumF / float64(a.nonNull))
	}
	return datum.Null
}

// groupBy evaluates a GroupBy node over its materialized input. Output
// order is group-key order (a byproduct of sort-based grouping); the
// production engines emit first-appearance order, which the multiset
// comparison in the oracle is insensitive to.
func groupBy(e *logical.Expr, in []datum.Row, sc scope) ([]datum.Row, error) {
	slots := make([]int, len(e.GroupCols))
	for i, c := range e.GroupCols {
		slot, ok := sc[c]
		if !ok {
			return nil, fmt.Errorf("refengine: grouping column c%d not in input", c)
		}
		slots[i] = slot
	}
	if len(e.GroupCols) == 0 {
		// Scalar aggregation: one group over the whole input, present even
		// when the input is empty.
		row, err := aggRow(e.Aggs, nil, in, sc)
		if err != nil {
			return nil, err
		}
		return []datum.Row{row}, nil
	}
	if len(in) == 0 {
		return nil, nil
	}
	order := make([]int, len(in))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool {
		ri, rj := in[order[i]], in[order[j]]
		for _, s := range slots {
			if c := compareTotal(ri[s], rj[s]); c != 0 {
				return c < 0
			}
		}
		return false
	})
	sameGroup := func(a, b datum.Row) bool {
		for _, s := range slots {
			if compareTotal(a[s], b[s]) != 0 {
				return false
			}
		}
		return true
	}
	var out []datum.Row
	for start := 0; start < len(order); {
		end := start + 1
		for end < len(order) && sameGroup(in[order[start]], in[order[end]]) {
			end++
		}
		group := make([]datum.Row, 0, end-start)
		for _, idx := range order[start:end] {
			group = append(group, in[idx])
		}
		rep := make(datum.Row, len(slots))
		for i, s := range slots {
			rep[i] = group[0][s]
		}
		row, err := aggRow(e.Aggs, rep, group, sc)
		if err != nil {
			return nil, err
		}
		out = append(out, row)
		start = end
	}
	return out, nil
}

// aggRow computes one output row: the group's representative values
// followed by each aggregate's result over the group's rows.
func aggRow(aggs []scalar.Agg, rep datum.Row, group []datum.Row, sc scope) (datum.Row, error) {
	out := make(datum.Row, 0, len(rep)+len(aggs))
	out = append(out, rep...)
	for _, ag := range aggs {
		acc := newAccum()
		for _, row := range group {
			var d datum.Datum
			if ag.Op != scalar.AggCountStar {
				var err error
				d, err = evalScalar(ag.Arg, row, sc)
				if err != nil {
					return nil, err
				}
			}
			if err := acc.add(d, ag.Op); err != nil {
				return nil, err
			}
		}
		out = append(out, acc.result(ag.Op))
	}
	return out, nil
}
