package refengine_test

import (
	"errors"
	"fmt"
	"testing"

	"qtrtest/internal/catalog"
	"qtrtest/internal/datum"
	"qtrtest/internal/exec"
	"qtrtest/internal/logical"
	"qtrtest/internal/physical"
	"qtrtest/internal/refengine"
	"qtrtest/internal/scalar"
)

// Budgets for both sides of the differential: tight enough that a chain of
// nested-loop joins over the tiny catalog cannot run away, loose enough that
// ordinary programs complete. A trip on either side skips the comparison —
// the budget-parity contract (DESIGN.md §15) promises only that trips never
// flip a verdict, not that both engines trip together.
const (
	fuzzMaxRows = 4096
	fuzzMaxWork = 1 << 16
)

// FuzzRefEngineDiff is the native differential fuzz target: an arbitrary
// byte program builds a random logical tree over a tiny fixed TPC-H catalog,
// which is then evaluated by the reference interpreter (on the tree) and by
// the production row engine (on the canonical lowering of the same tree).
// Under result normalization the two must agree on every program. The
// builder is type-safe by construction — arithmetic and SUM/AVG are only
// applied to INT columns — so neither side can hit a runtime type error and
// any error besides a budget trip fails the target.
func FuzzRefEngineDiff(f *testing.F) {
	f.Add([]byte{0})
	f.Add([]byte{1, 0, 2, 1, 3, 2})
	f.Add([]byte{3, 5, 0, 0, 4, 1, 1, 6})
	f.Add([]byte{7, 3, 3, 9, 250, 11, 0, 42, 5, 5})
	f.Add([]byte{2, 6, 1, 6, 3, 6, 5, 8, 8, 1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte{5, 9, 2, 9, 4, 7, 7, 0, 0, 255, 128, 64, 32, 16})
	cat := catalog.LoadTPCH(catalog.TPCHConfig{ScaleRows: 0.01, Seed: 1})
	f.Fuzz(func(t *testing.T, prog []byte) {
		md := logical.NewMetadata(cat)
		tree := buildDiffTree(md, prog)
		if tree == nil {
			return
		}
		refRows, refErr := refengine.Eval(tree, cat, refengine.Limits{MaxRows: fuzzMaxRows, MaxWork: fuzzMaxWork})
		plan := lowerCanonical(tree)
		rowRows, rowErr := exec.RunEngine(exec.EngineRow, plan, cat, fuzzMaxRows, fuzzMaxWork)
		if errors.Is(refErr, refengine.ErrBudget) || errors.Is(rowErr, exec.ErrRowLimit) {
			return
		}
		if refErr != nil || rowErr != nil {
			t.Fatalf("engine error on a type-safe tree: ref=%v row=%v\ntree:\n%s", refErr, rowErr, tree)
		}
		verdict, detail := exec.CompareResults(rowRows, exec.RootOrder(plan), refRows, exec.TreeOrder(tree))
		if verdict == exec.VerdictMismatch {
			t.Fatalf("ref and row engines disagree: %s\ntree:\n%s", detail, tree)
		}
	})
}

// buildDiffTree interprets prog as a construction script over the catalog:
// the first byte picks a base table, then every pair of bytes wraps the tree
// in one more operator. It mirrors the sqlgen fuzz builder but covers the
// full logical vocabulary the reference engine implements — all four join
// variants, UNION ALL, every aggregate, arithmetic projections — while
// keeping every expression well-typed (numeric operations only on INT
// columns).
func buildDiffTree(md *logical.Metadata, prog []byte) *logical.Expr {
	tables := md.Catalog().TableNames()
	if len(prog) == 0 || len(tables) == 0 {
		return nil
	}
	scan := func(b byte) *logical.Expr {
		e, err := md.AddTable(tables[int(b)%len(tables)])
		if err != nil {
			return nil
		}
		return e
	}
	intCols := func(cols []scalar.ColumnID) []scalar.ColumnID {
		var out []scalar.ColumnID
		for _, c := range cols {
			if md.Column(c).Type == datum.TypeInt {
				out = append(out, c)
			}
		}
		return out
	}
	tree := scan(prog[0])
	if tree == nil {
		return nil
	}
	prog = prog[1:]
	for len(prog) >= 2 {
		op, arg := prog[0], prog[1]
		prog = prog[2:]
		cols := tree.OutputCols()
		if len(cols) == 0 {
			break
		}
		pick := cols[int(arg)%len(cols)]
		switch op % 9 {
		case 0: // filter on one output column
			cmpOp := []scalar.CmpOp{scalar.CmpGT, scalar.CmpLT, scalar.CmpEQ, scalar.CmpNE}[int(arg)%4]
			tree = &logical.Expr{
				Op:       logical.OpSelect,
				Filter:   &scalar.Cmp{Op: cmpOp, L: &scalar.ColRef{ID: pick}, R: &scalar.Const{D: datum.NewInt(int64(arg))}},
				Children: []*logical.Expr{tree},
			}
		case 1: // project a prefix, plus an arithmetic column when an INT exists
			n := 1 + int(arg)%len(cols)
			projs := make([]logical.ProjItem, 0, n+1)
			for i := 0; i < n; i++ {
				projs = append(projs, logical.ProjItem{Out: cols[i], E: &scalar.ColRef{ID: cols[i]}})
			}
			if ints := intCols(cols); len(ints) > 0 {
				src := ints[int(arg)%len(ints)]
				out := md.AddColumn(logical.ColumnMeta{Type: datum.TypeInt})
				projs = append(projs, logical.ProjItem{
					Out: out,
					E:   &scalar.Arith{Op: scalar.ArithAdd, L: &scalar.ColRef{ID: src}, R: &scalar.Const{D: datum.NewInt(int64(arg))}},
				})
			}
			tree = &logical.Expr{Op: logical.OpProject, Projs: projs, Children: []*logical.Expr{tree}}
		case 2: // group by one column with the full aggregate set over an INT
			aggs := []scalar.Agg{{Op: scalar.AggCountStar, Out: md.AddColumn(logical.ColumnMeta{Type: datum.TypeInt})}}
			if ints := intCols(cols); len(ints) > 0 {
				src := &scalar.ColRef{ID: ints[int(arg)%len(ints)]}
				aggs = append(aggs,
					scalar.Agg{Op: scalar.AggSum, Arg: src, Out: md.AddColumn(logical.ColumnMeta{Type: datum.TypeInt})},
					scalar.Agg{Op: scalar.AggMin, Arg: src, Out: md.AddColumn(logical.ColumnMeta{Type: datum.TypeInt})},
					scalar.Agg{Op: scalar.AggMax, Arg: src, Out: md.AddColumn(logical.ColumnMeta{Type: datum.TypeInt})},
					scalar.Agg{Op: scalar.AggAvg, Arg: src, Out: md.AddColumn(logical.ColumnMeta{Type: datum.TypeFloat})},
					scalar.Agg{Op: scalar.AggCount, Arg: src, Out: md.AddColumn(logical.ColumnMeta{Type: datum.TypeInt})},
				)
			}
			var groupCols []scalar.ColumnID
			if arg%3 != 0 { // every third grouping is a scalar aggregate
				groupCols = []scalar.ColumnID{pick}
			}
			tree = &logical.Expr{
				Op: logical.OpGroupBy, GroupCols: groupCols, Aggs: aggs,
				Children: []*logical.Expr{tree},
			}
		case 3: // sort on one column
			tree = &logical.Expr{
				Op:       logical.OpSort,
				Keys:     []logical.SortKey{{Col: pick, Desc: arg%2 == 1}},
				Children: []*logical.Expr{tree},
			}
		case 4: // limit
			tree = &logical.Expr{Op: logical.OpLimit, N: int64(arg), Children: []*logical.Expr{tree}}
		case 5, 6, 7: // join variants against a fresh base table
			other := scan(arg)
			if other == nil {
				continue
			}
			oc := other.OutputCols()
			jop := []logical.Op{logical.OpJoin, logical.OpLeftJoin, logical.OpSemiJoin, logical.OpAntiJoin}[int(op)%4]
			tree = &logical.Expr{
				Op:       jop,
				On:       &scalar.Cmp{Op: scalar.CmpEQ, L: &scalar.ColRef{ID: pick}, R: &scalar.ColRef{ID: oc[int(arg)%len(oc)]}},
				Children: []*logical.Expr{tree, other},
			}
		case 8: // union the tree with a second scan of compatible width
			other := scan(arg)
			if other == nil {
				continue
			}
			oc := other.OutputCols()
			n := len(cols)
			if len(oc) < n {
				n = len(oc)
			}
			// Pair only positions whose branch types agree, so the union
			// column's declared type is truthful and downstream arithmetic
			// stays well-typed.
			var outCols, in0, in1 []scalar.ColumnID
			for i := 0; i < n; i++ {
				if md.Column(cols[i]).Type != md.Column(oc[i]).Type {
					continue
				}
				outCols = append(outCols, md.AddColumn(logical.ColumnMeta{Type: md.Column(cols[i]).Type}))
				in0, in1 = append(in0, cols[i]), append(in1, oc[i])
			}
			if len(outCols) == 0 {
				continue
			}
			tree = &logical.Expr{
				Op: logical.OpUnionAll, OutCols: outCols,
				InputCols: [][]scalar.ColumnID{in0, in1},
				Children:  []*logical.Expr{tree, other},
			}
		}
	}
	return tree
}

// lowerCanonical is a local copy of the verifier's canonical lowering — one
// fixed physical implementation per logical operator. It is duplicated on
// purpose: importing the verify package here would be an import cycle
// through the suite layer, and the lowering is small enough that drift would
// fail the fuzz target immediately.
func lowerCanonical(e *logical.Expr) *physical.Expr {
	kids := make([]*physical.Expr, len(e.Children))
	for i, c := range e.Children {
		kids[i] = lowerCanonical(c)
	}
	out := &physical.Expr{Children: kids}
	switch e.Op {
	case logical.OpGet:
		out.Op = physical.OpScan
		out.Table = e.Table
		out.Cols = e.Cols
	case logical.OpSelect:
		out.Op = physical.OpFilter
		out.Filter = e.Filter
	case logical.OpProject:
		out.Op = physical.OpProject
		out.Projs = e.Projs
	case logical.OpJoin, logical.OpLeftJoin, logical.OpSemiJoin, logical.OpAntiJoin:
		out.Op = physical.OpNLJoin
		out.JoinType = joinTypeOf(e.Op)
		out.On = e.On
	case logical.OpGroupBy:
		out.Op = physical.OpHashAgg
		out.GroupCols = e.GroupCols
		out.Aggs = e.Aggs
	case logical.OpUnionAll:
		out.Op = physical.OpConcat
		out.OutCols = e.OutCols
		out.InputCols = e.InputCols
	case logical.OpSort:
		out.Op = physical.OpSort
		out.Keys = e.Keys
	case logical.OpLimit:
		out.Op = physical.OpLimit
		out.N = e.N
	default:
		panic(fmt.Sprintf("refengine_test: cannot canonically lower %v", e.Op))
	}
	return out
}

func joinTypeOf(op logical.Op) physical.JoinType {
	switch op {
	case logical.OpLeftJoin:
		return physical.JoinLeft
	case logical.OpSemiJoin:
		return physical.JoinSemi
	case logical.OpAntiJoin:
		return physical.JoinAnti
	}
	return physical.JoinInner
}
