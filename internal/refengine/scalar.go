package refengine

import (
	"fmt"

	"qtrtest/internal/datum"
	"qtrtest/internal/scalar"
)

// This file is the reference engine's own scalar interpreter. It evaluates
// the shared scalar.Expr node types but deliberately re-implements the
// semantics instead of calling scalar.Eval, so a bug in the production
// evaluator cannot hide itself from the cross-engine oracle. The pinned
// semantics (shared with both production engines, enforced by the
// conformance suite in internal/exec):
//
//   - three-valued logic: NULL in predicate position is UNKNOWN; a non-NULL
//     non-boolean predicate value is an execution error;
//   - errors dominate: AND/OR evaluate every operand before folding, so
//     Error-vs-OK cannot depend on operand order or short-circuiting;
//   - comparisons between NULLs or incomparable kinds are UNKNOWN, never an
//     error; numeric kinds (INT, FLOAT, DATE) compare through their float64
//     image;
//   - arithmetic over two INTs stays INT with wrapping int64 semantics,
//     any other numeric mix widens to FLOAT, a NULL operand yields NULL,
//     and a non-numeric operand is an execution error.

// tri is the reference engine's own three-valued truth value.
type tri int8

const (
	triFalse tri = iota
	triTrue
	triUnknown
)

// predTrue evaluates a predicate under WHERE semantics: only TRUE keeps the
// row; FALSE and UNKNOWN (NULL) both reject it.
func predTrue(pred scalar.Expr, row datum.Row, sc scope) (bool, error) {
	t, err := evalPred(pred, row, sc)
	if err != nil {
		return false, err
	}
	return t == triTrue, nil
}

// evalPred evaluates an expression in predicate position.
func evalPred(pred scalar.Expr, row datum.Row, sc scope) (tri, error) {
	d, err := evalScalar(pred, row, sc)
	if err != nil {
		return triUnknown, err
	}
	return asTri(d)
}

// asTri interprets a datum as a truth value: NULL is UNKNOWN, BOOL maps
// directly, anything else is a typed execution error.
func asTri(d datum.Datum) (tri, error) {
	switch {
	case d.IsNull():
		return triUnknown, nil
	case d.K == datum.KindBool && d.B:
		return triTrue, nil
	case d.K == datum.KindBool:
		return triFalse, nil
	}
	return triUnknown, fmt.Errorf("refengine: %v is not a boolean predicate", d)
}

func triDatum(t tri) datum.Datum {
	switch t {
	case triTrue:
		return datum.NewBool(true)
	case triFalse:
		return datum.NewBool(false)
	}
	return datum.Null
}

// evalScalar evaluates a scalar expression against one row.
func evalScalar(e scalar.Expr, row datum.Row, sc scope) (datum.Datum, error) {
	switch t := e.(type) {
	case *scalar.ColRef:
		slot, ok := sc[t.ID]
		if !ok {
			return datum.Null, fmt.Errorf("refengine: column c%d not in scope", t.ID)
		}
		return row[slot], nil

	case *scalar.Const:
		return t.D, nil

	case *scalar.Cmp:
		l, err := evalScalar(t.L, row, sc)
		if err != nil {
			return datum.Null, err
		}
		r, err := evalScalar(t.R, row, sc)
		if err != nil {
			return datum.Null, err
		}
		return triDatum(compareTri(t.Op, l, r)), nil

	case *scalar.Arith:
		l, err := evalScalar(t.L, row, sc)
		if err != nil {
			return datum.Null, err
		}
		r, err := evalScalar(t.R, row, sc)
		if err != nil {
			return datum.Null, err
		}
		return arith(t.Op, l, r)

	case *scalar.And:
		res := triTrue
		for _, k := range t.Kids {
			kt, err := evalPred(k, row, sc)
			if err != nil {
				return datum.Null, err
			}
			res = andTri(res, kt)
		}
		return triDatum(res), nil

	case *scalar.Or:
		res := triFalse
		for _, k := range t.Kids {
			kt, err := evalPred(k, row, sc)
			if err != nil {
				return datum.Null, err
			}
			res = orTri(res, kt)
		}
		return triDatum(res), nil

	case *scalar.Not:
		kt, err := evalPred(t.Kid, row, sc)
		if err != nil {
			return datum.Null, err
		}
		switch kt {
		case triTrue:
			return triDatum(triFalse), nil
		case triFalse:
			return triDatum(triTrue), nil
		}
		return datum.Null, nil

	case *scalar.IsNull:
		d, err := evalScalar(t.Kid, row, sc)
		if err != nil {
			return datum.Null, err
		}
		return datum.NewBool(d.IsNull()), nil
	}
	return datum.Null, fmt.Errorf("refengine: cannot evaluate %T", e)
}

func andTri(a, b tri) tri {
	switch {
	case a == triFalse || b == triFalse:
		return triFalse
	case a == triUnknown || b == triUnknown:
		return triUnknown
	}
	return triTrue
}

func orTri(a, b tri) tri {
	switch {
	case a == triTrue || b == triTrue:
		return triTrue
	case a == triUnknown || b == triUnknown:
		return triUnknown
	}
	return triFalse
}

// compareTri compares two datums under three-valued logic: a NULL operand
// or an incomparable kind pair yields UNKNOWN.
func compareTri(op scalar.CmpOp, l, r datum.Datum) tri {
	if l.IsNull() || r.IsNull() {
		return triUnknown
	}
	c, ok := compareVals(l, r)
	if !ok {
		return triUnknown
	}
	var res bool
	switch op {
	case scalar.CmpEQ:
		res = c == 0
	case scalar.CmpNE:
		res = c != 0
	case scalar.CmpLT:
		res = c < 0
	case scalar.CmpLE:
		res = c <= 0
	case scalar.CmpGT:
		res = c > 0
	case scalar.CmpGE:
		res = c >= 0
	default:
		return triUnknown
	}
	if res {
		return triTrue
	}
	return triFalse
}

// numericImage widens a numeric datum to float64: INT and DATE through
// their integer payload, FLOAT directly.
func numericImage(d datum.Datum) (float64, bool) {
	switch d.K {
	case datum.KindInt, datum.KindDate:
		return float64(d.I), true
	case datum.KindFloat:
		return d.F, true
	}
	return 0, false
}

// compareVals orders two non-NULL datums when they are comparable: any two
// numerics through their float64 images, strings lexicographically, bools
// with false < true. Everything else is incomparable (ok=false).
func compareVals(l, r datum.Datum) (int, bool) {
	if lf, lok := numericImage(l); lok {
		rf, rok := numericImage(r)
		if !rok {
			return 0, false
		}
		switch {
		case lf < rf:
			return -1, true
		case lf > rf:
			return 1, true
		}
		return 0, true
	}
	if l.K != r.K {
		return 0, false
	}
	switch l.K {
	case datum.KindString:
		switch {
		case l.S < r.S:
			return -1, true
		case l.S > r.S:
			return 1, true
		}
		return 0, true
	case datum.KindBool:
		switch {
		case !l.B && r.B:
			return -1, true
		case l.B && !r.B:
			return 1, true
		}
		return 0, true
	}
	return 0, false
}

// compareTotal is the reference engine's total order: NULLs first, then
// comparable values by compareVals, then incomparable kind pairs by kind
// number. It must order exactly like datum.TotalCompare — the conformance
// suite and the CompareResults-audit tests pin the agreement — but is
// implemented locally so the ordering the oracle normalizes with is checked
// against an independent spelling of the same contract.
func compareTotal(l, r datum.Datum) int {
	switch {
	case l.IsNull() && r.IsNull():
		return 0
	case l.IsNull():
		return -1
	case r.IsNull():
		return 1
	}
	if c, ok := compareVals(l, r); ok {
		return c
	}
	switch {
	case l.K < r.K:
		return -1
	case l.K > r.K:
		return 1
	}
	return 0
}

// arith applies +, -, × with the pinned numeric-widening rules.
func arith(op scalar.ArithOp, l, r datum.Datum) (datum.Datum, error) {
	if l.IsNull() || r.IsNull() {
		return datum.Null, nil
	}
	if l.K == datum.KindInt && r.K == datum.KindInt {
		switch op {
		case scalar.ArithAdd:
			return datum.NewInt(l.I + r.I), nil
		case scalar.ArithSub:
			return datum.NewInt(l.I - r.I), nil
		case scalar.ArithMul:
			return datum.NewInt(l.I * r.I), nil
		}
	}
	lf, lok := numericImage(l)
	rf, rok := numericImage(r)
	if !lok || !rok {
		return datum.Null, fmt.Errorf("refengine: arithmetic on non-numeric %v %s %v", l, op, r)
	}
	switch op {
	case scalar.ArithAdd:
		return datum.NewFloat(lf + rf), nil
	case scalar.ArithSub:
		return datum.NewFloat(lf - rf), nil
	case scalar.ArithMul:
		return datum.NewFloat(lf * rf), nil
	}
	return datum.Null, fmt.Errorf("refengine: unknown arithmetic op %d", op)
}
