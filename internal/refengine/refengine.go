// Package refengine is a deliberately naive reference interpreter for
// logical query trees. It exists to break the oracle circularity of testing
// an optimizer+executor pair against itself: every campaign oracle so far
// compares Plan(q) with Plan(q,¬R) on the same Volcano/batch executor, so a
// fault shared by the optimizer and both executors is invisible. This
// package evaluates the *logical* tree directly — no optimizer, no physical
// plans, no batching, no memory pooling, no iterator protocol — with the
// simplest implementation of each operator that is obviously correct by
// inspection: full materialization, nested-loop joins, sort-based grouping.
//
// Independence is the point. The package shares only type *definitions*
// with the rest of the system (datum.Datum, catalog.Table, scalar.Expr,
// logical.Expr) and re-implements every piece of evaluation logic locally:
// its own scalar evaluator (scalar.go), its own three-valued logic, its own
// total-order comparator, its own group-equality test, and its own
// aggregate accumulators (agg.go). It must never import internal/exec; the
// conformance suite in internal/exec pins both implementations to the same
// observable semantics from the outside.
//
// Slowness is accepted: joins are O(|left|·|right|), grouping sorts, and
// every operator materializes its full output. The work budget (Limits)
// bounds the damage on pathological inputs the same way the production
// engines' budgets do.
package refengine

import (
	"errors"
	"fmt"
	"sort"

	"qtrtest/internal/catalog"
	"qtrtest/internal/datum"
	"qtrtest/internal/logical"
	"qtrtest/internal/scalar"
)

// Limits carries the reference engine's execution budget. MaxRows caps the
// root result size; MaxWork caps the total number of rows materialized by
// all operators together. Zero or negative values mean uncapped. The budget
// *semantics* match the production engines (exceeding either cap is an
// ErrBudget, not a truncated result), but the exact work accounting is not
// byte-comparable across engines — see DESIGN.md §15 for the budget-parity
// contract oracles rely on (any budget trip on any engine ⇒ the comparison
// is skipped, never flipped).
type Limits struct {
	MaxRows int
	MaxWork int64
}

// ErrBudget reports that an evaluation exceeded Limits. Callers bridging to
// the exec package translate it to exec.ErrRowLimit so budget handling is
// engine-independent at every oracle call site.
var ErrBudget = errors.New("refengine: work budget exceeded")

// Eval evaluates a logical query tree against the catalog's in-memory
// tables and returns the full result. Result rows are freshly built or
// aliases of table rows; callers must treat them as read-only, as with the
// production engines.
func Eval(tree *logical.Expr, cat *catalog.Catalog, lim Limits) ([]datum.Row, error) {
	ev := &evaluator{cat: cat, capped: lim.MaxWork > 0, work: lim.MaxWork}
	out, err := ev.eval(tree)
	if err != nil {
		return nil, err
	}
	if lim.MaxRows > 0 && len(out) > lim.MaxRows {
		return nil, ErrBudget
	}
	return out, nil
}

// scope maps column IDs to slots of the row currently in scope. The type is
// local on purpose: the reference engine resolves columns with its own code
// path even though the ID type is shared.
type scope map[scalar.ColumnID]int

func scopeOf(cols []scalar.ColumnID) scope {
	sc := make(scope, len(cols))
	for i, c := range cols {
		sc[c] = i
	}
	return sc
}

type evaluator struct {
	cat    *catalog.Catalog
	capped bool
	work   int64
}

// charge debits rows materialized by one operator against the shared work
// budget, mirroring the production engines' per-operator row accounting.
func (ev *evaluator) charge(n int) error {
	if !ev.capped {
		return nil
	}
	ev.work -= int64(n)
	if ev.work < 0 {
		return ErrBudget
	}
	return nil
}

func (ev *evaluator) eval(e *logical.Expr) ([]datum.Row, error) {
	out, err := ev.evalOp(e)
	if err != nil {
		return nil, err
	}
	if err := ev.charge(len(out)); err != nil {
		return nil, err
	}
	return out, nil
}

func (ev *evaluator) evalOp(e *logical.Expr) ([]datum.Row, error) {
	switch e.Op {
	case logical.OpGet:
		t, err := ev.cat.Table(e.Table)
		if err != nil {
			return nil, err
		}
		return t.Rows, nil

	case logical.OpSelect:
		in, err := ev.eval(e.Children[0])
		if err != nil {
			return nil, err
		}
		sc := scopeOf(e.Children[0].OutputCols())
		var out []datum.Row
		for _, row := range in {
			keep, err := predTrue(e.Filter, row, sc)
			if err != nil {
				return nil, err
			}
			if keep {
				out = append(out, row)
			}
		}
		return out, nil

	case logical.OpProject:
		in, err := ev.eval(e.Children[0])
		if err != nil {
			return nil, err
		}
		sc := scopeOf(e.Children[0].OutputCols())
		out := make([]datum.Row, 0, len(in))
		for _, row := range in {
			proj := make(datum.Row, len(e.Projs))
			for i, it := range e.Projs {
				d, err := evalScalar(it.E, row, sc)
				if err != nil {
					return nil, err
				}
				proj[i] = d
			}
			out = append(out, proj)
		}
		return out, nil

	case logical.OpJoin, logical.OpLeftJoin, logical.OpSemiJoin, logical.OpAntiJoin:
		return ev.evalJoin(e)

	case logical.OpGroupBy:
		in, err := ev.eval(e.Children[0])
		if err != nil {
			return nil, err
		}
		sc := scopeOf(e.Children[0].OutputCols())
		return groupBy(e, in, sc)

	case logical.OpUnionAll:
		var out []datum.Row
		for i, child := range e.Children {
			in, err := ev.eval(child)
			if err != nil {
				return nil, err
			}
			sc := scopeOf(child.OutputCols())
			slots := make([]int, len(e.OutCols))
			for j := range e.OutCols {
				slot, ok := sc[e.InputCols[i][j]]
				if !ok {
					return nil, fmt.Errorf("refengine: union input column c%d missing from branch %d", e.InputCols[i][j], i)
				}
				slots[j] = slot
			}
			for _, row := range in {
				mapped := make(datum.Row, len(slots))
				for j, slot := range slots {
					mapped[j] = row[slot]
				}
				out = append(out, mapped)
			}
		}
		return out, nil

	case logical.OpLimit:
		in, err := ev.eval(e.Children[0])
		if err != nil {
			return nil, err
		}
		n := e.N
		if n < 0 {
			n = 0
		}
		if int64(len(in)) <= n {
			return in, nil
		}
		return in[:n], nil

	case logical.OpSort:
		in, err := ev.eval(e.Children[0])
		if err != nil {
			return nil, err
		}
		sc := scopeOf(e.Children[0].OutputCols())
		slots := make([]int, len(e.Keys))
		for i, k := range e.Keys {
			slot, ok := sc[k.Col]
			if !ok {
				return nil, fmt.Errorf("refengine: sort key column c%d not in input", k.Col)
			}
			slots[i] = slot
		}
		out := make([]datum.Row, len(in))
		copy(out, in)
		sort.SliceStable(out, func(i, j int) bool {
			for ki, k := range e.Keys {
				c := compareTotal(out[i][slots[ki]], out[j][slots[ki]])
				if c != 0 {
					if k.Desc {
						return c > 0
					}
					return c < 0
				}
			}
			return false
		})
		return out, nil
	}
	return nil, fmt.Errorf("refengine: cannot evaluate operator %v", e.Op)
}

// evalJoin is the one join algorithm the reference engine has: materialize
// both sides, test the predicate on every pair. A pair matches only when the
// predicate is TRUE; UNKNOWN and FALSE both reject, so NULL join keys never
// match. LeftJoin pads unmatched left rows with NULLs, SemiJoin emits a left
// row on its first match, AntiJoin emits it when no pair matched.
func (ev *evaluator) evalJoin(e *logical.Expr) ([]datum.Row, error) {
	left, err := ev.eval(e.Children[0])
	if err != nil {
		return nil, err
	}
	right, err := ev.eval(e.Children[1])
	if err != nil {
		return nil, err
	}
	leftCols := e.Children[0].OutputCols()
	rightCols := e.Children[1].OutputCols()
	sc := make(scope, len(leftCols)+len(rightCols))
	for i, c := range leftCols {
		sc[c] = i
	}
	for i, c := range rightCols {
		sc[c] = len(leftCols) + i
	}
	pair := make(datum.Row, len(leftCols)+len(rightCols))
	var out []datum.Row
	for _, l := range left {
		copy(pair, l)
		matched := false
		for _, r := range right {
			copy(pair[len(leftCols):], r)
			ok, err := predTrue(e.On, pair, sc)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
			matched = true
			switch e.Op {
			case logical.OpJoin, logical.OpLeftJoin:
				joined := make(datum.Row, len(pair))
				copy(joined, pair)
				out = append(out, joined)
			case logical.OpSemiJoin:
				out = append(out, l)
			}
			if e.Op == logical.OpSemiJoin {
				break
			}
		}
		if !matched && e.Op == logical.OpLeftJoin {
			padded := make(datum.Row, len(leftCols)+len(rightCols))
			copy(padded, l)
			for i := len(leftCols); i < len(padded); i++ {
				padded[i] = datum.Null
			}
			out = append(out, padded)
		}
		if !matched && e.Op == logical.OpAntiJoin {
			out = append(out, l)
		}
	}
	return out, nil
}
