package refengine_test

import (
	"errors"
	"strings"
	"testing"

	"qtrtest/internal/catalog"
	"qtrtest/internal/datum"
	"qtrtest/internal/logical"
	"qtrtest/internal/refengine"
	"qtrtest/internal/scalar"
)

// refCatalog builds one tiny table t(a,b) with a NULL:
//
//	(1,10) (2,20) (3,NULL)
func refCatalog() *catalog.Catalog {
	c := catalog.New()
	tb := &catalog.Table{
		Name: "t",
		Columns: []catalog.Column{
			{Name: "a", Type: datum.TypeInt}, {Name: "b", Type: datum.TypeInt},
		},
		Rows: []datum.Row{
			{datum.NewInt(1), datum.NewInt(10)},
			{datum.NewInt(2), datum.NewInt(20)},
			{datum.NewInt(3), datum.Null},
		},
	}
	tb.ComputeStats()
	c.Add(tb)
	return c
}

func getT() *logical.Expr {
	return &logical.Expr{Op: logical.OpGet, Table: "t", Cols: []scalar.ColumnID{1, 2}}
}

func TestEvalSelect(t *testing.T) {
	tree := &logical.Expr{
		Op:       logical.OpSelect,
		Filter:   &scalar.Cmp{Op: scalar.CmpGT, L: &scalar.ColRef{ID: 2}, R: &scalar.Const{D: datum.NewInt(15)}},
		Children: []*logical.Expr{getT()},
	}
	rows, err := refengine.Eval(tree, refCatalog(), refengine.Limits{})
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	// b > 15 keeps only (2,20); (3,NULL) is UNKNOWN and dropped.
	if len(rows) != 1 || rows[0][0] != datum.NewInt(2) {
		t.Fatalf("rows = %v, want [[2 20]]", rows)
	}
}

func TestMaxRowsBudget(t *testing.T) {
	_, err := refengine.Eval(getT(), refCatalog(), refengine.Limits{MaxRows: 2})
	if !errors.Is(err, refengine.ErrBudget) {
		t.Fatalf("MaxRows=2 over a 3-row table: err = %v, want ErrBudget", err)
	}
	rows, err := refengine.Eval(getT(), refCatalog(), refengine.Limits{MaxRows: 3})
	if err != nil || len(rows) != 3 {
		t.Fatalf("MaxRows=3: rows=%d err=%v, want all 3 rows", len(rows), err)
	}
}

func TestMaxWorkBudget(t *testing.T) {
	// A self-join materializes 3 (left) + 3 (right) + 9 (pairs) rows of
	// work; a budget under that must trip, an uncapped run must not.
	md := logical.NewMetadata(refCatalog())
	l, _ := md.AddTable("t")
	r, _ := md.AddTable("t")
	join := &logical.Expr{
		Op:       logical.OpJoin,
		On:       &scalar.Const{D: datum.NewBool(true)},
		Children: []*logical.Expr{l, r},
	}
	if _, err := refengine.Eval(join, md.Catalog(), refengine.Limits{MaxWork: 5}); !errors.Is(err, refengine.ErrBudget) {
		t.Fatalf("MaxWork=5: err = %v, want ErrBudget", err)
	}
	rows, err := refengine.Eval(join, md.Catalog(), refengine.Limits{})
	if err != nil || len(rows) != 9 {
		t.Fatalf("uncapped cross join: rows=%d err=%v, want 9", len(rows), err)
	}
}

func TestUnknownColumnError(t *testing.T) {
	tree := &logical.Expr{
		Op:       logical.OpSelect,
		Filter:   &scalar.Cmp{Op: scalar.CmpGT, L: &scalar.ColRef{ID: 99}, R: &scalar.Const{D: datum.NewInt(0)}},
		Children: []*logical.Expr{getT()},
	}
	_, err := refengine.Eval(tree, refCatalog(), refengine.Limits{})
	if err == nil || !strings.Contains(err.Error(), "not in scope") {
		t.Fatalf("dangling column: err = %v, want a not-in-scope error", err)
	}
}
