package fnv64

import (
	"encoding/binary"
	"hash/fnv"
	"testing"
)

// TestMatchesStdlib: the streaming hasher must agree with hash/fnv byte for
// byte, so fingerprints are the standard FNV-1a function of the mixed bytes.
func TestMatchesStdlib(t *testing.T) {
	ref := fnv.New64a()
	ref.Write([]byte("hello"))
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], 42)
	ref.Write(buf[:])
	ref.Write([]byte{7})

	h := New()
	h.String("hello")
	h.Uint64(42)
	h.Byte(7)
	if h.Sum() != ref.Sum64() {
		t.Errorf("Sum = %#x, stdlib = %#x", h.Sum(), ref.Sum64())
	}
}

func TestIntSignedDistinct(t *testing.T) {
	a, b := New(), New()
	a.Int(-1)
	b.Int(1)
	if a.Sum() == b.Sum() {
		t.Error("-1 and 1 hash equal")
	}
}

func TestBoolAndFloat(t *testing.T) {
	a, b := New(), New()
	a.Bool(true)
	b.Bool(false)
	if a.Sum() == b.Sum() {
		t.Error("true and false hash equal")
	}
	c, d := New(), New()
	c.Float(1.5)
	d.Float(2.5)
	if c.Sum() == d.Sum() {
		t.Error("distinct floats hash equal")
	}
}

func TestOrderSensitive(t *testing.T) {
	a, b := New(), New()
	a.String("ab")
	b.String("ba")
	if a.Sum() == b.Sum() {
		t.Error("hash is order-insensitive")
	}
}
