// Package fnv64 is an allocation-free streaming FNV-1a 64-bit hasher for the
// optimizer's structural fingerprints. The stdlib hash/fnv forces every
// write through an []byte and an interface, which costs allocations on the
// memo's interning hot path; this value-type state hashes ints and strings
// directly. FNV-1a is deterministic across processes (unlike hash/maphash),
// so fingerprints can be logged and compared between runs, and correctness
// never depends on its quality: the memo backs every fingerprint bucket
// with a full structural-equality check.
package fnv64

import "math"

const (
	offset64 = 14695981039346656037
	prime64  = 1099511628211
)

// Hash is in-progress FNV-1a state. The zero value is NOT ready to use;
// start from New.
type Hash struct {
	v uint64
}

// New returns a hasher seeded with the FNV-1a offset basis.
func New() Hash { return Hash{v: offset64} }

// Sum returns the current hash value.
func (h Hash) Sum() uint64 { return h.v }

// Byte mixes a single byte.
func (h *Hash) Byte(b byte) {
	h.v = (h.v ^ uint64(b)) * prime64
}

// String mixes the bytes of s.
func (h *Hash) String(s string) {
	v := h.v
	for i := 0; i < len(s); i++ {
		v = (v ^ uint64(s[i])) * prime64
	}
	h.v = v
}

// Uint64 mixes v as eight little-endian bytes.
func (h *Hash) Uint64(x uint64) {
	v := h.v
	for i := 0; i < 8; i++ {
		v = (v ^ (x & 0xff)) * prime64
		x >>= 8
	}
	h.v = v
}

// Int mixes a signed integer.
func (h *Hash) Int(x int64) { h.Uint64(uint64(x)) }

// Float mixes a float by its IEEE-754 bit pattern.
func (h *Hash) Float(f float64) { h.Uint64(math.Float64bits(f)) }

// Bool mixes a boolean as one byte.
func (h *Hash) Bool(b bool) {
	if b {
		h.Byte(1)
	} else {
		h.Byte(0)
	}
}
