// Package sqlgen renders logical query trees to SQL text — the paper's
// "Generate SQL" module (§2.3, following [9]). Every operator becomes a
// derived table and every column is exposed under the canonical name "c<ID>",
// which makes the emitted SQL round-trippable through the parser and binder.
package sqlgen

import (
	"fmt"
	"strings"

	"qtrtest/internal/logical"
	"qtrtest/internal/scalar"
)

// Generate renders the tree to a SQL statement. The metadata supplies base
// table/column names for Get operators.
func (g *Generator) Generate(tree *logical.Expr) (string, error) {
	return g.render(tree)
}

// Generator renders trees against one query's metadata.
type Generator struct {
	md    *logical.Metadata
	alias int
}

// New returns a Generator for the given metadata.
func New(md *logical.Metadata) *Generator {
	return &Generator{md: md}
}

// Generate is a convenience wrapper rendering tree against md.
func Generate(tree *logical.Expr, md *logical.Metadata) (string, error) {
	return New(md).Generate(tree)
}

func (g *Generator) nextAlias() string {
	g.alias++
	return fmt.Sprintf("t%d", g.alias)
}

func colName(id scalar.ColumnID) string { return fmt.Sprintf("c%d", id) }

func (g *Generator) scalarSQL(e scalar.Expr) string {
	return e.SQL(colName)
}

func (g *Generator) render(e *logical.Expr) (string, error) {
	switch e.Op {
	case logical.OpGet:
		t, err := g.md.Catalog().Table(e.Table)
		if err != nil {
			return "", err
		}
		if len(t.Columns) != len(e.Cols) {
			return "", fmt.Errorf("sqlgen: Get(%s) has %d columns, table has %d", e.Table, len(e.Cols), len(t.Columns))
		}
		parts := make([]string, len(e.Cols))
		for i, id := range e.Cols {
			parts[i] = fmt.Sprintf("%s AS %s", t.Columns[i].Name, colName(id))
		}
		return fmt.Sprintf("SELECT %s FROM %s", strings.Join(parts, ", "), e.Table), nil

	case logical.OpSelect:
		child, err := g.render(e.Children[0])
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("SELECT * FROM (%s) AS %s WHERE %s",
			child, g.nextAlias(), g.scalarSQL(e.Filter)), nil

	case logical.OpProject:
		child, err := g.render(e.Children[0])
		if err != nil {
			return "", err
		}
		parts := make([]string, len(e.Projs))
		for i, it := range e.Projs {
			parts[i] = fmt.Sprintf("%s AS %s", g.scalarSQL(it.E), colName(it.Out))
		}
		return fmt.Sprintf("SELECT %s FROM (%s) AS %s",
			strings.Join(parts, ", "), child, g.nextAlias()), nil

	case logical.OpJoin, logical.OpLeftJoin:
		left, err := g.render(e.Children[0])
		if err != nil {
			return "", err
		}
		right, err := g.render(e.Children[1])
		if err != nil {
			return "", err
		}
		kw := "JOIN"
		if e.Op == logical.OpLeftJoin {
			kw = "LEFT JOIN"
		}
		return fmt.Sprintf("SELECT * FROM (%s) AS %s %s (%s) AS %s ON %s",
			left, g.nextAlias(), kw, right, g.nextAlias(), g.scalarSQL(e.On)), nil

	case logical.OpSemiJoin, logical.OpAntiJoin:
		left, err := g.render(e.Children[0])
		if err != nil {
			return "", err
		}
		right, err := g.render(e.Children[1])
		if err != nil {
			return "", err
		}
		kw := "EXISTS"
		if e.Op == logical.OpAntiJoin {
			kw = "NOT EXISTS"
		}
		return fmt.Sprintf("SELECT * FROM (%s) AS %s WHERE %s (SELECT 1 AS one FROM (%s) AS %s WHERE %s)",
			left, g.nextAlias(), kw, right, g.nextAlias(), g.scalarSQL(e.On)), nil

	case logical.OpGroupBy:
		child, err := g.render(e.Children[0])
		if err != nil {
			return "", err
		}
		var parts []string
		for _, c := range e.GroupCols {
			parts = append(parts, colName(c))
		}
		for _, a := range e.Aggs {
			parts = append(parts, fmt.Sprintf("%s AS %s", a.SQL(colName), colName(a.Out)))
		}
		if len(parts) == 0 {
			return "", fmt.Errorf("sqlgen: GroupBy with no grouping columns and no aggregates")
		}
		out := fmt.Sprintf("SELECT %s FROM (%s) AS %s", strings.Join(parts, ", "), child, g.nextAlias())
		if len(e.GroupCols) > 0 {
			var gb []string
			for _, c := range e.GroupCols {
				gb = append(gb, colName(c))
			}
			out += " GROUP BY " + strings.Join(gb, ", ")
		}
		return out, nil

	case logical.OpUnionAll:
		sides := make([]string, 2)
		for i := 0; i < 2; i++ {
			child, err := g.render(e.Children[i])
			if err != nil {
				return "", err
			}
			parts := make([]string, len(e.OutCols))
			for j, out := range e.OutCols {
				parts[j] = fmt.Sprintf("%s AS %s", colName(e.InputCols[i][j]), colName(out))
			}
			sides[i] = fmt.Sprintf("SELECT %s FROM (%s) AS %s",
				strings.Join(parts, ", "), child, g.nextAlias())
		}
		return fmt.Sprintf("(%s) UNION ALL (%s)", sides[0], sides[1]), nil

	case logical.OpSort:
		child, err := g.render(e.Children[0])
		if err != nil {
			return "", err
		}
		var keys []string
		for _, k := range e.Keys {
			s := colName(k.Col)
			if k.Desc {
				s += " DESC"
			}
			keys = append(keys, s)
		}
		return fmt.Sprintf("SELECT * FROM (%s) AS %s ORDER BY %s",
			child, g.nextAlias(), strings.Join(keys, ", ")), nil

	case logical.OpLimit:
		child, err := g.render(e.Children[0])
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("SELECT * FROM (%s) AS %s LIMIT %d", child, g.nextAlias(), e.N), nil
	}
	return "", fmt.Errorf("sqlgen: unsupported operator %s", e.Op)
}
