package sqlgen

import (
	"testing"

	"qtrtest/internal/catalog"
	"qtrtest/internal/datum"
	"qtrtest/internal/logical"
	"qtrtest/internal/scalar"
	"qtrtest/internal/sql"
)

// FuzzSQLGen builds a logical tree from an arbitrary byte program and checks
// that whatever Generate accepts renders to SQL the parser accepts back: the
// generator's output grammar must stay inside the parser's input grammar, or
// every downstream pipeline (fuzz campaigns, shrinking, pattern generation)
// silently loses queries at the re-parse step.
func FuzzSQLGen(f *testing.F) {
	f.Add([]byte{0})
	f.Add([]byte{1, 0, 2, 1, 3, 2})
	f.Add([]byte{2, 5, 0, 0, 4, 1, 1, 6})
	f.Add([]byte{7, 3, 3, 9, 250, 11, 0, 42, 5, 5})
	f.Add([]byte{4, 4, 4, 4, 8, 8, 8, 8, 1, 2, 3, 4, 5, 6, 7})
	cat := catalog.LoadTPCH(catalog.TPCHConfig{ScaleRows: 0.01, Seed: 1})
	f.Fuzz(func(t *testing.T, prog []byte) {
		md := logical.NewMetadata(cat)
		tree := buildFuzzTree(md, prog)
		if tree == nil {
			return
		}
		sqlText, err := Generate(tree, md)
		if err != nil {
			// The generator may reject a tree (e.g. no output columns);
			// only accepted trees carry the re-parse obligation.
			return
		}
		if _, perr := sql.Parse(sqlText); perr != nil {
			t.Fatalf("generated SQL does not re-parse: %v\nsql: %s\ntree:\n%s", perr, sqlText, tree)
		}
	})
}

// buildFuzzTree interprets prog as a construction script: the first byte
// picks a base table, then each pair of bytes wraps the tree in one more
// operator. Invalid steps are skipped, so every byte string maps to some
// well-formed tree.
func buildFuzzTree(md *logical.Metadata, prog []byte) *logical.Expr {
	tables := md.Catalog().TableNames()
	if len(prog) == 0 || len(tables) == 0 {
		return nil
	}
	scan := func(b byte) *logical.Expr {
		e, err := md.AddTable(tables[int(b)%len(tables)])
		if err != nil {
			return nil
		}
		return e
	}
	tree := scan(prog[0])
	if tree == nil {
		return nil
	}
	prog = prog[1:]
	for len(prog) >= 2 {
		op, arg := prog[0], prog[1]
		prog = prog[2:]
		cols := tree.OutputCols()
		if len(cols) == 0 {
			break
		}
		pick := cols[int(arg)%len(cols)]
		switch op % 6 {
		case 0: // filter on one output column
			tree = &logical.Expr{
				Op:       logical.OpSelect,
				Filter:   &scalar.Cmp{Op: scalar.CmpGT, L: &scalar.ColRef{ID: pick}, R: &scalar.Const{D: datum.NewInt(int64(arg))}},
				Children: []*logical.Expr{tree},
			}
		case 1: // project a prefix of the output columns
			n := 1 + int(arg)%len(cols)
			projs := make([]logical.ProjItem, n)
			for i := 0; i < n; i++ {
				projs[i] = logical.ProjItem{Out: cols[i], E: &scalar.ColRef{ID: cols[i]}}
			}
			tree = &logical.Expr{Op: logical.OpProject, Projs: projs, Children: []*logical.Expr{tree}}
		case 2: // group by one column with COUNT(*)
			out := md.AddColumn(logical.ColumnMeta{Type: datum.TypeInt})
			tree = &logical.Expr{
				Op:        logical.OpGroupBy,
				GroupCols: []scalar.ColumnID{pick},
				Aggs:      []scalar.Agg{{Op: scalar.AggCountStar, Out: out}},
				Children:  []*logical.Expr{tree},
			}
		case 3: // sort on one column
			tree = &logical.Expr{
				Op:       logical.OpSort,
				Keys:     []logical.SortKey{{Col: pick, Desc: arg%2 == 1}},
				Children: []*logical.Expr{tree},
			}
		case 4: // limit
			tree = &logical.Expr{Op: logical.OpLimit, N: int64(arg), Children: []*logical.Expr{tree}}
		case 5: // join against a fresh base table on column equality
			other := scan(arg)
			if other == nil {
				continue
			}
			oc := other.OutputCols()
			tree = &logical.Expr{
				Op:       logical.OpJoin,
				On:       &scalar.Cmp{Op: scalar.CmpEQ, L: &scalar.ColRef{ID: pick}, R: &scalar.ColRef{ID: oc[int(arg)%len(oc)]}},
				Children: []*logical.Expr{tree, other},
			}
		}
	}
	return tree
}
