package sqlgen

import (
	"strings"
	"testing"

	"qtrtest/internal/bind"
	"qtrtest/internal/catalog"
	"qtrtest/internal/datum"
	"qtrtest/internal/logical"
	"qtrtest/internal/scalar"
)

func testCatalog() *catalog.Catalog {
	return catalog.LoadTPCH(catalog.DefaultTPCHConfig())
}

func scan(t *testing.T, md *logical.Metadata, name string) *logical.Expr {
	t.Helper()
	e, err := md.AddTable(name)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// opCounts tallies operator occurrences, ignoring Projects (the binder may
// legally add or skip identity projections).
func opCounts(e *logical.Expr) map[logical.Op]int {
	m := make(map[logical.Op]int)
	e.Walk(func(x *logical.Expr) {
		if x.Op != logical.OpProject {
			m[x.Op]++
		}
	})
	return m
}

// roundTrip renders a tree to SQL, re-binds it, and checks the non-Project
// operator multiset is preserved.
func roundTrip(t *testing.T, tree *logical.Expr, md *logical.Metadata) *bind.Bound {
	t.Helper()
	sqlText, err := Generate(tree, md)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	bound, err := bind.BindSQL(sqlText, md.Catalog())
	if err != nil {
		t.Fatalf("BindSQL(%q): %v", sqlText, err)
	}
	want := opCounts(tree)
	got := opCounts(bound.Tree)
	for op, n := range want {
		if got[op] != n {
			t.Errorf("round trip lost operators: %s x%d became x%d\nSQL: %s\nbound:\n%s",
				op, n, got[op], sqlText, bound.Tree)
		}
	}
	return bound
}

func TestRoundTripGet(t *testing.T) {
	md := logical.NewMetadata(testCatalog())
	roundTrip(t, scan(t, md, "nation"), md)
}

func TestRoundTripSelectJoin(t *testing.T) {
	md := logical.NewMetadata(testCatalog())
	n := scan(t, md, "nation")
	r := scan(t, md, "region")
	join := &logical.Expr{Op: logical.OpJoin, Children: []*logical.Expr{n, r},
		On: &scalar.Cmp{Op: scalar.CmpEQ, L: &scalar.ColRef{ID: n.Cols[2]}, R: &scalar.ColRef{ID: r.Cols[0]}}}
	sel := &logical.Expr{Op: logical.OpSelect, Children: []*logical.Expr{join},
		Filter: &scalar.Cmp{Op: scalar.CmpGT, L: &scalar.ColRef{ID: n.Cols[0]}, R: &scalar.Const{D: datum.NewInt(2)}}}
	roundTrip(t, sel, md)
}

func TestRoundTripLeftJoin(t *testing.T) {
	md := logical.NewMetadata(testCatalog())
	n := scan(t, md, "nation")
	s := scan(t, md, "supplier")
	loj := &logical.Expr{Op: logical.OpLeftJoin, Children: []*logical.Expr{n, s},
		On: &scalar.Cmp{Op: scalar.CmpEQ, L: &scalar.ColRef{ID: n.Cols[0]}, R: &scalar.ColRef{ID: s.Cols[2]}}}
	roundTrip(t, loj, md)
}

func TestRoundTripSemiAnti(t *testing.T) {
	md := logical.NewMetadata(testCatalog())
	o := scan(t, md, "orders")
	l := scan(t, md, "lineitem")
	on := &scalar.Cmp{Op: scalar.CmpEQ, L: &scalar.ColRef{ID: o.Cols[0]}, R: &scalar.ColRef{ID: l.Cols[0]}}
	semi := &logical.Expr{Op: logical.OpSemiJoin, Children: []*logical.Expr{o, l}, On: on}
	roundTrip(t, semi, md)

	md2 := logical.NewMetadata(testCatalog())
	o2 := scan(t, md2, "orders")
	l2 := scan(t, md2, "lineitem")
	anti := &logical.Expr{Op: logical.OpAntiJoin, Children: []*logical.Expr{o2, l2},
		On: &scalar.Cmp{Op: scalar.CmpEQ, L: &scalar.ColRef{ID: o2.Cols[0]}, R: &scalar.ColRef{ID: l2.Cols[0]}}}
	roundTrip(t, anti, md2)
}

func TestRoundTripGroupBy(t *testing.T) {
	md := logical.NewMetadata(testCatalog())
	c := scan(t, md, "customer")
	agg := md.AddColumn(logical.ColumnMeta{Name: "agg"})
	gb := &logical.Expr{Op: logical.OpGroupBy, Children: []*logical.Expr{c},
		GroupCols: []scalar.ColumnID{c.Cols[2]},
		Aggs:      []scalar.Agg{{Op: scalar.AggSum, Arg: &scalar.ColRef{ID: c.Cols[3]}, Out: agg}}}
	roundTrip(t, gb, md)
}

func TestRoundTripDistinct(t *testing.T) {
	md := logical.NewMetadata(testCatalog())
	c := scan(t, md, "customer")
	gb := &logical.Expr{Op: logical.OpGroupBy, Children: []*logical.Expr{c},
		GroupCols: []scalar.ColumnID{c.Cols[2]}}
	roundTrip(t, gb, md)
}

func TestRoundTripUnionAll(t *testing.T) {
	md := logical.NewMetadata(testCatalog())
	n := scan(t, md, "nation")
	r := scan(t, md, "region")
	out := md.AddColumn(logical.ColumnMeta{Name: "u"})
	u := &logical.Expr{Op: logical.OpUnionAll, Children: []*logical.Expr{n, r},
		OutCols:   []scalar.ColumnID{out},
		InputCols: [][]scalar.ColumnID{{n.Cols[1]}, {r.Cols[1]}}}
	roundTrip(t, u, md)
}

func TestRoundTripSortLimit(t *testing.T) {
	md := logical.NewMetadata(testCatalog())
	n := scan(t, md, "nation")
	sorted := &logical.Expr{Op: logical.OpSort, Children: []*logical.Expr{n},
		Keys: []logical.SortKey{{Col: n.Cols[1], Desc: true}}}
	lim := &logical.Expr{Op: logical.OpLimit, Children: []*logical.Expr{sorted}, N: 5}
	roundTrip(t, lim, md)
}

func TestRoundTripNestedShapes(t *testing.T) {
	// Select(Select(GroupBy(Join))) — shapes the rule patterns care about.
	md := logical.NewMetadata(testCatalog())
	n := scan(t, md, "nation")
	r := scan(t, md, "region")
	join := &logical.Expr{Op: logical.OpJoin, Children: []*logical.Expr{n, r},
		On: &scalar.Cmp{Op: scalar.CmpEQ, L: &scalar.ColRef{ID: n.Cols[2]}, R: &scalar.ColRef{ID: r.Cols[0]}}}
	agg := md.AddColumn(logical.ColumnMeta{Name: "agg"})
	gb := &logical.Expr{Op: logical.OpGroupBy, Children: []*logical.Expr{join},
		GroupCols: []scalar.ColumnID{n.Cols[2]},
		Aggs:      []scalar.Agg{{Op: scalar.AggCountStar, Out: agg}}}
	s1 := &logical.Expr{Op: logical.OpSelect, Children: []*logical.Expr{gb},
		Filter: &scalar.Cmp{Op: scalar.CmpGT, L: &scalar.ColRef{ID: agg}, R: &scalar.Const{D: datum.NewInt(0)}}}
	s2 := &logical.Expr{Op: logical.OpSelect, Children: []*logical.Expr{s1},
		Filter: &scalar.Cmp{Op: scalar.CmpLT, L: &scalar.ColRef{ID: n.Cols[2]}, R: &scalar.Const{D: datum.NewInt(100)}}}
	roundTrip(t, s2, md)
}

func TestGenerateRejectsInvalid(t *testing.T) {
	md := logical.NewMetadata(testCatalog())
	bad := &logical.Expr{Op: logical.OpGroupBy, Children: []*logical.Expr{scan(t, md, "nation")}}
	if _, err := Generate(bad, md); err == nil {
		t.Error("GroupBy with no columns and no aggregates must fail")
	}
	badGet := &logical.Expr{Op: logical.OpGet, Table: "nope"}
	if _, err := Generate(badGet, md); err == nil {
		t.Error("unknown table must fail")
	}
}

func TestGeneratedSQLSyntax(t *testing.T) {
	md := logical.NewMetadata(testCatalog())
	n := scan(t, md, "nation")
	sel := &logical.Expr{Op: logical.OpSelect, Children: []*logical.Expr{n},
		Filter: &scalar.Cmp{Op: scalar.CmpEQ, L: &scalar.ColRef{ID: n.Cols[1]}, R: &scalar.Const{D: datum.NewString("FRANCE")}}}
	sqlText, err := Generate(sel, md)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"SELECT * FROM (", "WHERE", "'FRANCE'", "n_name AS c2"} {
		if !strings.Contains(sqlText, frag) {
			t.Errorf("SQL missing %q: %s", frag, sqlText)
		}
	}
}
