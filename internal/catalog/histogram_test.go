package catalog

import (
	"math/rand"
	"testing"
	"testing/quick"

	"qtrtest/internal/datum"
)

func intRows(vals ...int64) []datum.Row {
	rows := make([]datum.Row, len(vals))
	for i, v := range vals {
		rows[i] = datum.Row{datum.NewInt(v)}
	}
	return rows
}

// trueSelectivity counts the exact fraction of rows with value < v (or <=).
func trueSelectivity(vals []int64, v float64, orEqual bool) float64 {
	n := 0
	for _, x := range vals {
		f := float64(x)
		if f < v || (orEqual && f == v) {
			n++
		}
	}
	return float64(n) / float64(len(vals))
}

func TestHistogramUniform(t *testing.T) {
	var vals []int64
	for i := int64(0); i < 1000; i++ {
		vals = append(vals, i)
	}
	h := BuildHistogram(intRows(vals...), 0, 16)
	if h == nil {
		t.Fatal("nil histogram")
	}
	for _, v := range []float64{0, 100, 250.5, 500, 999, 1500} {
		got := h.SelectivityLT(v, false)
		want := trueSelectivity(vals, v, false)
		if diff := got - want; diff > 0.05 || diff < -0.05 {
			t.Errorf("SelectivityLT(%g) = %.3f, true %.3f", v, got, want)
		}
	}
}

func TestHistogramSkewed(t *testing.T) {
	// 900 copies of 5, then 100 spread values.
	var vals []int64
	for i := 0; i < 900; i++ {
		vals = append(vals, 5)
	}
	for i := int64(0); i < 100; i++ {
		vals = append(vals, 100+i)
	}
	h := BuildHistogram(intRows(vals...), 0, 16)
	eq := h.SelectivityEQ(5)
	if eq < 0.5 {
		t.Errorf("SelectivityEQ(5) = %.3f, want >= 0.5 for heavy value", eq)
	}
	lt := h.SelectivityLT(50, false)
	if lt < 0.8 || lt > 1.0 {
		t.Errorf("SelectivityLT(50) = %.3f, want ~0.9", lt)
	}
}

func TestHistogramNulls(t *testing.T) {
	rows := intRows(1, 2, 3, 4)
	rows = append(rows, datum.Row{datum.Null}, datum.Row{datum.Null})
	h := BuildHistogram(rows, 0, 4)
	if h.NullCount != 2 || h.TotalCount != 6 {
		t.Fatalf("null accounting wrong: %+v", h)
	}
	// All 4 non-null values are < 10, but 2/6 rows are NULL.
	if got := h.SelectivityLT(10, false); got < 0.6 || got > 0.7 {
		t.Errorf("SelectivityLT(10) = %.3f, want 4/6", got)
	}
}

func TestHistogramEmptyAndNonNumeric(t *testing.T) {
	h := BuildHistogram(nil, 0, 4)
	if h == nil || h.TotalCount != 0 {
		t.Error("empty histogram should exist with zero counts")
	}
	if h.SelectivityLT(5, true) != 0 || h.SelectivityEQ(5) != 0 {
		t.Error("empty histogram selectivities must be 0")
	}
	strRows := []datum.Row{{datum.NewString("a")}}
	if BuildHistogram(strRows, 0, 4) != nil {
		t.Error("string column must not build a numeric histogram")
	}
}

// Property: selectivity estimates are within a tolerance of the truth for
// random integer data (equi-depth histograms bound per-bucket error).
func TestHistogramAccuracyProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 200 + r.Intn(400)
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = int64(r.Intn(100))
		}
		h := BuildHistogram(intRows(vals...), 0, 16)
		v := float64(r.Intn(120) - 10)
		got := h.SelectivityLT(v, false)
		want := trueSelectivity(vals, v, false)
		diff := got - want
		if diff < 0 {
			diff = -diff
		}
		return diff <= 0.15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: SelectivityLT is monotone in v.
func TestHistogramMonotoneProperty(t *testing.T) {
	vals := make([]int64, 500)
	r := rand.New(rand.NewSource(9))
	for i := range vals {
		vals[i] = int64(r.Intn(1000))
	}
	h := BuildHistogram(intRows(vals...), 0, 8)
	prev := -1.0
	for v := -10.0; v <= 1010; v += 7 {
		s := h.SelectivityLT(v, false)
		if s < prev-1e-9 {
			t.Fatalf("SelectivityLT not monotone at %g: %f < %f", v, s, prev)
		}
		prev = s
	}
}

func TestTPCHHistogramsBuilt(t *testing.T) {
	c := LoadTPCH(DefaultTPCHConfig())
	li := c.MustTable("lineitem")
	h := li.Stats.Histograms["l_quantity"]
	if h == nil {
		t.Fatal("lineitem.l_quantity has no histogram")
	}
	if h.TotalCount != li.Stats.RowCount {
		t.Errorf("histogram row count %d != table %d", h.TotalCount, li.Stats.RowCount)
	}
	// quantity is uniform on [1,50]: P(q < 26) ~ 0.5.
	if s := h.SelectivityLT(26, false); s < 0.35 || s > 0.65 {
		t.Errorf("P(l_quantity < 26) = %.3f, want ~0.5", s)
	}
	if c.MustTable("nation").Stats.Histograms["n_name"] != nil {
		t.Error("string column must have no histogram")
	}
}
