package catalog

import "testing"

func TestLoadStarSchema(t *testing.T) {
	c := LoadStar(DefaultStarConfig())
	want := []string{"date_dim", "product", "sales", "shopper", "store"}
	got := c.TableNames()
	if len(got) != len(want) {
		t.Fatalf("tables: %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("table %d = %s, want %s", i, got[i], want[i])
		}
	}
	sales := c.MustTable("sales")
	if len(sales.ForeignKeys) != 4 {
		t.Errorf("sales FKs = %d, want 4", len(sales.ForeignKeys))
	}
	if len(sales.Rows) == 0 {
		t.Fatal("no fact rows")
	}
}

func TestStarForeignKeyIntegrity(t *testing.T) {
	c := LoadStar(DefaultStarConfig())
	sales := c.MustTable("sales")
	for _, fk := range sales.ForeignKeys {
		ref := c.MustTable(fk.RefTable)
		refIdx := ref.ColumnIndex(fk.RefColumns[0])
		valid := make(map[string]bool, len(ref.Rows))
		for _, rr := range ref.Rows {
			valid[rr[refIdx].String()] = true
		}
		ci := sales.ColumnIndex(fk.Columns[0])
		for rn, row := range sales.Rows {
			if !valid[row[ci].String()] {
				t.Fatalf("sales row %d: dangling FK %s -> %s", rn, fk.Columns[0], fk.RefTable)
			}
		}
	}
}

func TestStarDeterministic(t *testing.T) {
	a := LoadStar(DefaultStarConfig())
	b := LoadStar(DefaultStarConfig())
	for _, name := range a.TableNames() {
		ra, rb := a.MustTable(name).Rows, b.MustTable(name).Rows
		if len(ra) != len(rb) {
			t.Fatalf("%s row counts differ", name)
		}
		for i := range ra {
			if ra[i].Key() != rb[i].Key() {
				t.Fatalf("%s row %d differs", name, i)
			}
		}
	}
}
