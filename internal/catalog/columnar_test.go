package catalog

import (
	"sync"
	"testing"

	"qtrtest/internal/datum"
)

func columnarFixture() *Table {
	return &Table{
		Name: "t",
		Columns: []Column{
			{Name: "a", Type: datum.TypeInt},
			{Name: "b", Type: datum.TypeString, Nullable: true},
		},
		Rows: []datum.Row{
			{datum.NewInt(1), datum.NewString("x")},
			{datum.NewInt(2), datum.Null},
			{datum.NewInt(3), datum.NewString("z")},
		},
	}
}

func TestColumnDataTransposesRows(t *testing.T) {
	tbl := columnarFixture()
	vecs := tbl.ColumnData()
	if len(vecs) != 2 {
		t.Fatalf("got %d vecs, want 2", len(vecs))
	}
	for c := range vecs {
		if vecs[c].Len() != len(tbl.Rows) {
			t.Fatalf("column %d has %d values, want %d", c, vecs[c].Len(), len(tbl.Rows))
		}
		for i, row := range tbl.Rows {
			if datum.TotalCompare(vecs[c].D[i], row[c]) != 0 {
				t.Fatalf("vecs[%d].D[%d] = %v, want %v", c, i, vecs[c].D[i], row[c])
			}
		}
	}
	if !vecs[1].IsNull(1) || vecs[1].IsNull(0) {
		t.Error("null bitmap wrong")
	}
	idx := tbl.SeqIdx()
	if len(idx) != 3 || idx[0] != 0 || idx[2] != 2 {
		t.Errorf("SeqIdx = %v", idx)
	}
}

func TestJoinIndexGroupsRowsByKey(t *testing.T) {
	tbl := &Table{
		Name:    "t",
		Columns: []Column{{Name: "k", Type: datum.TypeInt, Nullable: true}},
		Rows: []datum.Row{
			{datum.NewInt(7)}, {datum.NewInt(5)}, {datum.Null}, {datum.NewInt(7)},
		},
	}
	idx := tbl.JoinIndex([]int{0})
	if len(idx.Groups) != 2 {
		t.Fatalf("got %d groups, want 2 (NULL keys are not indexed)", len(idx.Groups))
	}
	var key []byte
	key = datum.NewInt(7).AppendKey(key)
	slot, ok := idx.Lookup[string(key)]
	if !ok {
		t.Fatal("key 7 not indexed")
	}
	if g := idx.Groups[slot]; len(g) != 2 || g[0] != 0 || g[1] != 3 {
		t.Errorf("group for key 7 = %v, want [0 3] in row order", g)
	}
	// Distinct key-column sets build distinct indexes; repeated calls share.
	if tbl.JoinIndex([]int{0}) != idx {
		t.Error("same slots must return the cached index")
	}
}

// The cache must be safe under concurrent first use — campaign workers share
// one catalog.
func TestColumnDataConcurrent(t *testing.T) {
	tbl := columnarFixture()
	var wg sync.WaitGroup
	vecs := make([][]datum.Vec, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			vecs[g] = tbl.ColumnData()
			_ = tbl.SeqIdx()
		}(g)
	}
	wg.Wait()
	for g := 1; g < 8; g++ {
		if &vecs[g][0] != &vecs[0][0] {
			t.Fatal("concurrent callers must observe the same cached vectors")
		}
	}
}

// Same contract for the join index: concurrent hash joins over a shared
// catalog must get one index per key-column set, built exactly once.
func TestJoinIndexConcurrent(t *testing.T) {
	tbl := columnarFixture()
	var wg sync.WaitGroup
	idxs := make([]*JoinIndex, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			idxs[g] = tbl.JoinIndex([]int{0})
		}(g)
	}
	wg.Wait()
	for g := 1; g < 8; g++ {
		if idxs[g] != idxs[0] {
			t.Fatal("concurrent callers must observe the same cached join index")
		}
	}
}
