package catalog

import (
	"fmt"
	"math/rand"

	"qtrtest/internal/datum"
)

// StarConfig sizes the star-schema test database. The paper notes the
// framework was evaluated "on other databases with different schemas and
// sizes" with similar results (§6.1); this schema is the second instance:
// a retail star with one fact table and four dimensions, the shape that
// star-join rules and FK-driven preconditions care about.
type StarConfig struct {
	ScaleRows float64
	Seed      int64
}

// DefaultStarConfig returns the configuration used by tests.
func DefaultStarConfig() StarConfig {
	return StarConfig{ScaleRows: 1.0, Seed: 42}
}

var starCategories = []string{"GROCERY", "ELECTRONICS", "CLOTHING", "GARDEN", "TOYS", "SPORTS"}

var starChannels = []string{"WEB", "STORE", "PHONE", "CATALOG"}

var starTiers = []string{"BRONZE", "SILVER", "GOLD", "PLATINUM"}

// LoadStar builds the star schema:
//
//	date_dim(d_datekey, d_year, d_month, d_quarter)
//	product(p_productkey, p_name, p_category, p_price)
//	store(s_storekey, s_name, s_channel)
//	shopper(h_shopperkey, h_name, h_tier, h_balance)
//	sales(f_salekey, f_datekey, f_productkey, f_storekey, f_shopperkey,
//	      f_quantity, f_amount, f_discount)
func LoadStar(cfg StarConfig) *Catalog {
	rng := rand.New(rand.NewSource(cfg.Seed))
	c := New()

	nDates := scaled(120, cfg.ScaleRows)
	nProducts := scaled(80, cfg.ScaleRows)
	nStores := scaled(20, cfg.ScaleRows)
	nShoppers := scaled(100, cfg.ScaleRows)
	nSales := scaled(900, cfg.ScaleRows)

	dateDim := &Table{
		Name: "date_dim",
		Columns: []Column{
			{Name: "d_datekey", Type: datum.TypeInt},
			{Name: "d_year", Type: datum.TypeInt},
			{Name: "d_month", Type: datum.TypeInt},
			{Name: "d_quarter", Type: datum.TypeInt},
		},
		PrimaryKey: []string{"d_datekey"},
	}
	for i := 0; i < nDates; i++ {
		month := i % 12
		dateDim.Rows = append(dateDim.Rows, datum.Row{
			datum.NewInt(int64(i)),
			datum.NewInt(int64(2020 + i/12%6)),
			datum.NewInt(int64(month + 1)),
			datum.NewInt(int64(month/3 + 1)),
		})
	}
	c.Add(dateDim)

	product := &Table{
		Name: "product",
		Columns: []Column{
			{Name: "p_productkey", Type: datum.TypeInt},
			{Name: "p_name", Type: datum.TypeString},
			{Name: "p_category", Type: datum.TypeString},
			{Name: "p_price", Type: datum.TypeFloat},
		},
		PrimaryKey: []string{"p_productkey"},
	}
	for i := 0; i < nProducts; i++ {
		product.Rows = append(product.Rows, datum.Row{
			datum.NewInt(int64(i)),
			datum.NewString(fmt.Sprintf("product-%03d", i)),
			datum.NewString(starCategories[rng.Intn(len(starCategories))]),
			datum.NewFloat(1 + float64(rng.Intn(50000))/100),
		})
	}
	c.Add(product)

	store := &Table{
		Name: "store",
		Columns: []Column{
			{Name: "s_storekey", Type: datum.TypeInt},
			{Name: "s_name", Type: datum.TypeString},
			{Name: "s_channel", Type: datum.TypeString},
		},
		PrimaryKey: []string{"s_storekey"},
	}
	for i := 0; i < nStores; i++ {
		store.Rows = append(store.Rows, datum.Row{
			datum.NewInt(int64(i)),
			datum.NewString(fmt.Sprintf("store-%02d", i)),
			datum.NewString(starChannels[rng.Intn(len(starChannels))]),
		})
	}
	c.Add(store)

	shopper := &Table{
		Name: "shopper",
		Columns: []Column{
			{Name: "h_shopperkey", Type: datum.TypeInt},
			{Name: "h_name", Type: datum.TypeString},
			{Name: "h_tier", Type: datum.TypeString},
			{Name: "h_balance", Type: datum.TypeFloat},
		},
		PrimaryKey: []string{"h_shopperkey"},
	}
	for i := 0; i < nShoppers; i++ {
		shopper.Rows = append(shopper.Rows, datum.Row{
			datum.NewInt(int64(i)),
			datum.NewString(fmt.Sprintf("shopper-%04d", i)),
			datum.NewString(starTiers[rng.Intn(len(starTiers))]),
			datum.NewFloat(float64(rng.Intn(200000))/100 - 500),
		})
	}
	c.Add(shopper)

	sales := &Table{
		Name: "sales",
		Columns: []Column{
			{Name: "f_salekey", Type: datum.TypeInt},
			{Name: "f_datekey", Type: datum.TypeInt},
			{Name: "f_productkey", Type: datum.TypeInt},
			{Name: "f_storekey", Type: datum.TypeInt},
			{Name: "f_shopperkey", Type: datum.TypeInt},
			{Name: "f_quantity", Type: datum.TypeInt},
			{Name: "f_amount", Type: datum.TypeFloat},
			{Name: "f_discount", Type: datum.TypeFloat},
		},
		PrimaryKey: []string{"f_salekey"},
		ForeignKeys: []ForeignKey{
			{Columns: []string{"f_datekey"}, RefTable: "date_dim", RefColumns: []string{"d_datekey"}},
			{Columns: []string{"f_productkey"}, RefTable: "product", RefColumns: []string{"p_productkey"}},
			{Columns: []string{"f_storekey"}, RefTable: "store", RefColumns: []string{"s_storekey"}},
			{Columns: []string{"f_shopperkey"}, RefTable: "shopper", RefColumns: []string{"h_shopperkey"}},
		},
	}
	for i := 0; i < nSales; i++ {
		qty := 1 + rng.Intn(20)
		sales.Rows = append(sales.Rows, datum.Row{
			datum.NewInt(int64(i)),
			datum.NewInt(int64(rng.Intn(nDates))),
			datum.NewInt(int64(rng.Intn(nProducts))),
			datum.NewInt(int64(rng.Intn(nStores))),
			datum.NewInt(int64(rng.Intn(nShoppers))),
			datum.NewInt(int64(qty)),
			datum.NewFloat(float64(qty) * (1 + float64(rng.Intn(20000))/100)),
			datum.NewFloat(float64(rng.Intn(30)) / 100),
		})
	}
	c.Add(sales)

	for _, name := range c.TableNames() {
		c.MustTable(name).ComputeStats()
	}
	return c
}
