package catalog

import (
	"testing"

	"qtrtest/internal/datum"
)

func TestLoadTPCHSchema(t *testing.T) {
	c := LoadTPCH(DefaultTPCHConfig())
	want := []string{"customer", "lineitem", "nation", "orders", "part", "partsupp", "region", "supplier"}
	got := c.TableNames()
	if len(got) != len(want) {
		t.Fatalf("tables: %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("table %d: %s, want %s", i, got[i], want[i])
		}
	}
	if c.NumTables() != 8 {
		t.Errorf("NumTables = %d", c.NumTables())
	}
}

func TestTPCHDeterministic(t *testing.T) {
	a := LoadTPCH(DefaultTPCHConfig())
	b := LoadTPCH(DefaultTPCHConfig())
	for _, name := range a.TableNames() {
		ta, tb := a.MustTable(name), b.MustTable(name)
		if len(ta.Rows) != len(tb.Rows) {
			t.Fatalf("%s: row counts differ", name)
		}
		for i := range ta.Rows {
			if ta.Rows[i].Key() != tb.Rows[i].Key() {
				t.Fatalf("%s row %d differs between identically-seeded loads", name, i)
			}
		}
	}
	c := LoadTPCH(TPCHConfig{ScaleRows: 1.0, Seed: 7})
	if c.MustTable("supplier").Rows[0].Key() == a.MustTable("supplier").Rows[0].Key() &&
		c.MustTable("customer").Rows[0].Key() == a.MustTable("customer").Rows[0].Key() {
		t.Error("different seeds should change generated data")
	}
}

func TestTPCHForeignKeyIntegrity(t *testing.T) {
	c := LoadTPCH(DefaultTPCHConfig())
	for _, name := range c.TableNames() {
		tbl := c.MustTable(name)
		for _, fk := range tbl.ForeignKeys {
			ref := c.MustTable(fk.RefTable)
			refIdx := make([]int, len(fk.RefColumns))
			for i, rc := range fk.RefColumns {
				refIdx[i] = ref.ColumnIndex(rc)
			}
			valid := make(map[string]bool, len(ref.Rows))
			for _, rr := range ref.Rows {
				key := ""
				for _, ri := range refIdx {
					key += rr[ri].String() + "|"
				}
				valid[key] = true
			}
			colIdx := make([]int, len(fk.Columns))
			for i, fc := range fk.Columns {
				colIdx[i] = tbl.ColumnIndex(fc)
				if colIdx[i] < 0 {
					t.Fatalf("%s: fk column %s missing", name, fc)
				}
			}
			for rn, row := range tbl.Rows {
				key := ""
				for _, ci := range colIdx {
					key += row[ci].String() + "|"
				}
				if !valid[key] {
					t.Fatalf("%s row %d: dangling FK %v -> %s", name, rn, fk.Columns, fk.RefTable)
				}
			}
		}
	}
}

func TestTPCHPrimaryKeysUnique(t *testing.T) {
	c := LoadTPCH(DefaultTPCHConfig())
	for _, name := range c.TableNames() {
		tbl := c.MustTable(name)
		if len(tbl.PrimaryKey) == 0 {
			t.Errorf("%s has no primary key", name)
			continue
		}
		idx := make([]int, len(tbl.PrimaryKey))
		for i, pk := range tbl.PrimaryKey {
			idx[i] = tbl.ColumnIndex(pk)
		}
		seen := make(map[string]bool, len(tbl.Rows))
		for _, row := range tbl.Rows {
			key := ""
			for _, i := range idx {
				key += row[i].String() + "|"
			}
			if seen[key] {
				t.Fatalf("%s: duplicate primary key %s", name, key)
			}
			seen[key] = true
		}
	}
}

func TestStats(t *testing.T) {
	c := LoadTPCH(DefaultTPCHConfig())
	n := c.MustTable("nation")
	if n.Stats.RowCount != 25 {
		t.Errorf("nation rows = %d", n.Stats.RowCount)
	}
	if d := n.Stats.DistinctCount["n_nationkey"]; d != 25 {
		t.Errorf("distinct n_nationkey = %d", d)
	}
	if d := n.Stats.DistinctCount["n_regionkey"]; d != 5 {
		t.Errorf("distinct n_regionkey = %d", d)
	}
}

func TestScaling(t *testing.T) {
	small := LoadTPCH(TPCHConfig{ScaleRows: 0.5, Seed: 42})
	big := LoadTPCH(TPCHConfig{ScaleRows: 2.0, Seed: 42})
	if len(small.MustTable("orders").Rows) >= len(big.MustTable("orders").Rows) {
		t.Error("scaling has no effect on orders")
	}
	// region and nation are fixed-size dimension tables.
	if len(small.MustTable("region").Rows) != len(big.MustTable("region").Rows) {
		t.Error("region should not scale")
	}
}

func TestTableHelpers(t *testing.T) {
	c := LoadTPCH(DefaultTPCHConfig())
	tbl := c.MustTable("orders")
	if tbl.ColumnIndex("o_orderkey") != 0 || tbl.ColumnIndex("nope") != -1 {
		t.Error("ColumnIndex wrong")
	}
	if !tbl.IsKey(map[string]bool{"o_orderkey": true, "o_custkey": true}) {
		t.Error("o_orderkey superset should be a key")
	}
	if tbl.IsKey(map[string]bool{"o_custkey": true}) {
		t.Error("o_custkey is not a key")
	}
	if _, err := c.Table("missing"); err == nil {
		t.Error("missing table should error")
	}
}

func TestCatalogAddReplace(t *testing.T) {
	c := New()
	c.Add(&Table{Name: "t", Columns: []Column{{Name: "a", Type: datum.TypeInt}}})
	c.Add(&Table{Name: "t", Columns: []Column{{Name: "b", Type: datum.TypeInt}}})
	tbl := c.MustTable("t")
	if tbl.Columns[0].Name != "b" {
		t.Error("Add should replace an existing table")
	}
}
